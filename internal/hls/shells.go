package hls

import (
	"fmt"

	"flexsfp/internal/fpga"
)

// Shell selects one of the Figure-1 architecture shells the application
// is integrated into.
type Shell int

// Architecture shells (§4.1).
const (
	// OneWayFilter places the PPE on the edge→optical path only.
	OneWayFilter Shell = iota
	// TwoWayCore aggregates both directions through one PPE.
	TwoWayCore
	// ActiveCore adds a dedicated control-plane network interface; the
	// control plane can originate and terminate traffic.
	ActiveCore
)

func (s Shell) String() string {
	switch s {
	case OneWayFilter:
		return "one-way-filter"
	case TwoWayCore:
		return "two-way-core"
	case ActiveCore:
		return "active-core"
	default:
		return fmt.Sprintf("Shell(%d)", int(s))
	}
}

// Fixed IP-core resource footprints, taken verbatim from the paper's
// Table 1 (these are vendor cores, not outputs of the estimator):
var (
	// MiVCore is the Mi-V RV32 soft processor running the lightweight
	// control plane.
	MiVCore = fpga.Resources{LUT4: 8696, FF: 376, USRAM: 6, LSRAM: 4}
	// ElectricalInterface is the 10G Ethernet IP core on the edge
	// (electrical) side.
	ElectricalInterface = fpga.Resources{LUT4: 6824, FF: 6924, USRAM: 118}
	// OpticalInterface is the 10G Ethernet IP core on the optical side.
	OpticalInterface = fpga.Resources{LUT4: 6813, FF: 6924, USRAM: 118}
	// aggregatorDemux is the Two-Way-Core's extra merge/split logic; the
	// growth over One-Way-Filter is deliberately sublinear (§4.1
	// "Hardware Overhead: … Shared components mitigate the growth").
	aggregatorDemux = fpga.Resources{LUT4: 1200, FF: 1400, USRAM: 16}
	// controlPlaneMAC is the ActiveCore's third (management) interface:
	// a lighter 1G MAC without the 10G PCS.
	controlPlaneMAC = fpga.Resources{LUT4: 2400, FF: 2600, USRAM: 24}
)

// ShellResources returns the fixed (non-application) resources of a shell:
// the Mi-V control core, the two 10G interfaces, and any architecture-
// specific glue.
func ShellResources(s Shell) fpga.Resources {
	r := MiVCore.Add(ElectricalInterface).Add(OpticalInterface)
	switch s {
	case OneWayFilter:
		return r
	case TwoWayCore:
		return r.Add(aggregatorDemux)
	case ActiveCore:
		return r.Add(aggregatorDemux).Add(controlPlaneMAC)
	default:
		return r
	}
}

// ComponentBreakdown is one row of a Table 1-style report.
type ComponentBreakdown struct {
	Name      string
	Resources fpga.Resources
}

// ShellBreakdown returns the per-component rows of a shell, in the order
// the paper's Table 1 lists them.
func ShellBreakdown(s Shell) []ComponentBreakdown {
	rows := []ComponentBreakdown{
		{"Mi-V", MiVCore},
		{"Elec. I/F", ElectricalInterface},
		{"Opt. I/F", OpticalInterface},
	}
	switch s {
	case TwoWayCore:
		rows = append(rows, ComponentBreakdown{"Agg/Demux", aggregatorDemux})
	case ActiveCore:
		rows = append(rows,
			ComponentBreakdown{"Agg/Demux", aggregatorDemux},
			ComponentBreakdown{"Ctrl MAC", controlPlaneMAC})
	}
	return rows
}
