package ppe

import (
	"fmt"

	"flexsfp/internal/netsim"
	"flexsfp/internal/telemetry"
)

// Engine executes a compiled Program with cycle accounting: a streaming
// pipeline consumes one datapath word per clock, so a frame of L bytes
// occupies ceil(L / (width/8)) + 1 cycles at the input (the +1 models the
// inter-packet realignment bubble), and the verdict emerges a pipeline-
// depth later. Throughput saturates exactly where the paper's arithmetic
// says it must: 64-bit × 156.25 MHz sustains 10 Gb/s one way, and a
// Two-Way-Core needs double clock or width (§4.1, §5.3).
type Engine struct {
	sim          *netsim.Simulator
	clockHz      int64
	datapathBits int

	prog       *Program
	depth      int   // pipeline depth in cycles
	progCycles int64 // per-packet soft-core occupancy (0 = fully pipelined)

	// QueueLimit bounds frames waiting for the pipeline input; 0 means
	// unbounded. Full-queue arrivals are dropped (counted).
	QueueLimit int

	out func(v Verdict, ctx *Ctx)

	busyUntilPs int64
	busyPs      int64 // accumulated busy picoseconds (for utilization)
	queued      int
	release     func() // cached queue-slot release callback (no per-frame closure)
	period      int64  // cached clock period in picoseconds

	// freeComp recycles per-frame completion records (the pooled Ctx and
	// its scheduled verdict). Intrusive list: the engine runs on the sim
	// thread, so no locking.
	freeComp *completion

	// tel, when non-nil, receives zero-alloc hot-path records (counters,
	// latency/queue histograms, trace hops). See SetTelemetry.
	tel *Telemetry

	stats EngineStats
}

// completion is the preallocated per-frame record scheduled through the
// simulator's typed-event fast path: it embeds the pooled Ctx and runs
// the verdict when the frame's pipeline traversal completes. The record
// returns to the engine's free list after the verdict callback, so the
// Ctx must not be retained past that callback.
type completion struct {
	e    *Engine
	ctx  Ctx
	next *completion
}

// Complete implements netsim.Completer: the frame emerges from the
// pipeline, the handler runs, and the verdict is delivered.
func (c *completion) Complete() {
	e := c.e
	v := e.prog.Handler.HandlePacket(&c.ctx)
	switch v {
	case VerdictPass:
		e.stats.Pass++
	case VerdictDrop:
		e.stats.Drop++
	case VerdictTx:
		e.stats.Tx++
	case VerdictRedirect:
		e.stats.Redirect++
	case VerdictToCPU:
		e.stats.ToCPU++
	}
	if t := e.tel; t != nil {
		now := uint64(e.sim.Now())
		if v >= 0 && int(v) < len(t.Verdicts) {
			t.Verdicts[v].Inc()
		}
		t.LatencyNs.Observe(now - c.ctx.TimestampNs)
		if t.Tracer != nil {
			t.Tracer.Hop(c.ctx.TraceID, telemetry.StageVerdict, now, len(c.ctx.Data), uint8(v))
		}
	}
	if e.out != nil {
		e.out(v, &c.ctx)
	}
	c.ctx = Ctx{} // drop the frame reference so pooling doesn't pin buffers
	c.next = e.freeComp
	e.freeComp = c
}

// Frame is one burst-submission element (see SubmitBurst).
type Frame struct {
	Data []byte
	Dir  Direction
}

// EngineStats counts engine activity.
type EngineStats struct {
	In        uint64 // frames accepted
	InBytes   uint64
	QueueDrop uint64 // frames dropped at a full input queue
	Pass      uint64
	Drop      uint64 // verdict drops
	Tx        uint64
	Redirect  uint64
	ToCPU     uint64
}

// NewEngine builds an engine clocked at clockHz with the given datapath
// width, delivering verdicts to out.
func NewEngine(sim *netsim.Simulator, clockHz int64, datapathBits int, out func(Verdict, *Ctx)) *Engine {
	if clockHz <= 0 {
		panic("ppe: clock must be positive")
	}
	if datapathBits < 8 {
		panic("ppe: datapath narrower than one byte")
	}
	e := &Engine{
		sim:          sim,
		clockHz:      clockHz,
		datapathBits: datapathBits,
		out:          out,
		period:       (1_000_000_000_000 + clockHz - 1) / clockHz,
	}
	e.release = func() { e.queued-- }
	return e
}

// SetProgram loads (or replaces, on reconfiguration) the program.
func (e *Engine) SetProgram(p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Handler == nil {
		return fmt.Errorf("ppe: program %q has no handler", p.Name)
	}
	e.prog = p
	e.depth = p.PipelineDepth(e.datapathBits)
	e.progCycles = int64(p.ProgCycles)
	return nil
}

// Program returns the loaded program (nil before SetProgram).
func (e *Engine) Program() *Program { return e.prog }

// ClockHz returns the engine clock.
func (e *Engine) ClockHz() int64 { return e.clockHz }

// DatapathBits returns the datapath width.
func (e *Engine) DatapathBits() int { return e.datapathBits }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// cyclePs returns the clock period in picoseconds (cached at
// construction; the clock never changes after NewEngine).
func (e *Engine) cyclePs() int64 { return e.period }

// ServiceCycles returns the input occupancy of a frame of n bytes: the
// header-streaming occupancy (one datapath word per clock plus the
// realignment bubble), or the program's soft-core execution time when the
// loaded program is instruction-bound (Program.ProgCycles) — whichever
// dominates. For fully pipelined programs this is the pre-existing
// streaming formula unchanged.
func (e *Engine) ServiceCycles(n int) int64 {
	wordBytes := e.datapathBits / 8
	c := int64((n+wordBytes-1)/wordBytes) + 1
	if c < e.progCycles {
		c = e.progCycles
	}
	return c
}

// CapacityPPS returns the maximum sustainable packet rate for frames of n
// bytes.
func (e *Engine) CapacityPPS(n int) float64 {
	return float64(e.clockHz) / float64(e.ServiceCycles(n))
}

// CapacityBitsPerSec returns the maximum sustainable payload bit rate for
// frames of n bytes.
func (e *Engine) CapacityBitsPerSec(n int) float64 {
	return e.CapacityPPS(n) * float64(n) * 8
}

// Latency returns the processing latency (pipeline depth + service) for a
// frame of n bytes, excluding queueing.
func (e *Engine) Latency(n int) netsim.Duration {
	cycles := e.ServiceCycles(n) + int64(e.depth)
	return netsim.Duration((cycles*e.cyclePs() + 999) / 1000)
}

// Utilization returns the fraction of time the pipeline input was busy
// since simulation start.
func (e *Engine) Utilization() float64 {
	nowPs := int64(e.sim.Now()) * 1000
	if nowPs == 0 {
		return 0
	}
	busy := e.busyPs
	if e.busyUntilPs > nowPs {
		busy -= e.busyUntilPs - nowPs // don't count future occupancy
	}
	return float64(busy) / float64(nowPs)
}

// Submit offers a frame to the pipeline. It returns false if the input
// queue is full and the frame was dropped. The data slice is owned by the
// engine until the verdict callback fires; the *Ctx passed to the verdict
// callback is pooled and must not be retained past that callback.
func (e *Engine) Submit(data []byte, dir Direction) bool {
	if e.prog == nil {
		panic("ppe: Submit before SetProgram")
	}
	now := e.sim.Now()
	return e.submitAt(now, int64(now)*1000, data, dir)
}

// SubmitBurst offers a batch of frames back to back, amortizing the
// scheduler interaction (a single clock read) across the batch the way a
// DMA engine posts a descriptor ring. It returns the number of frames
// accepted; the rest were queue drops. Frames are processed in order with
// identical semantics to calling Submit once per frame.
func (e *Engine) SubmitBurst(frames []Frame) int {
	if e.prog == nil {
		panic("ppe: SubmitBurst before SetProgram")
	}
	now := e.sim.Now()
	nowPs := int64(now) * 1000
	accepted := 0
	for i := range frames {
		if e.submitAt(now, nowPs, frames[i].Data, frames[i].Dir) {
			accepted++
		}
	}
	return accepted
}

// submitAt is the allocation-free submission core: occupancy accounting,
// queue admission, and scheduling of the frame's pooled completion.
func (e *Engine) submitAt(now netsim.Time, nowPs int64, data []byte, dir Direction) bool {
	startPs := e.busyUntilPs
	if startPs < nowPs {
		startPs = nowPs
	}
	if e.QueueLimit > 0 && startPs > nowPs && e.queued >= e.QueueLimit {
		e.stats.QueueDrop++
		if e.tel != nil {
			e.tel.QueueDrops.Inc()
		}
		return false
	}
	servicePs := e.ServiceCycles(len(data)) * e.period
	e.busyUntilPs = startPs + servicePs
	e.busyPs += servicePs
	if startPs > nowPs {
		// The frame waits for the pipeline input until its own occupancy
		// ends; release the queue slot then, not at verdict time. Counting
		// the extra pipeline-depth cycles would overstate queue depth and
		// queue-drop bursty arrivals that the real input buffer absorbs.
		e.queued++
		e.sim.ScheduleAtDetached(netsim.Time((e.busyUntilPs+999)/1000), e.release)
	}
	e.stats.In++
	e.stats.InBytes += uint64(len(data))

	c := e.freeComp
	if c != nil {
		e.freeComp = c.next
		c.next = nil
	} else {
		c = &completion{e: e}
	}
	c.ctx = Ctx{Data: data, Dir: dir, TimestampNs: uint64(now)}
	if t := e.tel; t != nil {
		t.FramesIn.Inc()
		t.BytesIn.Add(uint64(len(data)))
		t.QueueDepth.Observe(uint64(e.queued))
		if t.Tracer != nil {
			id := t.Tracer.Current()
			c.ctx.TraceID = id
			t.Tracer.Hop(id, telemetry.StageSubmit, uint64(now), len(data), uint8(dir))
		}
	}
	donePs := e.busyUntilPs + int64(e.depth)*e.period
	e.sim.ScheduleCompletionAt(netsim.Time((donePs+999)/1000), c)
	return true
}

// SetOutput replaces the verdict callback (used when wiring shells).
func (e *Engine) SetOutput(out func(Verdict, *Ctx)) { e.out = out }
