package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Stage identifies one hop of a frame's path through the model.
type Stage uint8

// Trace stages, in datapath order.
const (
	StageGen     Stage = iota + 1 // traffic generator emitted the frame
	StageLinkTx                   // frame fully serialized onto a link
	StageLinkRx                   // frame delivered off a link
	StageRx                       // module ingress (arbiter)
	StageSubmit                   // frame entered the PPE pipeline input
	StageVerdict                  // PPE verdict delivered (Aux = verdict)
	StageTx                       // module egress
)

var stageNames = [...]string{
	StageGen:     "gen",
	StageLinkTx:  "link-tx",
	StageLinkRx:  "link-rx",
	StageRx:      "rx",
	StageSubmit:  "submit",
	StageVerdict: "verdict",
	StageTx:      "tx",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// TraceEvent is one recorded hop of a sampled frame.
type TraceEvent struct {
	ID     uint64 `json:"id"`      // sampled-frame identity; hops share it
	TimeNs uint64 `json:"time_ns"` // simulated timestamp
	Stage  Stage  `json:"stage"`
	Len    uint32 `json:"len"` // frame length in bytes
	Aux    uint8  `json:"aux"` // stage-specific (verdict code, port, direction)
}

// traceSlot is one ring entry. Every field is atomic so concurrent
// recorders and dumpers are race-free. The slot's seq word doubles as a
// per-slot seqlock: a published event stores seq<<1; a writer claims the
// slot with CAS(seq<<1|1), stores the payload words, then publishes
// seq<<1. Readers accept a slot only when they see the same even seq
// before and after reading the payload. A writer that loses the CAS (two
// writers lapped onto one slot after a ring wrap) drops its event rather
// than spinning — the ring is overwriting that history anyway — so the
// record path stays wait-free and no torn payload can ever be published.
type traceSlot struct {
	seq  atomic.Uint64 // seq<<1 published, seq<<1|1 mid-write; 0 = never written
	id   atomic.Uint64
	time atomic.Uint64
	meta atomic.Uint64 // stage<<48 | aux<<40 | len
}

// Tracer is the sampled packet-trace ring: a 1-in-N sampler assigning
// trace IDs, an ambient "current frame" register threaded through the
// synchronous segments of the datapath (sim-thread only), and a fixed
// power-of-two ring of hop events overwritten oldest-first.
//
// Hop and Sample are hot-path safe: zero allocations, no locks. Events
// carries the slow-path dump.
type Tracer struct {
	every uint64 // sample 1 in every
	mask  uint64
	seen  atomic.Uint64 // frames offered to the sampler
	ids   atomic.Uint64 // trace IDs assigned
	cur   atomic.Uint64 // ambient current trace ID (0 = unsampled frame)
	wpos  atomic.Uint64 // next event index (1-based sequence = wpos)
	ring  []traceSlot
}

// NewTracer builds a tracer sampling one in every frames into a ring of
// at least size events (rounded up to a power of two). every <= 1 traces
// every frame.
func NewTracer(every int, size int) *Tracer {
	if every < 1 {
		every = 1
	}
	if size < 16 {
		size = 16
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Tracer{every: uint64(every), mask: uint64(n - 1), ring: make([]traceSlot, n)}
}

// SampleEvery returns the configured 1-in-N sampling period.
func (t *Tracer) SampleEvery() int { return int(t.every) }

// Cap returns the ring capacity in events.
func (t *Tracer) Cap() int { return len(t.ring) }

// Seen returns how many frames were offered to the sampler.
func (t *Tracer) Seen() uint64 { return t.seen.Load() }

// Sampled returns how many frames were selected for tracing.
func (t *Tracer) Sampled() uint64 { return t.ids.Load() }

// Sample decides whether the next frame is traced, assigning its trace
// ID when it is. Zero allocations, no locks.
func (t *Tracer) Sample() (uint64, bool) {
	n := t.seen.Add(1)
	if n%t.every != 0 {
		return 0, false
	}
	return t.ids.Add(1), true
}

// SetCurrent installs the ambient trace ID for the synchronous call
// segment that follows (generator emit, link delivery, module rx). The
// datapath is single-threaded inside one simulator, so a plain register
// suffices semantically; it is atomic so dumps racing with a live sim
// stay race-clean.
func (t *Tracer) SetCurrent(id uint64) { t.cur.Store(id) }

// Current returns the ambient trace ID (0 when the in-flight frame is
// not sampled).
func (t *Tracer) Current() uint64 { return t.cur.Load() }

// Hop records one event for trace id. id == 0 (unsampled) is a no-op, so
// call sites stay branch-light. Zero allocations, no locks.
func (t *Tracer) Hop(id uint64, stage Stage, timeNs uint64, frameLen int, aux uint8) {
	if id == 0 {
		return
	}
	seq := t.wpos.Add(1)
	s := &t.ring[(seq-1)&t.mask]
	for {
		old := s.seq.Load()
		if old>>1 >= seq || old&1 == 1 {
			// A newer event owns (or owned) the slot, or an older writer is
			// mid-publish: drop ours. Only reachable when recorders lap the
			// ring, where this event was about to be overwritten regardless.
			return
		}
		if s.seq.CompareAndSwap(old, seq<<1|1) {
			break
		}
	}
	s.id.Store(id)
	s.time.Store(timeNs)
	s.meta.Store(uint64(stage)<<48 | uint64(aux)<<40 | uint64(uint32(frameLen)))
	s.seq.Store(seq << 1)
}

// Events returns the buffered hops, oldest first. It tolerates racing
// recorders: slots being overwritten mid-read are skipped. Slow path —
// allocates the result.
func (t *Tracer) Events() []TraceEvent {
	w := t.wpos.Load()
	n := uint64(len(t.ring))
	start := uint64(1)
	if w > n {
		start = w - n + 1
	}
	out := make([]TraceEvent, 0, w-start+1)
	for seq := start; seq <= w; seq++ {
		s := &t.ring[(seq-1)&t.mask]
		if s.seq.Load() != seq<<1 {
			continue // not yet published, dropped, or already overwritten
		}
		id := s.id.Load()
		time := s.time.Load()
		meta := s.meta.Load()
		if s.seq.Load() != seq<<1 {
			continue // overwritten while reading
		}
		out = append(out, TraceEvent{
			ID:     id,
			TimeNs: time,
			Stage:  Stage(meta >> 48),
			Len:    uint32(meta),
			Aux:    uint8(meta >> 40),
		})
	}
	return out
}

// Reset drops all buffered events and restarts the sampler counters.
// Management plane only.
func (t *Tracer) Reset() {
	t.wpos.Store(0)
	t.seen.Store(0)
	t.ids.Store(0)
	t.cur.Store(0)
	for i := range t.ring {
		t.ring[i].seq.Store(0)
	}
}
