package apps

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// Tunnel modes.
const (
	TunnelGRE   = "gre"
	TunnelVXLAN = "vxlan"
	TunnelIPIP  = "ipip"
)

// TunnelConfig configures encapsulation: frames from the edge are wrapped
// toward the optical side; matching tunnel traffic from the optical side
// is unwrapped ("insert tunneling headers for GRE, VXLAN, or IP-in-IP
// without involving the host", §3).
type TunnelConfig struct {
	Mode     string `json:"mode"`
	LocalIP  string `json:"local_ip"`
	RemoteIP string `json:"remote_ip"`
	LocalMAC string `json:"local_mac"`
	// GatewayMAC is the next hop toward the tunnel remote.
	GatewayMAC string `json:"gateway_mac"`
	VNI        uint32 `json:"vni,omitempty"` // VXLAN
	GREKey     uint32 `json:"gre_key,omitempty"`
	TTL        uint8  `json:"ttl,omitempty"`
	// MTU bounds the encapsulated frame (outer packets carry DF); frames
	// that would exceed it are dropped and counted. Default 1518.
	MTU int `json:"mtu,omitempty"`
}

// Tunnel counter indexes (bank "tunnel").
const (
	TunnelEncapped = iota
	TunnelDecapped
	TunnelPassed
	TunnelErrors
	TunnelTooBig
	tunnelCounters
)

// decapStatus classifies an optical-side frame.
type decapStatus int

const (
	// decapPass: not this endpoint's tunnel traffic (wrong destination,
	// non-IP, a foreign tenant's VNI, or a protocol the mode does not
	// own) — forwarded untouched.
	decapPass decapStatus = iota
	// decapOK: a well-formed tunnel frame, inner payload recovered.
	decapOK
	// decapErr: addressed to this endpoint and claiming its tunnel mode,
	// but malformed (truncated or corrupt outer headers) — dropped and
	// counted in TunnelErrors, never silently forwarded.
	decapErr
)

var errInnerNotIPv4 = errors.New("tunnel: ipip inner frame is not IPv4")

type tunnelApp struct {
	prog  *ppe.Program
	state *ppe.State
	ctr   *ppe.CounterBank

	mode            string
	local, remote   netip.Addr
	local4          [4]byte
	localMAC, gwMAC packet.MAC
	vni, greKey     uint32
	ttl             uint8
	mtu             int
	buf             *packet.SerializeBuffer
	v               packet.View
	ring            *frameRing

	// Persistent serialization state: the layer structs and stacks are
	// built once at Configure and reused per frame, so the hot path does
	// not allocate (the property tests pin 0 allocs/op).
	outerEth packet.Ethernet
	outerIP  packet.IPv4
	gre      packet.GRE
	udp      packet.UDP
	vx       packet.VXLAN
	payload  packet.Payload
	encStack []packet.SerializableLayer
	ethStack []packet.SerializableLayer // IPIP decap re-wrap
}

// NewTunnel builds a tunnel endpoint instance.
func NewTunnel() *tunnelApp {
	a := &tunnelApp{state: ppe.NewState(), buf: packet.NewSerializeBuffer()}
	a.ctr = a.state.AddCounters("tunnel", tunnelCounters)
	a.prog = &ppe.Program{
		Name:        "tunnel",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeUDP},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionPush, Bytes: 50}, // worst case: VXLAN outer stack
			{Kind: ppe.ActionPop, Bytes: 50},
			{Kind: ppe.ActionChecksum},
			{Kind: ppe.ActionHash, Bits: 16}, // source-port entropy
			{Kind: ppe.ActionCounterBank, Count: tunnelCounters},
		},
		Stages:  3,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *tunnelApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *tunnelApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *tunnelApp) Configure(config []byte) error {
	var cfg TunnelConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("tunnel: %w", err)
	}
	switch cfg.Mode {
	case TunnelGRE, TunnelVXLAN, TunnelIPIP:
	default:
		return fmt.Errorf("tunnel: unknown mode %q", cfg.Mode)
	}
	local, err := netip.ParseAddr(cfg.LocalIP)
	if err != nil {
		return fmt.Errorf("tunnel local: %w", err)
	}
	remote, err := netip.ParseAddr(cfg.RemoteIP)
	if err != nil {
		return fmt.Errorf("tunnel remote: %w", err)
	}
	if !local.Is4() || !remote.Is4() {
		return fmt.Errorf("tunnel: IPv4 endpoints required")
	}
	lmac, err := packet.ParseMAC(cfg.LocalMAC)
	if err != nil {
		return fmt.Errorf("tunnel local MAC: %w", err)
	}
	gmac, err := packet.ParseMAC(cfg.GatewayMAC)
	if err != nil {
		return fmt.Errorf("tunnel gateway MAC: %w", err)
	}
	a.mode, a.local, a.remote = cfg.Mode, local, remote
	a.local4 = local.As4()
	a.localMAC, a.gwMAC = lmac, gmac
	a.vni, a.greKey = cfg.VNI, cfg.GREKey
	a.ttl = cfg.TTL
	if a.ttl == 0 {
		a.ttl = 64
	}
	a.mtu = cfg.MTU
	if a.mtu == 0 {
		a.mtu = 1518
	}
	return a.buildStacks()
}

// buildStacks prepares the persistent outer-header layer structs and the
// per-mode serialization stack.
func (a *tunnelApp) buildStacks() error {
	a.outerEth = packet.Ethernet{SrcMAC: a.localMAC, DstMAC: a.gwMAC, EtherType: packet.EtherTypeIPv4}
	a.outerIP = packet.IPv4{TTL: a.ttl, SrcIP: a.local, DstIP: a.remote, DontFrag: true}
	switch a.mode {
	case TunnelGRE:
		a.outerIP.Protocol = packet.IPProtocolGRE
		a.gre = packet.GRE{Protocol: packet.EtherTypeTransparentEthernet}
		if a.greKey != 0 {
			a.gre.KeyPresent = true
			a.gre.Key = a.greKey
		}
		a.encStack = []packet.SerializableLayer{&a.outerEth, &a.outerIP, &a.gre, &a.payload}
	case TunnelVXLAN:
		a.outerIP.Protocol = packet.IPProtocolUDP
		a.udp = packet.UDP{DstPort: packet.PortVXLAN}
		if err := a.udp.SetNetworkLayerForChecksum(a.local, a.remote); err != nil {
			return err
		}
		a.vx = packet.VXLAN{VNI: a.vni}
		a.encStack = []packet.SerializableLayer{&a.outerEth, &a.outerIP, &a.udp, &a.vx, &a.payload}
	case TunnelIPIP:
		a.outerIP.Protocol = packet.IPProtocolIPv4
		a.encStack = []packet.SerializableLayer{&a.outerEth, &a.outerIP, &a.payload}
	}
	a.ethStack = []packet.SerializableLayer{&a.outerEth, &a.payload}
	if a.ring == nil {
		a.ring = newFrameRing()
	}
	return nil
}

func (a *tunnelApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if a.mode == "" {
		return ppe.VerdictPass
	}
	switch ctx.Dir {
	case ppe.DirEdgeToOptical:
		out, err := a.encap(ctx.Data)
		if err != nil {
			a.ctr.Inc(TunnelErrors, len(ctx.Data))
			return ppe.VerdictDrop
		}
		if len(out) > a.mtu {
			// The outer header would push the frame past the egress MTU;
			// outer packets carry DF, so the hardware drops (an ICMP
			// too-big would be the control plane's job). The counter
			// records the would-be encapped size — not the inner size —
			// so MTU headroom is directly measurable from it.
			a.ctr.Inc(TunnelTooBig, len(out))
			return ppe.VerdictDrop
		}
		ctx.Data = out
		a.ctr.Inc(TunnelEncapped, len(out))
	case ppe.DirOpticalToEdge:
		out, st := a.decap(ctx.Data)
		switch st {
		case decapPass:
			a.ctr.Inc(TunnelPassed, len(ctx.Data))
			return ppe.VerdictPass
		case decapErr:
			a.ctr.Inc(TunnelErrors, len(ctx.Data))
			return ppe.VerdictDrop
		}
		ctx.Data = out
		a.ctr.Inc(TunnelDecapped, len(out))
	}
	return ppe.VerdictPass
}

func (a *tunnelApp) encap(data []byte) ([]byte, error) {
	switch a.mode {
	case TunnelGRE:
		a.payload = packet.Payload(data)
	case TunnelVXLAN:
		// Source-port entropy from the inner frame keeps ECMP balanced.
		a.udp.SrcPort = uint16(49152 + packet.FNV64(data[:min(34, len(data))])%16384)
		a.payload = packet.Payload(data)
	case TunnelIPIP:
		// IP-in-IP carries the inner IP packet only.
		if !a.v.Parse(data) || !a.v.IsIPv4 {
			return nil, errInnerNotIPv4
		}
		a.payload = packet.Payload(data[a.v.L3Off:])
	}
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(a.buf, opts, a.encStack...); err != nil {
		return nil, err
	}
	out := a.ring.take(a.buf.Len())
	copy(out, a.buf.Bytes())
	return out, nil
}

// decap classifies an optical-side frame and strips the tunnel header
// when it is well-formed tunnel traffic addressed to this endpoint.
func (a *tunnelApp) decap(data []byte) ([]byte, decapStatus) {
	if !a.v.Parse(data) || !a.v.IsIPv4 {
		return nil, decapPass
	}
	v := &a.v
	l4 := v.L3Off + v.IPv4HeaderLen()
	if [4]byte(v.DstIPv4()) != a.local4 {
		return nil, decapPass
	}
	switch {
	case a.mode == TunnelGRE && v.Proto == packet.IPProtocolGRE:
		var gre packet.GRE
		if gre.DecodeFromBytes(data[l4:]) != nil ||
			gre.Protocol != packet.EtherTypeTransparentEthernet {
			return nil, decapErr
		}
		inner := gre.LayerPayload()
		out := a.ring.take(len(inner))
		copy(out, inner)
		return out, decapOK
	case a.mode == TunnelVXLAN && v.Proto == packet.IPProtocolUDP && v.DstPort == packet.PortVXLAN:
		if len(data) < l4+16 {
			return nil, decapErr
		}
		var vx packet.VXLAN
		if vx.DecodeFromBytes(data[l4+8:]) != nil {
			return nil, decapErr
		}
		if vx.VNI != a.vni {
			// Well-formed but a different tenant's segment: not ours to
			// open — forward untouched.
			return nil, decapPass
		}
		inner := vx.LayerPayload()
		out := a.ring.take(len(inner))
		copy(out, inner)
		return out, decapOK
	case a.mode == TunnelIPIP && v.Proto == packet.IPProtocolIPv4:
		// Re-wrap the inner IP packet in an Ethernet frame toward the
		// edge host.
		a.payload = packet.Payload(data[l4:])
		if packet.SerializeLayers(a.buf, packet.SerializeOptions{}, a.ethStack...) != nil {
			return nil, decapErr
		}
		out := a.ring.take(a.buf.Len())
		copy(out, a.buf.Bytes())
		return out, decapOK
	}
	return nil, decapPass
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
