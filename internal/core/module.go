package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/flash"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/opt"
	"flexsfp/internal/packet"
	"flexsfp/internal/phy"
	"flexsfp/internal/ppe"
	"flexsfp/internal/telemetry"
)

// PortID identifies a module interface.
type PortID int

// Module ports.
const (
	PortEdge    PortID = 0 // electrical/host side
	PortOptical PortID = 1 // fiber side
	PortControl PortID = 2 // dedicated control-plane port (ActiveCore only)
	numPorts           = 3
)

func (p PortID) String() string {
	switch p {
	case PortEdge:
		return "edge"
	case PortOptical:
		return "optical"
	case PortControl:
		return "control"
	default:
		return fmt.Sprintf("port(%d)", int(p))
	}
}

// moduleState is the boot FSM state.
type moduleState int

const (
	stateEmpty moduleState = iota
	stateRunning
	stateRebooting
)

// FPGAConfigTime is the PolarFire configuration time from SPI flash.
const FPGAConfigTime = 30 * netsim.Millisecond

// Module errors.
var (
	ErrNotRunning   = errors.New("core: module not running")
	ErrRebooting    = errors.New("core: module is rebooting")
	ErrWrongDevice  = errors.New("core: bitstream targets a different device")
	ErrNoRegistry   = errors.New("core: module has no application registry")
	ErrBadSignature = errors.New("core: bitstream signature rejected")
)

// Config describes a FlexSFP module.
type Config struct {
	Sim      *netsim.Simulator
	Name     string
	DeviceID uint32 // used in telemetry hop records and the module MAC
	Shell    hls.Shell
	Registry *Registry
	// AuthKey authenticates over-the-network reconfiguration (§4.2).
	AuthKey []byte
	// QueueLimit bounds the PPE input queue (frames); default 64.
	QueueLimit int
	// DeviceName is the FPGA part; bitstreams for other parts are
	// refused. Default "MPF200T".
	DeviceName string
	// HealthCheckDelay is how long after a reconfigure the watchdog
	// waits before probing the new design; default 1 ms. The watchdog
	// only runs when a health probe is installed (SetHealthProbe).
	HealthCheckDelay netsim.Duration
}

// Stats counts module-level events (engine-level counters live in
// ppe.EngineStats).
type Stats struct {
	Rx            [numPorts]uint64
	Tx            [numPorts]uint64
	ControlFrames uint64 // in-band control frames demuxed to the mgmt core
	RebootDrops   uint64 // data frames dropped while reconfiguring
	PuntToCPU     uint64 // frames the PPE sent to the control plane
	Boots         uint64
	AuthFailures  uint64

	BootFailures    uint64 // reboots whose target slot failed validation/load
	GoldenFallbacks uint64 // recoveries that ended on the golden image
	WatchdogTrips   uint64 // post-reconfigure health probes that failed
}

// Module is a FlexSFP: two (or three) network interfaces around a
// programmable packet processing engine, a management core, and SPI flash
// holding bootable designs.
type Module struct {
	cfg Config
	sim *netsim.Simulator

	Flash *flash.Device
	Laser *phy.Laser

	engine     *ppe.Engine
	app        App
	bs         *bitstream.Bitstream
	state      moduleState
	activeSlot int

	tx [numPorts]func([]byte)

	// controlHandler receives in-band control payloads; each returned
	// slice is sent back as a control frame to the originating port.
	controlHandler func(payload []byte, from PortID) [][]byte
	// puntHandler receives frames the PPE verdicts to the CPU.
	puntHandler func(data []byte, dir ppe.Direction)
	// healthProbe, when installed, is consulted by the watchdog after a
	// reconfigure; returning false marks the new design wedged.
	healthProbe func(slot int) bool

	// burst is the reusable scratch batch the RxBurst entry points stage
	// data frames in before one SubmitBurst into the engine.
	burst []ppe.Frame

	// tel and tracer, when attached (AttachTelemetry), instrument the
	// datapath; the engine re-acquires tel across reboots in bootNow.
	tel    *ppe.Telemetry
	tracer *telemetry.Tracer

	stats Stats
	mac   packet.MAC
}

// NewModule builds a powered-on module with empty flash and no design
// loaded. Wire its transmit callbacks, install a design, then Boot.
func NewModule(cfg Config) *Module {
	if cfg.Sim == nil {
		panic("core: Config.Sim is required")
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 64
	}
	if cfg.DeviceName == "" {
		cfg.DeviceName = "MPF200T"
	}
	m := &Module{
		cfg:   cfg,
		sim:   cfg.Sim,
		Flash: flash.New(),
		Laser: phy.NewLaser(),
	}
	m.mac = packet.MAC{0x02, 0xf5, 0xf0}
	binary.BigEndian.PutUint32(m.mac[2:], cfg.DeviceID) // low 4 bytes hold the ID
	m.mac[0], m.mac[1] = 0x02, 0xf5                     // keep the locally-administered OUI
	return m
}

// Name returns the module's configured name.
func (m *Module) Name() string { return m.cfg.Name }

// DeviceID returns the module's fleet-unique identifier.
func (m *Module) DeviceID() uint32 { return m.cfg.DeviceID }

// MAC returns the module's management MAC address.
func (m *Module) MAC() packet.MAC { return m.mac }

// Shell returns the architecture shell.
func (m *Module) Shell() hls.Shell { return m.cfg.Shell }

// Stats returns a snapshot of module counters.
func (m *Module) Stats() Stats { return m.stats }

// Engine returns the PPE (nil before first boot).
func (m *Module) Engine() *ppe.Engine { return m.engine }

// App returns the running application (nil before first boot).
func (m *Module) App() App { return m.app }

// ActiveSlot returns the flash slot of the running design.
func (m *Module) ActiveSlot() int { return m.activeSlot }

// Running reports whether a design is loaded and processing traffic.
func (m *Module) Running() bool { return m.state == stateRunning }

// SetTx wires the transmit callback of a port.
func (m *Module) SetTx(p PortID, tx func([]byte)) { m.tx[p] = tx }

// SetControlHandler installs the management-core message handler.
func (m *Module) SetControlHandler(h func(payload []byte, from PortID) [][]byte) {
	m.controlHandler = h
}

// SetPuntHandler installs the receiver for VerdictToCPU frames.
func (m *Module) SetPuntHandler(h func(data []byte, dir ppe.Direction)) {
	m.puntHandler = h
}

// SetHealthProbe installs a post-reconfigure health check. After every
// Reboot that boots successfully, the watchdog waits HealthCheckDelay and
// calls probe(slot); a false return counts a WatchdogTrip and falls the
// module back to the golden image. A nil probe (the default) disables the
// watchdog entirely — no extra simulator events are scheduled.
func (m *Module) SetHealthProbe(probe func(slot int) bool) {
	m.healthProbe = probe
}

// Install stores an (unsigned, local/JTAG path) encoded bitstream into a
// flash slot and returns the flash programming time.
func (m *Module) Install(slot int, encoded []byte) (netsim.Duration, error) {
	return m.Flash.StoreBitstream(slot, encoded)
}

// InstallSigned verifies an HMAC-signed bitstream against the module's
// auth key, checks the target device, and stores it. This is the §4.2
// over-the-network reprogramming path.
func (m *Module) InstallSigned(slot int, signed []byte) (netsim.Duration, error) {
	body, err := bitstream.Verify(signed, m.cfg.AuthKey)
	if err != nil {
		m.stats.AuthFailures++
		return 0, fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	bs, err := bitstream.Decode(body)
	if err != nil {
		return 0, err
	}
	if bs.Device != m.cfg.DeviceName {
		return 0, fmt.Errorf("%w: bitstream for %q, module has %q",
			ErrWrongDevice, bs.Device, m.cfg.DeviceName)
	}
	// Anti-rollback: refuse images older than the running version of the
	// same application (a re-push of the running version is idempotent).
	if m.state == stateRunning && m.bs != nil && m.bs.AppName == bs.AppName {
		if err := bs.VerifyFreshness(m.bs.AppVersion); err != nil {
			return 0, err
		}
	}
	return m.Flash.StoreBitstream(slot, body)
}

// BootSync loads the design in slot immediately (factory provisioning /
// JTAG path; no simulated delay).
func (m *Module) BootSync(slot int) error { return m.bootNow(slot) }

// Reboot schedules a reboot into slot: the datapath goes down for the
// flash read plus FPGA configuration time, then the new design starts.
// Frames arriving meanwhile are dropped (counted in RebootDrops).
func (m *Module) Reboot(slot int) {
	prev := -1
	if m.state == stateRunning {
		prev = m.activeSlot
	}
	m.state = stateRebooting
	_, readTime, _ := m.Flash.LoadBitstream(slot)
	m.sim.Schedule(readTime+FPGAConfigTime, func() {
		if err := m.bootNow(slot); err != nil {
			// Failed boot: fall back to the previously running design,
			// then to the golden image (§4.2's reboot FSM made safe).
			m.stats.BootFailures++
			m.fallbackBoot(slot, prev)
			return
		}
		m.armWatchdog(slot)
	})
}

// fallbackBoot recovers after the design in badSlot failed: first the
// previously running slot (if any and distinct), then the slot holding the
// golden image, then slot 0 as a last resort. Sets stateEmpty if nothing
// boots.
func (m *Module) fallbackBoot(badSlot, prevSlot int) {
	if prevSlot >= 0 && prevSlot != badSlot && m.bootNow(prevSlot) == nil {
		m.noteFallback()
		return
	}
	if g := m.goldenSlot(); g >= 0 && g != badSlot && g != prevSlot && m.bootNow(g) == nil {
		m.noteFallback()
		return
	}
	if badSlot != 0 && prevSlot != 0 && m.bootNow(0) == nil {
		m.noteFallback()
		return
	}
	m.state = stateEmpty
}

// noteFallback counts a successful fallback boot that landed on the
// golden image.
func (m *Module) noteFallback() {
	if m.bs != nil && m.bs.Golden() {
		m.stats.GoldenFallbacks++
	}
}

// goldenSlot scans flash for the slot holding the factory golden image,
// or -1 if none is stored.
func (m *Module) goldenSlot() int {
	for slot := 0; slot < flash.NumSlots; slot++ {
		if bs, _, err := m.Flash.LoadBitstream(slot); err == nil && bs.Golden() {
			return slot
		}
	}
	return -1
}

// armWatchdog schedules the one-shot post-reconfigure health check. It is
// a no-op unless a health probe is installed, so the default simulator
// event stream is unchanged.
func (m *Module) armWatchdog(slot int) {
	if m.healthProbe == nil {
		return
	}
	delay := m.cfg.HealthCheckDelay
	if delay <= 0 {
		delay = netsim.Millisecond
	}
	m.sim.Schedule(delay, func() {
		if m.state != stateRunning || m.activeSlot != slot {
			return // superseded by another reboot
		}
		if m.healthProbe(slot) {
			return
		}
		// Wedged post-reconfigure PPE: the datapath looks up but passes
		// no traffic. Fall back to the golden image.
		m.stats.WatchdogTrips++
		m.state = stateRebooting
		m.fallbackBoot(slot, -1)
	})
}

func (m *Module) bootNow(slot int) error {
	if m.cfg.Registry == nil {
		return ErrNoRegistry
	}
	bs, _, err := m.Flash.LoadBitstream(slot)
	if err != nil {
		return err
	}
	if bs.Device != m.cfg.DeviceName {
		return fmt.Errorf("%w: bitstream for %q, module has %q",
			ErrWrongDevice, bs.Device, m.cfg.DeviceName)
	}
	manifest, err := hls.ParseManifest(bs.Payload)
	if err != nil {
		return err
	}
	app, err := m.cfg.Registry.New(bs.AppName)
	if err != nil {
		return err
	}
	if err := app.Configure(manifest.Config); err != nil {
		return fmt.Errorf("core: configuring %q: %w", bs.AppName, err)
	}
	prog := app.Program()
	if manifest.Optimized {
		// The bitstream was compiled from the optimized structure; apply
		// the same (idempotent) passes to the freshly instantiated app so
		// the structural cross-check below compares like with like.
		prog, _ = opt.Optimize(prog, opt.Options{})
	}
	if prog.Stages != manifest.Stages || len(prog.Tables) != len(manifest.Tables) {
		return fmt.Errorf("core: manifest/program structure mismatch for %q", bs.AppName)
	}
	engine := ppe.NewEngine(m.sim, int64(bs.ClockKHz)*1000, int(bs.DatapathBits), m.verdict)
	engine.QueueLimit = m.cfg.QueueLimit
	if err := engine.SetProgram(prog); err != nil {
		return err
	}
	if m.tel != nil {
		engine.SetTelemetry(m.tel)
	}
	m.engine = engine
	m.app = app
	m.bs = bs
	m.activeSlot = slot
	m.state = stateRunning
	m.stats.Boots++
	return nil
}

// RxEdge receives a frame on the electrical interface.
func (m *Module) RxEdge(data []byte) { m.rx(PortEdge, data) }

// RxOptical receives a frame on the optical interface.
func (m *Module) RxOptical(data []byte) { m.rx(PortOptical, data) }

// RxControl receives a frame on the dedicated control port (ActiveCore).
func (m *Module) RxControl(data []byte) { m.rx(PortControl, data) }

func (m *Module) rx(from PortID, data []byte) {
	m.stats.Rx[from]++
	if tr := m.tracer; tr != nil {
		tr.Hop(tr.Current(), telemetry.StageRx, uint64(m.sim.Now()), len(data), uint8(from))
	}

	// The arbiter demuxes in-band control frames ahead of the PPE in
	// every state except a dead module: configuration must stay reachable
	// (§4.1 "allowing remote access to the control logic without
	// disrupting the dataplane").
	if isControlFrame(data) {
		m.handleControl(from, data)
		return
	}

	if from == PortControl {
		// Data on the control port is not forwarded.
		return
	}

	if m.state != stateRunning {
		m.stats.RebootDrops++
		return
	}

	dir := ppe.DirEdgeToOptical
	if from == PortOptical {
		dir = ppe.DirOpticalToEdge
	}

	// One-Way-Filter: the PPE sits on the edge→optical path only; the
	// reverse direction is a pure merge toward the edge.
	if m.cfg.Shell == hls.OneWayFilter && dir == ppe.DirOpticalToEdge {
		m.send(PortEdge, data)
		return
	}

	m.engine.Submit(data, dir)
}

// RxEdgeBurst receives a batch of frames on the electrical interface.
func (m *Module) RxEdgeBurst(frames [][]byte) { m.rxBurst(PortEdge, frames) }

// RxOpticalBurst receives a batch of frames on the optical interface.
func (m *Module) RxOpticalBurst(frames [][]byte) { m.rxBurst(PortOptical, frames) }

// rxBurst is the batched receive path: frames are demuxed exactly like
// rx, but consecutive data frames are staged and offered to the PPE with
// one SubmitBurst, amortizing scheduler interaction the way a descriptor
// ring amortizes doorbell writes. Any frame that cannot join the batch
// (control traffic, filter bypass) flushes the staged frames first so
// per-frame ordering is preserved.
func (m *Module) rxBurst(from PortID, frames [][]byte) {
	dir := ppe.DirEdgeToOptical
	if from == PortOptical {
		dir = ppe.DirOpticalToEdge
	}
	batch := m.burst[:0]
	for _, data := range frames {
		m.stats.Rx[from]++
		if isControlFrame(data) {
			if len(batch) > 0 {
				m.engine.SubmitBurst(batch)
				batch = batch[:0]
			}
			m.handleControl(from, data)
			continue
		}
		if m.state != stateRunning {
			m.stats.RebootDrops++
			continue
		}
		if m.cfg.Shell == hls.OneWayFilter && dir == ppe.DirOpticalToEdge {
			if len(batch) > 0 {
				m.engine.SubmitBurst(batch)
				batch = batch[:0]
			}
			m.send(PortEdge, data)
			continue
		}
		batch = append(batch, ppe.Frame{Data: data, Dir: dir})
	}
	if len(batch) > 0 {
		m.engine.SubmitBurst(batch)
	}
	// Keep the grown scratch but drop frame references so pooled buffers
	// aren't pinned between bursts.
	for i := range batch {
		batch[i] = ppe.Frame{}
	}
	m.burst = batch[:0]
}

func (m *Module) verdict(v ppe.Verdict, ctx *ppe.Ctx) {
	if tr := m.tracer; tr != nil {
		// The sends below are the synchronous continuation of this frame;
		// the ambient register carries its trace ID onto the egress link.
		tr.SetCurrent(ctx.TraceID)
		defer tr.SetCurrent(0)
	}
	ingress, egress := PortEdge, PortOptical
	if ctx.Dir == ppe.DirOpticalToEdge {
		ingress, egress = PortOptical, PortEdge
	}
	switch v {
	case ppe.VerdictPass:
		m.send(egress, ctx.Data)
	case ppe.VerdictDrop:
		// Dropped; engine already counted it.
	case ppe.VerdictTx:
		m.send(ingress, ctx.Data)
	case ppe.VerdictRedirect:
		p := PortID(ctx.RedirectPort)
		if p >= 0 && p < numPorts {
			m.send(p, ctx.Data)
		}
	case ppe.VerdictToCPU:
		m.stats.PuntToCPU++
		if m.puntHandler != nil {
			m.puntHandler(ctx.Data, ctx.Dir)
		}
	}
}

func (m *Module) send(p PortID, data []byte) {
	if p == PortControl && m.cfg.Shell != hls.ActiveCore {
		return
	}
	if m.tx[p] == nil {
		return
	}
	m.stats.Tx[p]++
	if tr := m.tracer; tr != nil {
		tr.Hop(tr.Current(), telemetry.StageTx, uint64(m.sim.Now()), len(data), uint8(p))
	}
	m.tx[p](data)
}

// SendFrom lets the control plane originate traffic on a port — the
// Active-Core capability (§4.1: "the control plane … can also originate
// and terminate traffic").
func (m *Module) SendFrom(p PortID, data []byte) error {
	if m.cfg.Shell != hls.ActiveCore && p == PortControl {
		return fmt.Errorf("core: shell %v has no control port", m.cfg.Shell)
	}
	m.send(p, data)
	return nil
}

// isControlFrame peeks at the EtherType (handling one optional VLAN tag).
func isControlFrame(data []byte) bool {
	if len(data) < 14 {
		return false
	}
	et := packet.EtherType(binary.BigEndian.Uint16(data[12:14]))
	if et == packet.EtherTypeDot1Q || et == packet.EtherTypeQinQ {
		if len(data) < 18 {
			return false
		}
		et = packet.EtherType(binary.BigEndian.Uint16(data[16:18]))
	}
	return et == packet.EtherTypeFlexControl
}

func (m *Module) handleControl(from PortID, data []byte) {
	m.stats.ControlFrames++
	if m.controlHandler == nil {
		return
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(data); err != nil {
		return
	}
	payload := eth.LayerPayload()
	if eth.EtherType == packet.EtherTypeDot1Q || eth.EtherType == packet.EtherTypeQinQ {
		var tag packet.Dot1Q
		if err := tag.DecodeFromBytes(payload); err != nil {
			return
		}
		payload = tag.LayerPayload()
	}
	for _, resp := range m.controlHandler(payload, from) {
		m.sendControl(from, eth.SrcMAC, resp)
	}
}

func (m *Module) sendControl(to PortID, dst packet.MAC, payload []byte) {
	buf := packet.NewSerializeBuffer()
	pl := packet.Payload(payload)
	err := packet.SerializeLayers(buf, packet.SerializeOptions{},
		&packet.Ethernet{SrcMAC: m.mac, DstMAC: dst, EtherType: packet.EtherTypeFlexControl},
		&pl)
	if err != nil {
		return
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	m.send(to, out)
}

// DDM returns a diagnostics snapshot reflecting the laser state and the
// module's activity (temperature rises with load).
func (m *Module) DDM() phy.DDM {
	util := 0.0
	if m.engine != nil {
		util = m.engine.Utilization()
	}
	return phy.DDM{
		TemperatureC: 40 + 15*util,
		VccVolts:     3.3,
		TxBiasMA:     m.Laser.EffectiveBiasMilliAmps(),
		TxPowerDBm:   m.Laser.OutputPowerDBm(),
		RxPowerDBm:   -4.0,
	}
}

// EEPROM returns the module's SFF-8472 A0h identification page: the
// FlexSFP presents as a standards-compliant 10GBASE-SR part (the §2.1
// drop-in property) with its identity in the vendor fields.
func (m *Module) EEPROM() []byte {
	return phy.EncodeEEPROM(phy.Identity{
		VendorName:   "FLEXSFP",
		VendorPN:     "FSP-10G-SR-P",
		VendorRev:    "1A",
		VendorSN:     fmt.Sprintf("FS26%08d", m.cfg.DeviceID),
		DateCode:     "260706",
		Is10GBaseSR:  true,
		DDMSupported: true,
	})
}
