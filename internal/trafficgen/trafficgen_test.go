package trafficgen

import (
	"math"
	"testing"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

var (
	gMacA = packet.MustMAC("02:00:00:00:00:0a")
	gMacB = packet.MustMAC("02:00:00:00:00:0b")
)

func TestConstantRate(t *testing.T) {
	sim := netsim.New(1)
	var got int
	g := New(sim, Config{PPS: 1e6, SrcMAC: gMacA, DstMAC: gMacB}, func(b []byte) bool {
		got++
		return true
	})
	g.Run(1000)
	sim.Run()
	if got != 1000 || g.Sent != 1000 {
		t.Errorf("got %d frames, sent %d", got, g.Sent)
	}
	// 1000 frames at 1 Mpps = 1 ms.
	if math.Abs(sim.Now().Seconds()-0.001) > 0.0001 {
		t.Errorf("finished at %v", sim.Now())
	}
}

func TestFixedSizeFrames(t *testing.T) {
	sim := netsim.New(1)
	g := New(sim, Config{
		PPS: 1e6, Sizes: []IMIXEntry{{Size: 128, Weight: 1}},
		SrcMAC: gMacA, DstMAC: gMacB,
	}, func(b []byte) bool {
		if len(b) != 128 {
			t.Fatalf("frame size = %d", len(b))
		}
		return true
	})
	g.Run(50)
	sim.Run()
}

func TestIMIXDistribution(t *testing.T) {
	sim := netsim.New(2)
	sizes := map[int]int{}
	g := New(sim, Config{
		PPS: 1e6, Sizes: SimpleIMIX(), SrcMAC: gMacA, DstMAC: gMacB,
	}, func(b []byte) bool {
		sizes[len(b)]++
		return true
	})
	g.Run(12000)
	sim.Run()
	// 7:4:1 → ≈58%/33%/8%.
	total := 12000.0
	if f := float64(sizes[64]) / total; math.Abs(f-7.0/12) > 0.03 {
		t.Errorf("64B fraction = %.3f", f)
	}
	if f := float64(sizes[594]) / total; math.Abs(f-4.0/12) > 0.03 {
		t.Errorf("594B fraction = %.3f", f)
	}
	if f := float64(sizes[1518]) / total; math.Abs(f-1.0/12) > 0.03 {
		t.Errorf("1518B fraction = %.3f", f)
	}
	if g.MeanFrameSize() < 300 || g.MeanFrameSize() > 400 {
		t.Errorf("mean size = %.0f", g.MeanFrameSize())
	}
}

func TestFlowsAreDistinctAndDecodable(t *testing.T) {
	sim := netsim.New(3)
	ports := map[uint16]bool{}
	g := New(sim, Config{
		PPS: 1e6, Flows: 16, SrcMAC: gMacA, DstMAC: gMacB,
	}, func(b []byte) bool {
		pkt := packet.NewPacket(b, packet.LayerTypeEthernet)
		if pkt.ErrorLayer() != nil {
			t.Fatal(pkt.ErrorLayer())
		}
		u := pkt.Layer(packet.LayerTypeUDP).(*packet.UDP)
		ports[u.SrcPort] = true
		return true
	})
	g.Run(500)
	sim.Run()
	if len(ports) != 16 {
		t.Errorf("distinct flows seen = %d, want 16", len(ports))
	}
}

func TestZipfSkew(t *testing.T) {
	sim := netsim.New(4)
	counts := map[uint16]int{}
	// Parser and decoded slice are reused across frames — the zero-alloc
	// decode idiom consumers of the generator should follow.
	var eth packet.Ethernet
	var ip packet.IPv4
	var udp packet.UDP
	p := packet.NewParser(packet.LayerTypeEthernet, &eth, &ip, &udp)
	decoded := make([]packet.LayerType, 0, 4)
	g := New(sim, Config{
		PPS: 1e6, Flows: 64, ZipfS: 1.2, SrcMAC: gMacA, DstMAC: gMacB,
	}, func(b []byte) bool {
		if err := p.DecodeLayers(b, &decoded); err != nil {
			t.Fatal(err)
		}
		counts[udp.SrcPort]++
		PutBuffer(b)
		return true
	})
	g.Run(5000)
	sim.Run()
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The head flow should dominate far beyond uniform (5000/64 ≈ 78).
	if max < 500 {
		t.Errorf("head flow has %d packets; Zipf skew too weak", max)
	}
}

func TestRefusedCounting(t *testing.T) {
	sim := netsim.New(1)
	n := 0
	g := New(sim, Config{PPS: 1e6, SrcMAC: gMacA, DstMAC: gMacB}, func(b []byte) bool {
		n++
		return n%2 == 0
	})
	g.Run(100)
	sim.Run()
	if g.Refused != 50 {
		t.Errorf("refused = %d, want 50", g.Refused)
	}
}

func TestStop(t *testing.T) {
	sim := netsim.New(1)
	g := New(sim, Config{PPS: 1e6, SrcMAC: gMacA, DstMAC: gMacB}, func(b []byte) bool { return true })
	g.Run(0) // unbounded
	sim.Schedule(50*netsim.Microsecond, func() { g.Stop() })
	sim.Run()
	if g.Sent < 40 || g.Sent > 60 {
		t.Errorf("sent %d frames before stop, want ≈50", g.Sent)
	}
}

func TestJitterChangesSpacingButNotRate(t *testing.T) {
	sim := netsim.New(5)
	g := New(sim, Config{PPS: 1e6, Jitter: 0.5, SrcMAC: gMacA, DstMAC: gMacB},
		func(b []byte) bool { return true })
	g.Run(10000)
	sim.Run()
	rate := float64(g.Sent) / sim.Now().Seconds()
	if math.Abs(rate-1e6)/1e6 > 0.05 {
		t.Errorf("jittered rate = %.0f pps, want ≈1e6", rate)
	}
}

func TestGeneratorCopiesFrames(t *testing.T) {
	sim := netsim.New(1)
	var prev []byte
	g := New(sim, Config{PPS: 1e6, SrcMAC: gMacA, DstMAC: gMacB}, func(b []byte) bool {
		if prev != nil {
			prev[0] = 0xEE // mutate previous; must not affect next frame
		}
		if b[0] == 0xEE {
			t.Fatal("generator reused a mutated buffer")
		}
		prev = b
		return true
	})
	g.Run(10)
	sim.Run()
}
