package main

// In-process end-to-end test of the daemon + ctl pair: boot flexsfpd on a
// loopback port via internal/daemon (the same code path cmd/flexsfpd
// wraps), then drive ctl subcommands — including the telemetry reads —
// through run() exactly as the CLI would.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"flexsfp/internal/daemon"
	"flexsfp/internal/telemetry"
)

const natConfig = `{"direction":"edge-to-optical","mappings":[{"internal":"10.0.0.1","external":"203.0.113.1"}]}`

func startDaemon(t *testing.T, cfg daemon.Config) *daemon.Daemon {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Name == "" {
		cfg.Name = "e2e-0"
	}
	if cfg.App == "" {
		cfg.App = "nat"
		cfg.ConfigJSON = natConfig
	}
	if cfg.Shell == "" {
		cfg.Shell = "two-way-core"
	}
	d, err := daemon.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func ctl(t *testing.T, addr string, args ...string) string {
	t.Helper()
	var buf strings.Builder
	if err := run(append([]string{"-addr", addr}, args...), &buf); err != nil {
		t.Fatalf("ctl %v: %v", args, err)
	}
	return buf.String()
}

func TestEndToEnd(t *testing.T) {
	d := startDaemon(t, daemon.Config{
		DeviceID: 7, Telemetry: true, TraceEvery: 1,
		TrafficPPS: 1000, MetricsAddr: "127.0.0.1:0",
	})
	addr := d.Addr()

	out := ctl(t, addr, "ping")
	if !strings.Contains(out, `module "e2e-0" device=7`) {
		t.Fatalf("ping output: %q", out)
	}

	out = ctl(t, addr, "stats")
	if !strings.Contains(out, "app=nat") || !strings.Contains(out, "running=true") {
		t.Fatalf("stats output: %q", out)
	}

	// metrics must return the live snapshot as JSON with the traffic the
	// daemon pre-ran reflected in the PPE counters.
	out = ctl(t, addr, "metrics")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("metrics output not JSON: %v\n%s", err, out)
	}
	framesIn, ok := snap.Counter("ppe.frames_in")
	if !ok || framesIn == 0 {
		t.Fatalf("ppe.frames_in = %d (ok=%v) in snapshot %s", framesIn, ok, out)
	}
	if _, ok := snap.Histogram("ppe.latency_ns"); !ok {
		t.Fatal("snapshot missing ppe.latency_ns")
	}
	if snap.TraceSampled == 0 {
		t.Fatal("snapshot shows no sampled traces")
	}

	// trace must dump buffered events, respecting -max.
	out = ctl(t, addr, "trace", "-max", "8")
	if !strings.Contains(out, "8 events") {
		t.Fatalf("trace output: %q", out)
	}
	if !strings.Contains(out, "gen") && !strings.Contains(out, "submit") {
		t.Fatalf("trace output has no recognizable stages: %q", out)
	}

	// The NAT app's table is programmable over the same session.
	out = ctl(t, addr, "slots")
	if !strings.Contains(out, "slot 1:") {
		t.Fatalf("slots output: %q", out)
	}

	// HTTP metrics endpoint serves the same snapshot.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", d.MetricsAddr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d\n%s", resp.StatusCode, body)
	}
	var httpSnap telemetry.Snapshot
	if err := json.Unmarshal(body, &httpSnap); err != nil {
		t.Fatalf("HTTP metrics not JSON: %v\n%s", err, body)
	}
	if v, _ := httpSnap.Counter("ppe.frames_in"); v != framesIn {
		t.Fatalf("HTTP snapshot frames_in = %d, ctl saw %d", v, framesIn)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/traces", d.MetricsAddr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var evs []telemetry.TraceEvent
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("HTTP traces not JSON: %v\n%s", err, body)
	}
	if len(evs) == 0 {
		t.Fatal("HTTP traces empty")
	}
}

func TestEndToEndTelemetryDisabled(t *testing.T) {
	d := startDaemon(t, daemon.Config{Telemetry: false})
	var buf strings.Builder
	err := run([]string{"-addr", d.Addr(), "metrics"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "telemetry not enabled") {
		t.Fatalf("metrics with telemetry off: err=%v out=%q", err, buf.String())
	}
	err = run([]string{"-addr", d.Addr(), "trace"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "tracing not enabled") {
		t.Fatalf("trace with telemetry off: err=%v", err)
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Fatal("expected error for unknown subcommand")
	}
}

// TestEndToEndSharded boots the daemon on the parallel simulation core:
// the module on shard 0, the traffic source on shard 1 behind a
// cross-shard 10G wire. The same management surface must work and the
// pre-run traffic must reach the PPE through the portal.
func TestEndToEndSharded(t *testing.T) {
	d := startDaemon(t, daemon.Config{
		DeviceID: 9, Telemetry: true, TraceEvery: 1,
		TrafficPPS: 1000, SimShards: 2,
	})
	addr := d.Addr()

	out := ctl(t, addr, "ping")
	if !strings.Contains(out, `module "e2e-0" device=9`) {
		t.Fatalf("ping output: %q", out)
	}
	out = ctl(t, addr, "stats")
	if !strings.Contains(out, "app=nat") || !strings.Contains(out, "running=true") {
		t.Fatalf("stats output: %q", out)
	}
	out = ctl(t, addr, "metrics")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("metrics output not JSON: %v\n%s", err, out)
	}
	framesIn, ok := snap.Counter("ppe.frames_in")
	if !ok || framesIn == 0 {
		t.Fatalf("sharded daemon: ppe.frames_in = %d (ok=%v); traffic did not cross the portal", framesIn, ok)
	}
}
