package apps

import (
	"encoding/json"
	"fmt"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// DHCPSnoopBindings is the snooped lease-table capacity.
const DHCPSnoopBindings = 8192

// DHCPSnoopConfig configures DHCP snooping: server messages are only
// accepted from the trusted (optical/uplink) side, and each ACK observed
// there populates an IP→MAC lease binding table that downstream apps
// (notably the ARP-spoof guard) can treat as authoritative.
type DHCPSnoopConfig struct {
	// TrustedDirection is the side DHCP servers live on; frames carrying
	// server messages from the other side are rogue and dropped.
	// Default "optical-to-edge".
	TrustedDirection string `json:"trusted_direction,omitempty"`
	// DropUntrustedRelease drops RELEASE/DECLINE from the edge whose
	// client MAC does not match the snooped binding for the released IP
	// (a common lease-starvation attack).
	DropUntrustedRelease bool `json:"drop_untrusted_release,omitempty"`
}

// DHCP-snooping counter indexes (bank "dhcpsnoop").
const (
	DHCPSnoopPassed = iota
	DHCPSnoopLearned
	DHCPSnoopRogueDropped
	DHCPSnoopReleaseDropped
	DHCPSnoopNonDHCP
	dhcpSnoopCounters
)

type dhcpSnoopApp struct {
	prog        *ppe.Program
	state       *ppe.State
	leases      *ppe.Table // client IPv4(32b) → MAC(48b)
	ctr         *ppe.CounterBank
	trustedDir  string
	dropRelease bool
	v           packet.View
}

// NewDHCPSnoop builds a DHCP-snooping instance.
func NewDHCPSnoop() *dhcpSnoopApp {
	a := &dhcpSnoopApp{state: ppe.NewState(), trustedDir: "optical-to-edge"}
	spec := ppe.TableSpec{Name: "dhcp_leases", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 48, Size: DHCPSnoopBindings}
	a.leases = a.state.AddTable(spec)
	a.ctr = a.state.AddCounters("dhcpsnoop", dhcpSnoopCounters)
	a.prog = &ppe.Program{
		Name:    "dhcpsnoop",
		Version: 1,
		ParseLayers: []packet.LayerType{
			packet.LayerTypeEthernet, packet.LayerTypeIPv4,
			packet.LayerTypeUDP, packet.LayerTypeDHCPv4,
		},
		Tables: []ppe.TableSpec{spec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionCounterBank, Count: dhcpSnoopCounters},
		},
		Stages:  3,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *dhcpSnoopApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *dhcpSnoopApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *dhcpSnoopApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg DHCPSnoopConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("dhcpsnoop: %w", err)
	}
	if cfg.TrustedDirection != "" {
		switch cfg.TrustedDirection {
		case "edge-to-optical", "optical-to-edge":
		default:
			return fmt.Errorf("dhcpsnoop: bad trusted_direction %q", cfg.TrustedDirection)
		}
		a.trustedDir = cfg.TrustedDirection
	}
	a.dropRelease = cfg.DropUntrustedRelease
	return nil
}

// Binding reports the snooped MAC for a leased IPv4 address (4 bytes).
func (a *dhcpSnoopApp) Binding(ip []byte) ([]byte, bool) {
	return a.leases.Lookup(ip)
}

func (a *dhcpSnoopApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !a.v.Parse(ctx.Data) {
		a.ctr.Inc(DHCPSnoopNonDHCP, len(ctx.Data))
		return ppe.VerdictPass
	}
	v := &a.v
	if _, ok := v.DHCPPayload(); !ok {
		a.ctr.Inc(DHCPSnoopNonDHCP, len(ctx.Data))
		return ppe.VerdictPass
	}
	trusted := dirEnabled(a.trustedDir, ctx.Dir)

	if v.DHCPOp() == packet.DHCPOpReply {
		// Server → client traffic. From the untrusted side this is a
		// rogue server answering local clients: cut it.
		if !trusted {
			a.ctr.Inc(DHCPSnoopRogueDropped, len(ctx.Data))
			return ppe.VerdictDrop
		}
		if mt, ok := v.DHCPMsgType(); ok && mt == packet.DHCPAck {
			your := v.DHCPYourIP()
			if your[0]|your[1]|your[2]|your[3] != 0 {
				if a.leases.Add(your, v.DHCPClientMAC()) == nil {
					a.ctr.Inc(DHCPSnoopLearned, len(ctx.Data))
				}
			}
		}
		a.ctr.Inc(DHCPSnoopPassed, len(ctx.Data))
		return ppe.VerdictPass
	}

	// Client → server traffic from the untrusted side: guard the lease
	// table against spoofed RELEASE/DECLINE for someone else's address.
	if a.dropRelease && !trusted {
		if mt, ok := v.DHCPMsgType(); ok &&
			(mt == packet.DHCPRelease || mt == packet.DHCPDecline) {
			ciaddr := v.DHCPClientIP()
			if mac, bound := a.leases.Lookup(ciaddr); bound {
				claimed := v.DHCPClientMAC()
				for i := range mac {
					if mac[i] != claimed[i] {
						a.ctr.Inc(DHCPSnoopReleaseDropped, len(ctx.Data))
						return ppe.VerdictDrop
					}
				}
			}
		}
	}
	a.ctr.Inc(DHCPSnoopPassed, len(ctx.Data))
	return ppe.VerdictPass
}
