package daemon

// Overlay mesh wiring: a daemon can host the fabric's rendezvous point,
// join one as a mesh endpoint, or both. The rendezvous is served over
// the same TLV/TCP management transport as the module agent, so
// flexsfp-ctl and the retrying mgmt.Client work against it unchanged.

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"flexsfp/internal/apps"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/overlay"
	"flexsfp/internal/packet"
)

// OverlayConfig enrolls the daemon in an in-cable overlay mesh.
type OverlayConfig struct {
	// Listen hosts a rendezvous point on this TCP address ("" = none).
	// A daemon may host without being a mesh endpoint itself.
	Listen string
	// Join is the rendezvous management address to register with. Empty
	// with Listen set registers in-process against the hosted rendezvous.
	Join string

	// IP is this cable's underlay tunnel IPv4 ("" = not a mesh
	// endpoint; the daemon only hosts). Requires App == "mesh".
	IP string
	// MAC is the underlay MAC; "" derives a locally-administered one
	// from the device ID.
	MAC string
	// Mode is the encapsulation peers use toward this cable: "gre"
	// (default) or "vxlan".
	Mode   string
	VNI    uint32
	GREKey uint32
	// Prefixes this endpoint announces, e.g. "10.200.1.0/24". An "@N"
	// suffix sets the ownership priority (0 = primary, higher = backup
	// that takes over on withdrawal): "10.200.3.0/24@1".
	Prefixes []string

	// SyncEvery re-reconciles against the rendezvous periodically so a
	// long-running daemon converges on late joiners and withdrawals
	// without an operator in the loop. 0 disables the background sync;
	// OverlaySync remains available either way.
	SyncEvery time.Duration
}

// modeByte maps the textual mode to the wire constant.
func (oc *OverlayConfig) modeByte() (uint8, error) {
	switch oc.Mode {
	case "", apps.TunnelGRE:
		return apps.MeshModeGRE, nil
	case apps.TunnelVXLAN:
		return apps.MeshModeVXLAN, nil
	default:
		return 0, fmt.Errorf("overlay mode %q (want gre or vxlan)", oc.Mode)
	}
}

// mac resolves the endpoint MAC, deriving one from the device ID when
// unset.
func (oc *OverlayConfig) mac(deviceID uint32) (packet.MAC, error) {
	if oc.MAC == "" {
		return packet.MAC{0x02, 0xcc, byte(deviceID >> 24), byte(deviceID >> 16),
			byte(deviceID >> 8), byte(deviceID)}, nil
	}
	return packet.ParseMAC(oc.MAC)
}

// endpoint builds the registration this daemon announces.
func (oc *OverlayConfig) endpoint(name string, deviceID uint32) (mgmt.OverlayEndpoint, error) {
	var ep mgmt.OverlayEndpoint
	ip, err := netip.ParseAddr(oc.IP)
	if err != nil || !ip.Is4() {
		return ep, fmt.Errorf("overlay endpoint IP %q: want IPv4", oc.IP)
	}
	mac, err := oc.mac(deviceID)
	if err != nil {
		return ep, fmt.Errorf("overlay endpoint MAC: %w", err)
	}
	mode, err := oc.modeByte()
	if err != nil {
		return ep, err
	}
	ep = mgmt.OverlayEndpoint{
		Name: name, IP: ip.As4(), MAC: mac, Mode: mode,
		VNI: oc.VNI, GREKey: oc.GREKey,
	}
	for _, s := range oc.Prefixes {
		spec, prioStr, hasPrio := strings.Cut(s, "@")
		prio := 0
		if hasPrio {
			prio, err = strconv.Atoi(prioStr)
			if err != nil || prio < 0 || prio > 255 {
				return ep, fmt.Errorf("overlay prefix %q: bad priority", s)
			}
		}
		p, err := netip.ParsePrefix(spec)
		if err != nil || !p.Addr().Is4() {
			return ep, fmt.Errorf("overlay prefix %q: want IPv4 CIDR", s)
		}
		ep.Prefixes = append(ep.Prefixes, mgmt.OverlayPrefix{
			IP: p.Masked().Addr().As4(), Len: uint8(p.Bits()), Priority: uint8(prio),
		})
	}
	return ep, nil
}

// meshConfigJSON derives the mesh app config from the overlay endpoint
// so a daemon booted with -app mesh and no -config encapsulates with
// exactly the parameters it registered.
func (oc *OverlayConfig) meshConfigJSON(deviceID uint32) (string, error) {
	mac, err := oc.mac(deviceID)
	if err != nil {
		return "", err
	}
	mode := oc.Mode
	if mode == "" {
		mode = apps.TunnelGRE
	}
	if _, err := oc.modeByte(); err != nil {
		return "", err
	}
	return fmt.Sprintf(`{"mode":%q,"local_ip":%q,"local_mac":%q,"vni":%d,"gre_key":%d}`,
		mode, oc.IP, mac.String(), oc.VNI, oc.GREKey), nil
}

// startOverlay boots the rendezvous listener and/or the mesh endpoint
// controller. handler is the daemon's locked management handler — the
// controller programs mesh tables through it so table writes serialize
// with every other simulator access.
func (d *Daemon) startOverlay(handler func(req []byte) []byte, logf func(string, ...any)) error {
	oc := d.cfg.Overlay
	if oc == nil {
		return nil
	}
	if oc.Listen != "" {
		d.rdv = overlay.NewRendezvous()
		d.rdvSrv = mgmt.NewServer(d.rdv.Handle)
		addr, err := d.rdvSrv.Listen(oc.Listen)
		if err != nil {
			return fmt.Errorf("overlay rendezvous listen: %w", err)
		}
		d.rdvAddr = addr
		logf("overlay rendezvous on %s", addr)
	}
	if oc.IP == "" {
		if oc.Join != "" {
			return fmt.Errorf("overlay join set without an endpoint IP")
		}
		return nil // rendezvous host only
	}
	if d.cfg.App != "mesh" {
		return fmt.Errorf("overlay endpoint requires the mesh app, got %q", d.cfg.App)
	}
	ep, err := oc.endpoint(d.cfg.Name, d.cfg.DeviceID)
	if err != nil {
		return err
	}

	var rdvClient *mgmt.Client
	switch {
	case oc.Join != "":
		conn, err := mgmt.Dial(oc.Join)
		if err != nil {
			return fmt.Errorf("overlay join %s: %w", oc.Join, err)
		}
		d.ovlConn = conn
		rdvClient = mgmt.NewClient(conn)
	case d.rdv != nil:
		// Hosting and joining in one daemon: skip the loopback hop.
		rdvClient = mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
			return d.rdv.Handle(req), nil
		}))
	default:
		return fmt.Errorf("overlay endpoint needs a rendezvous: set Join or Listen")
	}
	cable := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		return handler(req), nil
	}))
	d.ovl = overlay.NewController(ep, rdvClient, cable)
	if _, err := d.ovl.Register(); err != nil {
		return fmt.Errorf("overlay register: %w", err)
	}
	if _, err := d.OverlaySync(); err != nil {
		return fmt.Errorf("overlay sync: %w", err)
	}
	if d.reg != nil {
		// The snapshot reader holds d.mu, and OverlaySync mirrors these
		// under d.mu, so the funcs read plain fields.
		d.reg.GaugeFunc("overlay.generation", func() float64 { return float64(d.ovlGen) })
		d.reg.GaugeFunc("overlay.peers", func() float64 { return float64(d.ovlPeers) })
		d.reg.GaugeFunc("overlay.routes", func() float64 { return float64(d.ovlRoutes) })
	}
	if oc.SyncEvery > 0 {
		d.ovlStop = make(chan struct{})
		d.ovlDone = make(chan struct{})
		go d.overlaySyncLoop(oc.SyncEvery, logf)
	}
	logf("overlay endpoint %q registered with %d prefix(es)", ep.Name, len(ep.Prefixes))
	return nil
}

// overlaySyncLoop re-reconciles until Close. A sync that fails (the
// rendezvous is down, or this endpoint was withdrawn remotely) is
// logged and retried on the next tick — the datapath keeps its last
// converged state, and routes to genuinely dead peers fail closed.
func (d *Daemon) overlaySyncLoop(every time.Duration, logf func(string, ...any)) {
	defer close(d.ovlDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	lastGen := uint64(0)
	for {
		select {
		case <-d.ovlStop:
			return
		case <-tick.C:
			tab, err := d.OverlaySync()
			if err != nil {
				logf("overlay sync: %v", err)
				continue
			}
			if tab.Generation != lastGen {
				logf("overlay synced to generation %d (%d peers, %d routes)",
					tab.Generation, len(tab.Peers), len(tab.Routes))
				lastGen = tab.Generation
			}
		}
	}
}

// OverlaySync pulls the rendezvous table and reconciles the module's
// mesh tables against it, returning the table it converged to. Safe to
// call from any goroutine; syncs serialize among themselves and each
// table operation serializes with the management plane.
func (d *Daemon) OverlaySync() (mgmt.OverlayTable, error) {
	if d.ovl == nil {
		return mgmt.OverlayTable{}, fmt.Errorf("daemon is not an overlay endpoint")
	}
	d.ovlMu.Lock()
	defer d.ovlMu.Unlock()
	tab, err := d.ovl.Sync()
	if err != nil {
		return tab, err
	}
	d.mu.Lock()
	d.ovlGen = tab.Generation
	d.ovlPeers = len(tab.Peers)
	d.ovlRoutes = len(tab.Routes)
	d.mu.Unlock()
	return tab, nil
}

// RendezvousAddr is the hosted rendezvous listener's resolved address,
// or "" when this daemon does not host one.
func (d *Daemon) RendezvousAddr() string { return d.rdvAddr }

// Overlay exposes the mesh controller (nil when the daemon is not an
// overlay endpoint).
func (d *Daemon) Overlay() *overlay.Controller { return d.ovl }

// closeOverlay stops the sync loop and tears down the overlay
// transports.
func (d *Daemon) closeOverlay() {
	if d.ovlStop != nil {
		close(d.ovlStop)
		<-d.ovlDone
		d.ovlStop = nil
	}
	if d.ovlConn != nil {
		d.ovlConn.Close()
	}
	if d.rdvSrv != nil {
		d.rdvSrv.Close()
	}
}
