package apps

import (
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/xdp"
)

// CanonicalConfig returns a representative configuration for a registry
// app — the same shapes the robustness suite exercises — so tooling that
// sweeps every app (the optimizer equivalence tests, the pipeline_opt
// and dse experiments) has a deterministic, JSON-marshalable config per
// name without duplicating per-app knowledge.
func CanonicalConfig(name string) (any, error) {
	switch name {
	case "nat":
		return NATConfig{Mappings: []NATMapping{{Internal: "10.0.0.1", External: "203.0.113.1"}}}, nil
	case "acl":
		return ACLConfig{Rules: []ACLRule{{DstPort: 22, Proto: 6, Deny: true, Priority: 1}}}, nil
	case "vlan":
		return VLANConfig{VLAN: 100}, nil
	case "tunnel":
		return TunnelConfig{
			Mode:       TunnelGRE,
			LocalIP:    "10.255.0.1",
			RemoteIP:   "10.255.0.2",
			LocalMAC:   "02:aa:aa:aa:aa:01",
			GatewayMAC: "02:aa:aa:aa:aa:02",
			VNI:        7777,
			GREKey:     99,
		}, nil
	case "lb":
		cfg := LBConfig{VIP: "203.0.113.100"}
		for i := 0; i < 4; i++ {
			cfg.Backends = append(cfg.Backends, LBBackend{
				IP:  netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)}).String(),
				MAC: packet.MAC{0x02, 0xbb, 0, 0, 0, byte(i + 1)}.String(),
			})
		}
		return cfg, nil
	case "telemetry":
		return TelemetryConfig{Role: TelemetrySource, DeviceID: 1}, nil
	case "netflow":
		return NetFlowConfig{}, nil
	case "ratelimit":
		return RateLimitConfig{DefaultRateBps: 1e9, DefaultBurstBits: 1e6}, nil
	case "dohblock":
		return DoHBlockConfig{BlockedDomains: []string{"x.example"}}, nil
	case "sanitize":
		return SanitizeConfig{VerifyChecksums: true}, nil
	case "monitor":
		return MonitorConfig{}, nil
	case "xdp":
		return XDPConfig{Program: *CanonicalXDPProgram()}, nil
	case "arpguard":
		return ARPGuardConfig{Bindings: []ARPBinding{{IP: "10.0.0.1", MAC: "02:aa:00:00:00:01"}}}, nil
	case "dhcpsnoop":
		return DHCPSnoopConfig{DropUntrustedRelease: true}, nil
	case "dnsblock":
		return DNSBlockConfig{Domains: []string{"ads.example"}}, nil
	case "mesh":
		return MeshConfig{
			Mode:     TunnelVXLAN,
			LocalIP:  "10.254.0.1",
			LocalMAC: "02:cc:cc:cc:cc:01",
			VNI:      4242,
		}, nil
	}
	return nil, fmt.Errorf("apps: no canonical config for %q", name)
}

// CanonicalXDPProgram is the reference XDP codelet: parse Ethernet/IPv4
// and drop UDP destination port 53 (the examples/xdp-offload program).
// It is deliberately written the way a naive compiler emits code — with
// a duplicated ethertype load and a dead scratch move — so the optimizer
// has realistic redundancy to remove; the fuzz corpus seeds from it.
func CanonicalXDPProgram() *xdp.Program {
	return &xdp.Program{Name: "drop-udp-53", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdH(2, 1, 12),        // ethertype
		xdp.LdH(6, 1, 12),        // naive reload of the same halfword
		xdp.MovImm(7, 0),         // dead scratch init
		xdp.JNeImm(2, 0x0800, 8), // not IPv4 → pass
		xdp.LdB(3, 1, 23),        // IPv4 protocol
		xdp.JNeImm(3, 17, 6),     // not UDP → pass
		xdp.LdB(4, 1, 14),        // version/IHL byte
		{Op: xdp.OpAnd, Dst: 4, Imm: 0x0F, UseImm: true},
		{Op: xdp.OpLsh, Dst: 4, Imm: 2, UseImm: true},
		{Op: xdp.OpAdd, Dst: 4, Imm: 16, UseImm: true}, // eth(14) + dport(2)
		xdp.LdH(5, 4, 0),     // UDP destination port
		xdp.JEqImm(5, 53, 2), // port 53 → drop
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
		xdp.MovImm(0, xdp.ActDrop),
		xdp.Exit(),
	}}
}
