package phy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestLineRateIdentities(t *testing.T) {
	// 64b/66b over 10.3125 GBd is exactly 10 Gb/s.
	if got := DataRateFromBaud(LineRateBaud); !approx(got, 10e9, 1) {
		t.Errorf("data rate = %v", got)
	}
	// 14.88 Mpps at 64 bytes.
	if got := LineRatePPS(DataRateBps, 64); !approx(got, 14_880_952.38, 1) {
		t.Errorf("64B pps = %v", got)
	}
	// 812.7 kpps at 1518 bytes.
	if got := LineRatePPS(DataRateBps, 1518); !approx(got, 812_743.8, 1) {
		t.Errorf("1518B pps = %v", got)
	}
	if got := WireEfficiency(64); !approx(got, 64.0/84.0, 1e-12) {
		t.Errorf("efficiency(64) = %v", got)
	}
	if got := GoodputBps(DataRateBps, 1518); got <= 9.8e9 || got >= 10e9 {
		t.Errorf("goodput(1518) = %v, want just under 10G", got)
	}
}

func TestRequiredClock(t *testing.T) {
	// One direction, 64-bit datapath: 9 cycles × 14.88 Mpps = 133.9 MHz,
	// which is why 156.25 MHz suffices (§5.1).
	one := RequiredClockHz(DataRateBps, 64, 1)
	if one > 156_250_000 {
		t.Errorf("one-way required clock %v exceeds 156.25 MHz", one)
	}
	// Two directions need more than 156.25 MHz but not more than double
	// (§4.1: "increase the operating frequency").
	two := RequiredClockHz(DataRateBps, 64, 2)
	if two <= 156_250_000 || two > 312_500_000 {
		t.Errorf("two-way required clock = %v", two)
	}
	// A 512-bit datapath at 100G: 2 cycles × 148.8 Mpps = 297.6 MHz.
	hundred := RequiredClockHz(10*DataRateBps, 512, 1)
	if hundred > 400e6 {
		t.Errorf("100G/512b required clock %v exceeds PolarFire ceiling", hundred)
	}
}

func TestLaserHealthy(t *testing.T) {
	l := NewLaser()
	if !approx(l.OutputPowerDBm(), -2.0, 0.01) {
		t.Errorf("healthy power = %v", l.OutputPowerDBm())
	}
	if !approx(l.EffectiveBiasMilliAmps(), 6.0, 0.01) {
		t.Errorf("healthy bias = %v", l.EffectiveBiasMilliAmps())
	}
}

func TestLaserDegradation(t *testing.T) {
	l := NewLaser()
	l.Degradation = 0.5
	// Half power = -3 dB.
	if !approx(l.OutputPowerDBm(), -5.0, 0.05) {
		t.Errorf("half-degraded power = %v, want ≈-5 dBm", l.OutputPowerDBm())
	}
	if l.EffectiveBiasMilliAmps() <= 6.0 {
		t.Error("APC loop should raise bias on degradation")
	}
	l.Degradation = 1
	if l.OutputPowerDBm() != -40 {
		t.Errorf("dark laser = %v", l.OutputPowerDBm())
	}
	l.Degradation = 0
	l.Enabled = false
	if l.OutputPowerDBm() != -40 || l.EffectiveBiasMilliAmps() != 0 {
		t.Error("disabled laser still emitting")
	}
}

func TestFiberLinkBudget(t *testing.T) {
	f := DefaultSRLink(0.3) // 300 m
	// -2 dBm launch - 0.9 dB fiber - 1 dB connectors = -3.9 dBm.
	if got := f.RxPowerDBm(-2); !approx(got, -3.9, 0.01) {
		t.Errorf("rx power = %v", got)
	}
	if !f.Up(-2) {
		t.Error("300m SR link should close")
	}
	// A long span at 850 nm does not close.
	long := DefaultSRLink(5)
	if long.Up(-2) {
		t.Error("5 km multimode link should not close")
	}
	if m := f.MarginDB(-2); !approx(m, -3.9+11.1, 0.01) {
		t.Errorf("margin = %v", m)
	}
}

func TestDegradedLaserKillsLink(t *testing.T) {
	l := NewLaser()
	f := DefaultSRLink(0.3)
	if !f.Up(l.OutputPowerDBm()) {
		t.Fatal("healthy link down")
	}
	l.Degradation = 0.95 // -13 dB
	if f.Up(l.OutputPowerDBm()) {
		t.Error("link up at 95% laser degradation")
	}
}

func TestDDMThresholdEvaluation(t *testing.T) {
	th := DefaultThresholds()
	healthy := DDM{TemperatureC: 45, VccVolts: 3.3, TxBiasMA: 6, TxPowerDBm: -2, RxPowerDBm: -4}
	if f := th.Evaluate(healthy); f != 0 {
		t.Errorf("healthy flags = %b", f)
	}
	hot := healthy
	hot.TemperatureC = 72
	if f := th.Evaluate(hot); f&FlagTempWarn == 0 || f&FlagTempAlarm != 0 {
		t.Errorf("warm flags = %b", f)
	}
	hot.TemperatureC = 80
	if f := th.Evaluate(hot); f&FlagTempAlarm == 0 {
		t.Errorf("hot flags = %b", f)
	}
	dim := healthy
	dim.TxPowerDBm = -8
	if f := th.Evaluate(dim); f&FlagTxPowerAlarm == 0 {
		t.Errorf("dim flags = %b", f)
	}
}

func TestDiagnoseDistinguishesLaserFromDriver(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name string
		d    DDM
		want Fault
	}{
		{"healthy", DDM{TxBiasMA: 6, TxPowerDBm: -2, RxPowerDBm: -4}, FaultNone},
		{"driver", DDM{TxBiasMA: 0.1, TxPowerDBm: -40, RxPowerDBm: -4}, FaultDriver},
		{"laser-dead", DDM{TxBiasMA: 9, TxPowerDBm: -40, RxPowerDBm: -4}, FaultLaserDead},
		{"laser-degrading-power", DDM{TxBiasMA: 8, TxPowerDBm: -5.5, RxPowerDBm: -4}, FaultLaserDegrading},
		{"laser-degrading-bias", DDM{TxBiasMA: 11, TxPowerDBm: -4, RxPowerDBm: -4}, FaultLaserDegrading},
		{"fiber", DDM{TxBiasMA: 6, TxPowerDBm: -2, RxPowerDBm: -20}, FaultRemoteOrFiber},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Diagnose(c.d, th, 6.0); got != c.want {
				t.Errorf("Diagnose = %v, want %v", got, c.want)
			}
		})
	}
}

func TestFaultString(t *testing.T) {
	if FaultLaserDegrading.String() != "laser-degrading" || FaultNone.String() != "healthy" {
		t.Error("fault names wrong")
	}
}

// Property: link margin decreases monotonically with fiber length.
func TestMarginMonotoneProperty(t *testing.T) {
	f := func(l1, l2 float64) bool {
		a, b := math.Abs(l1), math.Abs(l2)
		for a > 50 {
			a /= 10
		}
		for b > 50 {
			b /= 10
		}
		if a > b {
			a, b = b, a
		}
		return DefaultSRLink(b).MarginDB(-2) <= DefaultSRLink(a).MarginDB(-2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dBm/mW conversions round-trip.
func TestDbmRoundTripProperty(t *testing.T) {
	f := func(p float64) bool {
		dbm := math.Mod(math.Abs(p), 30) - 20 // [-20, 10)
		return approx(mwToDbm(dbmToMw(dbm)), dbm, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEEPROMRoundTrip(t *testing.T) {
	id := Identity{
		VendorName: "FLEXSFP", VendorPN: "FSP-10G-SR-P", VendorRev: "1A",
		VendorSN: "FS2600000042", DateCode: "260706",
		Is10GBaseSR: true, DDMSupported: true,
	}
	page := EncodeEEPROM(id)
	if len(page) != EEPROMSize {
		t.Fatalf("page = %d bytes", len(page))
	}
	got, err := DecodeEEPROM(page)
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Errorf("decoded = %+v, want %+v", got, id)
	}
}

func TestEEPROMChecksumsDetectCorruption(t *testing.T) {
	page := EncodeEEPROM(Identity{VendorName: "X", Is10GBaseSR: true})
	// Corrupt a base field.
	bad := append([]byte(nil), page...)
	bad[20] ^= 0xff
	if _, err := DecodeEEPROM(bad); !errors.Is(err, ErrEEPROMChecksum) {
		t.Errorf("CC_BASE corruption: %v", err)
	}
	// Corrupt an extended field (serial).
	bad = append([]byte(nil), page...)
	bad[70] ^= 0xff
	if _, err := DecodeEEPROM(bad); !errors.Is(err, ErrEEPROMChecksum) {
		t.Errorf("CC_EXT corruption: %v", err)
	}
}

func TestEEPROMRejectsNonSFP(t *testing.T) {
	page := EncodeEEPROM(Identity{})
	page[0] = 0x0d // QSFP+
	page[63] = sum(page[0:63])
	if _, err := DecodeEEPROM(page); !errors.Is(err, ErrEEPROMIdent) {
		t.Errorf("err = %v", err)
	}
	if _, err := DecodeEEPROM(make([]byte, 10)); !errors.Is(err, ErrEEPROMSize) {
		t.Errorf("short: %v", err)
	}
}
