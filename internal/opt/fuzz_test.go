package opt

import (
	"bytes"
	"encoding/binary"
	"testing"

	"flexsfp/internal/xdp"
)

// fuzzInsnWire mirrors the xdp fuzz wire format (14 raw bytes per
// instruction) so corpora transfer between the targets.
const fuzzInsnWire = 14

func decodeFuzzProgram(data []byte) *xdp.Program {
	n := len(data) / fuzzInsnWire
	if n == 0 || n > xdp.MaxInsns {
		return nil
	}
	insns := make([]xdp.Insn, n)
	for i := range insns {
		b := data[i*fuzzInsnWire : (i+1)*fuzzInsnWire]
		insns[i] = xdp.Insn{
			Op:     xdp.Op(b[0]),
			Dst:    xdp.Reg(b[1]),
			Src:    xdp.Reg(b[2]),
			Off:    int16(binary.BigEndian.Uint16(b[3:5])),
			Imm:    int64(binary.BigEndian.Uint64(b[5:13])),
			UseImm: b[13]&1 == 1,
		}
	}
	return &xdp.Program{Name: "fuzz", Insns: insns}
}

func encodeFuzzProgram(p *xdp.Program) []byte {
	out := make([]byte, 0, len(p.Insns)*fuzzInsnWire)
	for _, in := range p.Insns {
		var b [fuzzInsnWire]byte
		b[0], b[1], b[2] = byte(in.Op), byte(in.Dst), byte(in.Src)
		binary.BigEndian.PutUint16(b[3:5], uint16(in.Off))
		binary.BigEndian.PutUint64(b[5:13], uint64(in.Imm))
		if in.UseImm {
			b[13] = 1
		}
		out = append(out, b[:]...)
	}
	return out
}

// FuzzOptimizeEquivalence is the optimizer's soundness wall: for any
// verifiable program the fuzzer can construct, the optimized program
// must verify, must never be larger or schedule longer, and must behave
// identically to the original on the fuzzed packet — same action, same
// abort-or-not, same final packet bytes.
func FuzzOptimizeEquivalence(f *testing.F) {
	seeds := []*xdp.Program{
		dropUDP53(),
		{Name: "dup", Insns: []xdp.Insn{
			xdp.MovImm(1, 0), xdp.LdH(2, 1, 12), xdp.LdH(3, 1, 12),
			xdp.JNeImm(2, 0x0800, 2), xdp.MovImm(0, xdp.ActDrop), xdp.Exit(),
			xdp.MovImm(0, xdp.ActPass), xdp.Exit(),
		}},
		{Name: "mut", Insns: []xdp.Insn{
			xdp.MovImm(1, 0), xdp.StB(1, 0, 0x55), xdp.LdB(2, 1, 0),
			xdp.MovReg(0, 2), xdp.Exit(),
		}},
	}
	for _, p := range seeds {
		f.Add(encodeFuzzProgram(p), make([]byte, 64))
		f.Add(encodeFuzzProgram(p), make([]byte, 3))
	}
	f.Fuzz(func(t *testing.T, data, pkt []byte) {
		p := decodeFuzzProgram(data)
		if p == nil || p.Verify() != nil {
			return
		}
		q, rep, err := OptimizeXDP(p, Options{})
		if err != nil {
			t.Fatalf("optimizing verified program: %v", err)
		}
		if len(q.Insns) > len(p.Insns) {
			t.Fatalf("optimizer grew the program: %d -> %d", len(p.Insns), len(q.Insns))
		}
		if rep.PackedCycles > rep.ScalarCycles {
			t.Fatalf("packing slower than scalar: %d > %d", rep.PackedCycles, rep.ScalarCycles)
		}
		a := append([]byte(nil), pkt...)
		b := append([]byte(nil), pkt...)
		actA, errA := p.Run(a)
		actB, errB := q.Run(b)
		if actA != actB || (errA == nil) != (errB == nil) {
			t.Fatalf("behavior diverged: %d/%v vs %d/%v", actA, errA, actB, errB)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("packet bytes diverged")
		}
	})
}
