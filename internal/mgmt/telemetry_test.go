package mgmt

import (
	"strings"
	"testing"

	"flexsfp/internal/telemetry"
)

func TestTelemetryRoundTrip(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)

	// Without a registry attached, both ops are a clean protocol error.
	if _, err := c.Telemetry(); err == nil || !strings.Contains(err.Error(), "telemetry not enabled") {
		t.Fatalf("telemetry without registry: %v", err)
	}
	if _, err := c.Traces(0); err == nil || !strings.Contains(err.Error(), "tracing not enabled") {
		t.Fatalf("traces without registry: %v", err)
	}

	reg := telemetry.New()
	tr := telemetry.NewTracer(1, 64)
	reg.SetTracer(tr)
	reg.Counter("x.frames").Add(42)
	reg.Histogram("x.lat", telemetry.ExpBuckets(1, 2, 8)).Observe(5)
	for i := 1; i <= 10; i++ {
		id, _ := tr.Sample()
		tr.Hop(id, telemetry.StageSubmit, uint64(i*100), 64, 0)
	}
	a.SetTelemetry(reg)

	snap, err := c.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Counter("x.frames"); !ok || v != 42 {
		t.Fatalf("x.frames = %d (ok=%v)", v, ok)
	}
	if h, ok := snap.Histogram("x.lat"); !ok || h.Count != 1 {
		t.Fatalf("x.lat = %+v (ok=%v)", h, ok)
	}
	if snap.TraceSampled != 10 {
		t.Fatalf("TraceSampled = %d", snap.TraceSampled)
	}

	all, err := c.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("got %d events, want 10", len(all))
	}
	capped, err := c.Traces(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Fatalf("capped dump returned %d events", len(capped))
	}
	// The cap keeps the most recent events, oldest first.
	if capped[0].TimeNs != 800 || capped[2].TimeNs != 1000 {
		t.Fatalf("capped events = %+v", capped)
	}
}
