package mgmt

import (
	"fmt"
	"sort"
	"sync"
)

// Fleet is the orchestrator-side view of many modules (§4.1: "This is
// essential for centralized orchestration across a fleet of FlexSFPs,
// while preserving the independence of per-port behavior"). Operations
// fan out concurrently over each member's transport and collect
// per-module outcomes.
type Fleet struct {
	mu      sync.Mutex
	members map[string]*Client
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{members: make(map[string]*Client)}
}

// Add registers a module under a fleet-unique name.
func (f *Fleet) Add(name string, t Transport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.members[name] = NewClient(t)
}

// Remove drops a member.
func (f *Fleet) Remove(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.members, name)
}

// Names returns the member names, sorted.
func (f *Fleet) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.members))
	for n := range f.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Client returns a member's client.
func (f *Fleet) Client(name string) (*Client, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.members[name]
	return c, ok
}

// Outcome is one member's result from a fleet operation.
type Outcome struct {
	Name string
	Err  error
}

// fanOut runs op against every member concurrently.
func (f *Fleet) fanOut(op func(name string, c *Client) error) []Outcome {
	f.mu.Lock()
	type member struct {
		name string
		c    *Client
	}
	ms := make([]member, 0, len(f.members))
	for n, c := range f.members {
		ms = append(ms, member{n, c})
	}
	f.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	out := make([]Outcome, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = Outcome{Name: m.name, Err: op(m.name, m.c)}
		}()
	}
	wg.Wait()
	return out
}

// PingAll checks liveness across the fleet, returning per-member info.
func (f *Fleet) PingAll() (map[string]Info, []Outcome) {
	infos := make(map[string]Info)
	var mu sync.Mutex
	outcomes := f.fanOut(func(name string, c *Client) error {
		info, err := c.Ping()
		if err != nil {
			return err
		}
		mu.Lock()
		infos[name] = info
		mu.Unlock()
		return nil
	})
	return infos, outcomes
}

// StatsAll gathers counters across the fleet.
func (f *Fleet) StatsAll() (map[string]Stats, []Outcome) {
	stats := make(map[string]Stats)
	var mu sync.Mutex
	outcomes := f.fanOut(func(name string, c *Client) error {
		s, err := c.ReadStats()
		if err != nil {
			return err
		}
		mu.Lock()
		stats[name] = s
		mu.Unlock()
		return nil
	})
	return stats, outcomes
}

// PushAll streams a signed bitstream to every member (the fleet-wide
// feature rollout of §2.1), optionally rebooting into it.
func (f *Fleet) PushAll(signed []byte, slot int, rebootAfter bool) []Outcome {
	return f.fanOut(func(name string, c *Client) error {
		return c.PushBitstream(signed, slot, rebootAfter)
	})
}

// Failures filters outcomes to the failed ones.
func Failures(outcomes []Outcome) []Outcome {
	var out []Outcome
	for _, o := range outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

// Summary renders a one-line rollout summary.
func Summary(outcomes []Outcome) string {
	fails := Failures(outcomes)
	return fmt.Sprintf("%d ok, %d failed of %d modules",
		len(outcomes)-len(fails), len(fails), len(outcomes))
}
