package flexsfp

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

func TestBuildModuleQuickstart(t *testing.T) {
	sim := NewSim(1)
	mod, design, err := BuildModule(sim, ModuleSpec{
		Name: "sfp-0", DeviceID: 42, Shell: TwoWayCore, App: "nat",
		Config: apps.NATConfig{Mappings: []apps.NATMapping{
			{Internal: "192.168.1.10", External: "203.0.113.10"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mod.Running() {
		t.Fatal("module not running")
	}
	if design.Target.Name != "MPF200T" || !design.Fit.Fits {
		t.Errorf("design = %+v", design.Fit)
	}
	// Pass one packet through and verify translation.
	var out []byte
	mod.SetTx(1, func(b []byte) { out = b })
	frame := packet.MustBuild(packet.Spec{
		SrcMAC: packet.MustMAC("02:00:00:00:00:01"),
		DstMAC: packet.MustMAC("02:00:00:00:00:02"),
		SrcIP:  mustAddr("192.168.1.10"), DstIP: mustAddr("198.51.100.1"),
		SrcPort: 1234, DstPort: 80, PadTo: 64,
	})
	mod.RxEdge(frame)
	sim.Run()
	if out == nil {
		t.Fatal("no egress frame")
	}
	pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
	ip := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if ip.SrcIP.String() != "203.0.113.10" {
		t.Errorf("translated src = %v", ip.SrcIP)
	}
}

func TestBuildModuleErrors(t *testing.T) {
	sim := NewSim(1)
	if _, _, err := BuildModule(sim, ModuleSpec{Name: "x"}); err == nil {
		t.Error("missing app accepted")
	}
	if _, _, err := BuildModule(sim, ModuleSpec{App: "unknown-app"}); err == nil {
		t.Error("unknown app accepted")
	}
	// App that requires config must fail without it.
	if _, _, err := BuildModule(sim, ModuleSpec{App: "vlan"}); err == nil {
		t.Error("vlan app booted without config")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Memory columns exact; logic within 1%.
	if r.Used.USRAM != 278 || r.Used.LSRAM != 164 {
		t.Errorf("Used memory = %d uSRAM / %d LSRAM, want 278/164", r.Used.USRAM, r.Used.LSRAM)
	}
	for _, pair := range []struct{ got, want int }{
		{r.Used.LUT4, 31455}, {r.Used.FF, 25518},
	} {
		diff := math.Abs(float64(pair.got - pair.want))
		if diff > float64(pair.want)*0.01 {
			t.Errorf("Used logic %d vs paper %d", pair.got, pair.want)
		}
	}
	// Percentages as printed: 16/13/15/26 (truncated).
	if int(r.Util.LUT4) != 16 || int(r.Util.FF) != 13 || int(r.Util.USRAM) != 15 || int(r.Util.LSRAM) != 26 {
		t.Errorf("util = %+v", r.Util)
	}
	if !strings.Contains(r.Render(), "NAT app") {
		t.Error("render missing NAT app row")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r := Table2()
	fits := map[string]bool{}
	for _, row := range r.Rows {
		fits[row.Name] = row.Fits
	}
	if fits["hXDP (1 core)"] != true {
		t.Error("hXDP should fit the MPF200T")
	}
	for _, name := range []string{"FlowBlaze (1 stage)", "Pigasus", "ClickNP IPSec GW"} {
		if fits[name] {
			t.Errorf("%s should not fit", name)
		}
	}
	out := r.Render()
	for _, want := range []string{"115k", "416k", "110k", "388k", "13300"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Claims.CAPEXSavingVsDPU < 0.6 {
		t.Errorf("CAPEX saving = %.2f", r.Claims.CAPEXSavingVsDPU)
	}
	if r.BOMLow < 250 || r.BOMHigh > 320 {
		t.Errorf("BOM band = %.0f-%.0f", r.BOMLow, r.BOMHigh)
	}
	if !strings.Contains(r.Render(), "FlexSFP") {
		t.Error("render missing FlexSFP row")
	}
}

func TestPowerExperimentMatchesPaper(t *testing.T) {
	r, err := PowerExperiment(7)
	if err != nil {
		t.Fatal(err)
	}
	// Stress saturates the pipeline; dynamic power at full utilization.
	if r.FlexUtilization < 0.95 {
		t.Errorf("utilization = %.2f under 2x overload", r.FlexUtilization)
	}
	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.3f ±%.3f", name, got, want, tol)
		}
	}
	check("NIC only", r.Report.NICOnly.MeanW, 3.800, 0.005)
	check("NIC+SFP", r.Report.WithSFP.MeanW, 4.693, 0.005)
	check("NIC+FlexSFP", r.Report.WithFlex.MeanW, 5.320, 0.02)
	check("delta SFP", r.Report.DeltaSFP, 0.893, 0.01)
	check("delta Flex", r.Report.DeltaFlex, 1.52, 0.02)
}

func TestLineRateExperimentAllSizes(t *testing.T) {
	r, err := LineRateExperiment(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.LineRate {
			t.Errorf("%s: %d drops at line rate", p.Label, p.Drops)
		}
		if p.DeliveredPPS < p.OfferedPPS*0.995 {
			t.Errorf("%s: delivered %.0f of %.0f pps", p.Label, p.DeliveredPPS, p.OfferedPPS)
		}
	}
	// 64B point ≈ 14.88 Mpps.
	if p := r.Points[0]; math.Abs(p.DeliveredPPS-14.88e6)/14.88e6 > 0.01 {
		t.Errorf("64B delivered = %.0f pps", p.DeliveredPPS)
	}
	// 1518B goodput just under 10G.
	last := r.Points[5]
	if last.GoodputGbps < 9.7 || last.GoodputGbps > 10.0 {
		t.Errorf("1518B goodput = %.2f Gb/s", last.GoodputGbps)
	}
}

func TestArchitectureExperimentShape(t *testing.T) {
	r, err := ArchitectureExperiment(5)
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(shell hls.Shell, clock float64, bidir bool) ArchPoint {
		for _, p := range r.Points {
			if p.Shell == shell && p.ClockMHz == clock && p.Bidirectional == bidir {
				return p
			}
		}
		t.Fatalf("missing point %v/%v/%v", shell, clock, bidir)
		return ArchPoint{}
	}
	// One-way traffic at base clock: full delivery, both shells.
	if p := byKey(hls.OneWayFilter, 156.25, false); p.DeliveredFrac < 0.995 {
		t.Errorf("one-way-filter one-way delivered %.3f", p.DeliveredFrac)
	}
	if p := byKey(hls.TwoWayCore, 156.25, false); p.DeliveredFrac < 0.995 {
		t.Errorf("two-way-core one-way delivered %.3f", p.DeliveredFrac)
	}
	// One-Way-Filter under bidirectional load: everything delivered, but
	// only half via the PPE.
	owf := byKey(hls.OneWayFilter, 156.25, true)
	if owf.DeliveredFrac < 0.995 {
		t.Errorf("one-way-filter bidir delivered %.3f", owf.DeliveredFrac)
	}
	if owf.PPEFrac > 0.55 || owf.PPEFrac < 0.45 {
		t.Errorf("one-way-filter PPE fraction = %.3f, want ≈0.5", owf.PPEFrac)
	}
	// Two-Way-Core at base clock saturates under bidirectional load...
	sat := byKey(hls.TwoWayCore, 156.25, true)
	if sat.DeliveredFrac > 0.75 {
		t.Errorf("two-way-core bidir at 156.25 delivered %.3f, expected saturation", sat.DeliveredFrac)
	}
	// ...and recovers at double clock (§4.1's mitigation).
	fast := byKey(hls.TwoWayCore, 312.5, true)
	if fast.DeliveredFrac < 0.995 {
		t.Errorf("two-way-core bidir at 312.5 delivered %.3f", fast.DeliveredFrac)
	}
	// Double clock still inside the thermal envelope.
	if fast.PeakW > 3.0 {
		t.Errorf("312.5 MHz peak power = %.2f W", fast.PeakW)
	}
}

func TestScalabilityExperimentShape(t *testing.T) {
	r := ScalabilityExperiment()
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}
	find := func(w int, mhz float64) ScalePoint {
		for _, p := range r.Points {
			if p.DatapathBits == w && p.ClockMHz == mhz {
				return p
			}
		}
		t.Fatalf("missing %d/%v", w, mhz)
		return ScalePoint{}
	}
	// The prototype point sustains 10G inside the envelope; the smallest
	// fitting part is at or below the prototype's MPF200T (headroom).
	base := find(64, 156.25)
	if base.Supports < 10 || !base.TimingOK || !base.Thermal {
		t.Errorf("base point = %+v", base)
	}
	if base.Device != "MPF100T" && base.Device != "MPF200T" {
		t.Errorf("base device = %s", base.Device)
	}
	// 512b @ 400 MHz reaches 100G but blows the SFP+ power envelope —
	// §5.3's point that higher rates need bigger form factors.
	big := find(512, 400)
	if big.Supports < 100 {
		t.Errorf("512b@400MHz sustains only %dG", big.Supports)
	}
	if big.Thermal {
		t.Error("100G-class point reported inside SFP+ envelope")
	}
	// Capacity is monotone in width at fixed clock.
	if find(128, 156.25).CapacityGbps <= find(64, 156.25).CapacityGbps {
		t.Error("capacity not monotone in width")
	}
}

func TestAccelerationGapShape(t *testing.T) {
	r, err := AccelerationGapExperiment(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	var host, nic, flex GapPoint
	for _, p := range r.Points {
		switch p.Path {
		case "host-cpu":
			host = p
		case "smartnic-dpu":
			nic = p
		case "flexsfp":
			flex = p
		}
	}
	// FlexSFP: lowest latency and power by far.
	if flex.P50 >= nic.P50 || flex.P50 >= host.P50 {
		t.Errorf("flex p50 %v not the lowest (nic %v, host %v)", flex.P50, nic.P50, host.P50)
	}
	if flex.PowerW >= nic.PowerW/10 {
		t.Errorf("flex power %.1f W vs nic %.1f W: not order-of-magnitude", flex.PowerW, nic.PowerW)
	}
	// Host: worst tail (p99/p50 ratio largest).
	hostTail := float64(host.P99) / float64(host.P50)
	nicTail := float64(nic.P99) / float64(nic.P50)
	if hostTail <= nicTail {
		t.Errorf("host tail %.2f not worse than nic %.2f", hostTail, nicTail)
	}
	// All three sustain the offered 1 Mpps.
	for _, p := range r.Points {
		if p.Throughput < r.OfferedPPS*0.95 {
			t.Errorf("%s delivered %.0f of %.0f pps", p.Path, p.Throughput, r.OfferedPPS)
		}
	}
	// Cost ordering: flex < nic.
	if flex.CostUSD >= nic.CostUSD {
		t.Error("flex not cheaper than smartnic")
	}
}

func TestReliabilityExperiment(t *testing.T) {
	r := ReliabilityExperiment(11)
	if r.Report.Failures == 0 {
		t.Fatal("no failures in 10-year horizon")
	}
	if float64(r.Report.DetectedEarly)/float64(r.Report.Failures) < 0.9 {
		t.Error("DDM early detection below 90%")
	}
	if r.Report.LaserRepairSavingFrac < 0.7 {
		t.Errorf("laser repair saving = %.2f", r.Report.LaserRepairSavingFrac)
	}
	if !strings.Contains(r.Render(), "Laser-repair saving") {
		t.Error("render incomplete")
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	if Table1().Render() == "" || Table2().Render() == "" || Table3().Render() == "" {
		t.Error("empty render")
	}
	s := ScalabilityExperiment().Render()
	if !strings.Contains(s, "512b") {
		t.Error("scalability render missing width rows")
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

var _ = netsim.Second // imported for duration literals in future tests

func TestLatencyOverheadExperiment(t *testing.T) {
	r, err := LatencyOverheadExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		if p.Added <= 0 {
			t.Errorf("%dB: added latency %v not positive", p.FrameSize, p.Added)
		}
		// Sub-2µs even at MTU: cheap vs a host detour.
		if p.Added > 2*netsim.Microsecond {
			t.Errorf("%dB: added latency %v too high", p.FrameSize, p.Added)
		}
		if i > 0 && p.Added <= r.Points[i-1].Added {
			t.Error("store-and-forward latency not monotone in size")
		}
	}
}

func TestRetrofitEconomicsExperiment(t *testing.T) {
	r, err := RetrofitEconomicsExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if !r.SpotCheckEnforced {
		t.Error("retrofitted switch did not enforce per-port policy")
	}
	var flex, nic RetrofitOption
	for _, o := range r.Options {
		switch o.Name {
		case "FlexSFP per port":
			flex = o
		case "SmartNIC per attached host":
			nic = o
		}
	}
	// §2.1's claims: cheapest per-port path, drop-in, order-of-magnitude
	// power advantage over SmartNICs.
	if flex.Disruptive || !flex.PerPort {
		t.Errorf("flex option = %+v", flex)
	}
	if flex.CapexUSD >= nic.CapexUSD/5 {
		t.Errorf("flex CAPEX %.0f not << SmartNIC %.0f", flex.CapexUSD, nic.CapexUSD)
	}
	if flex.AddedPowerW >= nic.AddedPowerW/10 {
		t.Errorf("flex power %.0f not order-of-magnitude below SmartNIC %.0f",
			flex.AddedPowerW, nic.AddedPowerW)
	}
	for _, o := range r.Options {
		if o.Name != "FlexSFP per port" && !o.Disruptive && o.PerPort {
			t.Errorf("%s also claims drop-in per-port: the gap closed", o.Name)
		}
	}
}
