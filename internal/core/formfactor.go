package core

import (
	"fmt"
	"math"
)

// This file models the paper's §6 open question — "Scalability: can this
// approach be extended to higher-speed and higher-density form factors
// like QSFP-DD or OSFP while meeting power and thermal constraints?" —
// as a searchable design space: pluggable form factors with their MSA
// power envelopes, silicon process nodes with their dynamic-power
// scaling, and a planner that finds the cheapest (lowest-power) PPE
// configuration sustaining a target line rate and the smallest module
// that can host it.

// FormFactor is a pluggable module class per its MSA.
type FormFactor struct {
	Name string
	// EnvelopeW is the practical module power ceiling.
	EnvelopeW float64
	// MaxGbps is the fastest standard rate the form factor carries.
	MaxGbps float64
	// Lanes is the electrical lane count.
	Lanes int
}

// The pluggable family, smallest first.
var (
	FFSFPPlus = FormFactor{Name: "SFP+", EnvelopeW: 3, MaxGbps: 10, Lanes: 1}
	FFSFP28   = FormFactor{Name: "SFP28", EnvelopeW: 3, MaxGbps: 25, Lanes: 1}
	FFQSFP28  = FormFactor{Name: "QSFP28", EnvelopeW: 6, MaxGbps: 100, Lanes: 4}
	FFQSFPDD  = FormFactor{Name: "QSFP-DD", EnvelopeW: 14, MaxGbps: 400, Lanes: 8}
	FFOSFP    = FormFactor{Name: "OSFP", EnvelopeW: 17, MaxGbps: 800, Lanes: 8}
)

// FormFactors lists the family smallest-envelope first.
func FormFactors() []FormFactor {
	return []FormFactor{FFSFPPlus, FFSFP28, FFQSFP28, FFQSFPDD, FFOSFP}
}

// ProcessNode captures how silicon generation scales the PPE's dynamic
// power and clock ceiling (§5.3: "the current FlexSFP prototype is built
// on a mature 28 nm FPGA; future iterations will leverage ongoing
// semiconductor trends").
type ProcessNode struct {
	Name        string
	Nm          int
	DynScale    float64 // dynamic power relative to 28 nm
	MaxClockMHz float64
}

// Process nodes.
var (
	Node28 = ProcessNode{Name: "28nm", Nm: 28, DynScale: 1.0, MaxClockMHz: 400}
	Node16 = ProcessNode{Name: "16nm", Nm: 16, DynScale: 0.55, MaxClockMHz: 600}
	Node7  = ProcessNode{Name: "7nm", Nm: 7, DynScale: 0.30, MaxClockMHz: 800}
)

// EngineCapacityGbps returns the min-frame-limited wire rate one PPE
// pipeline sustains: frames take ceil(64/wordBytes)+1 cycles for 84
// wire bytes.
func EngineCapacityGbps(clockHz int64, widthBits int) float64 {
	wordBytes := widthBits / 8
	cycles := float64((MinFrame+wordBytes-1)/wordBytes + 1)
	pps := float64(clockHz) / cycles
	return pps * wireBytesPerMinFrame * 8 / 1e9
}

const (
	// MinFrame is the minimum Ethernet frame the capacity analysis uses.
	MinFrame = 64
	// wireBytesPerMinFrame includes preamble + IFG.
	wireBytesPerMinFrame = 84
)

// ScaledPeakPowerW extends the calibrated SFP+ power model to multi-lane
// modules, parallel PPE pipelines and newer process nodes:
//
//	optics: 0.55 W first lane + 0.35 W per extra lane
//	static: 0.30 W × sqrt(width/64 × engines) (larger die)
//	Mi-V:   0.07 W
//	dynamic: 0.60 W × clock/156.25M × width/64 × engines × node scale
//
// At (156.25 MHz, 64 b, 1 engine, 1 lane, 28 nm) this reduces exactly to
// the paper-calibrated 1.52 W.
func ScaledPeakPowerW(clockHz int64, widthBits, engines, lanes int, node ProcessNode) float64 {
	optics := 0.55 + 0.35*float64(lanes-1)
	widthScale := float64(widthBits) / baseDatapathBits
	static := flexFPGAStaticW * math.Sqrt(widthScale*float64(engines))
	dyn := flexDynamicFullW * (float64(clockHz) / baseClockHz) * widthScale * float64(engines) * node.DynScale
	return optics + static + flexMiVW + dyn
}

// FormFactorPlan is the planner's answer for one target rate.
type FormFactorPlan struct {
	TargetGbps   float64
	Node         ProcessNode
	ClockHz      int64
	DatapathBits int
	Engines      int
	CapacityGbps float64
	PeakW        float64
	// Module is the smallest form factor that carries the rate and
	// admits the power.
	Module FormFactor
	// Feasible is false when no form factor in the family works.
	Feasible bool
}

// PlanFormFactor searches the (width, clock, engines) grid for the
// lowest-power configuration sustaining targetGbps on the node, then
// picks the smallest form factor that hosts it.
func PlanFormFactor(targetGbps float64, node ProcessNode) FormFactorPlan {
	widths := []int{64, 128, 256, 512, 1024}
	clocks := []int64{156_250_000, 312_500_000, int64(node.MaxClockMHz) * 1_000_000}
	engines := []int{1, 2, 4}

	best := FormFactorPlan{TargetGbps: targetGbps, Node: node}
	bestW := math.Inf(1)
	for _, w := range widths {
		for _, c := range clocks {
			if float64(c)/1e6 > node.MaxClockMHz {
				continue
			}
			for _, e := range engines {
				cap := EngineCapacityGbps(c, w) * float64(e)
				if cap < targetGbps {
					continue
				}
				lanes := lanesFor(targetGbps)
				p := ScaledPeakPowerW(c, w, e, lanes, node)
				if p < bestW {
					bestW = p
					best.ClockHz, best.DatapathBits, best.Engines = c, w, e
					best.CapacityGbps, best.PeakW = cap, p
				}
			}
		}
	}
	if math.IsInf(bestW, 1) {
		return best // infeasible at any configuration
	}
	for _, ff := range FormFactors() {
		if ff.MaxGbps >= targetGbps && ff.EnvelopeW >= best.PeakW {
			best.Module = ff
			best.Feasible = true
			break
		}
	}
	return best
}

// lanesFor returns the optical lane count a target rate implies
// (25G lanes up to 100G, 50G lanes beyond — the QSFP28/QSFP-DD split).
func lanesFor(targetGbps float64) int {
	switch {
	case targetGbps <= 25:
		return 1
	case targetGbps <= 100:
		return int(math.Ceil(targetGbps / 25))
	default:
		return int(math.Ceil(targetGbps / 50))
	}
}

func (p FormFactorPlan) String() string {
	if !p.Feasible {
		return fmt.Sprintf("%.0fG @ %s: infeasible", p.TargetGbps, p.Node.Name)
	}
	return fmt.Sprintf("%.0fG @ %s: %db × %d engines @ %.2f MHz = %.1fG capacity, %.2f W → %s",
		p.TargetGbps, p.Node.Name, p.DatapathBits, p.Engines,
		float64(p.ClockHz)/1e6, p.CapacityGbps, p.PeakW, p.Module.Name)
}
