package paper

import (
	"testing"

	"flexsfp/internal/exp"
)

// The catalog gates: every registry app (plus the two-way shell) fits
// the MPF200T, and the edge-protocol trio holds line rate on its
// matched traffic profile.
func TestCatalogGates(t *testing.T) {
	r, err := Catalog(exp.RunContext{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) < 15 {
		t.Fatalf("catalog covers %d apps, want ≥ 15", len(r.Apps))
	}
	if !r.FitsAll {
		for _, a := range r.Apps {
			if !a.Fits {
				t.Errorf("%s does not fit the MPF200T (max util %.1f%%)", a.App, a.UtilMaxPct)
			}
		}
	}
	if !r.NewAppsLineRate {
		for _, a := range r.Apps {
			if newCatalogApps[a.App] && !a.LineRate {
				t.Errorf("%s drops on its matched profile: %d queue drops", a.App, a.Drops)
			}
		}
	}
	seen := map[string]bool{}
	for _, a := range r.Apps {
		seen[a.App] = true
		if a.OfferedPPS <= 0 || a.DeliveredPPS <= 0 {
			t.Errorf("%s: no traffic measured (offered %.0f, delivered %.0f)", a.App, a.OfferedPPS, a.DeliveredPPS)
		}
	}
	for name := range newCatalogApps {
		if !seen[name] {
			t.Errorf("new app %s missing from catalog sweep", name)
		}
	}
}

// Same seed, same sweep: the catalog result must be deterministic so the
// smoke gate can grep stable values.
func TestCatalogDeterministic(t *testing.T) {
	a, err := Catalog(exp.RunContext{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Catalog(exp.RunContext{Seed: 7, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("app count differs: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			t.Errorf("%s: results differ across parallelism:\n%+v\n%+v", a.Apps[i].App, a.Apps[i], b.Apps[i])
		}
	}
}
