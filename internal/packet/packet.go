// Package packet implements a compact, allocation-conscious layered packet
// library in the style of gopacket: typed layers with zero-copy decoding,
// a DecodingLayerParser-like fast path, reverse-order serialization with
// length/checksum fixup, and symmetric flow hashing for load balancing.
//
// It covers the protocols the FlexSFP paper's use cases need: Ethernet,
// 802.1Q/QinQ VLAN, MPLS, ARP, IPv4, IPv6, TCP, UDP, ICMPv4, GRE, VXLAN,
// a compact DNS view, and an INT-style telemetry shim.
package packet

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType int

// Known layer types.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeDot1Q
	LayerTypeMPLS
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypeGRE
	LayerTypeVXLAN
	LayerTypeDNS
	LayerTypeINT
	LayerTypeDHCPv4
	LayerTypePayload
	layerTypeMax
)

var layerTypeNames = [...]string{
	LayerTypeZero:     "Zero",
	LayerTypeEthernet: "Ethernet",
	LayerTypeDot1Q:    "Dot1Q",
	LayerTypeMPLS:     "MPLS",
	LayerTypeARP:      "ARP",
	LayerTypeIPv4:     "IPv4",
	LayerTypeIPv6:     "IPv6",
	LayerTypeTCP:      "TCP",
	LayerTypeUDP:      "UDP",
	LayerTypeICMPv4:   "ICMPv4",
	LayerTypeGRE:      "GRE",
	LayerTypeVXLAN:    "VXLAN",
	LayerTypeDNS:      "DNS",
	LayerTypeINT:      "INT",
	LayerTypeDHCPv4:   "DHCPv4",
	LayerTypePayload:  "Payload",
}

func (t LayerType) String() string {
	if t > LayerTypeZero && t < layerTypeMax {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// EtherType values used by the decoder.
type EtherType uint16

// Known EtherTypes.
const (
	EtherTypeIPv4        EtherType = 0x0800
	EtherTypeARP         EtherType = 0x0806
	EtherTypeDot1Q       EtherType = 0x8100
	EtherTypeQinQ        EtherType = 0x88A8
	EtherTypeIPv6        EtherType = 0x86DD
	EtherTypeMPLSUnicast EtherType = 0x8847
	// EtherTypeFlexControl carries in-band FlexSFP control frames
	// (IEEE 802 local experimental EtherType 1).
	EtherTypeFlexControl EtherType = 0x88B5
	// EtherTypeINT carries the INT-style telemetry shim inserted by the
	// telemetry app (IEEE 802 local experimental EtherType 2).
	EtherTypeINT EtherType = 0x88B6
)

// IPProtocol values used by the decoder.
type IPProtocol uint8

// Known IP protocol numbers.
const (
	IPProtocolICMPv4 IPProtocol = 1
	IPProtocolTCP    IPProtocol = 6
	IPProtocolUDP    IPProtocol = 17
	IPProtocolGRE    IPProtocol = 47
	IPProtocolIPv4   IPProtocol = 4 // IP-in-IP encapsulation
	IPProtocolIPv6   IPProtocol = 41

	// IPv6 extension headers the View parser skips (plus ICMPv6, which it
	// reports as the final protocol).
	IPProtocolIPv6HopByHop IPProtocol = 0
	IPProtocolIPv6Routing  IPProtocol = 43
	IPProtocolIPv6Fragment IPProtocol = 44
	IPProtocolICMPv6       IPProtocol = 58
	IPProtocolIPv6NoNext   IPProtocol = 59
	IPProtocolIPv6DestOpts IPProtocol = 60
)

// Decoding errors.
var (
	ErrTooShort     = errors.New("packet: data too short for layer")
	ErrUnsupported  = errors.New("packet: no decoder for layer type")
	ErrBadHeader    = errors.New("packet: malformed header")
	ErrTruncated    = errors.New("packet: payload truncated relative to header length")
	ErrBadChecksum  = errors.New("packet: bad checksum")
	ErrBufferTooBig = errors.New("packet: serialize buffer limit exceeded")
)

// Layer is the common interface of all decoded layers.
type Layer interface {
	// LayerType returns the type of this layer.
	LayerType() LayerType
	// DecodeFromBytes decodes the layer from data, retaining references
	// into data (zero copy). It must not retain data past the next call.
	DecodeFromBytes(data []byte) error
	// NextLayerType returns the type of the layer carried in the payload,
	// or LayerTypePayload when opaque.
	NextLayerType() LayerType
	// LayerPayload returns the bytes after this layer's header.
	LayerPayload() []byte
}

// SerializableLayer is implemented by layers that can write themselves.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends this layer's wire format to b. When
	// opts.FixLengths is set the layer updates its length fields from the
	// bytes already in b; when opts.ComputeChecksums is set it computes
	// checksums.
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
}

// Parser is a gopacket DecodingLayerParser-style zero-allocation parser:
// it decodes a byte slice into a fixed set of caller-owned layer structs,
// appending the types seen to a caller-provided slice.
type Parser struct {
	first    LayerType
	decoders [layerTypeMax]Layer
	// Truncated is set after DecodeLayers when decoding stopped early due
	// to a missing decoder rather than an error.
	Truncated bool
}

// NewParser builds a parser starting at first, dispatching to the given
// layer structs by their LayerType.
func NewParser(first LayerType, layers ...Layer) *Parser {
	p := &Parser{first: first}
	for _, l := range layers {
		p.AddLayer(l)
	}
	return p
}

// AddLayer registers an additional decoding layer.
func (p *Parser) AddLayer(l Layer) {
	p.decoders[l.LayerType()] = l
}

// DecodeLayers decodes data into the registered layers, appending decoded
// layer types to *decoded (which is truncated first). Decoding stops
// without error when a layer type has no registered decoder; p.Truncated
// reports that case.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	typ := p.first
	for typ != LayerTypeZero && typ != LayerTypePayload {
		dec := p.decoders[typ]
		if dec == nil {
			p.Truncated = true
			return nil
		}
		if err := dec.DecodeFromBytes(data); err != nil {
			return fmt.Errorf("decoding %v: %w", typ, err)
		}
		*decoded = append(*decoded, typ)
		data = dec.LayerPayload()
		typ = dec.NextLayerType()
		if len(data) == 0 {
			break
		}
	}
	return nil
}

// Packet is the convenience (allocating) decode path: it decodes data into
// a list of freshly allocated layers. Use Parser in fast paths.
type Packet struct {
	layers []Layer
	data   []byte
	err    error
}

// NewPacket fully decodes data starting at first. Decoding errors are
// recorded, not returned: inspect ErrorLayer.
func NewPacket(data []byte, first LayerType) *Packet {
	pkt := &Packet{data: data}
	typ := first
	for typ != LayerTypeZero && typ != LayerTypePayload {
		l := newLayer(typ)
		if l == nil {
			break
		}
		if err := l.DecodeFromBytes(data); err != nil {
			pkt.err = fmt.Errorf("decoding %v: %w", typ, err)
			break
		}
		pkt.layers = append(pkt.layers, l)
		data = l.LayerPayload()
		typ = l.NextLayerType()
		if len(data) == 0 {
			break
		}
	}
	return pkt
}

func newLayer(t LayerType) Layer {
	switch t {
	case LayerTypeEthernet:
		return &Ethernet{}
	case LayerTypeDot1Q:
		return &Dot1Q{}
	case LayerTypeMPLS:
		return &MPLS{}
	case LayerTypeARP:
		return &ARP{}
	case LayerTypeIPv4:
		return &IPv4{}
	case LayerTypeIPv6:
		return &IPv6{}
	case LayerTypeTCP:
		return &TCP{}
	case LayerTypeUDP:
		return &UDP{}
	case LayerTypeICMPv4:
		return &ICMPv4{}
	case LayerTypeGRE:
		return &GRE{}
	case LayerTypeVXLAN:
		return &VXLAN{}
	case LayerTypeDNS:
		return &DNS{}
	case LayerTypeINT:
		return &INT{}
	case LayerTypeDHCPv4:
		return &DHCPv4{}
	default:
		return nil
	}
}

// Layer returns the first decoded layer of type t, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Layers returns all decoded layers in order.
func (p *Packet) Layers() []Layer { return p.layers }

// ErrorLayer returns the decoding error, if any.
func (p *Packet) ErrorLayer() error { return p.err }

// Data returns the raw packet bytes.
func (p *Packet) Data() []byte { return p.data }
