// Package core implements the FlexSFP module: a standard SFP+ transceiver
// model plus the programmable variant with the three Figure-1 architecture
// shells (One-Way-Filter, Two-Way-Core, Active-Core), the boot/
// reconfiguration FSM over the SPI flash, in-band control-frame demux, and
// the module power model calibrated to the paper's §5 measurements.
package core

import (
	"fmt"
	"sync"

	"flexsfp/internal/ppe"
)

// App is an instantiated PPE application: its declarative program (with
// the behavioral handler bound) plus its runtime state registry, which the
// embedded control plane reads and writes.
type App interface {
	// Program returns the program with a live Handler.
	Program() *ppe.Program
	// State returns the control-plane-visible object registry.
	State() *ppe.State
	// Configure applies the app-specific config blob carried in the
	// bitstream manifest (static rules loaded at boot, §4.1).
	Configure(config []byte) error
}

// Factory creates a fresh App instance (one per boot).
type Factory func() App

// Registry maps application names (as carried in bitstream headers) to
// factories. A module consults its registry when booting a slot: the
// software analogue of the FPGA configuring itself from the stored
// design.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory; re-registering a name replaces it.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[name] = f
}

// New instantiates the named application.
func (r *Registry) New(name string) (App, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no registered application %q", name)
	}
	return f(), nil
}

// Names returns the registered application names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	return out
}
