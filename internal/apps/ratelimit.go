package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// RateLimitMeters is the meter-bank size.
const RateLimitMeters = 256

// RateLimitConfig configures per-source policing ("rate-limiting traffic
// from selected sources", §3; "basic rate-limiting" per subscriber in the
// telecom scenario, §2.1).
type RateLimitConfig struct {
	Direction string          `json:"direction,omitempty"`
	Sources   []RateLimitRule `json:"sources,omitempty"`
	// DefaultRateBps, when nonzero, polices unmatched sources through a
	// shared meter.
	DefaultRateBps   float64 `json:"default_rate_bps,omitempty"`
	DefaultBurstBits float64 `json:"default_burst_bits,omitempty"`
}

// RateLimitRule assigns a source IP its own token bucket.
type RateLimitRule struct {
	SrcIP     string  `json:"src_ip"`
	RateBps   float64 `json:"rate_bps"`
	BurstBits float64 `json:"burst_bits"`
}

// Rate-limit counter indexes (bank "police").
const (
	RLConformed = iota
	RLDropped
	RLUnmatched
	rlCounters
)

// defaultMeterIndex is the shared bucket for unmatched sources.
const defaultMeterIndex = 0

type ratelimitApp struct {
	prog       *ppe.Program
	state      *ppe.State
	sources    *ppe.Table // srcIP(32b) → meter index(16b)
	meters     *ppe.MeterBank
	ctr        *ppe.CounterBank
	nextMeter  int
	useDefault bool
	dir        string
	v          packet.View
}

// NewRateLimit builds a policing instance.
func NewRateLimit() *ratelimitApp {
	a := &ratelimitApp{state: ppe.NewState(), nextMeter: 1}
	spec := ppe.TableSpec{Name: "sources", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: RateLimitMeters}
	a.sources = a.state.AddTable(spec)
	a.meters = a.state.AddMeters("meters", RateLimitMeters)
	a.ctr = a.state.AddCounters("police", rlCounters)
	a.prog = &ppe.Program{
		Name:        "ratelimit",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4},
		Tables:      []ppe.TableSpec{spec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 32},
			{Kind: ppe.ActionMeterBank, Count: RateLimitMeters},
			{Kind: ppe.ActionCounterBank, Count: rlCounters},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *ratelimitApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *ratelimitApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *ratelimitApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg RateLimitConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("ratelimit: %w", err)
	}
	a.dir = cfg.Direction
	if cfg.DefaultRateBps > 0 {
		burst := cfg.DefaultBurstBits
		if burst == 0 {
			burst = cfg.DefaultRateBps / 10
		}
		if err := a.meters.Configure(defaultMeterIndex, cfg.DefaultRateBps, burst); err != nil {
			return err
		}
		a.useDefault = true
	}
	for _, r := range cfg.Sources {
		if err := a.AddSource(r); err != nil {
			return err
		}
	}
	return nil
}

// AddSource assigns a fresh meter to a source IP.
func (a *ratelimitApp) AddSource(r RateLimitRule) error {
	ip, err := netip.ParseAddr(r.SrcIP)
	if err != nil || !ip.Is4() {
		return fmt.Errorf("ratelimit: bad source %q", r.SrcIP)
	}
	if a.nextMeter >= RateLimitMeters {
		return fmt.Errorf("ratelimit: meter bank exhausted")
	}
	idx := a.nextMeter
	a.nextMeter++
	burst := r.BurstBits
	if burst == 0 {
		burst = r.RateBps / 10
	}
	if err := a.meters.Configure(idx, r.RateBps, burst); err != nil {
		return err
	}
	ip4 := ip.As4()
	var vb [2]byte
	binary.BigEndian.PutUint16(vb[:], uint16(idx))
	return a.sources.Add(ip4[:], vb[:])
}

func (a *ratelimitApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !dirEnabled(a.dir, ctx.Dir) {
		return ppe.VerdictPass
	}
	if !a.v.Parse(ctx.Data) || !a.v.IsIPv4 {
		return ppe.VerdictPass
	}
	idx := -1
	if val, ok := a.sources.Lookup(a.v.SrcIPv4()); ok {
		idx = int(binary.BigEndian.Uint16(val))
	} else if a.useDefault {
		idx = defaultMeterIndex
	} else {
		a.ctr.Inc(RLUnmatched, len(ctx.Data))
		return ppe.VerdictPass
	}
	if a.meters.Conform(idx, ctx.TimestampNs, len(ctx.Data)) {
		a.ctr.Inc(RLConformed, len(ctx.Data))
		return ppe.VerdictPass
	}
	a.ctr.Inc(RLDropped, len(ctx.Data))
	return ppe.VerdictDrop
}
