package flexsfp

// The experiment harness moved to internal/exp (framework: registry,
// RunContext, typed result envelopes) and internal/exp/paper (the
// ported evaluation suite). Everything below is a thin compatibility
// shim so existing callers of the historical root-level API keep
// compiling; new code should address experiments through the registry:
//
//	import (
//	    "flexsfp/internal/exp"
//	    _ "flexsfp/internal/exp/paper" // self-registers the suite
//	)
//
//	e, _ := exp.Default.Lookup("power")
//	res, err := e.Run(exp.RunContext{Seed: 1, Trials: 8})
//
// or simply through `flexsfp-bench -list` / `-run <name>`.

import "flexsfp/internal/exp/paper"

// Table 1 (§5.1).
type (
	// Table1Row is one component row.
	Table1Row = paper.Table1Row
	// Table1Result reproduces the paper's Table 1.
	Table1Result = paper.Table1Result
)

// Table1 synthesizes the NAT design and reports the per-component
// breakdown against the MPF200T.
//
// Deprecated: use the "table1" experiment in internal/exp/paper.
func Table1() Table1Result { return paper.Table1() }

// Table 2 (§5.1).
type (
	// Table2Row is one design's normalized footprint and fit verdict.
	Table2Row = paper.Table2Row
	// Table2Result reproduces the paper's Table 2.
	Table2Result = paper.Table2Result
)

// Table2 normalizes the cited designs and checks them against the
// FlexSFP's device.
//
// Deprecated: use the "table2" experiment in internal/exp/paper.
func Table2() Table2Result { return paper.Table2() }

// Table 3 (§5.2).

// Table3Result reproduces the paper's Table 3.
type Table3Result = paper.Table3Result

// Table3 evaluates the ideal-scaling comparison.
//
// Deprecated: use the "table3" experiment in internal/exp/paper.
func Table3() Table3Result { return paper.Table3() }

// §5 power measurement.

// PowerResult reproduces the Thunderbolt-NIC testbed numbers.
type PowerResult = paper.PowerResult

// PowerExperiment runs the three-step §5 procedure.
//
// Deprecated: use the "power" experiment in internal/exp/paper.
func PowerExperiment(seed int64) (PowerResult, error) { return paper.PowerExperiment(seed) }

// PowerTrialsResult is the §5 power experiment over many seeds.
type PowerTrialsResult = paper.PowerTrialsResult

// PowerExperimentTrials runs the §5 power procedure for trials seeds in
// parallel.
//
// Deprecated: run the "power" experiment with RunContext.Trials > 1.
func PowerExperimentTrials(rootSeed int64, trials, parallelism int) (PowerTrialsResult, error) {
	return paper.PowerExperimentTrials(rootSeed, trials, parallelism)
}

// §5.1 line-rate verification.
type (
	// LineRatePoint is one frame-size measurement.
	LineRatePoint = paper.LineRatePoint
	// LineRateResult is the full sweep.
	LineRateResult = paper.LineRateResult
	// LineRatePointTrials is one frame-size point across seeds.
	LineRatePointTrials = paper.LineRatePointTrials
	// LineRateTrialsResult is the §5.1 sweep over many seeds.
	LineRateTrialsResult = paper.LineRateTrialsResult
)

// LineRateExperiment drives the NAT module at 10G line rate across
// frame sizes.
//
// Deprecated: use the "linerate" experiment in internal/exp/paper.
func LineRateExperiment(seed int64) (LineRateResult, error) { return paper.LineRateExperiment(seed) }

// LineRateExperimentTrials runs the line-rate sweep for trials seeds in
// parallel.
//
// Deprecated: run the "linerate" experiment with RunContext.Trials > 1.
func LineRateExperimentTrials(rootSeed int64, trials, parallelism int) (LineRateTrialsResult, error) {
	return paper.LineRateExperimentTrials(rootSeed, trials, parallelism)
}

// Figure 1 / §4.1 architecture comparison.
type (
	// ArchPoint is one architecture × clock configuration.
	ArchPoint = paper.ArchPoint
	// ArchitectureResult compares the Figure-1 shells.
	ArchitectureResult = paper.ArchitectureResult
)

// ArchitectureExperiment loads each shell with minimum-size line-rate
// traffic and measures what survives.
//
// Deprecated: use the "arch" experiment in internal/exp/paper.
func ArchitectureExperiment(seed int64) (ArchitectureResult, error) {
	return paper.ArchitectureExperiment(seed)
}

// §5.3 scalability sweep.
type (
	// ScalePoint is one (width, clock) design point.
	ScalePoint = paper.ScalePoint
	// ScalabilityResult is the §5.3 sweep.
	ScalabilityResult = paper.ScalabilityResult
)

// ScalabilityExperiment sweeps the PPE design space. The sweep is
// deterministic; the historical zero-argument signature runs it with
// seed 1 (the registry-driven path threads -seed uniformly).
//
// Deprecated: use the "scale" experiment in internal/exp/paper.
func ScalabilityExperiment() ScalabilityResult { return paper.ScalabilityExperiment(1) }

// §2 acceleration gap.
type (
	// GapPoint is one path's measured profile.
	GapPoint = paper.GapPoint
	// GapResult quantifies the acceleration gap.
	GapResult = paper.GapResult
)

// AccelerationGapExperiment runs an ACL micro-task at 1 Mpps over the
// three paths of §2.
//
// Deprecated: use the "gap" experiment in internal/exp/paper.
func AccelerationGapExperiment(seed int64) (GapResult, error) {
	return paper.AccelerationGapExperiment(seed)
}

// §5.3 reliability.
type (
	// ReliabilityResult wraps the fleet report.
	ReliabilityResult = paper.ReliabilityResult
	// ReliabilityTrialsResult wraps the multi-seed fleet report.
	ReliabilityTrialsResult = paper.ReliabilityTrialsResult
)

// ReliabilityExperiment runs the default 10k-module, 10-year fleet.
//
// Deprecated: use the "reliability" experiment in internal/exp/paper.
func ReliabilityExperiment(seed int64) ReliabilityResult { return paper.ReliabilityExperiment(seed) }

// ReliabilityExperimentTrials runs the 10k-module fleet for trials
// seeds in parallel.
//
// Deprecated: run the "reliability" experiment with RunContext.Trials > 1.
func ReliabilityExperimentTrials(rootSeed int64, trials, parallelism int) ReliabilityTrialsResult {
	return paper.ReliabilityExperimentTrials(rootSeed, trials, parallelism)
}

// §6 form-factor scaling.

// FormFactorResult sweeps target rates × process nodes through the
// form-factor planner.
type FormFactorResult = paper.FormFactorResult

// FormFactorExperiment plans PPE configurations for 10/25/100/400 Gb/s
// on 28/16/7 nm silicon. The planner is deterministic; the historical
// zero-argument signature runs it with seed 1.
//
// Deprecated: use the "formfactor" experiment in internal/exp/paper.
func FormFactorExperiment() FormFactorResult { return paper.FormFactorExperiment(1) }

// §6 latency overhead.
type (
	// LatencyPoint compares a plain SFP retimer against the PPE path.
	LatencyPoint = paper.LatencyPoint
	// LatencyOverheadResult is the sweep.
	LatencyOverheadResult = paper.LatencyOverheadResult
)

// LatencyOverheadExperiment measures the in-cable processing latency
// the PPE adds over a plain transceiver.
//
// Deprecated: use the "latency" experiment in internal/exp/paper.
func LatencyOverheadExperiment() (LatencyOverheadResult, error) {
	return paper.LatencyOverheadExperiment()
}

// §2.1 retrofit economics.
type (
	// RetrofitOption is one way to add programmability to a switch.
	RetrofitOption = paper.RetrofitOption
	// RetrofitResult is the comparison plus a functional spot check.
	RetrofitResult = paper.RetrofitResult
)

// RetrofitEconomicsExperiment prices the §2.1 decision for a 48-port
// aggregation switch and runs a functional spot check.
//
// Deprecated: use the "retrofit" experiment in internal/exp/paper.
func RetrofitEconomicsExperiment() (RetrofitResult, error) {
	return paper.RetrofitEconomicsExperiment()
}

// §4.2 reconfiguration under faults.
type (
	// FaultRatePoint aggregates one fault-rate setting across trials.
	FaultRatePoint = paper.FaultRatePoint
	// ReconfigUnderFaultsResult is the §4.2 chaos sweep.
	ReconfigUnderFaultsResult = paper.ReconfigUnderFaultsResult
)

// ReconfigUnderFaultsExperiment sweeps fault rates over trials
// independent seeds.
//
// Deprecated: use the "faults" experiment in internal/exp/paper (the
// max rate travels as RunContext.FaultRate).
func ReconfigUnderFaultsExperiment(rootSeed int64, trials, parallelism int, maxRate float64) (ReconfigUnderFaultsResult, error) {
	return paper.ReconfigUnderFaultsExperiment(rootSeed, trials, parallelism, maxRate)
}
