package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// SanitizeConfig configures packet sanitization and protocol validation
// ("removing deprecated headers, blocking malformed packets", §3).
type SanitizeConfig struct {
	Direction string `json:"direction,omitempty"`
	// DropFragments discards IPv4 fragments (common edge policy).
	DropFragments bool `json:"drop_fragments,omitempty"`
	// MinTTL drops packets below this TTL/hop limit (0 disables).
	MinTTL uint8 `json:"min_ttl,omitempty"`
	// VerifyChecksums recomputes the IPv4 header checksum.
	VerifyChecksums bool `json:"verify_checksums,omitempty"`
	// DropIPv6 enforces an IPv4-only access policy (the "per-subscriber
	// IPv6 filtering" of §2.1).
	DropIPv6 bool `json:"drop_ipv6,omitempty"`
}

// Sanitize counter indexes (bank "reasons").
const (
	SanPassed = iota
	SanMalformed
	SanBadChecksum
	SanFragment
	SanLowTTL
	SanSpoofedSrc
	SanIPv6Dropped
	sanCounters
)

type sanitizeApp struct {
	prog  *ppe.Program
	state *ppe.State
	ctr   *ppe.CounterBank
	cfg   SanitizeConfig
	v     packet.View
}

// NewSanitize builds a sanitizer instance.
func NewSanitize() *sanitizeApp {
	a := &sanitizeApp{state: ppe.NewState()}
	a.ctr = a.state.AddCounters("reasons", sanCounters)
	a.prog = &ppe.Program{
		Name:        "sanitize",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeIPv6},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionChecksum},
			{Kind: ppe.ActionCounterBank, Count: sanCounters},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *sanitizeApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *sanitizeApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *sanitizeApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	if err := json.Unmarshal(config, &a.cfg); err != nil {
		return fmt.Errorf("sanitize: %w", err)
	}
	return nil
}

func (a *sanitizeApp) drop(reason, n int) ppe.Verdict {
	a.ctr.Inc(reason, n)
	return ppe.VerdictDrop
}

func (a *sanitizeApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !dirEnabled(a.cfg.Direction, ctx.Dir) {
		return ppe.VerdictPass
	}
	n := len(ctx.Data)
	if !a.v.Parse(ctx.Data) {
		return a.drop(SanMalformed, n)
	}
	v := &a.v

	switch {
	case v.IsIPv4:
		d := ctx.Data
		l3 := v.L3Off
		totalLen := int(binary.BigEndian.Uint16(d[l3+2 : l3+4]))
		if totalLen < v.IPv4HeaderLen() || l3+totalLen > len(d) {
			return a.drop(SanMalformed, n)
		}
		if a.cfg.VerifyChecksums && !packet.VerifyIPv4Checksum(d[l3:]) {
			return a.drop(SanBadChecksum, n)
		}
		ff := binary.BigEndian.Uint16(d[l3+6 : l3+8])
		if a.cfg.DropFragments && (ff&0x2000 != 0 || ff&0x1fff != 0) {
			return a.drop(SanFragment, n)
		}
		if a.cfg.MinTTL > 0 && d[l3+8] < a.cfg.MinTTL {
			return a.drop(SanLowTTL, n)
		}
		// Land-attack style spoofing: src == dst.
		if [4]byte(v.SrcIPv4()) == [4]byte(v.DstIPv4()) {
			return a.drop(SanSpoofedSrc, n)
		}
	case v.IsIPv6:
		if a.cfg.DropIPv6 {
			return a.drop(SanIPv6Dropped, n)
		}
		if a.cfg.MinTTL > 0 && ctx.Data[v.L3Off+7] < a.cfg.MinTTL {
			return a.drop(SanLowTTL, n)
		}
	}

	a.ctr.Inc(SanPassed, n)
	return ppe.VerdictPass
}
