package ppe

import "flexsfp/internal/telemetry"

// Telemetry is the optional set of hot-path instruments an Engine records
// into. All fields must be non-nil except Tracer; NewTelemetry builds a
// fully-populated set. Every record the engine makes into these is
// zero-allocation and lock-free, so an instrumented engine keeps the
// datapath's alloc/op pinned at zero (see telemetry_test.go).
type Telemetry struct {
	FramesIn   *telemetry.Counter
	BytesIn    *telemetry.Counter
	QueueDrops *telemetry.Counter
	// Verdicts counts delivered verdicts, indexed by Verdict.
	Verdicts [VerdictToCPU + 1]*telemetry.Counter
	// LatencyNs observes per-frame pipeline latency (queueing + service +
	// pipeline depth) in nanoseconds.
	LatencyNs *telemetry.Histogram
	// QueueDepth observes the input-queue depth seen by each accepted
	// frame.
	QueueDepth *telemetry.Histogram
	// Tracer, when non-nil, records Submit and Verdict hops for sampled
	// frames (the frame's trace ID rides in Ctx.TraceID).
	Tracer *telemetry.Tracer
}

// NewTelemetry registers the engine's instruments under the "ppe." prefix
// and adopts reg's tracer (if any). One Telemetry per registry: names are
// claimed exactly once.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	t := &Telemetry{
		FramesIn:   reg.Counter("ppe.frames_in"),
		BytesIn:    reg.Counter("ppe.bytes_in"),
		QueueDrops: reg.Counter("ppe.queue_drops"),
		// 64 ns .. ~2 ms in powers of two: spans a bare pipeline traversal
		// through a deeply queued burst.
		LatencyNs:  reg.Histogram("ppe.latency_ns", telemetry.ExpBuckets(64, 2, 16)),
		QueueDepth: reg.Histogram("ppe.queue_depth", telemetry.LinearBuckets(0, 4, 16)),
		Tracer:     reg.Tracer(),
	}
	for v := VerdictPass; v <= VerdictToCPU; v++ {
		t.Verdicts[v] = reg.Counter("ppe.verdict." + v.String())
	}
	return t
}

// SetTelemetry attaches (or detaches, with nil) the engine's instruments.
// Wiring-time only; the datapath reads the pointer unsynchronized.
func (e *Engine) SetTelemetry(t *Telemetry) { e.tel = t }

// Telemetry returns the attached instruments (nil if none).
func (e *Engine) Telemetry() *Telemetry { return e.tel }
