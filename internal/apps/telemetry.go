package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// Telemetry roles.
const (
	TelemetrySource  = "source"  // push the INT shim and the first hop
	TelemetryTransit = "transit" // append a hop to an existing shim
	TelemetrySink    = "sink"    // record the path and pop the shim
)

// TelemetryConfig configures the in-band telemetry app of §3
// ("Monitoring and Observability"): INT-style metadata insertion with
// in-line timestamping, bringing observability to infrastructure that
// cannot otherwise be instrumented.
type TelemetryConfig struct {
	Role     string `json:"role"`
	DeviceID uint32 `json:"device_id"`
	// SampleShift subsamples at sources: a packet is instrumented when
	// hash(flow) has SampleShift trailing zero bits (0 = every packet).
	SampleShift uint8 `json:"sample_shift,omitempty"`
}

// Telemetry counter indexes (bank "int").
const (
	INTInserted = iota
	INTAppended
	INTTerminated
	INTFullSkipped
	intCounters
)

// PathRecord is a completed telemetry path collected at a sink.
type PathRecord struct {
	Hops       []packet.INTHop
	CapturedNs uint64
}

type telemetryApp struct {
	prog  *ppe.Program
	state *ppe.State
	ctr   *ppe.CounterBank
	cfg   TelemetryConfig

	mu    sync.Mutex
	paths []PathRecord
	v     packet.View
}

// telemetryMaxPaths bounds sink memory.
const telemetryMaxPaths = 4096

// NewTelemetry builds an INT node instance.
func NewTelemetry() *telemetryApp {
	a := &telemetryApp{state: ppe.NewState()}
	a.ctr = a.state.AddCounters("int", intCounters)
	a.prog = &ppe.Program{
		Name:        "telemetry",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeINT},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionPush, Bytes: 4 + packet.INTHopSize},
			{Kind: ppe.ActionPop, Bytes: 4 + packet.INTMaxHops*packet.INTHopSize},
			{Kind: ppe.ActionTimestamp},
			{Kind: ppe.ActionHash, Bits: 32},
			{Kind: ppe.ActionCounterBank, Count: intCounters},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *telemetryApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *telemetryApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *telemetryApp) Configure(config []byte) error {
	if len(config) == 0 {
		return fmt.Errorf("telemetry: role config required")
	}
	var cfg TelemetryConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	switch cfg.Role {
	case TelemetrySource, TelemetryTransit, TelemetrySink:
	default:
		return fmt.Errorf("telemetry: unknown role %q", cfg.Role)
	}
	a.cfg = cfg
	return nil
}

// Paths drains the collected sink records.
func (a *telemetryApp) Paths() []PathRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.paths
	a.paths = nil
	return out
}

func (a *telemetryApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	data := ctx.Data
	if len(data) < 14 {
		return ppe.VerdictPass
	}
	et := packet.EtherType(binary.BigEndian.Uint16(data[12:14]))
	hop := packet.INTHop{
		DeviceID:    a.cfg.DeviceID,
		IngressPort: uint16(ctx.Dir),
		EgressPort:  uint16(ctx.Dir.Reverse()),
		TimestampNs: ctx.TimestampNs,
	}

	switch a.cfg.Role {
	case TelemetrySource:
		if et == packet.EtherTypeINT {
			// Already instrumented upstream: behave as transit.
			return a.appendHop(ctx, hop)
		}
		if a.cfg.SampleShift > 0 && !a.sampled(data) {
			return ppe.VerdictPass
		}
		ctx.Data = pushINT(data, et, hop)
		a.ctr.Inc(INTInserted, len(ctx.Data))
		return ppe.VerdictPass
	case TelemetryTransit:
		if et != packet.EtherTypeINT {
			return ppe.VerdictPass
		}
		return a.appendHop(ctx, hop)
	case TelemetrySink:
		if et != packet.EtherTypeINT {
			return ppe.VerdictPass
		}
		var in packet.INT
		if in.DecodeFromBytes(data[14:]) != nil {
			return ppe.VerdictDrop
		}
		hops := append(append([]packet.INTHop(nil), in.Hops...), hop)
		a.record(PathRecord{Hops: hops, CapturedNs: ctx.TimestampNs})
		ctx.Data = popINT(data, &in)
		a.ctr.Inc(INTTerminated, len(ctx.Data))
		return ppe.VerdictPass
	}
	return ppe.VerdictPass
}

func (a *telemetryApp) sampled(data []byte) bool {
	if !a.v.Parse(data) {
		return false
	}
	key := a.v.FiveTupleKey(make([]byte, 0, 13))
	h := packet.FNV64(key)
	return h&((1<<a.cfg.SampleShift)-1) == 0
}

func (a *telemetryApp) appendHop(ctx *ppe.Ctx, hop packet.INTHop) ppe.Verdict {
	var in packet.INT
	if in.DecodeFromBytes(ctx.Data[14:]) != nil {
		return ppe.VerdictDrop
	}
	if len(in.Hops) >= packet.INTMaxHops {
		a.ctr.Inc(INTFullSkipped, len(ctx.Data))
		return ppe.VerdictPass
	}
	// Insert one hop record in place: grow the frame by INTHopSize.
	old := ctx.Data
	shimEnd := 14 + 4 + len(in.Hops)*packet.INTHopSize
	out := make([]byte, len(old)+packet.INTHopSize)
	copy(out, old[:shimEnd])
	writeHop(out[shimEnd:], hop)
	copy(out[shimEnd+packet.INTHopSize:], old[shimEnd:])
	out[15] = byte(len(in.Hops) + 1) // hop count
	ctx.Data = out
	a.ctr.Inc(INTAppended, len(out))
	return ppe.VerdictPass
}

func (a *telemetryApp) record(p PathRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.paths) < telemetryMaxPaths {
		a.paths = append(a.paths, p)
	}
}

func writeHop(b []byte, h packet.INTHop) {
	binary.BigEndian.PutUint32(b[0:4], h.DeviceID)
	binary.BigEndian.PutUint16(b[4:6], h.IngressPort)
	binary.BigEndian.PutUint16(b[6:8], h.EgressPort)
	binary.BigEndian.PutUint64(b[8:16], h.TimestampNs)
}

// pushINT inserts a shim with one hop after the Ethernet header.
func pushINT(data []byte, orig packet.EtherType, hop packet.INTHop) []byte {
	out := make([]byte, len(data)+4+packet.INTHopSize)
	copy(out[:12], data[:12])
	binary.BigEndian.PutUint16(out[12:14], uint16(packet.EtherTypeINT))
	out[14] = packet.INTVersion << 4
	out[15] = 1
	binary.BigEndian.PutUint16(out[16:18], uint16(orig))
	writeHop(out[18:], hop)
	copy(out[18+packet.INTHopSize:], data[14:])
	return out
}

// popINT removes the shim, restoring the original EtherType.
func popINT(data []byte, in *packet.INT) []byte {
	shim := 4 + len(in.Hops)*packet.INTHopSize
	out := make([]byte, len(data)-shim)
	copy(out[:12], data[:12])
	binary.BigEndian.PutUint16(out[12:14], uint16(in.OriginalEtherType))
	copy(out[14:], data[14+shim:])
	return out
}
