// Package baseline models the two incumbent options of the paper's §2
// "acceleration gap": executing simple tasks on the host CPU
// (reintroducing latency, jitter, and resource contention) or deploying a
// full SmartNIC/DPU (cost and power out of proportion to the task). The
// acceleration-gap experiment runs the same micro-task over these models
// and the FlexSFP to quantify the gap.
package baseline

import (
	"flexsfp/internal/netsim"
)

// Path is a packet-processing stage with a completion callback; the
// FlexSFP engine, the host-CPU model and the SmartNIC model all fit it.
type Path interface {
	// Submit offers a frame; false means dropped at the input queue.
	Submit(data []byte) bool
	// Name identifies the path in reports.
	Name() string
	// PowerW is the steady-state power attributable to the function.
	PowerW() float64
	// CostUSD is the per-port hardware cost attributable to the function.
	CostUSD() float64
}

// HostCPU models a software path on a shared host core: a serial server
// whose per-packet service time inflates with background contention and
// carries heavy-tailed jitter — the "latency, jitter, and resource
// contention" §2 warns about.
type HostCPU struct {
	sim *netsim.Simulator

	// PerPacket is the uncontended service time (parse + table + action
	// in software, cache-warm).
	PerPacket netsim.Duration
	// Contention is the fraction of the core consumed by other work;
	// service time scales by 1/(1-Contention).
	Contention float64
	// JitterFrac adds an exponential tail with this fraction of the mean
	// (scheduler preemption, cache misses, interrupts).
	JitterFrac float64
	// QueueLimit bounds the software queue (packets); 0 = unbounded.
	QueueLimit int

	out func(data []byte, latency netsim.Duration)

	busyUntil netsim.Time
	queued    int

	InFrames  uint64
	Drops     uint64
	OutFrames uint64
}

// NewHostCPU returns a host path with defaults representative of a
// single-core XDP-less userspace datapath: 550 ns/packet uncontended
// (~1.8 Mpps), 20% jitter.
func NewHostCPU(sim *netsim.Simulator, out func([]byte, netsim.Duration)) *HostCPU {
	return &HostCPU{
		sim:        sim,
		PerPacket:  550 * netsim.Nanosecond,
		JitterFrac: 0.2,
		QueueLimit: 512,
		out:        out,
	}
}

// Name implements Path.
func (h *HostCPU) Name() string { return "host-cpu" }

// PowerW implements Path: one busy x86 core plus its share of uncore.
func (h *HostCPU) PowerW() float64 { return 18.0 }

// CostUSD implements Path: the amortized cost of the core it burns.
func (h *HostCPU) CostUSD() float64 { return 150 }

// CapacityPPS returns the sustainable packet rate under the configured
// contention.
func (h *HostCPU) CapacityPPS() float64 {
	eff := float64(h.PerPacket) / (1 - h.Contention)
	return float64(netsim.Second) / eff
}

// Submit implements Path.
func (h *HostCPU) Submit(data []byte) bool {
	now := h.sim.Now()
	start := h.busyUntil
	if start < now {
		start = now
	}
	if h.QueueLimit > 0 && start > now && h.queued >= h.QueueLimit {
		h.Drops++
		return false
	}
	service := float64(h.PerPacket) / (1 - h.Contention)
	if h.JitterFrac > 0 {
		service += h.sim.Rand().ExpFloat64() * service * h.JitterFrac
	}
	done := start.Add(netsim.Duration(service))
	h.busyUntil = done
	if start > now {
		h.queued++
	}
	h.InFrames++
	h.sim.ScheduleAt(done, func() {
		if h.queued > 0 {
			h.queued--
		}
		h.OutFrames++
		if h.out != nil {
			h.out(data, h.sim.Now().Sub(now))
		}
	})
	return true
}

// SmartNIC models a BlueField-2-class DPU: effectively unconstrained
// throughput for micro-tasks, a fixed pipeline-plus-PCIe latency, and a
// power/cost footprint sized for much heavier workloads.
type SmartNIC struct {
	sim *netsim.Simulator

	// Latency is the fixed processing latency (PCIe round plus pipeline).
	Latency netsim.Duration
	// CapacityPPS bounds the accelerator (far above any 10G workload).
	CapacityPPS float64

	out func(data []byte, latency netsim.Duration)

	busyUntilPs int64
	InFrames    uint64
	OutFrames   uint64
	Drops       uint64
}

// NewSmartNIC returns a DPU-class path: 4 µs fixed latency, 80 Mpps.
func NewSmartNIC(sim *netsim.Simulator, out func([]byte, netsim.Duration)) *SmartNIC {
	return &SmartNIC{
		sim:         sim,
		Latency:     4 * netsim.Microsecond,
		CapacityPPS: 80e6,
		out:         out,
	}
}

// Name implements Path.
func (s *SmartNIC) Name() string { return "smartnic-dpu" }

// PowerW implements Path: the BF-2 card draw the paper cites.
func (s *SmartNIC) PowerW() float64 { return 75.0 }

// CostUSD implements Path.
func (s *SmartNIC) CostUSD() float64 { return 1750 }

// Submit implements Path.
func (s *SmartNIC) Submit(data []byte) bool {
	now := s.sim.Now()
	nowPs := int64(now) * 1000
	start := s.busyUntilPs
	if start < nowPs {
		start = nowPs
	}
	servicePs := int64(1e12 / s.CapacityPPS)
	s.busyUntilPs = start + servicePs
	s.InFrames++
	done := netsim.Time((s.busyUntilPs+999)/1000) + netsim.Time(s.Latency)
	s.sim.ScheduleAt(done, func() {
		s.OutFrames++
		if s.out != nil {
			s.out(data, s.sim.Now().Sub(now))
		}
	})
	return true
}
