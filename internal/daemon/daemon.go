// Package daemon hosts the flexsfpd runtime as an embeddable component:
// a simulated FlexSFP module with its management agent served over a real
// TCP port and, optionally, an expvar-style HTTP endpoint exposing the
// telemetry snapshot. cmd/flexsfpd is a thin flag wrapper around Start;
// tests boot the same daemon in-process on a loopback port.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/overlay"
	"flexsfp/internal/telemetry"
	"flexsfp/internal/trafficgen"
)

// Config selects what to boot and where to listen.
type Config struct {
	Listen     string // management TCP address ("127.0.0.1:0" for tests)
	Name       string
	DeviceID   uint32
	App        string
	Shell      string // one-way-filter, two-way-core, active-core
	ConfigJSON string // inline application config, "" for app defaults
	AuthKey    []byte // fleet HMAC key; nil selects the development key
	TrafficPPS float64
	Seed       int64

	// SimShards >= 2 runs the daemon's world on the parallel simulation
	// core: the module lives on shard 0 and the traffic source on shard
	// 1, joined by a simulated 10G wire whose propagation delay is the
	// conservative lookahead. 0 or 1 keeps the single-heap simulator.
	SimShards int

	// Telemetry enables the metric registry, packet tracer, and the
	// mgmt-protocol telemetry ops.
	Telemetry  bool
	TraceEvery int // sample 1-in-N frames (0 = trace every frame)
	TraceRing  int // trace ring capacity (0 = default 4096)

	// MetricsAddr, when non-empty, serves the JSON snapshot over HTTP
	// (GET /metrics, GET /traces). Requires Telemetry.
	MetricsAddr string

	// Overlay, when non-nil, hosts an overlay rendezvous and/or joins
	// the daemon to a mesh fabric as a tunnel endpoint (see OverlayConfig).
	Overlay *OverlayConfig

	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Daemon is a running module plus its management server.
type Daemon struct {
	Design *hls.Design

	cfg     Config
	sim     *netsim.Simulator // the module's shard (the whole world when unsharded)
	sharded *netsim.Sharded   // non-nil when SimShards >= 2
	mod     *core.Module
	reg     *telemetry.Registry
	srv     *mgmt.Server
	addr    string

	httpLn   net.Listener
	httpSrv  *http.Server
	httpDone chan struct{} // closed when the HTTP serve loop exits

	// Overlay mesh state (all nil/zero unless cfg.Overlay is set).
	rdv     *overlay.Rendezvous
	rdvSrv  *mgmt.Server
	rdvAddr string
	ovl     *overlay.Controller
	ovlConn *mgmt.TCPTransport // non-nil when joined over TCP
	ovlMu   sync.Mutex         // serializes OverlaySync calls
	ovlStop chan struct{}      // non-nil when the periodic sync loop runs
	ovlDone chan struct{}
	// Last-sync stats mirrored under d.mu for the telemetry gauge funcs.
	ovlGen    uint64
	ovlPeers  int
	ovlRoutes int

	// mu serializes all access to the single-threaded simulator: mgmt
	// handlers, HTTP snapshot reads, and the traffic pre-run.
	mu sync.Mutex
}

// Start boots the module and begins serving. Callers own the returned
// daemon and must Close it.
func Start(cfg Config) (*Daemon, error) {
	shell, err := ParseShell(cfg.Shell)
	if err != nil {
		return nil, err
	}
	if cfg.AuthKey == nil {
		cfg.AuthKey = build.DefaultAuthKey
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var sharded *netsim.Sharded
	var sim *netsim.Simulator
	if cfg.SimShards >= 2 {
		sharded = netsim.NewSharded(cfg.Seed, cfg.SimShards)
		sim = sharded.Shard(0)
	} else {
		sim = build.NewSim(cfg.Seed)
	}
	if cfg.Overlay != nil && cfg.Overlay.IP != "" && cfg.App == "mesh" && cfg.ConfigJSON == "" {
		// An overlay endpoint with no explicit app config encapsulates
		// with exactly the parameters it registers.
		js, err := cfg.Overlay.meshConfigJSON(cfg.DeviceID)
		if err != nil {
			return nil, err
		}
		cfg.ConfigJSON = js
	}
	var appCfg any
	if cfg.ConfigJSON != "" {
		appCfg = json.RawMessage(cfg.ConfigJSON)
	}
	mod, design, err := build.Module(sim, build.ModuleSpec{
		Name: cfg.Name, DeviceID: cfg.DeviceID, Shell: shell,
		App: cfg.App, Config: appCfg, AuthKey: cfg.AuthKey,
	})
	if err != nil {
		return nil, fmt.Errorf("building module: %w", err)
	}
	// Sink both data ports (standalone module on the bench).
	mod.SetTx(core.PortEdge, func([]byte) {})
	mod.SetTx(core.PortOptical, func([]byte) {})

	d := &Daemon{Design: design, cfg: cfg, sim: sim, sharded: sharded, mod: mod}
	agent := mgmt.NewAgent(mod)

	var tracer *telemetry.Tracer
	if cfg.Telemetry {
		every := cfg.TraceEvery
		if every == 0 {
			every = 1
		}
		ring := cfg.TraceRing
		if ring == 0 {
			ring = 4096
		}
		d.reg = telemetry.New()
		tracer = telemetry.NewTracer(every, ring)
		d.reg.SetTracer(tracer)
		mod.AttachTelemetry(d.reg)
		sim.AttachTelemetry(d.reg, "sim")
		agent.SetTelemetry(d.reg)
	}

	handler := func(req []byte) []byte {
		d.mu.Lock()
		defer d.mu.Unlock()
		resp := agent.Handle(req)
		d.runAll()
		return resp
	}

	if cfg.TrafficPPS > 0 {
		d.mu.Lock()
		if sharded != nil {
			// Sharded world: the generator lives on shard 1 and reaches
			// the module over a cross-shard 10G wire; the wire's 5 ns
			// propagation delay is the conservative lookahead. The
			// generator draws from its partition stream so the workload
			// is identical at any SimShards value.
			genSim := sharded.Shard(1 % sharded.Shards())
			wire := sharded.ConnectLink(1%sharded.Shards(), 0, 10_000_000_000, 5*netsim.Nanosecond, mod.RxEdge)
			gen := trafficgen.New(genSim, trafficgen.Config{
				PPS: cfg.TrafficPPS, Flows: 64, Rand: sharded.Stream(1),
			}, func(b []byte) bool { return wire.Send(b) })
			if tracer != nil {
				gen.SetTracer(tracer)
			}
			sharded.AlignClocks()
			gen.Run(uint64(cfg.TrafficPPS)) // one second of traffic
			sharded.RunFor(netsim.Second)
			gen.Stop()
			sharded.Run()
		} else {
			gen := trafficgen.New(sim, trafficgen.Config{PPS: cfg.TrafficPPS, Flows: 64},
				func(b []byte) bool { mod.RxEdge(b); return true })
			if tracer != nil {
				gen.SetTracer(tracer)
			}
			gen.Run(uint64(cfg.TrafficPPS)) // one second of traffic
			sim.RunFor(netsim.Second)
			gen.Stop()
			sim.Run()
		}
		d.mu.Unlock()
		logf("pre-ran %.0f pps of traffic for 1s of simulated time", cfg.TrafficPPS)
	}

	d.srv = mgmt.NewServer(handler)
	addr, err := d.srv.Listen(cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	d.addr = addr

	if cfg.MetricsAddr != "" {
		if d.reg == nil {
			d.srv.Close()
			return nil, fmt.Errorf("metrics endpoint requires telemetry")
		}
		if err := d.serveMetrics(cfg.MetricsAddr); err != nil {
			d.srv.Close()
			return nil, err
		}
		logf("metrics on http://%s/metrics", d.MetricsAddr())
	}
	if err := d.startOverlay(handler, logf); err != nil {
		d.Close()
		return nil, err
	}
	logf("management listening on %s", addr)
	return d, nil
}

// runAll drains the simulated world — every shard of the parallel core,
// or the single simulator. Callers hold d.mu.
func (d *Daemon) runAll() {
	if d.sharded != nil {
		d.sharded.Run()
		return
	}
	d.sim.Run()
}

// Addr is the management listener's resolved address.
func (d *Daemon) Addr() string { return d.addr }

// MetricsAddr is the HTTP metrics listener's resolved address, or "" when
// the endpoint is disabled.
func (d *Daemon) MetricsAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Registry exposes the telemetry registry (nil when telemetry is off).
// Callers must not mutate module state through it; reads are safe.
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }

// Close stops both listeners. The metrics server is shut down
// gracefully — in-flight snapshot requests get up to closeGrace to
// finish, then the server is torn down hard — and Close returns only
// after the HTTP serve goroutine has exited, so tests can assert no
// goroutine leaks.
func (d *Daemon) Close() error {
	d.closeOverlay()
	if d.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
		if err := d.httpSrv.Shutdown(ctx); err != nil {
			// Grace expired with requests still in flight: drop them.
			d.httpSrv.Close()
		}
		cancel()
		<-d.httpDone
	}
	return d.srv.Close()
}

// closeGrace bounds how long Close waits for in-flight metrics requests.
const closeGrace = 2 * time.Second

func (d *Daemon) serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// GaugeFuncs read live module state, so snapshot under the same
		// lock that serializes simulator access.
		d.mu.Lock()
		snap := d.reg.Snapshot()
		d.mu.Unlock()
		b, err := snap.MarshalJSONIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		var evs []telemetry.TraceEvent
		if tr := d.reg.Tracer(); tr != nil {
			evs = tr.Events()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(evs)
	})
	d.httpLn = ln
	d.httpSrv = &http.Server{Handler: mux}
	d.httpDone = make(chan struct{})
	go func() {
		defer close(d.httpDone)
		d.httpSrv.Serve(ln)
	}()
	return nil
}

// ParseShell maps the CLI shell name to its hls constant.
func ParseShell(s string) (hls.Shell, error) {
	switch s {
	case "one-way-filter":
		return hls.OneWayFilter, nil
	case "two-way-core":
		return hls.TwoWayCore, nil
	case "active-core":
		return hls.ActiveCore, nil
	default:
		return 0, fmt.Errorf("unknown shell %q", s)
	}
}
