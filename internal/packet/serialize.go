package packet

// SerializeOptions controls layer serialization.
type SerializeOptions struct {
	// FixLengths makes layers compute their length fields from the
	// payload already serialized below them.
	FixLengths bool
	// ComputeChecksums makes layers compute checksums (IPv4 header, TCP,
	// UDP, ICMPv4).
	ComputeChecksums bool
}

// SerializeBuffer builds packets back to front: upper layers append their
// payload first, then each lower layer prepends its header. The buffer
// keeps headroom at the front so prepends rarely reallocate.
type SerializeBuffer struct {
	buf   []byte
	start int
}

// NewSerializeBuffer returns an empty buffer with default headroom for a
// typical L2–L4 header stack.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferExpectedSize(128, 1600)
}

// NewSerializeBufferExpectedSize returns a buffer with headroom for
// expectedPrepend bytes of headers and room for expectedAppend payload.
func NewSerializeBufferExpectedSize(expectedPrepend, expectedAppend int) *SerializeBuffer {
	return &SerializeBuffer{
		buf:   make([]byte, expectedPrepend, expectedPrepend+expectedAppend),
		start: expectedPrepend,
	}
}

// Bytes returns the serialized packet.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len returns the current serialized length.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// Clear resets the buffer, restoring full headroom.
func (b *SerializeBuffer) Clear() {
	b.start = cap(b.buf)
	if b.start > len(b.buf) {
		b.buf = b.buf[:b.start]
	}
	// Keep headroom bounded: reuse the whole capacity as headroom.
	b.buf = b.buf[:b.start]
}

// PrependBytes returns a slice of n fresh bytes at the front of the packet.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("packet: PrependBytes with negative length")
	}
	if b.start < n {
		// Grow at the front.
		extra := n - b.start
		if extra < 64 {
			extra = 64
		}
		nb := make([]byte, len(b.buf)+extra, cap(b.buf)+extra)
		copy(nb[extra:], b.buf)
		b.buf = nb
		b.start += extra
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes returns a slice of n fresh bytes at the back of the packet.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("packet: AppendBytes with negative length")
	}
	old := len(b.buf)
	if old+n > cap(b.buf) {
		nb := make([]byte, old+n, (old+n)*2)
		copy(nb, b.buf)
		b.buf = nb
	} else {
		b.buf = b.buf[:old+n]
	}
	for i := old; i < old+n; i++ {
		b.buf[i] = 0
	}
	return b.buf[old:]
}

// PushPayload appends raw payload bytes.
func (b *SerializeBuffer) PushPayload(p []byte) {
	copy(b.AppendBytes(len(p)), p)
}

// SerializeLayers clears b and serializes the given layers into it, last
// layer first, so each lower layer sees its final payload.
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}

// Payload is a raw byte SerializableLayer, used as the innermost layer.
type Payload []byte

// LayerType implements Layer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// NextLayerType implements Layer.
func (p *Payload) NextLayerType() LayerType { return LayerTypeZero }

// LayerPayload implements Layer.
func (p *Payload) LayerPayload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (p *Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(*p)), *p)
	return nil
}
