package paper

// Golden-trace determinism for the parallel simulation core: the Shards
// knob is execution placement only, so for every experiment that supports
// it the full JSON envelope — params echo, metrics, detail — must be
// byte-identical across shard counts at a fixed seed.

import (
	"encoding/json"
	"testing"

	"flexsfp/internal/exp"
)

// envelopeJSON runs a registered experiment and marshals its envelope.
func envelopeJSON(t *testing.T, name string, ctx exp.RunContext) []byte {
	t.Helper()
	e, ok := exp.Default.Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	raw, err := json.Marshal(res.Envelope())
	if err != nil {
		t.Fatalf("marshal %s envelope: %v", name, err)
	}
	return raw
}

// TestShardsByteIdenticalJSON is the acceptance pin: for every sharded
// netsim experiment, shards ∈ {1, 2, 4, 8} produce byte-identical JSON.
func TestShardsByteIdenticalJSON(t *testing.T) {
	for _, name := range []string{"linerate", "reliability", "overlay_linerate", "overlay_failover"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref := envelopeJSON(t, name, exp.RunContext{Seed: 42, Shards: 1})
			for _, shards := range []int{2, 4, 8} {
				got := envelopeJSON(t, name, exp.RunContext{Seed: 42, Shards: shards})
				if string(got) != string(ref) {
					t.Fatalf("%s: shards=%d JSON differs from shards=1\nshards=1: %s\nshards=%d: %s",
						name, shards, ref, shards, got)
				}
			}
			// A different seed must change the output (the pin is not
			// comparing constants).
			other := envelopeJSON(t, name, exp.RunContext{Seed: 43, Shards: 4})
			if string(other) == string(ref) {
				t.Fatalf("%s: different seeds produced identical JSON", name)
			}
		})
	}
}

// TestShardsNotEchoedInParams guards the invariant that makes the
// byte-identity pin possible at all: Shards must never appear in the
// params echo (it is placement, not a model knob).
func TestShardsNotEchoedInParams(t *testing.T) {
	p, err := json.Marshal(exp.RunContext{Seed: 1, Shards: 8}.Params())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(p, &m); err != nil {
		t.Fatal(err)
	}
	for k := range m {
		if k == "shards" {
			t.Fatal("Shards leaked into the params echo; sharded and unsharded envelopes can no longer be identical")
		}
	}
}

// TestReliabilityShardedMatchesDefault pins the stronger property the
// fleet experiment offers: its sharded execution reproduces the default
// (unsharded) envelope exactly, because the partition seeding is shared.
func TestReliabilityShardedMatchesDefault(t *testing.T) {
	def := envelopeJSON(t, "reliability", exp.RunContext{Seed: 42})
	sh := envelopeJSON(t, "reliability", exp.RunContext{Seed: 42, Shards: 8})
	if string(def) != string(sh) {
		t.Fatalf("sharded fleet envelope differs from default path\ndefault: %s\nsharded: %s", def, sh)
	}
}

// TestLineRateShardedTrials covers the multi-trial path with the knob
// threaded through: trials fan out across workers, each trial's sweep
// runs sharded, and the reduction stays shard-count-invariant.
func TestLineRateShardedTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial sharded sweep is slow")
	}
	a := envelopeJSON(t, "linerate", exp.RunContext{Seed: 7, Trials: 2, Shards: 1})
	b := envelopeJSON(t, "linerate", exp.RunContext{Seed: 7, Trials: 2, Shards: 4})
	if string(a) != string(b) {
		t.Fatalf("multi-trial sharded sweep not shard-count-invariant\nshards=1: %s\nshards=4: %s", a, b)
	}
}
