package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherTypeTransparentEthernet is the GRE protocol value for bridged
// Ethernet frames (Transparent Ethernet Bridging).
const EtherTypeTransparentEthernet EtherType = 0x6558

// GRE is the Generic Routing Encapsulation header (RFC 2784/2890 subset:
// optional checksum, key and sequence number).
type GRE struct {
	ChecksumPresent bool
	KeyPresent      bool
	SeqPresent      bool
	Protocol        EtherType
	Checksum        uint16
	Key             uint32
	Seq             uint32
	payload         []byte
}

// LayerType implements Layer.
func (g *GRE) LayerType() LayerType { return LayerTypeGRE }

// DecodeFromBytes implements Layer.
func (g *GRE) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrTooShort
	}
	flags := binary.BigEndian.Uint16(data[0:2])
	g.ChecksumPresent = flags&0x8000 != 0
	g.KeyPresent = flags&0x2000 != 0
	g.SeqPresent = flags&0x1000 != 0
	if flags&0x0007 != 0 {
		return fmt.Errorf("%w: GRE version %d", ErrBadHeader, flags&0x7)
	}
	g.Protocol = EtherType(binary.BigEndian.Uint16(data[2:4]))
	off := 4
	if g.ChecksumPresent {
		if len(data) < off+4 {
			return ErrTooShort
		}
		g.Checksum = binary.BigEndian.Uint16(data[off:])
		off += 4 // checksum + reserved
	}
	if g.KeyPresent {
		if len(data) < off+4 {
			return ErrTooShort
		}
		g.Key = binary.BigEndian.Uint32(data[off:])
		off += 4
	}
	if g.SeqPresent {
		if len(data) < off+4 {
			return ErrTooShort
		}
		g.Seq = binary.BigEndian.Uint32(data[off:])
		off += 4
	}
	g.payload = data[off:]
	return nil
}

// NextLayerType implements Layer.
func (g *GRE) NextLayerType() LayerType {
	if g.Protocol == EtherTypeTransparentEthernet {
		return LayerTypeEthernet
	}
	return g.Protocol.layerType()
}

// LayerPayload implements Layer.
func (g *GRE) LayerPayload() []byte { return g.payload }

// HeaderLength returns the encoded header size given the flag set.
func (g *GRE) HeaderLength() int {
	n := 4
	if g.ChecksumPresent {
		n += 4
	}
	if g.KeyPresent {
		n += 4
	}
	if g.SeqPresent {
		n += 4
	}
	return n
}

// SerializeTo implements SerializableLayer.
func (g *GRE) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	h := b.PrependBytes(g.HeaderLength())
	var flags uint16
	if g.ChecksumPresent {
		flags |= 0x8000
	}
	if g.KeyPresent {
		flags |= 0x2000
	}
	if g.SeqPresent {
		flags |= 0x1000
	}
	binary.BigEndian.PutUint16(h[0:2], flags)
	binary.BigEndian.PutUint16(h[2:4], uint16(g.Protocol))
	off := 4
	if g.ChecksumPresent {
		binary.BigEndian.PutUint32(h[off:], 0)
		off += 4
	}
	if g.KeyPresent {
		binary.BigEndian.PutUint32(h[off:], g.Key)
		off += 4
	}
	if g.SeqPresent {
		binary.BigEndian.PutUint32(h[off:], g.Seq)
		off += 4
	}
	if g.ChecksumPresent && opts.ComputeChecksums {
		g.Checksum = Checksum(b.Bytes())
		binary.BigEndian.PutUint16(h[4:6], g.Checksum)
	}
	return nil
}

// VXLAN is the VXLAN header (RFC 7348), carried over UDP port 4789.
type VXLAN struct {
	VNI     uint32 // 24 bits
	payload []byte
}

// LayerType implements Layer.
func (v *VXLAN) LayerType() LayerType { return LayerTypeVXLAN }

// DecodeFromBytes implements Layer.
func (v *VXLAN) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTooShort
	}
	if data[0]&0x08 == 0 {
		return fmt.Errorf("%w: VXLAN I flag not set", ErrBadHeader)
	}
	v.VNI = binary.BigEndian.Uint32(data[4:8]) >> 8
	v.payload = data[8:]
	return nil
}

// NextLayerType implements Layer.
func (v *VXLAN) NextLayerType() LayerType { return LayerTypeEthernet }

// LayerPayload implements Layer.
func (v *VXLAN) LayerPayload() []byte { return v.payload }

// SerializeTo implements SerializableLayer.
func (v *VXLAN) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if v.VNI >= 1<<24 {
		return fmt.Errorf("%w: VNI %d out of range", ErrBadHeader, v.VNI)
	}
	h := b.PrependBytes(8)
	h[0] = 0x08
	binary.BigEndian.PutUint32(h[4:8], v.VNI<<8)
	return nil
}

// INT is the FlexSFP in-band telemetry shim, inserted between the Ethernet
// header and the original payload with EtherType 0x88B6. Each on-path
// FlexSFP appends one 16-byte hop record; the final hop or the collector
// pops the shim by restoring OriginalEtherType.
//
// Layout:
//
//	byte 0      version(4) | reserved(4)
//	byte 1      hop count
//	bytes 2-3   original EtherType
//	then hopCount × 16-byte records:
//	  deviceID(4) ingressPort(2) egressPort(2) timestampNs(8)
type INT struct {
	Version           uint8
	OriginalEtherType EtherType
	Hops              []INTHop
	payload           []byte
}

// INTHop is one telemetry record appended by a device on the path.
type INTHop struct {
	DeviceID    uint32
	IngressPort uint16
	EgressPort  uint16
	TimestampNs uint64
}

// INTVersion is the current shim version.
const INTVersion = 1

// INTMaxHops bounds the shim so min-size processing stays line-rate.
const INTMaxHops = 15

// INTHopSize is the encoded size of one hop record.
const INTHopSize = 16

// LayerType implements Layer.
func (n *INT) LayerType() LayerType { return LayerTypeINT }

// DecodeFromBytes implements Layer.
func (n *INT) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrTooShort
	}
	n.Version = data[0] >> 4
	if n.Version != INTVersion {
		return fmt.Errorf("%w: INT version %d", ErrBadHeader, n.Version)
	}
	hops := int(data[1])
	if hops > INTMaxHops {
		return fmt.Errorf("%w: INT hop count %d > %d", ErrBadHeader, hops, INTMaxHops)
	}
	n.OriginalEtherType = EtherType(binary.BigEndian.Uint16(data[2:4]))
	need := 4 + hops*INTHopSize
	if len(data) < need {
		return ErrTooShort
	}
	n.Hops = n.Hops[:0]
	for i := 0; i < hops; i++ {
		r := data[4+i*INTHopSize:]
		n.Hops = append(n.Hops, INTHop{
			DeviceID:    binary.BigEndian.Uint32(r[0:4]),
			IngressPort: binary.BigEndian.Uint16(r[4:6]),
			EgressPort:  binary.BigEndian.Uint16(r[6:8]),
			TimestampNs: binary.BigEndian.Uint64(r[8:16]),
		})
	}
	n.payload = data[need:]
	return nil
}

// NextLayerType implements Layer.
func (n *INT) NextLayerType() LayerType { return n.OriginalEtherType.layerType() }

// LayerPayload implements Layer.
func (n *INT) LayerPayload() []byte { return n.payload }

// HeaderLength returns the encoded shim size.
func (n *INT) HeaderLength() int { return 4 + len(n.Hops)*INTHopSize }

// SerializeTo implements SerializableLayer.
func (n *INT) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if len(n.Hops) > INTMaxHops {
		return fmt.Errorf("%w: INT hop count %d > %d", ErrBadHeader, len(n.Hops), INTMaxHops)
	}
	h := b.PrependBytes(n.HeaderLength())
	h[0] = INTVersion << 4
	h[1] = uint8(len(n.Hops))
	binary.BigEndian.PutUint16(h[2:4], uint16(n.OriginalEtherType))
	for i, hop := range n.Hops {
		r := h[4+i*INTHopSize:]
		binary.BigEndian.PutUint32(r[0:4], hop.DeviceID)
		binary.BigEndian.PutUint16(r[4:6], hop.IngressPort)
		binary.BigEndian.PutUint16(r[6:8], hop.EgressPort)
		binary.BigEndian.PutUint64(r[8:16], hop.TimestampNs)
	}
	return nil
}
