package exp

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Registry holds named experiments in registration order (the canonical
// report order of cmd/flexsfp-bench). It is safe for concurrent use;
// registration normally happens from package inits.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Experiment
	order  []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Experiment{}}
}

// Default is the process-wide registry that experiments self-register
// into. Importing an experiment package (for its side effects) is what
// populates it — cmd/flexsfp-bench imports internal/exp/paper.
var Default = NewRegistry()

// Register adds experiments to the default registry; it panics on an
// empty or duplicate name (both are registration-time programming
// errors, not runtime conditions).
func Register(exps ...Experiment) { Default.Register(exps...) }

// Register adds experiments in order; see the package-level Register.
func (r *Registry) Register(exps ...Experiment) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range exps {
		name := e.Name()
		if name == "" {
			panic("exp: Register with empty experiment name")
		}
		if _, dup := r.byName[name]; dup {
			panic(fmt.Sprintf("exp: duplicate experiment %q", name))
		}
		r.byName[name] = e
		r.order = append(r.order, name)
	}
}

// Lookup returns the experiment registered under name.
func (r *Registry) Lookup(name string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	return e, ok
}

// Names returns all registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Experiments returns all registered experiments in registration order.
func (r *Registry) Experiments() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Experiment, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// isHidden reports whether e opted out of wildcard selection.
func isHidden(e Experiment) bool {
	h, ok := e.(hidden)
	return ok && h.isHidden()
}

// Select resolves a comma-separated list of names and globs ("all",
// "table*", "power,linerate") to experiments in registration order,
// deduplicated. The wildcard selections skip hidden experiments unless
// includeHidden is set; exact names always match. Unknown names and
// globs that match nothing are errors, listing what is available.
func (r *Registry) Select(patterns string, includeHidden bool) ([]Experiment, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	want := map[string]bool{}
	for _, raw := range strings.Split(patterns, ",") {
		pat := strings.TrimSpace(raw)
		if pat == "" {
			continue
		}
		if pat == "all" {
			pat = "*"
		}
		if !strings.ContainsAny(pat, "*?[") {
			// Exact name: must exist, and always matches (even hidden).
			if _, ok := r.byName[pat]; !ok {
				return nil, fmt.Errorf("unknown experiment %q (known: %s)",
					pat, strings.Join(r.order, ", "))
			}
			want[pat] = true
			continue
		}
		matched := false
		for _, name := range r.order {
			ok, err := path.Match(pat, name)
			if err != nil {
				return nil, fmt.Errorf("bad pattern %q: %w", pat, err)
			}
			if ok && (includeHidden || !isHidden(r.byName[name])) {
				want[name] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no experiment (known: %s)",
				pat, strings.Join(r.order, ", "))
		}
	}

	var out []Experiment
	for _, name := range r.order {
		if want[name] {
			out = append(out, r.byName[name])
		}
	}
	return out, nil
}

// List renders the registry as aligned "name  description" lines (the
// -list output), flagging hidden experiments.
func (r *Registry) List() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	width := 0
	for _, name := range r.order {
		if len(name) > width {
			width = len(name)
		}
	}
	var sb strings.Builder
	for _, name := range r.order {
		e := r.byName[name]
		tag := ""
		if isHidden(e) {
			tag = " [opt-in]"
		}
		fmt.Fprintf(&sb, "%-*s  %s%s\n", width, name, e.Describe(), tag)
	}
	return sb.String()
}

// SortedNames returns registered names in lexical order (for stable
// diagnostics independent of registration order).
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
