package paper

// The overlay mesh correctness wall: golden-pinned envelopes for both
// registry experiments (byte-for-byte, any shard count — shard
// invariance itself is pinned in shards_test.go) and the chaos
// invariants of the failover run across seeds.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flexsfp/internal/exp"
)

var updateOverlay = flag.Bool("update-overlay", false, "rewrite the overlay golden envelopes")

// TestOverlayGoldenEnvelopes pins the exact JSON envelope of both
// overlay experiments at the reference seed. Regenerate intentionally
// with: go test ./internal/exp/paper -run TestOverlayGoldenEnvelopes -update-overlay
func TestOverlayGoldenEnvelopes(t *testing.T) {
	for _, name := range []string{"overlay_linerate", "overlay_failover"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := envelopeJSON(t, name, exp.RunContext{Seed: 42, Shards: 1})
			path := filepath.Join("testdata", "golden_"+name+".json")
			if *updateOverlay {
				if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update-overlay): %v", err)
			}
			if string(got)+"\n" != string(want) {
				t.Fatalf("%s envelope drifted from golden\ngot:  %s\nwant: %s", name, got, want)
			}
		})
	}
}

// TestOverlayFailoverInvariants holds the chaos invariants across seeds,
// not just the golden one: no frame delivered to the withdrawn peer
// after convergence, every affected flow re-converged, and the
// unaffected flows kept delivering through the flaps.
func TestOverlayFailoverInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		r, err := overlayFailover(exp.RunContext{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.FramesToWithdrawnPost != 0 {
			t.Errorf("seed %d: %d frames delivered to the withdrawn peer post-convergence",
				seed, r.FramesToWithdrawnPost)
		}
		if r.RecoveredFraction != 1 || r.RecoveredFlows != len(r.Flows) {
			t.Errorf("seed %d: recovered %d/%d affected flows", seed, r.RecoveredFlows, len(r.Flows))
		}
		if r.SurvivingFlowsDelivered != r.SurvivingFlowsTotal {
			t.Errorf("seed %d: only %d/%d surviving flows delivered",
				seed, r.SurvivingFlowsDelivered, r.SurvivingFlowsTotal)
		}
		if r.WithdrawAtUs <= 0 || r.WearAtWithdraw <= 0 {
			t.Errorf("seed %d: withdrawal never happened (%+v)", seed, r)
		}
		for _, f := range r.Flows {
			if f.Recovered && f.LatencyUs < 0 {
				t.Errorf("seed %d: flow from cable-%d has negative re-route latency %f",
					seed, f.Sender, f.LatencyUs)
			}
		}
		if r.FramesDelivered == 0 || r.FramesSent == 0 {
			t.Errorf("seed %d: no traffic flowed (sent %d, delivered %d)",
				seed, r.FramesSent, r.FramesDelivered)
		}
	}
}

// TestOverlayLineRateIdentity checks the sweep against the phy identity:
// every case sustains its quantized offered rate loss-free, and the
// measured inner goodput matches offered × inner bits exactly.
func TestOverlayLineRateIdentity(t *testing.T) {
	r, err := overlayLineRate(exp.RunContext{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if !p.LineRate {
			t.Errorf("%s: dropped %d frames at line rate", p.Label, p.Drops)
		}
		if p.DeliveredPPS != p.OfferedPPS {
			t.Errorf("%s: delivered %.0f pps of %.0f offered", p.Label, p.DeliveredPPS, p.OfferedPPS)
		}
		if p.OfferedPPS > p.TheoryPPS {
			t.Errorf("%s: offered %.0f pps above the line-rate identity %.0f",
				p.Label, p.OfferedPPS, p.TheoryPPS)
		}
		wantGbps := p.DeliveredPPS * float64(p.InnerSize) * 8 / 1e9
		if diff := p.InnerGoodputGbps - wantGbps; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: inner goodput %.6f Gb/s, want %.6f", p.Label, p.InnerGoodputGbps, wantGbps)
		}
	}
	// The envelope must marshal cleanly (it is what the goldens pin).
	if _, err := json.Marshal(r); err != nil {
		t.Fatal(err)
	}
}
