// Command flexsfpd runs a simulated FlexSFP module with its management
// core exposed on a real TCP port — the out-of-band control interface of
// §4.1. Pair it with flexsfp-ctl to read tables and counters, push
// signed bitstreams, and reboot the module, exactly the workflow a fleet
// orchestrator would drive.
//
// Usage:
//
//	flexsfpd -listen 127.0.0.1:9461 -app nat -shell two-way-core \
//	         -config '{"mappings":[{"internal":"10.1.0.1","external":"203.0.113.1"}]}'
//
// The daemon optionally self-generates traffic (-traffic-pps) so that
// counters and DDM readings move.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"flexsfp"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/trafficgen"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9461", "management TCP listen address")
		name       = flag.String("name", "flexsfp-0", "module name")
		deviceID   = flag.Uint("device-id", 1, "fleet device ID")
		appName    = flag.String("app", "nat", "application to boot")
		shellName  = flag.String("shell", "two-way-core", "architecture shell (one-way-filter, two-way-core, active-core)")
		configJSON = flag.String("config", "", "application config JSON (inline)")
		authKey    = flag.String("key", string(flexsfp.DefaultAuthKey), "fleet HMAC key for OTA pushes")
		trafficPPS = flag.Float64("traffic-pps", 0, "self-generated traffic rate (0 = none)")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	shell, err := parseShell(*shellName)
	if err != nil {
		log.Fatal(err)
	}

	sim := flexsfp.NewSim(*seed)
	var cfg any
	if *configJSON != "" {
		cfg = rawJSON(*configJSON)
	}
	mod, design, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
		Name: *name, DeviceID: uint32(*deviceID), Shell: shell,
		App: *appName, Config: cfg, AuthKey: []byte(*authKey),
	})
	if err != nil {
		log.Fatalf("building module: %v", err)
	}
	// Sink both data ports (standalone module on the bench).
	mod.SetTx(core.PortEdge, func([]byte) {})
	mod.SetTx(core.PortOptical, func([]byte) {})

	agent := mgmt.NewAgent(mod)

	// The simulator is single-threaded: serialize TCP handlers with sim
	// execution and drain scheduled events (reboots, flash ops) after
	// each control operation.
	var mu sync.Mutex
	handler := func(req []byte) []byte {
		mu.Lock()
		defer mu.Unlock()
		resp := agent.Handle(req)
		sim.Run()
		return resp
	}

	if *trafficPPS > 0 {
		mu.Lock()
		gen := trafficgen.New(sim, trafficgen.Config{PPS: *trafficPPS, Flows: 64},
			func(b []byte) bool { mod.RxEdge(b); return true })
		gen.Run(uint64(*trafficPPS)) // one second of traffic
		sim.RunFor(netsim.Second)
		gen.Stop()
		sim.Run()
		mu.Unlock()
		log.Printf("pre-ran %.0f pps of traffic for 1s of simulated time", *trafficPPS)
	}

	srv := mgmt.NewServer(handler)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	fmt.Printf("flexsfpd: module %q (device %d) app=%s shell=%s device=%s\n",
		*name, *deviceID, *appName, shell, design.Target.Name)
	fmt.Printf("flexsfpd: design %d LUT4 / %d FF / %d uSRAM / %d LSRAM (%s-limited, %.1f%% peak)\n",
		design.Total.LUT4, design.Total.FF, design.Total.USRAM, design.Total.LSRAM,
		design.Fit.Limiting, design.Fit.Utilization.Max())
	fmt.Printf("flexsfpd: management listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("flexsfpd: shutting down")
}

func parseShell(s string) (hls.Shell, error) {
	switch s {
	case "one-way-filter":
		return hls.OneWayFilter, nil
	case "two-way-core":
		return hls.TwoWayCore, nil
	case "active-core":
		return hls.ActiveCore, nil
	default:
		return 0, fmt.Errorf("unknown shell %q", s)
	}
}

// rawJSON passes inline JSON through BuildModule's marshaling untouched.
type rawJSON string

// MarshalJSON implements json.Marshaler.
func (r rawJSON) MarshalJSON() ([]byte, error) { return []byte(r), nil }
