GO ?= go

# Packages with real concurrency (fleet fan-out, TCP serving, parallel
# trial runner, fault-injected transports): the race pass focuses here so
# `make check` stays fast; `make race-all` still sweeps everything.
RACE_PKGS = ./internal/mgmt ./internal/netsim ./internal/runner ./internal/faults

.PHONY: all build test race race-all bench vet fmt check examples reports clean

all: build test

# Everything CI cares about: compile, unit tests, race detector, vet.
check: build test race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Run every example scenario once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/legacy-retrofit
	$(GO) run ./examples/telemetry
	$(GO) run ./examples/loadbalancer
	$(GO) run ./examples/ota-update
	$(GO) run ./examples/xdp-offload

# Regenerate the paper-vs-model reports.
reports:
	$(GO) run ./cmd/flexsfp-bench

clean:
	$(GO) clean ./...
