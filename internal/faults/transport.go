package faults

import (
	"flexsfp/internal/mgmt"
)

// Transport wraps an inner mgmt.Transport with transport-level faults:
// connection drops (where the request may or may not have reached the
// agent before the connection died — the case that forces idempotent,
// resumable clients), stalls that surface as deadline errors, and
// single-byte response corruption.
type Transport struct {
	in    *Injector
	inner mgmt.Transport
}

// WrapTransport layers the injector's transport faults over inner.
func (in *Injector) WrapTransport(inner mgmt.Transport) *Transport {
	return &Transport{in: in, inner: inner}
}

// Do implements mgmt.Transport.
func (t *Transport) Do(req []byte) ([]byte, error) {
	in := t.in
	if in.Roll(in.rates.ConnDrop) {
		in.stats.ConnDrops++
		// Half the time the request landed and only the response was
		// lost — the ambiguous failure a robust client must tolerate.
		if in.rng.Float64() < 0.5 {
			t.inner.Do(req)
		}
		return nil, ErrConnDropped
	}
	if in.Roll(in.rates.Stall) {
		in.stats.Stalls++
		return nil, ErrStalled
	}
	resp, err := t.inner.Do(req)
	if err != nil {
		return nil, err
	}
	if len(resp) > 0 && in.Roll(in.rates.Corrupt) {
		in.stats.Corruptions++
		resp = append([]byte(nil), resp...)
		resp[in.rng.Intn(len(resp))] ^= 1 << uint(in.rng.Intn(8))
	}
	return resp, nil
}
