package paper

// Cross-layer fault-injection tests: the mgmt OTA path, the flash device,
// and the core boot FSM exercised together under injected failures.

import (
	"errors"
	"testing"

	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/faults"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
)

// provisionedModule builds a module with golden in slot 0 and v1 in slot 1,
// running slot 1, plus its agent.
func provisionedModule(t *testing.T, img *faultImages, sim *netsim.Simulator) (*core.Module, *mgmt.Agent) {
	t.Helper()
	mod := core.NewModule(core.Config{
		Sim: sim, Name: "sfp-0", DeviceID: 1,
		Shell: hls.TwoWayCore, Registry: img.registry, AuthKey: build.DefaultAuthKey,
	})
	if _, err := mod.Install(0, img.golden); err != nil {
		t.Fatal(err)
	}
	if _, err := mod.Install(1, img.v1); err != nil {
		t.Fatal(err)
	}
	if err := mod.BootSync(1); err != nil {
		t.Fatal(err)
	}
	return mod, mgmt.NewAgent(mod)
}

// TestPowerCutDuringOTAFallsBackToGolden drives the full stack: an OTA push
// over mgmt commits to flash, power is cut while the new image (and the
// previous slot) are being programmed, and at the next boot the core FSM
// detects the corruption and recovers onto the golden image.
func TestPowerCutDuringOTAFallsBackToGolden(t *testing.T) {
	img, err := buildFaultImages()
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(1)
	mod, agent := provisionedModule(t, img, sim)
	inj := faults.New(1, faults.Rates{})

	c := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		resp := agent.Handle(req)
		if msg, derr := mgmt.DecodeMessage(req); derr == nil && msg.Type == mgmt.MsgXferCommit {
			// Power cut right after the commit wrote flash: the freshly
			// programmed target slot and the previous slot both end up
			// partially programmed, so only golden can boot.
			if err := inj.PowerCut(mod.Flash, 2, 1); err != nil {
				t.Fatal(err)
			}
			if err := inj.PowerCut(mod.Flash, 1, 1); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run()
		return resp, nil
	}))

	if err := c.PushBitstream(img.signedV2, 2, true); err != nil {
		t.Fatalf("push: %v", err)
	}
	if !mod.Running() {
		t.Fatal("module dead after power cut during OTA")
	}
	if mod.ActiveSlot() != 0 {
		t.Errorf("active slot = %d, want golden fallback to 0", mod.ActiveSlot())
	}
	st := mod.Stats()
	if st.BootFailures == 0 || st.GoldenFallbacks != 1 {
		t.Errorf("stats = %+v, want boot failure and one golden fallback", st)
	}
	// The recovery is visible end-to-end through the mgmt stats channel.
	rst, err := c.ReadStats()
	if err != nil {
		t.Fatal(err)
	}
	if rst.GoldenFallbacks != 1 || rst.ActiveSlot != 0 || !rst.Running {
		t.Errorf("remote stats = %+v", rst)
	}
}

// TestPowerCutSparingPrevSlotRestoresPrevious is the softer variant: only
// the target slot is corrupted, so the FSM restores the previously running
// design instead of falling all the way back to golden.
func TestPowerCutSparingPrevSlotRestoresPrevious(t *testing.T) {
	img, err := buildFaultImages()
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(1)
	mod, agent := provisionedModule(t, img, sim)
	inj := faults.New(1, faults.Rates{})

	c := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		resp := agent.Handle(req)
		if msg, derr := mgmt.DecodeMessage(req); derr == nil && msg.Type == mgmt.MsgXferCommit {
			if err := inj.PowerCut(mod.Flash, 2, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run()
		return resp, nil
	}))

	if err := c.PushBitstream(img.signedV2, 2, true); err != nil {
		t.Fatalf("push: %v", err)
	}
	if !mod.Running() || mod.ActiveSlot() != 1 {
		t.Errorf("running=%v slot=%d, want previous slot 1", mod.Running(), mod.ActiveSlot())
	}
	if st := mod.Stats(); st.BootFailures != 1 || st.GoldenFallbacks != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTamperedPushLeavesPreviousSlotRunning checks OTA error-path
// consistency across tamper modes: a rejected push must leave the module
// running its previous design with the target slot untouched.
func TestTamperedPushLeavesPreviousSlotRunning(t *testing.T) {
	img, err := buildFaultImages()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mode faults.TamperMode
	}{
		{"wrong-key", faults.TamperWrongKey},
		{"crc", faults.TamperCRC},
		{"truncate", faults.TamperTruncate},
		{"stale", faults.TamperStale},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim := netsim.New(1)
			mod, agent := provisionedModule(t, img, sim)
			inj := faults.New(1, faults.Rates{})
			c := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
				resp := agent.Handle(req)
				sim.Run()
				return resp, nil
			}))

			bad := inj.TamperSigned(img.signedV2, build.DefaultAuthKey, tc.mode)
			err := c.PushBitstream(bad, 2, true)
			var pe *mgmt.PushError
			if !errors.As(err, &pe) || pe.Stage != "commit" {
				t.Fatalf("err = %v, want commit-stage PushError", err)
			}
			var re *mgmt.RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("cause = %v, want RemoteError", err)
			}
			if !mod.Running() || mod.ActiveSlot() != 1 {
				t.Errorf("running=%v slot=%d, want previous design untouched", mod.Running(), mod.ActiveSlot())
			}
			slots, err := c.Slots()
			if err != nil {
				t.Fatal(err)
			}
			if slots[2] != "" {
				t.Errorf("slot 2 = %q after rejected push, want empty", slots[2])
			}
		})
	}
}
