// Command flexsfp-ctl is the fleet-side management client: it speaks the
// mgmt protocol to a module's TCP management port (flexsfpd) to inspect
// state, program tables, dump live telemetry, and push signed bitstreams
// over the network — the §4.2 reprogramming workflow.
//
// Usage:
//
//	flexsfp-ctl -addr 127.0.0.1:9461 ping
//	flexsfp-ctl stats
//	flexsfp-ctl metrics
//	flexsfp-ctl trace -max 32
//	flexsfp-ctl ddm
//	flexsfp-ctl slots
//	flexsfp-ctl table-add -table nat -key 0a010001 -value cb007101
//	flexsfp-ctl table-dump -table nat
//	flexsfp-ctl counter -bank stats -index 0
//	flexsfp-ctl compile -app acl -config '{"default_deny":true}' -out acl.fsfp -key <fleet-key>
//	flexsfp-ctl push -file acl.fsfp -slot 2 -reboot
//	flexsfp-ctl reboot -slot 1
package main

import (
	"encoding/hex"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"flag"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/bitstream"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flexsfp-ctl: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// ctlError is the sentinel check() panics with; run recovers it into a
// plain error so the command logic can stay linear.
type ctlError struct{ err error }

// run executes one ctl invocation. Tests drive it in-process with a
// captured writer; main wires it to os.Args and os.Stdout.
func run(args []string, out io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ce, ok := r.(ctlError)
			if !ok {
				panic(r)
			}
			err = ce.err
		}
	}()

	top := flag.NewFlagSet("flexsfp-ctl", flag.ContinueOnError)
	addr := top.String("addr", "127.0.0.1:9461", "module management address")
	if err := top.Parse(args); err != nil {
		return err
	}
	rest := top.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand (ping, stats, metrics, trace, ddm, eeprom, slots, table-add, table-del, table-get, table-dump, counter, meter-set, reg-read, reg-write, compile, push, reboot)")
	}
	cmd, rest := rest[0], rest[1:]

	// compile is purely local.
	if cmd == "compile" {
		compileCmd(rest, out)
		return nil
	}
	// fleet-* commands fan out over many modules.
	if strings.HasPrefix(cmd, "fleet-") {
		return fleetCmd(cmd, rest, out)
	}

	tr, err := mgmt.Dial(*addr)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", *addr, err)
	}
	defer tr.Close()
	c := mgmt.NewClient(tr)

	switch cmd {
	case "ping":
		info, err := c.Ping()
		check(err)
		fmt.Fprintf(out, "module %q device=%d app=%s running=%v\n",
			info.Name, info.DeviceID, info.AppName, info.Running)
	case "stats":
		st, err := c.ReadStats()
		check(err)
		fmt.Fprintf(out, "app=%s slot=%d running=%v\n", st.AppName, st.ActiveSlot, st.Running)
		fmt.Fprintf(out, "rx edge/optical/ctrl: %d/%d/%d  tx: %d/%d/%d\n",
			st.Rx[0], st.Rx[1], st.Rx[2], st.Tx[0], st.Tx[1], st.Tx[2])
		fmt.Fprintf(out, "engine: in=%d pass=%d drop=%d tx=%d redirect=%d tocpu=%d qdrop=%d\n",
			st.Engine.In, st.Engine.Pass, st.Engine.Drop, st.Engine.Tx,
			st.Engine.Redirect, st.Engine.ToCPU, st.Engine.QueueDrop)
		fmt.Fprintf(out, "control frames=%d reboot drops=%d boots=%d auth failures=%d\n",
			st.ControlFrames, st.RebootDrops, st.Boots, st.AuthFailures)
	case "metrics":
		snap, err := c.Telemetry()
		check(err)
		b, err := snap.MarshalJSONIndent()
		check(err)
		out.Write(b)
		fmt.Fprintln(out)
	case "trace":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		max := fs.Int("max", 0, "cap on most-recent events (0 = all buffered)")
		parse(fs, rest)
		evs, err := c.Traces(*max)
		check(err)
		for _, e := range evs {
			fmt.Fprintf(out, "t=%dns frame=%d %s len=%d aux=%d\n",
				e.TimeNs, e.ID, e.Stage, e.Len, e.Aux)
		}
		fmt.Fprintf(out, "%d events\n", len(evs))
	case "ddm":
		d, err := c.ReadDDM()
		check(err)
		fmt.Fprintf(out, "temp=%.1fC vcc=%.2fV txbias=%.1fmA txpower=%.1fdBm rxpower=%.1fdBm\n",
			d.TemperatureC, d.VccVolts, d.TxBiasMA, d.TxPowerDBm, d.RxPowerDBm)
	case "eeprom":
		id, _, err := c.ReadEEPROM()
		check(err)
		fmt.Fprintf(out, "vendor=%q pn=%q rev=%q sn=%q date=%s 10GBASE-SR=%v ddm=%v\n",
			id.VendorName, id.VendorPN, id.VendorRev, id.VendorSN,
			id.DateCode, id.Is10GBaseSR, id.DDMSupported)
	case "slots":
		slots, err := c.Slots()
		check(err)
		for i, s := range slots {
			if s == "" {
				s = "(empty)"
			}
			fmt.Fprintf(out, "slot %d: %s\n", i, s)
		}
	case "table-add":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		key := fs.String("key", "", "hex key")
		value := fs.String("value", "", "hex value")
		parse(fs, rest)
		check(c.TableAdd(*table, mustHex(*key), mustHex(*value)))
		fmt.Fprintln(out, "ok")
	case "table-del":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		key := fs.String("key", "", "hex key")
		parse(fs, rest)
		check(c.TableDel(*table, mustHex(*key)))
		fmt.Fprintln(out, "ok")
	case "table-get":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		key := fs.String("key", "", "hex key")
		parse(fs, rest)
		v, err := c.TableGet(*table, mustHex(*key))
		check(err)
		fmt.Fprintf(out, "%x\n", v)
	case "table-dump":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		parse(fs, rest)
		entries, err := c.TableDump(*table)
		check(err)
		for _, e := range entries {
			fmt.Fprintf(out, "%x -> %x (hits %d)\n", e.Key, e.Value, e.Hits)
		}
		fmt.Fprintf(out, "%d entries\n", len(entries))
	case "counter":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		bank := fs.String("bank", "", "counter bank")
		index := fs.Int("index", 0, "counter index")
		parse(fs, rest)
		pkts, bytes, err := c.CounterRead(*bank, *index)
		check(err)
		fmt.Fprintf(out, "packets=%d bytes=%d\n", pkts, bytes)
	case "meter-set":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		bank := fs.String("bank", "", "meter bank")
		index := fs.Int("index", 0, "meter index")
		rate := fs.Float64("rate", 0, "rate (bits/sec)")
		burst := fs.Float64("burst", 0, "burst (bits)")
		parse(fs, rest)
		check(c.MeterSet(*bank, *index, *rate, *burst))
		fmt.Fprintln(out, "ok")
	case "reg-read":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "", "register name")
		parse(fs, rest)
		v, err := c.RegRead(*name)
		check(err)
		fmt.Fprintln(out, v)
	case "reg-write":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "", "register name")
		value := fs.Uint64("value", 0, "value")
		parse(fs, rest)
		check(c.RegWrite(*name, *value))
		fmt.Fprintln(out, "ok")
	case "push":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		file := fs.String("file", "", "signed bitstream file")
		slot := fs.Int("slot", 2, "flash slot")
		reboot := fs.Bool("reboot", false, "reboot into the new image")
		parse(fs, rest)
		blob, err := os.ReadFile(*file)
		check(err)
		check(c.PushBitstream(blob, *slot, *reboot))
		fmt.Fprintf(out, "pushed %d bytes to slot %d (reboot=%v)\n", len(blob), *slot, *reboot)
	case "reboot":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		slot := fs.Int("slot", 0, "flash slot")
		parse(fs, rest)
		check(c.Reboot(*slot))
		fmt.Fprintln(out, "reboot requested")
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}

// compileCmd builds and signs a bitstream locally.
func compileCmd(args []string, out io.Writer) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	app := fs.String("app", "", "application name")
	config := fs.String("config", "", "application config JSON")
	outFile := fs.String("out", "app.fsfp", "output file")
	key := fs.String("key", string(flexsfp.DefaultAuthKey), "fleet HMAC key")
	clock := fs.Int64("clock-hz", flexsfp.BaseClockHz, "PPE clock")
	width := fs.Int("width", flexsfp.BaseDatapathBits, "datapath bits")
	golden := fs.Bool("golden", false, "mark as golden image")
	parse(fs, args)

	registry := apps.NewRegistry()
	instance, err := registry.New(*app)
	check(err)
	design, err := hls.Compile(instance.Program(), hls.Options{
		ClockHz: *clock, DatapathBits: *width,
		Config: []byte(*config), Golden: *golden,
	})
	check(err)
	encoded, err := design.Bitstream.Encode()
	check(err)
	signed := bitstream.Sign(encoded, []byte(*key))
	check(os.WriteFile(*outFile, signed, 0o644))
	fmt.Fprintf(out, "compiled %s: %d LUT4 / %d FF / %d uSRAM / %d LSRAM; wrote %d signed bytes to %s\n",
		*app, design.Total.LUT4, design.Total.FF, design.Total.USRAM, design.Total.LSRAM,
		len(signed), *outFile)
}

// fleetCmd fans an operation out over a comma-separated address list
// (§4.1 fleet orchestration).
func fleetCmd(cmd string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated module management addresses")
	file := fs.String("file", "", "signed bitstream file (fleet-push)")
	slot := fs.Int("slot", 2, "flash slot (fleet-push)")
	reboot := fs.Bool("reboot", false, "reboot after push (fleet-push)")
	parse(fs, args)
	if *addrs == "" {
		return fmt.Errorf("fleet commands need -addrs host:port,host:port,...")
	}
	fleet := mgmt.NewFleet()
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		tr, err := mgmt.Dial(addr)
		check(err)
		defer tr.Close()
		fleet.Add(addr, tr)
	}
	switch cmd {
	case "fleet-ping":
		infos, outcomes := fleet.PingAll()
		for _, name := range fleet.Names() {
			if info, ok := infos[name]; ok {
				fmt.Fprintf(out, "%s: module %q device=%d app=%s running=%v\n",
					name, info.Name, info.DeviceID, info.AppName, info.Running)
			}
		}
		fmt.Fprintln(out, mgmt.Summary(outcomes))
	case "fleet-stats":
		stats, outcomes := fleet.StatsAll()
		for _, name := range fleet.Names() {
			if s, ok := stats[name]; ok {
				fmt.Fprintf(out, "%s: app=%s in=%d pass=%d drop=%d qdrop=%d\n",
					name, s.AppName, s.Engine.In, s.Engine.Pass, s.Engine.Drop, s.Engine.QueueDrop)
			}
		}
		fmt.Fprintln(out, mgmt.Summary(outcomes))
	case "fleet-push":
		blob, err := os.ReadFile(*file)
		check(err)
		outcomes := fleet.PushAll(blob, *slot, *reboot)
		for _, o := range mgmt.Failures(outcomes) {
			fmt.Fprintf(out, "%s: FAILED: %v\n", o.Name, o.Err)
		}
		fmt.Fprintln(out, mgmt.Summary(outcomes))
	default:
		return fmt.Errorf("unknown fleet subcommand %q (fleet-ping, fleet-stats, fleet-push)", cmd)
	}
	return nil
}

func parse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		check(err)
	}
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		check(fmt.Errorf("bad hex %q: %w", s, err))
	}
	return b
}

// check aborts the current run with err; run's recover turns it into the
// returned error.
func check(err error) {
	if err != nil {
		panic(ctlError{err})
	}
}
