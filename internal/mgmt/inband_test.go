package mgmt

import (
	"testing"

	"flexsfp/internal/core"
	"flexsfp/internal/packet"
)

var stationMAC = packet.MustMAC("02:ee:00:00:00:01")

func TestInBandTransportPing(t *testing.T) {
	m, _, _ := newAgentModule(t)
	tr := NewInBandTransport(m, core.PortEdge, stationMAC, nil)
	c := NewClient(tr)
	info, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "sfp-7" || !info.Running {
		t.Errorf("info = %+v", info)
	}
}

func TestInBandTransportTeesDataFrames(t *testing.T) {
	m, _, sim := newAgentModule(t)
	var dataFrames int
	tr := NewInBandTransport(m, core.PortEdge, stationMAC, func(b []byte) { dataFrames++ })
	c := NewClient(tr)

	// Data through the PPE toward the edge still reaches dataTx.
	m.RxOptical(dataFrameB())
	sim.Run()
	if dataFrames != 1 {
		t.Errorf("data frames teed = %d", dataFrames)
	}
	// Control still works alongside.
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if dataFrames != 1 {
		t.Error("control response leaked into the data path")
	}
}

func TestInBandTransportTableOps(t *testing.T) {
	m, _, _ := newAgentModule(t)
	tr := NewInBandTransport(m, core.PortEdge, stationMAC, nil)
	c := NewClient(tr)
	if err := c.TableAdd("nat", []byte{9, 9, 9, 9}, []byte{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	tab, _ := m.App().State().Table("nat")
	if tab.Len() != 1 {
		t.Error("in-band table add did not land")
	}
}

func TestInBandTransportOnOpticalPort(t *testing.T) {
	// The orchestrator may sit upstream, reaching the module over the
	// fiber side.
	m, _, _ := newAgentModule(t)
	tr := NewInBandTransport(m, core.PortOptical, stationMAC, nil)
	if _, err := NewClient(tr).Ping(); err != nil {
		t.Fatal(err)
	}
}
