package flexsfp

import (
	"fmt"
	"math/rand"

	"flexsfp/internal/apps"
	"flexsfp/internal/cost"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/power"
	"flexsfp/internal/runner"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// Table 1: resource usage for the NAT case study (§5.1).

// Table1Row is one component row.
type Table1Row struct {
	Component string
	Res       fpga.Resources
}

// Table1Result reproduces the paper's Table 1.
type Table1Result struct {
	Rows  []Table1Row
	Used  fpga.Resources
	Avail fpga.Resources
	Util  fpga.Utilization
	// Paper values for comparison.
	PaperUsed fpga.Resources
}

// Table1 synthesizes the NAT design and reports the per-component
// breakdown against the MPF200T.
func Table1() Table1Result {
	var res Table1Result
	for _, row := range hls.ShellBreakdown(hls.OneWayFilter) {
		res.Rows = append(res.Rows, Table1Row{row.Name, row.Resources})
	}
	natRes := hls.EstimateProgram(apps.NewNAT().Program(), BaseDatapathBits)
	res.Rows = append(res.Rows, Table1Row{"NAT app", natRes})
	for _, r := range res.Rows {
		res.Used = res.Used.Add(r.Res)
	}
	res.Avail = fpga.MPF200T.Capacity
	res.Util = fpga.MPF200T.Utilization(res.Used)
	res.PaperUsed = fpga.Resources{LUT4: 31455, FF: 25518, USRAM: 278, LSRAM: 164}
	return res
}

// Render formats the result like the paper's table.
func (r Table1Result) Render() string {
	t := newTable("", "4LUT", "FF", "uSRAM", "LSRAM")
	for _, row := range r.Rows {
		t.add(row.Component, row.Res.LUT4, row.Res.FF, row.Res.USRAM, row.Res.LSRAM)
	}
	t.add("Used", r.Used.LUT4, r.Used.FF, r.Used.USRAM, r.Used.LSRAM)
	t.add("Avail.", r.Avail.LUT4, r.Avail.FF, r.Avail.USRAM, r.Avail.LSRAM)
	// Truncate percentages the way the paper prints them (15%, 26%).
	t.add("Perc.",
		fmt.Sprintf("%d%%", int(r.Util.LUT4)), fmt.Sprintf("%d%%", int(r.Util.FF)),
		fmt.Sprintf("%d%%", int(r.Util.USRAM)), fmt.Sprintf("%d%%", int(r.Util.LSRAM)))
	t.add("Paper Used", r.PaperUsed.LUT4, r.PaperUsed.FF, r.PaperUsed.USRAM, r.PaperUsed.LSRAM)
	return "Table 1: NAT case study resource usage (MPF200T)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Table 2: literature designs normalized to LE vs the MPF200T (§5.1).

// Table2Row is one design's normalized footprint and fit verdict.
type Table2Row struct {
	Name      string
	LogicLE   int
	BRAMKbits int
	Fits      bool
	Limiting  string
}

// Table2Result reproduces the paper's Table 2.
type Table2Result struct {
	Rows   []Table2Row
	Device fpga.Device
}

// Table2 normalizes the cited designs and checks them against the
// FlexSFP's device. Rows are independent, so they are evaluated across
// workers; the merge is by design index, so the table order never
// depends on scheduling.
func Table2() Table2Result {
	designs := fpga.LiteratureDesigns()
	rows, _ := runner.Map(len(designs), runner.Options{},
		func(i int, _ *rand.Rand) (Table2Row, error) {
			d := designs[i]
			fits, limiting := d.FitsDevice(fpga.MPF200T)
			return Table2Row{
				Name:      d.Name,
				LogicLE:   d.NormalizedLE(),
				BRAMKbits: d.BRAMKbits,
				Fits:      fits,
				Limiting:  limiting,
			}, nil
		})
	return Table2Result{Rows: rows, Device: fpga.MPF200T}
}

// Render formats the result like the paper's table plus fit verdicts.
func (r Table2Result) Render() string {
	t := newTable("Use case", "Logic (LE)", "BRAM (kbit)", "Fits MPF200T?")
	for _, row := range r.Rows {
		verdict := "yes"
		if !row.Fits {
			verdict = "no (" + row.Limiting + ")"
		}
		t.add(row.Name, fmt.Sprintf("%dk", (row.LogicLE+500)/1000), row.BRAMKbits, verdict)
	}
	t.add("FlexSFP (MPF200T)", fmt.Sprintf("%dk", r.Device.LogicElements/1000), r.Device.BRAMKbits, "-")
	return "Table 2: FPGA resource usage of key designs, normalized to 4-input LE\n" + t.String()
}

// ---------------------------------------------------------------------------
// Table 3: cost/power per 10 Gb/s slice (§5.2).

// Table3Result reproduces the paper's Table 3.
type Table3Result struct {
	Rows   []cost.Solution
	Claims cost.Claims
	// BOM breakdown behind the FlexSFP row.
	BOM             []cost.BOMItem
	BOMLow, BOMHigh float64
}

// Table3 evaluates the ideal-scaling comparison.
func Table3() Table3Result {
	rows := cost.Table3()
	low, high := cost.BOMTotal(cost.FlexSFPBOM())
	return Table3Result{
		Rows:   rows,
		Claims: cost.EvaluateClaims(rows),
		BOM:    cost.FlexSFPBOM(),
		BOMLow: low, BOMHigh: high,
	}
}

// Render formats raw and scaled columns with paper values alongside.
func (r Table3Result) Render() string {
	t := newTable("Solution", "Raw $", "Raw W", "$/10G (model)", "W/10G (model)", "$/10G (paper)", "W/10G (paper)")
	for _, s := range r.Rows {
		cl, ch := s.Per10GCost()
		t.add(s.Name,
			fmt.Sprintf("%.0f-%.0f", s.RawCostLowUSD, s.RawCostHighUSD),
			fmt.Sprintf("%.1f", s.RawPowerW),
			fmt.Sprintf("%.0f-%.0f", cl, ch),
			fmt.Sprintf("%.1f", s.Per10GPower()),
			fmt.Sprintf("%.0f-%.0f", s.PubPer10GCostLow, s.PubPer10GCostHigh),
			fmt.Sprintf("%.1f", s.PubPer10GPowerW))
	}
	out := "Table 3: raw and ideal-scaled cost/power per 10 Gb/s\n" + t.String()
	out += fmt.Sprintf("FlexSFP BOM: $%.0f-%.0f prototype; CAPEX saving vs DPU %.0f%%; power ratio vs best SmartNIC %.1fx\n",
		r.BOMLow, r.BOMHigh, r.Claims.CAPEXSavingVsDPU*100, r.Claims.PowerRatioVsBest)
	return out
}

// ---------------------------------------------------------------------------
// §5 power measurement.

// PowerResult reproduces the Thunderbolt-NIC testbed numbers.
type PowerResult struct {
	Report power.Report
	// FlexUtilization is the PPE utilization reached under the stress
	// test (drives dynamic power).
	FlexUtilization float64
	// Paper values.
	PaperNICOnly, PaperWithSFP, PaperWithFlex float64
}

// PowerExperiment runs the three-step §5 procedure: baseline, standard
// SFP under line-rate stress, FlexSFP (NAT, Two-Way-Core) under
// bidirectional line-rate stress.
func PowerExperiment(seed int64) (PowerResult, error) {
	sim := NewSim(seed)

	mod, _, err := BuildModule(sim, ModuleSpec{
		Name: "power-dut", DeviceID: 1, Shell: TwoWayCore, App: "nat",
	})
	if err != nil {
		return PowerResult{}, err
	}
	// Recycle frames at the Tx sinks: the generator draws its buffers
	// from the pool, so the steady state allocates nothing per frame.
	mod.SetTx(0, trafficgen.PutBuffer)
	mod.SetTx(1, trafficgen.PutBuffer)

	// Bidirectional line-rate minimum-size stress for 1 ms of sim time.
	pps := 14_880_952.0
	gen1 := trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
		mod.RxEdge(b)
		return true
	})
	gen2 := trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
		mod.RxOptical(b)
		return true
	})
	gen1.Run(0)
	gen2.Run(0)
	sim.RunFor(netsim.Millisecond)
	gen1.Stop()
	gen2.Stop()
	sim.RunFor(10 * netsim.Microsecond)

	flexW := mod.PowerW()
	util := mod.Engine().Utilization()

	tb := power.NewTestbed(sim)
	// A standard SFP draws its constant figure under the same stress.
	rep := tb.Run(0.893, flexW, 500)
	return PowerResult{
		Report:          rep,
		FlexUtilization: util,
		PaperNICOnly:    3.800, PaperWithSFP: 4.693, PaperWithFlex: 5.320,
	}, nil
}

// Render formats the measurement report.
func (r PowerResult) Render() string {
	t := newTable("Step", "Model (W)", "Paper (W)")
	t.add("NIC only", fmt.Sprintf("%.3f", r.Report.NICOnly.MeanW), fmt.Sprintf("%.3f", r.PaperNICOnly))
	t.add("NIC + SFP (stress)", fmt.Sprintf("%.3f", r.Report.WithSFP.MeanW), fmt.Sprintf("%.3f", r.PaperWithSFP))
	t.add("NIC + FlexSFP (stress)", fmt.Sprintf("%.3f", r.Report.WithFlex.MeanW), fmt.Sprintf("%.3f", r.PaperWithFlex))
	out := "Power measurement (§5): Thunderbolt NIC testbed\n" + t.String()
	out += fmt.Sprintf("Deltas: SFP %.3f W (~.9), FlexSFP %.3f W (~1.5), increase over SFP %.3f W (~.7); PPE utilization %.2f\n",
		r.Report.DeltaSFP, r.Report.DeltaFlex, r.Report.FlexOverSFP, r.FlexUtilization)
	return out
}

// ---------------------------------------------------------------------------
// §5.1 line-rate verification.

// LineRatePoint is one frame-size measurement.
type LineRatePoint struct {
	Label        string
	FrameSize    int // 0 for IMIX
	OfferedPPS   float64
	DeliveredPPS float64
	GoodputGbps  float64
	Drops        uint64
	LineRate     bool // delivered ≥ 99.5% of offered
}

// LineRateResult is the full sweep.
type LineRateResult struct {
	Points []LineRatePoint
}

// lineRateCase is one frame-size configuration of the sweep.
type lineRateCase struct {
	label string
	sizes []trafficgen.IMIXEntry
	size  int
}

func lineRateCases() []lineRateCase {
	return []lineRateCase{
		{"64B", []trafficgen.IMIXEntry{{Size: 64, Weight: 1}}, 64},
		{"128B", []trafficgen.IMIXEntry{{Size: 128, Weight: 1}}, 128},
		{"256B", []trafficgen.IMIXEntry{{Size: 256, Weight: 1}}, 256},
		{"512B", []trafficgen.IMIXEntry{{Size: 512, Weight: 1}}, 512},
		{"1024B", []trafficgen.IMIXEntry{{Size: 1024, Weight: 1}}, 1024},
		{"1518B", []trafficgen.IMIXEntry{{Size: 1518, Weight: 1}}, 1518},
		{"IMIX", trafficgen.SimpleIMIX(), 0},
	}
}

// runLineRateCase measures one frame-size point on its own simulator.
func runLineRateCase(seed int64, tc lineRateCase) (LineRatePoint, error) {
	sim := NewSim(seed)
	mod, _, err := BuildModule(sim, ModuleSpec{
		Name: "lr-dut", DeviceID: 1, Shell: TwoWayCore, App: "nat",
		Config: apps.NATConfig{Mappings: []apps.NATMapping{
			{Internal: "10.1.0.1", External: "203.0.113.1"},
		}},
	})
	if err != nil {
		return LineRatePoint{}, err
	}
	meter := netsim.NewRateMeter(sim)
	mod.SetTx(1, func(b []byte) {
		meter.Observe(len(b))
		trafficgen.PutBuffer(b)
	})
	mod.SetTx(0, trafficgen.PutBuffer)

	// Offered rate: line rate for the mean frame size of the mix.
	mean := 64.0
	if tc.size > 0 {
		mean = float64(tc.size)
	} else {
		total, weight := 0, 0
		for _, e := range tc.sizes {
			total += e.Size * e.Weight
			weight += e.Weight
		}
		mean = float64(total) / float64(weight)
	}
	pps := 10e9 / ((mean + 20) * 8)
	// Traffic reaches the module through an actual 10G wire: the
	// link's serialization enforces the physical per-frame spacing a
	// real tester is bound by (a mean-paced generator would otherwise
	// burst mixed-size traffic above wire rate).
	wire := netsim.NewLink(sim, 10_000_000_000, 0, mod.RxEdge)
	gen := trafficgen.New(sim, trafficgen.Config{
		PPS: pps, Sizes: tc.sizes, Flows: 32,
	}, func(b []byte) bool {
		return wire.Send(b)
	})
	gen.Run(0)
	sim.RunFor(netsim.Millisecond)
	gen.Stop()
	sim.RunFor(100 * netsim.Microsecond)

	deliveredPPS := float64(meter.Frames) / netsim.Duration(netsim.Millisecond).Seconds()
	return LineRatePoint{
		Label:        tc.label,
		FrameSize:    tc.size,
		OfferedPPS:   float64(gen.Sent) / netsim.Duration(netsim.Millisecond).Seconds(),
		DeliveredPPS: deliveredPPS,
		GoodputGbps:  float64(meter.Bytes) * 8 / netsim.Duration(netsim.Millisecond).Seconds() / 1e9,
		Drops:        mod.Engine().Stats().QueueDrop,
		LineRate:     mod.Engine().Stats().QueueDrop == 0,
	}, nil
}

// LineRateExperiment drives the NAT module at 10G line rate across frame
// sizes (the §5.1 "simple end-to-end test, which confirmed line-rate
// performance"). Each case runs on its own simulator with the same seed,
// so the cases fan out across workers and the sweep matches the old
// sequential loop exactly.
func LineRateExperiment(seed int64) (LineRateResult, error) {
	cases := lineRateCases()
	points, err := runner.Map(len(cases), runner.Options{Seed: seed},
		func(i int, _ *rand.Rand) (LineRatePoint, error) {
			return runLineRateCase(seed, cases[i])
		})
	if err != nil {
		return LineRateResult{}, err
	}
	return LineRateResult{Points: points}, nil
}

// Render formats the sweep.
func (r LineRateResult) Render() string {
	t := newTable("Frames", "Offered (Mpps)", "Delivered (Mpps)", "Goodput (Gb/s)", "Drops", "Line rate?")
	for _, p := range r.Points {
		ok := "yes"
		if !p.LineRate {
			ok = "NO"
		}
		t.add(p.Label,
			fmt.Sprintf("%.3f", p.OfferedPPS/1e6),
			fmt.Sprintf("%.3f", p.DeliveredPPS/1e6),
			fmt.Sprintf("%.3f", p.GoodputGbps),
			p.Drops, ok)
	}
	return "Line-rate verification (§5.1): NAT at 10 Gb/s\n" + t.String()
}
