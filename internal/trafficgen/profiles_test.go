package trafficgen

import (
	"bytes"
	"testing"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// collectProfile runs a profile generator for n frames on a fresh
// simulator and returns copies of the emitted frames in order.
func collectProfile(t *testing.T, p Profile, seed int64, shards, partition int, n uint64) [][]byte {
	t.Helper()
	sh := netsim.NewSharded(seed, shards)
	sim := sh.Shard(sh.ShardFor(partition))
	var out [][]byte
	g, err := NewProfile(sim, p, 0, Config{
		PPS:  1e6,
		Rand: sh.Stream(partition),
	}, func(b []byte) bool {
		out = append(out, append([]byte(nil), b...))
		PutBuffer(b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(n)
	sh.Run()
	return out
}

// Same seed and profile must give a byte-identical frame sequence — the
// reproducibility contract every experiment leans on.
func TestProfileDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		a := collectProfile(t, p, 42, 1, 0, 500)
		b := collectProfile(t, p, 42, 1, 0, 500)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d frames", p, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("%s: frame %d differs between identical runs", p, i)
			}
		}
	}
}

// A profile generator keyed to a logical partition must emit the same
// bytes no matter how many shards host the topology (placement
// invariance; the -shards knob cannot change results).
func TestProfileShardPlacementInvariance(t *testing.T) {
	for _, p := range Profiles() {
		one := collectProfile(t, p, 7, 1, 3, 300)
		four := collectProfile(t, p, 7, 4, 3, 300)
		if len(one) != len(four) {
			t.Fatalf("%s: %d vs %d frames across shard counts", p, len(one), len(four))
		}
		for i := range one {
			if !bytes.Equal(one[i], four[i]) {
				t.Fatalf("%s: frame %d differs between 1-shard and 4-shard placement", p, i)
			}
		}
	}
}

// Every profile frame must satisfy the shared parser, and each blend
// must contain the protocols it advertises.
func TestProfileFramesParse(t *testing.T) {
	want := map[Profile][]string{
		ProfileARPStorm:     {"arp", "udp"},
		ProfileDHCPChurn:    {"dhcp"},
		ProfileDNSEdge:      {"dns", "tcp", "udp"},
		ProfileElephantMice: {"tcp"},
	}
	var v packet.View
	for _, p := range Profiles() {
		tmpl, err := ProfileTemplates(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tmpl) == 0 {
			t.Fatalf("%s: empty template set", p)
		}
		kinds := map[string]bool{}
		for i, wf := range tmpl {
			if !v.Parse(wf.Frame) {
				t.Fatalf("%s: template %d does not parse", p, i)
			}
			switch {
			case v.IsARP:
				kinds["arp"] = true
			case v.IsIPv4 && v.Proto == packet.IPProtocolUDP:
				if _, ok := v.DHCPPayload(); ok {
					kinds["dhcp"] = true
				} else if _, ok := v.DNSPayload(); ok {
					kinds["dns"] = true
				} else {
					kinds["udp"] = true
				}
			case v.IsIPv4 && v.Proto == packet.IPProtocolTCP:
				kinds["tcp"] = true
			}
		}
		for _, k := range want[p] {
			if !kinds[k] {
				t.Errorf("%s: missing %s frames (got %v)", p, k, kinds)
			}
		}
	}
}

// ProfileTemplates is a pure function of (profile, hosts).
func TestProfileTemplatesDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		a, err := ProfileTemplates(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ProfileTemplates(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: template count differs", p)
		}
		for i := range a {
			if a[i].Weight != b[i].Weight || !bytes.Equal(a[i].Frame, b[i].Frame) {
				t.Fatalf("%s: template %d differs across builds", p, i)
			}
		}
	}
}

// The emission hot path — template pick, pooled buffer, copy, recycle —
// must not allocate, for any profile.
func TestProfileEmissionZeroAlloc(t *testing.T) {
	for _, p := range Profiles() {
		sim := netsim.New(1)
		g, err := NewProfile(sim, p, 0, Config{PPS: 1e6}, func(b []byte) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(500, func() {
			frame := g.pickFrame()
			buf := GetBuffer(len(frame))
			copy(buf, frame)
			PutBuffer(buf)
		})
		if allocs != 0 {
			t.Errorf("%s: emission path allocates %.1f/op", p, allocs)
		}
	}
}
