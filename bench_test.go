package flexsfp

// Benchmark harness: one benchmark per paper table/figure (see
// EXPERIMENTS.md for the experiment index) plus micro-benchmarks of the
// hot paths. Run:
//
//	go test -bench=. -benchmem
//
// or regenerate the human-readable tables with cmd/flexsfp-bench.

import (
	"encoding/json"
	"net/netip"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// --- Paper tables and figures ------------------------------------------------

// BenchmarkTable1NATSynthesis regenerates Table 1: synthesizing the NAT
// case study onto the MPF200T.
func BenchmarkTable1NATSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Table1()
		if r.Used.LSRAM != 164 {
			b.Fatal("Table 1 diverged")
		}
	}
}

// BenchmarkTable2FitCheck regenerates Table 2: normalizing literature
// designs and fit-checking them against the MPF200T.
func BenchmarkTable2FitCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Table2()
		if len(r.Rows) != 4 {
			b.Fatal("Table 2 diverged")
		}
	}
}

// BenchmarkTable3CostPower regenerates Table 3: ideal-scaled cost/power.
func BenchmarkTable3CostPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Table3()
		if r.Claims.CAPEXSavingVsDPU < 0.5 {
			b.Fatal("Table 3 diverged")
		}
	}
}

// BenchmarkPowerMeasurement regenerates the §5 power experiment
// (bidirectional line-rate stress + three-step measurement).
func BenchmarkPowerMeasurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := PowerExperiment(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if r.Report.DeltaFlex < 1.4 {
			b.Fatal("power experiment diverged")
		}
	}
}

// BenchmarkNATLineRate regenerates the §5.1 line-rate verification across
// all frame sizes.
func BenchmarkNATLineRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := LineRateExperiment(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if !p.LineRate {
				b.Fatalf("%s dropped at line rate", p.Label)
			}
		}
	}
}

// BenchmarkNATLineRateTelemetry runs the same §5.1 sweep with the
// in-cable metric registry, latency histograms, and gauges attached —
// the instrumented-vs-bare delta tracked in docs/BENCH_PR5.json. The
// instrumentation budget is < 5% over BenchmarkNATLineRate.
func BenchmarkNATLineRateTelemetry(b *testing.B) {
	e, ok := exp.Default.Lookup("linerate")
	if !ok {
		b.Fatal("linerate experiment not registered")
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(exp.RunContext{Seed: int64(i + 1), Telemetry: true})
		if err != nil {
			b.Fatal(err)
		}
		env := res.Envelope()
		for _, m := range env.Metrics {
			if m.Name == "line_rate_all" && m.Mean != 1 {
				b.Fatal("dropped at line rate under instrumentation")
			}
		}
	}
}

// BenchmarkArchitectures regenerates the Figure 1 architecture
// comparison under bidirectional load.
func BenchmarkArchitectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ArchitectureExperiment(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 5 {
			b.Fatal("architecture experiment diverged")
		}
	}
}

// BenchmarkScalability regenerates the §5.3 width×clock sweep.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ScalabilityExperiment()
		if len(r.Points) != 12 {
			b.Fatal("scalability sweep diverged")
		}
	}
}

// BenchmarkAccelerationGap regenerates the §2 host/SmartNIC/FlexSFP
// micro-task comparison.
func BenchmarkAccelerationGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := AccelerationGapExperiment(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 3 {
			b.Fatal("gap experiment diverged")
		}
	}
}

// BenchmarkReliability regenerates the §5.3 VCSEL fleet simulation.
func BenchmarkReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ReliabilityExperiment(int64(i + 1))
		if r.Report.Failures == 0 {
			b.Fatal("reliability experiment diverged")
		}
	}
}

// BenchmarkFormFactorScaling regenerates the §6 form-factor sweep.
func BenchmarkFormFactorScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := FormFactorExperiment()
		if len(r.Plans) != 12 {
			b.Fatal("form-factor sweep diverged")
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationShellOverhead compares shell resource footprints — the
// §4.1 claim that Two-Way-Core growth is sublinear.
func BenchmarkAblationShellOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one := hls.ShellResources(hls.OneWayFilter)
		two := hls.ShellResources(hls.TwoWayCore)
		if float64(two.LUT4) > 1.3*float64(one.LUT4) {
			b.Fatal("shell growth not sublinear")
		}
	}
}

// BenchmarkAblationTableSize sweeps the NAT table size and reports the
// LSRAM cost curve (the "promising potential for larger tables" note in
// §5.1).
func BenchmarkAblationTableSize(b *testing.B) {
	sizes := []int{4096, 8192, 16384, 32768, 65536}
	for i := 0; i < b.N; i++ {
		prev := 0
		for _, sz := range sizes {
			p := apps.NewNAT().Program()
			p.Tables[0].Size = sz
			r := hls.EstimateProgram(p, 64)
			if r.LSRAM <= prev {
				b.Fatal("LSRAM not monotone in table size")
			}
			prev = r.LSRAM
		}
	}
}

// --- Micro-benchmarks of the hot paths ----------------------------------------

var benchFrame = packet.MustBuild(packet.Spec{
	SrcMAC: packet.MustMAC("02:00:00:00:00:01"),
	DstMAC: packet.MustMAC("02:00:00:00:00:02"),
	SrcIP:  netip.MustParseAddr("10.1.0.1"),
	DstIP:  netip.MustParseAddr("10.2.0.1"),
	Proto:  packet.IPProtocolTCP, SrcPort: 1234, DstPort: 443,
	PadTo: 64,
})

// BenchmarkParserDecode measures the zero-copy layer parser.
func BenchmarkParserDecode(b *testing.B) {
	var eth packet.Ethernet
	var ip4 packet.IPv4
	var tcp packet.TCP
	p := packet.NewParser(packet.LayerTypeEthernet, &eth, &ip4, &tcp)
	decoded := make([]packet.LayerType, 0, 4)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchFrame)))
	for i := 0; i < b.N; i++ {
		if err := p.DecodeLayers(benchFrame, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNATHandler measures the NAT datapath handler in isolation.
func BenchmarkNATHandler(b *testing.B) {
	nat := apps.NewNAT()
	if err := nat.AddMapping(netip.MustParseAddr("10.1.0.1"), netip.MustParseAddr("203.0.113.1")); err != nil {
		b.Fatal(err)
	}
	h := nat.Program().Handler
	frame := append([]byte(nil), benchFrame...)
	ctx := &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical}
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		ctx.Data = frame
		if h.HandlePacket(ctx) != ppe.VerdictPass {
			b.Fatal("unexpected verdict")
		}
	}
}

// BenchmarkEngineSubmit measures the cycle-accounted engine end to end
// (submit → handler → verdict) under simulation.
func BenchmarkEngineSubmit(b *testing.B) {
	sim := netsim.New(1)
	e := ppe.NewEngine(sim, BaseClockHz, 64, nil)
	prog := apps.NewNAT().Program()
	if err := e.SetProgram(prog); err != nil {
		b.Fatal(err)
	}
	frame := append([]byte(nil), benchFrame...)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		e.Submit(frame, ppe.DirEdgeToOptical)
		sim.Run()
	}
}

// BenchmarkAppHandlers measures each catalog app's behavioral handler on
// a representative frame (simulation-side cost, one sub-benchmark per app).
func BenchmarkAppHandlers(b *testing.B) {
	configs := map[string]any{
		"nat":       apps.NATConfig{Mappings: []apps.NATMapping{{Internal: "10.1.0.1", External: "203.0.113.1"}}},
		"acl":       apps.ACLConfig{Rules: []apps.ACLRule{{DstPort: 22, Proto: 6, Deny: true, Priority: 1}}},
		"vlan":      apps.VLANConfig{VLAN: 100},
		"tunnel":    apps.TunnelConfig{Mode: "gre", LocalIP: "10.255.0.1", RemoteIP: "10.255.0.2", LocalMAC: "02:aa:aa:aa:aa:01", GatewayMAC: "02:aa:aa:aa:aa:02"},
		"lb":        apps.LBConfig{VIP: "10.2.0.1", Backends: []apps.LBBackend{{IP: "10.0.1.1", MAC: "02:be:00:00:00:01"}}},
		"telemetry": apps.TelemetryConfig{Role: "source", DeviceID: 1},
		"netflow":   apps.NetFlowConfig{},
		"ratelimit": apps.RateLimitConfig{DefaultRateBps: 1e12, DefaultBurstBits: 1e9},
		"dohblock":  apps.DoHBlockConfig{BlockedDomains: []string{"x.example"}},
		"sanitize":  apps.SanitizeConfig{VerifyChecksums: true},
		"monitor":   apps.MonitorConfig{},
	}
	registry := apps.NewRegistry()
	for _, name := range []string{"nat", "acl", "vlan", "tunnel", "lb", "telemetry",
		"netflow", "ratelimit", "dohblock", "sanitize", "monitor"} {
		b.Run(name, func(b *testing.B) {
			app, err := registry.New(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg, _ := json.Marshal(configs[name])
			if err := app.Configure(cfg); err != nil {
				b.Fatal(err)
			}
			h := app.Program().Handler
			frame := append([]byte(nil), benchFrame...)
			ctx := &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical}
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				ctx.Data = frame
				ctx.TimestampNs = uint64(i) * 100
				h.HandlePacket(ctx)
			}
		})
	}
}

// BenchmarkTableLookup measures the exact-match table.
func BenchmarkTableLookup(b *testing.B) {
	tab := ppe.NewTable(ppe.TableSpec{Name: "t", KeyBits: 32, ValueBits: 32, Size: 32768})
	var keys [][]byte
	for i := 0; i < 1024; i++ {
		k := []byte{10, 0, byte(i >> 8), byte(i)}
		if err := tab.Add(k, []byte{1, 2, 3, 4}); err != nil {
			b.Fatal(err)
		}
		keys = append(keys, k)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkTernaryLookup measures the 64-entry register TCAM.
func BenchmarkTernaryLookup(b *testing.B) {
	tab := ppe.NewTernaryTable(ppe.TableSpec{Name: "acl", Kind: ppe.TableTernary, KeyBits: 104, ValueBits: 8, Size: 64})
	key := make([]byte, 13)
	for i := 0; i < 64; i++ {
		v := make([]byte, 13)
		m := make([]byte, 13)
		v[0], m[0] = byte(i), 0xff
		if err := tab.Add(ppe.TernaryEntry{Value: v, Mask: m, Priority: i, Data: []byte{1}}); err != nil {
			b.Fatal(err)
		}
	}
	key[0] = 63 // worst case: matches the lowest-priority entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Lookup(key)
	}
}

// BenchmarkSerializeTCP measures full-stack serialization with checksums.
func BenchmarkSerializeTCP(b *testing.B) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	eth := &packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP, SrcIP: src, DstIP: dst}
	tcp := &packet.TCP{SrcPort: 1, DstPort: 2, Window: 1000}
	if err := tcp.SetNetworkLayerForChecksum(src, dst); err != nil {
		b.Fatal(err)
	}
	pl := packet.Payload(make([]byte, 64))
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := packet.SerializeLayers(buf, opts, eth, ip, tcp, &pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowFastHash measures the symmetric flow hash used for
// load-balancer steering.
func BenchmarkFlowFastHash(b *testing.B) {
	f := packet.Flow{
		Proto: packet.IPProtocolTCP,
		Src:   packet.Endpoint{IP: netip.MustParseAddr("10.0.0.1"), Port: 1234},
		Dst:   packet.Endpoint{IP: netip.MustParseAddr("10.0.0.2"), Port: 443},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f.FastHash() == 0 {
			b.Fatal("zero hash")
		}
	}
}

// BenchmarkChecksum measures the Internet checksum over an MTU payload.
func BenchmarkChecksum(b *testing.B) {
	data := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		packet.Checksum(data)
	}
}

// BenchmarkLatencyOverhead regenerates the §6 latency-overhead sweep.
func BenchmarkLatencyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := LatencyOverheadExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 5 {
			b.Fatal("latency sweep diverged")
		}
	}
}

// BenchmarkAblationINTOverhead quantifies the telemetry tax: the INT shim
// adds 4 + 16×hops bytes per instrumented frame, so goodput overhead
// falls with frame size and with source-side sampling — the §3 claim
// that in-band telemetry comes "without incurring high overhead".
func BenchmarkAblationINTOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, hops := range []int{1, 3, 5, 15} {
			shim := 4 + packet.INTHopSize*hops
			for _, size := range []int{64, 594, 1518} {
				overhead := float64(shim) / float64(size+shim)
				if overhead <= 0 || overhead >= 1 {
					b.Fatal("overhead out of range")
				}
				// Even the maximal shim on an IMIX mean frame stays under
				// 30%; at MTU it is under 14%.
				if size == 1518 && overhead > 0.14 {
					b.Fatalf("MTU overhead %.3f too high", overhead)
				}
				// 1-in-8 sampling cuts the effective tax below 2% at MTU.
				sampled := overhead / 8
				if size == 1518 && sampled > 0.02 {
					b.Fatalf("sampled overhead %.3f", sampled)
				}
			}
		}
	}
}

// BenchmarkRetrofitEconomics regenerates the §2.1 upgrade comparison.
func BenchmarkRetrofitEconomics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RetrofitEconomicsExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if !r.SpotCheckEnforced {
			b.Fatal("retrofit spot check failed")
		}
	}
}
