package apps

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"net/netip"
	"testing"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// Encap overhead per mode (bytes added to the inner frame), with the
// canonical test config (GRE key present).
func tunnelOverhead(mode string) int {
	switch mode {
	case TunnelGRE:
		return 14 + 20 + 8 // eth + outer IPv4 + GRE(base+key)
	case TunnelVXLAN:
		return 14 + 20 + 8 + 8 // eth + outer IPv4 + UDP + VXLAN
	case TunnelIPIP:
		return 20 // outer IPv4 replaces nothing; inner eth dropped
	}
	return 0
}

// randomInnerFrame builds a random-but-valid IPv4/UDP frame (valid so
// the IPIP mode, which parses the inner packet, accepts it too).
func randomInnerFrame(rng *rand.Rand) []byte {
	payload := make([]byte, rng.Intn(400))
	rng.Read(payload)
	return packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP:   netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
		DstIP:   netip.AddrFrom4([4]byte{172, 16, byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
		SrcPort: uint16(1 + rng.Intn(65535)), DstPort: uint16(1 + rng.Intn(65535)),
		TTL: uint8(1 + rng.Intn(255)), Payload: payload,
	})
}

// Property: for random frames across all three modes, the encapped frame
// parses as a well-formed outer header (correct lengths and checksums,
// correct endpoint addressing), and decap at the remote restores the
// inner frame byte-for-byte.
func TestTunnelRoundTripProperty(t *testing.T) {
	for _, mode := range []string{TunnelGRE, TunnelVXLAN, TunnelIPIP} {
		t.Run(mode, func(t *testing.T) {
			a := NewTunnel()
			if err := a.Configure(mustJSON(t, tunnelConfig(mode))); err != nil {
				t.Fatal(err)
			}
			b := NewTunnel()
			cfg := tunnelConfig(mode)
			cfg.LocalIP, cfg.RemoteIP = cfg.RemoteIP, cfg.LocalIP
			// For IPIP the decap side re-wraps the inner IP packet in its
			// own edge Ethernet header; aligning it with the generator's
			// MACs makes the round trip a byte-level identity there too.
			cfg.LocalMAC, cfg.GatewayMAC = macHost.String(), macGW.String()
			if err := b.Configure(mustJSON(t, cfg)); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(0xf1e2))
			for i := 0; i < 300; i++ {
				inner := randomInnerFrame(rng)
				v, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)
				if v != ppe.VerdictPass {
					t.Fatalf("frame %d: encap verdict %v", i, v)
				}
				if got, want := len(encapped), len(inner)+tunnelOverhead(mode); got != want {
					t.Fatalf("frame %d: encapped %dB, want %dB", i, got, want)
				}

				// The outer headers must parse — with the zero-alloc View
				// and the full decoder — and carry fixed-up lengths.
				var view packet.View
				if !view.Parse(encapped) || !view.IsIPv4 {
					t.Fatalf("frame %d: View rejects encapped frame", i)
				}
				if got := netip.AddrFrom4([4]byte(view.DstIPv4())); got != netip.MustParseAddr("10.255.0.2") {
					t.Fatalf("frame %d: outer dst %v", i, got)
				}
				totalLen := int(binary.BigEndian.Uint16(encapped[view.L3Off+2:]))
				if totalLen != len(encapped)-14 {
					t.Fatalf("frame %d: outer IPv4 length %d, frame %d", i, totalLen, len(encapped)-14)
				}
				var eth packet.Ethernet
				if err := eth.DecodeFromBytes(encapped); err != nil {
					t.Fatal(err)
				}
				if !packet.VerifyIPv4Checksum(eth.LayerPayload()) {
					t.Fatalf("frame %d: outer IPv4 checksum invalid", i)
				}
				if mode == TunnelVXLAN && view.DstPort != packet.PortVXLAN {
					t.Fatalf("frame %d: outer dport %d", i, view.DstPort)
				}
				if pkt := packet.NewPacket(encapped, packet.LayerTypeEthernet); pkt.ErrorLayer() != nil {
					t.Fatalf("frame %d: decoder rejects encapped frame: %v", i, pkt.ErrorLayer())
				}

				// decap(encap(f)) == f. Copy first: the ring cell behind
				// encapped is owned by a, not b.
				wire := append([]byte(nil), encapped...)
				v, decapped := run(b.prog.Handler, wire, ppe.DirOpticalToEdge)
				if v != ppe.VerdictPass {
					t.Fatalf("frame %d: decap verdict %v", i, v)
				}
				if !bytes.Equal(decapped, inner) {
					t.Fatalf("frame %d: round trip corrupted (%dB → %dB)", i, len(inner), len(decapped))
				}
			}
			if n, _ := a.ctr.Read(TunnelEncapped); n != 300 {
				t.Errorf("encapped counter = %d", n)
			}
			if n, _ := b.ctr.Read(TunnelDecapped); n != 300 {
				t.Errorf("decapped counter = %d", n)
			}
		})
	}
}

// The handler hot path must not allocate: encap and decap for every
// mode, pinned with AllocsPerRun.
func TestTunnelHandlerZeroAlloc(t *testing.T) {
	for _, mode := range []string{TunnelGRE, TunnelVXLAN, TunnelIPIP} {
		a := NewTunnel()
		if err := a.Configure(mustJSON(t, tunnelConfig(mode))); err != nil {
			t.Fatal(err)
		}
		inner := udpFrame(t, ipInt, ipSrv, 7, 8)
		_, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)

		b := NewTunnel()
		cfg := tunnelConfig(mode)
		cfg.LocalIP, cfg.RemoteIP = cfg.RemoteIP, cfg.LocalIP
		if err := b.Configure(mustJSON(t, cfg)); err != nil {
			t.Fatal(err)
		}
		wire := append([]byte(nil), encapped...)

		ctx := &ppe.Ctx{Dir: ppe.DirEdgeToOptical, TimestampNs: 1}
		if n := testing.AllocsPerRun(200, func() {
			ctx.Data = inner
			a.prog.Handler.HandlePacket(ctx)
		}); n != 0 {
			t.Errorf("%s encap: %.1f allocs/op, want 0", mode, n)
		}
		ctx = &ppe.Ctx{Dir: ppe.DirOpticalToEdge, TimestampNs: 1}
		if n := testing.AllocsPerRun(200, func() {
			ctx.Data = wire
			b.prog.Handler.HandlePacket(ctx)
		}); n != 0 {
			t.Errorf("%s decap: %.1f allocs/op, want 0", mode, n)
		}
	}
}

// Regression for the TunnelTooBig accounting fix: the counter records the
// would-be encapped size (inner + overhead), not the inner size, for a
// pair of frames straddling the MTU boundary.
func TestTunnelTooBigRecordsEncappedSize(t *testing.T) {
	a := NewTunnel()
	cfg := tunnelConfig(TunnelGRE) // overhead 42 with key
	cfg.MTU = 1000
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	overhead := tunnelOverhead(TunnelGRE)

	// Inner size that encapsulates to exactly the MTU: must pass.
	fits := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		SrcPort: 1, DstPort: 2, PadTo: cfg.MTU - overhead,
	})
	if v, out := run(a.prog.Handler, fits, ppe.DirEdgeToOptical); v != ppe.VerdictPass || len(out) != cfg.MTU {
		t.Fatalf("boundary frame: verdict %v, %dB", v, len(out))
	}

	// One byte more: dropped, and the counter must record the encapped
	// size (MTU+1), not the pre-encap inner size.
	over := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		SrcPort: 1, DstPort: 2, PadTo: cfg.MTU - overhead + 1,
	})
	if v, _ := run(a.prog.Handler, over, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Fatal("over-MTU frame passed")
	}
	pkts, nBytes := a.ctr.Read(TunnelTooBig)
	if pkts != 1 {
		t.Fatalf("too-big packets = %d", pkts)
	}
	if want := uint64(cfg.MTU + 1); nBytes != want {
		t.Errorf("too-big bytes = %d, want %d (the would-be encapped size; %d would be the old pre-encap bug)",
			nBytes, want, len(over))
	}
}

// encapGREFrame / encapVXLANFrame build valid wire frames addressed to
// the canonical decap endpoint (10.255.0.1), for corruption vectors and
// fuzz seeds. No *testing.T so the fuzz seed phase can use them.
func encapTunnelFrame(mode string) []byte {
	a := NewTunnel()
	cfgJSON, _ := json.Marshal(tunnelConfig(mode))
	if err := a.Configure(cfgJSON); err != nil {
		panic(err)
	}
	inner := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP: netip.MustParseAddr("192.168.1.10"), DstIP: netip.MustParseAddr("198.51.100.5"),
		SrcPort: 7, DstPort: 8, PadTo: 96,
	})
	ctx := &ppe.Ctx{Data: inner, Dir: ppe.DirEdgeToOptical}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictPass {
		panic("encap failed")
	}
	out := append([]byte(nil), ctx.Data...)
	// Swap outer src/dst so the frame is addressed TO 10.255.0.1, i.e.
	// what the canonical config's decap side receives.
	var v packet.View
	v.Parse(out)
	src := append([]byte(nil), out[v.L3Off+12:v.L3Off+16]...)
	copy(out[v.L3Off+12:v.L3Off+16], out[v.L3Off+16:v.L3Off+20])
	copy(out[v.L3Off+16:v.L3Off+20], src)
	fixIPv4Checksum(out, v.L3Off, v.IPv4HeaderLen())
	return out
}

func fixIPv4Checksum(frame []byte, l3Off, hdrLen int) {
	frame[l3Off+10], frame[l3Off+11] = 0, 0
	var sum uint32
	for i := 0; i < hdrLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(frame[l3Off+i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(frame[l3Off+10:], ^uint16(sum))
}

// Malformed outer headers that claim this endpoint's tunnel must be
// dropped into TunnelErrors — never silently forwarded, never counted
// as decapped.
func TestTunnelDecapMalformedVectors(t *testing.T) {
	const l4 = 34 // eth(14) + outer IPv4(20), no options in our frames
	vectors := []struct {
		name    string
		mode    string
		corrupt func([]byte) []byte
	}{
		{"gre/truncated-to-flags", TunnelGRE, func(f []byte) []byte {
			out := f[:l4+2]
			binary.BigEndian.PutUint16(out[16:], uint16(len(out)-14))
			fixIPv4Checksum(out, 14, 20)
			return out
		}},
		{"gre/nonzero-version-bits", TunnelGRE, func(f []byte) []byte {
			f[l4+1] |= 0x07
			return f
		}},
		{"gre/unknown-inner-protocol", TunnelGRE, func(f []byte) []byte {
			binary.BigEndian.PutUint16(f[l4+2:], 0x1234)
			return f
		}},
		{"vxlan/i-flag-clear", TunnelVXLAN, func(f []byte) []byte {
			f[l4+8] &^= 0x08
			return f
		}},
		{"vxlan/truncated-header", TunnelVXLAN, func(f []byte) []byte {
			out := f[:l4+12] // UDP + 4 of the 8 VXLAN bytes
			binary.BigEndian.PutUint16(out[16:], uint16(len(out)-14))
			fixIPv4Checksum(out, 14, 20)
			return out
		}},
	}
	for _, vec := range vectors {
		t.Run(vec.name, func(t *testing.T) {
			b := NewTunnel()
			cfg := tunnelConfig(vec.mode) // LocalIP 10.255.0.1 = frame's dst
			if err := b.Configure(mustJSON(t, cfg)); err != nil {
				t.Fatal(err)
			}
			frame := vec.corrupt(encapTunnelFrame(vec.mode))
			v, _ := run(b.prog.Handler, frame, ppe.DirOpticalToEdge)
			if v != ppe.VerdictDrop {
				t.Fatalf("verdict = %v, want Drop", v)
			}
			if n, _ := b.ctr.Read(TunnelErrors); n != 1 {
				t.Errorf("TunnelErrors = %d, want 1", n)
			}
			if n, _ := b.ctr.Read(TunnelDecapped); n != 0 {
				t.Errorf("TunnelDecapped = %d, want 0", n)
			}
		})
	}
}

// FuzzOverlayDecap throws arbitrary wire bytes at the optical-to-edge
// decap path of both overlay datapaths (the point tunnel and the mesh):
// malformed outer headers must never panic, and every frame must land in
// exactly one counter, with drops accounted as errors — never as
// decapped traffic.
func FuzzOverlayDecap(f *testing.F) {
	for _, mode := range []string{TunnelGRE, TunnelVXLAN} {
		valid := encapTunnelFrame(mode)
		f.Add(uint8(0), valid)
		f.Add(uint8(1), valid[:len(valid)-7])
		short := append([]byte(nil), valid[:40]...)
		f.Add(uint8(2), short)
		flipped := append([]byte(nil), valid...)
		flipped[35] ^= 0x80 // GRE flag / VXLAN length territory
		f.Add(uint8(0), flipped)
	}
	f.Add(uint8(2), []byte{0xde, 0xad})

	f.Fuzz(func(t *testing.T, modeSel uint8, data []byte) {
		modes := []string{TunnelGRE, TunnelVXLAN, TunnelIPIP}
		mode := modes[int(modeSel)%len(modes)]

		tun := NewTunnel()
		cfgJSON, _ := json.Marshal(tunnelConfig(mode))
		if err := tun.Configure(cfgJSON); err != nil {
			t.Fatal(err)
		}
		checkDecapCounters(t, "tunnel", tun.prog.Handler, tun.ctr, data,
			[2]int{TunnelDecapped, TunnelErrors}, []int{TunnelPassed})

		if mode != TunnelIPIP {
			m := NewMesh()
			mcfg, _ := json.Marshal(MeshConfig{
				Mode: mode, LocalIP: "10.255.0.1", LocalMAC: "02:aa:aa:aa:aa:01",
				VNI: 7777, GREKey: 99,
			})
			if err := m.Configure(mcfg); err != nil {
				t.Fatal(err)
			}
			checkDecapCounters(t, "mesh", m.prog.Handler, m.ctr, data,
				[2]int{MeshDecapped, MeshErrors}, []int{MeshPassed})
		}
	})
}

// checkDecapCounters runs one frame through a decap handler and asserts
// the counter/verdict contract: exactly one counter fires; Drop ⇔ the
// error counter; decapped ⇒ Pass with a strictly smaller frame.
func checkDecapCounters(t *testing.T, name string, h ppe.Handler, ctr *ppe.CounterBank, data []byte, decapErrIdx [2]int, passIdx []int) {
	t.Helper()
	decapIdx, errIdx := decapErrIdx[0], decapErrIdx[1]
	in := append([]byte(nil), data...)
	ctx := &ppe.Ctx{Data: in, Dir: ppe.DirOpticalToEdge, TimestampNs: 1}
	v := h.HandlePacket(ctx)

	total := uint64(0)
	counts := map[int]uint64{}
	for _, idx := range append([]int{decapIdx, errIdx}, passIdx...) {
		n, _ := ctr.Read(idx)
		counts[idx] = n
		total += n
	}
	if total != 1 {
		t.Fatalf("%s: %d counters fired for one frame", name, total)
	}
	switch v {
	case ppe.VerdictDrop:
		if counts[errIdx] != 1 {
			t.Fatalf("%s: dropped frame not in the error counter", name)
		}
	case ppe.VerdictPass:
		if counts[errIdx] != 0 {
			t.Fatalf("%s: passed frame counted as error", name)
		}
	}
	if counts[decapIdx] == 1 && len(ctx.Data) >= len(data) {
		t.Fatalf("%s: decap output (%dB) not smaller than input (%dB)", name, len(ctx.Data), len(data))
	}
}
