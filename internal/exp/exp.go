// Package exp is the experiment framework behind the FlexSFP evaluation
// harness. Every table and figure of the paper — and every future
// workload — is an Experiment: a named, self-describing unit that takes
// a RunContext (the uniform knob set: root seed, trial count,
// parallelism, fault profile, clock/datapath overrides, progress sink)
// and returns a Result that renders both as the paper-style text table
// and as a canonical JSON envelope.
//
// Experiments self-register in the process-wide Default registry (an
// init in their package), which makes them addressable by name or glob
// from cmd/flexsfp-bench without any per-experiment flag plumbing.
// Determinism is inherited from internal/runner: per-trial seeds are a
// pure SplitMix64 function of (RunContext.Seed, trial), so results are
// bit-identical for any -parallel setting.
package exp

import (
	"fmt"

	"flexsfp/internal/runner"
)

// Experiment is one registered unit of the evaluation harness.
type Experiment interface {
	// Name is the stable registry key ("table1", "linerate", ...).
	Name() string
	// Describe is a one-line human summary shown by -list.
	Describe() string
	// Run executes the experiment under the given knobs.
	Run(ctx RunContext) (Result, error)
}

// RunContext carries every knob an experiment can depend on. A zero
// value is valid: it means seed 0, a single trial, GOMAXPROCS workers,
// and the §5.1 baseline operating point.
type RunContext struct {
	// Seed is the root seed; per-trial seeds derive from it through
	// TrialSeed. Experiments with no randomness may ignore it.
	Seed int64
	// Trials is the number of independent seeds (<=0 means 1). With
	// more than one, stochastic experiments report mean ± 95% CI.
	Trials int
	// Parallelism bounds concurrent trial workers (0 = GOMAXPROCS).
	Parallelism int
	// FaultRate is the maximum fault-rate multiplier swept by chaos
	// experiments (<=0 means the experiment's default).
	FaultRate float64
	// ClockHz / DatapathBits override the §5.1 operating point for
	// experiments that build modules (0 keeps the baseline).
	ClockHz      int64
	DatapathBits int
	// Telemetry opts the run into in-cable instrumentation: experiments
	// that support it attach a metric registry to their modules and fold
	// headline counters into the result envelope. Off by default so
	// canonical envelopes stay byte-identical.
	Telemetry bool
	// Shards selects the parallel simulation core (netsim.Sharded) for
	// experiments that support it: the topology is partitioned over this
	// many event heaps advanced under conservative lookahead
	// synchronization. 0 or 1 keeps the single-heap path. Shards is an
	// execution-placement knob, not a model parameter — results are
	// byte-identical at any shard count, which is why it is deliberately
	// NOT echoed in Params.
	Shards int
	// FleetSize overrides the simulated module count for fleet-scale
	// experiments (fleet_ota); 0 keeps the experiment's default. Unlike
	// Shards, this IS a model parameter — it changes what is simulated —
	// so it is echoed in Params.
	FleetSize int
	// FleetShards overrides the fleet controller's worker shard count;
	// 0 keeps the default. Also a model parameter: shard membership
	// determines canary sets, gate scopes, and blast radii.
	FleetShards int
	// Optimize runs the opt pass pipeline (table merging, stage fusion,
	// XDP instruction packing) over every program experiments build.
	// Off by default so canonical envelopes stay byte-identical.
	Optimize bool
	// Progress, when non-nil, receives coarse progress messages. It may
	// be called from the goroutine running the experiment.
	Progress func(msg string)
}

// TrialSeed derives the deterministic seed for one trial; delegation to
// internal/runner keeps the derivation identical everywhere (reproduce
// trial t alone by running a single-trial context at this seed).
func (c RunContext) TrialSeed(trial int) int64 {
	return runner.TrialSeed(c.Seed, trial)
}

// EffectiveTrials is Trials clamped to at least one.
func (c RunContext) EffectiveTrials() int {
	if c.Trials < 1 {
		return 1
	}
	return c.Trials
}

// Progressf formats a progress message into the sink, if any.
func (c RunContext) Progressf(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// Params is the JSON echo of the knobs a run used, embedded in every
// result envelope so a blob is self-describing and replayable.
func (c RunContext) Params() Params {
	return Params{
		Seed:         c.Seed,
		Trials:       c.EffectiveTrials(),
		Parallelism:  c.Parallelism,
		FaultRate:    c.FaultRate,
		ClockHz:      c.ClockHz,
		DatapathBits: c.DatapathBits,
		Telemetry:    c.Telemetry,
		FleetSize:    c.FleetSize,
		FleetShards:  c.FleetShards,
		Optimize:     c.Optimize,
	}
}

// Params mirrors RunContext in the JSON envelope.
type Params struct {
	Seed         int64   `json:"seed"`
	Trials       int     `json:"trials"`
	Parallelism  int     `json:"parallel,omitempty"`
	FaultRate    float64 `json:"fault_rate,omitempty"`
	ClockHz      int64   `json:"clock_hz,omitempty"`
	DatapathBits int     `json:"datapath_bits,omitempty"`
	Telemetry    bool    `json:"telemetry,omitempty"`
	FleetSize    int     `json:"fleet_size,omitempty"`
	FleetShards  int     `json:"fleet_shards,omitempty"`
	Optimize     bool    `json:"optimize,omitempty"`
}

// Result is what an experiment returns: the paper-style text rendering
// plus the typed JSON envelope.
type Result interface {
	// Render formats the human-readable report (the paper-style table).
	Render() string
	// Envelope returns the canonical machine-readable result.
	Envelope() Envelope
}

// Envelope is the common typed result schema: the experiment's name,
// the knobs it ran under, headline metrics with cross-trial CIs and
// paper-reference deltas, and the experiment-specific detail payload
// (the full typed result struct, marshaled as-is).
type Envelope struct {
	Name    string   `json:"name"`
	Params  Params   `json:"params"`
	Metrics []Metric `json:"metrics,omitempty"`
	Detail  any      `json:"detail,omitempty"`
}

// Metric is one named scalar of the envelope, optionally aggregated
// across trials (CI95/N) and compared against the paper's published
// value (Paper/Delta, where Delta = Mean - Paper).
type Metric struct {
	Name  string   `json:"name"`
	Unit  string   `json:"unit,omitempty"`
	Mean  float64  `json:"mean"`
	CI95  float64  `json:"ci95,omitempty"`
	N     int      `json:"n,omitempty"`
	Paper *float64 `json:"paper,omitempty"`
	Delta *float64 `json:"delta,omitempty"`
}

// Scalar builds a single-value metric.
func Scalar(name, unit string, v float64) Metric {
	return Metric{Name: name, Unit: unit, Mean: v}
}

// FromSummary builds a metric from a cross-trial summary.
func FromSummary(name, unit string, s runner.Summary) Metric {
	return Metric{Name: name, Unit: unit, Mean: s.Mean, CI95: s.CI95(), N: s.N}
}

// VsPaper attaches the paper's published value and the model-minus-paper
// delta to the metric.
func (m Metric) VsPaper(paper float64) Metric {
	d := m.Mean - paper
	m.Paper, m.Delta = &paper, &d
	return m
}

// wrapped is the stock Result implementation: a pre-built envelope plus
// a deferred text renderer (usually the legacy Render method of the
// detail struct).
type wrapped struct {
	env    Envelope
	render func() string
}

func (w wrapped) Render() string     { return w.render() }
func (w wrapped) Envelope() Envelope { return w.env }

// NewResult wraps an envelope and a text renderer into a Result.
func NewResult(env Envelope, render func() string) Result {
	return wrapped{env: env, render: render}
}

// Def implements Experiment from plain fields — the idiomatic way to
// register an experiment:
//
//	exp.Register(exp.Def{
//	    ID:  "myexp",
//	    Doc: "what it reproduces",
//	    RunFn: func(ctx exp.RunContext) (exp.Result, error) { ... },
//	})
type Def struct {
	ID  string
	Doc string
	// Hidden excludes the experiment from wildcard selection ("all",
	// globs); it still runs when addressed by exact name or when the
	// caller opts hidden experiments in (bench -faults).
	Hidden bool
	RunFn  func(RunContext) (Result, error)
}

func (d Def) Name() string     { return d.ID }
func (d Def) Describe() string { return d.Doc }
func (d Def) Run(ctx RunContext) (Result, error) {
	if d.RunFn == nil {
		return nil, fmt.Errorf("exp: experiment %q has no RunFn", d.ID)
	}
	return d.RunFn(ctx)
}

// hidden is the optional interface consulted by wildcard selection.
type hidden interface{ isHidden() bool }

func (d Def) isHidden() bool { return d.Hidden }
