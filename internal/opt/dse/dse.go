// Package dse is the cost-aware design-space exploration driver on top
// of the opt pass pipeline (Kugelblitz-style, per PAPERS.md): it sweeps
// clock × datapath width × table sizing × device for every catalog
// application, scores each point with the hls resource estimator, the
// fpga timing model, the core power model and the power testbed, prices
// it with the device catalog, and reduces each app's feasible points to
// a Pareto front over (resources, latency, power, cost).
//
// Every point is scored independently with a SplitMix64-derived seed
// (runner.TrialSeed), so the sweep parallelizes over internal/runner
// workers and the result is byte-identical at any parallelism.
package dse

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/opt"
	"flexsfp/internal/power"
	"flexsfp/internal/ppe"
	"flexsfp/internal/runner"
)

// Config parameterizes a sweep. Zero-value fields take the defaults of
// DefaultConfig.
type Config struct {
	Seed        int64
	Parallelism int
	Shell       hls.Shell
	// ClocksHz × WidthsBits × TableScales × Devices is the per-app grid.
	ClocksHz    []int64
	WidthsBits  []int
	TableScales []float64
	Devices     []fpga.Device
	// FrameBytes is the frame size latency/capacity are quoted at.
	FrameBytes int
	// PowerSamples is the per-point testbed sample count.
	PowerSamples int
}

// DefaultConfig is the standard sweep: the §5.1 baseline operating
// point plus the double-clock and wide-datapath what-ifs, half/baseline/
// double table sizing, against the full PolarFire catalog.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Shell:        hls.TwoWayCore,
		ClocksHz:     []int64{156_250_000, 312_500_000, 400_000_000},
		WidthsBits:   []int{64, 128, 256},
		TableScales:  []float64{0.5, 1, 2},
		Devices:      fpga.Catalog(),
		FrameBytes:   64,
		PowerSamples: 32,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Seed)
	if len(c.ClocksHz) == 0 {
		c.ClocksHz = d.ClocksHz
	}
	if len(c.WidthsBits) == 0 {
		c.WidthsBits = d.WidthsBits
	}
	if len(c.TableScales) == 0 {
		c.TableScales = d.TableScales
	}
	if len(c.Devices) == 0 {
		c.Devices = d.Devices
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = d.FrameBytes
	}
	if c.PowerSamples <= 0 {
		c.PowerSamples = d.PowerSamples
	}
	return c
}

// Point is one evaluated design point.
type Point struct {
	Device       string  `json:"device"`
	ClockMHz     float64 `json:"clock_mhz"`
	DatapathBits int     `json:"datapath_bits"`
	TableScale   float64 `json:"table_scale"`

	Fits       bool    `json:"fits"`
	TimingOK   bool    `json:"timing_ok"`
	ThermalOK  bool    `json:"thermal_ok"`
	UtilMaxPct float64 `json:"util_max_pct"`

	LatencyNs    float64 `json:"latency_ns"`
	CapacityGbps float64 `json:"capacity_gbps"`
	PeakPowerW   float64 `json:"peak_power_w"`
	// MeasuredPowerW is the testbed measurement of the peak draw
	// (deterministic sensor noise), minus the NIC baseline.
	MeasuredPowerW float64 `json:"measured_power_w"`
	CostUSD        float64 `json:"cost_usd"`

	Pareto bool `json:"pareto,omitempty"`
}

// feasible gates Pareto membership: the point must place, route, close
// timing, and stay inside the SFP+ thermal envelope.
func (p Point) feasible() bool { return p.Fits && p.TimingOK && p.ThermalOK }

// dominates reports Pareto dominance for minimization over
// (cost, resources, latency, power).
func (p Point) dominates(q Point) bool {
	le := p.CostUSD <= q.CostUSD && p.UtilMaxPct <= q.UtilMaxPct &&
		p.LatencyNs <= q.LatencyNs && p.PeakPowerW <= q.PeakPowerW
	lt := p.CostUSD < q.CostUSD || p.UtilMaxPct < q.UtilMaxPct ||
		p.LatencyNs < q.LatencyNs || p.PeakPowerW < q.PeakPowerW
	return le && lt
}

// AppFront is one application's sweep result.
type AppFront struct {
	App string `json:"app"`
	// Optimizer effect on the compiled structure.
	Opt opt.Report `json:"opt"`
	// Points holds every evaluated grid point in grid order; Pareto
	// marks the front among feasible points.
	Points []Point `json:"points"`
	// ParetoCount and FeasibleCount summarize Points.
	FeasibleCount int `json:"feasible_count"`
	ParetoCount   int `json:"pareto_count"`
}

// LitFit is one Table 2 literature design checked against the catalog:
// the smallest device that hosts it and what that operating point costs.
type LitFit struct {
	Design    string  `json:"design"`
	Fits      bool    `json:"fits"`
	Device    string  `json:"device,omitempty"`
	Limiting  string  `json:"limiting,omitempty"`
	CostUSD   float64 `json:"cost_usd,omitempty"`
	TypPowerW float64 `json:"typ_power_w,omitempty"`
}

// Result is a full sweep.
type Result struct {
	Shell      string     `json:"shell"`
	GridPoints int        `json:"grid_points"`
	Apps       []AppFront `json:"apps"`
	Literature []LitFit   `json:"literature"`
}

// gridPoint addresses one (device, clock, width, scale) cell.
type gridPoint struct {
	device fpga.Device
	clock  int64
	width  int
	scale  float64
}

// Explore runs the sweep and returns the per-app Pareto fronts plus the
// literature-design placement table.
func Explore(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	reg := apps.NewRegistry()
	names := reg.Names()
	sort.Strings(names)

	// Compile and optimize each app once; grid points reuse the program.
	progs := make([]*ppe.Program, len(names))
	reports := make([]opt.Report, len(names))
	for i, name := range names {
		prog, rep, err := optimizedProgram(reg, name)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", name, err)
		}
		progs[i], reports[i] = prog, rep
	}

	grid := make([]gridPoint, 0,
		len(cfg.Devices)*len(cfg.ClocksHz)*len(cfg.WidthsBits)*len(cfg.TableScales))
	for _, dev := range cfg.Devices {
		for _, clock := range cfg.ClocksHz {
			for _, width := range cfg.WidthsBits {
				for _, scale := range cfg.TableScales {
					grid = append(grid, gridPoint{dev, clock, width, scale})
				}
			}
		}
	}

	// One flat work item per (app, grid cell); runner.Map merges results
	// in index order, so the output layout is parallelism-independent.
	total := len(names) * len(grid)
	points, err := runner.Map(total, runner.Options{
		Parallelism: cfg.Parallelism, Seed: cfg.Seed,
	}, func(trial int, _ *rand.Rand) (Point, error) {
		return scorePoint(progs[trial/len(grid)], grid[trial%len(grid)], cfg,
			runner.TrialSeed(cfg.Seed, trial)), nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Shell: cfg.Shell.String(), GridPoints: len(grid)}
	for i, name := range names {
		front := AppFront{App: name, Opt: reports[i]}
		front.Points = append(front.Points, points[i*len(grid):(i+1)*len(grid)]...)
		markPareto(front.Points)
		for _, p := range front.Points {
			if p.feasible() {
				front.FeasibleCount++
			}
			if p.Pareto {
				front.ParetoCount++
			}
		}
		res.Apps = append(res.Apps, front)
	}
	res.Literature = literatureFits(cfg.Devices)
	return res, nil
}

// optimizedProgram builds the canonically configured app and runs the
// full optimizer over it (instruction passes ride the XDP app's
// Optimize config flag; structural passes apply to every app).
func optimizedProgram(reg *core.Registry, name string) (*ppe.Program, opt.Report, error) {
	app, err := reg.New(name)
	if err != nil {
		return nil, opt.Report{}, err
	}
	cfg, err := apps.CanonicalConfig(name)
	if err != nil {
		return nil, opt.Report{}, err
	}
	if xc, ok := cfg.(apps.XDPConfig); ok {
		xc.Optimize = true
		cfg = xc
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, opt.Report{}, err
	}
	if err := app.Configure(raw); err != nil {
		return nil, opt.Report{}, err
	}
	prog, rep := opt.Optimize(app.Program(), opt.Options{})
	return prog, rep, nil
}

// scorePoint evaluates one app at one grid cell.
func scorePoint(prog *ppe.Program, g gridPoint, cfg Config, seed int64) Point {
	p := Point{
		Device:       g.device.Name,
		ClockMHz:     float64(g.clock) / 1e6,
		DatapathBits: g.width,
		TableScale:   g.scale,
		CostUSD:      g.device.UnitCostUSD,
	}

	scaled := scaleTables(prog, g.scale)
	app := hls.EstimateProgram(scaled, g.width)
	total := app.Add(hls.ShellResources(cfg.Shell))
	fit := g.device.Fit(total)
	p.Fits = fit.Fits
	p.UtilMaxPct = math.Round(fit.Utilization.Max()*100) / 100

	achievable := g.device.AchievableClockMHz(fit.Utilization.Max()/100, g.width)
	p.TimingOK = achievable >= float64(g.clock)/1e6
	p.ThermalOK = core.WithinThermalEnvelope(g.clock, g.width, cfg.Shell)

	// Cycle accounting mirrors ppe.Engine: service is header streaming
	// or the soft core's packed schedule, whichever dominates; verdicts
	// emerge a pipeline depth later.
	wordBytes := g.width / 8
	svc := int64((cfg.FrameBytes+wordBytes-1)/wordBytes) + 1
	if pc := int64(scaled.ProgCycles); svc < pc {
		svc = pc
	}
	depth := int64(scaled.PipelineDepth(g.width))
	p.LatencyNs = math.Round(float64(svc+depth)*1e12/float64(g.clock)) / 1e3
	pps := float64(g.clock) / float64(svc)
	p.CapacityGbps = math.Round(pps*float64(cfg.FrameBytes)*8/1e6) / 1e3

	p.PeakPowerW = core.PeakPowerW(g.clock, g.width, cfg.Shell)
	tb := power.NewTestbed(netsim.New(seed))
	m := tb.Measure(p.PeakPowerW, cfg.PowerSamples)
	p.MeasuredPowerW = math.Round((m.MeanW-power.NICBaselineW)*1000) / 1000
	return p
}

// scaleTables returns a copy of prog with table capacities scaled (the
// table-sizing axis of the sweep); a scale of 1 shares the input slices.
func scaleTables(prog *ppe.Program, scale float64) *ppe.Program {
	if scale == 1 || len(prog.Tables) == 0 {
		return prog
	}
	q := *prog
	q.Tables = append([]ppe.TableSpec(nil), prog.Tables...)
	for i := range q.Tables {
		size := int(math.Round(float64(q.Tables[i].Size) * scale))
		if size < 1 {
			size = 1
		}
		if q.Tables[i].Kind == ppe.TableTernary && size > 4096 {
			size = 4096 // respect the register-TCAM validation cap
		}
		q.Tables[i].Size = size
	}
	return &q
}

// markPareto flags the non-dominated feasible points.
func markPareto(points []Point) {
	for i := range points {
		if !points[i].feasible() {
			continue
		}
		dominated := false
		for j := range points {
			if i != j && points[j].feasible() && points[j].dominates(points[i]) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// literatureFits places every Table 2 design on the smallest catalog
// device that hosts it.
func literatureFits(devices []fpga.Device) []LitFit {
	out := make([]LitFit, 0, 4)
	for _, ld := range fpga.LiteratureDesigns() {
		fit := LitFit{Design: ld.Name}
		for _, dev := range devices {
			ok, limiting := ld.FitsDevice(dev)
			if ok {
				fit.Fits = true
				fit.Device = dev.Name
				fit.CostUSD = dev.UnitCostUSD
				fit.TypPowerW = dev.TypPowerW
				break
			}
			fit.Limiting = limiting
		}
		out = append(out, fit)
	}
	return out
}
