package mgmt

import (
	"strings"
	"sync"
	"testing"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
)

// buildFleet provisions n modules, each with its own agent, joined into a
// Fleet through locked direct transports (the sim is single-threaded, so
// the fan-out goroutines must serialize against it).
func buildFleet(t *testing.T, n int) (*Fleet, []*core.Module, *netsim.Simulator, *sync.Mutex) {
	t.Helper()
	sim := netsim.New(1)
	var simMu sync.Mutex
	fleet := NewFleet()
	var mods []*core.Module
	for i := 0; i < n; i++ {
		reg := core.NewRegistry()
		reg.Register("stateful", newStatefulApp)
		m := core.NewModule(core.Config{
			Sim: sim, Name: nameFor(i), DeviceID: uint32(i + 1),
			Shell: hls.TwoWayCore, Registry: reg, AuthKey: fleetKey,
		})
		app := newStatefulApp()
		d, err := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
		if err != nil {
			t.Fatal(err)
		}
		enc, _ := d.Bitstream.Encode()
		if _, err := m.Install(1, enc); err != nil {
			t.Fatal(err)
		}
		if err := m.BootSync(1); err != nil {
			t.Fatal(err)
		}
		agent := NewAgent(m)
		fleet.Add(nameFor(i), TransportFunc(func(req []byte) ([]byte, error) {
			simMu.Lock()
			defer simMu.Unlock()
			resp := agent.Handle(req)
			sim.Run() // drain any scheduled reboot work
			return resp, nil
		}))
		mods = append(mods, m)
	}
	return fleet, mods, sim, &simMu
}

func nameFor(i int) string { return string(rune('a'+i)) + "-port" }

func TestFleetPingAll(t *testing.T) {
	fleet, _, _, _ := buildFleet(t, 5)
	infos, outcomes := fleet.PingAll()
	if len(Failures(outcomes)) != 0 {
		t.Fatalf("failures: %+v", Failures(outcomes))
	}
	if len(infos) != 5 {
		t.Fatalf("infos = %d", len(infos))
	}
	for name, info := range infos {
		if !info.Running || info.Name != name {
			t.Errorf("%s: %+v", name, info)
		}
	}
	if got := fleet.Names(); len(got) != 5 || got[0] != "a-port" {
		t.Errorf("Names = %v", got)
	}
}

func TestFleetStatsAll(t *testing.T) {
	fleet, mods, sim, mu := buildFleet(t, 3)
	mu.Lock()
	mods[1].SetTx(core.PortOptical, func([]byte) {})
	mods[1].RxEdge(dataFrameB())
	sim.Run()
	mu.Unlock()
	stats, outcomes := fleet.StatsAll()
	if len(Failures(outcomes)) != 0 {
		t.Fatalf("failures: %+v", outcomes)
	}
	if stats["b-port"].Engine.In != 1 {
		t.Errorf("b-port engine.In = %d", stats["b-port"].Engine.In)
	}
	if stats["a-port"].Engine.In != 0 {
		t.Errorf("a-port engine.In = %d", stats["a-port"].Engine.In)
	}
}

func TestFleetPushAllRollout(t *testing.T) {
	fleet, mods, _, mu := buildFleet(t, 4)
	// New image version for the whole fleet.
	app := newStatefulApp()
	prog := app.Program()
	prog.Version = 9
	d, err := hls.Compile(prog, hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := d.Bitstream.Encode()
	signed := bitstream.Sign(enc, fleetKey)

	outcomes := fleet.PushAll(signed, 2, true)
	if len(Failures(outcomes)) != 0 {
		t.Fatalf("rollout failures: %+v", Failures(outcomes))
	}
	if s := Summary(outcomes); !strings.Contains(s, "4 ok, 0 failed of 4") {
		t.Errorf("summary = %q", s)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, m := range mods {
		if !m.Running() || m.ActiveSlot() != 2 {
			t.Errorf("%s: running=%v slot=%d", m.Name(), m.Running(), m.ActiveSlot())
		}
	}
}

func TestFleetPartialFailure(t *testing.T) {
	fleet, _, _, _ := buildFleet(t, 3)
	// One member with a wrong-key image source: sign with a bad key so
	// every module rejects, demonstrating failure reporting.
	app := newStatefulApp()
	d, _ := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	enc, _ := d.Bitstream.Encode()
	badSigned := bitstream.Sign(enc, []byte("not-the-fleet-key"))
	outcomes := fleet.PushAll(badSigned, 2, false)
	if len(Failures(outcomes)) != 3 {
		t.Fatalf("want all 3 to fail auth, got %+v", outcomes)
	}
	if s := Summary(outcomes); !strings.Contains(s, "0 ok, 3 failed") {
		t.Errorf("summary = %q", s)
	}
}

func TestFleetRemove(t *testing.T) {
	fleet, _, _, _ := buildFleet(t, 2)
	fleet.Remove("a-port")
	if _, ok := fleet.Client("a-port"); ok {
		t.Error("removed member still present")
	}
	infos, _ := fleet.PingAll()
	if len(infos) != 1 {
		t.Errorf("infos = %d", len(infos))
	}
}

func TestFleetOverTCP(t *testing.T) {
	// Same sweep, but through real TCP listeners.
	fleetDirect, _, _, _ := buildFleet(t, 3)
	fleet := NewFleet()
	var servers []*Server
	for _, name := range fleetDirect.Names() {
		c, _ := fleetDirect.Client(name)
		// Re-serve each member's transport over TCP.
		srv := NewServer(func(req []byte) []byte {
			resp, err := c.t.Do(req)
			if err != nil {
				return Message{Type: MsgError, Body: errorBody(CodeOpFailed, err.Error())}.Encode()
			}
			return resp
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		tr, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		fleet.Add(name, tr)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	infos, outcomes := fleet.PingAll()
	if len(Failures(outcomes)) != 0 || len(infos) != 3 {
		t.Fatalf("TCP sweep: %+v", outcomes)
	}
}

func dataFrameB() []byte {
	b := make([]byte, 64)
	copy(b[0:6], []byte{2, 0, 0, 0, 0, 2})
	copy(b[6:12], []byte{2, 0, 0, 0, 0, 1})
	b[12], b[13] = 0x08, 0x00
	b[14] = 0x45
	b[17] = 50 // total length
	b[22] = 64 // ttl
	b[23] = 17 // udp
	return b
}
