// Load balancing at the optical boundary (§3 "Packet Transformation and
// Forwarding"): a FlexSFP in front of a rack runs a Katran-style L4 load
// balancer, hashing flows over a VIP to four backends with a symmetric
// flow hash — no SmartNIC, no host CPU in the path.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"net/netip"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/trafficgen"
)

func main() {
	sim := flexsfp.NewSim(1)

	backends := []apps.LBBackend{
		{IP: "10.0.1.1", MAC: "02:be:00:00:00:01"},
		{IP: "10.0.1.2", MAC: "02:be:00:00:00:02"},
		{IP: "10.0.1.3", MAC: "02:be:00:00:00:03"},
		{IP: "10.0.1.4", MAC: "02:be:00:00:00:04"},
	}
	mod, design, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
		Name: "lb-sfp", DeviceID: 9, Shell: flexsfp.TwoWayCore, App: "lb",
		Config: apps.LBConfig{VIP: "203.0.113.100", Backends: backends},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LB design: %d LUT4, %d LSRAM blocks, %.1f%% of %s\n",
		design.Total.LUT4, design.Total.LSRAM,
		design.Fit.Utilization.Max(), design.Target.Name)

	// Count flows per backend at the optical egress.
	perBackend := map[netip.Addr]map[uint16]bool{}
	mod.SetTx(core.PortOptical, func(b []byte) {
		pkt := packet.NewPacket(b, packet.LayerTypeEthernet)
		ip, ok := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
		if !ok {
			return
		}
		tcp, ok := pkt.Layer(packet.LayerTypeTCP).(*packet.TCP)
		if !ok {
			return
		}
		if perBackend[ip.DstIP] == nil {
			perBackend[ip.DstIP] = map[uint16]bool{}
		}
		perBackend[ip.DstIP][tcp.SrcPort] = true
	})
	mod.SetTx(core.PortEdge, func([]byte) {})

	// 2000 client flows toward the VIP.
	gen := trafficgen.New(sim, trafficgen.Config{
		PPS:     1_000_000,
		Proto:   packet.IPProtocolTCP,
		Flows:   2000,
		SrcMAC:  packet.MustMAC("02:cc:00:00:00:01"),
		DstMAC:  mod.MAC(),
		SrcIP:   netip.MustParseAddr("198.51.100.7"),
		DstIP:   netip.MustParseAddr("203.0.113.100"),
		DstPort: 443,
	}, func(b []byte) bool { mod.RxEdge(b); return true })
	gen.Run(20000)
	sim.RunFor(50 * netsim.Millisecond)

	fmt.Printf("\n%d frames across 2000 flows steered:\n", gen.Sent)
	totalFlows := 0
	for _, be := range backends {
		ip := netip.MustParseAddr(be.IP)
		n := len(perBackend[ip])
		totalFlows += n
		bar := ""
		for i := 0; i < n/20; i++ {
			bar += "#"
		}
		fmt.Printf("  %s: %4d flows %s\n", be.IP, n, bar)
	}
	fmt.Printf("  total %d distinct flows (stickiness: every flow maps to exactly one backend)\n", totalFlows)

	st := mod.Engine().Stats()
	lb, _ := mod.App().State().Counters("lb")
	steered, _ := lb.Read(apps.LBSteered)
	fmt.Printf("\nengine: in=%d pass=%d; steered=%d; power %.2f W\n",
		st.In, st.Pass, steered, mod.PowerW())
}
