package daemon

// Three-cable daemon-level overlay E2E: one daemon hosts the rendezvous
// and joins in-process, two more join it over real TCP, and all three
// converge to the identical fabric table — the daemon-boundary version
// of the in-simulator fabric test in internal/overlay.

import (
	"fmt"
	"reflect"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/mgmt"
)

// startMeshDaemon boots one overlay endpoint. Cable 0 hosts the
// rendezvous; the rest join it at rdvAddr.
func startMeshDaemon(t *testing.T, i int, rdvAddr string) *Daemon {
	t.Helper()
	ovl := &OverlayConfig{
		Join: rdvAddr,
		IP:   fmt.Sprintf("10.254.0.%d", i+1),
		Mode: apps.TunnelGRE, GREKey: uint32(700 + i),
		Prefixes: []string{fmt.Sprintf("10.200.%d.0/24", i+1)},
	}
	if i == 0 {
		ovl.Listen, ovl.Join = "127.0.0.1:0", ""
		ovl.Mode = apps.TunnelVXLAN
		ovl.VNI, ovl.GREKey = 4000, 0
		// The host also backs up cable 2's prefix.
		ovl.Prefixes = append(ovl.Prefixes, "10.200.3.0/24@1")
	}
	d, err := Start(Config{
		Listen: "127.0.0.1:0", Name: fmt.Sprintf("cable-%d", i),
		DeviceID: uint32(i + 1), App: "mesh", Shell: "two-way-core",
		Telemetry: i == 0, Overlay: ovl,
	})
	if err != nil {
		t.Fatalf("start cable-%d: %v", i, err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// meshPeers dumps a daemon's mesh_peers table over its management port.
func meshPeers(t *testing.T, d *Daemon) map[string][]byte {
	t.Helper()
	conn, err := mgmt.Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	entries, err := mgmt.NewClient(conn).TableDump(apps.MeshPeerTable)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		out[string(e.Key)] = e.Value
	}
	return out
}

func TestDaemonOverlayThreeCables(t *testing.T) {
	host := startMeshDaemon(t, 0, "")
	if host.RendezvousAddr() == "" {
		t.Fatal("host did not expose a rendezvous address")
	}
	ds := []*Daemon{host,
		startMeshDaemon(t, 1, host.RendezvousAddr()),
		startMeshDaemon(t, 2, host.RendezvousAddr()),
	}

	// Every daemon re-syncs after the last registration and lands on the
	// same table at the same generation.
	var tables []mgmt.OverlayTable
	for i, d := range ds {
		tab, err := d.OverlaySync()
		if err != nil {
			t.Fatalf("sync cable-%d: %v", i, err)
		}
		tables = append(tables, tab)
	}
	for i := 1; i < len(tables); i++ {
		if !reflect.DeepEqual(tables[i], tables[0]) {
			t.Fatalf("cable-%d synced a different table:\n%+v\nvs\n%+v", i, tables[i], tables[0])
		}
	}
	if tables[0].Generation != 3 || len(tables[0].Peers) != 3 {
		t.Fatalf("fabric = gen %d with %d peers, want gen 3 with 3", tables[0].Generation, len(tables[0].Peers))
	}

	// Identical peer tables in the datapaths: every daemon holds the
	// other two, and any two views of the same peer are byte-equal.
	views := make([]map[string][]byte, len(ds))
	for i, d := range ds {
		views[i] = meshPeers(t, d)
		if len(views[i]) != 2 {
			t.Fatalf("cable-%d has %d mesh peers, want 2", i, len(views[i]))
		}
	}
	for i, vi := range views {
		for k, v := range vi {
			for j, vj := range views {
				if other, ok := vj[k]; i != j && ok && !reflect.DeepEqual(v, other) {
					t.Fatalf("cable-%d and cable-%d disagree on peer %x", i, j, k)
				}
			}
		}
	}

	// The host's telemetry mirrors the fabric state.
	snap := host.Registry().Snapshot()
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["overlay.generation"] != 3 || gauges["overlay.peers"] != 3 {
		t.Fatalf("overlay gauges = %v, want generation 3 / peers 3", gauges)
	}

	// Withdraw cable-2 through the public rendezvous port, resync, and
	// the survivors converge: cable-2's peer entry is gone everywhere and
	// its prefix failed over to the host's backup announcement.
	conn, err := mgmt.Dial(host.RendezvousAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := mgmt.NewClient(conn).OverlayWithdraw("cable-2"); err != nil {
		t.Fatal(err)
	}
	for i, d := range ds[:2] {
		tab, err := d.OverlaySync()
		if err != nil {
			t.Fatalf("post-withdraw sync cable-%d: %v", i, err)
		}
		if len(tab.Peers) != 2 {
			t.Fatalf("cable-%d still sees %d peers after withdrawal", i, len(tab.Peers))
		}
		owner := uint16(0xffff)
		for _, r := range tab.Routes {
			if r.Prefix.IP == [4]byte{10, 200, 3, 0} {
				owner = r.Peer
			}
		}
		if owner != tables[0].Peers[0].ID {
			t.Fatalf("cable-%d: 10.200.3.0/24 owned by peer %d, want backup %d",
				i, owner, tables[0].Peers[0].ID)
		}
		if got := meshPeers(t, d); len(got) != 1 {
			t.Fatalf("cable-%d datapath still holds %d peers", i, len(got))
		}
	}
}
