package flexsfp

// Cross-package integration tests: full topologies with hosts, fibers,
// switches and modules wired through the event simulator, exercising the
// public API the way the examples do.

import (
	"encoding/binary"
	"strings"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/bitstream"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/switchsim"
	"flexsfp/internal/trafficgen"
)

const igTenGig = 10_000_000_000

// TestEndToEndPathThroughFibers wires host ↔ FlexSFP ↔ fiber ↔ FlexSFP ↔
// host and verifies symmetric NAT translation across the span with real
// link serialization.
func TestEndToEndPathThroughFibers(t *testing.T) {
	sim := NewSim(1)

	left, _, err := BuildModule(sim, ModuleSpec{
		Name: "left", DeviceID: 1, Shell: TwoWayCore, App: "nat",
		Config: apps.NATConfig{
			Direction: "edge-to-optical",
			Mappings:  []apps.NATMapping{{Internal: "192.168.0.2", External: "203.0.113.2"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	right, _, err := BuildModule(sim, ModuleSpec{
		Name: "right", DeviceID: 2, Shell: TwoWayCore, App: "sanitize",
		Config: apps.SanitizeConfig{VerifyChecksums: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fiber between the two optical sides.
	lr := netsim.NewLink(sim, igTenGig, 500, right.RxOptical)
	rl := netsim.NewLink(sim, igTenGig, 500, left.RxOptical)
	left.SetTx(core.PortOptical, func(b []byte) { lr.Send(b) })
	right.SetTx(core.PortOptical, func(b []byte) { rl.Send(b) })

	// Hosts on the edges.
	var rightHostRx [][]byte
	right.SetTx(core.PortEdge, func(b []byte) { rightHostRx = append(rightHostRx, b) })
	var leftHostRx [][]byte
	left.SetTx(core.PortEdge, func(b []byte) { leftHostRx = append(leftHostRx, b) })

	frame := packet.MustBuild(packet.Spec{
		SrcMAC: packet.MustMAC("02:00:00:00:00:11"),
		DstMAC: packet.MustMAC("02:00:00:00:00:22"),
		SrcIP:  mustAddr("192.168.0.2"), DstIP: mustAddr("198.51.100.9"),
		SrcPort: 5000, DstPort: 443, PadTo: 128,
	})
	left.RxEdge(frame)
	sim.Run()

	if len(rightHostRx) != 1 {
		t.Fatalf("right host got %d frames", len(rightHostRx))
	}
	pkt := packet.NewPacket(rightHostRx[0], packet.LayerTypeEthernet)
	ip := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if ip.SrcIP != mustAddr("203.0.113.2") {
		t.Errorf("src after NAT = %v", ip.SrcIP)
	}
	// The sanitizer verified the NAT-updated checksum: no drops.
	if d := right.Engine().Stats().Drop; d != 0 {
		t.Errorf("sanitizer dropped %d frames (checksum fixup broken?)", d)
	}
}

// TestOTAUnderTraffic verifies the §4.2 reprogramming FSM under load:
// frames flowing during a reboot are dropped and counted, then service
// resumes with the new app.
func TestOTAUnderTraffic(t *testing.T) {
	sim := NewSim(2)
	mod, _, err := BuildModule(sim, ModuleSpec{
		Name: "dut", DeviceID: 3, Shell: TwoWayCore, App: "nat",
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered uint64
	mod.SetTx(core.PortOptical, func([]byte) { delivered++ })
	mod.SetTx(core.PortEdge, func([]byte) {})
	agent := mgmt.NewAgent(mod)
	client := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		return agent.Handle(req), nil
	}))

	// Continuous traffic at 100 kpps.
	gen := trafficgen.New(sim, trafficgen.Config{PPS: 100_000},
		func(b []byte) bool { mod.RxEdge(b); return true })
	gen.Run(0)

	// Mid-stream, push an ACL image and reboot into it.
	sim.Schedule(10*netsim.Millisecond, func() {
		app, _ := apps.NewRegistry().New("acl")
		d, cerr := hls.Compile(app.Program(), hls.Options{
			ClockHz: BaseClockHz, DatapathBits: BaseDatapathBits,
		})
		if cerr != nil {
			t.Error(cerr)
			return
		}
		enc, _ := d.Bitstream.Encode()
		if perr := client.PushBitstream(bitstream.Sign(enc, DefaultAuthKey), 2, true); perr != nil {
			t.Error(perr)
		}
	})
	sim.RunFor(100 * netsim.Millisecond)
	gen.Stop()
	sim.Run()

	if !mod.Running() || mod.ActiveSlot() != 2 {
		t.Fatalf("running=%v slot=%d", mod.Running(), mod.ActiveSlot())
	}
	st := mod.Stats()
	// Reboot outage ≈ 30 ms of 100 kpps ≈ 3000 frames dropped.
	if st.RebootDrops < 2000 || st.RebootDrops > 4500 {
		t.Errorf("reboot drops = %d, want ≈3000", st.RebootDrops)
	}
	// Service resumed: traffic delivered after the reboot window.
	if delivered == 0 || delivered+st.RebootDrops < gen.Sent-100 {
		t.Errorf("delivered %d + drops %d vs sent %d", delivered, st.RebootDrops, gen.Sent)
	}
	if mod.App().Program().Name != "acl" {
		t.Errorf("app after OTA = %s", mod.App().Program().Name)
	}
}

// TestActiveCoreFlowExport runs the §4.1 Active-Core vision end to end:
// a module accounts flows in the data plane while its control plane
// originates NetFlow-style export datagrams out the dedicated port.
func TestActiveCoreFlowExport(t *testing.T) {
	sim := NewSim(3)
	mod, _, err := BuildModule(sim, ModuleSpec{
		Name: "exporter", DeviceID: 77, Shell: ActiveCore, App: "netflow",
	})
	if err != nil {
		t.Fatal(err)
	}
	mod.SetTx(core.PortOptical, func([]byte) {})
	mod.SetTx(core.PortEdge, func([]byte) {})

	// Collector on the control port.
	var got []mgmt.FlowRecord
	var fromDevice uint32
	mod.SetTx(core.PortControl, func(b []byte) {
		pkt := packet.NewPacket(b, packet.LayerTypeEthernet)
		udp, ok := pkt.Layer(packet.LayerTypeUDP).(*packet.UDP)
		if !ok || udp.DstPort != 2055 {
			return
		}
		dev, _, recs, perr := mgmt.ParseExport(udp.LayerPayload())
		if perr != nil {
			t.Error(perr)
			return
		}
		fromDevice = dev
		got = append(got, recs...)
	})

	// Traffic: 8 flows.
	gen := trafficgen.New(sim, trafficgen.Config{PPS: 100_000, Flows: 8},
		func(b []byte) bool { mod.RxEdge(b); return true })
	gen.Run(2000)

	// Periodic exporter bridging the app's records.
	nf := mod.App().(interface{ Export() []apps.FlowStat })
	exp := mgmt.NewFlowExporter(sim, mod)
	exp.Start(25*netsim.Millisecond, mgmt.FlowSourceFunc(func() []mgmt.FlowRecord {
		stats := nf.Export()
		out := make([]mgmt.FlowRecord, len(stats))
		for i, s := range stats {
			out[i] = mgmt.FlowRecord{Key: s.Key, Packets: s.Packets, Bytes: s.Bytes}
		}
		return out
	}))
	sim.RunFor(60 * netsim.Millisecond)
	exp.Stop()
	sim.Run()

	if fromDevice != 77 {
		t.Errorf("export device = %d", fromDevice)
	}
	if exp.Packets == 0 || exp.Exported == 0 {
		t.Fatalf("exporter sent %d packets / %d records", exp.Packets, exp.Exported)
	}
	// Two export rounds × 8 flows.
	if len(got) != 16 {
		t.Errorf("collector got %d records, want 16", len(got))
	}
	var total uint64
	seen := map[string]bool{}
	for _, r := range got {
		seen[string(r.Key)] = true
		total += r.Packets
	}
	if len(seen) != 8 {
		t.Errorf("distinct flows = %d, want 8", len(seen))
	}
	if total < 2000 {
		t.Errorf("cumulative exported packets = %d, want ≥2000", total)
	}
}

// TestMonitorDetectsMicroburstInTopology drives a microburst through a
// monitor-equipped module inside the simulator.
func TestMonitorDetectsMicroburstInTopology(t *testing.T) {
	sim := NewSim(4)
	mod, _, err := BuildModule(sim, ModuleSpec{
		Name: "probe", DeviceID: 5, Shell: TwoWayCore, App: "monitor",
		Config: apps.MonitorConfig{BurstFrames: 50, BurstWindowNs: 10_000, GapNs: 5_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	mod.SetTx(core.PortOptical, func([]byte) {})
	mod.SetTx(core.PortEdge, func([]byte) {})

	// Background traffic at 1 Mpps (1 µs spacing: never 50 frames/10 µs).
	bg := trafficgen.New(sim, trafficgen.Config{PPS: 1_000_000},
		func(b []byte) bool { mod.RxEdge(b); return true })
	bg.Run(0)

	// A microburst at t = 5 ms: 100 frames back to back at line rate.
	sim.Schedule(5*netsim.Millisecond, func() {
		for i := 0; i < 100; i++ {
			i := i
			sim.Schedule(netsim.Duration(i*68), func() {
				mod.RxEdge(packet.MustBuild(packet.Spec{
					SrcMAC: packet.MustMAC("02:00:00:00:00:31"),
					DstMAC: packet.MustMAC("02:00:00:00:00:32"),
					SrcIP:  mustAddr("10.9.9.9"), DstIP: mustAddr("10.8.8.8"),
					SrcPort: 7, DstPort: 8, PadTo: 64,
				}))
			})
		}
	})
	// A link flap: silence from 8 ms to 20 ms.
	sim.Schedule(8*netsim.Millisecond, func() { bg.Stop() })
	sim.RunFor(20 * netsim.Millisecond)
	bg2 := trafficgen.New(sim, trafficgen.Config{PPS: 1_000_000},
		func(b []byte) bool { mod.RxEdge(b); return true })
	bg2.Run(100)
	sim.RunFor(5 * netsim.Millisecond)

	mon := mod.App().(interface{ Events() []apps.MonitorEvent })
	events := mon.Events()
	var bursts, flaps int
	for _, e := range events {
		switch e.Kind {
		case "microburst":
			bursts++
		case "flap":
			flaps++
		}
	}
	if bursts == 0 {
		t.Error("microburst not detected")
	}
	if flaps == 0 {
		t.Error("link flap not detected")
	}
}

// TestRetrofitFleetOnSwitch provisions a 8-port switch fully populated
// with FlexSFPs managed over in-band control, and checks fleet-wide stats
// collection — the "centralized orchestration across a fleet" of §4.1.
func TestRetrofitFleetOnSwitch(t *testing.T) {
	sim := NewSim(5)
	sw := switchsim.New(sim, "fleet-sw", 8)
	var mods []*core.Module
	var hosts []*switchsim.Host
	for i := 0; i < 8; i++ {
		mod, _, err := BuildModule(sim, ModuleSpec{
			Name: "port", DeviceID: uint32(100 + i), Shell: TwoWayCore, App: "netflow",
		})
		if err != nil {
			t.Fatal(err)
		}
		mgmt.NewAgent(mod)
		sw.Cage(i).Insert(mod)
		h := switchsim.NewHost("h", packet.MAC{2, 0, 0, 0, 9, byte(i + 1)})
		switchsim.Fiber(sim, sw.Cage(i), h, igTenGig, 100)
		mods = append(mods, mod)
		hosts = append(hosts, h)
	}
	// Cross traffic between hosts 0↔1.
	for i := 0; i < 10; i++ {
		hosts[0].Send(packet.MustBuild(packet.Spec{
			SrcMAC: hosts[0].MAC, DstMAC: hosts[1].MAC,
			SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
			SrcPort: uint16(1000 + i), DstPort: 80, PadTo: 64,
		}))
	}
	sim.Run()
	if hosts[1].RxFrames != 10 {
		t.Fatalf("h1 rx = %d", hosts[1].RxFrames)
	}

	// Fleet sweep: ping every module in-band through its control frame
	// path (simulating the orchestrator reaching each port).
	alive := 0
	for _, mod := range mods {
		var resp []byte
		prevTx := captureControl(mod, &resp)
		req := mgmt.Message{Type: mgmt.MsgPing, ReqID: 9}.Encode()
		buf := packet.NewSerializeBuffer()
		pl := packet.Payload(req)
		_ = packet.SerializeLayers(buf, packet.SerializeOptions{},
			&packet.Ethernet{SrcMAC: packet.MAC{2, 0xee, 0, 0, 0, 1}, DstMAC: mod.MAC(),
				EtherType: packet.EtherTypeFlexControl}, &pl)
		mod.RxEdge(append([]byte(nil), buf.Bytes()...))
		if resp != nil {
			if msg, err := mgmt.DecodeMessage(resp); err == nil && msg.Type == mgmt.MsgOK {
				alive++
			}
		}
		mod.SetTx(core.PortEdge, prevTx)
	}
	if alive != 8 {
		t.Errorf("fleet sweep reached %d of 8 modules", alive)
	}
}

// captureControl temporarily redirects a module's edge TX to capture one
// control response payload; returns a replacement sink.
func captureControl(mod *core.Module, out *[]byte) func([]byte) {
	sink := func([]byte) {}
	mod.SetTx(core.PortEdge, func(b []byte) {
		var eth packet.Ethernet
		if eth.DecodeFromBytes(b) == nil && eth.EtherType == packet.EtherTypeFlexControl {
			*out = append([]byte(nil), eth.LayerPayload()...)
		}
	})
	return sink
}

// TestStandardVsFlexLatency quantifies the added in-cable processing
// latency against a plain SFP — the §6 "latency overhead" question.
func TestStandardVsFlexLatency(t *testing.T) {
	measure := func(useFlex bool) netsim.Duration {
		sim := NewSim(6)
		var rx netsim.Time
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: packet.MustMAC("02:00:00:00:00:41"),
			DstMAC: packet.MustMAC("02:00:00:00:00:42"),
			SrcIP:  mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
			SrcPort: 1, DstPort: 2, PadTo: 64,
		})
		if useFlex {
			mod, _, err := BuildModule(sim, ModuleSpec{
				Name: "m", DeviceID: 1, Shell: TwoWayCore, App: "nat",
			})
			if err != nil {
				t.Fatal(err)
			}
			mod.SetTx(core.PortOptical, func(b []byte) { rx = sim.Now() })
			mod.RxEdge(frame)
		} else {
			sfp := core.NewStandardSFP(sim)
			sfp.SetTx(core.PortOptical, func(b []byte) { rx = sim.Now() })
			sfp.RxEdge(frame)
		}
		sim.Run()
		return netsim.Duration(rx)
	}
	plain := measure(false)
	flex := measure(true)
	if flex <= plain {
		t.Fatalf("flex latency %v not above plain %v", flex, plain)
	}
	// The added latency is sub-microsecond — the §6 trade-off is cheap.
	if added := flex - plain; added > netsim.Microsecond {
		t.Errorf("added in-cable latency = %v, want < 1 µs", added)
	}
}

// TestTelemetryPathOverLinks runs source→transit→sink over fibers and
// checks hop timestamps are ordered and spaced by the link delays.
func TestTelemetryPathOverLinks(t *testing.T) {
	sim := NewSim(7)
	var mods []*core.Module
	for i, role := range []string{"source", "transit", "sink"} {
		mod, _, err := BuildModule(sim, ModuleSpec{
			Name: role, DeviceID: uint32(i + 1), Shell: TwoWayCore, App: "telemetry",
			Config: apps.TelemetryConfig{Role: role, DeviceID: uint32(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, mod)
	}
	l01 := netsim.NewLink(sim, igTenGig, 1000, mods[1].RxEdge)
	l12 := netsim.NewLink(sim, igTenGig, 5000, mods[2].RxEdge)
	mods[0].SetTx(core.PortOptical, func(b []byte) { l01.Send(b) })
	mods[1].SetTx(core.PortOptical, func(b []byte) { l12.Send(b) })
	delivered := 0
	mods[2].SetTx(core.PortOptical, func(b []byte) { delivered++ })
	for _, m := range mods {
		m.SetTx(core.PortEdge, func([]byte) {})
	}

	mods[0].RxEdge(packet.MustBuild(packet.Spec{
		SrcMAC: packet.MustMAC("02:00:00:00:00:51"),
		DstMAC: packet.MustMAC("02:00:00:00:00:52"),
		SrcIP:  mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		SrcPort: 1, DstPort: 2, PadTo: 128,
	}))
	sim.Run()

	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	sink := mods[2].App().(interface{ Paths() []apps.PathRecord })
	paths := sink.Paths()
	if len(paths) != 1 || len(paths[0].Hops) != 3 {
		t.Fatalf("paths = %+v", paths)
	}
	h := paths[0].Hops
	if !(h[0].TimestampNs < h[1].TimestampNs && h[1].TimestampNs < h[2].TimestampNs) {
		t.Errorf("hop timestamps not ordered: %d %d %d",
			h[0].TimestampNs, h[1].TimestampNs, h[2].TimestampNs)
	}
	// Second hop gap includes the 5 µs fiber.
	if gap := h[2].TimestampNs - h[1].TimestampNs; gap < 5000 {
		t.Errorf("sink hop gap = %d ns, want ≥ 5 µs link delay", gap)
	}
}

// TestVerdictNameStrings pins the public string forms used in reports.
func TestVerdictNameStrings(t *testing.T) {
	if OneWayFilter.String() != "one-way-filter" || ActiveCore.String() != "active-core" {
		t.Error("shell names changed")
	}
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], 1)
	if !strings.Contains(FormFactorExperiment().Render(), "QSFP") {
		t.Error("form-factor render missing modules")
	}
}
