// Package ppe implements the FlexSFP Packet Processing Engine: the
// programming model applications are written against (an XDP-like verdict
// model over declarative parse/match-action structure, §4.2) and the
// runtime that executes compiled pipelines with cycle accounting derived
// from the datapath width and clock, so line-rate claims are executed
// rather than assumed.
//
// A Program carries two views of an application:
//
//   - a declarative structure (parsed layers, tables, actions, stages)
//     from which the HLS estimator computes FPGA resources and from which
//     the runtime derives pipeline latency;
//   - a behavioral Handler, the Go model of the synthesized logic, which
//     transforms packets at simulation time.
package ppe

import (
	"errors"
	"fmt"

	"flexsfp/internal/packet"
)

// Verdict is the outcome of processing one frame (XDP-style).
type Verdict int

// Verdicts.
const (
	// VerdictPass forwards the frame to the opposite interface.
	VerdictPass Verdict = iota
	// VerdictDrop discards the frame.
	VerdictDrop
	// VerdictTx bounces the frame back out its ingress interface.
	VerdictTx
	// VerdictRedirect sends the frame out the interface selected in
	// Ctx.RedirectPort.
	VerdictRedirect
	// VerdictToCPU punts the frame to the embedded control plane.
	VerdictToCPU
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictDrop:
		return "drop"
	case VerdictTx:
		return "tx"
	case VerdictRedirect:
		return "redirect"
	case VerdictToCPU:
		return "to-cpu"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Direction is the frame's direction of travel through the module.
type Direction int

// Directions.
const (
	// DirEdgeToOptical is host/switch → fiber.
	DirEdgeToOptical Direction = iota
	// DirOpticalToEdge is fiber → host/switch.
	DirOpticalToEdge
)

func (d Direction) String() string {
	if d == DirEdgeToOptical {
		return "edge->optical"
	}
	return "optical->edge"
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction { return 1 - d }

// Ctx is the per-packet context handed to a Handler. Data is mutable; a
// handler that grows or shrinks the frame replaces Data.
type Ctx struct {
	Data        []byte
	Dir         Direction
	TimestampNs uint64
	// RedirectPort selects the egress interface for VerdictRedirect:
	// 0 = edge, 1 = optical, 2 = control-plane port (ActiveCore only).
	RedirectPort int
	// TraceID carries the frame's packet-trace identity through the
	// pipeline (0 = frame not sampled / tracing disabled). Set by the
	// engine at submission from the ambient tracer register.
	TraceID uint64
}

// Handler is the behavioral model of a compiled packet function.
type Handler interface {
	// HandlePacket processes one frame in place and returns a verdict.
	HandlePacket(ctx *Ctx) Verdict
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Ctx) Verdict

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(ctx *Ctx) Verdict { return f(ctx) }

// TableKind selects the matching discipline of a table.
type TableKind int

// Table kinds.
const (
	// TableExact is an exact-match hash table, stored in LSRAM.
	TableExact TableKind = iota
	// TableTernary is a priority-ordered masked (TCAM-style) table,
	// stored in fabric registers — expensive per entry by design, which
	// keeps ACLs small (§5.3: large tables are out of scope).
	TableTernary
)

// TableSpec declares a match table for synthesis.
type TableSpec struct {
	Name      string
	Kind      TableKind
	KeyBits   int
	ValueBits int
	Size      int // capacity in entries
}

// ActionKind identifies an action primitive for resource estimation.
type ActionKind int

// Action primitives.
const (
	// ActionRewrite overwrites a header field (Bits wide).
	ActionRewrite ActionKind = iota
	// ActionChecksum incrementally updates IPv4/L4 checksums.
	ActionChecksum
	// ActionHash computes a flow hash (Bits wide result).
	ActionHash
	// ActionPush inserts Bytes of header.
	ActionPush
	// ActionPop removes Bytes of header.
	ActionPop
	// ActionTimestamp captures/inserts a nanosecond timestamp.
	ActionTimestamp
	// ActionCounterBank is a bank of Count 64-bit counters.
	ActionCounterBank
	// ActionMeterBank is a bank of Count token-bucket meters.
	ActionMeterBank
)

// ActionSpec declares one action primitive instance.
type ActionSpec struct {
	Kind  ActionKind
	Bits  int // for Rewrite/Hash
	Bytes int // for Push/Pop
	Count int // for CounterBank/MeterBank
}

// RegisterSpec declares a stateful register (FlowBlaze-style per-app
// scratch state).
type RegisterSpec struct {
	Name string
	Bits int
}

// Program is a complete PPE application.
type Program struct {
	Name    string
	Version uint32
	// ParseLayers lists the headers the parser must extract, outermost
	// first (determines parser resources and depth).
	ParseLayers []packet.LayerType
	Tables      []TableSpec
	Registers   []RegisterSpec
	Actions     []ActionSpec
	// Stages is the number of match-action stages (the paper keeps
	// chains compact: about 3–4 stages in a Two-Way-Core, §5.3).
	Stages int
	// ProgCycles, when non-zero, marks the program as executing on a
	// sequential soft core (the hXDP-class eBPF datapath) that needs this
	// many clock cycles per packet. The pipeline input is then occupied
	// for max(streaming words, ProgCycles) cycles, so instruction-bound
	// programs saturate below wire rate until an optimizer compacts and
	// packs them. Zero means fully pipelined match-action logic whose
	// service time is set by header streaming alone.
	ProgCycles int
	// Handler is the behavioral model; nil programs are structure-only
	// (useful for synthesis studies).
	Handler Handler
}

// Validation errors.
var (
	ErrNoName        = errors.New("ppe: program has no name")
	ErrNoStages      = errors.New("ppe: program needs at least one stage")
	ErrBadProgCycles = errors.New("ppe: negative ProgCycles")
	ErrBadTable      = errors.New("ppe: invalid table spec")
	ErrBadAction     = errors.New("ppe: invalid action spec")
	ErrBadRegister   = errors.New("ppe: invalid register spec")
)

// Validate checks the declarative structure.
func (p *Program) Validate() error {
	if p.Name == "" {
		return ErrNoName
	}
	if p.Stages < 1 {
		return ErrNoStages
	}
	if p.ProgCycles < 0 {
		return fmt.Errorf("%w: %d", ErrBadProgCycles, p.ProgCycles)
	}
	for _, t := range p.Tables {
		if t.Name == "" || t.KeyBits <= 0 || t.ValueBits < 0 || t.Size <= 0 {
			return fmt.Errorf("%w: %+v", ErrBadTable, t)
		}
		if t.Kind == TableTernary && t.Size > 4096 {
			return fmt.Errorf("%w: ternary table %q with %d entries (register-based TCAM caps at 4096)",
				ErrBadTable, t.Name, t.Size)
		}
	}
	for _, a := range p.Actions {
		switch a.Kind {
		case ActionRewrite, ActionHash:
			if a.Bits <= 0 {
				return fmt.Errorf("%w: %+v needs Bits", ErrBadAction, a)
			}
		case ActionPush, ActionPop:
			if a.Bytes <= 0 {
				return fmt.Errorf("%w: %+v needs Bytes", ErrBadAction, a)
			}
		case ActionCounterBank, ActionMeterBank:
			if a.Count <= 0 {
				return fmt.Errorf("%w: %+v needs Count", ErrBadAction, a)
			}
		case ActionChecksum, ActionTimestamp:
			// No parameters.
		default:
			return fmt.Errorf("%w: unknown kind %d", ErrBadAction, a.Kind)
		}
	}
	for _, r := range p.Registers {
		if r.Name == "" || r.Bits <= 0 {
			return fmt.Errorf("%w: %+v", ErrBadRegister, r)
		}
	}
	return nil
}

// ParserHeaderBytes returns the total header bytes the parser extracts,
// using canonical (option-free) header sizes.
func (p *Program) ParserHeaderBytes() int {
	total := 0
	for _, lt := range p.ParseLayers {
		total += HeaderBytes(lt)
	}
	return total
}

// HeaderBytes returns the canonical (option-free) wire size of a header,
// used for parser resource estimation and pipeline-depth accounting.
func HeaderBytes(lt packet.LayerType) int {
	switch lt {
	case packet.LayerTypeEthernet:
		return 14
	case packet.LayerTypeDot1Q, packet.LayerTypeMPLS:
		return 4
	case packet.LayerTypeARP:
		return 28
	case packet.LayerTypeIPv4:
		return 20
	case packet.LayerTypeIPv6:
		return 40
	case packet.LayerTypeTCP:
		return 20
	case packet.LayerTypeUDP, packet.LayerTypeICMPv4, packet.LayerTypeVXLAN:
		return 8
	case packet.LayerTypeGRE:
		return 4
	case packet.LayerTypeDNS:
		return 12
	case packet.LayerTypeDHCPv4:
		// The parser extracts the fixed BOOTP fields through chaddr
		// (op..flags 12, four addresses 16, chaddr 16); sname/file stream
		// past unparsed.
		return 44
	case packet.LayerTypeINT:
		return 4
	default:
		return 8
	}
}

// PipelineDepth returns the pipeline depth in cycles: parser (one cycle
// per datapath word of extracted headers), two cycles per match-action
// stage (match + action), and a deparser/realign cycle.
func (p *Program) PipelineDepth(datapathBits int) int {
	words := (p.ParserHeaderBytes()*8 + datapathBits - 1) / datapathBits
	if words < 1 {
		words = 1
	}
	return words + 2*p.Stages + 1
}
