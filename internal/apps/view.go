// Package apps implements the paper's use-case catalog (§3) against the
// PPE programming model: the §5.1 NAT case study, per-port firewalling,
// VLAN/QinQ tagging, GRE/VXLAN/IP-in-IP tunneling, Katran-style L4 load
// balancing, INT-style in-band telemetry, NetFlow-like flow accounting,
// per-source rate limiting, DNS/DoH filtering, packet sanitization, and
// the edge-protocol trio (ARP-spoof guard, DHCP snooping, DNS blocking).
//
// Each application is a core.App: a declarative ppe.Program (from which
// the HLS estimator prices the design) plus a behavioral handler that
// mutates raw frames in place, the way the synthesized pipeline would.
//
// All header access goes through the shared packet.View — the software
// model of the hardware parser stage — so every app reads the same
// offsets the traffic generator and the XDP datapath do. The private
// per-app parser this package used to carry is gone.
package apps

import (
	"flexsfp/internal/core"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// FiveTupleKeyBits is the ACL/LB/flow key width (re-exported from the
// shared parser for existing table-spec call sites).
const FiveTupleKeyBits = packet.FiveTupleKeyBits

// dirEnabled reports whether a packet traveling d should be processed
// under an app's configured direction filter ("both" by default).
func dirEnabled(cfg string, d ppe.Direction) bool {
	switch cfg {
	case "edge-to-optical":
		return d == ppe.DirEdgeToOptical
	case "optical-to-edge":
		return d == ppe.DirOpticalToEdge
	default:
		return true
	}
}

// All apps implement core.App.
var _ core.App = (*natApp)(nil)
