package paper

// The -telemetry knob must be purely additive: with it off (the default)
// result envelopes marshal byte-identically to the pre-telemetry
// harness, and with it on the same run gains counter fields that agree
// with the traffic the experiment actually carried.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flexsfp/internal/exp"
)

// runLinerateByName drives the registered experiment exactly as
// flexsfp-bench would.
func runLinerateByName(t *testing.T, ctx exp.RunContext) (exp.Result, error) {
	t.Helper()
	e, ok := exp.Default.Lookup("linerate")
	if !ok {
		t.Fatal("linerate not registered")
	}
	return e.Run(ctx)
}

func TestLineRateTelemetryOff(t *testing.T) {
	res, err := runLinerateByName(t, exp.RunContext{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	env := res.Envelope()
	blob, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	// No telemetry key may appear anywhere in the default envelope —
	// params echo, summary metrics, or detail points.
	if strings.Contains(strings.ToLower(string(blob)), "telemetry") {
		t.Fatalf("default envelope leaks telemetry fields:\n%s", blob)
	}

	// Determinism: the instrumented build with the flag off must still
	// produce byte-identical envelopes run to run.
	res2, err := runLinerateByName(t, exp.RunContext{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := json.Marshal(res2.Envelope())
	if !bytes.Equal(blob, blob2) {
		t.Fatal("telemetry-off envelope not reproducible")
	}
}

func TestLineRateTelemetryOn(t *testing.T) {
	res, err := runLinerateByName(t, exp.RunContext{Seed: 3, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	env := res.Envelope()
	if !env.Params.Telemetry {
		t.Fatal("params echo lost the telemetry flag")
	}
	detail, ok := env.Detail.(LineRateResult)
	if !ok {
		t.Fatalf("detail is %T", env.Detail)
	}
	for _, p := range detail.Points {
		if p.Telemetry == nil {
			t.Fatalf("point %s missing telemetry", p.Label)
		}
		// The PPE saw every frame the wire delivered minus queue drops;
		// at minimum the counter must be alive and byte counts coherent.
		if p.Telemetry.FramesIn == 0 || p.Telemetry.BytesIn == 0 {
			t.Fatalf("point %s counters empty: %+v", p.Label, p.Telemetry)
		}
		if p.Telemetry.MeanLatencyNs <= 0 || p.Telemetry.MaxLatencyNs == 0 {
			t.Fatalf("point %s latency empty: %+v", p.Label, p.Telemetry)
		}
		if p.FrameSize > 0 {
			if want := p.Telemetry.FramesIn * uint64(p.FrameSize); p.Telemetry.BytesIn != want {
				t.Fatalf("point %s bytes_in = %d, want frames*size = %d",
					p.Label, p.Telemetry.BytesIn, want)
			}
		}
	}

	var frames float64
	for _, m := range env.Metrics {
		if m.Name == "telemetry_frames_in" {
			frames = m.Mean
		}
	}
	if frames == 0 {
		t.Fatalf("summary metrics missing telemetry_frames_in: %+v", env.Metrics)
	}

	// Identical knobs aside from telemetry must not change the measured
	// experiment results (instrumentation is passive).
	bare, err := runLinerateByName(t, exp.RunContext{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bareDetail := bare.Envelope().Detail.(LineRateResult)
	for i, p := range detail.Points {
		b := bareDetail.Points[i]
		if p.DeliveredPPS != b.DeliveredPPS || p.Drops != b.Drops || p.GoodputGbps != b.GoodputGbps {
			t.Fatalf("instrumentation perturbed point %s: %+v vs %+v", p.Label, p, b)
		}
	}
}
