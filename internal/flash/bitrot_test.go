package flash

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFlipBits(t *testing.T) {
	d := New()
	blob := make([]byte, 4096) // erased-then-programmed zeros
	if _, err := d.WriteBlob(0, blob); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := d.FlipBits(0, len(blob), 12, rng.Intn); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(0, len(blob))
	if err != nil {
		t.Fatal(err)
	}
	set := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			set++
		}
	}
	// Bits can collide (a bit flipped twice reverts), so the count is
	// bounded above by the request but must not be zero.
	if set == 0 || set > 12 {
		t.Errorf("flipped %d bits, want 1..12", set)
	}

	// Unlike CorruptRange, FlipBits may SET bits in programmed cells:
	// flip over an all-ones region and look for any byte change.
	ones := bytes.Repeat([]byte{0xFF}, 4096)
	if _, err := d.WriteBlob(SectorSize, ones); err != nil {
		t.Fatal(err)
	}
	if err := d.FlipBits(SectorSize, len(ones), 4, rng.Intn); err != nil {
		t.Fatal(err)
	}
	got2, _, _ := d.Read(SectorSize, len(ones))
	if bytes.Equal(got2, ones) {
		t.Error("FlipBits left an all-ones region untouched")
	}

	if err := d.FlipBits(SizeBytes-1, 2, 1, rng.Intn); err == nil {
		t.Error("out-of-range flip succeeded")
	}
	if err := d.FlipBits(0, 0, 5, rng.Intn); err != nil {
		t.Errorf("zero-length flip: %v", err)
	}
}
