package reliability

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func TestLognormalTTFStatistics(t *testing.T) {
	m := DefaultVCSEL()
	rng := rand.New(rand.NewSource(1))
	n := 20000
	var logs []float64
	below := 0
	for i := 0; i < n; i++ {
		ttf := m.SampleTTFYears(rng)
		if ttf < m.MedianYears {
			below++
		}
		logs = append(logs, math.Log(ttf))
	}
	// Median property: ≈50% below the median.
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below median = %.3f", frac)
	}
	// Log-scale standard deviation ≈ sigma.
	var mean, sum2 float64
	for _, l := range logs {
		mean += l
	}
	mean /= float64(n)
	for _, l := range logs {
		sum2 += (l - mean) * (l - mean)
	}
	sd := math.Sqrt(sum2 / float64(n))
	if math.Abs(sd-m.Sigma) > 0.03 {
		t.Errorf("log-sd = %.3f, want %.2f", sd, m.Sigma)
	}
}

func TestDegradationRamp(t *testing.T) {
	m := DefaultVCSEL()
	if m.DegradationAt(0, 10) != 0 {
		t.Error("new laser degraded")
	}
	if m.DegradationAt(10, 10) != 1 {
		t.Error("end-of-life laser not fully degraded")
	}
	// Gradual: at half life the loss is small (0.5^4 ≈ 6%).
	if d := m.DegradationAt(5, 10); d > 0.1 {
		t.Errorf("half-life degradation = %.3f, want gradual", d)
	}
	// Steep finish: at 90% life, substantial loss.
	if d := m.DegradationAt(9, 10); d < 0.5 {
		t.Errorf("late-life degradation = %.3f, want steep", d)
	}
}

func TestDegradationMonotoneProperty(t *testing.T) {
	m := DefaultVCSEL()
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		for x > 20 {
			x /= 10
		}
		for y > 20 {
			y /= 10
		}
		if x > y {
			x, y = y, x
		}
		return m.DegradationAt(x, 20) <= m.DegradationAt(y, 20)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFleetReport(t *testing.T) {
	rep := RunFleet(11, DefaultVCSEL(), DefaultFleet())
	if rep.Modules != 10000 {
		t.Fatalf("modules = %d", rep.Modules)
	}
	// Median 12y, horizon 10y: a substantial minority fails in-horizon.
	frac := float64(rep.Failures) / float64(rep.Modules)
	if frac < 0.15 || frac > 0.50 {
		t.Errorf("failure fraction = %.3f, want ≈0.3", frac)
	}
	if rep.MTTFYears < 10 || rep.MTTFYears > 18 {
		t.Errorf("MTTF = %.1f years", rep.MTTFYears)
	}
	if rep.P10Years >= rep.P90Years {
		t.Error("percentiles inverted")
	}
	// Quarterly DDM sweeps catch nearly every gradual wear-out before
	// the link dies.
	detected := float64(rep.DetectedEarly) / float64(rep.Failures)
	if detected < 0.95 {
		t.Errorf("early detection = %.2f, want ≥0.95 with quarterly sweeps", detected)
	}
}

func TestReplacementEconomics(t *testing.T) {
	rep := RunFleet(11, DefaultVCSEL(), DefaultFleet())
	// Laser repair on FlexSFPs saves most of the whole-module cost.
	if rep.LaserRepairSavingFrac < 0.7 {
		t.Errorf("laser-repair saving = %.2f", rep.LaserRepairSavingFrac)
	}
	if rep.FlexLaserRepairUSD >= rep.FlexModuleSwapCostUSD {
		t.Error("component repair not cheaper than module swap")
	}
	// For cheap SFPs, module swap is cheaper than any repair would be.
	if rep.StandardSwapCostUSD >= rep.FlexModuleSwapCostUSD {
		t.Error("standard swap should be the cheapest absolute strategy")
	}
}

func TestComponentRepairViability(t *testing.T) {
	cfg := DefaultFleet()
	// §5.3: viable for the FlexSFP, not for a $10 SFP.
	if !ComponentRepairViable(cfg.FlexSFPUnitUSD, cfg.LaserSubassemblyUSD, cfg.RepairLaborUSD) {
		t.Error("laser repair should be viable for FlexSFP")
	}
	if ComponentRepairViable(cfg.StandardSFPUnitUSD, 8, cfg.RepairLaborUSD) {
		t.Error("laser repair should not be viable for a $10 SFP")
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := RunFleet(5, DefaultVCSEL(), DefaultFleet())
	b := RunFleet(5, DefaultVCSEL(), DefaultFleet())
	if a != b {
		t.Error("same seed produced different fleet reports")
	}
	c := RunFleet(6, DefaultVCSEL(), DefaultFleet())
	if a == c {
		t.Error("different seeds produced identical reports")
	}
}

func TestInspectionIntervalMatters(t *testing.T) {
	cfg := DefaultFleet()
	cfg.InspectionIntervalYears = 3 // rare sweeps miss the warning window
	rare := RunFleet(11, DefaultVCSEL(), cfg)
	frequent := RunFleet(11, DefaultVCSEL(), DefaultFleet())
	if rare.DetectedEarly >= frequent.DetectedEarly {
		t.Errorf("rare sweeps detected %d ≥ frequent %d", rare.DetectedEarly, frequent.DetectedEarly)
	}
}

// The sharded pool path must match the single-loop reference bit for bit,
// for any worker count and for fleets that don't divide evenly into
// shards.
func TestShardedFleetMatchesSerial(t *testing.T) {
	m := DefaultVCSEL()
	for _, modules := range []int{1, 100, 1023, 1024, 1025, 10000} {
		cfg := DefaultFleet()
		cfg.Modules = modules
		want := RunFleetSerial(11, m, cfg)
		for _, par := range []int{0, 1, 2, 8} {
			got := RunFleetParallel(11, m, cfg, par)
			if got != want {
				t.Fatalf("modules=%d parallelism=%d: sharded report diverged from serial:\n%+v\nvs\n%+v",
					modules, par, got, want)
			}
		}
	}
}

func TestFleetDeterminismAcrossGOMAXPROCS(t *testing.T) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	run := func(procs int) FleetReport {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return RunFleet(7, m, cfg)
	}
	if a, b := run(1), run(8); a != b {
		t.Fatalf("GOMAXPROCS changed the fleet report:\n%+v\nvs\n%+v", a, b)
	}
}

// Invalid configurations must yield a zero-value report instead of
// dividing by zero or producing NaN percentiles.
func TestFleetEdgeCaseConfigs(t *testing.T) {
	m := DefaultVCSEL()
	cases := []struct {
		name   string
		mutate func(*VCSELModel, *FleetConfig)
	}{
		{"zero-modules", func(m *VCSELModel, c *FleetConfig) { c.Modules = 0 }},
		{"negative-modules", func(m *VCSELModel, c *FleetConfig) { c.Modules = -5 }},
		{"zero-inspection-interval", func(m *VCSELModel, c *FleetConfig) { c.InspectionIntervalYears = 0 }},
		{"negative-inspection-interval", func(m *VCSELModel, c *FleetConfig) { c.InspectionIntervalYears = -1 }},
		{"zero-degradation-exponent", func(m *VCSELModel, c *FleetConfig) { m.DegradationExponent = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mm, cfg := m, DefaultFleet()
			tc.mutate(&mm, &cfg)
			for name, rep := range map[string]FleetReport{
				"RunFleet":       RunFleet(11, mm, cfg),
				"RunFleetSerial": RunFleetSerial(11, mm, cfg),
			} {
				if rep != (FleetReport{}) {
					t.Errorf("%s returned %+v, want zero report", name, rep)
				}
			}
			tr := RunFleetTrials(11, 4, mm, cfg, 0)
			if tr != (FleetTrialsReport{}) {
				t.Errorf("RunFleetTrials returned %+v, want zero report", tr)
			}
		})
	}
	// Tiny-but-valid fleets must not panic on percentile indexing.
	cfg := DefaultFleet()
	cfg.Modules = 1
	rep := RunFleet(11, m, cfg)
	if rep.Modules != 1 || math.IsNaN(rep.MTTFYears) {
		t.Errorf("single-module report = %+v", rep)
	}
}

func TestRunFleetTrials(t *testing.T) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	tr := RunFleetTrials(11, 8, m, cfg, 0)
	if tr.Trials != 8 || tr.Modules != cfg.Modules {
		t.Fatalf("trials report = %+v", tr)
	}
	// Seeds differ, so failure counts must vary across trials...
	if tr.Failures.Stddev == 0 {
		t.Error("independent seeds produced identical failure counts")
	}
	// ...but the mean must stay in the single-seed plausibility band.
	frac := tr.Failures.Mean / float64(cfg.Modules)
	if frac < 0.15 || frac > 0.50 {
		t.Errorf("mean failure fraction = %.3f", frac)
	}
	if tr.Failures.CI95() <= 0 || tr.Failures.CI95() > tr.Failures.Stddev {
		t.Errorf("CI95 = %.2f (stddev %.2f)", tr.Failures.CI95(), tr.Failures.Stddev)
	}
	// Deterministic: same root seed, any parallelism.
	again := RunFleetTrials(11, 8, m, cfg, 1)
	if tr != again {
		t.Error("trials report depends on parallelism")
	}
	if zero := RunFleetTrials(11, 0, m, cfg, 0); zero != (FleetTrialsReport{}) {
		t.Error("zero trials should yield zero report")
	}
}

// TestFleetShardedPDESMatchesSerial pins the netsim.Sharded execution of
// the fleet: partitions become events on shard heaps, but the partition
// seeding is RunFleet's, so the report must be bit-identical to the
// serial reference at every shard count — including fleets that don't
// divide evenly into partitions or shards.
func TestFleetShardedPDESMatchesSerial(t *testing.T) {
	m := DefaultVCSEL()
	for _, modules := range []int{1, 1023, 1024, 4096, 10000} {
		cfg := DefaultFleet()
		cfg.Modules = modules
		want := RunFleetSerial(11, m, cfg)
		for _, shards := range []int{0, 1, 2, 3, 4, 8} {
			got := RunFleetSharded(11, m, cfg, shards)
			if got != want {
				t.Fatalf("modules=%d shards=%d: PDES report diverged from serial:\n%+v\nvs\n%+v",
					modules, shards, got, want)
			}
		}
	}
	// Invalid config stays a zero-value report on the sharded path too.
	bad := DefaultFleet()
	bad.Modules = 0
	if got := RunFleetSharded(3, m, bad, 4); got != (FleetReport{}) {
		t.Fatalf("invalid config: got %+v, want zero report", got)
	}
}
