package packet

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
)

func TestViewBasicUDP(t *testing.T) {
	frame := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolUDP, SrcPort: 1234, DstPort: 80,
		Payload: []byte("hi"),
	})
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if !v.IsIPv4 || v.IsIPv6 || v.IsARP {
		t.Fatalf("family flags: %+v", v)
	}
	if v.L3Off != 14 || v.L4Off != 34 || v.L7Off != 42 {
		t.Fatalf("offsets: l3=%d l4=%d l7=%d", v.L3Off, v.L4Off, v.L7Off)
	}
	if v.Proto != IPProtocolUDP || v.SrcPort != 1234 || v.DstPort != 80 {
		t.Fatalf("proto/ports: %v %d %d", v.Proto, v.SrcPort, v.DstPort)
	}
	s4, d4 := ip1.As4(), ip2.As4()
	if !bytes.Equal(v.SrcIPv4(), s4[:]) || !bytes.Equal(v.DstIPv4(), d4[:]) {
		t.Fatal("address slices wrong")
	}
}

func TestViewVLANStack(t *testing.T) {
	frame := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB, VLANs: []uint16{5, 100},
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolTCP, SrcPort: 80, DstPort: 443,
	})
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if v.NVLAN != 2 || v.VLANEnd != 22 || v.L3Off != 22 {
		t.Fatalf("vlan accounting: %+v", v)
	}
	if v.Proto != IPProtocolTCP || v.SrcPort != 80 || v.DstPort != 443 {
		t.Fatalf("ports through VLANs: %+v", v)
	}
}

func TestViewARP(t *testing.T) {
	frame := MustBuildARP(ARPSpec{
		SrcMAC:   macA,
		SenderIP: ip1, TargetIP: ip2,
		PadTo: 64,
	})
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if !v.IsARP || v.IsIPv4 || v.IsIPv6 {
		t.Fatalf("flags: %+v", v)
	}
	if v.ARPOperation() != ARPRequest {
		t.Fatalf("operation: %d", v.ARPOperation())
	}
	s4, t4 := ip1.As4(), ip2.As4()
	if !bytes.Equal(v.ARPSenderIP(), s4[:]) || !bytes.Equal(v.ARPTargetIP(), t4[:]) {
		t.Fatal("ARP addresses wrong")
	}
	if !bytes.Equal(v.ARPSenderMAC(), macA[:]) {
		t.Fatal("ARP sender MAC wrong")
	}

	// A runt or non-Ethernet/IPv4 ARP is L2-valid but gets no ARP view,
	// matching the strict decoder.
	runt := append([]byte(nil), frame[:14+20]...)
	if !v.Parse(runt) || v.IsARP {
		t.Fatalf("runt ARP should parse without ARP view: %+v", v)
	}
	bad := append([]byte(nil), frame...)
	bad[14] = 9 // hardware type
	if !v.Parse(bad) || v.IsARP {
		t.Fatalf("non-Ethernet ARP should parse without ARP view: %+v", v)
	}
}

// buildIPv6Ext hand-assembles an Ethernet+IPv6 frame whose header chain
// passes through the given extension headers before a UDP header — the
// builder intentionally has no extension-header support, and the old
// apps-private view misparsed exactly these frames (it read the Next
// Header byte as the L4 protocol and the first extension header's bytes
// as ports).
func buildIPv6Ext(exts []IPProtocol, final IPProtocol, l4 []byte) []byte {
	var payload []byte
	for i, e := range exts {
		next := final
		if i+1 < len(exts) {
			next = exts[i+1]
		}
		switch e {
		case IPProtocolIPv6Fragment:
			frag := make([]byte, 8)
			frag[0] = byte(next)
			payload = append(payload, frag...)
		default:
			ext := make([]byte, 16)
			ext[0] = byte(next)
			ext[1] = 1 // (1+1)*8 = 16 bytes
			payload = append(payload, ext...)
		}
	}
	payload = append(payload, l4...)

	hdr := make([]byte, 14+40)
	copy(hdr[0:6], macB[:])
	copy(hdr[6:12], macA[:])
	binary.BigEndian.PutUint16(hdr[12:14], uint16(EtherTypeIPv6))
	hdr[14] = 6 << 4
	binary.BigEndian.PutUint16(hdr[18:20], uint16(len(payload)))
	first := final
	if len(exts) > 0 {
		first = exts[0]
	}
	hdr[20] = byte(first)
	hdr[21] = 64
	s16, d16 := ip61.As16(), ip62.As16()
	copy(hdr[22:38], s16[:])
	copy(hdr[38:54], d16[:])
	return append(hdr, payload...)
}

func udpHeader(src, dst uint16) []byte {
	h := make([]byte, 8)
	binary.BigEndian.PutUint16(h[0:2], src)
	binary.BigEndian.PutUint16(h[2:4], dst)
	binary.BigEndian.PutUint16(h[4:6], 8)
	return h
}

// TestViewIPv6ExtensionHeaders is the regression test for the parser bug
// the shared View fixes: any extension header used to yield garbage
// ports.
func TestViewIPv6ExtensionHeaders(t *testing.T) {
	cases := []struct {
		name string
		exts []IPProtocol
	}{
		{"none", nil},
		{"hop-by-hop", []IPProtocol{IPProtocolIPv6HopByHop}},
		{"routing", []IPProtocol{IPProtocolIPv6Routing}},
		{"dest-opts", []IPProtocol{IPProtocolIPv6DestOpts}},
		{"first-fragment", []IPProtocol{IPProtocolIPv6Fragment}},
		{"hbh+routing+dst", []IPProtocol{IPProtocolIPv6HopByHop, IPProtocolIPv6Routing, IPProtocolIPv6DestOpts}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := buildIPv6Ext(tc.exts, IPProtocolUDP, udpHeader(4242, 53))
			var v View
			if !v.Parse(frame) {
				t.Fatal("parse failed")
			}
			if !v.IsIPv6 {
				t.Fatal("not IPv6")
			}
			if v.Proto != IPProtocolUDP {
				t.Fatalf("proto = %v, want UDP (old parser reported the first extension header)", v.Proto)
			}
			if v.SrcPort != 4242 || v.DstPort != 53 {
				t.Fatalf("ports = %d/%d, want 4242/53 (old parser read extension-header bytes)", v.SrcPort, v.DstPort)
			}
			wantL4 := 14 + 40
			for _, e := range tc.exts {
				if e == IPProtocolIPv6Fragment {
					wantL4 += 8
				} else {
					wantL4 += 16
				}
			}
			if v.L4Off != wantL4 {
				t.Fatalf("l4Off = %d, want %d", v.L4Off, wantL4)
			}
		})
	}
}

func TestViewIPv6NonFirstFragmentHasNoPorts(t *testing.T) {
	frame := buildIPv6Ext(nil, IPProtocolIPv6Fragment, nil)
	// Append a fragment header with offset 185 pointing at UDP, then 8
	// bytes of mid-datagram payload that must NOT be read as ports.
	frag := make([]byte, 16)
	frag[0] = byte(IPProtocolUDP)
	binary.BigEndian.PutUint16(frag[2:4], 185<<3)
	frag[8], frag[9] = 0xde, 0xad
	frame = append(frame, frag...)
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if v.Proto != IPProtocolUDP {
		t.Fatalf("proto = %v", v.Proto)
	}
	if v.L4Off != 0 || v.SrcPort != 0 || v.DstPort != 0 {
		t.Fatalf("non-first fragment leaked an L4 view: %+v", v)
	}
}

func TestViewIPv6NoNextHeader(t *testing.T) {
	frame := buildIPv6Ext(nil, IPProtocolIPv6NoNext, nil)
	var v View
	if !v.Parse(frame) || !v.IsIPv6 {
		t.Fatal("parse failed")
	}
	if v.Proto != IPProtocolIPv6NoNext || v.L4Off != 0 {
		t.Fatalf("no-next-header: %+v", v)
	}
}

func TestViewIPv4Fragment(t *testing.T) {
	frame := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolUDP, SrcPort: 9, DstPort: 9,
	})
	binary.BigEndian.PutUint16(frame[14+6:], 100) // fragment offset 100
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if v.L4Off != 0 || v.SrcPort != 0 {
		t.Fatalf("IPv4 non-first fragment leaked ports: %+v", v)
	}
	if v.Proto != IPProtocolUDP {
		t.Fatalf("proto: %v", v.Proto)
	}
}

func TestViewDNSAccessors(t *testing.T) {
	q := DNS{RD: true, Questions: []DNSQuestion{{Name: "Ads.Example.COM", Type: DNSTypeA, Class: DNSClassIN}}}
	q.ID = 0x1234
	buf := NewSerializeBuffer()
	if err := q.SerializeTo(buf, SerializeOptions{}); err != nil {
		t.Fatal(err)
	}
	frame := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolUDP, SrcPort: 5353 + 1, DstPort: PortDNS,
		Payload: append([]byte(nil), buf.Bytes()...),
	})
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if _, ok := v.DNSPayload(); !ok {
		t.Fatal("DNSPayload not ok")
	}
	if v.DNSID() != 0x1234 || v.DNSIsResponse() || v.DNSQDCount() != 1 {
		t.Fatalf("DNS header fields: id=%x resp=%v qd=%d", v.DNSID(), v.DNSIsResponse(), v.DNSQDCount())
	}
	var nb [256]byte
	name, ok := v.DNSQName(nb[:0])
	if !ok || string(name) != "ads.example.com" {
		t.Fatalf("qname = %q ok=%v", name, ok)
	}

	// Non-DNS ports: no DNS view.
	other := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolUDP, SrcPort: 1000, DstPort: 1001,
		Payload: append([]byte(nil), buf.Bytes()...),
	})
	if !v.Parse(other) {
		t.Fatal("parse failed")
	}
	if _, ok := v.DNSPayload(); ok {
		t.Fatal("DNS view on non-53 ports")
	}
}

func TestViewDHCPAccessors(t *testing.T) {
	mac := MustMAC("02:11:22:33:44:55")
	msg := DHCPv4{
		Op: DHCPOpRequest, XID: 0xcafe0001, Broadcast: true,
		ClientMAC: mac,
		Options: []DHCPOption{
			{Code: DHCPOptMsgType, Data: []byte{byte(DHCPDiscover)}},
		},
	}
	payload, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	frame := MustBuild(Spec{
		SrcMAC: mac, DstMAC: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		SrcIP: netip.MustParseAddr("0.0.0.0"), DstIP: netip.MustParseAddr("255.255.255.255"),
		Proto: IPProtocolUDP, SrcPort: PortDHCPClient, DstPort: PortDHCPServer,
		Payload: payload,
	})
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	if _, ok := v.DHCPPayload(); !ok {
		t.Fatal("DHCPPayload not ok")
	}
	if v.DHCPOp() != DHCPOpRequest || v.DHCPXID() != 0xcafe0001 {
		t.Fatalf("op/xid: %d %x", v.DHCPOp(), v.DHCPXID())
	}
	if !bytes.Equal(v.DHCPClientMAC(), mac[:]) {
		t.Fatal("chaddr wrong")
	}
	mt, ok := v.DHCPMsgType()
	if !ok || mt != DHCPDiscover {
		t.Fatalf("msg type: %v ok=%v", mt, ok)
	}

	// The full decoder agrees end to end: UDP port 67/68 chains into the
	// DHCPv4 layer.
	pkt := NewPacket(frame, LayerTypeEthernet)
	dl := pkt.Layer(LayerTypeDHCPv4)
	if dl == nil {
		t.Fatalf("decoder found no DHCP layer: %v", pkt.ErrorLayer())
	}
	d := dl.(*DHCPv4)
	if d.XID != 0xcafe0001 || d.ClientMAC != mac {
		t.Fatalf("decoded DHCP: %+v", d)
	}
	if mt2, ok := d.MsgType(); !ok || mt2 != DHCPDiscover {
		t.Fatalf("decoded msg type: %v", mt2)
	}
}

func TestViewRewriteIPv4AddrKeepsChecksums(t *testing.T) {
	frame := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolTCP, SrcPort: 1, DstPort: 2, Payload: []byte("x"),
	})
	var v View
	if !v.Parse(frame) {
		t.Fatal("parse failed")
	}
	v.RewriteIPv4Addr(v.L3Off+12, []byte{203, 0, 113, 9})
	if !VerifyIPv4Checksum(frame[14:]) {
		t.Fatal("IPv4 checksum broken by rewrite")
	}
	pkt := NewPacket(frame, LayerTypeEthernet)
	tcp := pkt.Layer(LayerTypeTCP).(*TCP)
	s4 := [4]byte{203, 0, 113, 9}
	d4 := ip2.As4()
	if TransportChecksum(append(udpTCPSegment(frame), []byte{}...), s4[:], d4[:], IPProtocolTCP) != 0 {
		t.Fatal("TCP checksum broken by rewrite")
	}
	_ = tcp
}

// udpTCPSegment returns the L4 segment of an option-free IPv4 frame.
func udpTCPSegment(frame []byte) []byte { return frame[34:] }

func TestViewParseZeroAlloc(t *testing.T) {
	frames := [][]byte{
		MustBuild(Spec{SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
			Proto: IPProtocolTCP, SrcPort: 80, DstPort: 443, PadTo: 64}),
		MustBuild(Spec{SrcMAC: macA, DstMAC: macB, VLANs: []uint16{7},
			SrcIP: ip61, DstIP: ip62, Proto: IPProtocolUDP, SrcPort: 53, DstPort: 53, PadTo: 128}),
		MustBuildARP(ARPSpec{SrcMAC: macA, SenderIP: ip1, TargetIP: ip2, PadTo: 64}),
		buildIPv6Ext([]IPProtocol{IPProtocolIPv6HopByHop}, IPProtocolUDP, udpHeader(9, 9)),
	}
	var v View
	var key [13]byte
	allocs := testing.AllocsPerRun(200, func() {
		for _, f := range frames {
			if v.Parse(f) {
				v.FiveTupleKey(key[:])
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("View.Parse allocates: %.1f allocs/op", allocs)
	}
}

func TestViewQNameZeroAlloc(t *testing.T) {
	q := DNS{Questions: []DNSQuestion{{Name: "cdn.video.example", Type: DNSTypeA, Class: DNSClassIN}}}
	buf := NewSerializeBuffer()
	if err := q.SerializeTo(buf, SerializeOptions{}); err != nil {
		t.Fatal(err)
	}
	frame := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolUDP, SrcPort: 40000, DstPort: PortDNS,
		Payload: append([]byte(nil), buf.Bytes()...),
	})
	var v View
	var nb [256]byte
	allocs := testing.AllocsPerRun(200, func() {
		v.Parse(frame)
		if _, ok := v.DNSQName(nb[:0]); !ok {
			t.Fatal("qname failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("DNSQName allocates: %.1f allocs/op", allocs)
	}
}
