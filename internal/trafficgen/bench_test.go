package trafficgen

import (
	"testing"

	"flexsfp/internal/netsim"
)

// BenchmarkGenerate measures frame emission with a sink that consumes and
// immediately releases each buffer (the steady state of the line-rate and
// power experiments).
func BenchmarkGenerate(b *testing.B) {
	sim := netsim.New(1)
	var got uint64
	g := New(sim, Config{
		PPS:    10e6,
		SrcMAC: gMacA, DstMAC: gMacB,
	}, func(buf []byte) bool {
		got += uint64(len(buf))
		PutBuffer(buf)
		return true
	})
	b.ReportAllocs()
	b.SetBytes(64)
	g.Run(uint64(b.N))
	b.ResetTimer()
	sim.Run()
	if got == 0 {
		b.Fatal("no frames")
	}
}

// BenchmarkGenerateIMIX measures emission with the 7:4:1 size mix and a
// 64-flow population (size + flow sampling on every frame).
func BenchmarkGenerateIMIX(b *testing.B) {
	sim := netsim.New(1)
	var got uint64
	g := New(sim, Config{
		PPS: 10e6, Sizes: SimpleIMIX(), Flows: 64,
		SrcMAC: gMacA, DstMAC: gMacB,
	}, func(buf []byte) bool {
		got += uint64(len(buf))
		PutBuffer(buf)
		return true
	})
	b.ReportAllocs()
	g.Run(uint64(b.N))
	b.ResetTimer()
	sim.Run()
	if got == 0 {
		b.Fatal("no frames")
	}
}
