package core

import (
	"errors"
	"net/netip"
	"testing"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/flash"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

var (
	tMacA = packet.MustMAC("02:00:00:00:00:01")
	tMacB = packet.MustMAC("02:00:00:00:00:02")
	tIP1  = netip.MustParseAddr("10.1.0.1")
	tIP2  = netip.MustParseAddr("10.2.0.2")
)

// testApp is a minimal App whose handler is injectable.
type testApp struct {
	prog   *ppe.Program
	state  *ppe.State
	config []byte
}

func newTestApp(name string, h ppe.Handler) *testApp {
	a := &testApp{state: ppe.NewState()}
	a.prog = &ppe.Program{
		Name:        name,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
		Stages:      1,
		Handler:     h,
	}
	return a
}

func (a *testApp) Program() *ppe.Program { return a.prog }
func (a *testApp) State() *ppe.State     { return a.state }
func (a *testApp) Configure(c []byte) error {
	a.config = append([]byte(nil), c...)
	return nil
}

func passFactory(name string) Factory {
	return func() App {
		return newTestApp(name, ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict {
			return ppe.VerdictPass
		}))
	}
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register("pass", passFactory("pass"))
	return r
}

func compileFor(t *testing.T, reg *Registry, name string, golden bool) []byte {
	t.Helper()
	app, err := reg.New(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := hls.Compile(app.Program(), hls.Options{
		ClockHz: 156_250_000, DatapathBits: 64, Golden: golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := d.Bitstream.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func newRunningModule(t *testing.T, sim *netsim.Simulator, shell hls.Shell) *Module {
	t.Helper()
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Name: "m0", DeviceID: 7, Shell: shell, Registry: reg, AuthKey: []byte("k")})
	if _, err := m.Install(1, compileFor(t, reg, "pass", false)); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}
	return m
}

func dataFrame(t *testing.T) []byte {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcMAC: tMacA, DstMAC: tMacB, SrcIP: tIP1, DstIP: tIP2,
		SrcPort: 1000, DstPort: 2000, PadTo: 64,
	})
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("a", passFactory("a"))
	if _, err := r.New("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.New("nope"); err == nil {
		t.Error("unknown app instantiated")
	}
	if n := r.Names(); len(n) != 1 || n[0] != "a" {
		t.Errorf("Names = %v", n)
	}
}

func TestBootAndForward(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	if !m.Running() || m.ActiveSlot() != 1 {
		t.Fatalf("state: running=%v slot=%d", m.Running(), m.ActiveSlot())
	}
	var optical, edge [][]byte
	m.SetTx(PortOptical, func(d []byte) { optical = append(optical, d) })
	m.SetTx(PortEdge, func(d []byte) { edge = append(edge, d) })

	m.RxEdge(dataFrame(t))
	m.RxOptical(dataFrame(t))
	sim.Run()

	if len(optical) != 1 || len(edge) != 1 {
		t.Errorf("optical=%d edge=%d, want 1/1", len(optical), len(edge))
	}
	st := m.Stats()
	if st.Rx[PortEdge] != 1 || st.Rx[PortOptical] != 1 || st.Boots != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOneWayFilterReversePathBypassesPPE(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.OneWayFilter)
	var edge [][]byte
	m.SetTx(PortEdge, func(d []byte) { edge = append(edge, d) })
	m.RxOptical(dataFrame(t))
	// Reverse-path delivery is immediate (merge, no PPE latency): no
	// events needed.
	if len(edge) != 1 {
		t.Fatalf("edge = %d frames", len(edge))
	}
	if in := m.Engine().Stats().In; in != 0 {
		t.Errorf("PPE saw %d frames on the reverse path", in)
	}
	sim.Run()
}

func TestVerdictRouting(t *testing.T) {
	sim := netsim.New(1)
	reg := NewRegistry()
	var mode ppe.Verdict
	reg.Register("multi", func() App {
		return newTestApp("multi", ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict {
			ctx.RedirectPort = int(PortOptical)
			return mode
		}))
	})
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: []byte("k")})
	app, _ := reg.New("multi")
	d, err := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := d.Bitstream.Encode()
	if _, err := m.Install(1, enc); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}
	var edge, optical int
	var punted int
	m.SetTx(PortEdge, func(d []byte) { edge++ })
	m.SetTx(PortOptical, func(d []byte) { optical++ })
	m.SetPuntHandler(func(d []byte, dir ppe.Direction) { punted++ })

	mode = ppe.VerdictTx
	m.RxEdge(dataFrame(t))
	sim.Run()
	if edge != 1 || optical != 0 {
		t.Errorf("Tx verdict: edge=%d optical=%d", edge, optical)
	}

	mode = ppe.VerdictRedirect
	m.RxEdge(dataFrame(t))
	sim.Run()
	if optical != 1 {
		t.Errorf("Redirect verdict: optical=%d", optical)
	}

	mode = ppe.VerdictToCPU
	m.RxEdge(dataFrame(t))
	sim.Run()
	if punted != 1 || m.Stats().PuntToCPU != 1 {
		t.Errorf("ToCPU verdict: punted=%d", punted)
	}

	mode = ppe.VerdictDrop
	m.RxEdge(dataFrame(t))
	sim.Run()
	if edge != 1 || optical != 1 {
		t.Errorf("Drop verdict leaked a frame: edge=%d optical=%d", edge, optical)
	}
}

func TestControlFrameDemux(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	var gotPayload []byte
	var gotFrom PortID
	m.SetControlHandler(func(p []byte, from PortID) [][]byte {
		gotPayload = append([]byte(nil), p...)
		gotFrom = from
		return [][]byte{[]byte("pong")}
	})
	var edgeOut [][]byte
	m.SetTx(PortEdge, func(d []byte) { edgeOut = append(edgeOut, d) })

	// Build a control frame.
	buf := packet.NewSerializeBuffer()
	pl := packet.Payload([]byte("ping"))
	if err := packet.SerializeLayers(buf, packet.SerializeOptions{},
		&packet.Ethernet{SrcMAC: tMacA, DstMAC: m.MAC(), EtherType: packet.EtherTypeFlexControl},
		&pl); err != nil {
		t.Fatal(err)
	}
	m.RxEdge(append([]byte(nil), buf.Bytes()...))
	sim.Run()

	if string(gotPayload) != "ping" || gotFrom != PortEdge {
		t.Errorf("handler got %q from %v", gotPayload, gotFrom)
	}
	if len(edgeOut) != 1 {
		t.Fatalf("response frames = %d", len(edgeOut))
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(edgeOut[0]); err != nil {
		t.Fatal(err)
	}
	if eth.EtherType != packet.EtherTypeFlexControl || eth.DstMAC != tMacA || eth.SrcMAC != m.MAC() {
		t.Errorf("response eth = %+v", eth)
	}
	if string(eth.LayerPayload()) != "pong" {
		t.Errorf("response payload = %q", eth.LayerPayload())
	}
	if m.Stats().ControlFrames != 1 {
		t.Errorf("ControlFrames = %d", m.Stats().ControlFrames)
	}
	// Control frames never hit the PPE.
	if m.Engine().Stats().In != 0 {
		t.Error("control frame reached the PPE")
	}
}

func TestControlReachableWhileRebooting(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	handled := 0
	m.SetControlHandler(func(p []byte, from PortID) [][]byte { handled++; return nil })
	m.Reboot(1)
	// While rebooting: data drops, control works.
	buf := packet.NewSerializeBuffer()
	pl := packet.Payload([]byte("x"))
	_ = packet.SerializeLayers(buf, packet.SerializeOptions{},
		&packet.Ethernet{SrcMAC: tMacA, DstMAC: m.MAC(), EtherType: packet.EtherTypeFlexControl}, &pl)
	m.RxEdge(append([]byte(nil), buf.Bytes()...))
	m.RxEdge(dataFrame(t))
	if handled != 1 {
		t.Error("control frame not handled during reboot")
	}
	if m.Stats().RebootDrops != 1 {
		t.Errorf("RebootDrops = %d", m.Stats().RebootDrops)
	}
	sim.Run()
	if !m.Running() {
		t.Error("module did not come back after reboot")
	}
}

func TestRebootTakesConfigTime(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	m.Reboot(1)
	sim.RunUntil(netsim.Time(FPGAConfigTime) - 1)
	if m.Running() {
		t.Error("module running before FPGA config time elapsed")
	}
	sim.Run()
	if !m.Running() {
		t.Error("module not running after reboot completed")
	}
	if m.Stats().Boots != 2 {
		t.Errorf("Boots = %d", m.Stats().Boots)
	}
}

func TestInstallSignedAuth(t *testing.T) {
	sim := netsim.New(1)
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: []byte("fleet-key")})
	enc := compileFor(t, reg, "pass", false)

	if _, err := m.InstallSigned(1, bitstream.Sign(enc, []byte("wrong"))); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong key: %v", err)
	}
	if m.Stats().AuthFailures != 1 {
		t.Errorf("AuthFailures = %d", m.Stats().AuthFailures)
	}
	if _, err := m.InstallSigned(1, bitstream.Sign(enc, []byte("fleet-key"))); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}
	if !m.Running() {
		t.Error("not running after signed install + boot")
	}
}

func TestInstallSignedWrongDevice(t *testing.T) {
	sim := netsim.New(1)
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg,
		AuthKey: []byte("k"), DeviceName: "MPF300T"})
	enc := compileFor(t, reg, "pass", false) // targets MPF200T
	if _, err := m.InstallSigned(1, bitstream.Sign(enc, []byte("k"))); !errors.Is(err, ErrWrongDevice) {
		t.Errorf("err = %v, want ErrWrongDevice", err)
	}
}

func TestGoldenFallbackOnBadSlot(t *testing.T) {
	sim := netsim.New(1)
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: []byte("k")})
	app, _ := reg.New("pass")
	d, _ := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64, Golden: true})
	golden, _ := d.Bitstream.Encode()
	if _, err := m.Install(0, golden); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(0); err != nil {
		t.Fatal(err)
	}
	// Reboot into an empty slot: FSM must fall back to slot 0.
	m.Reboot(2)
	sim.Run()
	if !m.Running() || m.ActiveSlot() != 0 {
		t.Errorf("running=%v slot=%d, want golden fallback to slot 0", m.Running(), m.ActiveSlot())
	}
}

func TestBootUnknownApp(t *testing.T) {
	sim := netsim.New(1)
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: NewRegistry(), AuthKey: []byte("k")})
	if _, err := m.Install(1, compileFor(t, reg, "pass", false)); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err == nil {
		t.Error("booted an app missing from the registry")
	}
}

func TestPowerModelCalibration(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	// Idle: optics + static + Mi-V = 0.92 W.
	idle := m.PowerW()
	if idle < 0.9 || idle > 0.95 {
		t.Errorf("idle power = %.3f W", idle)
	}
	// PeakPowerW at the baseline operating point = 1.52 W, matching the
	// paper's measured delta (5.320 − 3.800).
	peak := PeakPowerW(156_250_000, 64, hls.TwoWayCore)
	if peak < 1.515 || peak > 1.525 {
		t.Errorf("peak power = %.3f W, want 1.52", peak)
	}
	// Double-clock Two-Way-Core stays inside the 3 W envelope.
	if !WithinThermalEnvelope(312_500_000, 64, hls.TwoWayCore) {
		t.Error("312.5 MHz design should fit the envelope")
	}
	// A 512-bit, 400 MHz design does not fit an SFP+ envelope.
	if WithinThermalEnvelope(400_000_000, 512, hls.TwoWayCore) {
		t.Error("100G-class design reported inside SFP+ envelope")
	}
}

func TestStandardSFPPassthrough(t *testing.T) {
	sim := netsim.New(1)
	s := NewStandardSFP(sim)
	var optical, edge int
	var deliveredAt netsim.Time
	s.SetTx(PortOptical, func(d []byte) { optical++; deliveredAt = sim.Now() })
	s.SetTx(PortEdge, func(d []byte) { edge++ })
	s.RxEdge(make([]byte, 64))
	s.RxOptical(make([]byte, 64))
	sim.Run()
	if optical != 1 || edge != 1 {
		t.Errorf("optical=%d edge=%d", optical, edge)
	}
	if deliveredAt != netsim.Time(s.RetimerDelay) {
		t.Errorf("delivered at %v, want retimer delay %v", deliveredAt, s.RetimerDelay)
	}
	if s.PowerW() != StandardSFPPowerW {
		t.Errorf("power = %v", s.PowerW())
	}
}

func TestModuleDDMTracksLaser(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	d := m.DDM()
	if d.TxPowerDBm > -1.9 || d.TxPowerDBm < -2.1 {
		t.Errorf("healthy TxPower = %v", d.TxPowerDBm)
	}
	m.Laser.Degradation = 0.6
	d = m.DDM()
	if d.TxPowerDBm > -5.5 {
		t.Errorf("degraded TxPower = %v, want below -5.5", d.TxPowerDBm)
	}
	if d.TxBiasMA <= 6.0 {
		t.Errorf("degraded bias = %v, want above nominal", d.TxBiasMA)
	}
}

func TestActiveCoreOriginatesTraffic(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.ActiveCore)
	var ctrlOut int
	m.SetTx(PortControl, func(d []byte) { ctrlOut++ })
	if err := m.SendFrom(PortControl, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ctrlOut != 1 {
		t.Errorf("control tx = %d", ctrlOut)
	}
	// Non-ActiveCore shells have no control port.
	m2 := newRunningModule(t, sim, hls.TwoWayCore)
	if err := m2.SendFrom(PortControl, make([]byte, 64)); err == nil {
		t.Error("TwoWayCore sent from control port")
	}
}

func TestControlFrameUnderVLANTag(t *testing.T) {
	sim := netsim.New(1)
	m := newRunningModule(t, sim, hls.TwoWayCore)
	got := 0
	m.SetControlHandler(func(p []byte, from PortID) [][]byte { got++; return nil })
	buf := packet.NewSerializeBuffer()
	pl := packet.Payload([]byte("cfg"))
	_ = packet.SerializeLayers(buf, packet.SerializeOptions{},
		&packet.Ethernet{SrcMAC: tMacA, DstMAC: m.MAC(), EtherType: packet.EtherTypeDot1Q},
		&packet.Dot1Q{VLAN: 5, EtherType: packet.EtherTypeFlexControl},
		&pl)
	m.RxEdge(append([]byte(nil), buf.Bytes()...))
	if got != 1 {
		t.Error("VLAN-tagged control frame not demuxed")
	}
	sim.Run()
}

func TestCorruptedSlotFallsBackToGolden(t *testing.T) {
	sim := netsim.New(9)
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: []byte("k")})
	// Golden image in slot 0, working app in slot 1.
	app, _ := reg.New("pass")
	d, _ := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64, Golden: true})
	golden, _ := d.Bitstream.Encode()
	if _, err := m.Install(0, golden); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(1, compileFor(t, reg, "pass", false)); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}
	// Power glitch corrupts the active slot mid-life.
	addr, _ := flash.SlotAddr(1)
	if err := m.Flash.CorruptRange(addr+40, 16, func() byte {
		return byte(sim.Rand().Intn(255))
	}); err != nil {
		t.Fatal(err)
	}
	// The next reboot detects the bad CRC and falls back to the golden
	// image (§4.2's FSM made safe).
	m.Reboot(1)
	sim.Run()
	if !m.Running() {
		t.Fatal("module dead after corrupted-slot reboot")
	}
	if m.ActiveSlot() != 0 {
		t.Errorf("active slot = %d, want golden fallback to 0", m.ActiveSlot())
	}
}
