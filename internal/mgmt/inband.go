package mgmt

import (
	"fmt"

	"flexsfp/internal/core"
	"flexsfp/internal/packet"
)

// InBandTransport reaches a module's management core through Ethernet
// control frames on the module's edge port — the in-band path of §4.1,
// where the arbiter demuxes control traffic ahead of the PPE so
// "remote access to the control logic" works "without disrupting the
// dataplane". It is synchronous with respect to the simulator: the
// module's control handler runs inline on frame receipt.
type InBandTransport struct {
	mod        *core.Module
	stationMAC packet.MAC
	port       core.PortID

	pending []byte
}

// NewInBandTransport installs a tee on the module's port (normally
// PortEdge) that captures control responses addressed to stationMAC and
// forwards everything else to dataTx (which may be nil for a standalone
// module). It returns the management transport.
func NewInBandTransport(mod *core.Module, port core.PortID, stationMAC packet.MAC, dataTx func([]byte)) *InBandTransport {
	t := &InBandTransport{mod: mod, stationMAC: stationMAC, port: port}
	mod.SetTx(port, func(b []byte) {
		var eth packet.Ethernet
		if eth.DecodeFromBytes(b) == nil &&
			eth.EtherType == packet.EtherTypeFlexControl &&
			eth.DstMAC == stationMAC {
			t.pending = append([]byte(nil), eth.LayerPayload()...)
			return
		}
		if dataTx != nil {
			dataTx(b)
		}
	})
	return t
}

// Do implements Transport: wrap the request in a control frame, inject
// it, and return the captured response.
func (t *InBandTransport) Do(req []byte) ([]byte, error) {
	buf := packet.NewSerializeBuffer()
	pl := packet.Payload(req)
	err := packet.SerializeLayers(buf, packet.SerializeOptions{},
		&packet.Ethernet{SrcMAC: t.stationMAC, DstMAC: t.mod.MAC(),
			EtherType: packet.EtherTypeFlexControl}, &pl)
	if err != nil {
		return nil, err
	}
	t.pending = nil
	frame := append([]byte(nil), buf.Bytes()...)
	switch t.port {
	case core.PortEdge:
		t.mod.RxEdge(frame)
	case core.PortOptical:
		t.mod.RxOptical(frame)
	case core.PortControl:
		t.mod.RxControl(frame)
	}
	if t.pending == nil {
		return nil, fmt.Errorf("mgmt: no in-band response from %s", t.mod.Name())
	}
	return t.pending, nil
}
