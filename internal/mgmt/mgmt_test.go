package mgmt

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// statefulApp exposes one of each control-plane object.
type statefulApp struct {
	prog  *ppe.Program
	state *ppe.State
}

func newStatefulApp() core.App {
	a := &statefulApp{state: ppe.NewState()}
	a.state.AddTable(ppe.TableSpec{Name: "nat", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 32, Size: 1024})
	a.state.AddTernary(ppe.TableSpec{Name: "acl", Kind: ppe.TableTernary, KeyBits: 32, ValueBits: 8, Size: 16})
	a.state.AddCounters("stats", 4)
	a.state.AddMeters("police", 2)
	a.state.AddRegister("seq")
	a.prog = &ppe.Program{
		Name:        "stateful",
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
		Tables: []ppe.TableSpec{
			{Name: "nat", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 32, Size: 1024},
			{Name: "acl", Kind: ppe.TableTernary, KeyBits: 32, ValueBits: 8, Size: 16},
		},
		Stages:  1,
		Handler: ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict { return ppe.VerdictPass }),
	}
	return a
}

func (a *statefulApp) Program() *ppe.Program    { return a.prog }
func (a *statefulApp) State() *ppe.State        { return a.state }
func (a *statefulApp) Configure(c []byte) error { return nil }

var fleetKey = []byte("fleet-secret")

func newAgentModule(t *testing.T) (*core.Module, *Agent, *netsim.Simulator) {
	t.Helper()
	sim := netsim.New(1)
	reg := core.NewRegistry()
	reg.Register("stateful", newStatefulApp)
	m := core.NewModule(core.Config{
		Sim: sim, Name: "sfp-7", DeviceID: 7,
		Shell: hls.TwoWayCore, Registry: reg, AuthKey: fleetKey,
	})
	app := newStatefulApp()
	d, err := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := d.Bitstream.Encode()
	if _, err := m.Install(1, enc); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}
	return m, NewAgent(m), sim
}

func newDirectClient(a *Agent) *Client {
	return NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		return a.Handle(req), nil
	}))
}

func TestPing(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	info, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "sfp-7" || info.DeviceID != 7 || info.AppName != "stateful" || !info.Running {
		t.Errorf("info = %+v", info)
	}
}

func TestTableLifecycle(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	key := []byte{10, 0, 0, 1}
	val := []byte{192, 0, 2, 1}
	if err := c.TableAdd("nat", key, val); err != nil {
		t.Fatal(err)
	}
	got, err := c.TableGet("nat", key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Errorf("get = %x", got)
	}
	dump, err := c.TableDump("nat")
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != 1 || !bytes.Equal(dump[0].Key, key) {
		t.Errorf("dump = %+v", dump)
	}
	if err := c.TableDel("nat", key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TableGet("nat", key); err == nil {
		t.Error("deleted entry still readable")
	}
	var re *RemoteError
	if err := c.TableAdd("missing", key, val); !errors.As(err, &re) || re.Code != CodeNoSuchObject {
		t.Errorf("missing table: %v", err)
	}
	if err := c.TableAdd("nat", []byte{1}, val); !errors.As(err, &re) || re.Code != CodeOpFailed {
		t.Errorf("bad key size: %v", err)
	}
}

func TestTernaryOps(t *testing.T) {
	m, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	if err := c.TernaryAdd("acl", []byte{10, 0, 0, 0}, []byte{255, 0, 0, 0}, 10, []byte{1}); err != nil {
		t.Fatal(err)
	}
	tt, _ := m.App().State().Ternary("acl")
	if tt.Len() != 1 {
		t.Errorf("acl has %d entries", tt.Len())
	}
	if d, ok := tt.Lookup([]byte{10, 1, 2, 3}); !ok || d[0] != 1 {
		t.Error("pushed rule does not match")
	}
	if err := c.TernaryClear("acl"); err != nil {
		t.Fatal(err)
	}
	if tt.Len() != 0 {
		t.Error("clear failed")
	}
}

func TestCountersMetersRegisters(t *testing.T) {
	m, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	cb, _ := m.App().State().Counters("stats")
	cb.Inc(2, 100)
	cb.Inc(2, 50)
	pkts, byt, err := c.CounterRead("stats", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pkts != 2 || byt != 150 {
		t.Errorf("counter = %d/%d", pkts, byt)
	}
	if err := c.MeterSet("police", 0, 1e6, 1e4); err != nil {
		t.Fatal(err)
	}
	mb, _ := m.App().State().Meters("police")
	if mb.Conform(0, 0, 10000) && mb.Conform(0, 0, 10000) {
		t.Error("meter not actually configured")
	}
	if err := c.RegWrite("seq", 99); err != nil {
		t.Fatal(err)
	}
	v, err := c.RegRead("seq")
	if err != nil || v != 99 {
		t.Errorf("reg = %d, %v", v, err)
	}
}

func TestStatsAndDDM(t *testing.T) {
	m, a, sim := newAgentModule(t)
	c := newDirectClient(a)
	m.SetTx(core.PortOptical, func([]byte) {})
	frame := packet.MustBuild(packet.Spec{
		SrcMAC: packet.MustMAC("02:00:00:00:00:01"),
		DstMAC: packet.MustMAC("02:00:00:00:00:02"),
		SrcIP:  mustIP("10.0.0.1"), DstIP: mustIP("10.0.0.2"),
		SrcPort: 1, DstPort: 2, PadTo: 64,
	})
	m.RxEdge(frame)
	sim.Run()
	st, err := c.ReadStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rx[0] != 1 || st.Engine.In != 1 || st.Engine.Pass != 1 || !st.Running || st.AppName != "stateful" {
		t.Errorf("stats = %+v", st)
	}
	d, err := c.ReadDDM()
	if err != nil {
		t.Fatal(err)
	}
	if d.VccVolts != 3.3 || d.TxPowerDBm > 0 {
		t.Errorf("ddm = %+v", d)
	}
}

func TestSlotsAndOTAPush(t *testing.T) {
	m, a, sim := newAgentModule(t)
	c := newDirectClient(a)
	slots, err := c.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if slots[1] != "stateful" {
		t.Errorf("slots = %v", slots)
	}
	// Push a new image into slot 2 and reboot into it.
	app := newStatefulApp()
	prog := app.Program()
	prog.Version = 2
	d, err := hls.Compile(prog, hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := d.Bitstream.Encode()
	signed := bitstream.Sign(enc, fleetKey)
	if err := c.PushBitstream(signed, 2, true); err != nil {
		t.Fatal(err)
	}
	sim.Run() // let the reboot FSM complete
	if !m.Running() || m.ActiveSlot() != 2 {
		t.Errorf("running=%v slot=%d after OTA", m.Running(), m.ActiveSlot())
	}
	if st := m.Stats(); st.Boots != 2 {
		t.Errorf("boots = %d", st.Boots)
	}
}

func TestOTARejectsBadSignature(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	app := newStatefulApp()
	d, _ := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	enc, _ := d.Bitstream.Encode()
	signed := bitstream.Sign(enc, []byte("attacker-key"))
	err := c.PushBitstream(signed, 2, true)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOpFailed {
		t.Errorf("err = %v, want remote CodeOpFailed", err)
	}
}

func TestXferStateMachineErrors(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	var re *RemoteError
	// Commit without begin.
	if _, err := c.do(MsgXferCommit, nil); !errors.As(err, &re) || re.Code != CodeBadState {
		t.Errorf("commit-no-begin: %v", err)
	}
	// Begin then incomplete commit.
	var w bodyWriter
	w.u8(2)
	w.u8(0)
	w.u32(1000)
	if _, err := c.do(MsgXferBegin, w.b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.do(MsgXferCommit, nil); !errors.As(err, &re) || re.Code != CodeBadState {
		t.Errorf("incomplete commit: %v", err)
	}
	// Chunk out of range.
	if _, err := c.do(MsgXferBegin, w.b); err != nil {
		t.Fatal(err)
	}
	var cw bodyWriter
	cw.u32(990)
	cw.bytes(make([]byte, 100))
	if _, err := c.do(MsgXferChunk, cw.b); !errors.As(err, &re) || re.Code != CodeBadBody {
		t.Errorf("chunk overflow: %v", err)
	}
}

func TestUnknownMessageType(t *testing.T) {
	_, a, _ := newAgentModule(t)
	resp := a.Handle(Message{Type: 200, ReqID: 5}.Encode())
	msg, err := DecodeMessage(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgError || msg.ReqID != 5 {
		t.Errorf("resp = %+v", msg)
	}
	code, _, _ := ParseError(msg.Body)
	if code != CodeUnknownType {
		t.Errorf("code = %d", code)
	}
}

func TestGarbageRequest(t *testing.T) {
	_, a, _ := newAgentModule(t)
	resp := a.Handle([]byte("not a message"))
	msg, err := DecodeMessage(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgError {
		t.Errorf("resp type = %d", msg.Type)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	_, a, _ := newAgentModule(t)
	srv := NewServer(a.Handle)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := NewClient(tr)

	info, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "sfp-7" {
		t.Errorf("info = %+v", info)
	}
	// Table ops over real TCP.
	if err := c.TableAdd("nat", []byte{1, 2, 3, 4}, []byte{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	v, err := c.TableGet("nat", []byte{1, 2, 3, 4})
	if err != nil || !bytes.Equal(v, []byte{5, 6, 7, 8}) {
		t.Errorf("get over TCP = %x, %v", v, err)
	}
	// Second client on the same server.
	tr2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if _, err := NewClient(tr2).Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(typ uint8, reqID uint32, body []byte) bool {
		if len(body) > MaxBody {
			body = body[:MaxBody]
		}
		m := Message{Type: MsgType(typ), ReqID: reqID, Body: body}
		got, err := DecodeMessage(m.Encode())
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.ReqID == reqID && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, err := DecodeMessage([]byte{1, 2}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short: %v", err)
	}
	bad := Message{Type: MsgPing}.Encode()
	bad[0] = 'X'
	if _, err := DecodeMessage(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	bad = Message{Type: MsgPing}.Encode()
	bad[2] = 9
	if _, err := DecodeMessage(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
}

func mustIP(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestReadEEPROM(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	id, raw, err := c.ReadEEPROM()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 256 {
		t.Errorf("raw page = %d bytes", len(raw))
	}
	if id.VendorName != "FLEXSFP" || !id.Is10GBaseSR || !id.DDMSupported {
		t.Errorf("identity = %+v", id)
	}
	if id.VendorSN != "FS2600000007" {
		t.Errorf("serial = %q (device 7)", id.VendorSN)
	}
}
