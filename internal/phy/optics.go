package phy

import "math"

// Laser models the transceiver's VCSEL: nominal output power, bias
// current, and a degradation factor that reliability simulations drive
// toward failure (gradual optical power loss is the dominant VCSEL
// failure mode, §5.3).
type Laser struct {
	// NominalPowerDBm is the healthy launch power.
	NominalPowerDBm float64
	// BiasMilliAmps is the drive current.
	BiasMilliAmps float64
	// Degradation is the fractional optical power loss (0 = healthy,
	// 1 = dark).
	Degradation float64
	// Enabled reflects the TX-disable control line.
	Enabled bool
}

// NewLaser returns a healthy 10GBASE-SR-class VCSEL.
func NewLaser() *Laser {
	return &Laser{NominalPowerDBm: -2.0, BiasMilliAmps: 6.0, Enabled: true}
}

// OutputPowerDBm returns the current launch power accounting for
// degradation; a disabled or dark laser reports -40 dBm (measurement
// floor).
func (l *Laser) OutputPowerDBm() float64 {
	if !l.Enabled || l.Degradation >= 1 {
		return -40
	}
	// Power scales linearly in mW with (1 - degradation).
	mw := dbmToMw(l.NominalPowerDBm) * (1 - l.Degradation)
	return mwToDbm(mw)
}

// EffectiveBiasMilliAmps returns the bias current: degrading VCSELs are
// driven harder by the driver's APC loop trying to hold power.
func (l *Laser) EffectiveBiasMilliAmps() float64 {
	if !l.Enabled {
		return 0
	}
	return l.BiasMilliAmps * (1 + 1.5*l.Degradation)
}

func dbmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }
func mwToDbm(mw float64) float64 {
	if mw <= 0 {
		return -40
	}
	return 10 * math.Log10(mw)
}

// FiberLink is the optical power budget of a fiber span.
type FiberLink struct {
	LengthKm           float64
	AttenuationDBPerKm float64 // ~3.0 for OM3 multimode at 850 nm
	ConnectorLossDB    float64 // total connector/splice loss
	RxSensitivityDBm   float64 // receiver sensitivity (-11.1 for 10GBASE-SR)
}

// DefaultSRLink returns a typical short-reach data-center span.
func DefaultSRLink(lengthKm float64) FiberLink {
	return FiberLink{
		LengthKm:           lengthKm,
		AttenuationDBPerKm: 3.0,
		ConnectorLossDB:    1.0,
		RxSensitivityDBm:   -11.1,
	}
}

// RxPowerDBm returns the power arriving at the far receiver for a given
// launch power.
func (f FiberLink) RxPowerDBm(txPowerDBm float64) float64 {
	return txPowerDBm - f.LengthKm*f.AttenuationDBPerKm - f.ConnectorLossDB
}

// MarginDB returns the link margin: received power above sensitivity.
func (f FiberLink) MarginDB(txPowerDBm float64) float64 {
	return f.RxPowerDBm(txPowerDBm) - f.RxSensitivityDBm
}

// Up reports whether the link closes (positive margin).
func (f FiberLink) Up(txPowerDBm float64) bool { return f.MarginDB(txPowerDBm) > 0 }
