package daemon

import (
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"
)

func startTestDaemon(t *testing.T) *Daemon {
	t.Helper()
	d, err := Start(Config{
		Listen: "127.0.0.1:0", Name: "close-test", App: "acl",
		Shell: "two-way-core", Telemetry: true, MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCloseShutsDownMetricsServer: Close must gracefully stop the
// metrics HTTP server — the serve goroutine exits (no leak), and the
// port stops accepting connections.
func TestCloseShutsDownMetricsServer(t *testing.T) {
	before := runtime.NumGoroutine()
	d := startTestDaemon(t)

	addr := d.MetricsAddr()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics before close: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()

	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics port still serving after Close")
	}
	http.DefaultClient.CloseIdleConnections()

	// The serve goroutine (and the mgmt accept loop) must be gone. Other
	// runtime goroutines wind down asynchronously, so poll back to the
	// pre-Start baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before Start, %d after Close — serve loop leaked",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseWithoutMetrics: a daemon without the HTTP endpoint closes
// cleanly through the same path.
func TestCloseWithoutMetrics(t *testing.T) {
	d, err := Start(Config{
		Listen: "127.0.0.1:0", Name: "close-test-2", App: "acl",
		Shell: "two-way-core",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
