// XDP offload (§4.2): "the developer writes the packet function (e.g.,
// an XDP program); an HLS toolchain converts it to HDL and generates an
// IP core; the build framework integrates this into an architecture
// shell … and emits the SFP bitstream."
//
// This example writes an XDP-style codelet in the eBPF-inspired ISA
// (drop UDP/53 leaving the edge — a crude DNS exfiltration cut-off),
// verifies it, runs the optimizer pass pipeline over the naive emission,
// embeds it in a signed bitstream, boots it in a FlexSFP, and pushes
// traffic through.
//
//	go run ./examples/xdp-offload
package main

import (
	"fmt"
	"log"
	"net/netip"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/opt"
	"flexsfp/internal/packet"
	"flexsfp/internal/xdp"
)

func main() {
	// 1. The packet function, as a naive compiler emits it — with a
	// redundant reload of the EtherType and a scratch register it never
	// reads (the kind of code mechanical templated emission produces).
	prog := xdp.Program{
		Name: "dns-cutoff",
		Insns: []xdp.Insn{
			xdp.LdH(1, 0, 12),        // r1 = EtherType
			xdp.LdH(5, 0, 12),        // naive reload of the same halfword
			xdp.MovImm(6, 0),         // dead scratch init
			xdp.JNeImm(1, 0x0800, 7), // not IPv4 → pass
			xdp.LdB(2, 0, 23),        // r2 = IP protocol
			xdp.JNeImm(2, 17, 5),     // not UDP → pass
			xdp.LdB(3, 0, 14),        // r3 = version/IHL
			{Op: xdp.OpAnd, Dst: 3, Imm: 0x0f, UseImm: true},
			{Op: xdp.OpLsh, Dst: 3, Imm: 2, UseImm: true}, // r3 = IHL bytes
			xdp.LdH(4, 3, 16),    // r4 = dst port (14 + IHL + 2)
			xdp.JEqImm(4, 53, 2), // port 53 → drop
			xdp.MovImm(0, xdp.ActPass),
			xdp.Exit(),
			xdp.MovImm(0, xdp.ActDrop),
			xdp.Exit(),
		},
	}
	if err := prog.Verify(); err != nil {
		log.Fatalf("verifier rejected the program: %v", err)
	}
	fmt.Printf("verified %q: %d instructions, forward-only control flow\n",
		prog.Name, len(prog.Insns))
	est := xdp.EstimateResources(&prog)
	fmt.Printf("hXDP-style core estimate: %d LUT4 / %d FF / %d uSRAM / %d LSRAM\n",
		est.LUT4, est.FF, est.USRAM, est.LSRAM)

	// 2. The optimizer pass pipeline. A naive compiler emission carries
	// redundancy; the passes prove their rewrites behavior-preserving
	// (same verdict on every packet) and cut the soft core's schedule —
	// the unoptimized codelet retires one instruction per cycle, which
	// at 64B frames is slower than the 64-bit datapath streams them.
	_, xrep, err := opt.OptimizeXDP(&prog, opt.Options{})
	if err != nil {
		log.Fatalf("optimizer: %v", err)
	}
	fmt.Printf("optimizer: %d→%d insns (%d dead writes, %d folded loads), schedule %d→%d cycles\n",
		xrep.InsnsBefore, xrep.InsnsAfter, xrep.DeadWrites, xrep.FoldedLoads,
		xrep.ScalarCycles, xrep.PackedCycles)

	// 3. Package + boot through the standard pipeline, optimizer on
	// (Optimize in the app config packs the program; Optimize in the spec
	// records the pass pipeline in the signed manifest so boot re-checks
	// the optimized structure).
	sim := flexsfp.NewSim(1)
	mod, design, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
		Name: "xdp-sfp", DeviceID: 11, Shell: flexsfp.OneWayFilter, App: "xdp",
		Optimize: true,
		Config:   apps.XDPConfig{Program: prog, Direction: "edge-to-optical", Optimize: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted on %s: shell+app %d LUT4 (%.1f%% peak), %s shell\n",
		design.Target.Name, design.Total.LUT4, design.Fit.Utilization.Max(), design.Shell)

	// 4. Traffic.
	var passed, total int
	mod.SetTx(core.PortOptical, func(b []byte) { passed++ })
	mod.SetTx(core.PortEdge, func([]byte) {})
	send := func(dport uint16) {
		total++
		mod.RxEdge(packet.MustBuild(packet.Spec{
			SrcMAC:  packet.MustMAC("02:00:00:00:00:61"),
			DstMAC:  packet.MustMAC("02:00:00:00:00:62"),
			SrcIP:   netip.MustParseAddr("10.0.0.1"),
			DstIP:   netip.MustParseAddr("8.8.8.8"),
			SrcPort: 5555, DstPort: dport, PadTo: 64,
		}))
	}
	for i := 0; i < 10; i++ {
		send(53) // cut off
	}
	for i := 0; i < 10; i++ {
		send(443) // passes
	}
	sim.Run()

	ctr, _ := mod.App().State().Counters("xdp")
	drops, _ := ctr.Read(apps.XDPDrop)
	passes, _ := ctr.Read(apps.XDPPass)
	fmt.Printf("\ntraffic: %d sent, %d egressed (XDP: %d pass, %d drop)\n",
		total, passed, passes, drops)
	if passed == 10 && drops == 10 {
		fmt.Println("DNS cut-off enforced at the optical edge by an offloaded XDP codelet.")
	}
}
