package faults

import (
	"math/rand"
	"sync"
	"testing"
)

// rolls replays n Roll decisions at a fixed probability.
func rolls(in *Injector, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Roll(0.5)
	}
	return out
}

func TestDeriveDeterministicPerLane(t *testing.T) {
	parent := New(42, Rates{ConnDrop: 0.1})
	a := rolls(parent.Derive(7), 100)
	b := rolls(parent.Derive(7), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lane 7 draw %d diverged between two Derives", i)
		}
	}
	c := rolls(parent.Derive(8), 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("lanes 7 and 8 produced identical streams")
	}
}

func TestDeriveInheritsRates(t *testing.T) {
	rates := Rates{ConnDrop: 0.25, Stall: 0.5}
	d := New(1, rates).Derive(0)
	if d.Rates() != rates {
		t.Fatalf("derived rates = %+v, want %+v", d.Rates(), rates)
	}
	if d.Stats().Total() != 0 {
		t.Fatal("derived injector inherited parent stats")
	}
}

func TestDeriveDoesNotAdvanceSeededParent(t *testing.T) {
	a, b := New(9, Rates{}), New(9, Rates{})
	a.Derive(1)
	a.Derive(2)
	ra, rb := rolls(a, 50), rolls(b, 50)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("Derive perturbed the parent's own stream at draw %d", i)
		}
	}
}

func TestDeriveFromSharedRNGDrawsOnce(t *testing.T) {
	mk := func() *Injector { return NewFrom(rand.New(rand.NewSource(5)), Rates{}) }
	p1, p2 := mk(), mk()
	a := rolls(p1.Derive(3), 20)
	p2.Derive(0) // a different earlier lane must not shift lane 3's stream
	b := rolls(p2.Derive(3), 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("NewFrom-derived lane 3 not reproducible at draw %d", i)
		}
	}
}

// TestDeriveConcurrent is the race-detector test for the satellite: many
// fleet workers deriving and using per-lane injectors from one parent at
// once, which the embedded *rand.Rand alone would never allow.
func TestDeriveConcurrent(t *testing.T) {
	parent := New(77, Rates{ConnDrop: 0.2, FrameLoss: 0.3})
	const workers = 16
	streams := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := parent.Derive(uint64(w))
			out := make([]bool, 200)
			for i := range out {
				out[i] = in.LoseFrame()
			}
			streams[w] = out
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		want := make([]bool, 200)
		in := parent.Derive(uint64(w))
		for i := range want {
			want[i] = in.LoseFrame()
		}
		for i := range want {
			if streams[w][i] != want[i] {
				t.Fatalf("worker %d stream not deterministic at draw %d", w, i)
			}
		}
	}
}
