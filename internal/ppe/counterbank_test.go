package ppe

import (
	"sync"
	"testing"
)

func TestCounterBankBasics(t *testing.T) {
	b := NewCounterBank("ctr", 4)
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Inc(0, 64)
	b.Inc(0, 1500)
	b.Inc(3, 100)
	if p, by := b.Read(0); p != 2 || by != 1564 {
		t.Fatalf("counter 0 = %d/%d", p, by)
	}
	if p, by := b.Read(3); p != 1 || by != 100 {
		t.Fatalf("counter 3 = %d/%d", p, by)
	}
	b.Reset(0)
	if p, by := b.Read(0); p != 0 || by != 0 {
		t.Fatalf("after reset = %d/%d", p, by)
	}
	// Out-of-range indexes are silently ignored.
	b.Inc(-1, 10)
	b.Inc(4, 10)
	b.Reset(99)
	if p, by := b.Read(-1); p != 0 || by != 0 {
		t.Fatalf("out-of-range read = %d/%d", p, by)
	}
}

// TestCounterBankConsistentReads is the torn-read regression (run under
// -race in make check): every Inc adds one packet of exactly frameSize
// bytes, so any read where bytes != packets*frameSize has observed a
// half-applied (packets, bytes) pair — precisely what the old two
// independent atomics allowed.
func TestCounterBankConsistentReads(t *testing.T) {
	const frameSize = 100
	b := NewCounterBank("ctr", 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				b.Inc(0, frameSize)
			}
		}()
	}
	var rd sync.WaitGroup
	for r := 0; r < 2; r++ {
		rd.Add(1)
		go func() {
			defer rd.Done()
			for {
				p, by := b.Read(0)
				if by != p*frameSize {
					t.Errorf("torn read: %d packets / %d bytes", p, by)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rd.Wait()
	if p, by := b.Read(0); p != 80000 || by != 80000*frameSize {
		t.Fatalf("final = %d/%d", p, by)
	}
}

func TestCounterBankIncZeroAlloc(t *testing.T) {
	b := NewCounterBank("ctr", 8)
	if n := testing.AllocsPerRun(200, func() {
		b.Inc(3, 64)
	}); n != 0 {
		t.Fatalf("CounterBank.Inc allocates %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		b.Read(3)
	}); n != 0 {
		t.Fatalf("CounterBank.Read allocates %v allocs/op", n)
	}
}
