package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 64)
	var sampled int
	for i := 0; i < 100; i++ {
		if _, ok := tr.Sample(); ok {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 over 100 frames sampled %d", sampled)
	}
	if tr.Seen() != 100 || tr.Sampled() != 25 {
		t.Fatalf("seen/sampled = %d/%d", tr.Seen(), tr.Sampled())
	}
}

func TestTracerSampleEveryOne(t *testing.T) {
	tr := NewTracer(0, 0) // clamps to every=1, min ring
	for i := 0; i < 10; i++ {
		if _, ok := tr.Sample(); !ok {
			t.Fatal("every=1 must sample every frame")
		}
	}
	if tr.Cap() < 16 {
		t.Fatalf("ring cap = %d", tr.Cap())
	}
}

func TestTracerHopOrderAndFields(t *testing.T) {
	tr := NewTracer(1, 64)
	id1, _ := tr.Sample()
	id2, _ := tr.Sample()
	tr.Hop(id1, StageGen, 100, 64, 0)
	tr.Hop(id1, StageSubmit, 150, 64, 1)
	tr.Hop(id2, StageGen, 200, 1518, 0)
	tr.Hop(id1, StageVerdict, 300, 64, 2)
	tr.Hop(0, StageGen, 999, 1, 0) // unsampled: dropped

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	want := []struct {
		id    uint64
		stage Stage
		time  uint64
		ln    uint32
		aux   uint8
	}{
		{id1, StageGen, 100, 64, 0},
		{id1, StageSubmit, 150, 64, 1},
		{id2, StageGen, 200, 1518, 0},
		{id1, StageVerdict, 300, 64, 2},
	}
	for i, w := range want {
		e := evs[i]
		if e.ID != w.id || e.Stage != w.stage || e.TimeNs != w.time || e.Len != w.ln || e.Aux != w.aux {
			t.Fatalf("event %d = %+v, want %+v", i, e, w)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(1, 16)
	for i := 0; i < 100; i++ {
		tr.Hop(uint64(i+1), StageRx, uint64(i), 64, 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("wrapped ring holds %d events, want 16", len(evs))
	}
	// Oldest first: the surviving events are frames 85..100.
	if evs[0].ID != 85 || evs[15].ID != 100 {
		t.Fatalf("wrap kept IDs %d..%d, want 85..100", evs[0].ID, evs[15].ID)
	}
}

func TestTracerCurrent(t *testing.T) {
	tr := NewTracer(1, 16)
	if tr.Current() != 0 {
		t.Fatal("fresh current != 0")
	}
	tr.SetCurrent(7)
	if tr.Current() != 7 {
		t.Fatal("current not set")
	}
	tr.SetCurrent(0)
	if tr.Current() != 0 {
		t.Fatal("current not cleared")
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2, 16)
	tr.Sample()
	id, _ := tr.Sample()
	tr.Hop(id, StageGen, 1, 1, 0)
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Seen() != 0 || tr.Sampled() != 0 {
		t.Fatal("reset did not clear the tracer")
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageGen; s <= StageTx; s++ {
		if name := s.String(); name == "" || name == fmt.Sprintf("stage(%d)", uint8(s)) {
			t.Fatalf("stage %d has no proper name", s)
		}
	}
	if StageGen.String() != "gen" || StageVerdict.String() != "verdict" {
		t.Fatalf("stage names wrong: %s %s", StageGen, StageVerdict)
	}
	if Stage(99).String() != "stage(99)" {
		t.Fatalf("fallback = %s", Stage(99))
	}
}

// TestTracerConcurrent is the race-detector regression: recorders and
// dumpers hammer the ring at once; the dump must only ever surface fully
// published, untorn events.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				id, ok := tr.Sample()
				if ok {
					// Encode id into every field so a torn read is detectable.
					tr.Hop(id, StageRx, id*3, int(uint32(id)), uint8(id))
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, e := range tr.Events() {
					if e.TimeNs != e.ID*3 || e.Len != uint32(e.ID) || e.Aux != uint8(e.ID) {
						t.Errorf("torn event surfaced: %+v", e)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
