package apps

import (
	"encoding/json"
	"fmt"

	"flexsfp/internal/opt"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
	"flexsfp/internal/xdp"
)

// XDPConfig carries a verified XDP program in the bitstream manifest:
// the §4.2 workflow where "the developer writes the packet function
// (e.g., an XDP program)" and the toolchain integrates it into the shell.
type XDPConfig struct {
	Program xdp.Program `json:"program"`
	// Direction limits execution (default both).
	Direction string `json:"direction,omitempty"`
	// Optimize runs the opt pass pipeline over the program at
	// configuration time: redundancy elimination shrinks the instruction
	// store, and VLIW packing (opt.ScheduleCycles) replaces the scalar
	// one-instruction-per-clock service time with the packed schedule
	// length, raising CapacityPPS for instruction-bound programs.
	Optimize bool `json:"optimize,omitempty"`
}

// XDP counter indexes (bank "xdp").
const (
	XDPPass = iota
	XDPDrop
	XDPTx
	XDPRedirect
	XDPAborted
	xdpCounters
)

type xdpApp struct {
	prog  *ppe.Program
	state *ppe.State
	ctr   *ppe.CounterBank
	vm    *xdp.Program
	dir   string
}

// NewXDPApp builds an unconfigured XDP host app; Configure supplies the
// program. Before configuration the app refuses to run (structure-only
// placeholder).
func NewXDPApp() *xdpApp {
	a := &xdpApp{state: ppe.NewState()}
	a.ctr = a.state.AddCounters("xdp", xdpCounters)
	a.prog = &ppe.Program{
		Name:        "xdp",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
		Stages:      1,
		Handler:     ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict { return ppe.VerdictDrop }),
	}
	return a
}

// Program implements core.App.
func (a *xdpApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *xdpApp) State() *ppe.State { return a.state }

// Configure implements core.App: it verifies the embedded program and
// rebuilds the declarative structure from it (instruction count drives
// the synthesis estimate), keeping the handler counter-instrumented.
func (a *xdpApp) Configure(config []byte) error {
	if len(config) == 0 {
		return fmt.Errorf("xdp: config with a program is required")
	}
	var cfg XDPConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("xdp: %w", err)
	}
	vm := &cfg.Program
	packedCycles := 0
	if cfg.Optimize {
		optimized, rep, err := opt.OptimizeXDP(vm, opt.Options{})
		if err != nil {
			return err
		}
		vm = optimized
		packedCycles = rep.PackedCycles
	}
	offloaded, err := xdp.Offload(vm)
	if err != nil {
		return err
	}
	if packedCycles > 0 {
		// The packed VLIW schedule, not the scalar retire rate, sets the
		// soft core's per-packet occupancy.
		offloaded.ProgCycles = packedCycles
	}
	a.vm = vm
	a.dir = cfg.Direction
	// Keep the PPE app name stable ("xdp") so the registry resolves it,
	// but inherit the offload's structure.
	offloaded.Name = "xdp"
	offloaded.Actions = append(offloaded.Actions,
		ppe.ActionSpec{Kind: ppe.ActionCounterBank, Count: xdpCounters})
	offloaded.Handler = ppe.HandlerFunc(a.handle)
	a.prog = offloaded
	return nil
}

func (a *xdpApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !dirEnabled(a.dir, ctx.Dir) {
		return ppe.VerdictPass
	}
	act, err := a.vm.Run(ctx.Data)
	if err != nil {
		a.ctr.Inc(XDPAborted, len(ctx.Data))
		return ppe.VerdictDrop
	}
	switch act {
	case xdp.ActPass:
		a.ctr.Inc(XDPPass, len(ctx.Data))
		return ppe.VerdictPass
	case xdp.ActTx:
		a.ctr.Inc(XDPTx, len(ctx.Data))
		return ppe.VerdictTx
	case xdp.ActRedirect:
		a.ctr.Inc(XDPRedirect, len(ctx.Data))
		return ppe.VerdictRedirect
	default:
		a.ctr.Inc(XDPDrop, len(ctx.Data))
		return ppe.VerdictDrop
	}
}
