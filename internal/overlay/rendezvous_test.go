package overlay

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/mgmt"
)

func testEndpoint(i int) mgmt.OverlayEndpoint {
	mode := apps.MeshModeGRE
	if i%2 == 1 {
		mode = apps.MeshModeVXLAN
	}
	return mgmt.OverlayEndpoint{
		Name: fmt.Sprintf("cable-%d", i),
		IP:   CableIP(i), MAC: CableMAC(i), Mode: mode,
		VNI: 4000 + uint32(i+1), GREKey: 700 + uint32(i+1),
		Prefixes: []mgmt.OverlayPrefix{DefaultPrefix(i)},
	}
}

// The table is a pure function of the registered set: two rendezvous
// fed the same endpoints in different orders produce identical tables.
func TestRendezvousTableOrderIndependent(t *testing.T) {
	a, b := NewRendezvous(), NewRendezvous()
	for i := 0; i < 4; i++ {
		a.Register(testEndpoint(i))
	}
	for i := 3; i >= 0; i-- {
		b.Register(testEndpoint(i))
	}
	ta, tb := a.Table(), b.Table()
	// Stable IDs follow registration order, so normalize them away: what
	// must agree is names, prefixes, and name-level route ownership.
	type route struct {
		prefix mgmt.OverlayPrefix
		owner  string
	}
	norm := func(tab mgmt.OverlayTable) (names []string, routes []route) {
		byID := map[uint16]string{}
		for _, p := range tab.Peers {
			names = append(names, p.Name)
			byID[p.ID] = p.Name
		}
		for _, r := range tab.Routes {
			routes = append(routes, route{r.Prefix, byID[r.Peer]})
		}
		return
	}
	an, ar := norm(ta)
	bn, br := norm(tb)
	if !reflect.DeepEqual(an, bn) || !reflect.DeepEqual(ar, br) {
		t.Fatalf("order-dependent table:\n a: %v %v\n b: %v %v", an, ar, bn, br)
	}
	if ta.Generation != 4 || tb.Generation != 4 {
		t.Fatalf("generations = %d, %d, want 4", ta.Generation, tb.Generation)
	}
}

// Stable IDs: a name keeps its ID across withdraw/re-register, and IDs
// are never reused for new names.
func TestRendezvousStableIDs(t *testing.T) {
	r := NewRendezvous()
	r.Register(testEndpoint(0))
	r.Register(testEndpoint(1))
	id1 := r.Table().Peers[1].ID
	if _, ok := r.Withdraw("cable-1"); !ok {
		t.Fatal("withdraw of live endpoint failed")
	}
	r.Register(testEndpoint(2))
	r.Register(testEndpoint(1))
	tab := r.Table()
	ids := map[string]uint16{}
	for _, p := range tab.Peers {
		ids[p.Name] = p.ID
	}
	if ids["cable-1"] != id1 {
		t.Fatalf("cable-1 renumbered: %d -> %d", id1, ids["cable-1"])
	}
	if ids["cable-2"] == id1 || ids["cable-2"] == ids["cable-0"] {
		t.Fatalf("id reuse: %v", ids)
	}
}

// Route ownership walks the re-route state machine: primary-owned →
// backup-owned on withdrawal → back on re-registration → unrouted when
// every announcer is gone.
func TestRendezvousFailover(t *testing.T) {
	r := NewRendezvous()
	primary := testEndpoint(0)
	backup := testEndpoint(1)
	shared := mgmt.OverlayPrefix{IP: [4]byte{10, 200, 1, 0}, Len: 24}
	primary.Prefixes = []mgmt.OverlayPrefix{shared}
	backup.Prefixes = []mgmt.OverlayPrefix{{IP: shared.IP, Len: 24, Priority: 1}}
	r.Register(primary)
	r.Register(backup)

	owner := func() (string, bool) {
		tab := r.Table()
		for _, rt := range tab.Routes {
			if rt.Prefix.IP == shared.IP {
				for _, p := range tab.Peers {
					if p.ID == rt.Peer {
						return p.Name, true
					}
				}
			}
		}
		return "", false
	}
	if o, ok := owner(); !ok || o != "cable-0" {
		t.Fatalf("initial owner = %q, %v, want primary cable-0", o, ok)
	}
	r.Withdraw("cable-0")
	if o, ok := owner(); !ok || o != "cable-1" {
		t.Fatalf("post-withdraw owner = %q, %v, want backup cable-1", o, ok)
	}
	r.Register(primary)
	if o, ok := owner(); !ok || o != "cable-0" {
		t.Fatalf("post-recovery owner = %q, %v, want cable-0 again", o, ok)
	}
	r.Withdraw("cable-0")
	r.Withdraw("cable-1")
	if _, ok := owner(); ok {
		t.Fatal("prefix still routed with no announcers")
	}
}

// The rendezvous speaks well-formed protocol for every request shape.
func TestRendezvousHandleProtocol(t *testing.T) {
	r := NewRendezvous()
	roundTrip := func(t *testing.T, req []byte) mgmt.Message {
		t.Helper()
		resp, err := mgmt.DecodeMessage(r.Handle(req))
		if err != nil {
			t.Fatalf("undecodable response: %v", err)
		}
		return resp
	}
	expectErr := func(t *testing.T, req []byte, code uint16) {
		t.Helper()
		resp := roundTrip(t, req)
		if resp.Type != mgmt.MsgError {
			t.Fatalf("response type = %d, want MsgError", resp.Type)
		}
		got, _, err := mgmt.ParseError(resp.Body)
		if err != nil || got != code {
			t.Fatalf("error code = %d (%v), want %d", got, err, code)
		}
	}

	expectErr(t, []byte("garbage"), mgmt.CodeBadBody)
	expectErr(t, mgmt.Message{Type: mgmt.MsgStats, ReqID: 1}.Encode(), mgmt.CodeUnknownType)
	expectErr(t, mgmt.Message{Type: mgmt.MsgOverlayRegister, ReqID: 2, Body: []byte{0}}.Encode(), mgmt.CodeBadBody)
	badMode := testEndpoint(0)
	badMode.Mode = 9
	expectErr(t, mgmt.Message{Type: mgmt.MsgOverlayRegister, ReqID: 3,
		Body: mgmt.EncodeOverlayRegister(badMode)}.Encode(), mgmt.CodeBadBody)
	expectErr(t, mgmt.Message{Type: mgmt.MsgOverlayWithdraw, ReqID: 4,
		Body: mgmt.EncodeOverlayWithdraw("nobody")}.Encode(), mgmt.CodeNoSuchObject)

	if resp := roundTrip(t, mgmt.Message{Type: mgmt.MsgPing, ReqID: 5}.Encode()); resp.Type != mgmt.MsgOK || resp.ReqID != 5 {
		t.Fatalf("ping response = %+v", resp)
	}

	// Full client round trip over the Handle transport.
	c := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		return r.Handle(req), nil
	}))
	if gen, err := c.OverlayRegister(testEndpoint(0)); err != nil || gen != 1 {
		t.Fatalf("register via client: gen %d, %v", gen, err)
	}
	tab, err := c.OverlayPeers()
	if err != nil || len(tab.Peers) != 1 || tab.Peers[0].Name != "cable-0" {
		t.Fatalf("peers via client: %+v, %v", tab, err)
	}
	if gen, err := c.OverlayWithdraw("cable-0"); err != nil || gen != 2 {
		t.Fatalf("withdraw via client: gen %d, %v", gen, err)
	}
}

// Rendezvous churn under -race: concurrent register/withdraw/poll from
// many goroutines must be data-race-free, and the final table must equal
// the final registered set exactly.
func TestRendezvousChurnRace(t *testing.T) {
	r := NewRendezvous()
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
				return r.Handle(req), nil
			}))
			e := testEndpoint(w)
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					if _, err := c.OverlayRegister(e); err != nil {
						t.Errorf("register: %v", err)
						return
					}
				case 1:
					if _, err := c.OverlayPeers(); err != nil {
						t.Errorf("peers: %v", err)
						return
					}
				case 2:
					// May race with our own re-registration cycle only;
					// NoSuchObject is the one legal failure.
					if _, err := c.OverlayWithdraw(e.Name); err != nil {
						var re *mgmt.RemoteError
						if !errors.As(err, &re) || re.Code != mgmt.CodeNoSuchObject {
							t.Errorf("withdraw: %v", err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settle into a known final state and verify it exactly.
	for w := 0; w < workers; w++ {
		r.Withdraw(fmt.Sprintf("cable-%d", w))
	}
	for w := 0; w < 3; w++ {
		r.Register(testEndpoint(w))
	}
	tab := r.Table()
	if len(tab.Peers) != 3 || len(tab.Routes) != 3 {
		t.Fatalf("final table: %d peers, %d routes, want 3 and 3", len(tab.Peers), len(tab.Routes))
	}
	for i, p := range tab.Peers {
		if want := fmt.Sprintf("cable-%d", i); p.Name != want {
			t.Fatalf("peer %d = %q, want %q", i, p.Name, want)
		}
	}
}
