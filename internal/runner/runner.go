// Package runner is the deterministic fan-out harness used by every
// multi-trial experiment and by the sharded Monte-Carlo simulations: it
// runs n independent trials on a bounded worker pool and merges their
// results in trial order, while guaranteeing that the merged output is
// bit-identical regardless of worker count or goroutine scheduling.
//
// Determinism comes from two rules. First, a trial never shares mutable
// state with another trial: each invocation receives its own *rand.Rand,
// seeded from the root seed and the trial index through a SplitMix64
// mixer (TrialSeed), so the randomness a trial sees is a pure function of
// (seed, trial). Second, results are written into a slice indexed by
// trial and returned in that order, so the merge is independent of
// completion order. Together these make `-parallel 1` and `-parallel 64`
// produce the same bytes, which is what lets the experiment suite claim
// reproducibility while still using every core.
package runner

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
)

// Options configure a Map or Run invocation.
type Options struct {
	// Parallelism bounds the number of concurrent workers. Zero or
	// negative means GOMAXPROCS.
	Parallelism int
	// Seed is the root seed from which per-trial seeds are derived.
	Seed int64
	// Context, when non-nil, cancels the run early. Map returns
	// ctx.Err() and the partial results produced so far.
	Context context.Context
}

func (o Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// TrialSeed derives the seed for one trial from the root seed using the
// SplitMix64 finalizer. Derived seeds are well-distributed even for
// consecutive roots and trials, and trial i's seed never depends on how
// many trials run or on which worker executes it.
func TrialSeed(root int64, trial int) int64 {
	z := uint64(root) + (uint64(trial)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// TrialRand returns the deterministic random source for one trial.
func TrialRand(root int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(root, trial)))
}

// Map runs fn for trials 0..n-1 on up to Options.Parallelism workers and
// returns the results in trial order. fn receives the trial index and a
// private deterministic RNG; it must not touch state shared with other
// trials.
//
// On error, Map cancels remaining trials and returns the error raised by
// the lowest-numbered failing trial (deterministic first-error
// propagation: the same trial's error surfaces no matter which worker hit
// an error first in wall-clock time). The returned slice always has n
// entries; entries for trials that did not complete are zero values.
func Map[T any](n int, opts Options, fn func(trial int, rng *rand.Rand) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errTrial = n // lowest failing trial index seen so far
	)
	fail := func(trial int, err error) {
		mu.Lock()
		if trial < errTrial {
			errTrial, firstErr = trial, err
		}
		mu.Unlock()
		cancel()
	}

	workers := opts.workers(n)
	if workers == 1 {
		// Fast path: no goroutines, no channel — identical semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			r, err := fn(i, TrialRand(opts.Seed, i))
			if err != nil {
				fail(i, err)
				break
			}
			results[i] = r
		}
		return results, firstErr
	}

	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range trials {
				if ctx.Err() != nil {
					continue // drain
				}
				r, err := fn(i, TrialRand(opts.Seed, i))
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = r
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case trials <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(trials)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil && opts.Context != nil {
		err = opts.Context.Err()
	}
	return results, err
}

// Run executes heterogeneous jobs concurrently under the same pool
// discipline as Map and returns the error of the lowest-numbered failing
// job. It is how flexsfp-bench overlaps independent experiments.
func Run(opts Options, jobs ...func() error) error {
	_, err := Map(len(jobs), opts, func(i int, _ *rand.Rand) (struct{}, error) {
		return struct{}{}, jobs[i]()
	})
	return err
}
