package core

import (
	"errors"
	"testing"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
)

// compileVersioned builds a "pass" image with an explicit app version.
func compileVersioned(t *testing.T, reg *Registry, version uint32, golden bool) []byte {
	t.Helper()
	app, err := reg.New("pass")
	if err != nil {
		t.Fatal(err)
	}
	prog := app.Program()
	prog.Version = version
	d, err := hls.Compile(prog, hls.Options{
		ClockHz: 156_250_000, DatapathBits: 64, Golden: golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := d.Bitstream.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// newGoldenPlusApp provisions golden in slot 0 and a working app in slot 1,
// booted into slot 1.
func newGoldenPlusApp(t *testing.T, sim *netsim.Simulator) *Module {
	t.Helper()
	reg := testRegistry()
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: []byte("k")})
	if _, err := m.Install(0, compileVersioned(t, reg, 1, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(1, compileVersioned(t, reg, 1, false)); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWatchdogTripFallsBackToGolden(t *testing.T) {
	sim := netsim.New(1)
	m := newGoldenPlusApp(t, sim)
	// The app design comes up wedged: it passes configuration but fails
	// its post-reconfigure health check. Golden is always healthy.
	m.SetHealthProbe(func(slot int) bool { return slot == 0 })

	m.Reboot(1)
	sim.Run()

	if !m.Running() {
		t.Fatal("module dead after watchdog recovery")
	}
	if m.ActiveSlot() != 0 {
		t.Errorf("active slot = %d, want golden fallback to 0", m.ActiveSlot())
	}
	st := m.Stats()
	if st.WatchdogTrips != 1 || st.GoldenFallbacks != 1 {
		t.Errorf("stats = %+v, want 1 trip and 1 golden fallback", st)
	}
}

func TestWatchdogHealthyDesignUntouched(t *testing.T) {
	sim := netsim.New(1)
	m := newGoldenPlusApp(t, sim)
	probes := 0
	m.SetHealthProbe(func(slot int) bool { probes++; return true })

	m.Reboot(1)
	sim.Run()

	if !m.Running() || m.ActiveSlot() != 1 {
		t.Errorf("running=%v slot=%d, want healthy design kept", m.Running(), m.ActiveSlot())
	}
	if probes != 1 {
		t.Errorf("probes = %d, want exactly 1", probes)
	}
	if st := m.Stats(); st.WatchdogTrips != 0 || st.GoldenFallbacks != 0 {
		t.Errorf("stats = %+v, want no trips", st)
	}
}

func TestBootFailureFallsBackToPreviousSlot(t *testing.T) {
	sim := netsim.New(1)
	m := newGoldenPlusApp(t, sim)
	// Reboot into an empty slot: the boot fails and the FSM restores the
	// previously running design before ever considering golden.
	m.Reboot(3)
	sim.Run()
	if !m.Running() || m.ActiveSlot() != 1 {
		t.Errorf("running=%v slot=%d, want previous slot 1", m.Running(), m.ActiveSlot())
	}
	st := m.Stats()
	if st.BootFailures != 1 {
		t.Errorf("BootFailures = %d", st.BootFailures)
	}
	if st.GoldenFallbacks != 0 {
		t.Errorf("GoldenFallbacks = %d; previous-slot recovery is not golden", st.GoldenFallbacks)
	}
}

func TestAntiRollbackRejectsStaleVersion(t *testing.T) {
	sim := netsim.New(1)
	reg := testRegistry()
	key := []byte("k")
	m := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: key})
	v2 := compileVersioned(t, reg, 2, false)
	if _, err := m.InstallSigned(1, bitstream.Sign(v2, key)); err != nil {
		t.Fatal(err)
	}
	if err := m.BootSync(1); err != nil {
		t.Fatal(err)
	}

	// An older, correctly signed image of the running app is refused.
	v1 := compileVersioned(t, reg, 1, false)
	if _, err := m.InstallSigned(2, bitstream.Sign(v1, key)); !errors.Is(err, bitstream.ErrStaleVersion) {
		t.Errorf("stale install: err = %v, want ErrStaleVersion", err)
	}
	// Re-pushing the running version is idempotent.
	if _, err := m.InstallSigned(2, bitstream.Sign(v2, key)); err != nil {
		t.Errorf("equal-version install: %v", err)
	}
	// Newer versions pass.
	v3 := compileVersioned(t, reg, 3, false)
	if _, err := m.InstallSigned(2, bitstream.Sign(v3, key)); err != nil {
		t.Errorf("newer-version install: %v", err)
	}
	// Freshness never blocks before anything runs: fresh modules accept
	// any version (the factory-provisioning path).
	m2 := NewModule(Config{Sim: sim, Shell: hls.TwoWayCore, Registry: reg, AuthKey: key})
	if _, err := m2.InstallSigned(1, bitstream.Sign(v1, key)); err != nil {
		t.Errorf("install on fresh module: %v", err)
	}
}
