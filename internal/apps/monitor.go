package apps

import (
	"encoding/json"
	"fmt"
	"sync"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// MonitorConfig configures the passive fault detector of §3: "programmable
// SFPs can also play an active role in detecting faults such as link
// flapping, microbursts, or fiber breaks, with a 'wire-level' capillarity
// that centralized tools can hardly achieve."
type MonitorConfig struct {
	// BurstFrames within BurstWindowNs constitutes a microburst.
	BurstFrames   int    `json:"burst_frames,omitempty"`
	BurstWindowNs uint64 `json:"burst_window_ns,omitempty"`
	// GapNs of silence followed by traffic is recorded as a link flap.
	GapNs uint64 `json:"gap_ns,omitempty"`
}

// Monitor counter indexes (bank "events").
const (
	MonMicrobursts = iota
	MonFlaps
	MonFrames
	monCounters
)

// MonitorEvent is one detected anomaly.
type MonitorEvent struct {
	Kind string // "microburst" or "flap"
	AtNs uint64
	Dir  ppe.Direction
	// Detail: frames in the burst, or the silence gap in ns.
	Detail uint64
}

// monMaxEvents bounds event memory.
const monMaxEvents = 4096

// monDirState is per-direction detection state.
type monDirState struct {
	seen        bool
	lastArrival uint64
	burstStart  uint64
	burstCount  int
	burstFired  bool
}

type monitorApp struct {
	prog  *ppe.Program
	state *ppe.State
	ctr   *ppe.CounterBank
	cfg   MonitorConfig

	dirs [2]monDirState

	mu     sync.Mutex
	events []MonitorEvent
}

// NewMonitor builds a fault-detection instance.
func NewMonitor() *monitorApp {
	a := &monitorApp{state: ppe.NewState()}
	a.ctr = a.state.AddCounters("events", monCounters)
	a.prog = &ppe.Program{
		Name:        "monitor",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
		Registers: []ppe.RegisterSpec{
			{Name: "last_arrival", Bits: 64},
			{Name: "burst_count", Bits: 32},
		},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionTimestamp},
			{Kind: ppe.ActionCounterBank, Count: monCounters},
		},
		Stages:  1,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *monitorApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *monitorApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *monitorApp) Configure(config []byte) error {
	a.cfg = MonitorConfig{
		BurstFrames:   32,
		BurstWindowNs: 10_000,        // 32 frames in 10 µs ≈ 3.2 Mpps spike
		GapNs:         1_000_000_000, // 1 s of silence = flap
	}
	if len(config) == 0 {
		return nil
	}
	var cfg MonitorConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("monitor: %w", err)
	}
	if cfg.BurstFrames > 0 {
		a.cfg.BurstFrames = cfg.BurstFrames
	}
	if cfg.BurstWindowNs > 0 {
		a.cfg.BurstWindowNs = cfg.BurstWindowNs
	}
	if cfg.GapNs > 0 {
		a.cfg.GapNs = cfg.GapNs
	}
	return nil
}

// Events drains recorded anomalies.
func (a *monitorApp) Events() []MonitorEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.events
	a.events = nil
	return out
}

func (a *monitorApp) record(e MonitorEvent) {
	a.mu.Lock()
	if len(a.events) < monMaxEvents {
		a.events = append(a.events, e)
	}
	a.mu.Unlock()
}

func (a *monitorApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	a.ctr.Inc(MonFrames, len(ctx.Data))
	t := ctx.TimestampNs
	d := &a.dirs[ctx.Dir&1]

	// Link flap: a long silence followed by traffic resuming.
	if d.seen && t-d.lastArrival >= a.cfg.GapNs {
		a.ctr.Inc(MonFlaps, 0)
		a.record(MonitorEvent{Kind: "flap", AtNs: t, Dir: ctx.Dir, Detail: t - d.lastArrival})
		// A flap resets burst tracking.
		d.burstStart, d.burstCount, d.burstFired = t, 0, false
	}
	d.seen = true
	d.lastArrival = t

	// Microburst: too many frames inside the sliding window.
	if t-d.burstStart <= a.cfg.BurstWindowNs {
		d.burstCount++
		if d.burstCount >= a.cfg.BurstFrames && !d.burstFired {
			d.burstFired = true
			a.ctr.Inc(MonMicrobursts, 0)
			a.record(MonitorEvent{Kind: "microburst", AtNs: t, Dir: ctx.Dir, Detail: uint64(d.burstCount)})
		}
	} else {
		d.burstStart = t
		d.burstCount = 1
		d.burstFired = false
	}

	return ppe.VerdictPass
}
