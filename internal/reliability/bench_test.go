package reliability

import (
	"fmt"
	"testing"
)

// BenchmarkFleet10k measures the paper-scale fleet simulation (10,000
// modules, 10 years, quarterly sweeps) through the default sharded path.
func BenchmarkFleet10k(b *testing.B) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := RunFleet(int64(i+1), m, cfg)
		if rep.Failures == 0 {
			b.Fatal("no failures")
		}
	}
}

// BenchmarkFleet10kSerial is the single-goroutine reference: the speedup
// of BenchmarkFleet10k over this is the fleet parallelization win (≈1× on
// a single-core host, approaching the core count on larger machines
// because shards are embarrassingly parallel).
func BenchmarkFleet10kSerial(b *testing.B) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := RunFleetSerial(int64(i+1), m, cfg)
		if rep.Failures == 0 {
			b.Fatal("no failures")
		}
	}
}

// BenchmarkFleetTrials8 measures the 8-seed trial sweep that the
// multi-trial reliability experiment runs (the fan-out unit the
// acceptance speedup criterion is stated over).
func BenchmarkFleetTrials8(b *testing.B) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := RunFleetTrials(int64(i+1), 8, m, cfg, 0)
		if tr.Failures.Mean == 0 {
			b.Fatal("no failures")
		}
	}
}

// BenchmarkFleetTrials8Serial is the same sweep forced onto one worker.
func BenchmarkFleetTrials8Serial(b *testing.B) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := RunFleetTrials(int64(i+1), 8, m, cfg, 1)
		if tr.Failures.Mean == 0 {
			b.Fatal("no failures")
		}
	}
}

// BenchmarkFleet10kPDES runs the same fleet on the parallel simulation
// core: partitions pinned to event-heap shards, executed by the window
// synchronizer. Compare against BenchmarkFleet10kSerial for the PDES
// speedup and against BenchmarkFleet10k for the overhead versus the
// bespoke goroutine fan-out.
func BenchmarkFleet10kPDES(b *testing.B) {
	m := DefaultVCSEL()
	cfg := DefaultFleet()
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := RunFleetSharded(int64(i+1), m, cfg, shards)
				if rep.Failures == 0 {
					b.Fatal("no failures")
				}
			}
		})
	}
}
