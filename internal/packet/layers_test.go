package packet

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
)

var (
	macA = MustMAC("02:00:00:00:00:0a")
	macB = MustMAC("02:00:00:00:00:0b")
	ip1  = netip.MustParseAddr("10.0.0.1")
	ip2  = netip.MustParseAddr("192.168.1.2")
	ip61 = netip.MustParseAddr("2001:db8::1")
	ip62 = netip.MustParseAddr("2001:db8::2")
)

func serialize(t *testing.T, opts SerializeOptions, layers ...SerializableLayer) []byte {
	t.Helper()
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, opts, layers...); err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

var fixOpts = SerializeOptions{FixLengths: true, ComputeChecksums: true}

func TestEthernetRoundTrip(t *testing.T) {
	pl := Payload([]byte("hello"))
	data := serialize(t, fixOpts, &Ethernet{SrcMAC: macA, DstMAC: macB, EtherType: EtherTypeIPv4}, &pl)
	var eth Ethernet
	if err := eth.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if eth.SrcMAC != macA || eth.DstMAC != macB {
		t.Errorf("MACs = %v/%v", eth.SrcMAC, eth.DstMAC)
	}
	if eth.EtherType != EtherTypeIPv4 {
		t.Errorf("EtherType = %#x", eth.EtherType)
	}
	if string(eth.LayerPayload()) != "hello" {
		t.Errorf("payload = %q", eth.LayerPayload())
	}
	if eth.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("NextLayerType = %v", eth.NextLayerType())
	}
}

func TestEthernetTooShort(t *testing.T) {
	var eth Ethernet
	if err := eth.DecodeFromBytes(make([]byte, 13)); !errors.Is(err, ErrTooShort) {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestMACHelpers(t *testing.T) {
	bc := MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if !bc.IsBroadcast() || !bc.IsMulticast() {
		t.Error("broadcast MAC not recognized")
	}
	if macA.IsBroadcast() || macA.IsMulticast() {
		t.Error("unicast MAC misclassified")
	}
	mc := MAC{0x01, 0x00, 0x5e, 0, 0, 1}
	if !mc.IsMulticast() || mc.IsBroadcast() {
		t.Error("multicast MAC misclassified")
	}
	if macA.String() != "02:00:00:00:00:0a" {
		t.Errorf("String = %q", macA.String())
	}
	if _, err := ParseMAC("not-a-mac"); err == nil {
		t.Error("ParseMAC accepted garbage")
	}
	if _, err := ParseMAC("02:00:00:00:00:00:00:01"); err == nil {
		t.Error("ParseMAC accepted 64-bit EUI")
	}
}

func TestDot1QRoundTrip(t *testing.T) {
	pl := Payload([]byte{1, 2, 3})
	data := serialize(t, fixOpts,
		&Ethernet{SrcMAC: macA, DstMAC: macB, EtherType: EtherTypeDot1Q},
		&Dot1Q{Priority: 5, DropEligible: true, VLAN: 100, EtherType: EtherTypeIPv4},
		&pl)
	var eth Ethernet
	var tag Dot1Q
	if err := eth.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if err := tag.DecodeFromBytes(eth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if tag.VLAN != 100 || tag.Priority != 5 || !tag.DropEligible {
		t.Errorf("tag = %+v", tag)
	}
	if tag.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("NextLayerType = %v", tag.NextLayerType())
	}
}

func TestDot1QVLANRange(t *testing.T) {
	buf := NewSerializeBuffer()
	err := (&Dot1Q{VLAN: 5000}).SerializeTo(buf, fixOpts)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestQinQStack(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		VLANs: []uint16{200, 30},
		SrcIP: ip1, DstIP: ip2,
		SrcPort: 1000, DstPort: 2000,
	})
	pkt := NewPacket(data, LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	var vlans []uint16
	for _, l := range pkt.Layers() {
		if d, ok := l.(*Dot1Q); ok {
			vlans = append(vlans, d.VLAN)
		}
	}
	if len(vlans) != 2 || vlans[0] != 200 || vlans[1] != 30 {
		t.Errorf("vlans = %v, want [200 30]", vlans)
	}
	eth := pkt.Layer(LayerTypeEthernet).(*Ethernet)
	if eth.EtherType != EtherTypeQinQ {
		t.Errorf("outer EtherType = %#x, want QinQ", eth.EtherType)
	}
	if pkt.Layer(LayerTypeUDP) == nil {
		t.Error("UDP not reached through QinQ stack")
	}
}

func TestMPLSRoundTrip(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2}
	udp := &UDP{SrcPort: 1, DstPort: 2}
	if err := udp.SetNetworkLayerForChecksum(ip1, ip2); err != nil {
		t.Fatal(err)
	}
	data := serialize(t, fixOpts,
		&Ethernet{SrcMAC: macA, DstMAC: macB, EtherType: EtherTypeMPLSUnicast},
		&MPLS{Label: 12345, TC: 3, BottomStack: true, TTL: 60},
		ip, udp)
	pkt := NewPacket(data, LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	m := pkt.Layer(LayerTypeMPLS)
	if m == nil {
		t.Fatal("no MPLS layer")
	}
	mp := m.(*MPLS)
	if mp.Label != 12345 || mp.TC != 3 || !mp.BottomStack || mp.TTL != 60 {
		t.Errorf("mpls = %+v", mp)
	}
	if pkt.Layer(LayerTypeIPv4) == nil {
		t.Error("IPv4 after bottom-of-stack not decoded")
	}
}

func TestMPLSStacked(t *testing.T) {
	pl := Payload(nil)
	data := serialize(t, fixOpts,
		&MPLS{Label: 1, BottomStack: false, TTL: 64},
		&MPLS{Label: 2, BottomStack: true, TTL: 64},
		&pl)
	var outer MPLS
	if err := outer.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if outer.NextLayerType() != LayerTypeMPLS {
		t.Errorf("NextLayerType = %v, want MPLS", outer.NextLayerType())
	}
}

func TestMPLSLabelRange(t *testing.T) {
	buf := NewSerializeBuffer()
	err := (&MPLS{Label: 1 << 20}).SerializeTo(buf, fixOpts)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Operation: ARPRequest,
		SenderMAC: macA, SenderIP: ip1,
		TargetMAC: MAC{}, TargetIP: ip2,
	}
	data := serialize(t, fixOpts, a)
	var got ARP
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.Operation != ARPRequest || got.SenderIP != ip1 || got.TargetIP != ip2 || got.SenderMAC != macA {
		t.Errorf("arp = %+v", got)
	}
}

func TestARPRejectsIPv6(t *testing.T) {
	buf := NewSerializeBuffer()
	err := (&ARP{SenderIP: ip61, TargetIP: ip62}).SerializeTo(buf, fixOpts)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := &IPv4{
		TOS: 0x10, ID: 777, DontFrag: true, TTL: 33,
		Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2,
	}
	udp := &UDP{SrcPort: 5353, DstPort: 53}
	if err := udp.SetNetworkLayerForChecksum(ip1, ip2); err != nil {
		t.Fatal(err)
	}
	pl := Payload(bytes.Repeat([]byte{0xab}, 32))
	data := serialize(t, fixOpts, ip, udp, &pl)
	var got IPv4
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != ip1 || got.DstIP != ip2 || got.TTL != 33 || !got.DontFrag || got.ID != 777 || got.TOS != 0x10 {
		t.Errorf("ip = %+v", got)
	}
	if int(got.Length) != len(data) {
		t.Errorf("Length = %d, want %d", got.Length, len(data))
	}
	if !VerifyIPv4Checksum(data) {
		t.Error("header checksum does not verify")
	}
	data[8] ^= 1 // TTL changed: checksum must now fail
	if VerifyIPv4Checksum(data) {
		t.Error("checksum verified after corruption")
	}
}

func TestIPv4Malformed(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", make([]byte, 10), ErrTooShort},
		{"version6", func() []byte { b := make([]byte, 20); b[0] = 0x65; return b }(), ErrBadHeader},
		{"ihl-too-small", func() []byte { b := make([]byte, 20); b[0] = 0x43; return b }(), ErrBadHeader},
		{"total-less-than-ihl", func() []byte {
			b := make([]byte, 20)
			b[0] = 0x45
			b[3] = 10
			return b
		}(), ErrBadHeader},
		{"truncated", func() []byte {
			b := make([]byte, 20)
			b[0] = 0x45
			b[2], b[3] = 0, 100
			return b
		}(), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ip IPv4
			if err := ip.DecodeFromBytes(tc.data); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestIPv4Fragment(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2, FragOffset: 100}
	pl := Payload([]byte{1, 2, 3, 4})
	data := serialize(t, fixOpts, ip, &pl)
	var got IPv4
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.FragOffset != 100 {
		t.Errorf("FragOffset = %d", got.FragOffset)
	}
	if got.NextLayerType() != LayerTypePayload {
		t.Error("non-first fragment should be opaque")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := &IPv6{TrafficClass: 0xbb, FlowLabel: 0x12345, NextHeader: IPProtocolTCP, HopLimit: 17, SrcIP: ip61, DstIP: ip62}
	tcp := &TCP{SrcPort: 443, DstPort: 50000, Seq: 9, Window: 100}
	if err := tcp.SetNetworkLayerForChecksum(ip61, ip62); err != nil {
		t.Fatal(err)
	}
	data := serialize(t, fixOpts, ip, tcp)
	var got IPv6
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != ip61 || got.DstIP != ip62 || got.HopLimit != 17 ||
		got.TrafficClass != 0xbb || got.FlowLabel != 0x12345 {
		t.Errorf("ip6 = %+v", got)
	}
	if got.NextLayerType() != LayerTypeTCP {
		t.Errorf("NextLayerType = %v", got.NextLayerType())
	}
	var gotTCP TCP
	if err := gotTCP.DecodeFromBytes(got.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	// Verify the v6 pseudo-header checksum.
	s, d := ip61.As16(), ip62.As16()
	if TransportChecksum(got.LayerPayload(), s[:], d[:], IPProtocolTCP) != 0 {
		t.Error("TCP-over-IPv6 checksum does not verify")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := &TCP{
		SrcPort: 12345, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0xfeedface,
		SYN: true, ACK: true, ECE: true,
		Window: 4096, Urgent: 7,
		Options: []byte{2, 4, 5, 0xb4, 1, 1, 1, 0}, // MSS + NOPs + EOL
	}
	if err := tcp.SetNetworkLayerForChecksum(ip1, ip2); err != nil {
		t.Fatal(err)
	}
	pl := Payload([]byte("GET /"))
	data := serialize(t, fixOpts, tcp, &pl)
	var got TCP
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 12345 || got.DstPort != 80 || got.Seq != 0xdeadbeef || got.Ack != 0xfeedface {
		t.Errorf("tcp = %+v", got)
	}
	if !got.SYN || !got.ACK || !got.ECE || got.FIN || got.RST || got.PSH || got.URG || got.CWR {
		t.Errorf("flags wrong: %+v", got)
	}
	if !bytes.Equal(got.Options, tcp.Options) {
		t.Errorf("options = %x", got.Options)
	}
	if string(got.LayerPayload()) != "GET /" {
		t.Errorf("payload = %q", got.LayerPayload())
	}
	s4, d4 := ip1.As4(), ip2.As4()
	if TransportChecksum(data, s4[:], d4[:], IPProtocolTCP) != 0 {
		t.Error("TCP checksum does not verify")
	}
}

func TestTCPChecksumRequiresNetworkLayer(t *testing.T) {
	buf := NewSerializeBuffer()
	err := (&TCP{}).SerializeTo(buf, fixOpts)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	udp := &UDP{SrcPort: 500, DstPort: 4500}
	if err := udp.SetNetworkLayerForChecksum(ip1, ip2); err != nil {
		t.Fatal(err)
	}
	pl := Payload([]byte{9, 9, 9})
	data := serialize(t, fixOpts, udp, &pl)
	var got UDP
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 500 || got.DstPort != 4500 || got.Length != 11 {
		t.Errorf("udp = %+v", got)
	}
	s4, d4 := ip1.As4(), ip2.As4()
	if TransportChecksum(data, s4[:], d4[:], IPProtocolUDP) != 0 {
		t.Error("UDP checksum does not verify")
	}
}

func TestUDPNextLayer(t *testing.T) {
	u := &UDP{DstPort: PortDNS}
	if u.NextLayerType() != LayerTypeDNS {
		t.Error("dst 53 should be DNS")
	}
	u = &UDP{SrcPort: PortDNS}
	if u.NextLayerType() != LayerTypeDNS {
		t.Error("src 53 should be DNS")
	}
	u = &UDP{DstPort: PortVXLAN}
	if u.NextLayerType() != LayerTypeVXLAN {
		t.Error("dst 4789 should be VXLAN")
	}
	u = &UDP{DstPort: 9999}
	if u.NextLayerType() != LayerTypePayload {
		t.Error("unknown port should be payload")
	}
}

func TestUDPBadLength(t *testing.T) {
	data := []byte{0, 1, 0, 2, 0, 4, 0, 0} // length 4 < 8
	var u UDP
	if err := u.DecodeFromBytes(data); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	ic := &ICMPv4{Type: ICMPv4TypeEchoRequest, ID: 42, Seq: 7}
	pl := Payload([]byte("ping"))
	data := serialize(t, fixOpts, ic, &pl)
	var got ICMPv4
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPv4TypeEchoRequest || got.ID != 42 || got.Seq != 7 {
		t.Errorf("icmp = %+v", got)
	}
	if Checksum(data) != 0 {
		t.Error("ICMP checksum does not verify")
	}
}

func TestGRERoundTrip(t *testing.T) {
	inner := &IPv4{TTL: 9, Protocol: IPProtocolICMPv4, SrcIP: ip1, DstIP: ip2}
	icmp := &ICMPv4{Type: ICMPv4TypeEchoRequest}
	gre := &GRE{KeyPresent: true, Key: 0xcafe, SeqPresent: true, Seq: 3, Protocol: EtherTypeIPv4}
	data := serialize(t, fixOpts, gre, inner, icmp)
	var got GRE
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if !got.KeyPresent || got.Key != 0xcafe || !got.SeqPresent || got.Seq != 3 {
		t.Errorf("gre = %+v", got)
	}
	if got.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("NextLayerType = %v", got.NextLayerType())
	}
	if got.HeaderLength() != 12 {
		t.Errorf("HeaderLength = %d, want 12", got.HeaderLength())
	}
}

func TestGREChecksum(t *testing.T) {
	pl := Payload([]byte{1, 2, 3, 4})
	gre := &GRE{ChecksumPresent: true, Protocol: EtherTypeIPv4}
	data := serialize(t, fixOpts, gre, &pl)
	if Checksum(data) != 0 {
		t.Error("GRE checksum does not verify")
	}
}

func TestGRETransparentEthernet(t *testing.T) {
	g := &GRE{Protocol: EtherTypeTransparentEthernet}
	if g.NextLayerType() != LayerTypeEthernet {
		t.Error("TEB should decode to Ethernet")
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	innerEth := &Ethernet{SrcMAC: macB, DstMAC: macA, EtherType: EtherTypeIPv4}
	innerIP := &IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: ip2, DstIP: ip1}
	innerUDP := &UDP{SrcPort: 7, DstPort: 8}
	if err := innerUDP.SetNetworkLayerForChecksum(ip2, ip1); err != nil {
		t.Fatal(err)
	}
	vx := &VXLAN{VNI: 0x123456}
	data := serialize(t, fixOpts, vx, innerEth, innerIP, innerUDP)
	var got VXLAN
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.VNI != 0x123456 {
		t.Errorf("VNI = %#x", got.VNI)
	}
	var eth Ethernet
	if err := eth.DecodeFromBytes(got.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if eth.SrcMAC != macB {
		t.Error("inner Ethernet corrupted")
	}
}

func TestVXLANBadVNIAndFlag(t *testing.T) {
	buf := NewSerializeBuffer()
	if err := (&VXLAN{VNI: 1 << 24}).SerializeTo(buf, fixOpts); !errors.Is(err, ErrBadHeader) {
		t.Errorf("oversized VNI: err = %v", err)
	}
	var v VXLAN
	if err := v.DecodeFromBytes(make([]byte, 8)); !errors.Is(err, ErrBadHeader) {
		t.Errorf("missing I flag: err = %v", err)
	}
}

func TestINTRoundTrip(t *testing.T) {
	n := &INT{
		OriginalEtherType: EtherTypeIPv4,
		Hops: []INTHop{
			{DeviceID: 1, IngressPort: 0, EgressPort: 1, TimestampNs: 1111},
			{DeviceID: 2, IngressPort: 3, EgressPort: 0, TimestampNs: 2222},
		},
	}
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2}
	udp := &UDP{SrcPort: 1, DstPort: 9}
	if err := udp.SetNetworkLayerForChecksum(ip1, ip2); err != nil {
		t.Fatal(err)
	}
	data := serialize(t, fixOpts,
		&Ethernet{SrcMAC: macA, DstMAC: macB, EtherType: EtherTypeINT},
		n, ip, udp)
	pkt := NewPacket(data, LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	got := pkt.Layer(LayerTypeINT)
	if got == nil {
		t.Fatal("no INT layer")
	}
	in := got.(*INT)
	if len(in.Hops) != 2 || in.Hops[0].DeviceID != 1 || in.Hops[1].TimestampNs != 2222 {
		t.Errorf("hops = %+v", in.Hops)
	}
	if pkt.Layer(LayerTypeUDP) == nil {
		t.Error("UDP under INT shim not decoded")
	}
}

func TestINTMaxHops(t *testing.T) {
	n := &INT{OriginalEtherType: EtherTypeIPv4, Hops: make([]INTHop, INTMaxHops+1)}
	buf := NewSerializeBuffer()
	if err := n.SerializeTo(buf, fixOpts); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}
