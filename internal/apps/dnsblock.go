package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// DNSBlockNames is the blocklist capacity (suffix hashes).
const DNSBlockNames = 16384

// DNSBlockConfig configures the line-rate DNS blocklist. Unlike the
// dohblock app — which decodes the full DNS message and also cuts DoH
// resolver traffic — this app models the hardware fast path: the QNAME
// is extracted straight from the parser view with zero allocation and
// every parent suffix is hashed against an exact-match table, so the
// whole decision fits the match-action pipeline.
type DNSBlockConfig struct {
	// Domains are blocked together with all their subdomains.
	Domains []string `json:"domains,omitempty"`
	// Direction limits enforcement ("edge-to-optical" by default:
	// queries leaving subscriber hosts).
	Direction string `json:"direction,omitempty"`
}

// DNS-block counter indexes (bank "dnsblock").
const (
	DNSBlockPassed = iota
	DNSBlockDropped
	DNSBlockNonDNS
	dnsBlockCounters
)

type dnsBlockApp struct {
	prog  *ppe.Program
	state *ppe.State
	names *ppe.Table // packet.FNV64(qname suffix)(64b) → action(8b)
	ctr   *ppe.CounterBank
	dir   string
	v     packet.View
	qbuf  [256]byte // QNAME scratch; keeps the handler allocation-free
}

// NewDNSBlock builds a DNS blocklist instance.
func NewDNSBlock() *dnsBlockApp {
	a := &dnsBlockApp{state: ppe.NewState(), dir: "edge-to-optical"}
	spec := ppe.TableSpec{Name: "dns_blocklist", Kind: ppe.TableExact, KeyBits: 64, ValueBits: 8, Size: DNSBlockNames}
	a.names = a.state.AddTable(spec)
	a.ctr = a.state.AddCounters("dnsblock", dnsBlockCounters)
	a.prog = &ppe.Program{
		Name:    "dnsblock",
		Version: 1,
		ParseLayers: []packet.LayerType{
			packet.LayerTypeEthernet, packet.LayerTypeIPv4,
			packet.LayerTypeUDP, packet.LayerTypeDNS,
		},
		Tables: []ppe.TableSpec{spec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 64},
			{Kind: ppe.ActionCounterBank, Count: dnsBlockCounters},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *dnsBlockApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *dnsBlockApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *dnsBlockApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg DNSBlockConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("dnsblock: %w", err)
	}
	if cfg.Direction != "" {
		a.dir = cfg.Direction
	}
	for _, d := range cfg.Domains {
		if err := a.Block(d); err != nil {
			return err
		}
	}
	return nil
}

// Block adds a domain (and implicitly all subdomains) to the blocklist.
func (a *dnsBlockApp) Block(domain string) error {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	if domain == "" {
		return fmt.Errorf("dnsblock: empty domain")
	}
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], packet.FNV64([]byte(domain)))
	return a.names.Add(key[:], []byte{1})
}

func (a *dnsBlockApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !a.v.Parse(ctx.Data) || !dirEnabled(a.dir, ctx.Dir) {
		a.ctr.Inc(DNSBlockNonDNS, len(ctx.Data))
		return ppe.VerdictPass
	}
	v := &a.v
	if _, ok := v.DNSPayload(); !ok || v.DstPort != packet.PortDNS || v.DNSIsResponse() {
		a.ctr.Inc(DNSBlockNonDNS, len(ctx.Data))
		return ppe.VerdictPass
	}
	name, ok := v.DNSQName(a.qbuf[:0])
	if !ok {
		a.ctr.Inc(DNSBlockNonDNS, len(ctx.Data))
		return ppe.VerdictPass
	}
	// Walk the name and every parent suffix through the hash table, the
	// way the pipeline's hash stage would over per-label boundaries.
	for {
		var key [8]byte
		binary.BigEndian.PutUint64(key[:], packet.FNV64(name))
		if _, blocked := a.names.Lookup(key[:]); blocked {
			a.ctr.Inc(DNSBlockDropped, len(ctx.Data))
			return ppe.VerdictDrop
		}
		dot := -1
		for i, c := range name {
			if c == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			break
		}
		name = name[dot+1:]
	}
	a.ctr.Inc(DNSBlockPassed, len(ctx.Data))
	return ppe.VerdictPass
}
