package flexsfp

import (
	"fmt"
	"math/rand"

	"flexsfp/internal/reliability"
	"flexsfp/internal/runner"
)

// ---------------------------------------------------------------------------
// Multi-trial experiment variants: instead of a single-seed point
// estimate, run N independent seeds in parallel (seed for trial t is
// runner.TrialSeed(rootSeed, t)) and report mean ± stddev with a 95% CI.
// Results are bit-identical for any worker count; reproduce trial t alone
// by running the single-seed experiment with its derived seed.

// fmtCI renders "mean ± ci95" the way the trial tables print metrics.
func fmtCI(s runner.Summary, digits int) string {
	return fmt.Sprintf("%.*f ± %.*f", digits, s.Mean, digits, s.CI95())
}

// PowerTrialsResult is the §5 power experiment over many seeds.
type PowerTrialsResult struct {
	Trials int

	NICOnlyW    runner.Summary
	WithSFPW    runner.Summary
	WithFlexW   runner.Summary
	DeltaFlexW  runner.Summary
	Utilization runner.Summary

	// Paper values for comparison.
	PaperNICOnly, PaperWithSFP, PaperWithFlex float64
}

// PowerExperimentTrials runs the §5 power procedure for trials seeds in
// parallel (workers bounded by parallelism; 0 = GOMAXPROCS).
func PowerExperimentTrials(rootSeed int64, trials, parallelism int) (PowerTrialsResult, error) {
	if trials <= 0 {
		trials = 1
	}
	results, err := runner.Map(trials,
		runner.Options{Seed: rootSeed, Parallelism: parallelism},
		func(trial int, _ *rand.Rand) (PowerResult, error) {
			return PowerExperiment(runner.TrialSeed(rootSeed, trial))
		})
	if err != nil {
		return PowerTrialsResult{}, err
	}
	return PowerTrialsResult{
		Trials:       trials,
		NICOnlyW:     runner.Collect(results, func(r PowerResult) float64 { return r.Report.NICOnly.MeanW }),
		WithSFPW:     runner.Collect(results, func(r PowerResult) float64 { return r.Report.WithSFP.MeanW }),
		WithFlexW:    runner.Collect(results, func(r PowerResult) float64 { return r.Report.WithFlex.MeanW }),
		DeltaFlexW:   runner.Collect(results, func(r PowerResult) float64 { return r.Report.DeltaFlex }),
		Utilization:  runner.Collect(results, func(r PowerResult) float64 { return r.FlexUtilization }),
		PaperNICOnly: results[0].PaperNICOnly, PaperWithSFP: results[0].PaperWithSFP,
		PaperWithFlex: results[0].PaperWithFlex,
	}, nil
}

// Render formats the multi-seed power report.
func (r PowerTrialsResult) Render() string {
	t := newTable("Step", "Model (W, mean ± 95% CI)", "Paper (W)")
	t.add("NIC only", fmtCI(r.NICOnlyW, 3), fmt.Sprintf("%.3f", r.PaperNICOnly))
	t.add("NIC + SFP (stress)", fmtCI(r.WithSFPW, 3), fmt.Sprintf("%.3f", r.PaperWithSFP))
	t.add("NIC + FlexSFP (stress)", fmtCI(r.WithFlexW, 3), fmt.Sprintf("%.3f", r.PaperWithFlex))
	out := fmt.Sprintf("Power measurement (§5): %d trials\n", r.Trials) + t.String()
	out += fmt.Sprintf("FlexSFP delta %s W; PPE utilization %s\n",
		fmtCI(r.DeltaFlexW, 3), fmtCI(r.Utilization, 2))
	return out
}

// LineRatePointTrials is one frame-size point across seeds.
type LineRatePointTrials struct {
	Label        string
	FrameSize    int // 0 for IMIX
	OfferedPPS   runner.Summary
	DeliveredPPS runner.Summary
	GoodputGbps  runner.Summary
	Drops        runner.Summary
	// LineRateAll is true when every trial sustained line rate.
	LineRateAll bool
}

// LineRateTrialsResult is the §5.1 sweep over many seeds.
type LineRateTrialsResult struct {
	Trials int
	Points []LineRatePointTrials
}

// LineRateExperimentTrials runs the line-rate sweep for trials seeds in
// parallel and reduces per frame-size point.
func LineRateExperimentTrials(rootSeed int64, trials, parallelism int) (LineRateTrialsResult, error) {
	if trials <= 0 {
		trials = 1
	}
	results, err := runner.Map(trials,
		runner.Options{Seed: rootSeed, Parallelism: parallelism},
		func(trial int, _ *rand.Rand) (LineRateResult, error) {
			return LineRateExperiment(runner.TrialSeed(rootSeed, trial))
		})
	if err != nil {
		return LineRateTrialsResult{}, err
	}
	res := LineRateTrialsResult{Trials: trials}
	for p := range results[0].Points {
		pt := LineRatePointTrials{
			Label:        results[0].Points[p].Label,
			FrameSize:    results[0].Points[p].FrameSize,
			OfferedPPS:   runner.Collect(results, func(r LineRateResult) float64 { return r.Points[p].OfferedPPS }),
			DeliveredPPS: runner.Collect(results, func(r LineRateResult) float64 { return r.Points[p].DeliveredPPS }),
			GoodputGbps:  runner.Collect(results, func(r LineRateResult) float64 { return r.Points[p].GoodputGbps }),
			Drops:        runner.Collect(results, func(r LineRateResult) float64 { return float64(r.Points[p].Drops) }),
			LineRateAll:  true,
		}
		for _, r := range results {
			if !r.Points[p].LineRate {
				pt.LineRateAll = false
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render formats the multi-seed sweep.
func (r LineRateTrialsResult) Render() string {
	t := newTable("Frames", "Offered (Mpps)", "Delivered (Mpps)", "Goodput (Gb/s)", "Line rate?")
	for _, p := range r.Points {
		ok := "yes"
		if !p.LineRateAll {
			ok = "NO"
		}
		t.add(p.Label,
			fmt.Sprintf("%.3f ± %.3f", p.OfferedPPS.Mean/1e6, p.OfferedPPS.CI95()/1e6),
			fmt.Sprintf("%.3f ± %.3f", p.DeliveredPPS.Mean/1e6, p.DeliveredPPS.CI95()/1e6),
			fmt.Sprintf("%.3f ± %.3f", p.GoodputGbps.Mean, p.GoodputGbps.CI95()),
			ok)
	}
	return fmt.Sprintf("Line-rate verification (§5.1): NAT at 10 Gb/s, %d trials\n", r.Trials) + t.String()
}

// ReliabilityTrialsResult wraps the multi-seed fleet report.
type ReliabilityTrialsResult struct {
	Report reliability.FleetTrialsReport
	Config reliability.FleetConfig
}

// ReliabilityExperimentTrials runs the 10k-module fleet for trials seeds
// in parallel.
func ReliabilityExperimentTrials(rootSeed int64, trials, parallelism int) ReliabilityTrialsResult {
	cfg := reliability.DefaultFleet()
	return ReliabilityTrialsResult{
		Report: reliability.RunFleetTrials(rootSeed, trials, reliability.DefaultVCSEL(), cfg, parallelism),
		Config: cfg,
	}
}

// Render formats the multi-seed fleet report.
func (r ReliabilityTrialsResult) Render() string {
	rep := r.Report
	t := newTable("Metric", "Mean ± 95% CI")
	t.add("Fleet size", rep.Modules)
	t.add("Trials", rep.Trials)
	t.add("Laser failures in horizon", fmtCI(rep.Failures, 1))
	t.add("Detected early via DDM", fmtCI(rep.DetectedEarly, 1))
	t.add("Sampled MTTF (years)", fmtCI(rep.MTTFYears, 2))
	t.add("TTF p10 (years)", fmtCI(rep.P10Years, 2))
	t.add("TTF p90 (years)", fmtCI(rep.P90Years, 2))
	t.add("Std SFP module swaps ($)", fmtCI(rep.StandardSwapCostUSD, 0))
	t.add("FlexSFP module swaps ($)", fmtCI(rep.FlexModuleSwapCostUSD, 0))
	t.add("FlexSFP laser repairs ($)", fmtCI(rep.FlexLaserRepairUSD, 0))
	t.add("Laser-repair saving", fmtCI(rep.LaserRepairSavingFrac, 3))
	return "Reliability (§5.3): VCSEL wear-out fleet, multi-seed\n" + t.String()
}
