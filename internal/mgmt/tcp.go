package mgmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The out-of-band transport frames protocol messages over a TCP stream
// with a 4-byte big-endian length prefix.

const maxFrame = MaxBody + 64

func writeFrame(w io.Writer, msg []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("mgmt: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Server serves an agent's Handle function over TCP (the out-of-band
// management port of §4.1).
type Server struct {
	handler func([]byte) []byte

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// NewServer wraps a message handler (normally Agent.Handle).
func NewServer(handler func([]byte) []byte) *Server {
	return &Server{
		handler: handler,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address. Serving happens on background
// goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.handler(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
		s.ln = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return err
}

// TCPTransport is a client-side Transport over one TCP connection.
// Requests are serialized: one in flight at a time.
type TCPTransport struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a module's management address.
func Dial(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn}, nil
}

// Do implements Transport.
func (t *TCPTransport) Do(req []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return nil, errors.New("mgmt: transport closed")
	}
	if err := writeFrame(t.conn, req); err != nil {
		return nil, err
	}
	return readFrame(t.conn)
}

// Close closes the connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return nil
	}
	err := t.conn.Close()
	t.conn = nil
	return err
}
