package core

import "flexsfp/internal/hls"

// Power model, calibrated to the paper's §5 testbed measurements:
//
//	NIC alone            3.800 W
//	NIC + standard SFP   4.693 W  → SFP draws 0.893 W
//	NIC + FlexSFP        5.320 W  → FlexSFP draws 1.520 W at line-rate
//
// The FlexSFP budget decomposes into optics, FPGA static, the Mi-V
// control core, and activity-dependent fabric dynamic power. Dynamic
// power scales with clock, datapath width and pipeline utilization, so
// the Two-Way-Core (double clock) and 100G what-ifs price out correctly
// against the 1–3 W transceiver envelope (§2, §5.3).
const (
	// StandardSFPPowerW is a plain 10GBASE-SR module under traffic.
	StandardSFPPowerW = 0.893

	flexOpticsW     = 0.55 // laser driver + limiting amp + laser
	flexFPGAStaticW = 0.30 // fabric static at 28 nm
	flexMiVW        = 0.07 // control core + SPI
	// flexDynamicFullW is fabric dynamic power at 156.25 MHz, 64-bit
	// datapath, 100% pipeline utilization.
	flexDynamicFullW = 0.60

	baseClockHz      = 156_250_000
	baseDatapathBits = 64

	// ThermalEnvelopeW is the SFP+ power ceiling the paper targets
	// ("within the 1–3 W envelope of a standard transceiver", §2).
	ThermalEnvelopeW = 3.0
)

// PowerW returns the module's current draw in watts: idle modules burn
// optics + static + control; traffic adds dynamic power in proportion to
// pipeline utilization, clock and width.
func (m *Module) PowerW() float64 {
	p := flexOpticsW + flexFPGAStaticW + flexMiVW
	if m.engine == nil || m.state != stateRunning {
		return p
	}
	clockScale := float64(m.engine.ClockHz()) / baseClockHz
	widthScale := float64(m.engine.DatapathBits()) / baseDatapathBits
	p += flexDynamicFullW * clockScale * widthScale * m.engine.Utilization()
	return p
}

// PeakPowerW returns the worst-case draw of a design (utilization 1.0) —
// what the thermal check must admit.
func PeakPowerW(clockHz int64, datapathBits int, shell hls.Shell) float64 {
	p := flexOpticsW + flexFPGAStaticW + flexMiVW
	clockScale := float64(clockHz) / baseClockHz
	widthScale := float64(datapathBits) / baseDatapathBits
	p += flexDynamicFullW * clockScale * widthScale
	if shell == hls.ActiveCore {
		p += 0.15 // third MAC + busier control core
	}
	return p
}

// WithinThermalEnvelope reports whether a design's peak power fits the
// SFP+ budget.
func WithinThermalEnvelope(clockHz int64, datapathBits int, shell hls.Shell) bool {
	return PeakPowerW(clockHz, datapathBits, shell) <= ThermalEnvelopeW
}
