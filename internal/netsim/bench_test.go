package netsim

import "testing"

// BenchmarkScheduleFire measures the steady-state event loop: one event in
// flight at a time, each firing schedules the next (the pattern of the
// trafficgen emit loop and the PPE verdict path). With the event free-list
// this runs allocation-free after warm-up.
func BenchmarkScheduleFire(b *testing.B) {
	sim := New(1)
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.ScheduleDetached(10, tick)
		}
	}
	sim.ScheduleDetached(10, tick)
	b.ResetTimer()
	sim.Run()
}

// BenchmarkScheduleBurst measures heap behavior with a deep pending queue:
// 1024 events scheduled at once, then drained.
func BenchmarkScheduleBurst(b *testing.B) {
	sim := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			sim.ScheduleDetached(Duration(j%64), fn)
		}
		sim.Run()
	}
}

// BenchmarkScheduleHandle measures the handle-returning Schedule path
// (cancelable events are never pooled).
func BenchmarkScheduleHandle(b *testing.B) {
	sim := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(1, fn)
		sim.Run()
	}
}
