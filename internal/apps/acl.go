package apps

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// ACL actions.
const (
	ACLPermit uint8 = 0
	ACLDeny   uint8 = 1
)

// ACL counter indexes (bank "verdicts").
const (
	ACLPermitted = iota
	ACLDenied
	ACLDefaulted
	aclCounters
)

// ACLRuleSize is the register-TCAM capacity: deliberately small (§5.3
// keeps large tables out of scope for the cheap path).
const ACLRuleSize = 64

// ACLConfig is the boot-time rule set.
type ACLConfig struct {
	// DefaultDeny drops packets matching no rule (default: permit).
	DefaultDeny bool      `json:"default_deny,omitempty"`
	Direction   string    `json:"direction,omitempty"`
	Rules       []ACLRule `json:"rules,omitempty"`
}

// ACLRule is one 5-tuple rule; empty fields wildcard.
type ACLRule struct {
	SrcPrefix string `json:"src,omitempty"` // CIDR
	DstPrefix string `json:"dst,omitempty"` // CIDR
	SrcPort   uint16 `json:"sport,omitempty"`
	DstPort   uint16 `json:"dport,omitempty"`
	Proto     uint8  `json:"proto,omitempty"`
	Deny      bool   `json:"deny"`
	Priority  int    `json:"priority"`
}

// aclApp is the per-port firewall of §3 ("Security and Policy
// Enforcement"): traffic is screened at the optical edge, before it
// reaches the NIC, the switch, or the customer premises.
type aclApp struct {
	prog        *ppe.Program
	state       *ppe.State
	rules       *ppe.TernaryTable
	verdicts    *ppe.CounterBank
	defaultDeny bool
	dir         string
	v           packet.View
	keyBuf      [13]byte
}

// NewACL builds an ACL instance.
func NewACL() *aclApp {
	a := &aclApp{state: ppe.NewState()}
	spec := ppe.TableSpec{Name: "rules", Kind: ppe.TableTernary, KeyBits: FiveTupleKeyBits, ValueBits: 8, Size: ACLRuleSize}
	a.rules = a.state.AddTernary(spec)
	a.verdicts = a.state.AddCounters("verdicts", aclCounters)
	a.prog = &ppe.Program{
		Name:        "acl",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeTCP},
		Tables:      []ppe.TableSpec{spec},
		Actions:     []ppe.ActionSpec{{Kind: ppe.ActionCounterBank, Count: aclCounters}},
		Stages:      2,
		Handler:     ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *aclApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *aclApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *aclApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg ACLConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("acl: %w", err)
	}
	a.defaultDeny = cfg.DefaultDeny
	a.dir = cfg.Direction
	for _, r := range cfg.Rules {
		if err := a.AddRule(r); err != nil {
			return err
		}
	}
	return nil
}

// AddRule compiles a rule into a masked entry and inserts it.
func (a *aclApp) AddRule(r ACLRule) error {
	value := make([]byte, 13)
	mask := make([]byte, 13)
	if err := putPrefix(value[0:4], mask[0:4], r.SrcPrefix); err != nil {
		return fmt.Errorf("acl src: %w", err)
	}
	if err := putPrefix(value[4:8], mask[4:8], r.DstPrefix); err != nil {
		return fmt.Errorf("acl dst: %w", err)
	}
	if r.SrcPort != 0 {
		value[8], value[9] = byte(r.SrcPort>>8), byte(r.SrcPort)
		mask[8], mask[9] = 0xff, 0xff
	}
	if r.DstPort != 0 {
		value[10], value[11] = byte(r.DstPort>>8), byte(r.DstPort)
		mask[10], mask[11] = 0xff, 0xff
	}
	if r.Proto != 0 {
		value[12] = r.Proto
		mask[12] = 0xff
	}
	action := ACLPermit
	if r.Deny {
		action = ACLDeny
	}
	return a.rules.Add(ppe.TernaryEntry{
		Value: value, Mask: mask, Priority: r.Priority, Data: []byte{action},
	})
}

func putPrefix(value, mask []byte, cidr string) error {
	if cidr == "" {
		return nil
	}
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return err
	}
	if !p.Addr().Is4() {
		return fmt.Errorf("only IPv4 prefixes supported, got %s", cidr)
	}
	a4 := p.Addr().As4()
	copy(value, a4[:])
	bits := p.Bits()
	for i := 0; i < 4; i++ {
		switch {
		case bits >= 8:
			mask[i] = 0xff
			bits -= 8
		case bits > 0:
			mask[i] = byte(0xff << (8 - bits))
			bits = 0
		}
	}
	return nil
}

func (a *aclApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !dirEnabled(a.dir, ctx.Dir) {
		return ppe.VerdictPass
	}
	if !a.v.Parse(ctx.Data) {
		a.verdicts.Inc(ACLDenied, len(ctx.Data))
		return ppe.VerdictDrop // unparseable at the firewall: drop
	}
	key := a.v.FiveTupleKey(a.keyBuf[:])
	data, ok := a.rules.Lookup(key)
	if !ok {
		a.verdicts.Inc(ACLDefaulted, len(ctx.Data))
		if a.defaultDeny {
			return ppe.VerdictDrop
		}
		return ppe.VerdictPass
	}
	if data[0] == ACLDeny {
		a.verdicts.Inc(ACLDenied, len(ctx.Data))
		return ppe.VerdictDrop
	}
	a.verdicts.Inc(ACLPermitted, len(ctx.Data))
	return ppe.VerdictPass
}
