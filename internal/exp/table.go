package exp

import (
	"fmt"
	"strings"
)

// Table renders aligned columns for the experiment reports (moved here
// from the root package's render.go so every registered experiment —
// and any future plugin — shares one formatter).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Add appends one row; cells are stringified (%.2f for float64).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the aligned table with a header rule.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
