package bitstream

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func sample() *Bitstream {
	return &Bitstream{
		AppName:      "nat",
		AppVersion:   3,
		Device:       "MPF200T",
		ClockKHz:     156250,
		DatapathBits: 64,
		Payload:      bytes.Repeat([]byte{0xa5}, 1000),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := sample()
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != b.Size() {
		t.Errorf("encoded %d bytes, Size() = %d", len(enc), b.Size())
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppName != "nat" || got.AppVersion != 3 || got.Device != "MPF200T" ||
		got.ClockKHz != 156250 || got.DatapathBits != 64 {
		t.Errorf("decoded = %+v", got)
	}
	if !bytes.Equal(got.Payload, b.Payload) {
		t.Error("payload corrupted")
	}
	if got.Golden() {
		t.Error("Golden set unexpectedly")
	}
}

func TestGoldenFlag(t *testing.T) {
	b := sample()
	b.Flags = FlagGolden
	enc, _ := b.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Golden() {
		t.Error("golden flag lost")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, _ := sample().Encode()
	for _, i := range []int{0, 10, 50, headerSize + 5, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTooShort) {
		t.Errorf("nil: %v", err)
	}
	enc, _ := sample().Encode()
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[5] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
	// Truncated payload.
	if _, err := Decode(enc[:len(enc)-10]); !errors.Is(err, ErrTooShort) {
		t.Errorf("truncated: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	b := sample()
	b.AppName = string(bytes.Repeat([]byte{'a'}, 40))
	if _, err := b.Encode(); !errors.Is(err, ErrBadField) {
		t.Errorf("long name: %v", err)
	}
	b = sample()
	b.Device = string(bytes.Repeat([]byte{'d'}, 20))
	if _, err := b.Encode(); !errors.Is(err, ErrBadField) {
		t.Errorf("long device: %v", err)
	}
}

func TestSignVerify(t *testing.T) {
	key := []byte("fleet-secret-0001")
	enc, _ := sample().Encode()
	signed := Sign(enc, key)
	body, err := Verify(signed, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, enc) {
		t.Error("verified body differs from original")
	}
	if _, err := Verify(signed, []byte("wrong-key")); !errors.Is(err, ErrBadMAC) {
		t.Errorf("wrong key: %v", err)
	}
	tampered := append([]byte(nil), signed...)
	tampered[100] ^= 1
	if _, err := Verify(tampered, key); !errors.Is(err, ErrBadMAC) {
		t.Errorf("tampered: %v", err)
	}
	if _, err := Verify(signed[:10], key); !errors.Is(err, ErrTooShort) {
		t.Errorf("short: %v", err)
	}
}

// Property: Encode/Decode round-trips arbitrary metadata and payloads, and
// Sign/Verify round-trips under the same key.
func TestRoundTripProperty(t *testing.T) {
	f := func(name string, ver uint32, clock uint32, width uint16, payload []byte, key []byte) bool {
		if len(name) > maxNameLen {
			name = name[:maxNameLen]
		}
		// Null bytes terminate the stored string; restrict to printable.
		clean := make([]byte, 0, len(name))
		for _, c := range []byte(name) {
			if c >= 32 && c < 127 {
				clean = append(clean, c)
			}
		}
		b := &Bitstream{
			AppName: string(clean), AppVersion: ver,
			Device: "MPF200T", ClockKHz: clock, DatapathBits: width,
			Payload: payload,
		}
		enc, err := b.Encode()
		if err != nil {
			return false
		}
		signed := Sign(enc, key)
		body, err := Verify(signed, key)
		if err != nil {
			return false
		}
		got, err := Decode(body)
		if err != nil {
			return false
		}
		return got.AppName == string(clean) && got.AppVersion == ver &&
			got.ClockKHz == clock && got.DatapathBits == width &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
