package mgmt

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/phy"
	"flexsfp/internal/ppe"
)

// Transport carries one encoded request to an agent and returns the
// encoded response. Implementations: TCPTransport (out-of-band), the
// in-band Ethernet path, or a direct in-process hop for tests.
type Transport interface {
	Do(req []byte) ([]byte, error)
}

// TransportFunc adapts a function to Transport.
type TransportFunc func(req []byte) ([]byte, error)

// Do implements Transport.
func (f TransportFunc) Do(req []byte) ([]byte, error) { return f(req) }

// RemoteError is a MsgError response surfaced by the client.
type RemoteError struct {
	Code uint16
	Text string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("mgmt: remote error %d: %s", e.Code, e.Text)
}

// PushError wraps a failure during the chunked OTA push with the stage it
// happened in. The agent-side FSM guarantees the previously active slot
// keeps running: nothing is installed or rebooted before a complete,
// authenticated commit.
type PushError struct {
	Slot   int
	Stage  string // "begin", "chunk", or "commit"
	Offset int    // byte offset of the failed chunk (Stage == "chunk")
	Err    error
}

func (e *PushError) Error() string {
	if e.Stage == "chunk" {
		return fmt.Sprintf("mgmt: push to slot %d failed at %s offset %d: %v",
			e.Slot, e.Stage, e.Offset, e.Err)
	}
	return fmt.Sprintf("mgmt: push to slot %d failed at %s: %v", e.Slot, e.Stage, e.Err)
}

func (e *PushError) Unwrap() error { return e.Err }

// RetryPolicy bounds per-request retries with exponential backoff and
// deterministic jitter. The zero value disables retrying.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request; values <= 1
	// mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff (when > 0).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep, when non-nil, is called with each computed backoff. Leave
	// nil in simulated environments: retries then happen back-to-back
	// but still consume deterministic jitter draws.
	Sleep func(time.Duration)
	// RequestTimeout is applied per attempt to deadline-capable
	// transports (see TCPTransport.SetTimeout) by SetRetryPolicy.
	RequestTimeout time.Duration
}

// Backoff returns the pre-retry delay for the given request and attempt
// (0-based). Jitter is derived from (id, attempt) — deterministic for a
// given request sequence, decorrelated across requests. Exported so the
// fleet controller's re-push path can schedule retries on the exact
// same deterministic curve the client uses.
func (p RetryPolicy) Backoff(id uint32, attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff << uint(attempt)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// SplitMix64-style mix; jitter multiplies the delay into [0.5, 1.0).
	h := uint64(id)<<32 | uint64(uint32(attempt))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	frac := float64(h&0xffff) / 0x10000
	return time.Duration(float64(d) * (0.5 + frac/2))
}

// Client is the typed management client used by orchestration tooling.
type Client struct {
	t       Transport
	reqID   atomic.Uint32
	retry   RetryPolicy
	retries atomic.Uint64
}

// NewClient wraps a transport.
func NewClient(t Transport) *Client { return &Client{t: t} }

// SetRetryPolicy installs the per-request retry/deadline policy. When the
// transport supports per-request deadlines, RequestTimeout is applied.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	if p.RequestTimeout > 0 {
		if dt, ok := c.t.(interface{ SetTimeout(time.Duration) }); ok {
			dt.SetTimeout(p.RequestTimeout)
		}
	}
}

// Retries returns the number of request retries performed so far.
func (c *Client) Retries() uint64 { return c.retries.Load() }

func (c *Client) do(typ MsgType, body []byte) ([]byte, error) {
	id := c.reqID.Add(1)
	req := Message{Type: typ, ReqID: id, Body: body}.Encode()
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.t.Do(req)
		if err == nil {
			out, perr := parseResponse(id, resp)
			var re *RemoteError
			if perr == nil || errors.As(perr, &re) {
				// A decoded reply — success or a remote rejection —
				// means the request executed; never retry it.
				return out, perr
			}
			err = perr // corrupted or mismatched response: retryable
		}
		lastErr = err
		if attempt+1 >= attempts {
			break
		}
		c.retries.Add(1)
		if d := c.retry.Backoff(id, attempt); d > 0 && c.retry.Sleep != nil {
			c.retry.Sleep(d)
		}
	}
	return nil, lastErr
}

func parseResponse(id uint32, resp []byte) ([]byte, error) {
	msg, err := DecodeMessage(resp)
	if err != nil {
		return nil, err
	}
	if msg.ReqID != id {
		return nil, fmt.Errorf("mgmt: response ID %d for request %d", msg.ReqID, id)
	}
	switch msg.Type {
	case MsgOK:
		return msg.Body, nil
	case MsgError:
		code, text, perr := ParseError(msg.Body)
		if perr != nil {
			return nil, perr
		}
		return nil, &RemoteError{Code: code, Text: text}
	default:
		return nil, fmt.Errorf("mgmt: unexpected response type %d", msg.Type)
	}
}

// Info is the MsgPing response.
type Info struct {
	Name     string
	DeviceID uint32
	AppName  string
	Running  bool
}

// Ping returns module identity and state.
func (c *Client) Ping() (Info, error) {
	body, err := c.do(MsgPing, nil)
	if err != nil {
		return Info{}, err
	}
	r := bodyReader{b: body}
	info := Info{Name: r.str(), DeviceID: r.u32(), AppName: r.str(), Running: r.u8() == 1}
	return info, r.err
}

// TableAdd inserts an exact-match entry.
func (c *Client) TableAdd(table string, key, value []byte) error {
	var w bodyWriter
	w.str(table)
	w.bytes(key)
	w.bytes(value)
	_, err := c.do(MsgTableAdd, w.b)
	return err
}

// TableDel removes an exact-match entry.
func (c *Client) TableDel(table string, key []byte) error {
	var w bodyWriter
	w.str(table)
	w.bytes(key)
	_, err := c.do(MsgTableDel, w.b)
	return err
}

// TableGet reads one entry's value.
func (c *Client) TableGet(table string, key []byte) ([]byte, error) {
	var w bodyWriter
	w.str(table)
	w.bytes(key)
	body, err := c.do(MsgTableGet, w.b)
	if err != nil {
		return nil, err
	}
	r := bodyReader{b: body}
	v := append([]byte(nil), r.bytes()...)
	return v, r.err
}

// TableDump returns all entries of a table.
func (c *Client) TableDump(table string) ([]ppe.TableEntry, error) {
	var w bodyWriter
	w.str(table)
	body, err := c.do(MsgTableDump, w.b)
	if err != nil {
		return nil, err
	}
	r := bodyReader{b: body}
	n := int(r.u32())
	out := make([]ppe.TableEntry, 0, n)
	for i := 0; i < n; i++ {
		e := ppe.TableEntry{
			Key:   append([]byte(nil), r.bytes()...),
			Value: append([]byte(nil), r.bytes()...),
			Hits:  r.u64(),
		}
		out = append(out, e)
	}
	return out, r.err
}

// TernaryAdd inserts a masked entry.
func (c *Client) TernaryAdd(table string, value, mask []byte, priority int, data []byte) error {
	var w bodyWriter
	w.str(table)
	w.bytes(value)
	w.bytes(mask)
	w.u32(uint32(int32(priority)))
	w.bytes(data)
	_, err := c.do(MsgTernaryAdd, w.b)
	return err
}

// TernaryClear empties a masked table.
func (c *Client) TernaryClear(table string) error {
	var w bodyWriter
	w.str(table)
	_, err := c.do(MsgTernaryClear, w.b)
	return err
}

// CounterRead returns (packets, bytes) of one counter.
func (c *Client) CounterRead(bank string, index int) (uint64, uint64, error) {
	var w bodyWriter
	w.str(bank)
	w.u32(uint32(index))
	body, err := c.do(MsgCounterRead, w.b)
	if err != nil {
		return 0, 0, err
	}
	r := bodyReader{b: body}
	pkts, bytes := r.u64(), r.u64()
	return pkts, bytes, r.err
}

// MeterSet configures a token-bucket meter.
func (c *Client) MeterSet(bank string, index int, rateBps, burstBits float64) error {
	var w bodyWriter
	w.str(bank)
	w.u32(uint32(index))
	w.f64(rateBps)
	w.f64(burstBits)
	_, err := c.do(MsgMeterSet, w.b)
	return err
}

// RegRead reads a register.
func (c *Client) RegRead(name string) (uint64, error) {
	var w bodyWriter
	w.str(name)
	body, err := c.do(MsgRegRead, w.b)
	if err != nil {
		return 0, err
	}
	r := bodyReader{b: body}
	v := r.u64()
	return v, r.err
}

// RegWrite writes a register.
func (c *Client) RegWrite(name string, v uint64) error {
	var w bodyWriter
	w.str(name)
	w.u64(v)
	_, err := c.do(MsgRegWrite, w.b)
	return err
}

// Stats is the MsgStats response.
type Stats struct {
	Rx, Tx        [3]uint64
	ControlFrames uint64
	RebootDrops   uint64
	PuntToCPU     uint64
	Boots         uint64
	AuthFailures  uint64

	BootFailures    uint64
	GoldenFallbacks uint64
	WatchdogTrips   uint64

	Engine     ppe.EngineStats
	Running    bool
	AppName    string
	ActiveSlot int
}

// ReadStats fetches module and engine counters.
func (c *Client) ReadStats() (Stats, error) {
	body, err := c.do(MsgStats, nil)
	if err != nil {
		return Stats{}, err
	}
	r := bodyReader{b: body}
	var s Stats
	for i := 0; i < 3; i++ {
		s.Rx[i] = r.u64()
	}
	for i := 0; i < 3; i++ {
		s.Tx[i] = r.u64()
	}
	s.ControlFrames = r.u64()
	s.RebootDrops = r.u64()
	s.PuntToCPU = r.u64()
	s.Boots = r.u64()
	s.AuthFailures = r.u64()
	s.BootFailures = r.u64()
	s.GoldenFallbacks = r.u64()
	s.WatchdogTrips = r.u64()
	s.Engine = ppe.EngineStats{
		In: r.u64(), InBytes: r.u64(), QueueDrop: r.u64(),
		Pass: r.u64(), Drop: r.u64(), Tx: r.u64(),
		Redirect: r.u64(), ToCPU: r.u64(),
	}
	s.Running = r.u8() == 1
	s.AppName = r.str()
	s.ActiveSlot = int(r.u32())
	return s, r.err
}

// ReadDDM fetches the diagnostics snapshot.
func (c *Client) ReadDDM() (phy.DDM, error) {
	body, err := c.do(MsgDDM, nil)
	if err != nil {
		return phy.DDM{}, err
	}
	r := bodyReader{b: body}
	d := phy.DDM{
		TemperatureC: r.f64(),
		VccVolts:     r.f64(),
		TxBiasMA:     r.f64(),
		TxPowerDBm:   r.f64(),
		RxPowerDBm:   r.f64(),
	}
	return d, r.err
}

// Slots lists the flash slots' stored app names ("" = empty).
func (c *Client) Slots() ([]string, error) {
	body, err := c.do(MsgSlotList, nil)
	if err != nil {
		return nil, err
	}
	r := bodyReader{b: body}
	n := int(r.u32())
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.str())
	}
	return out, r.err
}

// XferChunkSize is the OTA transfer chunk size.
const XferChunkSize = 32 * 1024

// maxPushResumes bounds how many times one push re-syncs with the agent's
// transfer FSM before giving up.
const maxPushResumes = 8

// XferStatus reports the agent's transfer FSM state: whether a transfer
// is active, its target slot and total size, and the contiguous number of
// bytes acknowledged so far.
func (c *Client) XferStatus() (active bool, slot, total, acked int, err error) {
	body, err := c.do(MsgXferStatus, nil)
	if err != nil {
		return false, 0, 0, 0, err
	}
	r := bodyReader{b: body}
	active = r.u8() == 1
	slot = int(r.u8())
	total = int(r.u32())
	acked = int(r.u32())
	return active, slot, total, acked, r.err
}

// PushBitstream streams a signed bitstream into slot via the chunked
// transfer FSM, optionally rebooting into it on commit.
//
// The push is idempotent under lost responses: after a failed chunk the
// client re-syncs with XferStatus and resumes from the agent's contiguous
// acknowledged offset, and after a failed commit it probes whether the
// commit actually landed before reporting an error. Failures come back as
// a *PushError wrapping the cause; the previously active slot keeps
// running on the module.
func (c *Client) PushBitstream(signed []byte, slot int, rebootAfter bool) error {
	if len(signed) == 0 {
		return errors.New("mgmt: empty bitstream")
	}
	var w bodyWriter
	w.u8(uint8(slot))
	if rebootAfter {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(signed)))
	if _, err := c.do(MsgXferBegin, w.b); err != nil {
		return &PushError{Slot: slot, Stage: "begin", Err: err}
	}
	resumes := 0
	for off := 0; off < len(signed); {
		end := off + XferChunkSize
		if end > len(signed) {
			end = len(signed)
		}
		var cw bodyWriter
		cw.u32(uint32(off))
		cw.bytes(signed[off:end])
		if _, err := c.do(MsgXferChunk, cw.b); err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				return &PushError{Slot: slot, Stage: "chunk", Offset: off, Err: err}
			}
			// Transport-level failure: the chunk may have been applied
			// with only its response lost. Re-sync from the agent's
			// acknowledged high-water mark.
			resumes++
			if resumes > maxPushResumes {
				return &PushError{Slot: slot, Stage: "chunk", Offset: off, Err: err}
			}
			active, aslot, total, acked, serr := c.XferStatus()
			if serr != nil || !active || aslot != slot || total != len(signed) {
				return &PushError{Slot: slot, Stage: "chunk", Offset: off, Err: err}
			}
			off = acked
			continue
		}
		off = end
	}
	if _, err := c.do(MsgXferCommit, nil); err != nil {
		if c.commitLanded(signed, slot, err) {
			return nil
		}
		return &PushError{Slot: slot, Stage: "commit", Err: err}
	}
	return nil
}

// commitLanded resolves the lost-commit-response ambiguity: if the cause
// was transport-level (not a remote rejection), the agent no longer has a
// transfer in flight, and the target slot now holds our application, the
// commit executed and the push in fact succeeded.
func (c *Client) commitLanded(signed []byte, slot int, cause error) bool {
	var re *RemoteError
	if errors.As(cause, &re) {
		return false
	}
	bs, err := bitstream.Decode(signed) // trailing HMAC bytes are ignored
	if err != nil {
		return false
	}
	active, _, _, _, serr := c.XferStatus()
	if serr != nil || active {
		return false
	}
	slots, err := c.Slots()
	if err != nil || slot < 0 || slot >= len(slots) {
		return false
	}
	return slots[slot] == bs.AppName
}

// ReadEEPROM fetches and decodes the module's SFF-8472 A0h page.
func (c *Client) ReadEEPROM() (phy.Identity, []byte, error) {
	body, err := c.do(MsgEEPROM, nil)
	if err != nil {
		return phy.Identity{}, nil, err
	}
	id, err := phy.DecodeEEPROM(body)
	if err != nil {
		return phy.Identity{}, body, err
	}
	return id, body, nil
}

// Reboot asks the module to reboot into slot.
func (c *Client) Reboot(slot int) error {
	var w bodyWriter
	w.u8(uint8(slot))
	_, err := c.do(MsgReboot, w.b)
	return err
}
