package paper

import (
	"fmt"
	"math/rand"
	"sort"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/exp"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/runner"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// App-catalog registry sweep: every registered application priced on the
// MPF200T and driven at 10G with a protocol-matched traffic profile. This
// is the §3 "diverse use cases inside the cable" claim made measurable:
// each app must (a) fit the device next to the two-way shell and (b) the
// edge-protocol apps must hold line rate on the blend they exist for.

// CatalogAppRow is one app's fit and line-rate measurement.
type CatalogAppRow struct {
	App           string  `json:"app"`
	Profile       string  `json:"profile"`
	PipelineDepth int     `json:"pipeline_depth"`
	LUT4          int     `json:"lut4"`
	LSRAM         int     `json:"lsram"`
	USRAM         int     `json:"usram"`
	UtilMaxPct    float64 `json:"util_max_pct"`
	Fits          bool    `json:"fits"`
	OfferedPPS    float64 `json:"offered_pps"`
	DeliveredPPS  float64 `json:"delivered_pps"`
	Drops         uint64  `json:"drops"`
	LineRate      bool    `json:"line_rate"`
}

// CatalogResult is the registry sweep.
type CatalogResult struct {
	Apps []CatalogAppRow `json:"apps"`
	// FitsAll: every app + TwoWayCore shell fits the MPF200T.
	FitsAll bool `json:"fits_all"`
	// NewAppsLineRate: the edge-protocol trio holds line rate on its
	// matched profile (the xdp interpreter is program-bound and exempt,
	// like in the pipeline_opt experiment).
	NewAppsLineRate bool `json:"new_apps_line_rate"`
}

// newCatalogApps are the apps the line-rate gate applies to.
var newCatalogApps = map[string]bool{"arpguard": true, "dhcpsnoop": true, "dnsblock": true}

// catalogProfile matches each app to the traffic blend that exercises
// its tables; everything without a protocol of its own gets the
// heavy-tail TCP mix.
func catalogProfile(app string) trafficgen.Profile {
	switch app {
	case "arpguard":
		return trafficgen.ProfileARPStorm
	case "dhcpsnoop":
		return trafficgen.ProfileDHCPChurn
	case "dnsblock", "dohblock":
		return trafficgen.ProfileDNSEdge
	}
	return trafficgen.ProfileElephantMice
}

// runCatalogApp prices one app and drives it for 1 ms at the 10G wire
// rate of its profile's mean frame size, on a private simulator.
func runCatalogApp(ctx exp.RunContext, name string) (CatalogAppRow, error) {
	cfg, err := apps.CanonicalConfig(name)
	if err != nil {
		return CatalogAppRow{}, err
	}
	row := CatalogAppRow{App: name, Profile: string(catalogProfile(name))}

	// Resource fit: shell + estimated program against the MPF200T.
	sim := build.NewSim(ctx.Seed)
	mod, _, err := build.Module(sim, build.ModuleSpec{
		Name: "cat-" + name, DeviceID: 1, Shell: hls.TwoWayCore, App: name,
		ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
		Optimize: ctx.Optimize, Config: cfg,
	})
	if err != nil {
		return CatalogAppRow{}, err
	}
	appRes := hls.EstimateProgram(mod.Engine().Program(), build.BaseDatapathBits)
	used := hls.ShellResources(hls.TwoWayCore).Add(appRes)
	util := fpga.MPF200T.Utilization(used)
	row.PipelineDepth = mod.Engine().Program().PipelineDepth(build.BaseDatapathBits)
	row.LUT4, row.LSRAM, row.USRAM = used.LUT4, used.LSRAM, used.USRAM
	row.UtilMaxPct = util.Max()
	row.Fits = util.Max() <= 100

	// Line rate on the matched profile over an actual 10G wire.
	tmpl, err := trafficgen.ProfileTemplates(catalogProfile(name), 0)
	if err != nil {
		return CatalogAppRow{}, err
	}
	meter := netsim.NewRateMeter(sim)
	mod.SetTx(1, func(b []byte) {
		meter.Observe(len(b))
		trafficgen.PutBuffer(b)
	})
	mod.SetTx(0, trafficgen.PutBuffer)

	total, weight := 0, 0
	for _, wf := range tmpl {
		total += len(wf.Frame) * wf.Weight
		weight += wf.Weight
	}
	mean := float64(total) / float64(weight)
	pps := 10e9 / ((mean + 20) * 8)

	wire := netsim.NewLink(sim, 10_000_000_000, 0, mod.RxEdge)
	gen := trafficgen.New(sim, trafficgen.Config{PPS: pps, Templates: tmpl},
		func(b []byte) bool { return wire.Send(b) })
	gen.Run(0)
	sim.RunFor(netsim.Millisecond)
	gen.Stop()
	sim.RunFor(100 * netsim.Microsecond)

	window := netsim.Duration(netsim.Millisecond).Seconds()
	row.OfferedPPS = float64(gen.Sent) / window
	row.DeliveredPPS = float64(meter.Frames) / window
	row.Drops = mod.Engine().Stats().QueueDrop
	// The blocking apps drop frames by design; line rate here means the
	// queue never overflowed, exactly like the §5.1 sweep.
	row.LineRate = row.Drops == 0
	return row, nil
}

// Catalog runs the registry sweep.
func Catalog(ctx exp.RunContext) (CatalogResult, error) {
	names := apps.NewRegistry().Names()
	sort.Strings(names)
	rows, err := runner.Map(len(names), runner.Options{Seed: ctx.Seed, Parallelism: ctx.Parallelism},
		func(i int, _ *rand.Rand) (CatalogAppRow, error) {
			return runCatalogApp(ctx, names[i])
		})
	if err != nil {
		return CatalogResult{}, err
	}
	res := CatalogResult{Apps: rows, FitsAll: true, NewAppsLineRate: true}
	for _, r := range rows {
		if !r.Fits {
			res.FitsAll = false
		}
		if newCatalogApps[r.App] && !r.LineRate {
			res.NewAppsLineRate = false
		}
	}
	return res, nil
}

// Render formats the sweep.
func (r CatalogResult) Render() string {
	t := exp.NewTable("App", "Profile", "Depth", "4LUT", "LSRAM", "Util%", "Offered (Mpps)", "Delivered (Mpps)", "Drops", "Line rate?")
	for _, a := range r.Apps {
		ok := "yes"
		if !a.LineRate {
			ok = "NO"
		}
		t.Add(a.App, a.Profile, a.PipelineDepth, a.LUT4, a.LSRAM,
			fmt.Sprintf("%.1f", a.UtilMaxPct),
			fmt.Sprintf("%.3f", a.OfferedPPS/1e6),
			fmt.Sprintf("%.3f", a.DeliveredPPS/1e6),
			a.Drops, ok)
	}
	return "App catalog (§3): per-app resource fit + line rate on matched profiles\n" + t.String()
}

// runCatalog is the registered entry point.
func runCatalog(ctx exp.RunContext) (exp.Result, error) {
	r, err := Catalog(ctx)
	if err != nil {
		return nil, err
	}
	fitsAll, newLR, lineRateApps := 0.0, 0.0, 0.0
	if r.FitsAll {
		fitsAll = 1
	}
	if r.NewAppsLineRate {
		newLR = 1
	}
	for _, a := range r.Apps {
		if a.LineRate {
			lineRateApps++
		}
	}
	env := exp.Envelope{
		Name: "catalog", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("catalog_apps", "", float64(len(r.Apps))),
			exp.Scalar("fits_all", "bool", fitsAll),
			exp.Scalar("new_apps_line_rate", "bool", newLR),
			exp.Scalar("line_rate_apps", "", lineRateApps),
		},
	}
	return exp.NewResult(env, r.Render), nil
}
