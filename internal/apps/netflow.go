package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// NetFlowTableSize is the flow-cache capacity.
const NetFlowTableSize = 4096

// NetFlowConfig configures the flow-accounting app ("a FlexSFP could
// export NetFlow-like stats", §3).
type NetFlowConfig struct {
	Direction string `json:"direction,omitempty"`
}

// NetFlow counter indexes (bank "meta").
const (
	NFLearned = iota
	NFMatched
	NFTableFull
	nfCounters
)

// FlowStat is one exported flow record.
type FlowStat struct {
	Key     []byte // 13-byte 5-tuple
	Packets uint64
	Bytes   uint64
}

type netflowApp struct {
	prog  *ppe.Program
	state *ppe.State
	flows *ppe.Table // 5-tuple → counter index (16b)
	meta  *ppe.CounterBank
	stats *ppe.CounterBank // per-flow packet/byte counters
	next  *ppe.Register
	dir   string
	v     packet.View
	key   [13]byte
}

// NewNetFlow builds a flow-accounting instance. Flows are learned in the
// data plane (first packet allocates a counter index); the control plane
// exports and ages them.
func NewNetFlow() *netflowApp {
	a := &netflowApp{state: ppe.NewState()}
	spec := ppe.TableSpec{Name: "flows", Kind: ppe.TableExact, KeyBits: FiveTupleKeyBits, ValueBits: 16, Size: NetFlowTableSize}
	a.flows = a.state.AddTable(spec)
	a.meta = a.state.AddCounters("meta", nfCounters)
	a.stats = a.state.AddCounters("flowstats", NetFlowTableSize)
	a.next = a.state.AddRegister("next_index")
	a.prog = &ppe.Program{
		Name:        "netflow",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeTCP},
		Tables:      []ppe.TableSpec{spec},
		Registers:   []ppe.RegisterSpec{{Name: "next_index", Bits: 16}},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 64},
			{Kind: ppe.ActionCounterBank, Count: NetFlowTableSize},
			{Kind: ppe.ActionCounterBank, Count: nfCounters},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *netflowApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *netflowApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *netflowApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg NetFlowConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("netflow: %w", err)
	}
	a.dir = cfg.Direction
	return nil
}

func (a *netflowApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !dirEnabled(a.dir, ctx.Dir) {
		return ppe.VerdictPass
	}
	if !a.v.Parse(ctx.Data) || (!a.v.IsIPv4 && !a.v.IsIPv6) {
		return ppe.VerdictPass
	}
	key := a.v.FiveTupleKey(a.key[:])
	val, ok := a.flows.Lookup(key)
	if !ok {
		idx := a.next.Load()
		if idx >= NetFlowTableSize {
			a.meta.Inc(NFTableFull, len(ctx.Data))
			return ppe.VerdictPass
		}
		var vb [2]byte
		binary.BigEndian.PutUint16(vb[:], uint16(idx))
		if err := a.flows.Add(key, vb[:]); err != nil {
			a.meta.Inc(NFTableFull, len(ctx.Data))
			return ppe.VerdictPass
		}
		a.next.Add(1)
		a.meta.Inc(NFLearned, len(ctx.Data))
		a.stats.Inc(int(idx), len(ctx.Data))
		return ppe.VerdictPass
	}
	a.meta.Inc(NFMatched, len(ctx.Data))
	a.stats.Inc(int(binary.BigEndian.Uint16(val)), len(ctx.Data))
	return ppe.VerdictPass
}

// Export snapshots all flows with their counters (the control-plane
// export path; an ActiveCore module can originate these as packets).
func (a *netflowApp) Export() []FlowStat {
	snap := a.flows.Snapshot()
	out := make([]FlowStat, 0, len(snap))
	for _, e := range snap {
		idx := int(binary.BigEndian.Uint16(e.Value))
		pkts, bytes := a.stats.Read(idx)
		out = append(out, FlowStat{Key: e.Key, Packets: pkts, Bytes: bytes})
	}
	return out
}
