// Package hls models the FlexSFP build flow of §4.2: "the developer
// writes the packet function…; an HLS toolchain converts it to HDL and
// generates an IP core; the build framework integrates this into an
// architecture shell, finalizes clocks, memory, and IO, and emits the SFP
// bitstream."
//
// Compile turns a ppe.Program into (a) a per-primitive FPGA resource
// estimate, (b) a timing feasibility check against the target device, and
// (c) a loadable bitstream artifact. The per-primitive cost model is
// calibrated against the Microchip AN4364 reference design so that the
// paper's NAT case study reproduces Table 1: the formulas are linear in
// the primitive parameters (header bytes parsed, key bits matched, table
// entries stored), so other programs and wider datapaths extrapolate
// sensibly.
package hls

import (
	"math"

	"flexsfp/internal/fpga"
	"flexsfp/internal/ppe"
)

// Calibrated per-primitive costs (64-bit datapath baseline). The NAT case
// study (parse eth+ipv4, one 32→32 exact table with 32,768 entries, hash,
// 32-bit rewrite, checksum update, 2 stages) sums to 9,108 LUT / 11,284 FF
// / 36 uSRAM / 160 LSRAM against the paper's 9,122 / 11,294 / 36 / 160.
const (
	baseLUT, baseFF, baseUSRAM = 1500, 2200, 8

	parserLayerLUT, parserLayerFF = 320, 400
	parserByteLUT, parserByteFF   = 28, 40
	parserLayerUSRAM              = 1

	stageLUT, stageFF, stageUSRAM = 760, 920, 6

	exactTableLUT, exactTableFF    = 1600, 1700
	exactTableLUTPerKeyBit         = 24
	exactTableFFPerKeyBit          = 30
	exactTableUSRAM                = 12
	exactTableOverheadBitsPerEntry = 36 // valid bit + hash tag + spare

	ternaryTableLUT, ternaryTableFF = 800, 600
	// Register-based TCAM: one LUT4 per key bit per entry for the match
	// network, and flip-flops storing value+mask+action per entry.
	ternaryLUTPerEntryKeyBit = 1
	ternaryUSRAM             = 4

	hashLUT, hashFF           = 700, 760
	rewriteLUTPerBit          = 4
	rewriteFFPerBit           = 2
	checksumLUT, checksumFF   = 1300, 1600
	checksumUSRAM             = 2
	pushPopLUT, pushPopFF     = 400, 300
	pushPopLUTPerByte         = 24
	pushPopFFPerByte          = 16
	pushPopUSRAM              = 2
	timestampLUT, timestampFF = 300, 500
	counterBankLUT, counterFF = 200, 150
	counterBitsPerEntry       = 128 // 64 b packets + 64 b bytes
	meterBankLUT, meterBankFF = 500, 400
	meterBitsPerEntry         = 96
)

// widthFactor scales streaming (per-word) logic with datapath width
// relative to the 64-bit calibration baseline.
func widthFactor(datapathBits int) float64 {
	if datapathBits < 64 {
		datapathBits = 64
	}
	return float64(datapathBits) / 64
}

func scale(v int, f float64) int { return int(math.Round(float64(v) * f)) }

// EstimateProgram returns the fabric resources of the program's PPE logic
// alone (the Table 1 "NAT app" row), at the given datapath width.
func EstimateProgram(p *ppe.Program, datapathBits int) fpga.Resources {
	wf := widthFactor(datapathBits)
	r := fpga.Resources{
		LUT4:  scale(baseLUT, wf),
		FF:    scale(baseFF, wf),
		USRAM: baseUSRAM,
	}

	// Parser: field extraction scales with header bytes and word width.
	for _, lt := range p.ParseLayers {
		hb := ppe.HeaderBytes(lt)
		r.LUT4 += scale(parserLayerLUT+parserByteLUT*hb, wf)
		r.FF += scale(parserLayerFF+parserByteFF*hb, wf)
		r.USRAM += parserLayerUSRAM
	}

	// Match-action stages: pipeline registers and crossbar muxing.
	r.LUT4 += scale(stageLUT*p.Stages, wf)
	r.FF += scale(stageFF*p.Stages, wf)
	r.USRAM += stageUSRAM * p.Stages

	for _, t := range p.Tables {
		switch t.Kind {
		case ppe.TableExact:
			r.LUT4 += exactTableLUT + exactTableLUTPerKeyBit*t.KeyBits
			r.FF += exactTableFF + exactTableFFPerKeyBit*t.KeyBits
			r.USRAM += exactTableUSRAM
			entryBits := t.KeyBits + t.ValueBits + exactTableOverheadBitsPerEntry
			r.LSRAM += fpga.LSRAMBlocksFor(t.Size * entryBits)
		case ppe.TableTernary:
			r.LUT4 += ternaryTableLUT + ternaryLUTPerEntryKeyBit*t.Size*t.KeyBits
			r.FF += ternaryTableFF + t.Size*(2*t.KeyBits+t.ValueBits)
			r.USRAM += ternaryUSRAM
		}
	}

	for _, a := range p.Actions {
		switch a.Kind {
		case ppe.ActionHash:
			r.LUT4 += hashLUT
			r.FF += hashFF
		case ppe.ActionRewrite:
			r.LUT4 += scale(rewriteLUTPerBit*a.Bits, wf)
			r.FF += scale(rewriteFFPerBit*a.Bits, wf)
		case ppe.ActionChecksum:
			r.LUT4 += scale(checksumLUT, wf)
			r.FF += scale(checksumFF, wf)
			r.USRAM += checksumUSRAM
		case ppe.ActionPush, ppe.ActionPop:
			r.LUT4 += scale(pushPopLUT+pushPopLUTPerByte*a.Bytes, wf)
			r.FF += scale(pushPopFF+pushPopFFPerByte*a.Bytes, wf)
			r.USRAM += pushPopUSRAM
		case ppe.ActionTimestamp:
			r.LUT4 += timestampLUT
			r.FF += timestampFF
		case ppe.ActionCounterBank:
			r.LUT4 += counterBankLUT
			r.FF += counterFF
			r.USRAM += fpga.USRAMBlocksFor(a.Count * counterBitsPerEntry)
		case ppe.ActionMeterBank:
			r.LUT4 += meterBankLUT
			r.FF += meterBankFF
			r.USRAM += fpga.USRAMBlocksFor(a.Count * meterBitsPerEntry)
		}
	}

	for _, reg := range p.Registers {
		r.LUT4 += reg.Bits / 2
		r.FF += reg.Bits
	}

	return r
}
