// Package telemetry is the in-cable observability layer of the §4.1
// "Active Core" vision: the module is not just a datapath but a network
// element that originates its own measurements. It provides the three
// metric primitives every layer of the model records into — sharded
// atomic counters, fixed-bucket histograms, and gauges — plus a sampled
// packet-trace ring (trace.go) and a named registry with deterministic
// snapshots (registry.go).
//
// The record path is the contract: Counter.Add, Histogram.Observe,
// Gauge.Set and Tracer.Hop allocate nothing, take no locks, and are safe
// from any goroutine. Registration and snapshotting are the slow path
// (mutex-guarded, allocating); they happen on the management plane, never
// per frame. This mirrors the hardware split the paper draws between the
// line-rate pipeline and the Mi-V management core that reads it out.
package telemetry

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// cacheLine pads shards so two cores incrementing neighbouring shards do
// not false-share.
const cacheLine = 64

// shardCount is the number of counter stripes. Fixed at a small power of
// two: the datapath is single-threaded per simulator, so stripes exist to
// keep concurrent simulators (the parallel experiment runner) and the
// management goroutines from contending, not to scale one hot counter.
const shardCount = 8

type counterShard struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing sharded counter. Add spreads
// increments over cache-line-padded stripes chosen by a goroutine-stable
// hash, so concurrent writers do not bounce one cache line; Value sums
// the stripes.
type Counter struct {
	name   string
	shards [shardCount]counterShard
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// shardIndex derives a stripe index from the address of a stack variable:
// goroutines own distinct stacks, so concurrent recorders spread across
// stripes while a single recorder stays on one (and on the sim thread —
// the common case — the index is effectively constant). No allocation,
// no runtime private APIs.
func shardIndex() uint64 {
	var b byte
	return (uint64(uintptr(unsafe.Pointer(&b))) >> 9) & (shardCount - 1)
}

// Add increments the counter by n. Zero allocations, no locks.
func (c *Counter) Add(n uint64) {
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total. Concurrent Adds may or may not be
// included; the value is monotonic across calls in the absence of Reset.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Reset zeroes the counter (management plane only; racing Adds may land
// on either side of the reset).
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// Gauge is a last-value-wins instantaneous metric (queue depth, table
// occupancy). Stored as a float64 bit pattern so one metric type covers
// both integral and fractional readings.
type Gauge struct {
	name string
	v    atomic.Uint64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge value. Zero allocations, no locks.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// SetInt stores an integral gauge value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// maxHistBuckets bounds a histogram's bucket count; the record path does
// a linear scan, so bucket layouts stay small and cache-resident like the
// BRAM bin arrays they model.
const maxHistBuckets = 64

// Histogram is a fixed-bucket histogram of uint64 samples (latencies in
// ns, queue depths in frames). Bucket bounds are fixed at construction —
// the hardware shape: a small array of comparators in front of BRAM
// counters — so Observe is a bounded linear scan over at most
// maxHistBuckets upper bounds plus one overflow bin. Count, sum, min and
// max are tracked alongside.
type Histogram struct {
	name   string
	bounds []uint64 // sorted inclusive upper bounds; len <= maxHistBuckets
	counts []atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64 // ^uint64(0) until first sample
	max    atomic.Uint64
}

func newHistogram(name string, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if len(bounds) > maxHistBuckets {
		panic("telemetry: too many histogram buckets")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1), // +1 overflow bin
	}
	h.min.Store(^uint64(0))
	return h
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample. Zero allocations, no locks. The total count
// is not tracked separately — it is the sum of the bucket counters, paid
// for at snapshot time instead of on every record (this path runs per
// frame at line rate; two RMWs, a bounded scan, and two usually-cold CAS
// checks are the whole cost).
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples observed (a sum over the bucket
// counters; management-plane cost).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest observed sample (0 with no samples).
func (h *Histogram) Min() uint64 {
	v := h.min.Load()
	if v == ^uint64(0) {
		return 0
	}
	return v
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// ExpBuckets builds n exponentially growing upper bounds starting at
// start (must be > 0) and multiplying by factor (must be > 1) — the
// usual latency layout.
func ExpBuckets(start uint64, factor float64, n int) []uint64 {
	if start == 0 || factor <= 1 || n <= 0 {
		panic("telemetry: bad exponential bucket layout")
	}
	out := make([]uint64, 0, n)
	v := float64(start)
	last := uint64(0)
	for i := 0; i < n; i++ {
		b := uint64(v)
		if b <= last {
			b = last + 1
		}
		out = append(out, b)
		last = b
		v *= factor
	}
	return out
}

// LinearBuckets builds n upper bounds start, start+step, ...
func LinearBuckets(start, step uint64, n int) []uint64 {
	if step == 0 || n <= 0 {
		panic("telemetry: bad linear bucket layout")
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+uint64(i)*step)
	}
	return out
}
