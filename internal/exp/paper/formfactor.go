package paper

import (
	"fmt"

	"flexsfp/internal/core"
	"flexsfp/internal/exp"
)

// ---------------------------------------------------------------------------
// §6 form-factor scaling: "can this approach be extended to higher-speed
// and higher-density form factors like QSFP-DD or OSFP while meeting
// power and thermal constraints?"

// FormFactorResult sweeps target rates × process nodes through the
// form-factor planner.
type FormFactorResult struct {
	Plans []core.FormFactorPlan
}

// FormFactorExperiment plans PPE configurations for 10/25/100/400 Gb/s on
// 28/16/7 nm silicon and reports which pluggable module each lands in.
// The planner is deterministic; the seed is accepted for the uniform
// RunContext contract but never consumed.
func FormFactorExperiment(seed int64) FormFactorResult {
	r, _ := formFactorSingle(exp.RunContext{Seed: seed})
	return r
}

func formFactorSingle(ctx exp.RunContext) (FormFactorResult, error) {
	var res FormFactorResult
	rates := []float64{10, 25, 100, 400}
	nodes := []core.ProcessNode{core.Node28, core.Node16, core.Node7}
	for _, rate := range rates {
		for _, node := range nodes {
			res.Plans = append(res.Plans, core.PlanFormFactor(rate, node))
		}
	}
	return res, nil
}

// Render formats the sweep.
func (r FormFactorResult) Render() string {
	t := exp.NewTable("Target", "Process", "Config", "Capacity (Gb/s)", "Peak W", "Module")
	for _, p := range r.Plans {
		if !p.Feasible {
			t.Add(fmt.Sprintf("%.0fG", p.TargetGbps), p.Node.Name, "-", "-", "-", "infeasible")
			continue
		}
		t.Add(fmt.Sprintf("%.0fG", p.TargetGbps), p.Node.Name,
			fmt.Sprintf("%db×%d @ %.0fMHz", p.DatapathBits, p.Engines, float64(p.ClockHz)/1e6),
			fmt.Sprintf("%.1f", p.CapacityGbps),
			fmt.Sprintf("%.2f", p.PeakW),
			p.Module.Name)
	}
	return "Form-factor scaling (§6): target rate × silicon node → smallest viable module\n" + t.String()
}

func runFormFactor(ctx exp.RunContext) (exp.Result, error) {
	r, err := formFactorSingle(ctx)
	if err != nil {
		return nil, err
	}
	feasible := 0
	for _, p := range r.Plans {
		if p.Feasible {
			feasible++
		}
	}
	env := exp.Envelope{
		Name: "formfactor", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("plans", "", float64(len(r.Plans))),
			exp.Scalar("feasible", "", float64(feasible)),
		},
	}
	return exp.NewResult(env, r.Render), nil
}
