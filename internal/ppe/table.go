package ppe

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Table errors.
var (
	ErrKeySize   = errors.New("ppe: key size does not match table spec")
	ErrValueSize = errors.New("ppe: value size does not match table spec")
	ErrTableFull = errors.New("ppe: table full")
	ErrNotFound  = errors.New("ppe: entry not found")
)

// Table is an exact-match table with per-entry hit counters. Updates are
// atomic with respect to lookups (§4.2: "APIs to read/write tables and
// counters with atomic, runtime updates at line rate"); the lock models
// the hardware's shadowed table banks.
type Table struct {
	Spec TableSpec

	mu      sync.RWMutex
	entries map[string][]byte
	hits    map[string]uint64
	gen     uint64
	lookups uint64
	misses  uint64
}

// NewTable builds an empty table from its spec.
func NewTable(spec TableSpec) *Table {
	return &Table{
		Spec:    spec,
		entries: make(map[string][]byte),
		hits:    make(map[string]uint64),
	}
}

// KeyBytes returns the exact key length in bytes.
func (t *Table) KeyBytes() int { return (t.Spec.KeyBits + 7) / 8 }

// ValueBytes returns the exact value length in bytes.
func (t *Table) ValueBytes() int { return (t.Spec.ValueBits + 7) / 8 }

func (t *Table) checkSizes(key, value []byte) error {
	if len(key) != t.KeyBytes() {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrKeySize, len(key), t.KeyBytes())
	}
	if value != nil && len(value) != t.ValueBytes() {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrValueSize, len(value), t.ValueBytes())
	}
	return nil
}

// Add inserts or replaces an entry.
func (t *Table) Add(key, value []byte) error {
	if err := t.checkSizes(key, value); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := string(key)
	if _, exists := t.entries[k]; !exists && len(t.entries) >= t.Spec.Size {
		return fmt.Errorf("%w: %q at %d entries", ErrTableFull, t.Spec.Name, t.Spec.Size)
	}
	t.entries[k] = append([]byte(nil), value...)
	t.gen++
	return nil
}

// Delete removes an entry.
func (t *Table) Delete(key []byte) error {
	if err := t.checkSizes(key, nil); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := string(key)
	if _, ok := t.entries[k]; !ok {
		return fmt.Errorf("%w: %x", ErrNotFound, key)
	}
	delete(t.entries, k)
	delete(t.hits, k)
	t.gen++
	return nil
}

// Lookup returns the value for key, counting the hit or miss. The
// returned slice must not be modified.
func (t *Table) Lookup(key []byte) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	v, ok := t.entries[string(key)]
	if !ok {
		t.misses++
		return nil, false
	}
	t.hits[string(key)]++
	return v, true
}

// Peek returns the value without touching counters (control-plane reads).
func (t *Table) Peek(key []byte) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.entries[string(key)]
	return v, ok
}

// Len returns the current entry count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Generation returns the update generation (incremented by Add/Delete).
func (t *Table) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// Stats returns lookup/miss totals.
func (t *Table) Stats() (lookups, misses uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookups, t.misses
}

// TableEntry is a snapshot row.
type TableEntry struct {
	Key   []byte
	Value []byte
	Hits  uint64
}

// Snapshot returns all entries sorted by key (control-plane table dump).
func (t *Table) Snapshot() []TableEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TableEntry, 0, len(t.entries))
	for k, v := range t.entries {
		out = append(out, TableEntry{
			Key:   []byte(k),
			Value: append([]byte(nil), v...),
			Hits:  t.hits[k],
		})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out
}

// TernaryEntry is one masked entry: key matches when
// candidate&Mask == Value&Mask. Higher Priority wins.
type TernaryEntry struct {
	Value    []byte
	Mask     []byte
	Priority int
	Data     []byte // action data
	Hits     uint64
}

// TernaryTable is a priority-ordered masked table (register-based TCAM).
type TernaryTable struct {
	Spec TableSpec

	mu      sync.RWMutex
	entries []*TernaryEntry
	gen     uint64
	lookups uint64
	misses  uint64
}

// NewTernaryTable builds an empty ternary table.
func NewTernaryTable(spec TableSpec) *TernaryTable {
	return &TernaryTable{Spec: spec}
}

// KeyBytes returns the key length in bytes.
func (t *TernaryTable) KeyBytes() int { return (t.Spec.KeyBits + 7) / 8 }

// Add inserts an entry. Entries are kept sorted by descending priority;
// equal priorities keep insertion order.
func (t *TernaryTable) Add(e TernaryEntry) error {
	if len(e.Value) != t.KeyBytes() || len(e.Mask) != t.KeyBytes() {
		return fmt.Errorf("%w: value/mask %d/%d bytes, want %d",
			ErrKeySize, len(e.Value), len(e.Mask), t.KeyBytes())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) >= t.Spec.Size {
		return fmt.Errorf("%w: %q at %d entries", ErrTableFull, t.Spec.Name, t.Spec.Size)
	}
	ne := &TernaryEntry{
		Value:    append([]byte(nil), e.Value...),
		Mask:     append([]byte(nil), e.Mask...),
		Priority: e.Priority,
		Data:     append([]byte(nil), e.Data...),
	}
	idx := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < ne.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[idx+1:], t.entries[idx:])
	t.entries[idx] = ne
	t.gen++
	return nil
}

// Clear removes all entries.
func (t *TernaryTable) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
	t.gen++
}

// Lookup returns the action data of the highest-priority matching entry.
func (t *TernaryTable) Lookup(key []byte) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	for _, e := range t.entries {
		if maskedEqual(key, e.Value, e.Mask) {
			e.Hits++
			return e.Data, true
		}
	}
	t.misses++
	return nil, false
}

func maskedEqual(key, value, mask []byte) bool {
	if len(key) != len(value) {
		return false
	}
	for i := range key {
		if key[i]&mask[i] != value[i]&mask[i] {
			return false
		}
	}
	return true
}

// Len returns the entry count.
func (t *TernaryTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Stats returns lookup/miss totals.
func (t *TernaryTable) Stats() (lookups, misses uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookups, t.misses
}

// Snapshot returns a copy of the entries in match order.
func (t *TernaryTable) Snapshot() []TernaryEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TernaryEntry, len(t.entries))
	for i, e := range t.entries {
		out[i] = TernaryEntry{
			Value:    append([]byte(nil), e.Value...),
			Mask:     append([]byte(nil), e.Mask...),
			Priority: e.Priority,
			Data:     append([]byte(nil), e.Data...),
			Hits:     e.Hits,
		}
	}
	return out
}
