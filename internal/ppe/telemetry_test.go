package ppe

import (
	"testing"

	"flexsfp/internal/netsim"
	"flexsfp/internal/telemetry"
)

func instrumentedEngine(t *testing.T, sampleEvery int) (*netsim.Simulator, *Engine, *telemetry.Registry) {
	t.Helper()
	sim := netsim.New(1)
	reg := telemetry.New()
	reg.SetTracer(telemetry.NewTracer(sampleEvery, 256))
	e := NewEngine(sim, clock156, 64, nil)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	e.SetTelemetry(NewTelemetry(reg))
	return sim, e, reg
}

func TestEngineTelemetryCounters(t *testing.T) {
	sim, e, reg := instrumentedEngine(t, 1)
	frame := make([]byte, 64)
	tr := reg.Tracer()
	for i := 0; i < 10; i++ {
		id, _ := tr.Sample()
		tr.SetCurrent(id)
		e.Submit(frame, DirEdgeToOptical)
		tr.SetCurrent(0)
		sim.Run()
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("ppe.frames_in"); v != 10 {
		t.Fatalf("frames_in = %d", v)
	}
	if v, _ := snap.Counter("ppe.bytes_in"); v != 640 {
		t.Fatalf("bytes_in = %d", v)
	}
	if v, _ := snap.Counter("ppe.verdict.pass"); v != 10 {
		t.Fatalf("verdict.pass = %d", v)
	}
	lat, ok := snap.Histogram("ppe.latency_ns")
	if !ok || lat.Count != 10 || lat.Min == 0 {
		t.Fatalf("latency histogram = %+v (ok=%v)", lat, ok)
	}
	// Every frame was sampled: each contributes a Submit and a Verdict hop.
	evs := tr.Events()
	if len(evs) != 20 {
		t.Fatalf("got %d trace events, want 20", len(evs))
	}
	if evs[0].Stage != telemetry.StageSubmit || evs[1].Stage != telemetry.StageVerdict {
		t.Fatalf("hop order = %v, %v", evs[0].Stage, evs[1].Stage)
	}
	if evs[1].Aux != uint8(VerdictPass) {
		t.Fatalf("verdict hop aux = %d", evs[1].Aux)
	}
	if evs[0].ID == 0 || evs[0].ID != evs[1].ID {
		t.Fatalf("hops not correlated: %d vs %d", evs[0].ID, evs[1].ID)
	}
}

func TestEngineTelemetryQueueDrop(t *testing.T) {
	_, e, reg := instrumentedEngine(t, 1)
	e.QueueLimit = 1
	frame := make([]byte, 1518)
	for i := 0; i < 10; i++ {
		e.Submit(frame, DirEdgeToOptical) // no sim.Run: pile onto the queue
	}
	if v, _ := reg.Snapshot().Counter("ppe.queue_drops"); v == 0 {
		t.Fatal("queue drops not counted")
	}
}

// TestEngineSubmitTelemetryZeroAlloc pins the fully instrumented per-frame
// path — counters, two histograms, sampling, two trace hops — at zero
// allocations, the tentpole contract for wiring telemetry into the hot
// path at all.
func TestEngineSubmitTelemetryZeroAlloc(t *testing.T) {
	sim, e, reg := instrumentedEngine(t, 1)
	tr := reg.Tracer()
	frame := make([]byte, 64)
	for i := 0; i < 8; i++ {
		e.Submit(frame, DirEdgeToOptical)
		sim.Run()
	}
	if n := testing.AllocsPerRun(200, func() {
		id, _ := tr.Sample()
		tr.SetCurrent(id)
		if !e.Submit(frame, DirEdgeToOptical) {
			t.Fatal("submit refused")
		}
		tr.SetCurrent(0)
		sim.Run()
	}); n != 0 {
		t.Fatalf("instrumented Engine.Submit allocates %v per run, want 0", n)
	}
}
