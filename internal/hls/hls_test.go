package hls

import (
	"errors"
	"testing"
	"testing/quick"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/fpga"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// natProgram mirrors the §5.1 case study: static one-to-one source NAT
// with a 32,768-flow source-IP hash table, parsed eth+ipv4, checksum
// fixup, two match-action stages.
func natProgram() *ppe.Program {
	return &ppe.Program{
		Name:        "nat",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4},
		Tables: []ppe.TableSpec{
			{Name: "nat", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 32, Size: 32768},
		},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 32},
			{Kind: ppe.ActionRewrite, Bits: 32},
			{Kind: ppe.ActionChecksum},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict { return ppe.VerdictPass }),
	}
}

func withinPct(got, want int, pct float64) bool {
	diff := float64(got - want)
	if diff < 0 {
		diff = -diff
	}
	return diff <= float64(want)*pct/100
}

func TestNATAppMatchesTable1(t *testing.T) {
	// Paper Table 1, "NAT app" row: 9122 LUT / 11294 FF / 36 uSRAM /
	// 160 LSRAM. Logic within 1%; memory blocks exact (they follow from
	// table geometry, not calibration).
	r := EstimateProgram(natProgram(), 64)
	if !withinPct(r.LUT4, 9122, 1) {
		t.Errorf("LUT4 = %d, want 9122 ±1%%", r.LUT4)
	}
	if !withinPct(r.FF, 11294, 1) {
		t.Errorf("FF = %d, want 11294 ±1%%", r.FF)
	}
	if r.USRAM != 36 {
		t.Errorf("uSRAM = %d, want 36", r.USRAM)
	}
	if r.LSRAM != 160 {
		t.Errorf("LSRAM = %d, want 160", r.LSRAM)
	}
}

func TestShellMatchesTable1Rows(t *testing.T) {
	rows := ShellBreakdown(OneWayFilter)
	want := []struct {
		name string
		res  fpga.Resources
	}{
		{"Mi-V", fpga.Resources{LUT4: 8696, FF: 376, USRAM: 6, LSRAM: 4}},
		{"Elec. I/F", fpga.Resources{LUT4: 6824, FF: 6924, USRAM: 118}},
		{"Opt. I/F", fpga.Resources{LUT4: 6813, FF: 6924, USRAM: 118}},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i].Name != w.name || rows[i].Resources != w.res {
			t.Errorf("row %d = %s %v, want %s %v", i, rows[i].Name, rows[i].Resources, w.name, w.res)
		}
	}
}

func TestUsedRowMatchesTable1(t *testing.T) {
	// Paper "Used" row: 31455 LUT / 25518 FF / 278 uSRAM / 164 LSRAM,
	// i.e. 16% / 13% / 15% / 26% of the MPF200T.
	total := EstimateProgram(natProgram(), 64).Add(ShellResources(OneWayFilter))
	if !withinPct(total.LUT4, 31455, 1) {
		t.Errorf("Used LUT4 = %d, want 31455 ±1%%", total.LUT4)
	}
	if !withinPct(total.FF, 25518, 1) {
		t.Errorf("Used FF = %d, want 25518 ±1%%", total.FF)
	}
	if total.USRAM != 278 {
		t.Errorf("Used uSRAM = %d, want 278", total.USRAM)
	}
	if total.LSRAM != 164 {
		t.Errorf("Used LSRAM = %d, want 164", total.LSRAM)
	}
	u := fpga.MPF200T.Utilization(total)
	if int(u.LUT4) != 16 || int(u.FF) != 13 || int(u.USRAM) != 15 || int(u.LSRAM) != 26 {
		t.Errorf("utilization = %.0f/%.0f/%.0f/%.0f %%, want 16/13/15/26",
			u.LUT4, u.FF, u.USRAM, u.LSRAM)
	}
}

func TestShellGrowthSublinear(t *testing.T) {
	// §4.1: Two-Way-Core hardware overhead grows, but not linearly.
	one := ShellResources(OneWayFilter)
	two := ShellResources(TwoWayCore)
	if two.LUT4 <= one.LUT4 {
		t.Error("Two-Way-Core shell not larger")
	}
	if float64(two.LUT4) > 1.3*float64(one.LUT4) {
		t.Errorf("Two-Way-Core shell grew %.1fx, expected sublinear growth",
			float64(two.LUT4)/float64(one.LUT4))
	}
	active := ShellResources(ActiveCore)
	if active.LUT4 <= two.LUT4 {
		t.Error("ActiveCore shell not larger than Two-Way-Core")
	}
}

func TestCompileNATOnMPF200T(t *testing.T) {
	d, err := Compile(natProgram(), Options{
		Device:       fpga.MPF200T,
		Shell:        OneWayFilter,
		ClockHz:      156_250_000,
		DatapathBits: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fit.Fits {
		t.Error("NAT does not fit MPF200T")
	}
	if d.Fit.Limiting != "LSRAM" {
		t.Errorf("limiting = %s, want LSRAM", d.Fit.Limiting)
	}
	if d.AchievableClockMHz < 156.25 {
		t.Errorf("achievable clock %.1f MHz < 156.25", d.AchievableClockMHz)
	}
	bs := d.Bitstream
	if bs == nil || bs.AppName != "nat" || bs.ClockKHz != 156250 || bs.DatapathBits != 64 {
		t.Fatalf("bitstream = %+v", bs)
	}
	m, err := ParseManifest(bs.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "nat" || m.Stages != 2 || len(m.Tables) != 1 || m.Tables[0].Size != 32768 {
		t.Errorf("manifest = %+v", m)
	}
	if m.AppLSRAM != 160 {
		t.Errorf("manifest LSRAM = %d", m.AppLSRAM)
	}
}

func TestCompileGoldenFlag(t *testing.T) {
	d, err := Compile(natProgram(), Options{
		ClockHz: 156_250_000, DatapathBits: 64, Golden: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Bitstream.Golden() {
		t.Error("golden flag not set")
	}
	if d.Target.Name != "MPF200T" {
		t.Errorf("default device = %s", d.Target.Name)
	}
}

func TestCompileRejectsOversizedDesign(t *testing.T) {
	p := natProgram()
	// Four 32k-entry tables: 640 LSRAM > 616 available.
	p.Tables = append(p.Tables,
		ppe.TableSpec{Name: "t2", KeyBits: 32, ValueBits: 32, Size: 32768},
		ppe.TableSpec{Name: "t3", KeyBits: 32, ValueBits: 32, Size: 32768},
		ppe.TableSpec{Name: "t4", KeyBits: 32, ValueBits: 32, Size: 32768},
	)
	_, err := Compile(p, Options{ClockHz: 156_250_000, DatapathBits: 64})
	if !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("err = %v, want ErrDoesNotFit", err)
	}
}

func TestCompileRejectsBadClock(t *testing.T) {
	_, err := Compile(natProgram(), Options{ClockHz: 0, DatapathBits: 64})
	if !errors.Is(err, ErrBadOptions) {
		t.Errorf("err = %v, want ErrBadOptions", err)
	}
}

func TestCompileTimingFailure(t *testing.T) {
	// 450 MHz exceeds the MPF200T ceiling regardless of utilization.
	_, err := Compile(natProgram(), Options{ClockHz: 450_000_000, DatapathBits: 64})
	if !errors.Is(err, ErrTimingFailure) {
		t.Errorf("err = %v, want ErrTimingFailure", err)
	}
}

func TestWiderDatapathCostsMore(t *testing.T) {
	// §5.3 scalability: widening the datapath requires a more powerful
	// FPGA. The estimator must reflect that monotonically.
	p := natProgram()
	r64 := EstimateProgram(p, 64)
	r256 := EstimateProgram(p, 256)
	r512 := EstimateProgram(p, 512)
	if r256.LUT4 <= r64.LUT4 || r512.LUT4 <= r256.LUT4 {
		t.Errorf("LUT4 not monotone in width: %d/%d/%d", r64.LUT4, r256.LUT4, r512.LUT4)
	}
	// Table memory is width-independent (same entries).
	if r512.LSRAM != r64.LSRAM {
		t.Errorf("LSRAM changed with width: %d vs %d", r64.LSRAM, r512.LSRAM)
	}
}

func TestTernaryTableCost(t *testing.T) {
	// Ternary entries burn fabric registers: 64 five-tuple entries must
	// cost far more FF per entry than the exact table but still fit.
	p := &ppe.Program{
		Name:        "acl",
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeTCP},
		Tables: []ppe.TableSpec{
			{Name: "rules", Kind: ppe.TableTernary, KeyBits: 104, ValueBits: 8, Size: 64},
		},
		Actions: []ppe.ActionSpec{{Kind: ppe.ActionCounterBank, Count: 64}},
		Stages:  2,
		Handler: ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict { return ppe.VerdictPass }),
	}
	r := EstimateProgram(p, 64)
	if r.LSRAM != 0 {
		t.Errorf("ternary table should not use LSRAM, got %d", r.LSRAM)
	}
	d, err := Compile(p, Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fit.Fits {
		t.Error("64-entry ACL should fit")
	}
}

func TestRoundTripThroughBitstream(t *testing.T) {
	d, err := Compile(natProgram(), Options{
		ClockHz: 156_250_000, DatapathBits: 64, Config: []byte("static-map-v1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := d.Bitstream.Encode()
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("k")
	signed := bitstream.Sign(enc, key)
	body, err := bitstream.Verify(signed, key)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := bitstream.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseManifest(bs.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Config) != "static-map-v1" {
		t.Errorf("config = %q", m.Config)
	}
}

func TestShellString(t *testing.T) {
	if OneWayFilter.String() != "one-way-filter" || TwoWayCore.String() != "two-way-core" ||
		ActiveCore.String() != "active-core" {
		t.Error("shell names wrong")
	}
}

// Property: adding structure never decreases any resource class —
// estimates are monotone in tables, actions, stages, and parse depth.
func TestEstimateMonotoneProperty(t *testing.T) {
	base := func() *ppe.Program {
		return &ppe.Program{
			Name:        "m",
			ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
			Stages:      1,
			Handler:     ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict { return ppe.VerdictPass }),
		}
	}
	geq := func(a, b fpga.Resources) bool {
		return a.LUT4 >= b.LUT4 && a.FF >= b.FF && a.USRAM >= b.USRAM && a.LSRAM >= b.LSRAM
	}
	f := func(stages, layers, tblSize uint8, keyBits, actBits uint8) bool {
		p := base()
		p.Stages = int(stages)%4 + 1
		for i := 0; i < int(layers)%4; i++ {
			p.ParseLayers = append(p.ParseLayers, packet.LayerTypeIPv4)
		}
		r0 := EstimateProgram(p, 64)

		// Add a table: every class must be ≥.
		withTable := *p
		withTable.Tables = append([]ppe.TableSpec(nil), p.Tables...)
		withTable.Tables = append(withTable.Tables, ppe.TableSpec{
			Name: "t", KeyBits: int(keyBits)%128 + 1, ValueBits: 32, Size: int(tblSize)%1024 + 1,
		})
		if !geq(EstimateProgram(&withTable, 64), r0) {
			return false
		}

		// Add an action.
		withAction := *p
		withAction.Actions = append([]ppe.ActionSpec(nil), p.Actions...)
		withAction.Actions = append(withAction.Actions, ppe.ActionSpec{
			Kind: ppe.ActionRewrite, Bits: int(actBits)%256 + 1,
		})
		if !geq(EstimateProgram(&withAction, 64), r0) {
			return false
		}

		// Add a stage.
		withStage := *p
		withStage.Stages++
		return geq(EstimateProgram(&withStage, 64), r0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
