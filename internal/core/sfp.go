package core

import (
	"flexsfp/internal/netsim"
	"flexsfp/internal/phy"
)

// StandardSFP models a plain (non-programmable) 10GBASE-SR transceiver:
// frames pass straight through with only a retimer delay; power draw is
// constant. It is the baseline the power experiment and the legacy-switch
// cages use.
type StandardSFP struct {
	sim   *netsim.Simulator
	Laser *phy.Laser

	// RetimerDelay is the CDR/retimer latency added per direction.
	RetimerDelay netsim.Duration

	tx [2]func([]byte)

	stats Stats
}

// NewStandardSFP builds a passthrough transceiver.
func NewStandardSFP(sim *netsim.Simulator) *StandardSFP {
	return &StandardSFP{
		sim:          sim,
		Laser:        phy.NewLaser(),
		RetimerDelay: 5 * netsim.Nanosecond,
	}
}

// SetTx wires the transmit callback of a port (PortEdge or PortOptical).
func (s *StandardSFP) SetTx(p PortID, tx func([]byte)) {
	if p == PortEdge || p == PortOptical {
		s.tx[p] = tx
	}
}

// RxEdge receives a frame on the electrical side.
func (s *StandardSFP) RxEdge(data []byte) { s.forward(PortEdge, PortOptical, data) }

// RxOptical receives a frame on the fiber side.
func (s *StandardSFP) RxOptical(data []byte) { s.forward(PortOptical, PortEdge, data) }

func (s *StandardSFP) forward(from, to PortID, data []byte) {
	s.stats.Rx[from]++
	if s.tx[to] == nil {
		return
	}
	s.sim.Schedule(s.RetimerDelay, func() {
		s.stats.Tx[to]++
		s.tx[to](data)
	})
}

// Stats returns a counters snapshot.
func (s *StandardSFP) Stats() Stats { return s.stats }

// PowerW returns the constant module draw.
func (s *StandardSFP) PowerW() float64 { return StandardSFPPowerW }

// DDM returns a diagnostics snapshot.
func (s *StandardSFP) DDM() phy.DDM {
	return phy.DDM{
		TemperatureC: 42,
		VccVolts:     3.3,
		TxBiasMA:     s.Laser.EffectiveBiasMilliAmps(),
		TxPowerDBm:   s.Laser.OutputPowerDBm(),
		RxPowerDBm:   -4.0,
	}
}

// EEPROM returns a plain vendor module's identification page.
func (s *StandardSFP) EEPROM() []byte {
	return phy.EncodeEEPROM(phy.Identity{
		VendorName:   "GENERIC",
		VendorPN:     "SFP-10G-SR",
		VendorRev:    "A",
		VendorSN:     "GN2500001111",
		DateCode:     "250101",
		Is10GBaseSR:  true,
		DDMSupported: true,
	})
}
