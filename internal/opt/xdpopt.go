package opt

import (
	"fmt"

	"flexsfp/internal/xdp"
)

// XDPReport summarizes the instruction-level passes' effect on one
// program.
type XDPReport struct {
	InsnsBefore int `json:"insns_before"`
	InsnsAfter  int `json:"insns_after"`
	// Unreachable counts instructions removed because no path reaches
	// them; DeadWrites counts pure register writes whose result is never
	// read; FoldedLoads counts duplicate packet loads rewritten into
	// register copies; ThreadedJumps counts jumps retargeted past
	// unconditional-jump chains.
	Unreachable   int `json:"unreachable"`
	DeadWrites    int `json:"dead_writes"`
	FoldedLoads   int `json:"folded_loads"`
	ThreadedJumps int `json:"threaded_jumps"`
	// ScalarCycles is the per-packet occupancy of the optimized program
	// on a 1-IPC core (== InsnsAfter); PackedCycles is the VLIW schedule
	// length at Options.IssueWidth. The ratio is the packing speedup.
	ScalarCycles int `json:"scalar_cycles"`
	PackedCycles int `json:"packed_cycles"`
}

// maxRounds bounds the fixpoint iteration; each pass only ever shrinks
// the program or retargets jumps, so a handful of rounds converges.
const maxRounds = 8

// OptimizeXDP runs the instruction pass pipeline over a verified
// program and returns an optimized copy, a report, and an error if the
// input fails verification (the passes themselves cannot fail on a
// verified program — the output is re-verified as a hard invariant).
//
// Legality: every pass preserves the program's exact observable
// behavior — the returned action, the final packet bytes, and
// out-of-bounds aborts. The forward-only jump guarantee from the
// verifier is what makes single-pass reachability, block-local load
// folding, and one-sweep reverse liveness exact rather than
// approximations.
//
// Pass order within a round: unreachable-code elimination (shrinks the
// CFG), jump threading (shortens chains, exposing more unreachable
// code next round), duplicate-load folding (turns repeated packet
// reads into register moves), then dead-write elimination (deletes the
// moves folding left behind, plus any write never read). Rounds repeat
// to a fixpoint because each pass can expose work for the others.
func OptimizeXDP(p *xdp.Program, o Options) (*xdp.Program, XDPReport, error) {
	o = o.withDefaults()
	if err := p.Verify(); err != nil {
		return nil, XDPReport{}, err
	}
	insns := append([]xdp.Insn(nil), p.Insns...)
	rep := XDPReport{InsnsBefore: len(insns)}
	for round := 0; round < maxRounds; round++ {
		changed := false
		var n int
		insns, n = elimUnreachable(insns)
		rep.Unreachable += n
		changed = changed || n > 0
		insns, n = threadJumps(insns)
		rep.ThreadedJumps += n
		changed = changed || n > 0
		insns, n = foldDupLoads(insns)
		rep.FoldedLoads += n
		changed = changed || n > 0
		insns, n = elimDeadWrites(insns)
		rep.DeadWrites += n
		changed = changed || n > 0
		if !changed {
			break
		}
	}
	out := &xdp.Program{Name: p.Name, Insns: insns}
	if err := out.Verify(); err != nil {
		return nil, rep, fmt.Errorf("opt: optimized %q fails verification: %w", p.Name, err)
	}
	rep.InsnsAfter = len(insns)
	rep.ScalarCycles = len(insns)
	rep.PackedCycles = scheduleCycles(insns, o.IssueWidth)
	return out, rep, nil
}

// --- Instruction classification --------------------------------------------

func isJump(op xdp.Op) bool {
	switch op {
	case xdp.OpJmp, xdp.OpJEq, xdp.OpJNe, xdp.OpJGt, xdp.OpJLt, xdp.OpJSet:
		return true
	}
	return false
}

func isLoad(op xdp.Op) bool {
	return op == xdp.OpLdB || op == xdp.OpLdH || op == xdp.OpLdW
}

func isStore(op xdp.Op) bool {
	return op == xdp.OpStB || op == xdp.OpStH || op == xdp.OpStW
}

// isPureALU reports whether op computes a register result with no side
// effect and no possible fault (shifts mask their amount; there is no
// divide), so a dead one can be deleted without changing behavior.
func isPureALU(op xdp.Op) bool {
	switch op {
	case xdp.OpMov, xdp.OpAdd, xdp.OpSub, xdp.OpMul,
		xdp.OpAnd, xdp.OpOr, xdp.OpXor, xdp.OpLsh, xdp.OpRsh:
		return true
	}
	return false
}

func bit(r xdp.Reg) uint16 { return 1 << uint(r) }

// insnUses returns the register-read set of in.
func insnUses(in xdp.Insn) uint16 {
	switch {
	case in.Op == xdp.OpExit:
		return bit(0) // exit returns r0
	case in.Op == xdp.OpJmp:
		return 0
	case isJump(in.Op): // conditional
		u := bit(in.Dst)
		if !in.UseImm {
			u |= bit(in.Src)
		}
		return u
	case isLoad(in.Op):
		return bit(in.Src)
	case isStore(in.Op):
		u := bit(in.Dst) // store addresses through Dst
		if !in.UseImm {
			u |= bit(in.Src)
		}
		return u
	case in.Op == xdp.OpMov:
		if in.UseImm {
			return 0
		}
		return bit(in.Src)
	default: // two-operand ALU reads Dst as well
		u := bit(in.Dst)
		if !in.UseImm {
			u |= bit(in.Src)
		}
		return u
	}
}

// insnDef returns the register-write set of in (empty for stores, jumps
// and exit).
func insnDef(in xdp.Insn) uint16 {
	if isPureALU(in.Op) || isLoad(in.Op) {
		return bit(in.Dst)
	}
	return 0
}

// blockLeaders marks basic-block leader instructions: entry, every jump
// target, and every fall-through successor of a conditional jump.
func blockLeaders(insns []xdp.Insn) []bool {
	l := make([]bool, len(insns))
	if len(insns) > 0 {
		l[0] = true
	}
	for i, in := range insns {
		if !isJump(in.Op) {
			continue
		}
		l[i+1+int(in.Off)] = true
		if i+1 < len(insns) {
			l[i+1] = true
		}
	}
	return l
}

// --- Passes ----------------------------------------------------------------

// elimUnreachable removes instructions no path reaches. Exact in one
// forward sweep because all jumps point forward.
func elimUnreachable(insns []xdp.Insn) ([]xdp.Insn, int) {
	n := len(insns)
	reach := make([]bool, n)
	reach[0] = true
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		in := insns[i]
		switch {
		case in.Op == xdp.OpExit:
			// terminal
		case in.Op == xdp.OpJmp:
			reach[i+1+int(in.Off)] = true
		case isJump(in.Op):
			reach[i+1+int(in.Off)] = true
			reach[i+1] = true
		default:
			reach[i+1] = true
		}
	}
	dead := make([]bool, n)
	any := false
	for i := range dead {
		if !reach[i] {
			dead[i] = true
			any = true
		}
	}
	if !any {
		return insns, 0
	}
	return removeDead(insns, dead)
}

// threadJumps retargets every jump whose destination is an
// unconditional jump to that jump's final destination, collapsing
// jump→jump chains. Chains are strictly forward, so following them
// terminates; the hop guard is belt and braces.
func threadJumps(insns []xdp.Insn) ([]xdp.Insn, int) {
	changed := 0
	for i := range insns {
		in := &insns[i]
		if !isJump(in.Op) {
			continue
		}
		t := i + 1 + int(in.Off)
		hops := 0
		for hops < len(insns) && insns[t].Op == xdp.OpJmp {
			t = t + 1 + int(insns[t].Off)
			hops++
		}
		if hops > 0 {
			in.Off = int16(t - i - 1)
			changed++
		}
	}
	return insns, changed
}

// availLoad is one block-local available-load record: a packet load
// (op, addr reg, offset) whose result still lives in dst.
type availLoad struct {
	op  xdp.Op
	src xdp.Reg
	off int16
	dst xdp.Reg
}

// foldDupLoads rewrites a packet load identical to an earlier one in
// the same basic block (same size, same address register with no
// intervening write to it, no intervening packet store) into a register
// copy of the first load's destination.
//
// Legality, including aborts: the earlier load bounds-checked the exact
// same address and size and succeeded (or execution never got here), so
// the duplicate's check is provably redundant; and because the block
// saw no packet store, the loaded bytes are unchanged. Block-locality
// makes the dominance argument trivial — within a block the first load
// is on every path to the second.
func foldDupLoads(insns []xdp.Insn) ([]xdp.Insn, int) {
	leaders := blockLeaders(insns)
	folded := 0
	var avail []availLoad
	for i := range insns {
		if leaders[i] {
			avail = avail[:0]
		}
		in := &insns[i]
		switch {
		case isLoad(in.Op):
			hit := -1
			for k, a := range avail {
				if a.op == in.Op && a.src == in.Src && a.off == in.Off {
					hit = k
					break
				}
			}
			if hit >= 0 {
				prev := avail[hit].dst
				dst := in.Dst
				*in = xdp.Insn{Op: xdp.OpMov, Dst: dst, Src: prev}
				folded++
				invalidateReg(&avail, dst)
			} else {
				dst := in.Dst
				invalidateReg(&avail, dst)
				if dst != in.Src {
					// A load into its own address register destroys the
					// address — the value is not re-derivable, so don't
					// record it.
					avail = append(avail, availLoad{in.Op, in.Src, in.Off, dst})
				}
			}
		case isStore(in.Op):
			avail = avail[:0] // packet mutated: every cached load is stale
		case insnDef(*in) != 0:
			invalidateReg(&avail, in.Dst)
		}
	}
	return insns, folded
}

// invalidateReg drops available-load records that read or hold r.
func invalidateReg(avail *[]availLoad, r xdp.Reg) {
	kept := (*avail)[:0]
	for _, a := range *avail {
		if a.dst != r && a.src != r {
			kept = append(kept, a)
		}
	}
	*avail = kept
}

// elimDeadWrites deletes pure register writes whose result no path ever
// reads, found with one reverse liveness sweep (exact: forward-only
// jumps mean instruction order is a topological order of the CFG, so
// successors' live-in sets are final when a predecessor is visited).
// Only pure ALU/mov instructions are candidates — loads can fault
// (their bounds check is a side effect) and stores mutate the packet. A
// register self-copy (mov r, r) is deleted regardless of liveness.
func elimDeadWrites(insns []xdp.Insn) ([]xdp.Insn, int) {
	n := len(insns)
	liveIn := make([]uint16, n)
	dead := make([]bool, n)
	any := false
	for i := n - 1; i >= 0; i-- {
		in := insns[i]
		var out uint16
		switch {
		case in.Op == xdp.OpExit:
			// no successors
		case in.Op == xdp.OpJmp:
			out = liveIn[i+1+int(in.Off)]
		case isJump(in.Op):
			out = liveIn[i+1] | liveIn[i+1+int(in.Off)]
		default:
			if i+1 < n {
				out = liveIn[i+1]
			}
		}
		if isPureALU(in.Op) {
			selfCopy := in.Op == xdp.OpMov && !in.UseImm && in.Dst == in.Src
			if out&bit(in.Dst) == 0 || selfCopy {
				dead[i] = true
				any = true
				liveIn[i] = out
				continue
			}
		}
		liveIn[i] = (out &^ insnDef(in)) | insnUses(in)
	}
	if !any {
		return insns, 0
	}
	return removeDead(insns, dead)
}

// --- Dead-instruction removal with jump remapping --------------------------

// removeDead deletes the marked instructions and remaps every surviving
// jump's displacement. A jump whose entire span dies becomes a
// fall-through; a (conditional or not) jump to its own successor is a
// semantic no-op — and an encoding the verifier rejects (Off <= 0) — so
// the fixpoint marks such jumps dead too before the single remap.
func removeDead(insns []xdp.Insn, dead []bool) ([]xdp.Insn, int) {
	for {
		newIdx := indexMap(insns, dead)
		changed := false
		for i, in := range insns {
			if dead[i] || !isJump(in.Op) {
				continue
			}
			t := i + 1 + int(in.Off)
			if newIdx[t] == newIdx[i]+1 {
				dead[i] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	newIdx := indexMap(insns, dead)
	out := make([]xdp.Insn, 0, len(insns))
	removed := 0
	for i, in := range insns {
		if dead[i] {
			removed++
			continue
		}
		if isJump(in.Op) {
			t := i + 1 + int(in.Off)
			in.Off = int16(newIdx[t] - newIdx[i] - 1)
		}
		out = append(out, in)
	}
	return out, removed
}

// indexMap returns, for every old index (plus one past the end), the
// new index of the first kept instruction at or after it.
func indexMap(insns []xdp.Insn, dead []bool) []int {
	idx := make([]int, len(insns)+1)
	kept := 0
	for i := range insns {
		idx[i] = kept
		if !dead[i] {
			kept++
		}
	}
	idx[len(insns)] = kept
	return idx
}
