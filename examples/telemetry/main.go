// In-band telemetry: INT-style metadata insertion across a two-hop path
// (§3 "Monitoring and Observability"). Three FlexSFPs cooperate: a
// source pushes the telemetry shim and stamps the first hop, a transit
// module appends its hop, and a sink strips the shim, delivering the
// original frame to the host while exporting the per-hop path records —
// observability the legacy gear in between never had.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"net/netip"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/trafficgen"
)

func main() {
	sim := flexsfp.NewSim(1)

	// Build the three-node path: source → transit → sink.
	roles := []struct {
		role string
		id   uint32
	}{
		{"source", 101}, {"transit", 102}, {"sink", 103},
	}
	var mods []*core.Module
	for _, r := range roles {
		mod, _, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
			Name: "int-" + r.role, DeviceID: r.id,
			Shell: flexsfp.TwoWayCore, App: "telemetry",
			Config: map[string]any{"role": r.role, "device_id": r.id},
		})
		if err != nil {
			log.Fatal(err)
		}
		mods = append(mods, mod)
	}

	// Chain them with 10G fibers of different lengths (propagation
	// delays show up in the hop timestamps).
	const tenGig = 10_000_000_000
	link := func(tx *core.Module, txPort core.PortID, deliver func([]byte), prop netsim.Duration) {
		l := netsim.NewLink(sim, tenGig, prop, deliver)
		tx.SetTx(txPort, func(b []byte) { l.Send(b) })
	}
	// source optical → transit edge (500 m), transit optical → sink edge (2 km).
	link(mods[0], core.PortOptical, mods[1].RxEdge, 2500*netsim.Nanosecond)
	link(mods[1], core.PortOptical, mods[2].RxEdge, 10*netsim.Microsecond)
	mods[0].SetTx(core.PortEdge, func([]byte) {})
	mods[1].SetTx(core.PortEdge, func([]byte) {})
	mods[2].SetTx(core.PortEdge, func([]byte) {})

	// Receiving host behind the sink.
	var delivered int
	var lastLen int
	mods[2].SetTx(core.PortOptical, func(b []byte) {
		delivered++
		lastLen = len(b)
	})

	// Send traffic into the source's edge.
	const frameLen = 256
	gen := trafficgen.New(sim, trafficgen.Config{
		PPS:    100_000,
		Sizes:  []trafficgen.IMIXEntry{{Size: frameLen, Weight: 1}},
		SrcMAC: packet.MustMAC("02:01:00:00:00:01"),
		DstMAC: packet.MustMAC("02:01:00:00:00:02"),
		SrcIP:  netip.MustParseAddr("10.0.0.1"),
		DstIP:  netip.MustParseAddr("10.0.0.2"),
		Flows:  4,
	}, func(b []byte) bool { mods[0].RxEdge(b); return true })
	gen.Run(1000)
	sim.RunFor(50 * netsim.Millisecond)

	fmt.Printf("frames sent: %d, delivered to host: %d (original size restored: %v)\n",
		gen.Sent, delivered, lastLen == frameLen)

	// Collect the paths recorded at the sink via the app's export API.
	collector, ok := mods[2].App().(interface{ Paths() []apps.PathRecord })
	if !ok {
		log.Fatal("sink app does not export paths")
	}
	paths := collector.Paths()
	fmt.Printf("paths collected at sink: %d\n", len(paths))
	if len(paths) > 0 {
		p := paths[0]
		fmt.Println("\nFirst recorded path:")
		prev := uint64(0)
		for i, h := range p.Hops {
			delta := ""
			if i > 0 {
				delta = fmt.Sprintf("  (+%d ns)", h.TimestampNs-prev)
			}
			fmt.Printf("  hop %d: device %d  t=%d ns%s\n", i, h.DeviceID, h.TimestampNs, delta)
			prev = h.TimestampNs
		}
		total := p.Hops[len(p.Hops)-1].TimestampNs - p.Hops[0].TimestampNs
		fmt.Printf("  end-to-end (source→sink PPE): %d ns\n", total)
	}
}
