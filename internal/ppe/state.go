package ppe

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CounterBank is a bank of 64-bit packet+byte counters, indexed densely.
//
// Each counter's (packets, bytes) pair is updated and read as a unit via a
// per-counter seqlock, so a management-plane Read racing a datapath Inc
// can never observe a torn pair (packets bumped, bytes not — the classic
// two-word counter bug). The writer section is two atomic adds between a
// CAS-claimed odd sequence and its even release; readers retry until they
// bracket a stable even sequence. Inc stays allocation-free and, in the
// single-writer case of one sim thread, the CAS never contends.
type CounterBank struct {
	name string
	ctrs []bankCounter
}

type bankCounter struct {
	seq     atomic.Uint64 // even = stable, odd = write in progress
	packets atomic.Uint64
	bytes   atomic.Uint64
}

// NewCounterBank allocates n counters.
func NewCounterBank(name string, n int) *CounterBank {
	return &CounterBank{name: name, ctrs: make([]bankCounter, n)}
}

// Len returns the number of counters.
func (c *CounterBank) Len() int { return len(c.ctrs) }

// lock claims the counter's write section (seq becomes odd). The CAS
// arbitrates between the datapath and management-plane writers (Reset);
// with a single writer it succeeds on the first try.
func (ctr *bankCounter) lock() {
	for {
		s := ctr.seq.Load()
		if s&1 == 0 && ctr.seq.CompareAndSwap(s, s+1) {
			return
		}
	}
}

// unlock releases the write section (seq returns to even).
func (ctr *bankCounter) unlock() { ctr.seq.Add(1) }

// Inc adds one packet of n bytes to counter i. Out-of-range indexes are
// ignored (hardware counters saturate silently). Zero allocations.
func (c *CounterBank) Inc(i int, n int) {
	if i < 0 || i >= len(c.ctrs) {
		return
	}
	ctr := &c.ctrs[i]
	ctr.lock()
	ctr.packets.Add(1)
	ctr.bytes.Add(uint64(n))
	ctr.unlock()
}

// Read returns (packets, bytes) of counter i as a consistent pair: the
// bytes always correspond to exactly the packets.
func (c *CounterBank) Read(i int) (uint64, uint64) {
	if i < 0 || i >= len(c.ctrs) {
		return 0, 0
	}
	ctr := &c.ctrs[i]
	for {
		s1 := ctr.seq.Load()
		if s1&1 != 0 {
			continue // write in progress
		}
		p := ctr.packets.Load()
		b := ctr.bytes.Load()
		if ctr.seq.Load() == s1 {
			return p, b
		}
	}
}

// Reset zeroes counter i.
func (c *CounterBank) Reset(i int) {
	if i < 0 || i >= len(c.ctrs) {
		return
	}
	ctr := &c.ctrs[i]
	ctr.lock()
	ctr.packets.Store(0)
	ctr.bytes.Store(0)
	ctr.unlock()
}

// Register is a single stateful scratch register.
type Register struct {
	name string
	v    atomic.Uint64
}

// NewRegister creates a named register.
func NewRegister(name string) *Register { return &Register{name: name} }

// Load returns the current value.
func (r *Register) Load() uint64 { return r.v.Load() }

// Store sets the value.
func (r *Register) Store(v uint64) { r.v.Store(v) }

// Add atomically adds d and returns the new value.
func (r *Register) Add(d uint64) uint64 { return r.v.Add(d) }

// MeterBank is a bank of token-bucket meters (single-rate two-color).
// Buckets refill in simulated time supplied by the caller, so the meters
// stay deterministic.
type MeterBank struct {
	name string
	mu   sync.Mutex
	m    []meterState
}

type meterState struct {
	rateBps    float64 // token fill rate in bits/sec
	burstBits  float64 // bucket depth in bits
	tokens     float64
	lastNs     uint64
	configured bool
}

// NewMeterBank allocates n meters (unconfigured meters pass everything).
func NewMeterBank(name string, n int) *MeterBank {
	return &MeterBank{name: name, m: make([]meterState, n)}
}

// Len returns the number of meters.
func (b *MeterBank) Len() int { return len(b.m) }

// Configure sets meter i to rateBps with a burst of burstBits, starting
// with a full bucket.
func (b *MeterBank) Configure(i int, rateBps, burstBits float64) error {
	if i < 0 || i >= len(b.m) {
		return fmt.Errorf("ppe: meter index %d out of range [0,%d)", i, len(b.m))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[i] = meterState{rateBps: rateBps, burstBits: burstBits, tokens: burstBits, configured: true}
	return nil
}

// Conform charges a frame of n bytes at simulated time nowNs against
// meter i and reports whether it conforms (green) or exceeds (red).
// Unconfigured meters always conform.
func (b *MeterBank) Conform(i int, nowNs uint64, n int) bool {
	if i < 0 || i >= len(b.m) {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ms := &b.m[i]
	if !ms.configured {
		return true
	}
	if nowNs > ms.lastNs {
		ms.tokens += ms.rateBps * float64(nowNs-ms.lastNs) / 1e9
		if ms.tokens > ms.burstBits {
			ms.tokens = ms.burstBits
		}
		ms.lastNs = nowNs
	}
	bits := float64(n * 8)
	if ms.tokens >= bits {
		ms.tokens -= bits
		return true
	}
	return false
}

// State is the registry of an application instance's runtime objects,
// addressable by name from the embedded control plane.
type State struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	ternary  map[string]*TernaryTable
	counters map[string]*CounterBank
	meters   map[string]*MeterBank
	regs     map[string]*Register
}

// NewState returns an empty registry.
func NewState() *State {
	return &State{
		tables:   make(map[string]*Table),
		ternary:  make(map[string]*TernaryTable),
		counters: make(map[string]*CounterBank),
		meters:   make(map[string]*MeterBank),
		regs:     make(map[string]*Register),
	}
}

// AddTable creates, registers and returns an exact-match table.
func (s *State) AddTable(spec TableSpec) *Table {
	t := NewTable(spec)
	s.mu.Lock()
	s.tables[spec.Name] = t
	s.mu.Unlock()
	return t
}

// AddTernary creates, registers and returns a ternary table.
func (s *State) AddTernary(spec TableSpec) *TernaryTable {
	t := NewTernaryTable(spec)
	s.mu.Lock()
	s.ternary[spec.Name] = t
	s.mu.Unlock()
	return t
}

// AddCounters creates, registers and returns a counter bank.
func (s *State) AddCounters(name string, n int) *CounterBank {
	c := NewCounterBank(name, n)
	s.mu.Lock()
	s.counters[name] = c
	s.mu.Unlock()
	return c
}

// AddMeters creates, registers and returns a meter bank.
func (s *State) AddMeters(name string, n int) *MeterBank {
	m := NewMeterBank(name, n)
	s.mu.Lock()
	s.meters[name] = m
	s.mu.Unlock()
	return m
}

// AddRegister creates, registers and returns a register.
func (s *State) AddRegister(name string) *Register {
	r := NewRegister(name)
	s.mu.Lock()
	s.regs[name] = r
	s.mu.Unlock()
	return r
}

// Table looks up an exact-match table by name.
func (s *State) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// Ternary looks up a ternary table by name.
func (s *State) Ternary(name string) (*TernaryTable, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.ternary[name]
	return t, ok
}

// Counters looks up a counter bank by name.
func (s *State) Counters(name string) (*CounterBank, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.counters[name]
	return c, ok
}

// Meters looks up a meter bank by name.
func (s *State) Meters(name string) (*MeterBank, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.meters[name]
	return m, ok
}

// Register looks up a register by name.
func (s *State) Register(name string) (*Register, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.regs[name]
	return r, ok
}

// TableNames returns the registered exact-table names (sorted order is
// not guaranteed).
func (s *State) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for k := range s.tables {
		out = append(out, k)
	}
	return out
}
