package baseline

import (
	"sort"
	"testing"

	"flexsfp/internal/netsim"
)

func TestHostCPUCapacity(t *testing.T) {
	sim := netsim.New(1)
	h := NewHostCPU(sim, nil)
	// 550 ns/pkt uncontended ≈ 1.8 Mpps.
	if pps := h.CapacityPPS(); pps < 1.7e6 || pps > 1.9e6 {
		t.Errorf("capacity = %.0f pps", pps)
	}
	h.Contention = 0.5
	if pps := h.CapacityPPS(); pps > 1.0e6 {
		t.Errorf("contended capacity = %.0f pps, want halved", pps)
	}
}

func TestHostCPUProcessesAndJitters(t *testing.T) {
	sim := netsim.New(1)
	var lat []netsim.Duration
	h := NewHostCPU(sim, func(d []byte, l netsim.Duration) { lat = append(lat, l) })
	for i := 0; i < 1000; i++ {
		i := i
		sim.Schedule(netsim.Duration(i)*netsim.Microsecond, func() {
			h.Submit(make([]byte, 64))
		})
	}
	sim.Run()
	if len(lat) != 1000 {
		t.Fatalf("processed %d", len(lat))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[500], lat[990]
	if p50 < 500 || p50 > 900 {
		t.Errorf("p50 = %v", p50)
	}
	// The exponential tail must show: p99 well above p50.
	if p99 < p50+p50/2 {
		t.Errorf("p99 = %v vs p50 = %v: no jitter tail", p99, p50)
	}
}

func TestHostCPUOverloadDrops(t *testing.T) {
	sim := netsim.New(1)
	h := NewHostCPU(sim, nil)
	h.QueueLimit = 8
	// Offer 10 Mpps (100 ns spacing) against ~1.8 Mpps capacity.
	n := 0
	sim.Every(100, func() bool {
		h.Submit(make([]byte, 64))
		n++
		return n < 10000
	})
	sim.Run()
	if h.Drops == 0 {
		t.Error("no drops at 5x overload")
	}
	accepted := float64(h.InFrames) / float64(n)
	if accepted > 0.4 {
		t.Errorf("accepted %.0f%% at 5x overload", accepted*100)
	}
}

func TestHostCPUContentionHurtsLatency(t *testing.T) {
	run := func(contention float64) netsim.Duration {
		sim := netsim.New(1)
		var total netsim.Duration
		var count int
		h := NewHostCPU(sim, func(d []byte, l netsim.Duration) { total += l; count++ })
		h.Contention = contention
		h.JitterFrac = 0
		for i := 0; i < 100; i++ {
			i := i
			sim.Schedule(netsim.Duration(i)*10*netsim.Microsecond, func() {
				h.Submit(make([]byte, 64))
			})
		}
		sim.Run()
		return total / netsim.Duration(count)
	}
	if run(0.6) <= run(0) {
		t.Error("contention did not increase latency")
	}
}

func TestSmartNICFixedLatency(t *testing.T) {
	sim := netsim.New(1)
	var lat []netsim.Duration
	s := NewSmartNIC(sim, func(d []byte, l netsim.Duration) { lat = append(lat, l) })
	for i := 0; i < 100; i++ {
		i := i
		sim.Schedule(netsim.Duration(i)*netsim.Microsecond, func() {
			s.Submit(make([]byte, 64))
		})
	}
	sim.Run()
	if len(lat) != 100 {
		t.Fatalf("processed %d", len(lat))
	}
	for _, l := range lat {
		if l < s.Latency || l > s.Latency+netsim.Microsecond {
			t.Fatalf("latency = %v, want ≈%v", l, s.Latency)
		}
	}
}

func TestAccelerationGapShape(t *testing.T) {
	// The §2 gap: the SmartNIC has ~100x the power and ~10x the cost of
	// the FlexSFP-class function, while the host CPU has the worst
	// latency tail. Verify the static claims the models encode.
	sim := netsim.New(1)
	h := NewHostCPU(sim, nil)
	s := NewSmartNIC(sim, nil)
	if s.PowerW() < 20*1.5 { // FlexSFP ≈1.5 W
		t.Errorf("SmartNIC power %v W not >> FlexSFP class", s.PowerW())
	}
	if s.CostUSD() < 3*300 {
		t.Errorf("SmartNIC cost %v not >> FlexSFP class", s.CostUSD())
	}
	if h.PowerW() < 10 {
		t.Errorf("host core power %v unrealistically low", h.PowerW())
	}
}
