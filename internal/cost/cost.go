// Package cost implements the §5.2 cost analysis: the FlexSFP prototype
// bill of materials and the ideal-scaling normalization of Sadok et al.
// [39] that puts heterogeneous accelerators on a common $-per-10G and
// W-per-10G basis (Table 3).
package cost

// BOMItem is one line of the prototype cost breakdown.
type BOMItem struct {
	Name    string
	LowUSD  float64
	HighUSD float64
}

// FlexSFPBOM returns the §5.2 breakdown: the MPF200T at volume pricing,
// a commodity 10GBASE-SR optical subassembly, and the remaining
// components and manufacturing conservatively banded.
func FlexSFPBOM() []BOMItem {
	return []BOMItem{
		{"MPF200T-FCSG325E FPGA (1k-unit)", 200, 200},
		{"10GBASE-SR optics (OEM, volume)", 8, 12},
		{"Laser driver, regulators, oscillator, SPI flash", 20, 40},
		{"6-layer PCB, reflow, inspection, test", 30, 60},
	}
}

// BOMTotal sums a BOM into its low/high band.
func BOMTotal(bom []BOMItem) (low, high float64) {
	for _, it := range bom {
		low += it.LowUSD
		high += it.HighUSD
	}
	return low, high
}

// ProductionCostBand returns the paper's volume estimate: "a direct
// production cost around $300 per unit, with potential reductions toward
// $250 as volume increases".
func ProductionCostBand() (low, high float64) { return 250, 300 }

// Solution is one row of Table 3.
type Solution struct {
	Name string
	// Published raw figures (the paper's table).
	RawCostLowUSD, RawCostHighUSD float64
	RawPowerW                     float64
	// AggGbps is the aggregate bandwidth used for ideal scaling (the
	// device basis for the class).
	AggGbps float64
	// Published per-10G values, as printed in the paper.
	PubPer10GCostLow, PubPer10GCostHigh float64
	PubPer10GPowerW                     float64
}

// Per10GCost applies the ideal-scaling rule to the cost band.
func (s Solution) Per10GCost() (low, high float64) {
	slices := s.AggGbps / 10
	return s.RawCostLowUSD / slices, s.RawCostHighUSD / slices
}

// Per10GPower applies the ideal-scaling rule to power.
func (s Solution) Per10GPower() float64 {
	return s.RawPowerW / (s.AggGbps / 10)
}

// Table3 returns the four solution classes with the paper's published
// figures. Aggregate rates are the class-representative devices: BF-2 at
// 2×25G, Agilio/DSC-class at 2×40G, Alveo U25/U50 around 2×50G, FlexSFP
// at 10G. (The paper's own per-10G power for the many-core class uses a
// 50G basis; we keep one basis per class and surface both published and
// computed values so the discrepancy is visible rather than hidden.)
func Table3() []Solution {
	return []Solution{
		{
			Name:          "DPU (BF-2)",
			RawCostLowUSD: 1500, RawCostHighUSD: 2000,
			RawPowerW: 75, AggGbps: 50,
			PubPer10GCostLow: 300, PubPer10GCostHigh: 400, PubPer10GPowerW: 15,
		},
		{
			Name:          "Many-core (Ag./DSC)",
			RawCostLowUSD: 800, RawCostHighUSD: 1200,
			RawPowerW: 25, AggGbps: 80,
			PubPer10GCostLow: 100, PubPer10GCostHigh: 150, PubPer10GPowerW: 5,
		},
		{
			Name:          "FPGA (U25/U50)",
			RawCostLowUSD: 2000, RawCostHighUSD: 4000,
			RawPowerW: 60, AggGbps: 100,
			PubPer10GCostLow: 200, PubPer10GCostHigh: 400, PubPer10GPowerW: 8.5,
		},
		{
			Name:          "FlexSFP",
			RawCostLowUSD: 250, RawCostHighUSD: 300,
			RawPowerW: 1.5, AggGbps: 10,
			PubPer10GCostLow: 250, PubPer10GCostHigh: 300, PubPer10GPowerW: 1.5,
		},
	}
}

// Claims verifies the two headline §5.2 conclusions over a Table 3 row
// set: FlexSFP saves roughly two-thirds of raw CAPEX versus a DPU and
// cuts per-10G power by an order of magnitude versus every SmartNIC
// class.
type Claims struct {
	CAPEXSavingVsDPU float64 // fraction of raw DPU cost saved
	PowerRatioVsBest float64 // best (lowest) SmartNIC W/10G over FlexSFP W/10G
}

// EvaluateClaims computes the headline numbers from the table.
func EvaluateClaims(rows []Solution) Claims {
	var flex, dpu Solution
	bestW := 0.0
	for _, r := range rows {
		switch r.Name {
		case "FlexSFP":
			flex = r
		case "DPU (BF-2)":
			dpu = r
		}
		if r.Name != "FlexSFP" {
			w := r.Per10GPower()
			if bestW == 0 || w < bestW {
				bestW = w
			}
		}
	}
	flexMid := (flex.RawCostLowUSD + flex.RawCostHighUSD) / 2
	dpuMid := (dpu.RawCostLowUSD + dpu.RawCostHighUSD) / 2
	return Claims{
		CAPEXSavingVsDPU: 1 - flexMid/dpuMid,
		PowerRatioVsBest: bestW / flex.Per10GPower(),
	}
}
