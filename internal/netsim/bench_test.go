package netsim

import (
	"fmt"
	"testing"
)

// BenchmarkScheduleFire measures the steady-state event loop: one event in
// flight at a time, each firing schedules the next (the pattern of the
// trafficgen emit loop and the PPE verdict path). With the event free-list
// this runs allocation-free after warm-up.
func BenchmarkScheduleFire(b *testing.B) {
	sim := New(1)
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.ScheduleDetached(10, tick)
		}
	}
	sim.ScheduleDetached(10, tick)
	b.ResetTimer()
	sim.Run()
}

// BenchmarkScheduleBurst measures heap behavior with a deep pending queue:
// 1024 events scheduled at once, then drained.
func BenchmarkScheduleBurst(b *testing.B) {
	sim := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			sim.ScheduleDetached(Duration(j%64), fn)
		}
		sim.Run()
	}
}

// BenchmarkScheduleHandle measures the handle-returning Schedule path
// (cancelable events are never pooled).
func BenchmarkScheduleHandle(b *testing.B) {
	sim := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(1, fn)
		sim.Run()
	}
}

// BenchmarkSchedule isolates the 4-ary heap push: b.N events scheduled
// at pseudo-random offsets into an ever-deepening heap, drained outside
// the timed region. Sift-up cost dominates.
func BenchmarkSchedule(b *testing.B) {
	sim := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ScheduleDetached(Duration(i*2654435761%4096), fn)
	}
	b.StopTimer()
	sim.Run()
}

// BenchmarkStep isolates the 4-ary heap pop: a 4096-event heap stepped
// one event at a time (Step pays sift-down over four-way children; the
// shallow tree is the point of the arity bump).
func BenchmarkStep(b *testing.B) {
	sim := New(1)
	fn := func() {}
	fill := func() {
		for j := 0; j < 4096; j++ {
			sim.ScheduleDetached(Duration(j*2654435761%4096), fn)
		}
	}
	fill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sim.Step() {
			b.StopTimer()
			fill()
			b.StartTimer()
		}
	}
	b.StopTimer()
	sim.Run()
}

// BenchmarkShardedRing measures the parallel core end to end: a 4-shard
// token ring where every hop crosses a portal (worst case for the
// window synchronizer — lookahead bounds every window and all frames
// are cross-shard).
func BenchmarkShardedRing(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh := NewSharded(1, shards)
			const nodes = 4
			ports := make([]*Portal, nodes)
			var hops int
			for i := 0; i < nodes; i++ {
				i := i
				next := (i + 1) % nodes
				ports[i] = sh.Connect(sh.ShardFor(i), sh.ShardFor(next), 100, func(data []byte) {
					hops++
					if hops < b.N {
						ports[next].Send(data)
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			ports[0].Send([]byte{1})
			sh.Run()
		})
	}
}
