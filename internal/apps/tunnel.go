package apps

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// Tunnel modes.
const (
	TunnelGRE   = "gre"
	TunnelVXLAN = "vxlan"
	TunnelIPIP  = "ipip"
)

// TunnelConfig configures encapsulation: frames from the edge are wrapped
// toward the optical side; matching tunnel traffic from the optical side
// is unwrapped ("insert tunneling headers for GRE, VXLAN, or IP-in-IP
// without involving the host", §3).
type TunnelConfig struct {
	Mode     string `json:"mode"`
	LocalIP  string `json:"local_ip"`
	RemoteIP string `json:"remote_ip"`
	LocalMAC string `json:"local_mac"`
	// GatewayMAC is the next hop toward the tunnel remote.
	GatewayMAC string `json:"gateway_mac"`
	VNI        uint32 `json:"vni,omitempty"` // VXLAN
	GREKey     uint32 `json:"gre_key,omitempty"`
	TTL        uint8  `json:"ttl,omitempty"`
	// MTU bounds the encapsulated frame (outer packets carry DF); frames
	// that would exceed it are dropped and counted. Default 1518.
	MTU int `json:"mtu,omitempty"`
}

// Tunnel counter indexes (bank "tunnel").
const (
	TunnelEncapped = iota
	TunnelDecapped
	TunnelPassed
	TunnelErrors
	TunnelTooBig
	tunnelCounters
)

type tunnelApp struct {
	prog  *ppe.Program
	state *ppe.State
	ctr   *ppe.CounterBank

	mode            string
	local, remote   netip.Addr
	localMAC, gwMAC packet.MAC
	vni, greKey     uint32
	ttl             uint8
	mtu             int
	buf             *packet.SerializeBuffer
	v               packet.View
}

// NewTunnel builds a tunnel endpoint instance.
func NewTunnel() *tunnelApp {
	a := &tunnelApp{state: ppe.NewState(), buf: packet.NewSerializeBuffer()}
	a.ctr = a.state.AddCounters("tunnel", tunnelCounters)
	a.prog = &ppe.Program{
		Name:        "tunnel",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeUDP},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionPush, Bytes: 50}, // worst case: VXLAN outer stack
			{Kind: ppe.ActionPop, Bytes: 50},
			{Kind: ppe.ActionChecksum},
			{Kind: ppe.ActionHash, Bits: 16}, // source-port entropy
			{Kind: ppe.ActionCounterBank, Count: tunnelCounters},
		},
		Stages:  3,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *tunnelApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *tunnelApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *tunnelApp) Configure(config []byte) error {
	var cfg TunnelConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("tunnel: %w", err)
	}
	switch cfg.Mode {
	case TunnelGRE, TunnelVXLAN, TunnelIPIP:
	default:
		return fmt.Errorf("tunnel: unknown mode %q", cfg.Mode)
	}
	local, err := netip.ParseAddr(cfg.LocalIP)
	if err != nil {
		return fmt.Errorf("tunnel local: %w", err)
	}
	remote, err := netip.ParseAddr(cfg.RemoteIP)
	if err != nil {
		return fmt.Errorf("tunnel remote: %w", err)
	}
	if !local.Is4() || !remote.Is4() {
		return fmt.Errorf("tunnel: IPv4 endpoints required")
	}
	lmac, err := packet.ParseMAC(cfg.LocalMAC)
	if err != nil {
		return fmt.Errorf("tunnel local MAC: %w", err)
	}
	gmac, err := packet.ParseMAC(cfg.GatewayMAC)
	if err != nil {
		return fmt.Errorf("tunnel gateway MAC: %w", err)
	}
	a.mode, a.local, a.remote = cfg.Mode, local, remote
	a.localMAC, a.gwMAC = lmac, gmac
	a.vni, a.greKey = cfg.VNI, cfg.GREKey
	a.ttl = cfg.TTL
	if a.ttl == 0 {
		a.ttl = 64
	}
	a.mtu = cfg.MTU
	if a.mtu == 0 {
		a.mtu = 1518
	}
	return nil
}

func (a *tunnelApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if a.mode == "" {
		return ppe.VerdictPass
	}
	switch ctx.Dir {
	case ppe.DirEdgeToOptical:
		out, err := a.encap(ctx.Data)
		if err != nil {
			a.ctr.Inc(TunnelErrors, len(ctx.Data))
			return ppe.VerdictDrop
		}
		if len(out) > a.mtu {
			// The outer header would push the frame past the egress MTU;
			// outer packets carry DF, so the hardware drops (an ICMP
			// too-big would be the control plane's job).
			a.ctr.Inc(TunnelTooBig, len(ctx.Data))
			return ppe.VerdictDrop
		}
		ctx.Data = out
		a.ctr.Inc(TunnelEncapped, len(out))
	case ppe.DirOpticalToEdge:
		out, ok := a.decap(ctx.Data)
		if !ok {
			a.ctr.Inc(TunnelPassed, len(ctx.Data))
			return ppe.VerdictPass
		}
		ctx.Data = out
		a.ctr.Inc(TunnelDecapped, len(out))
	}
	return ppe.VerdictPass
}

func (a *tunnelApp) encap(data []byte) ([]byte, error) {
	outerEth := &packet.Ethernet{SrcMAC: a.localMAC, DstMAC: a.gwMAC, EtherType: packet.EtherTypeIPv4}
	outerIP := &packet.IPv4{TTL: a.ttl, SrcIP: a.local, DstIP: a.remote, DontFrag: true}
	var layers []packet.SerializableLayer

	switch a.mode {
	case TunnelGRE:
		outerIP.Protocol = packet.IPProtocolGRE
		gre := &packet.GRE{Protocol: packet.EtherTypeTransparentEthernet}
		if a.greKey != 0 {
			gre.KeyPresent = true
			gre.Key = a.greKey
		}
		inner := packet.Payload(data)
		layers = []packet.SerializableLayer{outerEth, outerIP, gre, &inner}
	case TunnelVXLAN:
		outerIP.Protocol = packet.IPProtocolUDP
		// Source-port entropy from the inner frame keeps ECMP balanced.
		sport := uint16(49152 + packet.FNV64(data[:min(34, len(data))])%16384)
		udp := &packet.UDP{SrcPort: sport, DstPort: packet.PortVXLAN}
		if err := udp.SetNetworkLayerForChecksum(a.local, a.remote); err != nil {
			return nil, err
		}
		vx := &packet.VXLAN{VNI: a.vni}
		inner := packet.Payload(data)
		layers = []packet.SerializableLayer{outerEth, outerIP, udp, vx, &inner}
	case TunnelIPIP:
		// IP-in-IP carries the inner IP packet only.
		var v packet.View
		if !v.Parse(data) || !v.IsIPv4 {
			return nil, fmt.Errorf("ipip: inner frame is not IPv4")
		}
		outerIP.Protocol = packet.IPProtocolIPv4
		inner := packet.Payload(data[v.L3Off:])
		layers = []packet.SerializableLayer{outerEth, outerIP, &inner}
	}

	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(a.buf, opts, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, a.buf.Len())
	copy(out, a.buf.Bytes())
	return out, nil
}

// decap strips the tunnel header when the outer packet is addressed to
// this endpoint and matches the configured mode.
func (a *tunnelApp) decap(data []byte) ([]byte, bool) {
	if !a.v.Parse(data) || !a.v.IsIPv4 {
		return nil, false
	}
	v := &a.v
	l4 := v.L3Off + v.IPv4HeaderLen()
	local4 := a.local.As4()
	if [4]byte(v.DstIPv4()) != local4 {
		return nil, false
	}
	switch {
	case a.mode == TunnelGRE && v.Proto == packet.IPProtocolGRE:
		var gre packet.GRE
		if gre.DecodeFromBytes(data[l4:]) != nil ||
			gre.Protocol != packet.EtherTypeTransparentEthernet {
			return nil, false
		}
		return append([]byte(nil), gre.LayerPayload()...), true
	case a.mode == TunnelVXLAN && v.Proto == packet.IPProtocolUDP && v.DstPort == packet.PortVXLAN:
		if len(data) < l4+16 {
			return nil, false
		}
		var vx packet.VXLAN
		if vx.DecodeFromBytes(data[l4+8:]) != nil || vx.VNI != a.vni {
			return nil, false
		}
		return append([]byte(nil), vx.LayerPayload()...), true
	case a.mode == TunnelIPIP && v.Proto == packet.IPProtocolIPv4:
		// Re-wrap the inner IP packet in an Ethernet frame toward the
		// edge host.
		innerEth := &packet.Ethernet{SrcMAC: a.localMAC, DstMAC: a.gwMAC, EtherType: packet.EtherTypeIPv4}
		inner := packet.Payload(data[l4:])
		opts := packet.SerializeOptions{}
		if err := packet.SerializeLayers(a.buf, opts, innerEth, &inner); err != nil {
			return nil, false
		}
		out := make([]byte, a.buf.Len())
		copy(out, a.buf.Bytes())
		return out, true
	}
	return nil, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
