// Package flexsfp is the public facade of the FlexSFP reproduction: a
// programmable SFP+ transceiver model (HotNets '25, "FlexSFP: Rethinking
// Network Intelligence Inside the Cable") with its FPGA resource/power/
// cost models, the three architecture shells, an XDP-like programming
// model, a use-case application catalog, an embedded control plane, and
// an experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	sim := flexsfp.NewSim(1)
//	mod, design, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
//	    Name: "sfp-0", Shell: flexsfp.TwoWayCore, App: "nat",
//	    Config: apps.NATConfig{Mappings: []apps.NATMapping{
//	        {Internal: "192.168.1.10", External: "203.0.113.10"},
//	    }},
//	})
//
// The experiment harness lives in internal/exp: every table and figure
// is a registered internal/exp.Experiment, enumerated and run uniformly
// by cmd/flexsfp-bench (-list, -run). See examples/ for complete
// scenarios and EXPERIMENTS.md for the paper-versus-model results.
package flexsfp

import (
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
)

// Re-exported architecture shells (§4.1, Figure 1).
const (
	OneWayFilter = hls.OneWayFilter
	TwoWayCore   = hls.TwoWayCore
	ActiveCore   = hls.ActiveCore
)

// Baseline operating point of the prototype (§5.1).
const (
	BaseClockHz      = build.BaseClockHz
	BaseDatapathBits = build.BaseDatapathBits
)

// NewSim creates a deterministic simulation world.
func NewSim(seed int64) *netsim.Simulator { return build.NewSim(seed) }

// ModuleSpec describes a module to build and boot in one call.
type ModuleSpec = build.ModuleSpec

// DefaultAuthKey is the development fleet key used when none is given.
var DefaultAuthKey = build.DefaultAuthKey

// BuildModule compiles the app, provisions a module with the bitstream in
// flash slot 1, and boots it. It returns the running module and the
// implementation report.
func BuildModule(sim *netsim.Simulator, spec ModuleSpec) (*core.Module, *hls.Design, error) {
	return build.Module(sim, spec)
}
