package opt

import "flexsfp/internal/xdp"

// ScheduleCycles packs the program onto an hXDP-style VLIW soft core
// with `width` parallel issue lanes and returns the schedule length in
// cycles — the per-packet occupancy a sequential core needs for the
// program, and therefore the value the optimizer writes into
// ppe.Program.ProgCycles. The unpacked scalar core retires one
// instruction per cycle (len(insns) cycles); packing fills each cycle's
// issue slots, so the schedule approaches ceil(len/width) for
// dependency-light programs.
//
// The greedy in-order packing keeps the hardware's semantics simple:
// all lanes of a bundle read registers before any lane writes, so an
// instruction joins the current bundle unless
//
//   - the bundle is full (width instructions),
//   - it reads a register the bundle writes (RAW),
//   - it writes a register the bundle writes (WAW — lanes commit
//     unordered),
//   - it touches packet memory after the bundle touched packet memory
//     with at least one store (single checked-access port per cycle for
//     mutation ordering; read-after-read shares the cycle),
//   - it is a basic-block leader (a jump target must begin a bundle so
//     control transfers land on cycle boundaries).
//
// WAR is allowed (reads happen first), and a jump or exit seals its
// bundle — the core resolves control at the cycle edge.
func ScheduleCycles(p *xdp.Program, width int) int {
	return scheduleCycles(p.Insns, width)
}

func scheduleCycles(insns []xdp.Insn, width int) int {
	if width < 1 {
		width = 1
	}
	leaders := blockLeaders(insns)
	cycles := 0
	lane := 0
	var defs uint16
	var hasStore, hasLoad bool
	flush := func() {
		lane = 0
		defs = 0
		hasStore = false
		hasLoad = false
	}
	for i, in := range insns {
		uses, writes := insnUses(in), insnDef(in)
		memConflict := (isStore(in.Op) && (hasLoad || hasStore)) ||
			(isLoad(in.Op) && hasStore)
		if lane == 0 || lane >= width || (leaders[i] && lane > 0) ||
			uses&defs != 0 || writes&defs != 0 || memConflict {
			cycles++
			flush()
		}
		lane++
		defs |= writes
		hasLoad = hasLoad || isLoad(in.Op)
		hasStore = hasStore || isStore(in.Op)
		if isJump(in.Op) || in.Op == xdp.OpExit {
			flush()
		}
	}
	return cycles
}
