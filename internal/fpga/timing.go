package fpga

import "math"

// Timing model: a well-pipelined design closes timing at the device's
// MaxClockMHz ceiling, derated by two effects that dominate in practice:
//
//   - routing congestion, which grows with fabric utilization — modeled as
//     a linear derate of up to 35% at full utilization;
//   - datapath width, which deepens muxing/fanout — modeled as a 5% derate
//     per doubling beyond a 64-bit baseline.
//
// The constants are chosen so the paper's operating points hold: the NAT
// design (16% utilization, 64-bit datapath) closes 156.25 MHz with a wide
// margin, and a Two-Way-Core needing 312.5 MHz remains feasible, matching
// §5.3's "modestly increasing the PPE clock".
const (
	congestionDerate   = 0.35
	widthDeratePerOct  = 0.05
	baselineWidthBits  = 64
	minAchievableRatio = 0.25 // floor: heavily congested designs still run
)

// AchievableClockMHz estimates the maximum clock for a design with the
// given peak utilization (0..1) and datapath width on device d.
func (d Device) AchievableClockMHz(peakUtilization float64, datapathBits int) float64 {
	if peakUtilization < 0 {
		peakUtilization = 0
	}
	if peakUtilization > 1 {
		peakUtilization = 1
	}
	if datapathBits < baselineWidthBits {
		datapathBits = baselineWidthBits
	}
	derate := 1 - congestionDerate*peakUtilization
	oct := math.Log2(float64(datapathBits) / baselineWidthBits)
	derate *= 1 - widthDeratePerOct*oct
	if derate < minAchievableRatio {
		derate = minAchievableRatio
	}
	return d.MaxClockMHz * derate
}

// ClockFeasible reports whether the design can be clocked at requiredMHz.
func (d Device) ClockFeasible(requiredMHz, peakUtilization float64, datapathBits int) bool {
	return d.AchievableClockMHz(peakUtilization, datapathBits) >= requiredMHz
}
