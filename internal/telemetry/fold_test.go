package telemetry

import (
	"fmt"
	"reflect"
	"testing"
)

// memberSnap fabricates the snapshot a lightweight fleet member would
// report: a couple of counters, a gauge, and one fixed-bucket histogram.
func memberSnap(i int) Snapshot {
	return Snapshot{
		Counters: []CounterSnap{
			{Name: "fleet.pushes", Value: uint64(i%3 + 1)},
			{Name: "fleet.retries", Value: uint64(i % 2)},
		},
		Gauges: []GaugeSnap{{Name: "fleet.occupancy", Value: float64(i % 5)}},
		Histograms: []HistogramSnap{{
			Name: "fleet.push_ns", Count: 2, Sum: uint64(100 + i),
			Min: uint64(10 + i%7), Max: uint64(90 + i),
			Buckets: []BucketSnap{
				{UpperBound: 50, Count: 1},
				{UpperBound: 500, Count: 1},
				{Overflow: true, Count: 0},
			},
		}},
		TraceSeen:    uint64(i),
		TraceSampled: 1,
	}
}

func TestFoldMatchesFlatAggregation(t *testing.T) {
	const members, shards = 1000, 8

	// Flat: every member folded into one fold.
	flat := NewFold()
	for i := 0; i < members; i++ {
		flat.Add(memberSnap(i))
	}

	// Hierarchical: members pre-folded per shard, global merge over folds.
	folds := make([]*Fold, shards)
	for s := range folds {
		folds[s] = NewFold()
	}
	for i := 0; i < members; i++ {
		folds[i%shards].Add(memberSnap(i))
	}
	global := NewFold()
	for _, f := range folds {
		global.Merge(f)
	}

	if got, want := global.Snapshot(), flat.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("hierarchical fold diverged from flat fold:\n got %+v\nwant %+v", got, want)
	}
	snaps, merges := global.Folded()
	if snaps != members {
		t.Errorf("snaps folded = %d, want %d", snaps, members)
	}
	if merges != shards {
		t.Errorf("global merges = %d, want %d (one per shard fold)", merges, shards)
	}
}

func TestFoldSnapshotDeterministicAcrossOrder(t *testing.T) {
	a, b := NewFold(), NewFold()
	for i := 0; i < 64; i++ {
		a.Add(memberSnap(i))
	}
	for i := 63; i >= 0; i-- {
		b.Add(memberSnap(i))
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("fold snapshot depends on insertion order")
	}
}

func TestFoldFromRegistrySnapshots(t *testing.T) {
	mk := func(n uint64) Snapshot {
		r := New()
		c := r.Counter("x.frames")
		h := r.Histogram("x.lat", []uint64{10, 100})
		for i := uint64(0); i < n; i++ {
			c.Inc()
			h.Observe(i * 7)
		}
		return r.Snapshot()
	}
	f := NewFold()
	f.Add(mk(3))
	f.Add(mk(5))
	s := f.Snapshot()
	if v, ok := s.Counter("x.frames"); !ok || v != 8 {
		t.Fatalf("x.frames = %d, %v; want 8, true", v, ok)
	}
	h, ok := s.Histogram("x.lat")
	if !ok || h.Count != 8 {
		t.Fatalf("x.lat count = %d, %v; want 8", h.Count, ok)
	}
	if h.Min != 0 || h.Max != 28 {
		t.Errorf("x.lat min/max = %d/%d, want 0/28", h.Min, h.Max)
	}
	if len(h.Buckets) != 3 {
		t.Fatalf("x.lat buckets = %d, want 3", len(h.Buckets))
	}
}

func TestFoldMismatchedBoundsDropsBuckets(t *testing.T) {
	f := NewFold()
	f.Add(Snapshot{Histograms: []HistogramSnap{{
		Name: "h", Count: 1, Sum: 5, Min: 5, Max: 5,
		Buckets: []BucketSnap{{UpperBound: 10, Count: 1}, {Overflow: true}},
	}}})
	f.Add(Snapshot{Histograms: []HistogramSnap{{
		Name: "h", Count: 1, Sum: 50, Min: 50, Max: 50,
		Buckets: []BucketSnap{{UpperBound: 99, Count: 1}, {Overflow: true}},
	}}})
	h, _ := f.Snapshot().Histogram("h")
	if len(h.Buckets) != 0 {
		t.Errorf("mismatched bounds should drop buckets, got %v", h.Buckets)
	}
	if h.Count != 2 || h.Sum != 55 || h.Min != 5 || h.Max != 50 {
		t.Errorf("scalar merge wrong: %+v", h)
	}
}

func TestFoldEmptyHistogramKeepsZeroMin(t *testing.T) {
	f := NewFold()
	f.Add(Snapshot{Histograms: []HistogramSnap{{
		Name:    "h",
		Buckets: []BucketSnap{{UpperBound: 10}, {Overflow: true}},
	}}})
	f.Add(Snapshot{Histograms: []HistogramSnap{{
		Name: "h", Count: 1, Sum: 7, Min: 7, Max: 7,
		Buckets: []BucketSnap{{UpperBound: 10, Count: 1}, {Overflow: true}},
	}}})
	h, _ := f.Snapshot().Histogram("h")
	if h.Min != 7 || h.Max != 7 {
		t.Errorf("empty histogram skewed min/max: %+v", h)
	}
}

// BenchmarkGlobalMerge measures the global layer alone: merging W
// pre-built shard folds. The per-shard folds stand in for the same
// 100k-member fleet at every W, so the benchmark demonstrates the
// hierarchical design's contract — global merge cost scales with shard
// count, never with module count.
func BenchmarkGlobalMerge(b *testing.B) {
	const members = 100_000
	for _, shards := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			folds := make([]*Fold, shards)
			per := members / shards
			for s := range folds {
				folds[s] = NewFold()
				for i := 0; i < per; i++ {
					folds[s].Add(memberSnap(s*per + i))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := NewFold()
				for _, f := range folds {
					g.Merge(f)
				}
			}
		})
	}
}

// BenchmarkShardFold is the contrasting shard layer: folding the member
// snapshots themselves, whose cost does scale with member count.
func BenchmarkShardFold(b *testing.B) {
	for _, members := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			snaps := make([]Snapshot, members)
			for i := range snaps {
				snaps[i] = memberSnap(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := NewFold()
				for _, s := range snaps {
					f.Add(s)
				}
			}
		})
	}
}
