// Package phy models transceiver physics: 10GBASE-R line coding and
// framing arithmetic (the identities behind every line-rate claim in the
// paper), the optical power budget of the fiber link, and SFF-8472-style
// digital diagnostics (DDM) — the interface through which a FlexSFP can
// expose "wire-level" fault visibility (§3, §5.3).
package phy

// 10GBASE-R constants.
const (
	// LineRateBaud is the serial signalling rate: 10.3125 GBd.
	LineRateBaud = 10_312_500_000
	// Coding64b66bEfficiency is the 64b/66b line-code efficiency.
	Coding64b66bEfficiency = 64.0 / 66.0
	// DataRateBps is the post-decode data rate: exactly 10 Gb/s.
	DataRateBps = 10_000_000_000
	// FrameOverheadBytes is the per-frame wire overhead:
	// 7 preamble + 1 SFD + 12 inter-frame gap.
	FrameOverheadBytes = 20
	// MinFrameBytes / MaxFrameBytes bound standard Ethernet frames
	// (without FCS in this model's accounting — the 64-byte minimum
	// already includes it on the wire, so sizes here are wire sizes).
	MinFrameBytes = 64
	MaxFrameBytes = 1518
)

// DataRateFromBaud returns the usable data rate for a given baud rate
// under 64b/66b coding. For the standard 10.3125 GBd it returns exactly
// 10 Gb/s.
func DataRateFromBaud(baud float64) float64 {
	return baud * Coding64b66bEfficiency
}

// LineRatePPS returns the maximum packet rate at dataRateBps for frames
// of frameBytes (wire size incl. FCS, excl. preamble/IFG). For 64-byte
// frames at 10 Gb/s this is the canonical 14.88 Mpps.
func LineRatePPS(dataRateBps int64, frameBytes int) float64 {
	wireBits := float64(frameBytes+FrameOverheadBytes) * 8
	return float64(dataRateBps) / wireBits
}

// GoodputBps returns the frame-payload bit rate at line rate for frames
// of frameBytes (i.e. excluding preamble/IFG overhead).
func GoodputBps(dataRateBps int64, frameBytes int) float64 {
	return LineRatePPS(dataRateBps, frameBytes) * float64(frameBytes) * 8
}

// WireEfficiency returns the fraction of the data rate carrying frame
// bytes for a given frame size.
func WireEfficiency(frameBytes int) float64 {
	return float64(frameBytes) / float64(frameBytes+FrameOverheadBytes)
}

// RequiredClockHz returns the minimum PPE clock that sustains line rate
// for minimum-size frames, given the engine's per-frame cycle cost
// model (ceil(bytes/word)+1 cycles): the arithmetic behind "the design
// has been clocked at 156.25 MHz with a 64 b datapath, sufficient for
// line-rate" (§5.1).
func RequiredClockHz(dataRateBps int64, datapathBits int, directions int) float64 {
	wordBytes := datapathBits / 8
	cycles := float64((MinFrameBytes+wordBytes-1)/wordBytes + 1)
	pps := LineRatePPS(dataRateBps, MinFrameBytes) * float64(directions)
	return pps * cycles
}
