package flash

import (
	"errors"
	"fmt"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/netsim"
)

// Slot layout: the 16 MiB array is divided into NumSlots fixed regions.
// Slot 0 conventionally holds the golden (factory fallback) image; the
// boot FSM refuses to overwrite a slot whose stored image carries the
// golden flag.
const (
	NumSlots = 4
	SlotSize = SizeBytes / NumSlots
)

// Slot errors.
var (
	ErrBadSlot      = errors.New("flash: slot index out of range")
	ErrSlotTooSmall = errors.New("flash: bitstream exceeds slot size")
	ErrGoldenLocked = errors.New("flash: slot holds the golden image")
	ErrSlotEmpty    = errors.New("flash: slot holds no valid bitstream")
)

// SlotAddr returns the base address of slot i.
func SlotAddr(i int) (int, error) {
	if i < 0 || i >= NumSlots {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, i)
	}
	return i * SlotSize, nil
}

// StoreBitstream writes an encoded bitstream into slot i, respecting the
// golden lock, and returns the flash operation time.
func (d *Device) StoreBitstream(i int, encoded []byte) (netsim.Duration, error) {
	addr, err := SlotAddr(i)
	if err != nil {
		return 0, err
	}
	if len(encoded) > SlotSize {
		return 0, fmt.Errorf("%w: %d > %d", ErrSlotTooSmall, len(encoded), SlotSize)
	}
	if cur, _, lerr := d.LoadBitstream(i); lerr == nil && cur.Golden() {
		return 0, fmt.Errorf("%w: slot %d", ErrGoldenLocked, i)
	}
	return d.WriteBlob(addr, encoded)
}

// LoadBitstream reads and validates the bitstream in slot i, returning it
// along with the read time.
//
// Only the occupied bytes are transferred: the header is peeked first to
// learn the encoded length, then exactly that many bytes are read. A slot
// whose header is invalid (empty or corrupted) is still charged the
// conservative full-slot scan time the old firmware paid, so boot-path
// timings are unchanged in every case.
func (d *Device) LoadBitstream(i int) (*bitstream.Bitstream, netsim.Duration, error) {
	addr, err := SlotAddr(i)
	if err != nil {
		return nil, 0, err
	}
	var hdr [bitstream.HeaderSize]byte
	d.readInto(hdr[:], addr, len(hdr))
	// Read at least enough for Decode to reach the same verdict it would
	// reach on the full slot (magic/version/length checks need the header
	// plus trailer; a valid header clamped to the slot still yields the
	// same ErrTooShort).
	n := bitstream.HeaderSize + bitstream.CRCSize
	if total, ok := bitstream.EncodedLen(hdr[:]); ok && total <= SlotSize {
		n = total
	}
	raw, dt, err := d.Read(addr, n)
	if err != nil {
		return nil, dt, err
	}
	bs, err := bitstream.Decode(raw)
	if err != nil {
		// Same charge as the historical full-slot scan.
		return nil, netsim.Duration(SlotSize) * ReadTimePerByte, fmt.Errorf("%w: %v", ErrSlotEmpty, err)
	}
	// Charge only for the bytes actually occupied.
	dt = netsim.Duration(bs.Size()) * ReadTimePerByte
	return bs, dt, nil
}

// ListSlots reports, for each slot, the stored app name or "" if empty or
// invalid.
func (d *Device) ListSlots() [NumSlots]string {
	var out [NumSlots]string
	for i := 0; i < NumSlots; i++ {
		if bs, _, err := d.LoadBitstream(i); err == nil {
			out[i] = bs.AppName
		}
	}
	return out
}
