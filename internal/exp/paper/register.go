package paper

import "flexsfp/internal/exp"

// The suite self-registers in canonical report order — the order the
// paper presents its evaluation and the order flexsfp-bench has always
// printed. A single ordered init (rather than one init per file) keeps
// the order explicit instead of depending on compilation file order.
func init() {
	exp.Register(
		exp.Def{ID: "table1", RunFn: runTable1,
			Doc: "Table 1 (§5.1): NAT case-study resource usage on the MPF200T"},
		exp.Def{ID: "table2", RunFn: runTable2,
			Doc: "Table 2 (§5.1): literature designs normalized to LE vs the MPF200T"},
		exp.Def{ID: "table3", RunFn: runTable3,
			Doc: "Table 3 (§5.2): cost/power per 10 Gb/s under ideal scaling"},
		exp.Def{ID: "power", RunFn: runPower,
			Doc: "§5 power measurement: Thunderbolt-NIC testbed, NAT under line-rate stress"},
		exp.Def{ID: "linerate", RunFn: runLineRate,
			Doc: "§5.1 line-rate verification: NAT at 10 Gb/s across frame sizes"},
		exp.Def{ID: "arch", RunFn: runArch,
			Doc: "Figure 1 / §4.1: architecture shells under bidirectional 64B load"},
		exp.Def{ID: "scale", RunFn: runScale,
			Doc: "§5.3 scalability: datapath width × clock design-space sweep"},
		exp.Def{ID: "gap", RunFn: runGap,
			Doc: "§2 acceleration gap: ACL micro-task on host CPU / SmartNIC / FlexSFP"},
		exp.Def{ID: "reliability", RunFn: runReliability,
			Doc: "§5.3 reliability: VCSEL wear-out fleet simulation (10k modules, 10 years)"},
		exp.Def{ID: "formfactor", RunFn: runFormFactor,
			Doc: "§6 form-factor scaling: target rate × silicon node → smallest module"},
		exp.Def{ID: "retrofit", RunFn: runRetrofit,
			Doc: "§2.1 retrofit economics: per-port programmability for a legacy switch"},
		exp.Def{ID: "latency", RunFn: runLatency,
			Doc: "§6 latency overhead: in-cable processing vs a plain transceiver"},
		exp.Def{ID: "pipeline_opt", RunFn: runPipelineOpt,
			Doc: "pipeline optimizer: pass pipeline over the app catalog + measured XDP line-rate delta"},
		exp.Def{ID: "dse", RunFn: runDSE,
			Doc: "cost-aware DSE: clock × width × table sizing × device Pareto fronts per app"},
		exp.Def{ID: "catalog", RunFn: runCatalog,
			Doc: "§3 app catalog: per-app MPF200T fit + line rate on protocol-matched profiles"},
		exp.Def{ID: "faults", RunFn: runFaults, Hidden: true,
			Doc: "§4.2 chaos sweep: canary rollout under transport/flash/wedge faults"},
		exp.Def{ID: "fleet_ota", RunFn: runFleetOTA, Hidden: true,
			Doc: "sharded fleet controller: 100k-module OTA waves under chaos with bounded blast radius"},
		exp.Def{ID: "overlay_linerate", RunFn: runOverlayLineRate, Hidden: true,
			Doc: "overlay mesh: per-mode encap overhead vs the 10G line-rate identity across a 2-cable fabric"},
		exp.Def{ID: "overlay_failover", RunFn: runOverlayFailover, Hidden: true,
			Doc: "overlay mesh chaos: 8-cable fabric, VCSEL wear-out withdrawal + link flaps, re-route invariants"},
	)
}
