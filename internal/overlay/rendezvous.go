// Package overlay implements the in-cable overlay mesh of ROADMAP item 4:
// N FlexSFP cables form a tunnel fabric among themselves, with the
// legacy switches between them staying dumb (§2.1's retrofit story
// scaled out to a datacenter interconnect). It has three parts:
//
//   - Rendezvous: the control-plane meeting point. Cables register their
//     overlay endpoint and announced prefixes over the standard mgmt TLV
//     envelope; the rendezvous assigns stable peer IDs, computes prefix
//     ownership (primary/backup priority), and serves the fabric-wide
//     table. Withdrawing a cable re-routes its prefixes to the next
//     announcer — the re-route state machine per prefix is
//     primary-owned → backup-owned → unrouted.
//
//   - Controller: one per cable. Registers the cable, polls the
//     rendezvous table, and reconciles the cable's mesh_routes /
//     mesh_peers PPE tables through the retrying mgmt client.
//
//   - Fabric: the netsim wiring — each cable a shard-placeable node,
//     full-mesh underlay links with real propagation delay, in-process
//     control transports — used by the overlay experiments and tests.
package overlay

import (
	"sort"
	"sync"

	"flexsfp/internal/apps"
	"flexsfp/internal/mgmt"
)

// Rendezvous is the mesh control-plane meeting point. It is safe for
// concurrent use: cable controllers register, withdraw, and poll from
// whatever goroutine their transport serves them on.
type Rendezvous struct {
	mu     sync.Mutex
	gen    uint64
	nextID uint16
	ids    map[string]uint16 // name → stable peer id, never reused
	peers  map[string]mgmt.OverlayEndpoint
}

// NewRendezvous returns an empty rendezvous at generation 0.
func NewRendezvous() *Rendezvous {
	return &Rendezvous{
		ids:   map[string]uint16{},
		peers: map[string]mgmt.OverlayEndpoint{},
	}
}

// Register adds or refreshes an endpoint and returns the new generation.
// The name keeps its stable ID across re-registrations (a rebooted cable
// comes back as the same peer).
func (r *Rendezvous) Register(e mgmt.OverlayEndpoint) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.ids[e.Name]
	if !ok {
		id = r.nextID
		r.nextID++
		r.ids[e.Name] = id
	}
	e.ID = id
	r.peers[e.Name] = e
	r.gen++
	return r.gen
}

// Withdraw removes an endpoint by name. Its prefixes fail over to their
// highest-priority surviving announcer in the next table. The second
// return is false when the name is not registered.
func (r *Rendezvous) Withdraw(name string) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[name]; !ok {
		return r.gen, false
	}
	delete(r.peers, name)
	r.gen++
	return r.gen, true
}

// Generation returns the current table generation.
func (r *Rendezvous) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Table computes the current mesh table. Peers are sorted by name and
// routes by prefix, and ownership ties break on (priority, name), so the
// result is a pure function of the registered set — every cable that
// syncs at one generation derives identical state, regardless of
// registration interleaving.
func (r *Rendezvous) Table() mgmt.OverlayTable {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := mgmt.OverlayTable{Generation: r.gen}
	for _, e := range r.peers {
		t.Peers = append(t.Peers, e)
	}
	sort.Slice(t.Peers, func(i, j int) bool { return t.Peers[i].Name < t.Peers[j].Name })

	// Ownership: for each announced prefix, the live announcer with the
	// lowest (priority, name) wins.
	type claim struct {
		prio uint8
		name string
		peer uint16
	}
	best := map[mgmt.OverlayPrefix]claim{}
	for _, e := range t.Peers {
		for _, p := range e.Prefixes {
			key := mgmt.OverlayPrefix{IP: p.IP, Len: p.Len} // identity sans priority
			c := claim{prio: p.Priority, name: e.Name, peer: e.ID}
			if cur, ok := best[key]; !ok || c.prio < cur.prio ||
				(c.prio == cur.prio && c.name < cur.name) {
				best[key] = c
			}
		}
	}
	for key, c := range best {
		t.Routes = append(t.Routes, mgmt.OverlayRoute{
			Prefix: mgmt.OverlayPrefix{IP: key.IP, Len: key.Len, Priority: c.prio},
			Peer:   c.peer,
		})
	}
	sort.Slice(t.Routes, func(i, j int) bool {
		a, b := t.Routes[i].Prefix, t.Routes[j].Prefix
		for k := range a.IP {
			if a.IP[k] != b.IP[k] {
				return a.IP[k] < b.IP[k]
			}
		}
		return a.Len < b.Len
	})
	return t
}

// Handle serves one encoded mgmt request — the rendezvous speaks the
// same TLV envelope as the cable agents, so it plugs straight into
// mgmt.NewServer and the in-process transports.
func (r *Rendezvous) Handle(req []byte) []byte {
	msg, err := mgmt.DecodeMessage(req)
	if err != nil {
		return mgmt.Message{Type: mgmt.MsgError,
			Body: mgmt.ErrorBody(mgmt.CodeBadBody, err.Error())}.Encode()
	}
	resp := r.dispatch(msg)
	resp.ReqID = msg.ReqID
	return resp.Encode()
}

func (r *Rendezvous) dispatch(msg mgmt.Message) mgmt.Message {
	errMsg := func(code uint16, text string) mgmt.Message {
		return mgmt.Message{Type: mgmt.MsgError, Body: mgmt.ErrorBody(code, text)}
	}
	ok := func(body []byte) mgmt.Message {
		return mgmt.Message{Type: mgmt.MsgOK, Body: body}
	}
	switch msg.Type {
	case mgmt.MsgPing:
		return ok(nil)
	case mgmt.MsgOverlayRegister:
		e, err := mgmt.DecodeOverlayRegister(msg.Body)
		if err != nil {
			return errMsg(mgmt.CodeBadBody, err.Error())
		}
		if e.Mode != apps.MeshModeGRE && e.Mode != apps.MeshModeVXLAN {
			return errMsg(mgmt.CodeBadBody, "overlay: unknown encap mode")
		}
		return ok(mgmt.EncodeOverlayGeneration(r.Register(e)))
	case mgmt.MsgOverlayWithdraw:
		name, err := mgmt.DecodeOverlayWithdraw(msg.Body)
		if err != nil {
			return errMsg(mgmt.CodeBadBody, err.Error())
		}
		gen, found := r.Withdraw(name)
		if !found {
			return errMsg(mgmt.CodeNoSuchObject, "overlay: endpoint not registered: "+name)
		}
		return ok(mgmt.EncodeOverlayGeneration(gen))
	case mgmt.MsgOverlayPeers:
		return ok(mgmt.EncodeOverlayTable(r.Table()))
	}
	return errMsg(mgmt.CodeUnknownType, "overlay: rendezvous does not serve this op")
}
