package mgmt

import (
	"fmt"
	"sync"

	"flexsfp/internal/core"
	"flexsfp/internal/ppe"
	"flexsfp/internal/telemetry"
)

// Agent is the management core's message processor, bound to one module.
// It is transport-agnostic: the module's in-band control path and the TCP
// listener both feed Handle. Table/counter operations are safe from any
// goroutine (the PPE objects are internally synchronized); flash and
// reboot operations must be serialized with simulator execution, which
// the daemon does with its run lock.
type Agent struct {
	mod *core.Module

	// tel, when set (SetTelemetry), serves the read-side observability
	// ops: metric snapshots and packet-trace dumps.
	tel *telemetry.Registry

	mu   sync.Mutex
	xfer *transfer
}

type transfer struct {
	slot        int
	rebootAfter bool
	buf         []byte
	// acked is the contiguous high-water mark of received bytes. Re-sent
	// chunks (a client retrying after a lost response) are idempotent:
	// they re-copy the same bytes and leave acked unchanged.
	acked int
}

// NewAgent builds an agent and installs it as the module's in-band
// control handler.
func NewAgent(m *core.Module) *Agent {
	a := &Agent{mod: m}
	m.SetControlHandler(func(payload []byte, from core.PortID) [][]byte {
		return [][]byte{a.Handle(payload)}
	})
	return a
}

// Handle processes one encoded request and returns the encoded response.
func (a *Agent) Handle(req []byte) []byte {
	msg, err := DecodeMessage(req)
	if err != nil {
		return Message{Type: MsgError, Body: errorBody(CodeBadBody, err.Error())}.Encode()
	}
	resp := a.dispatch(msg)
	resp.ReqID = msg.ReqID
	return resp.Encode()
}

func (a *Agent) dispatch(msg Message) Message {
	switch msg.Type {
	case MsgPing:
		return a.ping()
	case MsgTableAdd:
		return a.tableAdd(msg.Body)
	case MsgTableDel:
		return a.tableDel(msg.Body)
	case MsgTableGet:
		return a.tableGet(msg.Body)
	case MsgTableDump:
		return a.tableDump(msg.Body)
	case MsgTernaryAdd:
		return a.ternaryAdd(msg.Body)
	case MsgTernaryClear:
		return a.ternaryClear(msg.Body)
	case MsgCounterRead:
		return a.counterRead(msg.Body)
	case MsgMeterSet:
		return a.meterSet(msg.Body)
	case MsgRegRead:
		return a.regRead(msg.Body)
	case MsgRegWrite:
		return a.regWrite(msg.Body)
	case MsgStats:
		return a.statsMsg()
	case MsgDDM:
		return a.ddm()
	case MsgSlotList:
		return a.slotList()
	case MsgXferBegin:
		return a.xferBegin(msg.Body)
	case MsgXferChunk:
		return a.xferChunk(msg.Body)
	case MsgXferCommit:
		return a.xferCommit()
	case MsgXferStatus:
		return a.xferStatus()
	case MsgReboot:
		return a.reboot(msg.Body)
	case MsgEEPROM:
		return ok(a.mod.EEPROM())
	case MsgTelemetry:
		return a.telemetrySnap()
	case MsgTraceDump:
		return a.traceDump(msg.Body)
	default:
		return errMsg(CodeUnknownType, fmt.Sprintf("type %d", msg.Type))
	}
}

func errMsg(code uint16, text string) Message {
	return Message{Type: MsgError, Body: errorBody(code, text)}
}

func ok(body []byte) Message { return Message{Type: MsgOK, Body: body} }

func (a *Agent) state() (*ppe.State, Message) {
	app := a.mod.App()
	if app == nil {
		return nil, errMsg(CodeBadState, "no application loaded")
	}
	return app.State(), Message{}
}

func (a *Agent) ping() Message {
	var w bodyWriter
	w.str(a.mod.Name())
	w.u32(a.mod.DeviceID())
	appName := ""
	if app := a.mod.App(); app != nil {
		appName = app.Program().Name
	}
	w.str(appName)
	if a.mod.Running() {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return ok(w.b)
}

func (a *Agent) tableAdd(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	key := append([]byte(nil), r.bytes()...)
	value := append([]byte(nil), r.bytes()...)
	if r.err != nil {
		return errMsg(CodeBadBody, "table-add")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	t, okT := st.Table(name)
	if !okT {
		return errMsg(CodeNoSuchObject, name)
	}
	if err := t.Add(key, value); err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	return ok(nil)
}

func (a *Agent) tableDel(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	key := r.bytes()
	if r.err != nil {
		return errMsg(CodeBadBody, "table-del")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	t, okT := st.Table(name)
	if !okT {
		return errMsg(CodeNoSuchObject, name)
	}
	if err := t.Delete(key); err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	return ok(nil)
}

func (a *Agent) tableGet(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	key := r.bytes()
	if r.err != nil {
		return errMsg(CodeBadBody, "table-get")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	t, okT := st.Table(name)
	if !okT {
		return errMsg(CodeNoSuchObject, name)
	}
	v, found := t.Peek(key)
	if !found {
		return errMsg(CodeNoSuchObject, "entry")
	}
	var w bodyWriter
	w.bytes(v)
	return ok(w.b)
}

func (a *Agent) tableDump(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	if r.err != nil {
		return errMsg(CodeBadBody, "table-dump")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	t, okT := st.Table(name)
	if !okT {
		return errMsg(CodeNoSuchObject, name)
	}
	snap := t.Snapshot()
	var w bodyWriter
	w.u32(uint32(len(snap)))
	for _, e := range snap {
		w.bytes(e.Key)
		w.bytes(e.Value)
		w.u64(e.Hits)
	}
	return ok(w.b)
}

func (a *Agent) ternaryAdd(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	value := append([]byte(nil), r.bytes()...)
	mask := append([]byte(nil), r.bytes()...)
	prio := int(int32(r.u32()))
	data := append([]byte(nil), r.bytes()...)
	if r.err != nil {
		return errMsg(CodeBadBody, "ternary-add")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	t, okT := st.Ternary(name)
	if !okT {
		return errMsg(CodeNoSuchObject, name)
	}
	err := t.Add(ppe.TernaryEntry{Value: value, Mask: mask, Priority: prio, Data: data})
	if err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	return ok(nil)
}

func (a *Agent) ternaryClear(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	if r.err != nil {
		return errMsg(CodeBadBody, "ternary-clear")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	t, okT := st.Ternary(name)
	if !okT {
		return errMsg(CodeNoSuchObject, name)
	}
	t.Clear()
	return ok(nil)
}

func (a *Agent) counterRead(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	idx := int(r.u32())
	if r.err != nil {
		return errMsg(CodeBadBody, "counter-read")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	c, okC := st.Counters(name)
	if !okC {
		return errMsg(CodeNoSuchObject, name)
	}
	pkts, bytes := c.Read(idx)
	var w bodyWriter
	w.u64(pkts)
	w.u64(bytes)
	return ok(w.b)
}

func (a *Agent) meterSet(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	idx := int(r.u32())
	rate := r.f64()
	burst := r.f64()
	if r.err != nil {
		return errMsg(CodeBadBody, "meter-set")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	mb, okM := st.Meters(name)
	if !okM {
		return errMsg(CodeNoSuchObject, name)
	}
	if err := mb.Configure(idx, rate, burst); err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	return ok(nil)
}

func (a *Agent) regRead(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	if r.err != nil {
		return errMsg(CodeBadBody, "reg-read")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	reg, okR := st.Register(name)
	if !okR {
		return errMsg(CodeNoSuchObject, name)
	}
	var w bodyWriter
	w.u64(reg.Load())
	return ok(w.b)
}

func (a *Agent) regWrite(body []byte) Message {
	r := bodyReader{b: body}
	name := r.str()
	v := r.u64()
	if r.err != nil {
		return errMsg(CodeBadBody, "reg-write")
	}
	st, em := a.state()
	if st == nil {
		return em
	}
	reg, okR := st.Register(name)
	if !okR {
		return errMsg(CodeNoSuchObject, name)
	}
	reg.Store(v)
	return ok(nil)
}

func (a *Agent) statsMsg() Message {
	st := a.mod.Stats()
	var w bodyWriter
	for i := 0; i < 3; i++ {
		w.u64(st.Rx[i])
	}
	for i := 0; i < 3; i++ {
		w.u64(st.Tx[i])
	}
	w.u64(st.ControlFrames)
	w.u64(st.RebootDrops)
	w.u64(st.PuntToCPU)
	w.u64(st.Boots)
	w.u64(st.AuthFailures)
	w.u64(st.BootFailures)
	w.u64(st.GoldenFallbacks)
	w.u64(st.WatchdogTrips)
	var es ppe.EngineStats
	if e := a.mod.Engine(); e != nil {
		es = e.Stats()
	}
	w.u64(es.In)
	w.u64(es.InBytes)
	w.u64(es.QueueDrop)
	w.u64(es.Pass)
	w.u64(es.Drop)
	w.u64(es.Tx)
	w.u64(es.Redirect)
	w.u64(es.ToCPU)
	if a.mod.Running() {
		w.u8(1)
	} else {
		w.u8(0)
	}
	appName := ""
	if app := a.mod.App(); app != nil {
		appName = app.Program().Name
	}
	w.str(appName)
	w.u32(uint32(a.mod.ActiveSlot()))
	return ok(w.b)
}

func (a *Agent) ddm() Message {
	d := a.mod.DDM()
	var w bodyWriter
	w.f64(d.TemperatureC)
	w.f64(d.VccVolts)
	w.f64(d.TxBiasMA)
	w.f64(d.TxPowerDBm)
	w.f64(d.RxPowerDBm)
	return ok(w.b)
}

func (a *Agent) slotList() Message {
	slots := a.mod.Flash.ListSlots()
	var w bodyWriter
	w.u32(uint32(len(slots)))
	for _, s := range slots {
		w.str(s)
	}
	return ok(w.b)
}

func (a *Agent) xferBegin(body []byte) Message {
	r := bodyReader{b: body}
	slot := int(r.u8())
	reboot := r.u8() == 1
	total := int(r.u32())
	if r.err != nil || total <= 0 || total > 8<<20 {
		return errMsg(CodeBadBody, "xfer-begin")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.xfer = &transfer{slot: slot, rebootAfter: reboot, buf: make([]byte, total)}
	return ok(nil)
}

func (a *Agent) xferChunk(body []byte) Message {
	r := bodyReader{b: body}
	off := int(r.u32())
	data := r.bytes()
	if r.err != nil {
		return errMsg(CodeBadBody, "xfer-chunk")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.xfer == nil {
		return errMsg(CodeBadState, "no transfer in progress")
	}
	if off < 0 || off+len(data) > len(a.xfer.buf) {
		return errMsg(CodeBadBody, "chunk out of range")
	}
	copy(a.xfer.buf[off:], data)
	if off <= a.xfer.acked && off+len(data) > a.xfer.acked {
		a.xfer.acked = off + len(data)
	}
	return ok(nil)
}

// xferStatus reports the transfer FSM state so a client can resume a push
// from the last acknowledged byte after losing responses.
func (a *Agent) xferStatus() Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	var w bodyWriter
	if a.xfer == nil {
		w.u8(0)
		w.u8(0)
		w.u32(0)
		w.u32(0)
	} else {
		w.u8(1)
		w.u8(uint8(a.xfer.slot))
		w.u32(uint32(len(a.xfer.buf)))
		w.u32(uint32(a.xfer.acked))
	}
	return ok(w.b)
}

func (a *Agent) xferCommit() Message {
	a.mu.Lock()
	x := a.xfer
	a.xfer = nil
	a.mu.Unlock()
	if x == nil {
		return errMsg(CodeBadState, "no transfer in progress")
	}
	if x.acked < len(x.buf) {
		return errMsg(CodeBadState,
			fmt.Sprintf("transfer incomplete: %d of %d bytes", x.acked, len(x.buf)))
	}
	// The module authenticates the image (HMAC) and checks the target
	// device before the FSM writes flash (§4.2).
	if _, err := a.mod.InstallSigned(x.slot, x.buf); err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	if x.rebootAfter {
		a.mod.Reboot(x.slot)
	}
	var w bodyWriter
	w.u8(uint8(x.slot))
	return ok(w.b)
}

func (a *Agent) reboot(body []byte) Message {
	r := bodyReader{b: body}
	slot := int(r.u8())
	if r.err != nil {
		return errMsg(CodeBadBody, "reboot")
	}
	a.mod.Reboot(slot)
	return ok(nil)
}
