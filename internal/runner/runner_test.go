package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// trialFingerprint is a result whose value depends on the trial's RNG
// stream: any cross-trial contamination or reseeding shows up as a
// different fingerprint.
func trialFingerprint(trial int, rng *rand.Rand) string {
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += rng.Float64()
	}
	return fmt.Sprintf("%d:%.15f:%d", trial, sum, rng.Int63())
}

func TestMapOrderedMerge(t *testing.T) {
	got, err := Map(64, Options{Parallelism: 8, Seed: 7}, func(trial int, rng *rand.Rand) (int, error) {
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the core guarantee: byte-
// identical merged output for GOMAXPROCS=1 and GOMAXPROCS=8, and for any
// explicit parallelism in between.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(procs, parallelism int) []string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		out, err := Map(40, Options{Parallelism: parallelism, Seed: 42}, func(trial int, rng *rand.Rand) (string, error) {
			return trialFingerprint(trial, rng), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1, 1)
	for _, cfg := range [][2]int{{1, 4}, {8, 1}, {8, 8}, {8, 3}, {8, 0}} {
		got := run(cfg[0], cfg[1])
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: trial %d diverged:\n  %s\nvs\n  %s",
					cfg[0], cfg[1], i, got[i], ref[i])
			}
		}
	}
}

func TestTrialSeedStableAndDistinct(t *testing.T) {
	// The derivation is part of the reproducibility contract documented in
	// EXPERIMENTS.md: pin a few values so it can never silently change.
	pinned := map[[2]int64]int64{
		{1, 0}: TrialSeed(1, 0),
		{1, 1}: TrialSeed(1, 1),
	}
	for k, v := range pinned {
		if got := TrialSeed(k[0], int(k[1])); got != v {
			t.Fatalf("TrialSeed(%d,%d) unstable: %d then %d", k[0], k[1], v, got)
		}
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 8; root++ {
		for trial := 0; trial < 1000; trial++ {
			s := TrialSeed(root, trial)
			if seen[s] {
				t.Fatalf("duplicate derived seed %d (root %d trial %d)", s, root, trial)
			}
			seen[s] = true
		}
	}
}

func TestMapFirstErrorIsLowestTrial(t *testing.T) {
	boom7 := errors.New("trial 7")
	boom23 := errors.New("trial 23")
	for _, par := range []int{1, 8} {
		_, err := Map(64, Options{Parallelism: par}, func(trial int, rng *rand.Rand) (int, error) {
			switch trial {
			case 23:
				return 0, boom23
			case 7:
				// Make the higher trial likely to fail first in wall time
				// when parallel; the reported error must still be trial 7's.
				time.Sleep(2 * time.Millisecond)
				return 0, boom7
			}
			return trial, nil
		})
		if !errors.Is(err, boom7) {
			t.Fatalf("parallelism %d: err = %v, want trial 7's", par, err)
		}
	}
}

func TestMapErrorCancelsRemainingTrials(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := Map(10000, Options{Parallelism: 4}, func(trial int, rng *rand.Rand) (int, error) {
		ran.Add(1)
		if trial == 0 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("error did not cancel remaining trials")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := Map(10000, Options{Parallelism: 2, Context: ctx}, func(trial int, rng *rand.Rand) (int, error) {
		if ran.Add(1) == 50 {
			cancel()
		}
		return trial, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("cancellation did not stop the run")
	}
}

func TestMapZeroTrials(t *testing.T) {
	out, err := Map(0, Options{}, func(trial int, rng *rand.Rand) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestRunJobs(t *testing.T) {
	var a, b atomic.Bool
	err := Run(Options{Parallelism: 2},
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	boom := errors.New("job 0")
	err = Run(Options{Parallelism: 2},
		func() error { time.Sleep(time.Millisecond); return boom },
		func() error { return errors.New("job 1") },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want job 0's", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-2.138) > 0.001 {
		t.Errorf("stddev = %.4f", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.CI95() <= 0 {
		t.Error("CI95 not positive")
	}
	if z := Summarize(nil); z.N != 0 || z.CI95() != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Stddev != 0 || one.CI95() != 0 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestCollect(t *testing.T) {
	type r struct{ v float64 }
	s := Collect([]r{{1}, {2}, {3}}, func(x r) float64 { return x.v })
	if s.Mean != 2 || s.N != 3 {
		t.Errorf("collect = %+v", s)
	}
}
