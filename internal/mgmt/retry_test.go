package mgmt

import (
	"errors"
	"testing"
	"time"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/hls"
)

// signedStatefulImage compiles the stateful app at the given version and
// signs it with the fleet key.
func signedStatefulImage(t *testing.T, version uint32) []byte {
	t.Helper()
	app := newStatefulApp()
	prog := app.Program()
	prog.Version = version
	d, err := hls.Compile(prog, hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := d.Bitstream.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return bitstream.Sign(enc, fleetKey)
}

func TestRetryRecoversFromTransportErrors(t *testing.T) {
	_, a, _ := newAgentModule(t)
	fails := 2
	c := NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		if fails > 0 {
			fails--
			return nil, errors.New("connection reset")
		}
		return a.Handle(req), nil
	}))
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4})
	info, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "sfp-7" {
		t.Errorf("info = %+v", info)
	}
	if c.Retries() != 2 {
		t.Errorf("retries = %d, want 2", c.Retries())
	}
}

func TestRetryExhaustionSurfacesLastError(t *testing.T) {
	boom := errors.New("port unreachable")
	c := NewClient(TransportFunc(func([]byte) ([]byte, error) { return nil, boom }))
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	if _, err := c.Ping(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the transport error", err)
	}
	if c.Retries() != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", c.Retries())
	}
}

func TestNoRetryOnRemoteError(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5})
	var re *RemoteError
	if _, err := c.TableGet("no-such-table", []byte{1}); !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	// A decoded rejection means the request executed: retrying would
	// re-execute non-idempotent operations for no benefit.
	if c.Retries() != 0 {
		t.Errorf("retries = %d, want 0", c.Retries())
	}
}

func TestRetryOnCorruptedResponse(t *testing.T) {
	_, a, _ := newAgentModule(t)
	corrupted := false
	c := NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		resp := a.Handle(req)
		if !corrupted {
			corrupted = true
			bad := append([]byte(nil), resp...)
			bad[0] ^= 0xFF // smash the magic: undecodable
			return bad, nil
		}
		return resp, nil
	}))
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if c.Retries() != 1 {
		t.Errorf("retries = %d, want 1", c.Retries())
	}
}

func TestBackoffExponentialWithDeterministicJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	for attempt, bounds := range []struct{ lo, hi time.Duration }{
		{50 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 200 * time.Millisecond},
		{150 * time.Millisecond, 300 * time.Millisecond}, // capped at MaxBackoff
	} {
		d := p.Backoff(7, attempt)
		if d < bounds.lo || d >= bounds.hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, bounds.lo, bounds.hi)
		}
		if d != p.Backoff(7, attempt) {
			t.Errorf("attempt %d: jitter not deterministic", attempt)
		}
	}
	// Jitter decorrelates across request IDs.
	varied := false
	for id := uint32(1); id < 16; id++ {
		if p.Backoff(id, 0) != p.Backoff(id+1, 0) {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("jitter identical across 16 request IDs")
	}
	if (RetryPolicy{MaxAttempts: 3}).Backoff(1, 0) != 0 {
		t.Error("zero BaseBackoff produced a delay")
	}
}

func TestRetrySleepsRecordedBackoffs(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		c := NewClient(TransportFunc(func([]byte) ([]byte, error) {
			return nil, errors.New("down")
		}))
		c.SetRetryPolicy(RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 10 * time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
		c.Ping()
		return slept
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("slept %d times, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sleep %d: %v vs %v across identical runs", i, a[i], b[i])
		}
	}
}

func TestPushResumesAfterLostChunkResponse(t *testing.T) {
	m, a, sim := newAgentModule(t)
	signed := signedStatefulImage(t, 2)
	dropped := 0
	c := NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		if msg, err := DecodeMessage(req); err == nil && msg.Type == MsgXferChunk && dropped == 0 {
			dropped++
			a.Handle(req) // the chunk lands; only the response is lost
			return nil, errors.New("connection dropped")
		}
		return a.Handle(req), nil
	}))
	// No retry policy: the XferStatus resume path alone must recover.
	if err := c.PushBitstream(signed, 2, true); err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatal("fault never fired")
	}
	sim.Run()
	if !m.Running() || m.ActiveSlot() != 2 {
		t.Errorf("running=%v slot=%d after resumed push", m.Running(), m.ActiveSlot())
	}
}

func TestPushResolvesLostCommitResponse(t *testing.T) {
	m, a, sim := newAgentModule(t)
	signed := signedStatefulImage(t, 2)
	dropped := 0
	c := NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		if msg, err := DecodeMessage(req); err == nil && msg.Type == MsgXferCommit && dropped == 0 {
			dropped++
			a.Handle(req) // commit executes; the ack is lost
			return nil, errors.New("connection dropped")
		}
		return a.Handle(req), nil
	}))
	// The client must probe the agent and discover the commit landed
	// instead of reporting a spurious failure (or double-committing).
	if err := c.PushBitstream(signed, 2, true); err != nil {
		t.Fatalf("lost commit ack reported as failure: %v", err)
	}
	sim.Run()
	if !m.Running() || m.ActiveSlot() != 2 {
		t.Errorf("running=%v slot=%d", m.Running(), m.ActiveSlot())
	}
	if st := m.Stats(); st.Boots != 2 {
		t.Errorf("boots = %d, want exactly 2 (no double commit)", st.Boots)
	}
}

func TestPushGivesUpAfterBoundedResumes(t *testing.T) {
	_, a, _ := newAgentModule(t)
	signed := signedStatefulImage(t, 2)
	c := NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		if msg, err := DecodeMessage(req); err == nil && msg.Type == MsgXferChunk {
			return nil, errors.New("connection dropped") // chunk never lands
		}
		return a.Handle(req), nil
	}))
	err := c.PushBitstream(signed, 2, false)
	var pe *PushError
	if !errors.As(err, &pe) || pe.Stage != "chunk" {
		t.Fatalf("err = %v, want chunk-stage PushError", err)
	}
}

func TestPushErrorTypedAndUnwrapped(t *testing.T) {
	m, a, _ := newAgentModule(t)
	badSigned := signedStatefulImage(t, 2)
	badSigned[len(badSigned)-1] ^= 0xFF // break the HMAC tag
	c := newDirectClient(a)
	err := c.PushBitstream(badSigned, 2, true)
	var pe *PushError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PushError", err, err)
	}
	if pe.Stage != "commit" || pe.Slot != 2 {
		t.Errorf("push error = %+v", pe)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOpFailed {
		t.Errorf("cause = %v, want remote CodeOpFailed", pe.Err)
	}
	// Error-path consistency: the previous design keeps running and the
	// target slot stays empty — no partial activation.
	if !m.Running() || m.ActiveSlot() != 1 {
		t.Errorf("running=%v slot=%d after failed push", m.Running(), m.ActiveSlot())
	}
	slots, err := c.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if slots[2] != "" {
		t.Errorf("slot 2 = %q after failed push, want empty", slots[2])
	}
}

func TestXferStatus(t *testing.T) {
	_, a, _ := newAgentModule(t)
	c := newDirectClient(a)
	active, _, _, _, err := c.XferStatus()
	if err != nil {
		t.Fatal(err)
	}
	if active {
		t.Error("idle agent reports an active transfer")
	}
	// Begin a transfer and send one chunk: status tracks the high-water mark.
	var w bodyWriter
	w.u8(3)
	w.u8(0)
	w.u32(1000)
	if _, err := c.do(MsgXferBegin, w.b); err != nil {
		t.Fatal(err)
	}
	var cw bodyWriter
	cw.u32(0)
	cw.bytes(make([]byte, 400))
	if _, err := c.do(MsgXferChunk, cw.b); err != nil {
		t.Fatal(err)
	}
	active, slot, total, acked, err := c.XferStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !active || slot != 3 || total != 1000 || acked != 400 {
		t.Errorf("status = active=%v slot=%d total=%d acked=%d", active, slot, total, acked)
	}
}
