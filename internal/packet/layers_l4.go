package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Well-known ports the decoder special-cases.
const (
	PortDNS        = 53
	PortDHCPServer = 67
	PortDHCPClient = 68
	PortVXLAN      = 4789
	PortHTTPS      = 443
)

// ipPair holds the addresses needed for an L4 pseudo-header checksum.
type ipPair struct {
	src, dst []byte
}

func makeIPPair(src, dst netip.Addr) (ipPair, error) {
	if src.Is4() && dst.Is4() {
		s, d := src.As4(), dst.As4()
		return ipPair{s[:], d[:]}, nil
	}
	if src.Is6() && dst.Is6() {
		s, d := src.As16(), dst.As16()
		return ipPair{s[:], d[:]}, nil
	}
	return ipPair{}, fmt.Errorf("%w: mixed or invalid address families", ErrBadHeader)
}

// TCP is the TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	FIN, SYN, RST    bool
	PSH, ACK, URG    bool
	ECE, CWR         bool
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte // raw options, padded to 4-byte multiple
	payload          []byte

	pseudo ipPair
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTooShort
	}
	off := int(data[12]>>4) * 4
	if off < 20 {
		return fmt.Errorf("%w: TCP data offset %d < 20", ErrBadHeader, off)
	}
	if len(data) < off {
		return ErrTooShort
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	fl := data[13]
	t.FIN = fl&0x01 != 0
	t.SYN = fl&0x02 != 0
	t.RST = fl&0x04 != 0
	t.PSH = fl&0x08 != 0
	t.ACK = fl&0x10 != 0
	t.URG = fl&0x20 != 0
	t.ECE = fl&0x40 != 0
	t.CWR = fl&0x80 != 0
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[20:off]
	t.payload = data[off:]
	return nil
}

// NextLayerType implements Layer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// HeaderLength returns the TCP header length in bytes.
func (t *TCP) HeaderLength() int { return 20 + len(t.Options) }

// SetNetworkLayerForChecksum supplies the IP addresses used for the
// pseudo-header when serializing with ComputeChecksums.
func (t *TCP) SetNetworkLayerForChecksum(src, dst netip.Addr) error {
	p, err := makeIPPair(src, dst)
	if err != nil {
		return err
	}
	t.pseudo = p
	return nil
}

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("%w: TCP options length %d not multiple of 4", ErrBadHeader, len(t.Options))
	}
	hlen := 20 + len(t.Options)
	h := b.PrependBytes(hlen)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = uint8(hlen/4) << 4
	var fl uint8
	if t.FIN {
		fl |= 0x01
	}
	if t.SYN {
		fl |= 0x02
	}
	if t.RST {
		fl |= 0x04
	}
	if t.PSH {
		fl |= 0x08
	}
	if t.ACK {
		fl |= 0x10
	}
	if t.URG {
		fl |= 0x20
	}
	if t.ECE {
		fl |= 0x40
	}
	if t.CWR {
		fl |= 0x80
	}
	h[13] = fl
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	h[16], h[17] = 0, 0
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	copy(h[20:], t.Options)
	if opts.ComputeChecksums {
		if t.pseudo.src == nil {
			return fmt.Errorf("%w: TCP checksum requires SetNetworkLayerForChecksum", ErrBadHeader)
		}
		t.Checksum = TransportChecksum(b.Bytes(), t.pseudo.src, t.pseudo.dst, IPProtocolTCP)
	}
	binary.BigEndian.PutUint16(h[16:18], t.Checksum)
	return nil
}

// UDP is the UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by FixLengths
	Checksum         uint16
	payload          []byte

	pseudo ipPair
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTooShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	if u.Length < 8 {
		return fmt.Errorf("%w: UDP length %d < 8", ErrBadHeader, u.Length)
	}
	if int(u.Length) > len(data) {
		return ErrTruncated
	}
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	u.payload = data[8:u.Length]
	return nil
}

// NextLayerType implements Layer.
func (u *UDP) NextLayerType() LayerType {
	switch {
	case u.DstPort == PortDNS || u.SrcPort == PortDNS:
		return LayerTypeDNS
	case u.DstPort == PortDHCPServer || u.DstPort == PortDHCPClient ||
		u.SrcPort == PortDHCPServer || u.SrcPort == PortDHCPClient:
		return LayerTypeDHCPv4
	case u.DstPort == PortVXLAN:
		return LayerTypeVXLAN
	default:
		return LayerTypePayload
	}
}

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// SetNetworkLayerForChecksum supplies the IP addresses used for the
// pseudo-header when serializing with ComputeChecksums.
func (u *UDP) SetNetworkLayerForChecksum(src, dst netip.Addr) error {
	p, err := makeIPPair(src, dst)
	if err != nil {
		return err
	}
	u.pseudo = p
	return nil
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := b.Len()
	h := b.PrependBytes(8)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	if opts.FixLengths {
		u.Length = uint16(8 + payloadLen)
	}
	binary.BigEndian.PutUint16(h[4:6], u.Length)
	h[6], h[7] = 0, 0
	if opts.ComputeChecksums {
		if u.pseudo.src == nil {
			return fmt.Errorf("%w: UDP checksum requires SetNetworkLayerForChecksum", ErrBadHeader)
		}
		u.Checksum = TransportChecksum(b.Bytes(), u.pseudo.src, u.pseudo.dst, IPProtocolUDP)
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: transmitted as all ones
		}
	}
	binary.BigEndian.PutUint16(h[6:8], u.Checksum)
	return nil
}

// ICMPv4 type codes used by the models.
const (
	ICMPv4TypeEchoReply   = 0
	ICMPv4TypeDestUnreach = 3
	ICMPv4TypeEchoRequest = 8
	ICMPv4TypeTimeExceed  = 11
)

// ICMPv4 is the ICMP header for IPv4.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16
	Seq      uint16
	payload  []byte
}

// LayerType implements Layer.
func (i *ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// DecodeFromBytes implements Layer.
func (i *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTooShort
	}
	i.Type = data[0]
	i.Code = data[1]
	i.Checksum = binary.BigEndian.Uint16(data[2:4])
	i.ID = binary.BigEndian.Uint16(data[4:6])
	i.Seq = binary.BigEndian.Uint16(data[6:8])
	i.payload = data[8:]
	return nil
}

// NextLayerType implements Layer.
func (i *ICMPv4) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (i *ICMPv4) LayerPayload() []byte { return i.payload }

// SerializeTo implements SerializableLayer.
func (i *ICMPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	h := b.PrependBytes(8)
	h[0] = i.Type
	h[1] = i.Code
	h[2], h[3] = 0, 0
	binary.BigEndian.PutUint16(h[4:6], i.ID)
	binary.BigEndian.PutUint16(h[6:8], i.Seq)
	if opts.ComputeChecksums {
		i.Checksum = Checksum(b.Bytes())
	}
	binary.BigEndian.PutUint16(h[2:4], i.Checksum)
	return nil
}
