package paper

// Overlay mesh experiments: N FlexSFP cables as a rendezvous-coordinated
// tunnel fabric (internal/overlay). Two registered experiments:
//
//   - overlay_linerate: per-mode encap overhead against the 10G
//     line-rate identity of internal/phy — an inner stream paced so the
//     encapsulated frames exactly fill the underlay wire must be
//     delivered loss-free at the far edge.
//
//   - overlay_failover: an 8-cable fabric under chaos (link flaps plus a
//     VCSEL wearing out past the DDM warn threshold). The wearing cable
//     is predictively withdrawn at the rendezvous; the pinned invariants
//     are zero frames delivered to the withdrawn peer after convergence
//     and every surviving flow re-converging onto the backup announcer.
//
// Both run on the parallel simulation core and follow its placement-
// invariance rules, so their JSON envelopes are byte-identical at any
// shard count.

import (
	"fmt"
	"math"
	"net/netip"

	"flexsfp/internal/apps"
	"flexsfp/internal/exp"
	"flexsfp/internal/faults"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/overlay"
	"flexsfp/internal/packet"
	"flexsfp/internal/phy"
	"flexsfp/internal/reliability"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// overlay_linerate

// OverlayLineRatePoint is one (mode, inner size) measurement across a
// two-cable fabric.
type OverlayLineRatePoint struct {
	Label            string
	Mode             string
	InnerSize        int
	OverheadBytes    int
	OverheadFraction float64
	// TheoryPPS is the phy identity: the encapsulated frame rate that
	// exactly fills the 10G underlay.
	TheoryPPS        float64
	OfferedPPS       float64
	DeliveredPPS     float64
	InnerGoodputGbps float64
	UnderlayTxFrames uint64
	Drops            uint64
	LineRate         bool
}

// OverlayLineRateResult is the full mode × size sweep.
type OverlayLineRateResult struct {
	Points []OverlayLineRatePoint
}

// meshOverheadBytes is the encap growth per mode: GRE (with key)
// eth+ip+gre = 14+20+8; VXLAN eth+ip+udp+vxlan = 14+20+8+8.
func meshOverheadBytes(mode uint8) int {
	if mode == apps.MeshModeVXLAN {
		return 50
	}
	return 42
}

type overlayLineRateCase struct {
	label string
	mode  uint8
	size  int
}

func overlayLineRateCases() []overlayLineRateCase {
	return []overlayLineRateCase{
		{"gre-64B", apps.MeshModeGRE, 64},
		{"gre-256B", apps.MeshModeGRE, 256},
		{"gre-1024B", apps.MeshModeGRE, 1024},
		{"vxlan-64B", apps.MeshModeVXLAN, 64},
		{"vxlan-256B", apps.MeshModeVXLAN, 256},
		{"vxlan-1024B", apps.MeshModeVXLAN, 1024},
	}
}

func overlayLineRate(ctx exp.RunContext) (OverlayLineRateResult, error) {
	shards := ctx.Shards
	if shards < 1 {
		shards = 1
	}
	cases := overlayLineRateCases()
	sh := netsim.NewSharded(ctx.Seed, shards)

	type caseWorld struct {
		fab        *overlay.Fabric
		gen        *trafficgen.Generator
		recvFrames uint64 // written on cable B's shard only
		recvBytes  uint64
	}
	worlds := make([]caseWorld, len(cases))

	// Wiring pass: each case is an independent two-cable fabric on its
	// own pair of logical partitions. Encap A→B uses B's receive mode,
	// so both cables carry the case mode.
	for i, tc := range cases {
		w := &worlds[i]
		mode := tc.mode
		fab, err := overlay.NewFabric(overlay.FabricSpec{
			Sh: sh, Cables: 2, Base: 2 * i,
			Mode: func(int) uint8 { return mode },
			EdgeSink: func(c int, data []byte) {
				if c == 1 {
					w.recvFrames++
					w.recvBytes += uint64(len(data))
				}
			},
		})
		if err != nil {
			return OverlayLineRateResult{}, err
		}
		if err := fab.RegisterAll(); err != nil {
			return OverlayLineRateResult{}, err
		}
		w.fab = fab
	}
	epoch := sh.AlignClocks()

	// Measurement pass: cable A's edge offers inner frames paced so the
	// encapsulated stream is exactly the underlay's line rate.
	for i, tc := range cases {
		w := &worlds[i]
		a := w.fab.Cables[0]
		// Pace at the line-rate identity, quantized to the simulator's
		// whole-nanosecond inter-arrival grid from below — a truncated
		// gap would offer fractionally above wire rate and slowly flood
		// the underlay queue.
		pps := phy.LineRatePPS(phy.DataRateBps, tc.size+meshOverheadBytes(tc.mode))
		pps = 1e9 / math.Ceil(1e9/pps)
		wire := netsim.NewLink(a.Sim, phy.DataRateBps, 0, a.Mod.RxEdge)
		w.gen = trafficgen.New(a.Sim, trafficgen.Config{
			PPS:   pps,
			Sizes: []trafficgen.IMIXEntry{{Size: tc.size, Weight: 1}},
			Flows: 32,
			SrcIP: netip.MustParseAddr("10.200.1.1"),
			DstIP: netip.MustParseAddr("10.200.2.9"),
			Rand:  sh.Stream(2 * i),
		}, func(b []byte) bool { return wire.Send(b) })
		w.gen.Run(0)
	}
	window := netsim.Duration(netsim.Millisecond)
	sh.RunUntil(epoch.Add(window))
	for i := range worlds {
		worlds[i].gen.Stop()
	}
	sh.RunUntil(epoch.Add(window + 100*netsim.Microsecond))

	res := OverlayLineRateResult{Points: make([]OverlayLineRatePoint, len(cases))}
	for i, tc := range cases {
		w := &worlds[i]
		a, b := w.fab.Cables[0], w.fab.Cables[1]
		ovh := meshOverheadBytes(tc.mode)
		link := a.Links[1].Stats()
		drops := a.Mod.Engine().Stats().QueueDrop + b.Mod.Engine().Stats().QueueDrop +
			link.Drops + link.DownDrops + a.NoLinkDrops + b.NoLinkDrops
		res.Points[i] = OverlayLineRatePoint{
			Label:            tc.label,
			Mode:             modeLabel(tc.mode),
			InnerSize:        tc.size,
			OverheadBytes:    ovh,
			OverheadFraction: float64(ovh) / float64(tc.size+ovh),
			TheoryPPS:        phy.LineRatePPS(phy.DataRateBps, tc.size+ovh),
			OfferedPPS:       float64(w.gen.Sent) / window.Seconds(),
			DeliveredPPS:     float64(w.recvFrames) / window.Seconds(),
			InnerGoodputGbps: float64(w.recvBytes) * 8 / window.Seconds() / 1e9,
			UnderlayTxFrames: link.TxFrames,
			Drops:            drops,
			LineRate:         drops == 0 && w.recvFrames > 0,
		}
	}
	return res, nil
}

func modeLabel(mode uint8) string {
	if mode == apps.MeshModeVXLAN {
		return apps.TunnelVXLAN
	}
	return apps.TunnelGRE
}

// Render formats the sweep.
func (r OverlayLineRateResult) Render() string {
	t := exp.NewTable("Case", "Overhead", "Theory (Mpps)", "Offered (Mpps)", "Delivered (Mpps)", "Inner Gb/s", "Line rate?")
	for _, p := range r.Points {
		ok := "yes"
		if !p.LineRate {
			ok = "NO"
		}
		t.Add(p.Label,
			fmt.Sprintf("%dB (%.1f%%)", p.OverheadBytes, p.OverheadFraction*100),
			fmt.Sprintf("%.3f", p.TheoryPPS/1e6),
			fmt.Sprintf("%.3f", p.OfferedPPS/1e6),
			fmt.Sprintf("%.3f", p.DeliveredPPS/1e6),
			fmt.Sprintf("%.3f", p.InnerGoodputGbps),
			ok)
	}
	return "Overlay mesh line rate: encap overhead across a 2-cable fabric\n" + t.String()
}

func runOverlayLineRate(ctx exp.RunContext) (exp.Result, error) {
	r, err := overlayLineRate(ctx)
	if err != nil {
		return nil, err
	}
	env := exp.Envelope{Name: "overlay_linerate", Params: ctx.Params()}
	lineRateAll, drops := 1.0, 0.0
	for _, p := range r.Points {
		if !p.LineRate {
			lineRateAll = 0
		}
		drops += float64(p.Drops)
	}
	env.Detail = r
	env.Metrics = []exp.Metric{
		exp.Scalar("points", "", float64(len(r.Points))),
		exp.Scalar("line_rate_all", "bool", lineRateAll),
		exp.Scalar("drops", "", drops),
	}
	return exp.NewResult(env, r.Render), nil
}

// ---------------------------------------------------------------------------
// overlay_failover

// OverlayFlowRecovery is one flow whose route failed over: a sender's
// traffic toward the withdrawn cable's prefix.
type OverlayFlowRecovery struct {
	Sender    int
	Recovered bool
	LatencyUs float64
}

// OverlayFailoverResult is the chaos run's measured outcome.
type OverlayFailoverResult struct {
	Cables                  int
	Victim                  int
	Backup                  int
	VictimTTFYears          float64
	WithdrawAtUs            float64
	WearAtWithdraw          float64
	BlastRadiusFlows        int
	RecoveredFlows          int
	RecoveredFraction       float64
	FramesToWithdrawnPost   uint64
	RerouteLatencyUsMean    float64
	RerouteLatencyUsMax     float64
	SurvivingFlowsDelivered int
	SurvivingFlowsTotal     int
	FlapsInjected           int
	DownDrops               uint64
	QueueDrops              uint64
	NoLinkDrops             uint64
	FramesSent              uint64
	FramesDelivered         uint64
	Flows                   []OverlayFlowRecovery
}

const (
	failoverCables   = 8
	failoverWindows  = 20
	failoverWindow   = 100 * netsim.Microsecond
	failoverDrain    = 5 * netsim.Microsecond
	failoverPPS      = 100_000
	failoverFrameLen = 256
	// Dedicated partition-stream lanes (beyond the cable partitions).
	failoverTTFStream  = 1000
	failoverFlapStream = 2000
	// Accelerated aging: the run's full span maps onto twice the
	// victim's TTF, so the DDM warn threshold is crossed mid-run.
	failoverAgingFactor = 2.0
)

func overlayFailover(ctx exp.RunContext) (OverlayFailoverResult, error) {
	shards := ctx.Shards
	if shards < 1 {
		shards = 1
	}
	n := failoverCables
	sh := netsim.NewSharded(ctx.Seed, shards)

	// Per-cable receive accounting, written only from that cable's shard
	// goroutine; the host reads it at window barriers.
	type recvState struct {
		marked     bool
		markAt     netsim.Time
		total      uint64
		sinceMark  uint64
		count      [failoverCables]uint64
		firstSince [failoverCables]netsim.Time
		haveFirst  [failoverCables]bool
	}
	recv := make([]*recvState, n)
	sims := make([]*netsim.Simulator, n)
	for i := range recv {
		recv[i] = &recvState{}
		sims[i] = sh.Shard(sh.ShardFor(i))
	}

	fab, err := overlay.NewFabric(overlay.FabricSpec{
		Sh: sh, Cables: n,
		Prefixes: func(i int) []mgmt.OverlayPrefix {
			// Own /24 as primary, plus backup ownership of the previous
			// cable's prefix: cable (v+1)%n inherits v's prefix on
			// withdrawal.
			prev := overlay.DefaultPrefix((i + n - 1) % n)
			prev.Priority = 1
			return []mgmt.OverlayPrefix{overlay.DefaultPrefix(i), prev}
		},
		EdgeSink: func(i int, data []byte) {
			if len(data) < 34 {
				return
			}
			s := int(data[28]) - 1 // sender = inner source IP's third octet
			if s < 0 || s >= failoverCables {
				return
			}
			r := recv[i]
			r.total++
			r.count[s]++
			if r.marked {
				now := sims[i].Now()
				if now >= r.markAt {
					r.sinceMark++
					if !r.haveFirst[s] {
						r.haveFirst[s] = true
						r.firstSince[s] = now
					}
				}
			}
		},
	})
	if err != nil {
		return OverlayFailoverResult{}, err
	}
	if err := fab.RegisterAll(); err != nil {
		return OverlayFailoverResult{}, err
	}

	// The wearing laser: per-cable TTFs from dedicated partition
	// streams; the victim is the earliest failure.
	model := reliability.DefaultVCSEL()
	victim, ttf := 0, 0.0
	for i := 0; i < n; i++ {
		t := model.SampleTTFYears(sh.Stream(failoverTTFStream + i))
		if i == 0 || t < ttf {
			victim, ttf = i, t
		}
	}
	backup := (victim + 1) % n
	warnAt := reliability.DefaultFleet().WarnDegradation

	epoch := sh.AlignClocks()
	total := netsim.Duration(failoverWindows) * failoverWindow

	// Traffic: every cable streams template frames to all seven foreign
	// prefixes, the sender identified by its inner source address.
	gens := make([]*trafficgen.Generator, n)
	for i := 0; i < n; i++ {
		var templates []trafficgen.WeightedFrame
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			templates = append(templates, trafficgen.WeightedFrame{Weight: 1, Frame: packet.MustBuild(packet.Spec{
				SrcMAC:  packet.MustMAC("02:0e:00:00:00:01"),
				DstMAC:  packet.MustMAC("02:0e:00:00:00:02"),
				SrcIP:   netip.MustParseAddr(fmt.Sprintf("10.200.%d.1", i+1)),
				DstIP:   netip.MustParseAddr(fmt.Sprintf("10.200.%d.9", j+1)),
				SrcPort: 1111, DstPort: 2222,
				PadTo: failoverFrameLen,
			})})
		}
		c := fab.Cables[i]
		wire := netsim.NewLink(c.Sim, phy.DataRateBps, 0, c.Mod.RxEdge)
		gens[i] = trafficgen.New(c.Sim, trafficgen.Config{
			PPS: failoverPPS, Templates: templates, Rand: sh.Stream(i),
		}, func(b []byte) bool { return wire.Send(b) })
		gens[i].Run(0)
	}

	// Chaos: deterministic link flaps on the non-victim underlay.
	inj := faults.New(ctx.Seed, faults.Rates{})
	flaps := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || i == victim || j == victim {
				continue
			}
			rng := sh.Stream(failoverFlapStream + i*n + j)
			if rng.Float64() < 0.3 {
				downAt := failoverWindow + netsim.Duration(rng.Int63n(int64(16*failoverWindow)))
				inj.FlapLink(sims[i], fab.Cables[i].Links[j], downAt, 40*netsim.Microsecond)
				flaps++
			}
		}
	}

	// Run in windows; at each barrier evaluate the victim's DDM trend
	// under accelerated aging and withdraw once it crosses the warn
	// threshold.
	res := OverlayFailoverResult{
		Cables: n, Victim: victim, Backup: backup,
		VictimTTFYears: ttf, FlapsInjected: flaps,
	}
	withdrawn := false
	var withdrawAt netsim.Time
	for w := 1; w <= failoverWindows; w++ {
		t := epoch.Add(netsim.Duration(w) * failoverWindow)
		sh.RunUntil(t)
		if withdrawn {
			continue
		}
		frac := t.Sub(epoch).Seconds() / total.Seconds()
		wear := model.DegradationAt(frac*failoverAgingFactor*ttf, ttf)
		if wear < warnAt {
			continue
		}
		// Predictive withdrawal: the backup's controller reports the
		// victim dead, everyone re-syncs, then the victim's transport
		// goes dark and its offered load stops.
		if err := fab.Withdraw(backup, fab.Cables[victim].Name); err != nil {
			return OverlayFailoverResult{}, err
		}
		if err := fab.SyncAll(); err != nil {
			return OverlayFailoverResult{}, err
		}
		fab.SetCableLinks(victim, false)
		gens[victim].Stop()
		withdrawn, withdrawAt = true, t
		res.WithdrawAtUs = float64(t.Sub(epoch)) / 1e3
		res.WearAtWithdraw = wear
		// Mark every survivor at the withdrawal instant; the victim is
		// marked after a drain window so pre-withdrawal frames still in
		// flight don't count against the post-convergence invariant.
		for i, r := range recv {
			if i != victim {
				r.marked, r.markAt = true, t
			}
		}
		sh.RunUntil(t.Add(failoverDrain))
		recv[victim].marked, recv[victim].markAt = true, t.Add(failoverDrain)
	}
	if !withdrawn {
		return OverlayFailoverResult{}, fmt.Errorf("overlay_failover: wear never crossed the warn threshold")
	}
	for i := 0; i < n; i++ {
		if i != victim {
			gens[i].Stop()
		}
	}
	sh.RunUntil(epoch.Add(total + failoverWindow))

	// Invariant 1: nothing reached the withdrawn cable's edge after
	// convergence.
	res.FramesToWithdrawnPost = recv[victim].sinceMark

	// Invariant 2: every affected flow (sender ∉ {victim, backup}
	// toward the victim's prefix) re-converged onto the backup.
	var latSum, latMax float64
	for s := 0; s < n; s++ {
		if s == victim || s == backup {
			continue
		}
		fr := OverlayFlowRecovery{Sender: s}
		if recv[backup].haveFirst[s] {
			fr.Recovered = true
			fr.LatencyUs = float64(recv[backup].firstSince[s].Sub(withdrawAt)) / 1e3
			latSum += fr.LatencyUs
			if fr.LatencyUs > latMax {
				latMax = fr.LatencyUs
			}
			res.RecoveredFlows++
		}
		res.Flows = append(res.Flows, fr)
	}
	res.BlastRadiusFlows = n - 1 // every sender routed toward the victim's prefix
	if len(res.Flows) > 0 {
		res.RecoveredFraction = float64(res.RecoveredFlows) / float64(len(res.Flows))
	}
	if res.RecoveredFlows > 0 {
		res.RerouteLatencyUsMean = latSum / float64(res.RecoveredFlows)
		res.RerouteLatencyUsMax = latMax
	}

	// Continuity: unaffected flows keep delivering after the event.
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		for s := 0; s < n; s++ {
			if s == victim || s == r {
				continue
			}
			res.SurvivingFlowsTotal++
			if recv[r].haveFirst[s] {
				res.SurvivingFlowsDelivered++
			}
		}
	}

	for i, c := range fab.Cables {
		res.QueueDrops += c.Mod.Engine().Stats().QueueDrop
		res.NoLinkDrops += c.NoLinkDrops
		res.FramesSent += gens[i].Sent
		res.FramesDelivered += recv[i].total
		for _, l := range c.Links {
			if l == nil {
				continue
			}
			st := l.Stats()
			res.DownDrops += st.DownDrops
			res.QueueDrops += st.Drops
		}
	}
	return res, nil
}

// Render formats the failover run.
func (r OverlayFailoverResult) Render() string {
	t := exp.NewTable("Flow (sender)", "Recovered", "Re-route latency (µs)")
	for _, f := range r.Flows {
		ok := "yes"
		if !f.Recovered {
			ok = "NO"
		}
		t.Add(fmt.Sprintf("cable-%d → victim prefix", f.Sender), ok, fmt.Sprintf("%.1f", f.LatencyUs))
	}
	return fmt.Sprintf(
		"Overlay mesh failover: %d cables, victim cable-%d (TTF %.1fy) withdrawn at %.0fµs (wear %.2f)\n"+
			"frames to withdrawn peer post-convergence: %d; recovered %d/%d affected flows; "+
			"surviving flows delivering: %d/%d; flaps injected: %d\n",
		r.Cables, r.Victim, r.VictimTTFYears, r.WithdrawAtUs, r.WearAtWithdraw,
		r.FramesToWithdrawnPost, r.RecoveredFlows, len(r.Flows),
		r.SurvivingFlowsDelivered, r.SurvivingFlowsTotal, r.FlapsInjected) + t.String()
}

func runOverlayFailover(ctx exp.RunContext) (exp.Result, error) {
	r, err := overlayFailover(ctx)
	if err != nil {
		return nil, err
	}
	env := exp.Envelope{Name: "overlay_failover", Params: ctx.Params()}
	env.Detail = r
	env.Metrics = []exp.Metric{
		exp.Scalar("cables", "", float64(r.Cables)),
		exp.Scalar("victim_index", "", float64(r.Victim)),
		exp.Scalar("withdraw_at", "us", r.WithdrawAtUs),
		exp.Scalar("blast_radius_flows", "", float64(r.BlastRadiusFlows)),
		exp.Scalar("recovered_flows", "", float64(r.RecoveredFlows)),
		exp.Scalar("recovered_fraction", "", r.RecoveredFraction),
		exp.Scalar("frames_to_withdrawn_post", "", float64(r.FramesToWithdrawnPost)),
		exp.Scalar("reroute_latency_mean", "us", r.RerouteLatencyUsMean),
		exp.Scalar("reroute_latency_max", "us", r.RerouteLatencyUsMax),
		exp.Scalar("link_flaps", "", float64(r.FlapsInjected)),
		exp.Scalar("down_drops", "", float64(r.DownDrops)),
		exp.Scalar("frames_delivered", "", float64(r.FramesDelivered)),
	}
	return exp.NewResult(env, r.Render), nil
}
