package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/faults"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/telemetry"
)

// fakeMember is a scripted FleetMember for exercising controller logic
// without the SimMember chaos model.
type fakeMember struct {
	name    string
	pushErr error
	wedge   bool // boots the target slot but reports not running
	late    bool // healthy on the first stats read after push, hung after

	slot       int
	running    bool
	statsReads int
	pushes     int
	reboots    int
}

func newFake(name string) *fakeMember {
	return &fakeMember{name: name, slot: 1, running: true}
}

func (m *fakeMember) Name() string { return m.name }

func (m *fakeMember) Push(signed []byte, slot int, rebootAfter bool) error {
	m.pushes++
	if m.pushErr != nil {
		return m.pushErr
	}
	m.slot = slot
	m.running = !m.wedge
	m.statsReads = 0
	return nil
}

func (m *fakeMember) Stats() (mgmt.Stats, error) {
	m.statsReads++
	running := m.running
	if m.late && m.statsReads > 1 {
		running = false
	}
	return mgmt.Stats{Running: running, ActiveSlot: m.slot}, nil
}

func (m *fakeMember) Reboot(slot int) error {
	m.reboots++
	m.slot = slot
	m.running = true
	m.wedge, m.late, m.statsReads = false, false, 0
	return nil
}

func (m *fakeMember) Telemetry() (telemetry.Snapshot, error) {
	return telemetry.Snapshot{
		Counters: []telemetry.CounterSnap{{Name: "pushes", Value: uint64(m.pushes)}},
	}, nil
}

func buildFakes(n int) []*fakeMember {
	ms := make([]*fakeMember, n)
	for i := range ms {
		ms[i] = newFake(fmt.Sprintf("cable-%04d", i))
	}
	return ms
}

func asMembers(fs []*fakeMember) []FleetMember {
	out := make([]FleetMember, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func TestShardForStableAndCovering(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 4000; i++ {
		name := fmt.Sprintf("cable-%04d", i)
		s := ShardFor(name, shards)
		if s != ShardFor(name, shards) {
			t.Fatalf("%s: shard assignment unstable", name)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 4000/shards/2 || c > 4000/shards*2 {
			t.Errorf("shard %d holds %d of 4000 members — hash is striping", s, c)
		}
	}
	if ShardFor("anything", 1) != 0 || ShardFor("anything", 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

func TestRolloutAllHealthy(t *testing.T) {
	fakes := buildFakes(100)
	c := NewFleetController(FleetConfig{
		Shards: 4, TargetSlot: 2, Canaries: 2, WaveSize: 8, Bake: true,
	}, asMembers(fakes))

	rep := c.Rollout([]byte{1})
	if rep.Modules != 100 || rep.Updated != 100 || rep.Failed != 0 {
		t.Fatalf("modules=%d updated=%d failed=%d", rep.Modules, rep.Updated, rep.Failed)
	}
	if rep.TrippedShards != 0 || rep.Aborted || rep.BadEnd != 0 {
		t.Errorf("healthy rollout: %+v", rep)
	}
	if len(rep.PerShard) != 4 {
		t.Fatalf("per-shard reports = %d", len(rep.PerShard))
	}
	for _, f := range fakes {
		if f.slot != 2 || !f.running {
			t.Errorf("%s: slot=%d running=%v", f.name, f.slot, f.running)
		}
	}
}

// TestShardTripRollsBackOnlyItsMembers is the blast-radius bound: half of
// one shard's members wedge, tripping that shard's gate; its healthy
// members are rolled back to slot 1 while every other shard's members
// stay updated on slot 2.
func TestShardTripRollsBackOnlyItsMembers(t *testing.T) {
	fakes := buildFakes(200)
	const shards = 4
	badShard := ShardFor(fakes[0].name, shards)
	inBad := 0
	for _, f := range fakes {
		if ShardFor(f.name, shards) == badShard {
			if inBad%2 == 0 {
				f.wedge = true
			}
			inBad++
		}
	}

	c := NewFleetController(FleetConfig{
		Shards: shards, TargetSlot: 2, Canaries: 1, WaveSize: 0,
		GlobalMaxFailureFrac: 2, // isolate the per-shard gate
	}, asMembers(fakes))
	rep := c.Rollout([]byte{1})

	if rep.TrippedShards != 1 {
		t.Fatalf("tripped shards = %d, want 1 (report %+v)", rep.TrippedShards, rep)
	}
	if rep.PerShard[badShard].Updated != 0 {
		t.Errorf("tripped shard still reports %d updated", rep.PerShard[badShard].Updated)
	}
	if rep.BadEnd != 0 {
		t.Errorf("bad end = %d, want 0", rep.BadEnd)
	}
	for _, f := range fakes {
		s := ShardFor(f.name, shards)
		switch {
		case s == badShard && f.slot != 1:
			t.Errorf("%s (tripped shard %d): slot=%d, want rolled back to 1", f.name, s, f.slot)
		case s != badShard && f.slot != 2:
			t.Errorf("%s (healthy shard %d): slot=%d, want 2", f.name, s, f.slot)
		}
		if !f.running {
			t.Errorf("%s left not running", f.name)
		}
	}
}

// TestGlobalBreakerAborts: half the shards fail outright but stay under
// their (loosened) per-shard gate; the cross-shard breaker halts the
// remaining waves after the canary round.
func TestGlobalBreakerAborts(t *testing.T) {
	fakes := buildFakes(400)
	const shards = 8
	for _, f := range fakes {
		if ShardFor(f.name, shards)%2 == 0 {
			f.pushErr = errors.New("region down")
		}
	}
	c := NewFleetController(FleetConfig{
		Shards: shards, TargetSlot: 2, Canaries: 2, WaveSize: 4,
		MaxFailureFrac:       2,   // per-shard gate disabled
		GlobalMaxFailureFrac: 0.3, // breaker trips at 50% cross-shard failure
	}, asMembers(fakes))
	rep := c.Rollout([]byte{1})

	if !rep.Aborted {
		t.Fatalf("breaker did not abort: %+v", rep)
	}
	if rep.Waves != 1 {
		t.Errorf("waves = %d, want 1 (canary round only)", rep.Waves)
	}
	if want := 2 * shards; rep.Attempted != want {
		t.Errorf("attempted = %d, want %d canaries", rep.Attempted, want)
	}
	if rep.TrippedShards != 0 {
		t.Errorf("per-shard gates tripped (%d) despite disabled threshold", rep.TrippedShards)
	}
	// Members beyond the canaries were never pushed.
	pushed := 0
	for _, f := range fakes {
		if f.pushes > 0 {
			pushed++
		}
	}
	if pushed != 2*shards {
		t.Errorf("%d members pushed, want %d", pushed, 2*shards)
	}
}

// TestBakeCatchesLateWedge: a member healthy at push time hangs before
// the next wave; the inter-wave bake reclassifies it as failed and
// remediates it back to its previous slot.
func TestBakeCatchesLateWedge(t *testing.T) {
	fakes := buildFakes(12)
	fakes[3].late = true
	c := NewFleetController(FleetConfig{
		Shards: 1, TargetSlot: 2, Canaries: 2, WaveSize: 4, Bake: true,
		MaxFailureFrac: 0.5,
	}, asMembers(fakes))
	rep := c.Rollout([]byte{1})

	if rep.BakeFailures != 1 {
		t.Fatalf("bake failures = %d, want 1 (report %+v)", rep.BakeFailures, rep)
	}
	if rep.BlastRadius != 1 || rep.Remediated != 1 || rep.BadEnd != 0 {
		t.Errorf("blast=%d remediated=%d badEnd=%d", rep.BlastRadius, rep.Remediated, rep.BadEnd)
	}
	if fakes[3].slot != 1 || !fakes[3].running {
		t.Errorf("late-wedged member: slot=%d running=%v, want restored to 1", fakes[3].slot, fakes[3].running)
	}
	if rep.Updated != 11 {
		t.Errorf("updated = %d, want 11", rep.Updated)
	}
}

// TestWedgeRemediation: a member that wedges on the target image (blast
// radius) is individually rebooted back even when the shard gate holds.
func TestWedgeRemediation(t *testing.T) {
	fakes := buildFakes(20)
	fakes[7].wedge = true
	c := NewFleetController(FleetConfig{
		Shards: 2, TargetSlot: 2, Canaries: 1, WaveSize: 0,
		MaxFailureFrac: 0.9,
	}, asMembers(fakes))
	rep := c.Rollout([]byte{1})

	if rep.BlastRadius != 1 || rep.Remediated != 1 || rep.BadEnd != 0 {
		t.Fatalf("blast=%d remediated=%d badEnd=%d", rep.BlastRadius, rep.Remediated, rep.BadEnd)
	}
	if rep.TrippedShards != 0 {
		t.Errorf("shard tripped under lenient gate")
	}
	if fakes[7].slot != 1 || !fakes[7].running {
		t.Errorf("wedged member: slot=%d running=%v", fakes[7].slot, fakes[7].running)
	}
}

func TestAggregateTelemetryHierarchy(t *testing.T) {
	fakes := buildFakes(64)
	c := NewFleetController(FleetConfig{Shards: 4, TargetSlot: 2}, asMembers(fakes))
	c.Rollout([]byte{1})

	snap, stats := c.AggregateTelemetry()
	if stats.MemberSnaps != 64 {
		t.Errorf("member snaps folded = %d, want 64", stats.MemberSnaps)
	}
	if stats.ShardFolds != 4 {
		t.Errorf("global merge touched %d folds, want exactly the shard count 4", stats.ShardFolds)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "pushes" {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	var want uint64
	for _, f := range fakes {
		want += uint64(f.pushes)
	}
	if snap.Counters[0].Value != want {
		t.Errorf("aggregated pushes = %d, want %d", snap.Counters[0].Value, want)
	}
}

// --- SimMember integration: chaos, invariants, determinism ---

var simKey = []byte("fleet-ota-key")

func simImage(t testing.TB, version uint32) []byte {
	t.Helper()
	bs := &bitstream.Bitstream{
		AppName: "nat", AppVersion: version, Device: "MPF200T",
		ClockKHz: 156_250, DatapathBits: 64,
		Payload: make([]byte, 256),
	}
	enc, err := bs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return bitstream.Sign(enc, simKey)
}

func chaosFleet(t testing.TB, n int, seed int64) ([]FleetMember, []byte) {
	t.Helper()
	parent := faults.New(seed, faults.Rates{ConnDrop: 0.02, Stall: 0.02})
	cfg := SimMemberConfig{
		Key:           simKey,
		Retry:         mgmt.RetryPolicy{MaxAttempts: 4, BaseBackoff: 1 << 20, MaxBackoff: 1 << 23},
		TamperProb:    0.01,
		PowerCutProb:  0.01,
		WedgeProb:     0.005,
		LateWedgeProb: 0.005,
	}
	old := simImage(t, 3)
	return BuildSimFleet(n, parent, cfg, 3, 1, old), simImage(t, 9)
}

// TestSimRolloutNoBadImages is the headline invariant under chaos: after
// a full rollout with transport faults, tampered images, power cuts and
// wedges, no member is left running an image that fails verification and
// none is left hung on the target.
func TestSimRolloutNoBadImages(t *testing.T) {
	members, img := chaosFleet(t, 2000, 42)
	c := NewFleetController(FleetConfig{
		Shards: 8, TargetSlot: 2, Canaries: 4, WaveSize: 32, Bake: true,
		MaxFailureFrac: 0.5, GlobalMaxFailureFrac: 0.8,
	}, members)
	rep := c.Rollout(img)

	if rep.Aborted || rep.TrippedShards != 0 {
		t.Fatalf("low-chaos rollout tripped/aborted: %+v", rep)
	}
	if rep.BadEnd != 0 {
		t.Fatalf("bad end = %d, want 0", rep.BadEnd)
	}
	if rep.Attempted != 2000 {
		t.Errorf("attempted = %d, want 2000", rep.Attempted)
	}
	for _, m := range members {
		sm := m.(*SimMember)
		if sm.OnBadImage() {
			t.Errorf("%s ends on an unverifiable image (slot %d)", sm.Name(), sm.ActiveSlot())
		}
		if sm.Wedged() {
			t.Errorf("%s left wedged", sm.Name())
		}
	}
	if rep.CostNs == 0 && c.cfg.WaveCost != nil {
		t.Error("cost accounting lost")
	}
}

// TestSimRolloutDeterministic: the whole fleet outcome — report, member
// retry counters, aggregated telemetry — is a pure function of the seed,
// byte-identical across runs despite 8 concurrent shard workers.
func TestSimRolloutDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		members, img := chaosFleet(t, 1000, 7)
		c := NewFleetController(FleetConfig{
			Shards: 8, TargetSlot: 2, Canaries: 4, WaveSize: 32, Bake: true,
			MaxFailureFrac: 0.5, GlobalMaxFailureFrac: 0.8,
			WaveCost: func(_ int, batch []FleetMember) uint64 {
				var maxNs uint64
				for _, m := range batch {
					if ns := m.(*SimMember).LastOpCostNs(); ns > maxNs {
						maxNs = ns
					}
				}
				return maxNs
			},
		}, members)
		rep := c.Rollout(img)
		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		snap, _ := c.AggregateTelemetry()
		snapJSON, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return repJSON, snapJSON
	}
	rep1, snap1 := run()
	rep2, snap2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("fleet report differs across identical runs:\n%s\n%s", rep1, rep2)
	}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Error("aggregated telemetry differs across identical runs")
	}
}

// TestSimPushBackoffDeterministic pins satellite 4's re-push path: the
// same derived lane replays the same retry schedule (attempt counts and
// accumulated backoff cost), because RetryPolicy.Backoff's jitter is a
// pure function of (request id, attempt).
func TestSimPushBackoffDeterministic(t *testing.T) {
	img := simImage(t, 9)
	mk := func() *SimMember {
		parent := faults.New(99, faults.Rates{ConnDrop: 0.4, Stall: 0.3})
		return NewSimMember("sim-x", parent.Derive(5), SimMemberConfig{
			Key:   simKey,
			Retry: mgmt.RetryPolicy{MaxAttempts: 6, BaseBackoff: 1 << 20, MaxBackoff: 1 << 24},
		}, 3, 1, simImage(t, 3))
	}
	a, b := mk(), mk()
	for i := 0; i < 20; i++ {
		errA := a.Push(img, 2, true)
		errB := b.Push(img, 2, true)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("push %d outcome diverged: %v vs %v", i, errA, errB)
		}
	}
	if a.retries != b.retries || a.pushes != b.pushes {
		t.Fatalf("retry schedule diverged: %d/%d attempts vs %d/%d",
			a.retries, a.pushes, b.retries, b.pushes)
	}
	if a.CostNs() != b.CostNs() {
		t.Fatalf("backoff cost diverged: %d vs %d", a.CostNs(), b.CostNs())
	}
	if a.retries == 0 {
		t.Fatal("test exercised no retries — raise the fault rates")
	}
}
