package netsim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(100, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(-5, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := New(1)
	s.Schedule(50, func() {
		s.ScheduleAt(10, func() {}) // in the past: clamp to now=50
	})
	s.Run()
	if s.Now() != 50 {
		t.Errorf("Now() = %v, want 50", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(10, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(20, func() { fired = true })
	s.Schedule(10, func() { e.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []Duration{5, 10, 15, 20} {
		d := d
		s.Schedule(d, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (at 5 and 10)", len(fired))
	}
	if s.Now() != 12 {
		t.Errorf("Now() = %v, want clock advanced to 12", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %d events, want 4", len(fired))
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(10, func() { fired = true })
	s.RunUntil(10)
	if !fired {
		t.Fatal("event exactly at boundary did not fire")
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	s.Schedule(100, func() {})
	s.RunFor(40)
	if s.Now() != 40 {
		t.Errorf("Now() = %v, want 40", s.Now())
	}
	s.RunFor(70)
	if s.Now() != 110 {
		t.Errorf("Now() = %v, want 110", s.Now())
	}
	if s.Fired() != 1 {
		t.Errorf("Fired() = %d, want 1", s.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.Schedule(1, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if s.Now() != 99 {
		t.Errorf("Now() = %v, want 99", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(10, func() bool {
		count++
		return count < 5
	})
	s.Run()
	if count != 5 {
		t.Errorf("ticker fired %d times, want 5", count)
	}
	if s.Now() != 50 {
		t.Errorf("Now() = %v, want 50", s.Now())
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	count := 0
	tk := s.Every(10, func() bool { count++; return true })
	s.Schedule(35, func() { tk.Stop() })
	s.RunUntil(1000)
	if count != 3 {
		t.Errorf("ticker fired %d times after Stop at t=35, want 3", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestDurationMath(t *testing.T) {
	if Second != 1e9 {
		t.Errorf("Second = %d ns, want 1e9", Second)
	}
	if got := (2 * Millisecond).Seconds(); got != 0.002 {
		t.Errorf("2ms = %v s, want 0.002", got)
	}
	tm := Time(0).Add(3 * Microsecond)
	if tm != 3000 {
		t.Errorf("Add = %v, want 3000", tm)
	}
	if d := Time(5000).Sub(Time(2000)); d != 3000 {
		t.Errorf("Sub = %v, want 3000", d)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(7)
		var fired []Time
		var max Duration
		for _, d := range delays {
			dd := Duration(d)
			if dd > max {
				max = dd
			}
			s.Schedule(dd, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == Time(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetachedSchedulingOrderAndRecycle(t *testing.T) {
	sim := New(1)
	var order []int
	sim.ScheduleDetached(30, func() { order = append(order, 3) })
	sim.ScheduleDetached(10, func() { order = append(order, 1) })
	sim.Schedule(20, func() { order = append(order, 2) })
	sim.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	// Recycled events must preserve FIFO among same-time events and keep
	// firing the right callbacks across many reuse generations.
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			sim.ScheduleDetached(1, chain)
		}
	}
	sim.ScheduleDetached(1, chain)
	sim.Run()
	if n != 1000 {
		t.Fatalf("chain fired %d times", n)
	}
}

func TestDetachedSameTimeFIFOWithRecycling(t *testing.T) {
	sim := New(1)
	// Populate the free list.
	for i := 0; i < 8; i++ {
		sim.ScheduleDetached(Duration(i), func() {})
	}
	sim.Run()
	// Same-time events scheduled from recycled objects must still fire in
	// scheduling order (seq is reassigned on reuse).
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		sim.ScheduleDetached(5, func() { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDetachedDoesNotRecycleHandles(t *testing.T) {
	sim := New(1)
	// A canceled handle event must stay canceled even if detached events
	// churn the free list around it.
	ev := sim.Schedule(50, func() { t.Fatal("canceled event fired") })
	for i := 0; i < 32; i++ {
		sim.ScheduleDetached(Duration(i), func() {})
	}
	ev.Cancel()
	sim.Run()
	if !ev.Canceled() {
		t.Fatal("handle lost cancellation")
	}
}

// TestCancelPooledDetached exercises Event.Cancel on an event scheduled
// through the pooled detached path. External callers hold no handle for
// detached events, but the internal schedule(t, fn, true) entry (used by
// ScheduleCompletionAt and the link/engine fast paths) does return one,
// and a cancellation there must neither fire the callback nor corrupt the
// free list for subsequent pooled scheduling.
func TestCancelPooledDetached(t *testing.T) {
	s := New(1)
	fired := false
	e := s.schedule(10, func() { fired = true }, true)
	e.Cancel()
	later := false
	s.ScheduleDetached(20, func() { later = true })
	s.Run()
	if fired {
		t.Fatal("canceled pooled event fired")
	}
	if !later {
		t.Fatal("pooled scheduling after a canceled pooled event did not fire")
	}
	if s.Fired() != 1 {
		t.Errorf("Fired() = %d, want 1 (cancellation must not count)", s.Fired())
	}
	// The pool keeps working: recycled events still fire in order.
	n := 0
	for i := 0; i < 4; i++ {
		s.ScheduleDetached(Duration(i+1), func() { n++ })
	}
	s.Run()
	if n != 4 {
		t.Errorf("post-cancel pooled events fired %d times, want 4", n)
	}
}

// TestRunUntilBoundaryDetached pins RunUntil's inclusive boundary for the
// pooled detached path and for ties exactly at the limit: all events at
// t == limit fire (in FIFO order), events after it stay pending, and the
// clock lands exactly on the limit.
func TestRunUntilBoundaryDetached(t *testing.T) {
	s := New(1)
	var order []int
	s.ScheduleAtDetached(10, func() { order = append(order, 1) })
	s.ScheduleAtDetached(10, func() { order = append(order, 2) })
	s.Schedule(10, func() { order = append(order, 3) })
	s.ScheduleAtDetached(11, func() { order = append(order, 4) })
	s.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("boundary events fired as %v, want [1 2 3]", order)
	}
	if s.Now() != 10 {
		t.Errorf("Now() = %v, want 10", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1 (event after boundary)", s.Pending())
	}
}

// TestTickerStopFromOwnCallback covers a ticker stopped from inside its
// own callback. Returning true after calling Stop must still honor the
// Stop — the ticker must not re-arm.
func TestTickerStopFromOwnCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(10, func() bool {
		count++
		if count == 2 {
			tk.Stop()
		}
		return true // deliberately "keep going" after Stop
	})
	s.RunUntil(1000)
	if count != 2 {
		t.Errorf("ticker fired %d times, want 2 (Stop from own callback)", count)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0 after self-stop", s.Pending())
	}
}
