package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func testDef(name string, hidden bool) Def {
	return Def{
		ID: name, Doc: "doc for " + name, Hidden: hidden,
		RunFn: func(ctx RunContext) (Result, error) {
			env := Envelope{Name: name, Params: ctx.Params()}
			return NewResult(env, func() string { return name + "\n" }), nil
		},
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	r.Register(testDef("b", false), testDef("a", false), testDef("c", true))
	if got := r.Names(); !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Fatalf("Names() = %v, want registration order", got)
	}
	if _, ok := r.Lookup("a"); !ok {
		t.Fatal("Lookup(a) missed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) hit")
	}
	if got := r.SortedNames(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SortedNames() = %v", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register(testDef("x", false))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register(testDef("x", false))
}

func TestRegistrySelect(t *testing.T) {
	r := NewRegistry()
	r.Register(testDef("table1", false), testDef("table2", false),
		testDef("power", false), testDef("faults", true))

	names := func(es []Experiment) []string {
		var out []string
		for _, e := range es {
			out = append(out, e.Name())
		}
		return out
	}

	// "all" skips hidden experiments...
	got, err := r.Select("all", false)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"table1", "table2", "power"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("Select(all) = %v, want %v", names(got), want)
	}
	// ...unless they are opted in...
	got, err = r.Select("all", true)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"table1", "table2", "power", "faults"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("Select(all, hidden) = %v, want %v", names(got), want)
	}
	// ...or named exactly.
	got, err = r.Select("faults,power", false)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"power", "faults"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("Select(faults,power) = %v, want %v (registration order)", names(got), want)
	}
	// Globs match and dedup against exact names.
	got, err = r.Select("table*,table1", false)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"table1", "table2"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("Select(table*) = %v, want %v", names(got), want)
	}
	// Unknown names and empty globs are errors.
	if _, err := r.Select("nope", false); err == nil {
		t.Error("Select(nope) did not fail")
	}
	if _, err := r.Select("z*", false); err == nil {
		t.Error("Select(z*) did not fail")
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry()
	r.Register(testDef("power", false), testDef("faults", true))
	out := r.List()
	if !strings.Contains(out, "power") || !strings.Contains(out, "doc for power") {
		t.Errorf("List() missing entries:\n%s", out)
	}
	if !strings.Contains(out, "[opt-in]") {
		t.Errorf("List() does not flag hidden experiments:\n%s", out)
	}
}

// TestCI95KnownValues pins the shared CI math the generic trial driver
// reports: mean, Bessel-corrected stddev, and the 1.96·σ/√n interval.
func TestCI95KnownValues(t *testing.T) {
	tr := Trials[float64]{Results: []float64{1, 2, 3, 4, 5}}
	s := tr.Metric(func(x float64) float64 { return x })
	if s.N != 5 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if want := math.Sqrt(2.5); math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5); math.Abs(s.CI95()-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}

	// Two symmetric samples: stddev √2, CI95 exactly 1.96.
	s2 := Trials[float64]{Results: []float64{2, 4}}.Metric(func(x float64) float64 { return x })
	if math.Abs(s2.CI95()-1.96) > 1e-12 {
		t.Errorf("CI95({2,4}) = %v, want 1.96", s2.CI95())
	}

	// Fewer than two samples: no interval.
	s1 := Trials[float64]{Results: []float64{7}}.Metric(func(x float64) float64 { return x })
	if s1.CI95() != 0 {
		t.Errorf("CI95({7}) = %v, want 0", s1.CI95())
	}
}

// TestRunTrialsDeterministic checks the driver is bit-identical across
// parallelism and that trial seeds are the documented pure function of
// (root seed, trial).
func TestRunTrialsDeterministic(t *testing.T) {
	run := func(par int) Trials[int64] {
		tr, err := RunTrials(RunContext{Seed: 42, Trials: 16, Parallelism: par},
			func(trial int, seed int64) (int64, error) { return seed, nil })
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("RunTrials differs across parallelism")
	}
	ctx := RunContext{Seed: 42}
	for i, seed := range serial.Results {
		if seed != ctx.TrialSeed(i) {
			t.Fatalf("trial %d seed = %d, want %d", i, seed, ctx.TrialSeed(i))
		}
	}
	if serial.N() != 16 || serial.First() != ctx.TrialSeed(0) {
		t.Fatalf("N/First = %d/%d", serial.N(), serial.First())
	}
}

// TestRunTrialsClampsTrials checks <=0 trials means one.
func TestRunTrialsClampsTrials(t *testing.T) {
	tr, err := RunTrials(RunContext{Seed: 1, Trials: 0},
		func(trial int, seed int64) (int, error) { return trial, nil })
	if err != nil || tr.N() != 1 {
		t.Fatalf("N = %d, err = %v; want 1 trial", tr.N(), err)
	}
}

func TestMetricVsPaper(t *testing.T) {
	m := Scalar("power", "W", 5.25).VsPaper(5.32)
	if m.Paper == nil || *m.Paper != 5.32 {
		t.Fatal("paper value not attached")
	}
	if m.Delta == nil || math.Abs(*m.Delta-(-0.07)) > 1e-12 {
		t.Fatalf("delta = %v", m.Delta)
	}
}

func TestRunContextDefaults(t *testing.T) {
	var ctx RunContext
	if ctx.EffectiveTrials() != 1 {
		t.Fatal("zero RunContext is not one trial")
	}
	ctx.Progressf("dropped silently") // nil sink must be safe
	if p := ctx.Params(); p.Trials != 1 || p.Seed != 0 {
		t.Fatalf("Params() = %+v", p)
	}
}
