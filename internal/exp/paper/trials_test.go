package paper

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestPowerExperimentTrials checks that the multi-seed power experiment
// agrees with the single-seed paper numbers and is bit-identical for any
// worker count (each trial's seed is a pure function of the root seed).
func TestPowerExperimentTrials(t *testing.T) {
	serial, err := PowerExperimentTrials(7, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PowerExperimentTrials(7, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("trials differ across worker counts:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	if serial.Trials != 3 || serial.NICOnlyW.N != 3 {
		t.Fatalf("trial count = %d/%d", serial.Trials, serial.NICOnlyW.N)
	}
	if math.Abs(serial.NICOnlyW.Mean-3.800) > 0.005 {
		t.Errorf("NIC-only mean = %.3f", serial.NICOnlyW.Mean)
	}
	if math.Abs(serial.WithFlexW.Mean-5.320) > 0.02 {
		t.Errorf("with-FlexSFP mean = %.3f", serial.WithFlexW.Mean)
	}
	if serial.Utilization.Min < 0.95 {
		t.Errorf("utilization min = %.2f under 2x overload", serial.Utilization.Min)
	}
	out := serial.Render()
	for _, want := range []string{"3 trials", "±", "NIC + FlexSFP"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestLineRateExperimentTrials checks the multi-seed sweep: per-point
// reduction over trials, line rate sustained in every trial, and
// parallelism-independence.
func TestLineRateExperimentTrials(t *testing.T) {
	serial, err := LineRateExperimentTrials(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LineRateExperimentTrials(3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("trials differ across worker counts")
	}
	if len(serial.Points) != 7 {
		t.Fatalf("points = %d", len(serial.Points))
	}
	for _, p := range serial.Points {
		if p.OfferedPPS.N != 2 {
			t.Errorf("%s: reduced over %d trials, want 2", p.Label, p.OfferedPPS.N)
		}
		if !p.LineRateAll {
			t.Errorf("%s: dropped frames at line rate", p.Label)
		}
		if p.DeliveredPPS.Mean < p.OfferedPPS.Mean*0.995 {
			t.Errorf("%s: delivered %.0f of %.0f pps", p.Label, p.DeliveredPPS.Mean, p.OfferedPPS.Mean)
		}
	}
	// 64B point ≈ 14.88 Mpps, as in the single-seed sweep.
	if p := serial.Points[0]; math.Abs(p.DeliveredPPS.Mean-14.88e6)/14.88e6 > 0.01 {
		t.Errorf("64B delivered = %.0f pps", p.DeliveredPPS.Mean)
	}
	if !strings.Contains(serial.Render(), "2 trials") {
		t.Error("render missing trial count")
	}
}

// TestReliabilityExperimentTrials checks the multi-seed fleet wrapper.
func TestReliabilityExperimentTrials(t *testing.T) {
	r := ReliabilityExperimentTrials(11, 4, 0)
	if r.Report.Trials != 4 || r.Report.Modules != 10000 {
		t.Fatalf("report = %d trials / %d modules", r.Report.Trials, r.Report.Modules)
	}
	if r.Report.Failures.Mean == 0 {
		t.Fatal("no failures in 10-year horizon")
	}
	if r.Report.Failures.Stddev == 0 {
		t.Error("independent seeds produced identical failure counts")
	}
	if frac := r.Report.DetectedEarly.Mean / r.Report.Failures.Mean; frac < 0.9 {
		t.Errorf("DDM early detection = %.2f", frac)
	}
	if r.Report.LaserRepairSavingFrac.Mean < 0.7 {
		t.Errorf("laser repair saving = %.2f", r.Report.LaserRepairSavingFrac.Mean)
	}
	out := r.Render()
	for _, want := range []string{"Trials", "±", "Laser-repair saving"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
