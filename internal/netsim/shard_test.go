package netsim

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringWorld builds a ring of `nodes` logical partitions over `shards`
// shards: node i forwards tokens to node (i+1)%nodes through a portal,
// holding each token for a node-local random delay drawn from the node's
// partition stream. It returns the per-node event logs after circulating
// three tokens for a fixed number of hops — the golden trace that must be
// byte-identical at every shard count.
func ringWorld(seed int64, shards, nodes, hops int) []string {
	sh := NewSharded(seed, shards)
	outs := make([]*Portal, nodes)
	logs := make([][]string, nodes)
	rngs := make([]*rand.Rand, nodes)
	for i := range rngs {
		rngs[i] = sh.Stream(i)
	}
	for i := 0; i < nodes; i++ {
		j := (i + 1) % nodes // the node this portal delivers to
		jj := j
		sim := sh.Shard(sh.ShardFor(jj))
		deliver := func(data []byte) {
			tok, hop := data[0], int(data[1])
			logs[jj] = append(logs[jj], fmt.Sprintf("n%d t%v tok%d hop%d", jj, sim.Now(), tok, hop))
			if hop >= hops {
				return
			}
			data[1]++
			hold := Duration(1 + rngs[jj].Intn(200))
			sim.ScheduleDetached(hold, func() { outs[jj].Send(data) })
		}
		outs[i] = sh.Connect(sh.ShardFor(i), sh.ShardFor(j), Duration(50+10*i), deliver)
	}
	for k := 0; k < 3; k++ {
		kk := k
		sim := sh.Shard(sh.ShardFor(kk))
		sim.ScheduleAtDetached(Time(kk+1), func() {
			outs[kk].Send([]byte{byte(kk), 0})
		})
	}
	sh.Run()
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return all
}

// TestShardedRingGoldenTrace is the determinism pin for the parallel
// core: the same seed must produce an identical event trace at every
// shard count, including the degenerate shards=1 case that runs the
// window loop serially.
func TestShardedRingGoldenTrace(t *testing.T) {
	const nodes, hops = 8, 40
	want := ringWorld(42, 1, nodes, hops)
	if len(want) == 0 {
		t.Fatal("reference run produced no events")
	}
	for _, shards := range []int{2, 4, 8} {
		got := ringWorld(42, shards, nodes, hops)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d diverges at event %d: got %q want %q", shards, i, got[i], want[i])
			}
		}
	}
	// And a different seed produces a different trace (the RNG streams are
	// actually live, not constant).
	other := ringWorld(43, 4, nodes, hops)
	same := len(other) == len(want)
	if same {
		for i := range want {
			if other[i] != want[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestShardedMergeOrderByPortalID pins the cross-shard tie-break: two
// messages arriving at the same destination shard at the same instant
// merge in portal-id (wiring) order, not send-call order.
func TestShardedMergeOrderByPortalID(t *testing.T) {
	sh := NewSharded(1, 3)
	var order []string
	pa := sh.Connect(2, 0, 100, func(data []byte) { order = append(order, "a") })
	pb := sh.Connect(1, 0, 100, func(data []byte) { order = append(order, "b") })
	// Send through the higher-id portal first; both arrive at t=100.
	pb.Send([]byte{1})
	pa.Send([]byte{2})
	sh.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("merge order = %v, want [a b] (portal-id order)", order)
	}
}

// TestShardedSpillOverflow pushes more messages through one portal in a
// single window than its SPSC ring holds; the overflow spills and must
// still deliver completely, in FIFO order.
func TestShardedSpillOverflow(t *testing.T) {
	const n = portalRingSize + 500
	sh := NewSharded(1, 2)
	next := 0
	p := sh.Connect(0, 1, 10, func(data []byte) {
		got := int(data[0])<<8 | int(data[1])
		if got != next {
			t.Fatalf("out-of-order delivery: got %d want %d", got, next)
		}
		next++
	})
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = []byte{byte(i >> 8), byte(i)}
	}
	sh.Shard(0).ScheduleAtDetached(1, func() {
		for i := 0; i < n; i++ {
			p.Send(bufs[i])
		}
	})
	sh.Run()
	if next != n {
		t.Fatalf("delivered %d messages, want %d", next, n)
	}
	if p.Sent() != n {
		t.Fatalf("Sent() = %d, want %d", p.Sent(), n)
	}
}

// TestShardedRunUntilAdvancesClocks checks the bounded run: every shard
// clock lands exactly on the limit, events past the limit stay pending,
// and a later Run picks them up.
func TestShardedRunUntilAdvancesClocks(t *testing.T) {
	sh := NewSharded(1, 4)
	// Per-shard counters: windows execute in parallel, and shard-local
	// state must stay shard-local (the model's own rule).
	var fired [4]int
	for i := 0; i < 4; i++ {
		i := i
		sh.Shard(i).ScheduleAtDetached(Time(100+i), func() { fired[i]++ })
		sh.Shard(i).ScheduleAtDetached(Time(5000), func() { fired[i]++ })
	}
	total := func() int { return fired[0] + fired[1] + fired[2] + fired[3] }
	sh.RunUntil(103)
	if total() != 4 {
		t.Fatalf("fired %d events by t=103, want 4", total())
	}
	for i := 0; i < 4; i++ {
		if now := sh.Shard(i).Now(); now != 103 {
			t.Errorf("shard %d clock = %v, want 103", i, now)
		}
	}
	if sh.Now() != 103 {
		t.Errorf("frontier = %v, want 103", sh.Now())
	}
	sh.Run()
	if total() != 8 {
		t.Errorf("fired %d events after full run, want 8", total())
	}
}

// TestShardedRunUntilBoundaryInclusive mirrors the single-simulator
// boundary contract: events exactly at the limit fire.
func TestShardedRunUntilBoundaryInclusive(t *testing.T) {
	sh := NewSharded(1, 2)
	fired := false
	p := sh.Connect(0, 1, 50, func(data []byte) { fired = true })
	sh.Shard(0).ScheduleAtDetached(50, func() { p.Send([]byte{1}) })
	sh.RunUntil(100) // arrival lands exactly at 100
	if !fired {
		t.Fatal("cross-shard arrival exactly at RunUntil boundary did not fire")
	}
}

// TestShardedAlignClocks: after uneven wiring-time activity, AlignClocks
// brings every shard to the common epoch.
func TestShardedAlignClocks(t *testing.T) {
	sh := NewSharded(1, 3)
	sh.Shard(1).RunUntil(700)
	sh.Shard(2).RunUntil(300)
	epoch := sh.AlignClocks()
	if epoch != 700 {
		t.Fatalf("epoch = %v, want 700", epoch)
	}
	for i := 0; i < 3; i++ {
		if now := sh.Shard(i).Now(); now != 700 {
			t.Errorf("shard %d clock = %v, want 700", i, now)
		}
	}
}

// TestShardedConnectValidation pins the lookahead precondition: a
// non-positive portal latency must panic (it would forbid any parallel
// progress), as must out-of-range shard indices.
func TestShardedConnectValidation(t *testing.T) {
	sh := NewSharded(1, 2)
	for _, c := range []struct {
		name     string
		src, dst int
		latency  Duration
	}{
		{"zero latency", 0, 1, 0},
		{"negative latency", 0, 1, -5},
		{"bad src", -1, 1, 10},
		{"bad dst", 0, 2, 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Connect did not panic", c.name)
				}
			}()
			sh.Connect(c.src, c.dst, c.latency, nil)
		}()
	}
}

// TestShardedConnectLink checks the cross-shard link: serialization time
// is charged on the source shard, the propagation delay rides the portal,
// and the frame arrives intact on the destination shard at exactly
// txDone + Prop.
func TestShardedConnectLink(t *testing.T) {
	sh := NewSharded(1, 2)
	var arrived Time
	var got []byte
	dst := sh.Shard(1)
	l := sh.ConnectLink(0, 1, tenGig, Microsecond, func(data []byte) {
		arrived = dst.Now()
		got = append([]byte(nil), data...)
	})
	frame := make([]byte, 1230) // 1250B incl. overhead = 1 µs on the wire
	frame[0] = 0xAB
	sh.Shard(0).ScheduleAtDetached(1, func() {
		if !l.Send(frame) {
			t.Error("send refused")
		}
	})
	sh.Run()
	want := Time(1).Add(Microsecond).Add(Microsecond) // send + serialize + prop
	if arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
	if len(got) != 1230 || got[0] != 0xAB {
		t.Fatalf("frame corrupted in transit: len %d first byte %#x", len(got), got[0])
	}
	if st := l.Stats(); st.TxFrames != 1 || st.TxBytes != 1230 {
		t.Errorf("stats = %+v, want 1 frame / 1230 bytes", st)
	}
}

// TestShardedStreamPlacementInvariant: a partition's stream depends only
// on (seed, partition) — not on shard count — and differs from every
// shard's ambient RNG.
func TestShardedStreamPlacementInvariant(t *testing.T) {
	a := NewSharded(42, 1)
	b := NewSharded(42, 8)
	for p := 0; p < 16; p++ {
		ra, rb := a.Stream(p), b.Stream(p)
		for i := 0; i < 8; i++ {
			if ra.Int63() != rb.Int63() {
				t.Fatalf("partition %d stream differs between shard counts", p)
			}
		}
	}
	if a.Stream(0).Int63() == a.Shard(0).Rand().Int63() {
		t.Fatal("partition stream collides with shard ambient RNG")
	}
}

// TestShardedRunZeroAlloc pins the steady-state sharded hot path: once
// pools and rings are warm, circulating a token across shards allocates
// only the small per-Run constant (worker goroutines and channels), not
// per-event or per-message garbage. 10k hops with a budget of 64 allocs
// bounds the per-event cost at well under 0.01 allocs.
func TestShardedRunZeroAlloc(t *testing.T) {
	sh := NewSharded(1, 2)
	var fwd, bwd *Portal
	hops := 0
	const perRun = 10_000
	fwd = sh.Connect(0, 1, 20, func(data []byte) {
		hops++
		if hops%perRun != 0 {
			bwd.Send(data)
		}
	})
	bwd = sh.Connect(1, 0, 20, func(data []byte) {
		hops++
		if hops%perRun != 0 {
			fwd.Send(data)
		}
	})
	token := []byte{1}
	if n := testing.AllocsPerRun(3, func() {
		fwd.Send(token)
		sh.Run()
	}); n > 64 {
		t.Fatalf("sharded run allocates %v per %d-hop run, want ≤ 64", n, perRun)
	}
}
