package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Registry is a named set of metrics plus an optional tracer. Metric
// creation and snapshotting take the registry mutex (management plane);
// the returned metric handles record lock-free, so nothing on the
// datapath ever touches the registry again after wiring.
type Registry struct {
	mu     sync.Mutex
	names  map[string]bool
	counts []*Counter
	gauges []*Gauge
	hists  []*Histogram
	funcs  []gaugeFunc
	tracer *Tracer
}

type gaugeFunc struct {
	name string
	fn   func() float64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) claim(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
}

// Counter creates and registers a counter. Duplicate names panic
// (wiring-time programming error).
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	c := &Counter{name: name}
	r.counts = append(r.counts, c)
	return c
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// GaugeFunc registers a gauge evaluated at snapshot time — the zero-
// hot-path-cost way to expose state something else already maintains
// (table occupancy, pending simulator events). fn must be safe to call
// from the snapshotting goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.funcs = append(r.funcs, gaugeFunc{name: name, fn: fn})
}

// Histogram creates and registers a fixed-bucket histogram; bounds are
// sorted inclusive upper bounds (an overflow bin is added).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	h := newHistogram(name, bounds)
	r.hists = append(r.hists, h)
	return h
}

// SetTracer attaches the registry's packet-trace ring (at most one).
func (r *Registry) SetTracer(t *Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = t
}

// Tracer returns the attached trace ring (nil if none).
func (r *Registry) Tracer() *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one histogram bin: counts of samples <= UpperBound (the
// overflow bin has UpperBound 0 and Overflow true).
type BucketSnap struct {
	UpperBound uint64 `json:"le,omitempty"`
	Overflow   bool   `json:"overflow,omitempty"`
	Count      uint64 `json:"count"`
}

// HistogramSnap is one histogram in a snapshot.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time readout of a registry, ordered by metric
// name so two snapshots of the same state serialize identically.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	// TraceSeen / TraceSampled summarize the attached tracer (0s if none).
	TraceSeen    uint64 `json:"trace_seen,omitempty"`
	TraceSampled uint64 `json:"trace_sampled,omitempty"`
}

// Snapshot reads every metric. Counters and histograms racing with
// recorders yield values that were each current at some instant during
// the call.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, c := range r.counts {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value()})
	}
	for _, f := range r.funcs {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: f.name, Value: f.fn()})
	}
	for _, h := range r.hists {
		hs := HistogramSnap{
			Name: h.name, Count: h.Count(), Sum: h.Sum(),
			Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
		}
		for i, b := range h.bounds {
			hs.Buckets = append(hs.Buckets, BucketSnap{UpperBound: b, Count: h.counts[i].Load()})
		}
		hs.Buckets = append(hs.Buckets, BucketSnap{Overflow: true, Count: h.counts[len(h.bounds)].Load()})
		s.Histograms = append(s.Histograms, hs)
	}
	sortSnapshot(&s)
	if r.tracer != nil {
		s.TraceSeen = r.tracer.Seen()
		s.TraceSampled = r.tracer.Sampled()
	}
	return s
}

// sortSnapshot orders every metric slice by name so two snapshots of the
// same state serialize identically (shared by Registry.Snapshot and
// Fold.Snapshot).
func sortSnapshot(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// Counter returns the snapshotted value of a named counter (0, false if
// absent) — the convenient read side for tests and envelope folding.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshotted value of a named gauge.
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the snapshot of a named histogram.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// MarshalJSONIndent renders the snapshot as the daemon's expvar-style
// metrics document.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
