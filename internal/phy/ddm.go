package phy

// DDM is an SFF-8472-style digital diagnostics snapshot: the five
// monitored quantities every SFP exposes, which the FlexSFP's control
// plane reads to distinguish laser degradation from driver malfunction
// (§5.3 "Failure Recovery").
type DDM struct {
	TemperatureC float64
	VccVolts     float64
	TxBiasMA     float64
	TxPowerDBm   float64
	RxPowerDBm   float64
}

// DDMThresholds holds alarm (hard fault) and warning (degrading) bounds.
type DDMThresholds struct {
	TempAlarmHighC     float64
	TempWarnHighC      float64
	VccAlarmLowV       float64
	TxBiasAlarmHighMA  float64
	TxBiasWarnHighMA   float64
	TxPowerAlarmLowDBm float64
	TxPowerWarnLowDBm  float64
	RxPowerAlarmLowDBm float64
}

// DefaultThresholds returns values typical of a 10GBASE-SR module.
func DefaultThresholds() DDMThresholds {
	return DDMThresholds{
		TempAlarmHighC:     78,
		TempWarnHighC:      70,
		VccAlarmLowV:       3.0,
		TxBiasAlarmHighMA:  13,
		TxBiasWarnHighMA:   10,
		TxPowerAlarmLowDBm: -7.0,
		TxPowerWarnLowDBm:  -5.0,
		RxPowerAlarmLowDBm: -13.0,
	}
}

// Alarm flags.
type DDMFlags uint16

// Flag bits.
const (
	FlagTempAlarm DDMFlags = 1 << iota
	FlagTempWarn
	FlagVccAlarm
	FlagTxBiasAlarm
	FlagTxBiasWarn
	FlagTxPowerAlarm
	FlagTxPowerWarn
	FlagRxPowerAlarm
)

// Evaluate compares a snapshot against thresholds.
func (t DDMThresholds) Evaluate(d DDM) DDMFlags {
	var f DDMFlags
	if d.TemperatureC >= t.TempAlarmHighC {
		f |= FlagTempAlarm
	} else if d.TemperatureC >= t.TempWarnHighC {
		f |= FlagTempWarn
	}
	if d.VccVolts <= t.VccAlarmLowV {
		f |= FlagVccAlarm
	}
	if d.TxBiasMA >= t.TxBiasAlarmHighMA {
		f |= FlagTxBiasAlarm
	} else if d.TxBiasMA >= t.TxBiasWarnHighMA {
		f |= FlagTxBiasWarn
	}
	if d.TxPowerDBm <= t.TxPowerAlarmLowDBm {
		f |= FlagTxPowerAlarm
	} else if d.TxPowerDBm <= t.TxPowerWarnLowDBm {
		f |= FlagTxPowerWarn
	}
	if d.RxPowerDBm <= t.RxPowerAlarmLowDBm {
		f |= FlagRxPowerAlarm
	}
	return f
}

// Fault is a diagnosis derived from DDM readings.
type Fault int

// Diagnoses the FlexSFP control plane can distinguish (§5.3: "the
// internal visibility … can expose … distinguishing between laser
// degradation and driver circuit malfunction").
const (
	FaultNone Fault = iota
	// FaultLaserDegrading: output power falling while the APC loop pushes
	// bias up — the lognormal wear-out signature; schedule replacement.
	FaultLaserDegrading
	// FaultLaserDead: no output power at nominal-or-higher bias.
	FaultLaserDead
	// FaultDriver: no/low bias current at all — the driver circuit, not
	// the VCSEL, has failed.
	FaultDriver
	// FaultRemoteOrFiber: local TX healthy but no RX power — the far end
	// or the fiber plant.
	FaultRemoteOrFiber
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "healthy"
	case FaultLaserDegrading:
		return "laser-degrading"
	case FaultLaserDead:
		return "laser-dead"
	case FaultDriver:
		return "driver-fault"
	case FaultRemoteOrFiber:
		return "remote-or-fiber"
	default:
		return "unknown"
	}
}

// Diagnose classifies a DDM snapshot. nominalBiasMA is the healthy drive
// current.
func Diagnose(d DDM, t DDMThresholds, nominalBiasMA float64) Fault {
	switch {
	case d.TxBiasMA < 0.5: // essentially no drive current
		return FaultDriver
	case d.TxPowerDBm <= t.TxPowerAlarmLowDBm && d.TxBiasMA >= nominalBiasMA:
		return FaultLaserDead
	case d.TxPowerDBm <= t.TxPowerWarnLowDBm || d.TxBiasMA >= t.TxBiasWarnHighMA:
		return FaultLaserDegrading
	case d.RxPowerDBm <= t.RxPowerAlarmLowDBm:
		return FaultRemoteOrFiber
	default:
		return FaultNone
	}
}
