package fpga

import (
	"testing"
	"testing/quick"
)

func TestResourcesAddScale(t *testing.T) {
	a := Resources{LUT4: 1, FF: 2, USRAM: 3, LSRAM: 4, Math: 5}
	b := Resources{LUT4: 10, FF: 20, USRAM: 30, LSRAM: 40, Math: 50}
	got := a.Add(b)
	want := Resources{LUT4: 11, FF: 22, USRAM: 33, LSRAM: 44, Math: 55}
	if got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if a.Scale(3) != (Resources{LUT4: 3, FF: 6, USRAM: 9, LSRAM: 12, Math: 15}) {
		t.Errorf("Scale = %v", a.Scale(3))
	}
}

func TestMemoryBits(t *testing.T) {
	r := Resources{USRAM: 2, LSRAM: 1}
	if got := r.MemoryBits(); got != 2*768+20480 {
		t.Errorf("MemoryBits = %d", got)
	}
}

func TestBlockSizing(t *testing.T) {
	// The paper's NAT table: 32,768 flows × 100 bits = 160 LSRAM blocks.
	if got := LSRAMBlocksFor(32768 * 100); got != 160 {
		t.Errorf("LSRAMBlocksFor(NAT table) = %d, want 160", got)
	}
	if got := USRAMBlocksFor(769); got != 2 {
		t.Errorf("USRAMBlocksFor(769) = %d, want 2", got)
	}
	if got := USRAMBlocksFor(0); got != 0 {
		t.Errorf("USRAMBlocksFor(0) = %d, want 0", got)
	}
	if got := LSRAMBlocksFor(-5); got != 0 {
		t.Errorf("LSRAMBlocksFor(-5) = %d, want 0", got)
	}
}

func TestMPF200TMatchesPaperAvailRow(t *testing.T) {
	// Table 1 "Avail." row: 192408 / 192408 / 1764 / 616.
	c := MPF200T.Capacity
	if c.LUT4 != 192408 || c.FF != 192408 || c.USRAM != 1764 || c.LSRAM != 616 {
		t.Errorf("MPF200T capacity = %v", c)
	}
	if MPF200T.BRAMKbits != 13300 {
		t.Errorf("BRAMKbits = %d, want 13300", MPF200T.BRAMKbits)
	}
	if MPF200T.ProcessNm != 28 {
		t.Errorf("ProcessNm = %d, want 28 (mature node per §5.3)", MPF200T.ProcessNm)
	}
}

func TestDeviceByName(t *testing.T) {
	d, err := DeviceByName("MPF200T")
	if err != nil || d.Name != "MPF200T" {
		t.Errorf("DeviceByName = %v, %v", d, err)
	}
	if _, err := DeviceByName("XC7K325T"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestUtilizationAndFit(t *testing.T) {
	// The paper's "Used" row: 31455 LUT / 25518 FF / 278 uSRAM / 164 LSRAM
	// → 16% / 13% / 15% / 26%.
	used := Resources{LUT4: 31455, FF: 25518, USRAM: 278, LSRAM: 164}
	u := MPF200T.Utilization(used)
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"LUT4", u.LUT4, 16}, {"FF", u.FF, 13}, {"uSRAM", u.USRAM, 15}, {"LSRAM", u.LSRAM, 26},
	}
	for _, c := range cases {
		// The paper truncates percentages (278/1764 = 15.8% prints as 15%).
		if int(c.got) != int(c.want) {
			t.Errorf("%s utilization = %.1f%%, want ≈%.0f%%", c.name, c.got, c.want)
		}
	}
	rep := MPF200T.Fit(used)
	if !rep.Fits {
		t.Error("NAT design should fit MPF200T")
	}
	if rep.Limiting != "LSRAM" {
		t.Errorf("limiting resource = %s, want LSRAM", rep.Limiting)
	}
}

func TestFitOverflow(t *testing.T) {
	huge := Resources{LUT4: 1 << 20}
	rep := MPF200T.Fit(huge)
	if rep.Fits {
		t.Error("oversized design reported as fitting")
	}
	if rep.Limiting != "LUT4" {
		t.Errorf("limiting = %s, want LUT4", rep.Limiting)
	}
}

func TestSmallestFitting(t *testing.T) {
	small := Resources{LUT4: 50000, FF: 40000, USRAM: 100, LSRAM: 100}
	d, err := SmallestFitting(small)
	if err != nil || d.Name != "MPF100T" {
		t.Errorf("SmallestFitting = %v, %v", d, err)
	}
	big := Resources{LUT4: 400000}
	d, err = SmallestFitting(big)
	if err != nil || d.Name != "MPF500T" {
		t.Errorf("SmallestFitting(big) = %v, %v", d, err)
	}
	if _, err := SmallestFitting(Resources{LUT4: 1 << 22}); err == nil {
		t.Error("impossible design got a device")
	}
}

func TestNormalizationFactors(t *testing.T) {
	// Table 2 conversions.
	cases := []struct {
		design string
		wantLE int // paper's ≈ value, thousands
	}{
		{"FlowBlaze (1 stage)", 115},
		{"Pigasus", 416},
		{"hXDP (1 core)", 109},
		{"ClickNP IPSec GW", 388},
	}
	designs := LiteratureDesigns()
	for i, c := range cases {
		le := designs[i].NormalizedLE()
		gotK := (le + 500) / 1000
		// The paper rounds its ≈ values inconsistently (truncation vs
		// rounding); accept ±1k.
		if gotK < c.wantLE-1 || gotK > c.wantLE+1 {
			t.Errorf("%s: normalized LE = %dk, want ≈%dk", c.design, gotK, c.wantLE)
		}
	}
}

func TestTable2FitVerdicts(t *testing.T) {
	// Who fits the MPF200T: only hXDP (1 core) fits both logic and BRAM.
	// FlowBlaze fits logic but not BRAM (14,148 kb > 13,300 kb).
	want := map[string]struct {
		fits     bool
		limiting string
	}{
		"FlowBlaze (1 stage)": {false, "BRAM"},
		"Pigasus":             {false, "logic+BRAM"},
		"hXDP (1 core)":       {true, ""},
		"ClickNP IPSec GW":    {false, "logic+BRAM"},
	}
	for _, d := range LiteratureDesigns() {
		w := want[d.Name]
		fits, limiting := d.FitsDevice(MPF200T)
		if fits != w.fits || limiting != w.limiting {
			t.Errorf("%s: fits=%v limiting=%q, want fits=%v limiting=%q",
				d.Name, fits, limiting, w.fits, w.limiting)
		}
	}
}

func TestTimingModelPaperOperatingPoints(t *testing.T) {
	// NAT design: 16% utilization (LUT-wise; LSRAM dominates at 26% but
	// congestion follows logic), 64-bit datapath → must close 156.25 MHz.
	if !MPF200T.ClockFeasible(156.25, 0.26, 64) {
		t.Error("NAT operating point infeasible")
	}
	// Two-Way-Core: double clock, same width → still feasible per §5.3.
	if !MPF200T.ClockFeasible(312.5, 0.26, 64) {
		t.Error("Two-Way-Core clock infeasible")
	}
	// A 512-bit datapath at 90% utilization cannot hit 400 MHz.
	if MPF200T.ClockFeasible(400, 0.9, 512) {
		t.Error("unrealistic operating point reported feasible")
	}
}

func TestAchievableClockMonotonicity(t *testing.T) {
	f := func(u1, u2 float64, w1, w2 uint16) bool {
		// Normalize inputs.
		a, b := abs01(u1), abs01(u2)
		if a > b {
			a, b = b, a
		}
		wa, wb := int(w1)%1024+64, int(w2)%1024+64
		if wa > wb {
			wa, wb = wb, wa
		}
		// More utilization or more width never increases the clock.
		return MPF200T.AchievableClockMHz(b, wa) <= MPF200T.AchievableClockMHz(a, wa)+1e-9 &&
			MPF200T.AchievableClockMHz(a, wb) <= MPF200T.AchievableClockMHz(a, wa)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs01(v float64) float64 {
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 10
	}
	return v
}

func TestFitsInProperty(t *testing.T) {
	f := func(a, b uint16, c, d, e uint8) bool {
		r := Resources{LUT4: int(a), FF: int(b), USRAM: int(c), LSRAM: int(d), Math: int(e)}
		// r always fits in r, and r+1LUT never fits in r.
		bigger := r.Add(Resources{LUT4: 1})
		return r.FitsIn(r) && !bigger.FitsIn(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
