// Package mgmt implements the FlexSFP embedded control plane of §4:
// a compact TLV request/response protocol served by the Mi-V management
// core, reachable both in-band (Ethernet control frames demuxed by the
// arbiter ahead of the PPE) and out-of-band (a real TCP listener, the
// "network-accessible control interface"). It covers runtime table and
// counter access with atomic updates, DDM reads, and the chunked,
// HMAC-authenticated over-the-network bitstream push that triggers the
// flash + reboot FSM.
package mgmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Protocol constants.
const (
	protoMagic0 = 'F'
	protoMagic1 = 'C'
	// ProtoVersion is the protocol version byte.
	ProtoVersion = 1
	headerSize   = 2 + 1 + 1 + 4 + 4
	// MaxBody bounds a single message body.
	MaxBody = 1 << 20
)

// MsgType identifies a request or response.
type MsgType uint8

// Message types.
const (
	MsgPing MsgType = iota + 1
	MsgOK
	MsgError
	MsgTableAdd
	MsgTableDel
	MsgTableGet
	MsgTableDump
	MsgTernaryAdd
	MsgTernaryClear
	MsgCounterRead
	MsgMeterSet
	MsgRegRead
	MsgRegWrite
	MsgStats
	MsgDDM
	MsgSlotList
	MsgXferBegin
	MsgXferChunk
	MsgXferCommit
	MsgReboot
	MsgEEPROM
	MsgXferStatus
	// MsgTelemetry requests the module's metric snapshot (response body is
	// the JSON-encoded telemetry.Snapshot). New types append here so wire
	// values stay stable across protocol revisions.
	MsgTelemetry
	// MsgTraceDump requests buffered packet-trace events (request body:
	// optional u32 cap on the number of most-recent events; response body:
	// JSON-encoded []telemetry.TraceEvent).
	MsgTraceDump
	// Overlay rendezvous ops: served by an overlay.Rendezvous rather
	// than a cable agent. A cable registers its overlay endpoint and
	// announced prefixes (MsgOverlayRegister → u64 table generation),
	// withdraws an endpoint by name (MsgOverlayWithdraw), and fetches
	// the fabric-wide peer/route table (MsgOverlayPeers → OverlayTable).
	MsgOverlayRegister
	MsgOverlayWithdraw
	MsgOverlayPeers
)

// Error codes carried in MsgError.
const (
	CodeUnknownType uint16 = iota + 1
	CodeBadBody
	CodeNoSuchObject
	CodeOpFailed
	CodeBadState
)

// Protocol errors.
var (
	ErrShortMessage = errors.New("mgmt: short message")
	ErrBadMagic     = errors.New("mgmt: bad magic")
	ErrBadVersion   = errors.New("mgmt: bad protocol version")
	ErrBodyTooBig   = errors.New("mgmt: body exceeds limit")
	ErrBadBody      = errors.New("mgmt: malformed body")
)

// Message is a decoded protocol message.
type Message struct {
	Type  MsgType
	ReqID uint32
	Body  []byte
}

// Encode serializes a message.
func (m Message) Encode() []byte {
	out := make([]byte, headerSize+len(m.Body))
	out[0], out[1] = protoMagic0, protoMagic1
	out[2] = ProtoVersion
	out[3] = uint8(m.Type)
	binary.BigEndian.PutUint32(out[4:8], m.ReqID)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(m.Body)))
	copy(out[headerSize:], m.Body)
	return out
}

// DecodeMessage parses one message from data.
func DecodeMessage(data []byte) (Message, error) {
	if len(data) < headerSize {
		return Message{}, ErrShortMessage
	}
	if data[0] != protoMagic0 || data[1] != protoMagic1 {
		return Message{}, ErrBadMagic
	}
	if data[2] != ProtoVersion {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, data[2])
	}
	blen := int(binary.BigEndian.Uint32(data[8:12]))
	if blen > MaxBody {
		return Message{}, ErrBodyTooBig
	}
	if len(data) < headerSize+blen {
		return Message{}, ErrShortMessage
	}
	return Message{
		Type:  MsgType(data[3]),
		ReqID: binary.BigEndian.Uint32(data[4:8]),
		Body:  data[headerSize : headerSize+blen],
	}, nil
}

// body writer/reader helpers -------------------------------------------

// bodyWriter builds TLV-ish bodies: fixed-width integers plus
// length-prefixed byte strings.
type bodyWriter struct{ b []byte }

func (w *bodyWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *bodyWriter) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *bodyWriter) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *bodyWriter) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *bodyWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *bodyWriter) bytes(v []byte) {
	w.u16(uint16(len(v)))
	w.b = append(w.b, v...)
}
func (w *bodyWriter) str(v string) { w.bytes([]byte(v)) }

type bodyReader struct {
	b   []byte
	err error
}

func (r *bodyReader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *bodyReader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *bodyReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *bodyReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *bodyReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *bodyReader) bytes() []byte {
	n := int(r.u16())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *bodyReader) str() string { return string(r.bytes()) }

func (r *bodyReader) fail() {
	if r.err == nil {
		r.err = ErrBadBody
	}
	r.b = nil
}

// errorBody encodes a MsgError body.
func errorBody(code uint16, text string) []byte {
	var w bodyWriter
	w.u16(code)
	w.str(text)
	return w.b
}

// ParseError decodes a MsgError body.
func ParseError(body []byte) (code uint16, text string, err error) {
	r := bodyReader{b: body}
	code = r.u16()
	text = r.str()
	return code, text, r.err
}
