package ppe

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Table errors.
var (
	ErrKeySize   = errors.New("ppe: key size does not match table spec")
	ErrValueSize = errors.New("ppe: value size does not match table spec")
	ErrTableFull = errors.New("ppe: table full")
	ErrNotFound  = errors.New("ppe: entry not found")
)

// Slot states. A slot moves empty→live on insert and live→dead on delete;
// dead slots (tombstones) keep their key so probe chains stay intact and
// the same key can be revived in place. Tombstones are shed by a bank
// rebuild when they would crowd the probe chains.
const (
	slotEmpty uint32 = iota
	slotLive
	slotDead
)

// tableBank is one published generation of the table: a fixed-geometry,
// power-of-two-bucketed open-addressing store with flat backing arrays,
// sized for the hardware shape (fixed key/value widths from the spec).
//
// Readers never block and never allocate. The publication protocol:
//
//   - Key bytes are write-once per slot and are published by the
//     release-store of state[s] = slotLive; readers only touch keys[s]
//     after an acquire-load of state[s] observes live/dead.
//   - Values live in an append-only arena. A published region is never
//     rewritten; updating a value bump-allocates a fresh region and
//     atomically swaps the slot's 1-based arena offset. Readers therefore
//     always see a complete, immutable value image.
//   - Structural growth (tombstone shedding, arena exhaustion) builds a
//     fresh bank and publishes it with one atomic pointer swap — the
//     shadowed table banks of the real hardware (§4.2).
type tableBank struct {
	mask      uint64
	keyLen    int
	valLen    int
	loadLimit int // max live+dead before a rebuild sheds tombstones

	state  []atomic.Uint32 // slotEmpty / slotLive / slotDead
	keys   []byte          // slots × keyLen, write-once per slot
	valOff []atomic.Uint64 // 1-based offset of the slot's value region
	hits   []atomic.Uint64 // per-entry datapath hit counters

	arena []byte // append-only value storage; published regions immutable
	used  int    // writer-only bump pointer
	live  int    // writer-only live-entry count
	dead  int    // writer-only tombstone count
}

func newTableBank(slots, keyLen, valLen, size int) *tableBank {
	b := &tableBank{
		mask:      uint64(slots - 1),
		keyLen:    keyLen,
		valLen:    valLen,
		loadLimit: slots - slots/4,
		state:     make([]atomic.Uint32, slots),
		keys:      make([]byte, slots*keyLen),
		valOff:    make([]atomic.Uint64, slots),
		hits:      make([]atomic.Uint64, slots),
	}
	if valLen > 0 {
		// Room for every entry plus replacement slack before the next
		// rebuild has to recompact the arena.
		b.arena = make([]byte, valLen*(2*size+8))
	}
	return b
}

func (b *tableBank) keyAt(s uint64) []byte {
	off := int(s) * b.keyLen
	return b.keys[off : off+b.keyLen : off+b.keyLen]
}

// valueAt returns the immutable value image of a slot whose offset has
// been published.
func (b *tableBank) valueAt(s uint64) []byte {
	if b.valLen == 0 {
		return nil
	}
	off := b.valOff[s].Load() - 1
	return b.arena[off : off+uint64(b.valLen) : off+uint64(b.valLen)]
}

// appendValue bump-allocates a value region and returns its 1-based
// offset; ok=false means the arena is exhausted and the bank must be
// rebuilt.
func (b *tableBank) appendValue(v []byte) (uint64, bool) {
	if b.valLen == 0 {
		return 1, true
	}
	if b.used+b.valLen > len(b.arena) {
		return 0, false
	}
	off := b.used
	copy(b.arena[off:off+b.valLen], v)
	b.used += b.valLen
	return uint64(off) + 1, true
}

// Table is an exact-match table with per-entry hit counters, shaped like
// the hardware it models: fixed key/value geometry, power-of-two bucket
// count, flat backing arrays. Updates are atomic with respect to lookups
// (§4.2: "APIs to read/write tables and counters with atomic, runtime
// updates at line rate"): control-plane Add/Delete publish under a writer
// mutex while datapath Lookup runs lock-free against the current bank and
// never blocks, mirroring the shadowed table banks of the real design.
type Table struct {
	Spec TableSpec

	keyLen int
	valLen int
	seed   uint64

	mu   sync.Mutex // serializes writers (Add/Delete/rebuild)
	bank atomic.Pointer[tableBank]

	count   atomic.Int64
	gen     atomic.Uint64
	lookups atomic.Uint64
	misses  atomic.Uint64
}

// NewTable builds an empty table from its spec.
func NewTable(spec TableSpec) *Table {
	keyLen := (spec.KeyBits + 7) / 8
	valLen := (spec.ValueBits + 7) / 8
	slots := 1
	for slots < 2*spec.Size {
		slots <<= 1
	}
	t := &Table{
		Spec:   spec,
		keyLen: keyLen,
		valLen: valLen,
		seed:   tableSeed(spec.Name),
	}
	t.bank.Store(newTableBank(slots, keyLen, valLen, spec.Size))
	return t
}

// tableSeed derives a deterministic per-table hash seed from the table
// name, so probe sequences are reproducible across runs while distinct
// tables hash differently.
func tableSeed(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	return h | 1
}

// hashKey is a seeded FNV-1a with a 64-bit avalanche finalizer; the low
// bits index the power-of-two bucket array.
func (t *Table) hashKey(key []byte) uint64 {
	h := t.seed
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// KeyBytes returns the exact key length in bytes.
func (t *Table) KeyBytes() int { return t.keyLen }

// ValueBytes returns the exact value length in bytes.
func (t *Table) ValueBytes() int { return t.valLen }

func (t *Table) checkSizes(key, value []byte) error {
	if len(key) != t.keyLen {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrKeySize, len(key), t.keyLen)
	}
	if value != nil && len(value) != t.valLen {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrValueSize, len(value), t.valLen)
	}
	return nil
}

func (t *Table) fullErr() error {
	return fmt.Errorf("%w: %q at %d entries", ErrTableFull, t.Spec.Name, t.Spec.Size)
}

// Add inserts or replaces an entry. Replacing an existing key is allowed
// even at capacity; a new key beyond Spec.Size fails with ErrTableFull.
func (t *Table) Add(key, value []byte) error {
	if err := t.checkSizes(key, value); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for attempt := 0; ; attempt++ {
		b := t.bank.Load()
		done, err := t.addInBank(b, key, value)
		if done {
			return err
		}
		if attempt > 0 {
			panic("ppe: table insert failed in a freshly rebuilt bank")
		}
		t.rebuildLocked(b)
	}
}

// addInBank attempts the insert against one bank. done=false means the
// bank ran out of arena or probe-chain room and must be rebuilt first.
func (t *Table) addInBank(b *tableBank, key, value []byte) (bool, error) {
	h := t.hashKey(key)
	slots := b.mask + 1
	firstEmpty := -1
	for i := uint64(0); i < slots; i++ {
		s := (h + i) & b.mask
		st := b.state[s].Load()
		if st == slotEmpty {
			firstEmpty = int(s)
			break
		}
		if !bytes.Equal(key, b.keyAt(s)) {
			continue
		}
		if st == slotLive {
			// Replace: publish a fresh immutable value region.
			off, ok := b.appendValue(value)
			if !ok {
				return false, nil
			}
			b.valOff[s].Store(off)
			t.gen.Add(1)
			return true, nil
		}
		// Tombstone holding the same key: revive in place. A revival is a
		// fresh insert for capacity accounting and hit counting.
		if b.live >= t.Spec.Size {
			return true, t.fullErr()
		}
		off, ok := b.appendValue(value)
		if !ok {
			return false, nil
		}
		b.hits[s].Store(0)
		b.valOff[s].Store(off)
		b.state[s].Store(slotLive)
		b.live++
		b.dead--
		t.count.Add(1)
		t.gen.Add(1)
		return true, nil
	}
	if b.live >= t.Spec.Size {
		return true, t.fullErr()
	}
	if firstEmpty < 0 || b.live+b.dead >= b.loadLimit {
		return false, nil // shed tombstones, then retry
	}
	off, ok := b.appendValue(value)
	if !ok {
		return false, nil
	}
	s := uint64(firstEmpty)
	// Write-once key bytes; the slotLive release-store below publishes
	// them to lock-free readers.
	copy(b.keyAt(s), key)
	b.valOff[s].Store(off)
	b.state[s].Store(slotLive)
	b.live++
	t.count.Add(1)
	t.gen.Add(1)
	return true, nil
}

// rebuildLocked builds a fresh bank containing only live entries (their
// hit counts carried over) and publishes it with one pointer swap.
// Readers racing the swap finish against the old bank, which stays
// valid and immutable forever.
func (t *Table) rebuildLocked(old *tableBank) {
	nb := newTableBank(int(old.mask+1), t.keyLen, t.valLen, t.Spec.Size)
	for s := uint64(0); s <= old.mask; s++ {
		if old.state[s].Load() != slotLive {
			continue
		}
		key := old.keyAt(s)
		off, ok := nb.appendValue(old.valueAt(s))
		if !ok {
			panic("ppe: rebuild arena undersized")
		}
		h := t.hashKey(key)
		for i := uint64(0); ; i++ {
			ns := (h + i) & nb.mask
			if nb.state[ns].Load() != slotEmpty {
				continue
			}
			copy(nb.keyAt(ns), key)
			nb.valOff[ns].Store(off)
			nb.hits[ns].Store(old.hits[s].Load())
			nb.state[ns].Store(slotLive)
			break
		}
	}
	nb.live = old.live
	t.bank.Store(nb)
}

// Delete removes an entry, leaving a tombstone in its probe slot.
func (t *Table) Delete(key []byte) error {
	if err := t.checkSizes(key, nil); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bank.Load()
	h := t.hashKey(key)
	slots := b.mask + 1
	for i := uint64(0); i < slots; i++ {
		s := (h + i) & b.mask
		st := b.state[s].Load()
		if st == slotEmpty {
			break
		}
		if st == slotLive && bytes.Equal(key, b.keyAt(s)) {
			b.state[s].Store(slotDead)
			b.live--
			b.dead++
			t.count.Add(-1)
			t.gen.Add(1)
			return nil
		}
	}
	return fmt.Errorf("%w: %x", ErrNotFound, key)
}

// Lookup returns the value for key, counting the hit or miss. It is the
// datapath read: lock-free, allocation-free, and never blocked by
// control-plane updates. The returned slice is an immutable published
// value image and must not be modified.
func (t *Table) Lookup(key []byte) ([]byte, bool) {
	t.lookups.Add(1)
	b := t.bank.Load()
	h := t.hashKey(key)
	slots := b.mask + 1
	for i := uint64(0); i < slots; i++ {
		s := (h + i) & b.mask
		st := b.state[s].Load()
		if st == slotEmpty {
			break
		}
		if st == slotLive && bytes.Equal(key, b.keyAt(s)) {
			b.hits[s].Add(1)
			return b.valueAt(s), true
		}
	}
	t.misses.Add(1)
	return nil, false
}

// Peek returns the value without touching counters (control-plane reads).
// Like Lookup it is lock-free and returns an immutable value image that
// stays valid even if the entry is concurrently replaced or deleted.
func (t *Table) Peek(key []byte) ([]byte, bool) {
	if len(key) != t.keyLen {
		return nil, false
	}
	b := t.bank.Load()
	h := t.hashKey(key)
	slots := b.mask + 1
	for i := uint64(0); i < slots; i++ {
		s := (h + i) & b.mask
		st := b.state[s].Load()
		if st == slotEmpty {
			break
		}
		if st == slotLive && bytes.Equal(key, b.keyAt(s)) {
			return b.valueAt(s), true
		}
	}
	return nil, false
}

// Len returns the current entry count.
func (t *Table) Len() int { return int(t.count.Load()) }

// Generation returns the update generation (incremented by Add/Delete).
func (t *Table) Generation() uint64 { return t.gen.Load() }

// Stats returns lookup/miss totals.
func (t *Table) Stats() (lookups, misses uint64) {
	return t.lookups.Load(), t.misses.Load()
}

// TableEntry is a snapshot row.
type TableEntry struct {
	Key   []byte
	Value []byte
	Hits  uint64
}

// Snapshot returns all entries sorted by key (control-plane table dump).
func (t *Table) Snapshot() []TableEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bank.Load()
	out := make([]TableEntry, 0, b.live)
	for s := uint64(0); s <= b.mask; s++ {
		if b.state[s].Load() != slotLive {
			continue
		}
		out = append(out, TableEntry{
			Key:   append([]byte(nil), b.keyAt(s)...),
			Value: append([]byte(nil), b.valueAt(s)...),
			Hits:  b.hits[s].Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out
}

// TernaryEntry is one masked entry: key matches when
// candidate&Mask == Value&Mask. Higher Priority wins.
type TernaryEntry struct {
	Value    []byte
	Mask     []byte
	Priority int
	Data     []byte // action data
	Hits     uint64
}

// ternaryEntry is the internal immutable form; only the hit counter
// mutates after insertion, and it is atomic so concurrent readers under
// RLock never write shared plain state.
type ternaryEntry struct {
	value    []byte
	mask     []byte
	priority int
	data     []byte
	hits     atomic.Uint64
}

// TernaryTable is a priority-ordered masked table (register-based TCAM).
// Lookups take only the read lock — entries are immutable and hit
// counters atomic — so concurrent fleet-sim shards never serialize on
// ACL matches; Add/Clear take the write lock.
type TernaryTable struct {
	Spec TableSpec

	mu      sync.RWMutex
	entries []*ternaryEntry
	gen     uint64
	lookups atomic.Uint64
	misses  atomic.Uint64
}

// NewTernaryTable builds an empty ternary table.
func NewTernaryTable(spec TableSpec) *TernaryTable {
	return &TernaryTable{Spec: spec}
}

// KeyBytes returns the key length in bytes.
func (t *TernaryTable) KeyBytes() int { return (t.Spec.KeyBits + 7) / 8 }

// Add inserts an entry. Entries are kept sorted by descending priority;
// equal priorities keep insertion order.
func (t *TernaryTable) Add(e TernaryEntry) error {
	if len(e.Value) != t.KeyBytes() || len(e.Mask) != t.KeyBytes() {
		return fmt.Errorf("%w: value/mask %d/%d bytes, want %d",
			ErrKeySize, len(e.Value), len(e.Mask), t.KeyBytes())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) >= t.Spec.Size {
		return fmt.Errorf("%w: %q at %d entries", ErrTableFull, t.Spec.Name, t.Spec.Size)
	}
	ne := &ternaryEntry{
		value:    append([]byte(nil), e.Value...),
		mask:     append([]byte(nil), e.Mask...),
		priority: e.Priority,
		data:     append([]byte(nil), e.Data...),
	}
	idx := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].priority < ne.priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[idx+1:], t.entries[idx:])
	t.entries[idx] = ne
	t.gen++
	return nil
}

// Clear removes all entries.
func (t *TernaryTable) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
	t.gen++
}

// Lookup returns the action data of the highest-priority matching entry.
func (t *TernaryTable) Lookup(key []byte) ([]byte, bool) {
	t.lookups.Add(1)
	t.mu.RLock()
	for _, e := range t.entries {
		if maskedEqual(key, e.value, e.mask) {
			e.hits.Add(1)
			data := e.data
			t.mu.RUnlock()
			return data, true
		}
	}
	t.mu.RUnlock()
	t.misses.Add(1)
	return nil, false
}

func maskedEqual(key, value, mask []byte) bool {
	if len(key) != len(value) {
		return false
	}
	for i := range key {
		if key[i]&mask[i] != value[i]&mask[i] {
			return false
		}
	}
	return true
}

// Len returns the entry count.
func (t *TernaryTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Stats returns lookup/miss totals.
func (t *TernaryTable) Stats() (lookups, misses uint64) {
	return t.lookups.Load(), t.misses.Load()
}

// Snapshot returns a copy of the entries in match order.
func (t *TernaryTable) Snapshot() []TernaryEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TernaryEntry, len(t.entries))
	for i, e := range t.entries {
		out[i] = TernaryEntry{
			Value:    append([]byte(nil), e.value...),
			Mask:     append([]byte(nil), e.mask...),
			Priority: e.priority,
			Data:     append([]byte(nil), e.data...),
			Hits:     e.hits.Load(),
		}
	}
	return out
}
