package apps

import (
	"encoding/json"
	"net/netip"
	"testing"

	"flexsfp/internal/hls"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

var (
	macHost = packet.MustMAC("02:00:00:00:00:01")
	macGW   = packet.MustMAC("02:00:00:00:00:02")
	ipInt   = netip.MustParseAddr("192.168.1.10")
	ipExt   = netip.MustParseAddr("203.0.113.10")
	ipSrv   = netip.MustParseAddr("198.51.100.5")
)

func udpFrame(t *testing.T, src, dst netip.Addr, sport, dport uint16) []byte {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP: src, DstIP: dst,
		SrcPort: sport, DstPort: dport,
		PadTo: 64,
	})
}

func run(h ppe.Handler, data []byte, dir ppe.Direction) (ppe.Verdict, []byte) {
	ctx := &ppe.Ctx{Data: data, Dir: dir, TimestampNs: 1000}
	v := h.HandlePacket(ctx)
	return v, ctx.Data
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// --- NAT -----------------------------------------------------------------

func TestNATTranslatesAndFixesChecksums(t *testing.T) {
	a := NewNAT()
	cfg := NATConfig{Mappings: []NATMapping{{Internal: ipInt.String(), External: ipExt.String()}}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	frame := udpFrame(t, ipInt, ipSrv, 5000, 80)
	v, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	if v != ppe.VerdictPass {
		t.Fatalf("verdict = %v", v)
	}
	pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	ip := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if ip.SrcIP != ipExt {
		t.Errorf("src = %v, want %v", ip.SrcIP, ipExt)
	}
	// Both checksums must still verify after the incremental update.
	var eth packet.Ethernet
	_ = eth.DecodeFromBytes(out)
	if !packet.VerifyIPv4Checksum(eth.LayerPayload()) {
		t.Error("IPv4 checksum broken by NAT")
	}
	s4, d4 := ip.SrcIP.As4(), ip.DstIP.As4()
	if packet.TransportChecksum(ip.LayerPayload(), s4[:], d4[:], packet.IPProtocolUDP) != 0 {
		t.Error("UDP checksum broken by NAT")
	}
	if pkts, _ := a.stats.Read(NATTranslated); pkts != 1 {
		t.Errorf("translated counter = %d", pkts)
	}
}

func TestNATTCPChecksum(t *testing.T) {
	a := NewNAT()
	if err := a.AddMapping(ipInt, ipExt); err != nil {
		t.Fatal(err)
	}
	frame := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		Proto: packet.IPProtocolTCP, SrcPort: 3333, DstPort: 443,
	})
	_, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	var eth packet.Ethernet
	var ip packet.IPv4
	_ = eth.DecodeFromBytes(out)
	_ = ip.DecodeFromBytes(eth.LayerPayload())
	s4, d4 := ip.SrcIP.As4(), ip.DstIP.As4()
	if packet.TransportChecksum(ip.LayerPayload(), s4[:], d4[:], packet.IPProtocolTCP) != 0 {
		t.Error("TCP checksum broken by NAT")
	}
}

func TestNATMissPassesUnchanged(t *testing.T) {
	a := NewNAT()
	frame := udpFrame(t, ipInt, ipSrv, 1, 2)
	want := append([]byte(nil), frame...)
	v, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	if v != ppe.VerdictPass {
		t.Fatalf("verdict = %v", v)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatal("miss modified the packet")
		}
	}
	if pkts, _ := a.stats.Read(NATMissPassed); pkts != 1 {
		t.Errorf("miss counter = %d", pkts)
	}
}

func TestNATDirectionFilter(t *testing.T) {
	a := NewNAT()
	cfg := NATConfig{
		Direction: "edge-to-optical",
		Mappings:  []NATMapping{{Internal: ipInt.String(), External: ipExt.String()}},
	}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	frame := udpFrame(t, ipInt, ipSrv, 1, 2)
	_, out := run(a.prog.Handler, frame, ppe.DirOpticalToEdge)
	pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
	if pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4).SrcIP != ipInt {
		t.Error("reverse-direction packet was translated")
	}
}

func TestNATConfigErrors(t *testing.T) {
	a := NewNAT()
	if err := a.Configure([]byte("{bad json")); err == nil {
		t.Error("bad JSON accepted")
	}
	cfg := NATConfig{Mappings: []NATMapping{{Internal: "2001:db8::1", External: "1.2.3.4"}}}
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("IPv6 mapping accepted")
	}
}

func TestNATProgramMatchesTable1(t *testing.T) {
	// The app's own declarative structure must synthesize to the paper's
	// Table 1 NAT row.
	r := hls.EstimateProgram(NewNAT().Program(), 64)
	if r.LSRAM != 160 || r.USRAM != 36 {
		t.Errorf("memory = %d LSRAM / %d uSRAM, want 160/36", r.LSRAM, r.USRAM)
	}
	if r.LUT4 < 9000 || r.LUT4 > 9250 {
		t.Errorf("LUT4 = %d, want ≈9122", r.LUT4)
	}
}

// --- ACL -----------------------------------------------------------------

func TestACLRules(t *testing.T) {
	a := NewACL()
	cfg := ACLConfig{
		Rules: []ACLRule{
			{SrcPrefix: "192.168.0.0/16", DstPort: 22, Proto: 6, Deny: true, Priority: 100},
			{SrcPrefix: "192.168.1.0/24", Priority: 50},
		},
		DefaultDeny: false,
	}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	ssh := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		Proto: packet.IPProtocolTCP, SrcPort: 40000, DstPort: 22,
	})
	if v, _ := run(a.prog.Handler, ssh, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Errorf("SSH verdict = %v, want drop", v)
	}
	web := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		Proto: packet.IPProtocolTCP, SrcPort: 40000, DstPort: 443,
	})
	if v, _ := run(a.prog.Handler, web, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Errorf("web verdict = %v, want pass", v)
	}
	denied, _ := a.verdicts.Read(ACLDenied)
	permitted, _ := a.verdicts.Read(ACLPermitted)
	if denied != 1 || permitted != 1 {
		t.Errorf("counters: denied=%d permitted=%d", denied, permitted)
	}
}

func TestACLDefaultDeny(t *testing.T) {
	a := NewACL()
	cfg := ACLConfig{DefaultDeny: true, Rules: []ACLRule{
		{DstPort: 53, Proto: 17, Priority: 10},
	}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	dns := udpFrame(t, ipInt, ipSrv, 5353, 53)
	if v, _ := run(a.prog.Handler, dns, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("allowed DNS dropped")
	}
	other := udpFrame(t, ipInt, ipSrv, 5353, 123)
	if v, _ := run(a.prog.Handler, other, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("default-deny passed NTP")
	}
}

func TestACLDropsGarbage(t *testing.T) {
	a := NewACL()
	if v, _ := run(a.prog.Handler, []byte{1, 2, 3}, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("unparseable frame passed the firewall")
	}
}

func TestACLBadConfig(t *testing.T) {
	a := NewACL()
	cfg := ACLConfig{Rules: []ACLRule{{SrcPrefix: "2001:db8::/32"}}}
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("IPv6 prefix accepted")
	}
	cfg = ACLConfig{Rules: []ACLRule{{SrcPrefix: "not-a-cidr"}}}
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("garbage prefix accepted")
	}
}

// --- VLAN ----------------------------------------------------------------

func TestVLANPushPop(t *testing.T) {
	a := NewVLAN()
	if err := a.Configure(mustJSON(t, VLANConfig{VLAN: 42, Priority: 3})); err != nil {
		t.Fatal(err)
	}
	frame := udpFrame(t, ipInt, ipSrv, 1, 2)
	origLen := len(frame)

	_, tagged := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	if len(tagged) != origLen+4 {
		t.Fatalf("tagged length = %d", len(tagged))
	}
	pkt := packet.NewPacket(tagged, packet.LayerTypeEthernet)
	tag := pkt.Layer(packet.LayerTypeDot1Q)
	if tag == nil {
		t.Fatal("no VLAN tag after push")
	}
	if d := tag.(*packet.Dot1Q); d.VLAN != 42 || d.Priority != 3 {
		t.Errorf("tag = %+v", d)
	}
	if pkt.Layer(packet.LayerTypeUDP) == nil {
		t.Error("payload corrupted by push")
	}

	_, popped := run(a.prog.Handler, tagged, ppe.DirOpticalToEdge)
	if len(popped) != origLen {
		t.Fatalf("popped length = %d, want %d", len(popped), origLen)
	}
	pkt = packet.NewPacket(popped, packet.LayerTypeEthernet)
	if pkt.Layer(packet.LayerTypeDot1Q) != nil {
		t.Error("tag still present after pop")
	}
}

func TestVLANPopOnlyMatchingVID(t *testing.T) {
	a := NewVLAN()
	if err := a.Configure(mustJSON(t, VLANConfig{VLAN: 42})); err != nil {
		t.Fatal(err)
	}
	frame := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, VLANs: []uint16{7},
		SrcIP: ipInt, DstIP: ipSrv, SrcPort: 1, DstPort: 2,
	})
	_, out := run(a.prog.Handler, frame, ppe.DirOpticalToEdge)
	pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
	if pkt.Layer(packet.LayerTypeDot1Q) == nil {
		t.Error("foreign VID popped")
	}
}

func TestVLANQinQ(t *testing.T) {
	a := NewVLAN()
	if err := a.Configure(mustJSON(t, VLANConfig{VLAN: 100, QinQ: true})); err != nil {
		t.Fatal(err)
	}
	inner := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, VLANs: []uint16{7},
		SrcIP: ipInt, DstIP: ipSrv, SrcPort: 1, DstPort: 2,
	})
	_, out := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if eth.EtherType != packet.EtherTypeQinQ {
		t.Errorf("outer EtherType = %#x, want QinQ", eth.EtherType)
	}
	pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
	var vids []uint16
	for _, l := range pkt.Layers() {
		if d, ok := l.(*packet.Dot1Q); ok {
			vids = append(vids, d.VLAN)
		}
	}
	if len(vids) != 2 || vids[0] != 100 || vids[1] != 7 {
		t.Errorf("vids = %v, want [100 7]", vids)
	}
}

func TestVLANConfigValidation(t *testing.T) {
	a := NewVLAN()
	if err := a.Configure(nil); err == nil {
		t.Error("missing config accepted")
	}
	if err := a.Configure(mustJSON(t, VLANConfig{VLAN: 4095})); err == nil {
		t.Error("reserved VID accepted")
	}
}

// --- Tunnel --------------------------------------------------------------

func tunnelConfig(mode string) TunnelConfig {
	return TunnelConfig{
		Mode:       mode,
		LocalIP:    "10.255.0.1",
		RemoteIP:   "10.255.0.2",
		LocalMAC:   "02:aa:aa:aa:aa:01",
		GatewayMAC: "02:aa:aa:aa:aa:02",
		VNI:        7777,
		GREKey:     99,
	}
}

func TestTunnelGRERoundTrip(t *testing.T) {
	a := NewTunnel()
	if err := a.Configure(mustJSON(t, tunnelConfig(TunnelGRE))); err != nil {
		t.Fatal(err)
	}
	inner := udpFrame(t, ipInt, ipSrv, 7, 8)
	_, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)

	pkt := packet.NewPacket(encapped, packet.LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	outer := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if outer.Protocol != packet.IPProtocolGRE || outer.DstIP.String() != "10.255.0.2" {
		t.Errorf("outer = %+v", outer)
	}
	gre := pkt.Layer(packet.LayerTypeGRE)
	if gre == nil || gre.(*packet.GRE).Key != 99 {
		t.Fatalf("gre = %+v", gre)
	}

	// Decap at the remote (same config, mirrored direction).
	b := NewTunnel()
	cfg := tunnelConfig(TunnelGRE)
	cfg.LocalIP, cfg.RemoteIP = cfg.RemoteIP, cfg.LocalIP
	if err := b.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	_, decapped := run(b.prog.Handler, encapped, ppe.DirOpticalToEdge)
	if len(decapped) != len(inner) {
		t.Fatalf("decapped %d bytes, want %d", len(decapped), len(inner))
	}
	for i := range inner {
		if decapped[i] != inner[i] {
			t.Fatal("inner frame corrupted through GRE")
		}
	}
}

func TestTunnelVXLANRoundTrip(t *testing.T) {
	a := NewTunnel()
	if err := a.Configure(mustJSON(t, tunnelConfig(TunnelVXLAN))); err != nil {
		t.Fatal(err)
	}
	inner := udpFrame(t, ipInt, ipSrv, 7, 8)
	_, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)
	pkt := packet.NewPacket(encapped, packet.LayerTypeEthernet)
	vx := pkt.Layer(packet.LayerTypeVXLAN)
	if vx == nil || vx.(*packet.VXLAN).VNI != 7777 {
		t.Fatalf("vxlan = %+v", vx)
	}
	udp := pkt.Layer(packet.LayerTypeUDP).(*packet.UDP)
	if udp.DstPort != packet.PortVXLAN || udp.SrcPort < 49152 {
		t.Errorf("udp ports = %d→%d", udp.SrcPort, udp.DstPort)
	}

	b := NewTunnel()
	cfg := tunnelConfig(TunnelVXLAN)
	cfg.LocalIP, cfg.RemoteIP = cfg.RemoteIP, cfg.LocalIP
	if err := b.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	_, decapped := run(b.prog.Handler, encapped, ppe.DirOpticalToEdge)
	for i := range inner {
		if decapped[i] != inner[i] {
			t.Fatal("inner frame corrupted through VXLAN")
		}
	}
}

func TestTunnelVXLANWrongVNIPasses(t *testing.T) {
	a := NewTunnel()
	if err := a.Configure(mustJSON(t, tunnelConfig(TunnelVXLAN))); err != nil {
		t.Fatal(err)
	}
	inner := udpFrame(t, ipInt, ipSrv, 7, 8)
	_, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)

	b := NewTunnel()
	cfg := tunnelConfig(TunnelVXLAN)
	cfg.LocalIP, cfg.RemoteIP = cfg.RemoteIP, cfg.LocalIP
	cfg.VNI = 1 // different tenant
	if err := b.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	_, out := run(b.prog.Handler, encapped, ppe.DirOpticalToEdge)
	if len(out) != len(encapped) {
		t.Error("foreign VNI was decapped")
	}
}

func TestTunnelIPIP(t *testing.T) {
	a := NewTunnel()
	if err := a.Configure(mustJSON(t, tunnelConfig(TunnelIPIP))); err != nil {
		t.Fatal(err)
	}
	inner := udpFrame(t, ipInt, ipSrv, 7, 8)
	_, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)
	pkt := packet.NewPacket(encapped, packet.LayerTypeEthernet)
	layers := pkt.Layers()
	// eth, outer IPv4, inner IPv4, UDP.
	nIPv4 := 0
	for _, l := range layers {
		if l.LayerType() == packet.LayerTypeIPv4 {
			nIPv4++
		}
	}
	if nIPv4 != 2 {
		t.Fatalf("IPv4 layers = %d, want 2", nIPv4)
	}
	if pkt.Layer(packet.LayerTypeUDP) == nil {
		t.Error("inner UDP lost")
	}
}

func TestTunnelConfigValidation(t *testing.T) {
	a := NewTunnel()
	cfg := tunnelConfig("wireguard")
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("unknown mode accepted")
	}
	cfg = tunnelConfig(TunnelGRE)
	cfg.LocalMAC = "zz"
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("bad MAC accepted")
	}
}

// --- LB ------------------------------------------------------------------

func lbConfig(n int) LBConfig {
	cfg := LBConfig{VIP: "203.0.113.100"}
	for i := 0; i < n; i++ {
		cfg.Backends = append(cfg.Backends, LBBackend{
			IP:  netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)}).String(),
			MAC: packet.MAC{0x02, 0xbb, 0, 0, 0, byte(i + 1)}.String(),
		})
	}
	return cfg
}

func TestLBSteersToBackends(t *testing.T) {
	a := NewLB()
	if err := a.Configure(mustJSON(t, lbConfig(4))); err != nil {
		t.Fatal(err)
	}
	vip := netip.MustParseAddr("203.0.113.100")
	seen := map[netip.Addr]int{}
	for i := 0; i < 400; i++ {
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: macHost, DstMAC: macGW,
			SrcIP: ipInt, DstIP: vip,
			Proto: packet.IPProtocolTCP, SrcPort: uint16(10000 + i), DstPort: 80,
		})
		v, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
		if v != ppe.VerdictPass {
			t.Fatalf("verdict = %v", v)
		}
		pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
		ip := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
		seen[ip.DstIP]++
		// Checksums stay valid.
		var eth packet.Ethernet
		_ = eth.DecodeFromBytes(out)
		if !packet.VerifyIPv4Checksum(eth.LayerPayload()) {
			t.Fatal("IPv4 checksum broken by LB")
		}
	}
	if len(seen) != 4 {
		t.Errorf("flows hit %d backends, want 4", len(seen))
	}
	for ip, c := range seen {
		if c < 40 {
			t.Errorf("backend %v got only %d of 400 flows", ip, c)
		}
	}
}

func TestLBFlowStickiness(t *testing.T) {
	a := NewLB()
	if err := a.Configure(mustJSON(t, lbConfig(8))); err != nil {
		t.Fatal(err)
	}
	vip := netip.MustParseAddr("203.0.113.100")
	var first netip.Addr
	for i := 0; i < 10; i++ {
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: macHost, DstMAC: macGW,
			SrcIP: ipInt, DstIP: vip,
			Proto: packet.IPProtocolTCP, SrcPort: 55555, DstPort: 80,
		})
		_, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
		pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
		dst := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4).DstIP
		if i == 0 {
			first = dst
		} else if dst != first {
			t.Fatal("same flow steered to different backends")
		}
	}
}

func TestLBIgnoresNonVIP(t *testing.T) {
	a := NewLB()
	if err := a.Configure(mustJSON(t, lbConfig(2))); err != nil {
		t.Fatal(err)
	}
	frame := udpFrame(t, ipInt, ipSrv, 1, 2)
	want := append([]byte(nil), frame...)
	_, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	for i := range want {
		if out[i] != want[i] {
			t.Fatal("non-VIP traffic modified")
		}
	}
	if p, _ := a.ctr.Read(LBPassed); p != 1 {
		t.Errorf("passed counter = %d", p)
	}
}

func TestLBConfigValidation(t *testing.T) {
	a := NewLB()
	if err := a.Configure(nil); err == nil {
		t.Error("empty config accepted")
	}
	cfg := lbConfig(1)
	cfg.VIP = "nope"
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("bad VIP accepted")
	}
	cfg = LBConfig{VIP: "1.2.3.4"}
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("zero backends accepted")
	}
}

func TestTunnelMTUGuard(t *testing.T) {
	a := NewTunnel()
	cfg := tunnelConfig(TunnelVXLAN)
	cfg.MTU = 1518
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	// A 1518-byte inner frame grows by 50 bytes of VXLAN overhead: the
	// result exceeds the egress MTU and must be dropped, counted.
	big := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		SrcPort: 1, DstPort: 2, PadTo: 1518,
	})
	if v, _ := run(a.prog.Handler, big, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("oversized encap passed")
	}
	if n, _ := a.ctr.Read(TunnelTooBig); n != 1 {
		t.Errorf("too-big counter = %d", n)
	}
	// A small frame still encapsulates.
	small := udpFrame(t, ipInt, ipSrv, 1, 2)
	if v, _ := run(a.prog.Handler, small, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("small frame dropped")
	}
}
