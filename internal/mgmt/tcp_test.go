package mgmt

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerTimesOutHungClient covers the slow-loris case: a client that
// opens a connection and trickles (or stops sending) a frame must not pin
// its serving goroutine forever — the read deadline closes it, and other
// clients keep getting served.
func TestServerTimesOutHungClient(t *testing.T) {
	_, a, _ := newAgentModule(t)
	srv := NewServer(a.Handle)
	srv.ReadTimeout = 100 * time.Millisecond
	srv.WriteTimeout = time.Second
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Half a length prefix, then silence.
	if _, err := raw.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the hung connection open")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the hung connection")
	}

	// The server is still healthy for well-behaved clients.
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := NewClient(tr).Ping(); err != nil {
		t.Fatalf("ping after hung client: %v", err)
	}
}

// TestTransportTimeoutDropsConnAndRedials covers the client side: a stalled
// request hits the per-request deadline, the connection is closed (framing
// would be desynchronized), and the next request transparently redials.
func TestTransportTimeoutDropsConnAndRedials(t *testing.T) {
	_, a, _ := newAgentModule(t)
	var first atomic.Bool
	first.Store(true)
	srv := NewServer(func(req []byte) []byte {
		if first.Swap(false) {
			time.Sleep(400 * time.Millisecond) // wedged agent, first request only
		}
		return a.Handle(req)
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := NewClient(tr)
	// RequestTimeout reaches the transport through SetRetryPolicy.
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, RequestTimeout: 80 * time.Millisecond})

	if _, err := c.Ping(); err == nil {
		t.Fatal("stalled request did not time out")
	}
	// Next request succeeds over a fresh connection.
	info, err := c.Ping()
	if err != nil {
		t.Fatalf("redial after timeout: %v", err)
	}
	if info.Name != "sfp-7" {
		t.Errorf("info = %+v", info)
	}
}

func TestTransportClosedDoesNotRedial(t *testing.T) {
	_, a, _ := newAgentModule(t)
	srv := NewServer(a.Handle)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(tr).Ping(); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, err := tr.Do([]byte{1}); err == nil {
		t.Error("Do succeeded on a closed transport")
	}
}
