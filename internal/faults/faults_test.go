package faults

import (
	"bytes"
	"errors"
	"testing"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/flash"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
)

func TestInjectorDeterminism(t *testing.T) {
	rates := Rates{ConnDrop: 0.3, Stall: 0.2, Corrupt: 0.1, FrameLoss: 0.4}
	a := New(42, rates)
	b := New(42, rates)
	for i := 0; i < 1000; i++ {
		if a.Roll(0.5) != b.Roll(0.5) {
			t.Fatalf("draw %d diverged between same-seed injectors", i)
		}
	}
	c := New(43, rates)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Roll(0.5) == c.Roll(0.5) {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical draw sequences")
	}
}

func TestScaledClamps(t *testing.T) {
	r := Rates{ConnDrop: 0.4, Stall: 0.6, Corrupt: 1.0, FrameLoss: 0}
	s := r.Scaled(3)
	if s.ConnDrop != 1 || s.Stall != 1 || s.Corrupt != 1 || s.FrameLoss != 0 {
		t.Errorf("Scaled(3) = %+v", s)
	}
	z := r.Scaled(0)
	if z != (Rates{}) {
		t.Errorf("Scaled(0) = %+v", z)
	}
}

func TestTransportPassthroughAtZeroRates(t *testing.T) {
	in := New(1, Rates{})
	calls := 0
	tr := in.WrapTransport(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		calls++
		return append([]byte("echo:"), req...), nil
	}))
	for i := 0; i < 100; i++ {
		resp, err := tr.Do([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, []byte{'e', 'c', 'h', 'o', ':', byte(i)}) {
			t.Fatalf("response corrupted with all rates zero: %x", resp)
		}
	}
	if calls != 100 || in.Stats().Total() != 0 {
		t.Errorf("calls=%d faults=%d", calls, in.Stats().Total())
	}
}

func TestTransportConnDropAmbiguity(t *testing.T) {
	in := New(7, Rates{ConnDrop: 1})
	landed := 0
	tr := in.WrapTransport(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		landed++
		return req, nil
	}))
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := tr.Do([]byte{1}); !errors.Is(err, ErrConnDropped) {
			t.Fatalf("err = %v, want ErrConnDropped", err)
		}
	}
	if got := in.Stats().ConnDrops; got != n {
		t.Errorf("ConnDrops = %d, want %d", got, n)
	}
	// Roughly half the dropped requests must still have reached the agent:
	// that ambiguity is what the resumable client exists for.
	if landed == 0 || landed == n {
		t.Errorf("landed = %d of %d; want a mix of lost-request and lost-response", landed, n)
	}
}

func TestTransportStallAndCorrupt(t *testing.T) {
	in := New(3, Rates{Stall: 1})
	tr := in.WrapTransport(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		t.Fatal("stalled request reached the inner transport")
		return nil, nil
	}))
	if _, err := tr.Do([]byte{1}); !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}

	in2 := New(3, Rates{Corrupt: 1})
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	tr2 := in2.WrapTransport(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		return append([]byte(nil), orig...), nil
	}))
	resp, err := tr2.Do([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resp, orig) {
		t.Error("response not corrupted at Corrupt=1")
	}
	diff := 0
	for i := range resp {
		for b := 0; b < 8; b++ {
			if (resp[i]^orig[i])>>uint(b)&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diff)
	}
	if in2.Stats().Corruptions != 1 {
		t.Errorf("Corruptions = %d", in2.Stats().Corruptions)
	}
}

func TestLoseFrame(t *testing.T) {
	in := New(5, Rates{FrameLoss: 1})
	if !in.LoseFrame() {
		t.Error("FrameLoss=1 kept the frame")
	}
	in2 := New(5, Rates{})
	if in2.LoseFrame() {
		t.Error("FrameLoss=0 dropped a frame")
	}
	if in.Stats().FrameLosses != 1 || in2.Stats().FrameLosses != 0 {
		t.Errorf("losses = %d / %d", in.Stats().FrameLosses, in2.Stats().FrameLosses)
	}
}

func TestPowerCutCorruptsSlot(t *testing.T) {
	dev := flash.New()
	addr, err := flash.SlotAddr(2)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0xFF, 0x00, 0x5A}, 4096)
	if _, err := dev.WriteBlob(addr, blob); err != nil {
		t.Fatal(err)
	}
	in := New(11, Rates{})
	if err := in.PowerCut(dev, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	got, _, err := dev.Read(addr, len(blob))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, blob) {
		t.Error("power cut left the slot intact")
	}
	// NOR power-cut corruption only clears bits; it never sets them.
	for i := range got {
		if got[i]&^blob[i] != 0 {
			t.Fatalf("byte %d gained bits: %02x -> %02x", i, blob[i], got[i])
		}
	}
	if in.Stats().PowerCuts != 1 {
		t.Errorf("PowerCuts = %d", in.Stats().PowerCuts)
	}
	if err := in.PowerCut(dev, 99, 0.5); err == nil {
		t.Error("power cut on a bogus slot succeeded")
	}
}

func TestBitRotFlipsBits(t *testing.T) {
	dev := flash.New()
	addr, _ := flash.SlotAddr(1)
	before, _, err := dev.Read(addr, flash.SlotSize)
	if err != nil {
		t.Fatal(err)
	}
	before = append([]byte(nil), before...)
	in := New(13, Rates{})
	if err := in.BitRot(dev, 1, 16); err != nil {
		t.Fatal(err)
	}
	after, _, err := dev.Read(addr, flash.SlotSize)
	if err != nil {
		t.Fatal(err)
	}
	// Rot is confined to the slot and flips at most the requested number
	// of bits (collisions can cancel, but something must change).
	flipped := 0
	for i := range after {
		for b := after[i] ^ before[i]; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped == 0 || flipped > 16 {
		t.Errorf("bit-rot flipped %d bits, want 1..16", flipped)
	}
	if in.Stats().BitRots != 1 {
		t.Errorf("BitRots = %d", in.Stats().BitRots)
	}
}

func TestFlapLinkDropsWhileDown(t *testing.T) {
	sim := netsim.New(1)
	delivered := 0
	link := netsim.NewLink(sim, 10_000_000_000, 0, func([]byte) { delivered++ })
	in := New(17, Rates{})
	in.FlapLink(sim, link, 100*netsim.Microsecond, 200*netsim.Microsecond)

	frame := make([]byte, 64)
	send := func() { link.Send(append([]byte(nil), frame...)) }
	sim.ScheduleDetached(50*netsim.Microsecond, send)  // before the flap
	sim.ScheduleDetached(150*netsim.Microsecond, send) // while down
	sim.ScheduleDetached(400*netsim.Microsecond, send) // after recovery
	sim.Run()

	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	st := link.Stats()
	if st.DownDrops != 1 || st.Flaps != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !link.Up() {
		t.Error("link still down after the flap window")
	}
	if in.Stats().LinkFlaps != 1 {
		t.Errorf("LinkFlaps = %d", in.Stats().LinkFlaps)
	}
}

func testSigned(t *testing.T, key []byte) []byte {
	t.Helper()
	bs := &bitstream.Bitstream{
		AppName: "nat", AppVersion: 3, Device: "MPF200T",
		ClockKHz: 156_250, DatapathBits: 64,
		Payload: bytes.Repeat([]byte{0xA5}, 256),
	}
	enc, err := bs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return bitstream.Sign(enc, key)
}

func TestTamperSignedModes(t *testing.T) {
	key := []byte("fleet-key")
	// The receiver-side pipeline, as core.InstallSigned runs it: verify
	// the HMAC, decode (magic/CRC), then check freshness against the
	// running version.
	check := func(signed []byte) error {
		body, err := bitstream.Verify(signed, key)
		if err != nil {
			return err
		}
		bs, err := bitstream.Decode(body)
		if err != nil {
			return err
		}
		return bs.VerifyFreshness(3)
	}
	good := testSigned(t, key)
	if err := check(good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	cases := []struct {
		name string
		mode TamperMode
		want error
	}{
		{"crc", TamperCRC, bitstream.ErrBadCRC},
		{"truncate", TamperTruncate, bitstream.ErrBadMAC},
		{"wrong-key", TamperWrongKey, bitstream.ErrBadMAC},
		{"stale", TamperStale, bitstream.ErrStaleVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := New(23, Rates{})
			bad := in.TamperSigned(good, key, tc.mode)
			if bytes.Equal(bad, good) {
				t.Fatal("tampering left the blob unchanged")
			}
			if err := check(bad); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			if in.Stats().Tampers != 1 {
				t.Errorf("Tampers = %d", in.Stats().Tampers)
			}
		})
	}
}
