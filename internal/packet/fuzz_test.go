package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoding arbitrary bytes must never panic, for any entry
// layer — the PPE parses hostile wire data.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	entries := []LayerType{
		LayerTypeEthernet, LayerTypeIPv4, LayerTypeIPv6, LayerTypeTCP,
		LayerTypeUDP, LayerTypeICMPv4, LayerTypeGRE, LayerTypeVXLAN,
		LayerTypeDNS, LayerTypeINT, LayerTypeDot1Q, LayerTypeMPLS, LayerTypeARP,
	}
	f := func(data []byte, pick uint8) bool {
		entry := entries[int(pick)%len(entries)]
		// Must not panic; errors are fine.
		pkt := NewPacket(data, entry)
		_ = pkt.Layers()
		_ = pkt.ErrorLayer()
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Robustness: truncating a valid packet at every byte offset must never
// panic and must either decode or error cleanly.
func TestTruncationAtEveryOffset(t *testing.T) {
	full := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		VLANs: []uint16{5},
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolTCP, SrcPort: 80, DstPort: 443,
		Payload: []byte("payload-bytes"),
	})
	for n := 0; n <= len(full); n++ {
		pkt := NewPacket(full[:n], LayerTypeEthernet)
		_ = pkt.Layers()
	}
}

// Robustness: bit-flipping a valid packet must never panic the parser.
func TestBitflipNeverPanics(t *testing.T) {
	full := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		SrcPort: 53, DstPort: 53, // routes into the DNS decoder
		Payload: []byte{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 'a', 0, 0, 1, 0, 1},
	})
	rng := rand.New(rand.NewSource(9))
	var eth Ethernet
	var ip IPv4
	var udp UDP
	var dns DNS
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp, &dns)
	var decoded []LayerType
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), full...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		}
		_ = p.DecodeLayers(mut, &decoded)
	}
}

// Robustness: the view-level DNS name decoder handles adversarial
// compression chains without unbounded work.
func TestDNSPointerChainsBounded(t *testing.T) {
	// Build a message with a long backward pointer chain.
	msg := []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	// 20 chained pointers, each pointing 2 bytes back.
	base := len(msg)
	msg = append(msg, 1, 'a', 0) // a real name at base
	for i := 0; i < 20; i++ {
		off := len(msg)
		_ = off
		prev := base
		if i > 0 {
			prev = len(msg) - 2
		}
		msg = append(msg, 0xc0|byte(prev>>8), byte(prev))
	}
	msg = append(msg, 0, 1, 0, 1)
	var d DNS
	// Either decodes or rejects — must return quickly either way.
	_ = d.DecodeFromBytes(msg)
}
