// Command flexsfp-bench regenerates every table and figure of the
// FlexSFP paper's evaluation and prints paper-versus-model reports.
//
// It is entirely data-driven over the internal/exp registry: every
// experiment the evaluation suite registers (internal/exp/paper) is
// addressable by name or glob and takes the same knob set — no
// per-experiment flag matrix.
//
// Usage:
//
//	flexsfp-bench                   # run everything
//	flexsfp-bench -list             # enumerate registered experiments
//	flexsfp-bench -run table1,power
//	flexsfp-bench -run 'table*'     # glob selection
//	flexsfp-bench -seed 42          # uniform across all experiments
//	flexsfp-bench -trials 8         # multi-seed runs with 95% CIs
//	flexsfp-bench -parallel 4       # bound the worker pool
//	flexsfp-bench -json             # machine-readable results blob
//	flexsfp-bench -faults           # include the fault-injection sweep
//	flexsfp-bench -faults -fault-rate 0.4
//	flexsfp-bench -clock 312500000 -width 128  # operating-point override
//	flexsfp-bench -telemetry -run linerate     # instrumented run
//	flexsfp-bench -shards 4 -run linerate      # parallel simulation core
//
// -telemetry opts experiments into in-cable instrumentation: modules run
// with the metric registry attached and headline counters (frames, mean
// PPE latency) are folded into the result envelopes. Off by default so
// canonical outputs stay byte-identical.
//
// -shards runs supporting experiments (linerate, reliability) on the
// conservatively-synchronized parallel simulation core: the topology is
// partitioned over N event heaps advanced together under lookahead
// synchronization. It is an execution-placement knob — results are
// byte-identical at any shard count, and it is deliberately absent from
// the JSON params echo.
//
// The "faults" chaos experiment is registered opt-in: it only joins
// wildcard selections ("all", globs) when -faults is given (it can also
// be requested by name with -run faults), keeping default outputs
// byte-identical to fault-free builds.
//
// Independent experiments run concurrently (bounded by -parallel, or
// GOMAXPROCS); output order is fixed regardless of completion order,
// and every random draw derives from -seed, so reports are identical
// for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"flexsfp/internal/exp"
	"flexsfp/internal/runner"

	_ "flexsfp/internal/exp/paper" // self-registers the evaluation suite
)

// jsonExperiment is one entry of the -json results blob: the historical
// {name, wall_ms, metrics} triple plus the typed envelope additions
// (params echo and headline summary metrics).
type jsonExperiment struct {
	Name    string       `json:"name"`
	WallMs  float64      `json:"wall_ms"`
	Params  exp.Params   `json:"params"`
	Summary []exp.Metric `json:"summary,omitempty"`
	Metrics any          `json:"metrics"`
}

// jsonReport is the top-level -json blob, stable enough to diff across
// runs (BENCH_*.json tracking).
type jsonReport struct {
	Seed        int64            `json:"seed"`
	Trials      int              `json:"trials"`
	Parallel    int              `json:"parallel"`
	WallMs      float64          `json:"wall_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	list := flag.Bool("list", false, "list registered experiments and exit")
	runList := flag.String("run", "all", "comma-separated experiment names or globs (see -list)")
	seed := flag.Int64("seed", 1, "root simulation seed, applied uniformly to every experiment")
	trials := flag.Int("trials", 1, "independent seeds per stochastic experiment (>1 reports mean ± 95% CI)")
	parallel := flag.Int("parallel", 0, "max concurrent workers (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON results blob instead of tables")
	withFaults := flag.Bool("faults", false, "include the opt-in fault-injection sweep in wildcard selections")
	faultRate := flag.Float64("fault-rate", 0.2, "max fault-rate multiplier swept by the faults experiment")
	clockHz := flag.Int64("clock", 0, "PPE clock override in Hz (0 = §5.1 baseline 156.25 MHz)")
	width := flag.Int("width", 0, "PPE datapath width override in bits (0 = §5.1 baseline 64)")
	withTelemetry := flag.Bool("telemetry", false, "instrument experiment modules and fold headline counters into results")
	shards := flag.Int("shards", 0, "partition supporting experiments over N parallel simulation shards (0 = single-heap)")
	fleetSize := flag.Int("fleet", 0, "simulated module count for the fleet_ota experiment (0 = its default)")
	fleetShards := flag.Int("fleet-shards", 0, "fleet controller worker shard count for fleet_ota (0 = its default)")
	optimize := flag.Bool("opt", false, "run the pipeline optimizer over every program experiments build")
	verbose := flag.Bool("v", false, "print experiment progress to stderr")
	flag.Parse()

	if *list {
		fmt.Print(exp.Default.List())
		return
	}

	chosen, err := exp.Default.Select(*runList, *withFaults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: %v\n", err)
		os.Exit(2)
	}
	if len(chosen) == 0 {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: no experiment matched -run=%s\n", *runList)
		os.Exit(2)
	}

	ctx := exp.RunContext{
		Seed:         *seed,
		Trials:       *trials,
		Parallelism:  *parallel,
		FaultRate:    *faultRate,
		ClockHz:      *clockHz,
		DatapathBits: *width,
		Telemetry:    *withTelemetry,
		Shards:       *shards,
		FleetSize:    *fleetSize,
		FleetShards:  *fleetShards,
		Optimize:     *optimize,
	}
	if *verbose {
		var mu sync.Mutex
		ctx.Progress = func(msg string) {
			mu.Lock()
			fmt.Fprintln(os.Stderr, "flexsfp-bench:", msg)
			mu.Unlock()
		}
	}

	// Run the selected experiments concurrently; each slot records its own
	// result and wall time, and output stays in registry order.
	results := make([]exp.Result, len(chosen))
	wallMs := make([]float64, len(chosen))
	jobs := make([]func() error, len(chosen))
	for i, e := range chosen {
		jobs[i] = func() error {
			ctx.Progressf("running %s", e.Name())
			start := time.Now()
			res, err := e.Run(ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", e.Name(), err)
			}
			results[i] = res
			wallMs[i] = float64(time.Since(start).Microseconds()) / 1000
			ctx.Progressf("finished %s (%.1f ms)", e.Name(), wallMs[i])
			return nil
		}
	}
	start := time.Now()
	if err := runner.Run(runner.Options{Parallelism: *parallel}, jobs...); err != nil {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		blob := jsonReport{
			Seed:     *seed,
			Trials:   *trials,
			Parallel: *parallel,
			WallMs:   float64(time.Since(start).Microseconds()) / 1000,
		}
		for i, res := range results {
			env := res.Envelope()
			blob.Experiments = append(blob.Experiments, jsonExperiment{
				Name:    env.Name,
				WallMs:  wallMs[i],
				Params:  env.Params,
				Summary: env.Metrics,
				Metrics: env.Detail,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(blob); err != nil {
			fmt.Fprintf(os.Stderr, "flexsfp-bench: encode: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, res := range results {
		fmt.Println(res.Render())
	}
}
