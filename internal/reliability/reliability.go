// Package reliability makes the §5.3 "Failure Recovery" discussion
// quantitative: VCSEL lasers wear out ahead of the electronics, with
// lognormally-distributed time-to-failure and gradual optical power
// degradation as the dominant mode. The fleet simulation measures how
// often DDM monitoring catches degradation before the link dies, and
// compares replacement economics: whole-module swaps (the only option
// for cheap SFPs) versus component-level laser replacement, which the
// FlexSFP's higher unit price justifies.
package reliability

import (
	"math"
	"math/rand"
	"sort"

	"flexsfp/internal/netsim"
	"flexsfp/internal/runner"
)

// VCSELModel is the lognormal wear-out model (per the OMEGA reliability
// assessment the paper cites).
type VCSELModel struct {
	// MedianYears is the median time to failure.
	MedianYears float64
	// Sigma is the lognormal shape parameter.
	Sigma float64
	// DegradationExponent shapes the power-loss ramp: degradation(t) =
	// (t/ttf)^k — slow early wear, then a steep final drop.
	DegradationExponent float64
}

// DefaultVCSEL returns parameters consistent with published VCSEL
// reliability studies: median TTF ≈ 12 years, σ ≈ 0.5.
func DefaultVCSEL() VCSELModel {
	return VCSELModel{MedianYears: 12, Sigma: 0.5, DegradationExponent: 4}
}

// SampleTTFYears draws one time-to-failure.
func (m VCSELModel) SampleTTFYears(rng *rand.Rand) float64 {
	return m.MedianYears * math.Exp(m.Sigma*rng.NormFloat64())
}

// DegradationAt returns the fractional optical power loss at age t for a
// part that fails (reaches full degradation) at ttf.
func (m VCSELModel) DegradationAt(t, ttf float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= ttf {
		return 1
	}
	return math.Pow(t/ttf, m.DegradationExponent)
}

// FleetConfig drives the fleet simulation.
type FleetConfig struct {
	Modules int
	Years   float64
	// InspectionIntervalYears is how often DDM telemetry is evaluated.
	InspectionIntervalYears float64
	// WarnDegradation is the degradation fraction at which DDM flags the
	// laser (≈2 dB power drop → 0.37).
	WarnDegradation float64
	// Replacement economics.
	StandardSFPUnitUSD  float64 // whole cheap module
	FlexSFPUnitUSD      float64 // whole FlexSFP
	LaserSubassemblyUSD float64 // component-level repair part
	RepairLaborUSD      float64 // per-intervention labor (same either way)
}

// DefaultFleet returns the paper-scale scenario: a metro operator with
// 10,000 ports over 10 years, quarterly telemetry sweeps.
func DefaultFleet() FleetConfig {
	return FleetConfig{
		Modules:                 10000,
		Years:                   10,
		InspectionIntervalYears: 0.25,
		WarnDegradation:         0.37,
		StandardSFPUnitUSD:      10,
		FlexSFPUnitUSD:          275,
		LaserSubassemblyUSD:     20,
		RepairLaborUSD:          30,
	}
}

// FleetReport summarizes a fleet run.
type FleetReport struct {
	Modules  int
	Failures int // lasers that reached end of life in the horizon
	// DetectedEarly is how many were flagged by a DDM sweep before the
	// link actually died (the §5.3 visibility advantage).
	DetectedEarly int
	// MTTFYears is the mean sampled TTF (including beyond-horizon parts).
	MTTFYears float64
	// P10 / P90 of sampled TTFs.
	P10Years, P90Years float64

	// Economics over the horizon (replacement costs only).
	StandardSwapCostUSD   float64 // cheap SFP: swap the module
	FlexModuleSwapCostUSD float64 // FlexSFP: swap the whole module
	FlexLaserRepairUSD    float64 // FlexSFP: replace the laser subassembly
	// LaserRepairSavingFrac is the fraction saved by component-level
	// repair versus whole-FlexSFP swaps.
	LaserRepairSavingFrac float64
}

// fleetShardSize is how many modules one worker simulates per shard.
// Each shard draws from its own RNG seeded by runner.TrialSeed(seed,
// shard), so the sample stream of module i depends only on (seed, i/
// fleetShardSize) and the merged report is identical for any worker
// count.
const fleetShardSize = 1024

// validConfig reports whether the fleet configuration is simulatable;
// invalid configurations yield a zero-value report instead of NaNs.
func validConfig(m VCSELModel, cfg FleetConfig) bool {
	return cfg.Modules > 0 && cfg.InspectionIntervalYears > 0 && m.DegradationExponent > 0
}

// fleetShard is one worker's partial result.
type fleetShard struct {
	failures int
	detected int
	sum      float64
	ttfs     []float64
}

// simShard simulates modules [lo, hi) of the fleet with a private RNG.
func simShard(rng *rand.Rand, n int, m VCSELModel, cfg FleetConfig) fleetShard {
	sh := fleetShard{ttfs: make([]float64, n)}
	for i := 0; i < n; i++ {
		ttf := m.SampleTTFYears(rng)
		sh.ttfs[i] = ttf
		sh.sum += ttf
		if ttf <= cfg.Years {
			sh.failures++
			// Was there an inspection between the warn point and death?
			warnAge := ttf * math.Pow(cfg.WarnDegradation, 1/m.DegradationExponent)
			firstSweepAfterWarn := math.Ceil(warnAge/cfg.InspectionIntervalYears) * cfg.InspectionIntervalYears
			if firstSweepAfterWarn < ttf {
				sh.detected++
			}
		}
	}
	return sh
}

// reduceShards merges per-shard results in shard order — a deterministic
// reduce, independent of which worker finished first.
func reduceShards(shards []fleetShard, cfg FleetConfig) FleetReport {
	rep := FleetReport{Modules: cfg.Modules}
	var sum float64
	all := make([]float64, 0, cfg.Modules)
	for _, sh := range shards {
		rep.Failures += sh.failures
		rep.DetectedEarly += sh.detected
		sum += sh.sum
		all = append(all, sh.ttfs...)
	}
	rep.MTTFYears = sum / float64(cfg.Modules)
	sort.Float64s(all)
	rep.P10Years = all[cfg.Modules/10]
	rep.P90Years = all[cfg.Modules*9/10]

	f := float64(rep.Failures)
	rep.StandardSwapCostUSD = f * (cfg.StandardSFPUnitUSD + cfg.RepairLaborUSD)
	rep.FlexModuleSwapCostUSD = f * (cfg.FlexSFPUnitUSD + cfg.RepairLaborUSD)
	rep.FlexLaserRepairUSD = f * (cfg.LaserSubassemblyUSD + cfg.RepairLaborUSD)
	if rep.FlexModuleSwapCostUSD > 0 {
		rep.LaserRepairSavingFrac = 1 - rep.FlexLaserRepairUSD/rep.FlexModuleSwapCostUSD
	}
	return rep
}

func shardCount(modules int) int {
	return (modules + fleetShardSize - 1) / fleetShardSize
}

func shardLen(shard, modules int) int {
	n := fleetShardSize
	if hi := (shard + 1) * fleetShardSize; hi > modules {
		n = modules - shard*fleetShardSize
	}
	return n
}

// RunFleet simulates the fleet deterministically for a seed, sharding the
// module population across all available cores. The report is
// bit-identical for any GOMAXPROCS and matches RunFleetSerial.
func RunFleet(seed int64, m VCSELModel, cfg FleetConfig) FleetReport {
	return RunFleetParallel(seed, m, cfg, 0)
}

// RunFleetParallel is RunFleet with an explicit worker bound (0 =
// GOMAXPROCS).
func RunFleetParallel(seed int64, m VCSELModel, cfg FleetConfig, parallelism int) FleetReport {
	if !validConfig(m, cfg) {
		return FleetReport{}
	}
	shards, _ := runner.Map(shardCount(cfg.Modules),
		runner.Options{Seed: seed, Parallelism: parallelism},
		func(shard int, rng *rand.Rand) (fleetShard, error) {
			return simShard(rng, shardLen(shard, cfg.Modules), m, cfg), nil
		})
	return reduceShards(shards, cfg)
}

// RunFleetSharded runs the fleet on the parallel simulation core: each
// partition of fleetShardSize modules becomes one detached event on its
// home shard of a netsim.Sharded world, and the shards execute the
// partitions wall-clock-parallel under the conservative window loop. The
// partitions are seeded exactly like RunFleet's workers —
// runner.TrialRand(seed, partition) — and merged in partition order, so
// the report is bit-identical to RunFleet and RunFleetSerial at any shard
// count. shards <= 1 collapses to the serial reference.
func RunFleetSharded(seed int64, m VCSELModel, cfg FleetConfig, shards int) FleetReport {
	if !validConfig(m, cfg) {
		return FleetReport{}
	}
	if shards <= 1 {
		return RunFleetSerial(seed, m, cfg)
	}
	sh := netsim.NewSharded(seed, shards)
	parts := make([]fleetShard, shardCount(cfg.Modules))
	for p := range parts {
		p := p
		// One simulated nanosecond per partition index spaces the events so
		// the window loop has a defined global order; partitions on the
		// same shard execute back to back.
		sh.Shard(sh.ShardFor(p)).ScheduleAtDetached(netsim.Time(p+1), func() {
			parts[p] = simShard(runner.TrialRand(seed, p), shardLen(p, cfg.Modules), m, cfg)
		})
	}
	sh.Run()
	return reduceShards(parts, cfg)
}

// RunFleetSerial is the single-loop reference implementation: same
// per-shard seeding, executed on the calling goroutine with no pool. It
// exists to pin the sharded path's semantics (RunFleet must match it
// exactly) and as the baseline for the fleet speedup benchmark.
func RunFleetSerial(seed int64, m VCSELModel, cfg FleetConfig) FleetReport {
	if !validConfig(m, cfg) {
		return FleetReport{}
	}
	shards := make([]fleetShard, shardCount(cfg.Modules))
	for shard := range shards {
		rng := runner.TrialRand(seed, shard)
		shards[shard] = simShard(rng, shardLen(shard, cfg.Modules), m, cfg)
	}
	return reduceShards(shards, cfg)
}

// FleetTrialsReport aggregates RunFleet over many independent seeds:
// every headline metric becomes a mean ± stddev with a 95% CI, which is
// what the multi-trial evaluation reports instead of single-seed point
// estimates.
type FleetTrialsReport struct {
	Trials  int
	Modules int

	Failures      runner.Summary
	DetectedEarly runner.Summary
	MTTFYears     runner.Summary
	P10Years      runner.Summary
	P90Years      runner.Summary

	StandardSwapCostUSD   runner.Summary
	FlexModuleSwapCostUSD runner.Summary
	FlexLaserRepairUSD    runner.Summary
	LaserRepairSavingFrac runner.Summary
}

// RunFleetTrials runs the fleet simulation for `trials` independent seeds
// derived from rootSeed (trial t uses runner.TrialSeed(rootSeed, t)) with
// trials spread across workers, and reduces to cross-trial statistics.
// Each trial's fleet runs serially inside its worker — parallelism comes
// from the trial fan-out, so nested pools never oversubscribe.
func RunFleetTrials(rootSeed int64, trials int, m VCSELModel, cfg FleetConfig, parallelism int) FleetTrialsReport {
	if trials <= 0 || !validConfig(m, cfg) {
		return FleetTrialsReport{}
	}
	reports, _ := runner.Map(trials,
		runner.Options{Seed: rootSeed, Parallelism: parallelism},
		func(trial int, _ *rand.Rand) (FleetReport, error) {
			return RunFleetSerial(runner.TrialSeed(rootSeed, trial), m, cfg), nil
		})
	rep := FleetTrialsReport{Trials: trials, Modules: cfg.Modules}
	rep.Failures = runner.Collect(reports, func(r FleetReport) float64 { return float64(r.Failures) })
	rep.DetectedEarly = runner.Collect(reports, func(r FleetReport) float64 { return float64(r.DetectedEarly) })
	rep.MTTFYears = runner.Collect(reports, func(r FleetReport) float64 { return r.MTTFYears })
	rep.P10Years = runner.Collect(reports, func(r FleetReport) float64 { return r.P10Years })
	rep.P90Years = runner.Collect(reports, func(r FleetReport) float64 { return r.P90Years })
	rep.StandardSwapCostUSD = runner.Collect(reports, func(r FleetReport) float64 { return r.StandardSwapCostUSD })
	rep.FlexModuleSwapCostUSD = runner.Collect(reports, func(r FleetReport) float64 { return r.FlexModuleSwapCostUSD })
	rep.FlexLaserRepairUSD = runner.Collect(reports, func(r FleetReport) float64 { return r.FlexLaserRepairUSD })
	rep.LaserRepairSavingFrac = runner.Collect(reports, func(r FleetReport) float64 { return r.LaserRepairSavingFrac })
	return rep
}

// ComponentRepairViable captures the §5.3 argument: component-level
// replacement makes sense when the repair part + labor costs materially
// less than the module; for a $10 SFP it never does, for a $275 FlexSFP
// it does.
func ComponentRepairViable(moduleUSD, partUSD, laborUSD float64) bool {
	return partUSD+laborUSD < 0.5*moduleUSD
}
