package overlay

import (
	"fmt"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// FabricSpec describes a tunnel fabric of N mesh cables on a shared
// sharded world. Base is the logical partition index of cable 0 — one
// Sharded can host several independent fabrics side by side.
type FabricSpec struct {
	Sh     *netsim.Sharded
	Cables int
	Base   int
	// Prefixes returns cable i's announced prefixes. Defaults to a
	// single primary /24, 10.200.(i+1).0/24.
	Prefixes func(i int) []mgmt.OverlayPrefix
	// Mode returns cable i's receive-side encap mode. Defaults to
	// alternating GRE / VXLAN so both datapaths are always exercised.
	Mode func(i int) uint8
	// Underlay link parameters. LinkBps defaults to 10G, LinkProp to
	// 500ns, QueueLimit to 64 (it must stay well under the datapath
	// frame ring, since a queued frame pins its ring cell).
	LinkBps    int64
	LinkProp   netsim.Duration
	QueueLimit int
	// EdgeSink receives cable i's decapsulated edge-bound frames. It
	// runs on cable i's shard goroutine: per-cable state only.
	EdgeSink func(i int, data []byte)
}

// Cable is one fabric member: the built module, its control plane, and
// its underlay links toward every other cable.
type Cable struct {
	Index    int
	Name     string
	Sim      *netsim.Simulator
	Mod      *core.Module
	Agent    *mgmt.Agent
	Ctl      *Controller
	Endpoint mgmt.OverlayEndpoint
	// Links[j] carries this cable's encapsulated frames to cable j
	// (nil at j == Index).
	Links []*netsim.Link
	// NoLinkDrops counts optical frames whose outer destination matched
	// no fabric underlay address. Written only on this cable's shard.
	NoLinkDrops uint64

	ring *fabricRing
	view packet.View
}

// Fabric is a rendezvous plus its member cables, fully wired.
type Fabric struct {
	Rdv    *Rendezvous
	Cables []*Cable
}

// CableIP returns the underlay tunnel address of fabric cable i.
func CableIP(i int) [4]byte { return [4]byte{10, 254, 0, byte(i + 1)} }

// CableMAC returns the underlay MAC of fabric cable i.
func CableMAC(i int) [6]byte { return [6]byte{0x02, 0xcc, 0, 0, 0, byte(i + 1)} }

// DefaultPrefix returns cable i's default announced /24.
func DefaultPrefix(i int) mgmt.OverlayPrefix {
	return mgmt.OverlayPrefix{IP: [4]byte{10, 200, byte(i + 1), 0}, Len: 24}
}

func modeName(m uint8) string {
	if m == apps.MeshModeVXLAN {
		return apps.TunnelVXLAN
	}
	return apps.TunnelGRE
}

// NewFabric builds the cables and the full-mesh underlay. All wiring —
// module construction order, link creation order (i-major, then j),
// portal ids — is a pure function of the spec, independent of shard
// count, which is what keeps the overlay experiments byte-identical
// under any parallelism.
func NewFabric(spec FabricSpec) (*Fabric, error) {
	if spec.Cables < 2 {
		return nil, fmt.Errorf("overlay: a fabric needs at least 2 cables, got %d", spec.Cables)
	}
	if spec.LinkBps == 0 {
		spec.LinkBps = 10_000_000_000
	}
	if spec.LinkProp == 0 {
		spec.LinkProp = 500 * netsim.Nanosecond
	}
	if spec.QueueLimit == 0 {
		spec.QueueLimit = 64
	}
	if spec.Prefixes == nil {
		spec.Prefixes = func(i int) []mgmt.OverlayPrefix {
			return []mgmt.OverlayPrefix{DefaultPrefix(i)}
		}
	}
	if spec.Mode == nil {
		spec.Mode = func(i int) uint8 {
			if i%2 == 1 {
				return apps.MeshModeVXLAN
			}
			return apps.MeshModeGRE
		}
	}

	f := &Fabric{Rdv: NewRendezvous()}
	rdvClient := func() *mgmt.Client {
		return mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
			return f.Rdv.Handle(req), nil
		}))
	}

	n := spec.Cables
	for i := 0; i < n; i++ {
		mode := spec.Mode(i)
		ip, mac := CableIP(i), CableMAC(i)
		cfg := apps.MeshConfig{
			Mode:     modeName(mode),
			LocalIP:  fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3]),
			LocalMAC: fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]),
			VNI:      4000 + uint32(i+1),
			GREKey:   700 + uint32(i+1),
		}
		sim := spec.Sh.Shard(spec.Sh.ShardFor(spec.Base + i))
		name := fmt.Sprintf("cable-%d", i)
		mod, _, err := build.Module(sim, build.ModuleSpec{
			Name:     name,
			DeviceID: uint32(i + 1),
			Shell:    hls.TwoWayCore,
			App:      "mesh",
			Config:   cfg,
		})
		if err != nil {
			return nil, fmt.Errorf("overlay: build %s: %w", name, err)
		}
		agent := mgmt.NewAgent(mod)
		ep := mgmt.OverlayEndpoint{
			Name: name, IP: ip, MAC: mac, Mode: mode,
			VNI: cfg.VNI, GREKey: cfg.GREKey,
			Prefixes: spec.Prefixes(i),
		}
		cableClient := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
			return agent.Handle(req), nil
		}))
		c := &Cable{
			Index: i, Name: name, Sim: sim, Mod: mod, Agent: agent,
			Ctl:      NewController(ep, rdvClient(), cableClient),
			Endpoint: ep,
			Links:    make([]*netsim.Link, n),
			// Each outbound link can pin QueueLimit cells plus the one
			// in serialization; size the copy ring safely above that.
			ring: newFabricRing((n - 1) * (spec.QueueLimit + 4)),
		}
		f.Cables = append(f.Cables, c)
	}

	// Full-mesh underlay. Always through ConnectLink — even between
	// co-resident cables — so the portal order is a topology property.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dst := f.Cables[j]
			l := spec.Sh.ConnectLink(
				spec.Sh.ShardFor(spec.Base+i), spec.Sh.ShardFor(spec.Base+j),
				spec.LinkBps, spec.LinkProp, dst.Mod.RxOptical)
			l.QueueLimit = spec.QueueLimit
			f.Cables[i].Links[j] = l
		}
	}

	// Datapath hookup: optical TX frames route to the peer link by outer
	// destination IP; edge TX frames are the decapsulated deliveries.
	for i := 0; i < n; i++ {
		c := f.Cables[i]
		c.Mod.SetTx(core.PortOptical, func(data []byte) {
			if !c.view.Parse(data) || !c.view.IsIPv4 {
				c.NoLinkDrops++
				return
			}
			d := c.view.DstIPv4()
			if d[0] != 10 || d[1] != 254 || d[2] != 0 || d[3] < 1 || int(d[3]) > n || int(d[3]) == c.Index+1 {
				c.NoLinkDrops++
				return
			}
			// The module's frame ring owns data; the link retains what it
			// is handed until delivery, so copy into the fabric's ring.
			out := c.ring.take(len(data))
			copy(out, data)
			c.Links[d[3]-1].Send(out)
		})
		if spec.EdgeSink != nil {
			idx := i
			c.Mod.SetTx(core.PortEdge, func(data []byte) { spec.EdgeSink(idx, data) })
		}
	}
	return f, nil
}

// RegisterAll registers every cable in index order (so stable IDs are
// deterministic) and then syncs them all.
func (f *Fabric) RegisterAll() error {
	for _, c := range f.Cables {
		if _, err := c.Ctl.Register(); err != nil {
			return fmt.Errorf("overlay: register %s: %w", c.Name, err)
		}
	}
	return f.SyncAll()
}

// SyncAll reconciles every cable against the current rendezvous table.
// Call it from the host thread at a barrier (between Run windows).
func (f *Fabric) SyncAll() error {
	for _, c := range f.Cables {
		if _, err := c.Ctl.Sync(); err != nil {
			return fmt.Errorf("overlay: sync %s: %w", c.Name, err)
		}
	}
	return nil
}

// Withdraw removes a cable's endpoint from the rendezvous via another
// cable's controller (the observer that detected the failure).
func (f *Fabric) Withdraw(via int, name string) error {
	_, err := f.Cables[via].Ctl.Withdraw(name)
	return err
}

// SetCableLinks forces every underlay link touching cable i up or down —
// the transport side of a cable failure.
func (f *Fabric) SetCableLinks(i int, up bool) {
	for j, c := range f.Cables {
		if j == i {
			for _, l := range c.Links {
				if l != nil {
					l.SetUp(up)
				}
			}
			continue
		}
		if l := c.Links[i]; l != nil {
			l.SetUp(up)
		}
	}
}

// fabricRing is a reusable frame-copy pool for link transmission: a
// queued frame is pinned by the link until delivery, so the pool must be
// larger than the worst-case number of in-flight frames (bounded by the
// per-link QueueLimit).
type fabricRing struct {
	slots [][]byte
	next  int
}

func newFabricRing(n int) *fabricRing {
	if n < 64 {
		n = 64
	}
	r := &fabricRing{slots: make([][]byte, n)}
	for i := range r.slots {
		r.slots[i] = make([]byte, 0, 2048)
	}
	return r
}

func (r *fabricRing) take(n int) []byte {
	s := r.slots[r.next]
	if cap(s) < n {
		s = make([]byte, n)
		r.slots[r.next] = s
	}
	s = s[:n]
	r.slots[r.next] = s
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
	}
	return s
}
