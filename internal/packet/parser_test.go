package packet

import (
	"testing"
)

func TestParserFastPath(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolTCP, SrcPort: 1111, DstPort: 80,
	})
	var (
		eth Ethernet
		ip4 IPv4
		tcp TCP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip4, &tcp)
	var decoded []LayerType
	if err := p.DecodeLayers(data, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded = %v, want %v", decoded, want)
		}
	}
	if tcp.DstPort != 80 {
		t.Errorf("tcp.DstPort = %d", tcp.DstPort)
	}
	if p.Truncated {
		t.Error("Truncated set on full decode")
	}
}

func TestParserStopsAtUnregistered(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolUDP, SrcPort: 1, DstPort: 2,
		Payload: []byte("xx"),
	})
	var eth Ethernet
	var ip4 IPv4
	p := NewParser(LayerTypeEthernet, &eth, &ip4)
	var decoded []LayerType
	if err := p.DecodeLayers(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded = %v", decoded)
	}
	if !p.Truncated {
		t.Error("Truncated not set when decoder missing")
	}
}

func TestParserReusesState(t *testing.T) {
	var eth Ethernet
	var ip4 IPv4
	var udp UDP
	p := NewParser(LayerTypeEthernet, &eth, &ip4, &udp)
	var decoded []LayerType
	for i := 0; i < 100; i++ {
		data := MustBuild(Spec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: ip1, DstIP: ip2,
			SrcPort: uint16(i), DstPort: 2000,
		})
		if err := p.DecodeLayers(data, &decoded); err != nil {
			t.Fatal(err)
		}
		if udp.SrcPort != uint16(i) {
			t.Fatalf("iteration %d: SrcPort = %d", i, udp.SrcPort)
		}
	}
}

func TestParserErrorWrapsLayer(t *testing.T) {
	// Valid Ethernet claiming IPv4 but with a garbage (version 0) payload.
	data := make([]byte, 34)
	copy(data[0:6], macB[:])
	copy(data[6:12], macA[:])
	data[12], data[13] = 0x08, 0x00
	var eth Ethernet
	var ip4 IPv4
	p := NewParser(LayerTypeEthernet, &eth, &ip4)
	var decoded []LayerType
	err := p.DecodeLayers(data, &decoded)
	if err == nil {
		t.Fatal("expected decode error")
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeEthernet {
		t.Errorf("decoded = %v, want [Ethernet]", decoded)
	}
}

func TestParserZeroAlloc(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolTCP, SrcPort: 1111, DstPort: 80,
	})
	var eth Ethernet
	var ip4 IPv4
	var tcp TCP
	p := NewParser(LayerTypeEthernet, &eth, &ip4, &tcp)
	decoded := make([]LayerType, 0, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.DecodeLayers(data, &decoded); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("DecodeLayers allocates %.1f objects/op, want 0", allocs)
	}
}

func TestNewPacketFullStack(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		VLANs: []uint16{42},
		SrcIP: ip61, DstIP: ip62,
		Proto: IPProtocolTCP, SrcPort: 443, DstPort: 555,
	})
	pkt := NewPacket(data, LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	for _, want := range []LayerType{LayerTypeEthernet, LayerTypeDot1Q, LayerTypeIPv6, LayerTypeTCP} {
		if pkt.Layer(want) == nil {
			t.Errorf("missing layer %v", want)
		}
	}
	if got := len(pkt.Layers()); got != 4 {
		t.Errorf("Layers() = %d entries, want 4", got)
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeIPv4.String() != "IPv4" {
		t.Errorf("String = %q", LayerTypeIPv4.String())
	}
	if LayerType(99).String() != "LayerType(99)" {
		t.Errorf("String = %q", LayerType(99).String())
	}
}
