package phy

import (
	"errors"
	"fmt"
	"strings"
)

// EEPROM models the SFF-8472 A0h identification page every SFP exposes
// over I²C: the management plane's first contact with a module. The
// FlexSFP presents itself as a standard 10GBASE-SR part (so legacy
// switches accept it — the §2.1 drop-in property) with its programmable
// nature visible in the vendor fields.

// EEPROMSize is the A0h page size.
const EEPROMSize = 256

// Identity is the decoded subset of A0h the tooling shows.
type Identity struct {
	VendorName string // 16 bytes, space padded
	VendorPN   string // 16 bytes
	VendorRev  string // 4 bytes
	VendorSN   string // 16 bytes
	DateCode   string // 8 bytes, YYMMDD
	// Is10GBaseSR reflects the transceiver compliance byte.
	Is10GBaseSR bool
	// DDMSupported reflects the diagnostic-monitoring byte (92).
	DDMSupported bool
}

// EEPROM errors.
var (
	ErrEEPROMSize     = errors.New("phy: EEPROM page must be 256 bytes")
	ErrEEPROMChecksum = errors.New("phy: EEPROM checksum mismatch (CC_BASE/CC_EXT)")
	ErrEEPROMIdent    = errors.New("phy: not an SFP identifier page")
)

// EncodeEEPROM builds a valid A0h page for the identity.
func EncodeEEPROM(id Identity) []byte {
	p := make([]byte, EEPROMSize)
	p[0] = 0x03 // identifier: SFP/SFP+
	p[1] = 0x04 // extended identifier: MOD_DEF 4 (serial ID)
	p[2] = 0x07 // connector: LC
	if id.Is10GBaseSR {
		p[3] = 0x10 // 10GBASE-SR compliance bit
	}
	p[11] = 0x01 // encoding: 64B/66B
	p[12] = 103  // nominal rate: 10.3 Gb/s in units of 100 Mb/s
	p[14] = 0    // SMF km: 0
	p[16] = 8    // OM2 length ×10 m: 80 m
	p[17] = 30   // OM1... reuse: OM3 300 m in byte 19 per spec; keep simple
	putPadded(p[20:36], id.VendorName)
	// Vendor OUI: locally administered placeholder.
	p[37], p[38], p[39] = 0x02, 0xf5, 0xf0
	putPadded(p[40:56], id.VendorPN)
	putPadded(p[56:60], id.VendorRev)
	// CC_BASE over bytes 0..62.
	p[63] = sum(p[0:63])
	putPadded(p[68:84], id.VendorSN)
	putPadded(p[84:92], id.DateCode)
	if id.DDMSupported {
		p[92] = 0x68 // DDM implemented, internally calibrated
		p[93] = 0xf0 // optional alarm/warning flags implemented
	}
	p[94] = 0x01 // SFF-8472 compliance rev
	// CC_EXT over bytes 64..94.
	p[95] = sum(p[64:95])
	return p
}

// DecodeEEPROM validates and decodes a page.
func DecodeEEPROM(p []byte) (Identity, error) {
	var id Identity
	if len(p) != EEPROMSize {
		return id, ErrEEPROMSize
	}
	if p[0] != 0x03 {
		return id, fmt.Errorf("%w: identifier %#02x", ErrEEPROMIdent, p[0])
	}
	if sum(p[0:63]) != p[63] {
		return id, fmt.Errorf("%w: CC_BASE", ErrEEPROMChecksum)
	}
	if sum(p[64:95]) != p[95] {
		return id, fmt.Errorf("%w: CC_EXT", ErrEEPROMChecksum)
	}
	id.VendorName = strings.TrimRight(string(p[20:36]), " ")
	id.VendorPN = strings.TrimRight(string(p[40:56]), " ")
	id.VendorRev = strings.TrimRight(string(p[56:60]), " ")
	id.VendorSN = strings.TrimRight(string(p[68:84]), " ")
	id.DateCode = strings.TrimRight(string(p[84:92]), " ")
	id.Is10GBaseSR = p[3]&0x10 != 0
	id.DDMSupported = p[92]&0x40 != 0
	return id, nil
}

func putPadded(dst []byte, s string) {
	for i := range dst {
		if i < len(s) {
			dst[i] = s[i]
		} else {
			dst[i] = ' '
		}
	}
}

func sum(b []byte) byte {
	var s byte
	for _, c := range b {
		s += c
	}
	return s
}
