package paper

import (
	"fmt"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/switchsim"
)

// ---------------------------------------------------------------------------
// §2.1 retrofit economics: upgrading a legacy aggregation switch port by
// port ("replacing the existing SFP modules with programmable SFPs offers
// a modular, drop-in upgrade path") versus the alternatives the paper
// dismisses as impractical.

// RetrofitOption is one way to add programmability to a 48-port switch.
type RetrofitOption struct {
	Name string
	// CapexUSD is the total hardware cost of the upgrade.
	CapexUSD float64
	// AddedPowerW is the additional steady-state power.
	AddedPowerW float64
	// Disruptive: requires chassis replacement or host changes.
	Disruptive bool
	// PerPort: capability lands at every port independently.
	PerPort bool
}

// RetrofitResult is the comparison plus a functional spot check.
type RetrofitResult struct {
	Ports   int
	Options []RetrofitOption
	// SpotCheck verifies a fully retrofitted switch actually enforces
	// per-port policy in simulation.
	SpotCheckEnforced bool
	SpotCheckPowerW   float64
}

// RetrofitEconomicsExperiment prices the §2.1 decision for a 48-port
// aggregation switch and runs a functional spot check: a fully
// FlexSFP-populated switch enforcing an IPv6-filtering policy per port.
// The spot-check traffic is deterministic; the historical entry point
// pins seed 1.
func RetrofitEconomicsExperiment() (RetrofitResult, error) {
	return retrofitSingle(exp.RunContext{Seed: 1})
}

func retrofitSingle(ctx exp.RunContext) (RetrofitResult, error) {
	const ports = 48
	res := RetrofitResult{
		Ports: ports,
		Options: []RetrofitOption{
			{
				Name:        "FlexSFP per port",
				CapexUSD:    ports * 275, // §5.2 production band midpoint
				AddedPowerW: ports * (1.52 - core.StandardSFPPowerW),
				Disruptive:  false,
				PerPort:     true,
			},
			{
				Name:        "SmartNIC per attached host",
				CapexUSD:    ports * 1750,
				AddedPowerW: ports * 75,
				Disruptive:  true, // every host opened and re-cabled
				PerPort:     true,
			},
			{
				Name:        "Replace with programmable switch",
				CapexUSD:    45000, // Tofino-class fixed chassis
				AddedPowerW: 300,   // above the legacy box it displaces
				Disruptive:  true,
				PerPort:     true,
			},
			{
				Name:        "Centralized appliance upstream",
				CapexUSD:    12000,
				AddedPowerW: 150,
				Disruptive:  false,
				PerPort:     false, // enforcement leaves the edge
			},
		},
	}

	// Functional spot check on a smaller fully-populated switch.
	sim := build.NewSim(ctx.Seed)
	const checkPorts = 8
	sw := switchsim.New(sim, "retrofit-check", checkPorts)
	hosts := make([]*switchsim.Host, checkPorts)
	for i := 0; i < checkPorts; i++ {
		mod, _, err := build.Module(sim, build.ModuleSpec{
			Name: fmt.Sprintf("p%d", i), DeviceID: uint32(i + 1),
			Shell: hls.TwoWayCore, App: "sanitize",
			Config: apps.SanitizeConfig{DropIPv6: true},
		})
		if err != nil {
			return res, err
		}
		sw.Cage(i).Insert(mod)
		hosts[i] = switchsim.NewHost("h", packet.MAC{2, 0, 0, 0, 7, byte(i + 1)})
		switchsim.Fiber(sim, sw.Cage(i), hosts[i], 10_000_000_000, 100)
	}
	// Learn MACs, then check IPv6 is cut at every port while IPv4 flows.
	for i := 1; i < checkPorts; i++ {
		hosts[i].Send(packet.MustBuild(packet.Spec{
			SrcMAC: hosts[i].MAC, DstMAC: hosts[0].MAC,
			SrcIP: mustAddr("10.0.0.2"), DstIP: mustAddr("10.0.0.1"),
			SrcPort: 1, DstPort: 2, PadTo: 64,
		}))
	}
	sim.Run()
	h0v4 := hosts[0].RxFrames
	for i := 1; i < checkPorts; i++ {
		hosts[i].Send(packet.MustBuild(packet.Spec{
			SrcMAC: hosts[i].MAC, DstMAC: hosts[0].MAC,
			SrcIP: mustAddr("2001:db8::2"), DstIP: mustAddr("2001:db8::1"),
			SrcPort: 1, DstPort: 2, PadTo: 64,
		}))
	}
	sim.RunFor(10 * netsim.Millisecond)
	res.SpotCheckEnforced = hosts[0].RxFrames == h0v4 // no IPv6 leaked
	res.SpotCheckPowerW = sw.TotalTransceiverPowerW()
	return res, nil
}

// Render formats the comparison.
func (r RetrofitResult) Render() string {
	t := exp.NewTable("Upgrade path", "CAPEX ($)", "Added power (W)", "Drop-in?", "Per-port?")
	for _, o := range r.Options {
		dis := "yes"
		if o.Disruptive {
			dis = "NO"
		}
		pp := "yes"
		if !o.PerPort {
			pp = "NO"
		}
		t.Add(o.Name, fmt.Sprintf("%.0f", o.CapexUSD), fmt.Sprintf("%.0f", o.AddedPowerW), dis, pp)
	}
	out := fmt.Sprintf("Retrofit economics (§2.1): adding per-port programmability to a %d-port legacy switch\n", r.Ports) + t.String()
	out += fmt.Sprintf("Spot check (8-port sim, IPv6 filter per port): enforced=%v, transceiver power %.1f W\n",
		r.SpotCheckEnforced, r.SpotCheckPowerW)
	return out
}

func runRetrofit(ctx exp.RunContext) (exp.Result, error) {
	r, err := retrofitSingle(ctx)
	if err != nil {
		return nil, err
	}
	enforced := 0.0
	if r.SpotCheckEnforced {
		enforced = 1
	}
	env := exp.Envelope{
		Name: "retrofit", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("flexsfp_capex_usd", "$", r.Options[0].CapexUSD),
			exp.Scalar("spot_check_enforced", "bool", enforced),
			exp.Scalar("spot_check_power_w", "W", r.SpotCheckPowerW),
		},
	}
	return exp.NewResult(env, r.Render), nil
}
