package paper

import (
	"fmt"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/build"
	"flexsfp/internal/daemon"
	"flexsfp/internal/exp"
	"flexsfp/internal/faults"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/runner"
)

// ---------------------------------------------------------------------------
// fleet_ota: the sharded fleet controller at deployment scale (§2.1's
// fleet-wide feature rollout meeting §4.2's failure model). 100k+
// lightweight in-memory members (daemon.SimMember — no TCP, no netsim
// event loop) are partitioned over worker shards and driven through a
// full OTA wave under chaos: transport drops/stalls, images tampered in
// flight, power cuts mid-write, and apps that wedge immediately or only
// after the first health check. Reports rollout latency (max per-shard
// simulated cost), blast radius, rollback/remediation counts, and the
// hierarchical telemetry-aggregation shape (per-member snapshots folded
// per shard; the global merge touches only the per-shard folds).
//
// Determinism: each member's injector derives from the trial seed and
// the member's lane via SplitMix64, and the controller's wave barriers
// make every gate decision on complete per-round information — so the
// JSON envelope is byte-identical for a fixed seed at any GOMAXPROCS.

// Fleet/rollout shape at default knobs.
const (
	fleetDefaultModules = 100_000
	fleetDefaultShards  = 64
	fleetTargetSlot     = 2
	fleetStartSlot      = 1
	fleetCanaries       = 4   // per shard
	fleetWaveSize       = 256 // per shard per wave
	fleetShardGate      = 0.5 // per-shard failure fraction gate
	fleetGlobalGate     = 0.8 // cross-shard circuit breaker
	fleetRetryAttempts  = 4
)

// Per-event probabilities at fault-rate multiplier 1.0 (the bench's
// -fault-rate scales these; its default 0.2 is the nominal chaos level).
var fleetBaseRates = faults.Rates{ConnDrop: 0.10, Stall: 0.10}

const (
	fleetTamperProb    = 0.025 // landed push stores a tampered image
	fleetPowerCutProb  = 0.025 // power fails mid-write after the ack
	fleetWedgeProb     = 0.010 // target boots but hangs immediately
	fleetLateWedgeProb = 0.010 // hangs only after the first health check
)

// fleetRateFracs are the sweep points as fractions of the max rate.
var fleetRateFracs = []float64{0, 0.5, 1.0}

// FleetOTAPoint aggregates one fault-rate setting across trials.
type FleetOTAPoint struct {
	Rate float64 `json:"rate"`

	UpdatedFrac    runner.Summary `json:"updated_frac"`    // members healthy on the new image
	RolloutMs      runner.Summary `json:"rollout_ms"`      // max per-shard simulated cost
	Waves          runner.Summary `json:"waves"`           // fleet-wide wave rounds
	BlastRadius    runner.Summary `json:"blast_radius"`    // members ever unhealthy on the target
	Remediated     runner.Summary `json:"remediated"`      // individually restored members
	RolledBack     runner.Summary `json:"rolled_back"`     // members reverted by shard trips
	TrippedShards  runner.Summary `json:"tripped_shards"`  // shards whose gate fired
	Aborts         runner.Summary `json:"aborts"`          // circuit-breaker aborts (0/1)
	BakeFailures   runner.Summary `json:"bake_failures"`   // late wedges caught by the bake
	Retries        runner.Summary `json:"retries"`         // mgmt re-push attempts fleet-wide
	InjectedFaults runner.Summary `json:"injected_faults"` // faults the injectors fired
}

// FleetOTAResult is the fleet_ota detail payload.
type FleetOTAResult struct {
	Trials  int     `json:"trials"`
	Modules int     `json:"modules"`
	Shards  int     `json:"shards"`
	MaxRate float64 `json:"max_rate"`

	// BadEnd is the invariant counter summed over every trial and sweep
	// point: members left on an unverifiable image or wedged on the
	// target. Bounded blast radius means this is 0 (asserted by the
	// fleet-smoke CI target; no omitempty so the zero is visible).
	BadEnd int `json:"modules_bad_end"`

	// MemberSnaps/ShardFolds echo the telemetry-aggregation shape at the
	// max-rate point of trial 0: the shard layer folded MemberSnaps
	// per-member snapshots, the global merge touched only ShardFolds
	// folds — aggregation cost at the root scales with shards, not fleet.
	MemberSnaps int `json:"telemetry_member_snaps"`
	ShardFolds  int `json:"telemetry_shard_folds"`

	Points []FleetOTAPoint `json:"points"`
}

// fleetPoint is one trial's raw metrics at one fault rate.
type fleetPoint struct {
	updatedFrac, rolloutMs, waves float64
	blast, remediated, rolledBack float64
	tripped, aborts, bakeFails    float64
	retries, injected             float64
	badEnd                        float64
	memberSnaps, shardFolds       float64
}

// fleetImages are the signed old/new images shared by every member
// (deterministic, built once per experiment run).
type fleetImages struct {
	old, new []byte
}

func buildFleetImages() (*fleetImages, error) {
	mk := func(version uint32) ([]byte, error) {
		bs := &bitstream.Bitstream{
			AppName: "nat", AppVersion: version, Device: "MPF200T",
			ClockKHz: 156_250, DatapathBits: 64,
			Payload: make([]byte, 256),
		}
		enc, err := bs.Encode()
		if err != nil {
			return nil, err
		}
		return bitstream.Sign(enc, build.DefaultAuthKey), nil
	}
	old, err := mk(3)
	if err != nil {
		return nil, err
	}
	new_, err := mk(9)
	if err != nil {
		return nil, err
	}
	return &fleetImages{old: old, new: new_}, nil
}

// fleetBakeCostNs is the simulated inter-wave bake dwell added to each
// wave's cost.
const fleetBakeCostNs = uint64(10 * netsim.Millisecond)

// fleetOTATrial runs one full sharded rollout at one fault rate.
func fleetOTATrial(img *fleetImages, trialSeed int64, rateIdx int, rate float64, modules, shards int) (fleetPoint, error) {
	parent := faults.New(runner.TrialSeed(trialSeed, 3000+rateIdx), fleetBaseRates.Scaled(rate))
	memberCfg := daemon.SimMemberConfig{
		Key: build.DefaultAuthKey,
		Retry: mgmt.RetryPolicy{
			MaxAttempts: fleetRetryAttempts,
			BaseBackoff: 1 << 20, // ~1 ms, doubling
			MaxBackoff:  1 << 23,
		},
		TamperProb:    fleetTamperProb * rate,
		PowerCutProb:  fleetPowerCutProb * rate,
		WedgeProb:     fleetWedgeProb * rate,
		LateWedgeProb: fleetLateWedgeProb * rate,
	}
	members := daemon.BuildSimFleet(modules, parent, memberCfg, 3, fleetStartSlot, img.old)

	c := daemon.NewFleetController(daemon.FleetConfig{
		Shards: shards, TargetSlot: fleetTargetSlot,
		Canaries: fleetCanaries, WaveSize: fleetWaveSize, Bake: true,
		MaxFailureFrac: fleetShardGate, GlobalMaxFailureFrac: fleetGlobalGate,
		WaveCost: func(_ int, batch []daemon.FleetMember) uint64 {
			// Members of a wave push in parallel on the wire: the wave
			// costs its slowest member plus the health-bake dwell.
			var maxNs uint64
			for _, m := range batch {
				if ns := m.(*daemon.SimMember).LastOpCostNs(); ns > maxNs {
					maxNs = ns
				}
			}
			return maxNs + fleetBakeCostNs
		},
	}, members)

	rep := c.Rollout(img.new)
	snap, foldStats := c.AggregateTelemetry()

	var p fleetPoint
	p.updatedFrac = float64(rep.Updated) / float64(rep.Modules)
	p.rolloutMs = float64(rep.CostNs) / float64(netsim.Millisecond)
	p.waves = float64(rep.Waves)
	p.blast = float64(rep.BlastRadius)
	p.remediated = float64(rep.Remediated)
	p.rolledBack = float64(rep.RolledBack)
	p.tripped = float64(rep.TrippedShards)
	if rep.Aborted {
		p.aborts = 1
	}
	p.bakeFails = float64(rep.BakeFailures)
	p.badEnd = float64(rep.BadEnd)
	p.memberSnaps = float64(foldStats.MemberSnaps)
	p.shardFolds = float64(foldStats.ShardFolds)
	for _, cs := range snap.Counters {
		if cs.Name == "ota_retries" {
			p.retries = float64(cs.Value)
		}
	}
	// The invariant behind "bounded blast radius": nobody ends on an
	// image that fails verification, and nobody is left wedged on the
	// target. Counted here (not just trusted from the report) so the
	// smoke gate sees ground truth.
	for _, m := range members {
		sm := m.(*daemon.SimMember)
		if sm.OnBadImage() || sm.Wedged() {
			p.badEnd++
		}
		p.injected += float64(sm.Injector().Stats().Total())
	}
	return p, nil
}

func fleetSweep(ctx exp.RunContext) (FleetOTAResult, error) {
	maxRate := ctx.FaultRate
	if maxRate <= 0 {
		maxRate = 0.2
	}
	modules := ctx.FleetSize
	if modules <= 0 {
		modules = fleetDefaultModules
	}
	shards := ctx.FleetShards
	if shards <= 0 {
		shards = fleetDefaultShards
	}
	img, err := buildFleetImages()
	if err != nil {
		return FleetOTAResult{}, err
	}
	tr, err := exp.RunTrials(ctx, func(trial int, trialSeed int64) ([]fleetPoint, error) {
		pts := make([]fleetPoint, len(fleetRateFracs))
		for ri, frac := range fleetRateFracs {
			ctx.Progressf("fleet_ota: trial %d rate %.3f (%d modules, %d shards)",
				trial, frac*maxRate, modules, shards)
			p, err := fleetOTATrial(img, trialSeed, ri, frac*maxRate, modules, shards)
			if err != nil {
				return nil, err
			}
			pts[ri] = p
		}
		return pts, nil
	})
	if err != nil {
		return FleetOTAResult{}, err
	}
	res := FleetOTAResult{
		Trials: tr.N(), Modules: modules, Shards: shards, MaxRate: maxRate,
	}
	for ri, frac := range fleetRateFracs {
		res.Points = append(res.Points, FleetOTAPoint{
			Rate:           frac * maxRate,
			UpdatedFrac:    tr.Metric(func(r []fleetPoint) float64 { return r[ri].updatedFrac }),
			RolloutMs:      tr.Metric(func(r []fleetPoint) float64 { return r[ri].rolloutMs }),
			Waves:          tr.Metric(func(r []fleetPoint) float64 { return r[ri].waves }),
			BlastRadius:    tr.Metric(func(r []fleetPoint) float64 { return r[ri].blast }),
			Remediated:     tr.Metric(func(r []fleetPoint) float64 { return r[ri].remediated }),
			RolledBack:     tr.Metric(func(r []fleetPoint) float64 { return r[ri].rolledBack }),
			TrippedShards:  tr.Metric(func(r []fleetPoint) float64 { return r[ri].tripped }),
			Aborts:         tr.Metric(func(r []fleetPoint) float64 { return r[ri].aborts }),
			BakeFailures:   tr.Metric(func(r []fleetPoint) float64 { return r[ri].bakeFails }),
			Retries:        tr.Metric(func(r []fleetPoint) float64 { return r[ri].retries }),
			InjectedFaults: tr.Metric(func(r []fleetPoint) float64 { return r[ri].injected }),
		})
		badEnd := tr.Metric(func(r []fleetPoint) float64 { return r[ri].badEnd })
		res.BadEnd += int(badEnd.Mean * float64(badEnd.N))
	}
	if last := tr.Metric(func(r []fleetPoint) float64 { return r[len(fleetRateFracs)-1].memberSnaps }); last.N > 0 {
		res.MemberSnaps = int(last.Mean)
	}
	if last := tr.Metric(func(r []fleetPoint) float64 { return r[len(fleetRateFracs)-1].shardFolds }); last.N > 0 {
		res.ShardFolds = int(last.Mean)
	}
	return res, nil
}

// Render formats the fleet-scale chaos sweep.
func (r FleetOTAResult) Render() string {
	t := exp.NewTable("Fault rate", "Updated", "Rollout (ms)", "Waves", "Blast",
		"Remediated", "Rolled back", "Tripped", "Aborts", "Bake fails", "Retries")
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%.3f", p.Rate),
			fmtCI(p.UpdatedFrac, 3),
			fmtCI(p.RolloutMs, 1),
			fmtCI(p.Waves, 1),
			fmtCI(p.BlastRadius, 1),
			fmtCI(p.Remediated, 1),
			fmtCI(p.RolledBack, 1),
			fmtCI(p.TrippedShards, 2),
			fmtCI(p.Aborts, 2),
			fmtCI(p.BakeFailures, 1),
			fmtCI(p.Retries, 0))
	}
	head := fmt.Sprintf(
		"Fleet OTA under chaos: %d modules over %d controller shards (canaries %d/shard, waves of %d, shard gate >%.0f%%, breaker >%.0f%%), %d trials\n",
		r.Modules, r.Shards, fleetCanaries, fleetWaveSize, fleetShardGate*100, fleetGlobalGate*100, r.Trials)
	foot := fmt.Sprintf(
		"\nmodules left on a bad image: %d; telemetry: %d member snaps folded in shards, global merge touched %d folds\n",
		r.BadEnd, r.MemberSnaps, r.ShardFolds)
	return head + t.String() + foot
}

func runFleetOTA(ctx exp.RunContext) (exp.Result, error) {
	r, err := fleetSweep(ctx)
	if err != nil {
		return nil, err
	}
	env := exp.Envelope{Name: "fleet_ota", Params: ctx.Params(), Detail: r}
	if n := len(r.Points); n > 0 {
		last := r.Points[n-1]
		env.Metrics = []exp.Metric{
			exp.Scalar("modules", "", float64(r.Modules)),
			exp.Scalar("controller_shards", "", float64(r.Shards)),
			exp.FromSummary("rollout_ms_at_max", "ms", last.RolloutMs),
			exp.FromSummary("blast_radius_at_max", "modules", last.BlastRadius),
			exp.FromSummary("rolled_back_at_max", "modules", last.RolledBack),
			exp.Scalar("modules_bad_end", "", float64(r.BadEnd)),
		}
	}
	return exp.NewResult(env, r.Render), nil
}
