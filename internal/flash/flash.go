// Package flash models the FlexSFP's 128 Mb SPI NOR flash (§4.3): sector
// erase / page program / random read with datasheet-class timings, per-
// sector wear counters, a slotted layout for holding multiple design
// bitstreams ("the flash memory is such that multiple designs could be
// stored"), and power-cut corruption injection for recovery testing.
//
// NOR semantics are modeled faithfully: programming can only clear bits
// (1→0); an erase sets a whole sector to 0xFF.
package flash

import (
	"errors"
	"fmt"

	"flexsfp/internal/netsim"
)

// Geometry of the modeled part (Microchip/SST-class 128 Mb SPI NOR).
const (
	SizeBytes  = 128 * 1024 * 1024 / 8 // 128 Mb = 16 MiB
	SectorSize = 4096
	PageSize   = 256
	NumSectors = SizeBytes / SectorSize
)

// Datasheet-class operation timings.
const (
	SectorEraseTime = 25 * netsim.Millisecond
	PageProgramTime = 700 * netsim.Microsecond
	// ReadTimePerByte approximates a 50 MHz SPI bus: ~20 ns/byte.
	ReadTimePerByte = 20 * netsim.Nanosecond
)

// Errors.
var (
	ErrOutOfRange   = errors.New("flash: address out of range")
	ErrNotErased    = errors.New("flash: programming a non-erased cell (program can only clear bits)")
	ErrBadAlignment = errors.New("flash: misaligned operation")
)

// Device is the flash array plus wear accounting.
type Device struct {
	mem       []byte
	eraseWear []uint32 // per-sector erase count

	// Stats.
	Erases   uint64
	Programs uint64
	Reads    uint64
}

// New returns a factory-fresh (all 0xFF) device.
func New() *Device {
	d := &Device{
		mem:       make([]byte, SizeBytes),
		eraseWear: make([]uint32, NumSectors),
	}
	for i := range d.mem {
		d.mem[i] = 0xff
	}
	return d
}

// Read copies n bytes starting at addr into a fresh slice and returns the
// time the SPI transfer takes.
func (d *Device) Read(addr, n int) ([]byte, netsim.Duration, error) {
	if addr < 0 || n < 0 || addr+n > SizeBytes {
		return nil, 0, fmt.Errorf("%w: read [%d,%d)", ErrOutOfRange, addr, addr+n)
	}
	d.Reads++
	out := make([]byte, n)
	copy(out, d.mem[addr:addr+n])
	return out, netsim.Duration(n) * ReadTimePerByte, nil
}

// EraseSector erases the sector containing addr (addr must be sector-
// aligned) and returns the erase time.
func (d *Device) EraseSector(addr int) (netsim.Duration, error) {
	if addr < 0 || addr >= SizeBytes {
		return 0, fmt.Errorf("%w: erase at %d", ErrOutOfRange, addr)
	}
	if addr%SectorSize != 0 {
		return 0, fmt.Errorf("%w: erase at %d", ErrBadAlignment, addr)
	}
	for i := addr; i < addr+SectorSize; i++ {
		d.mem[i] = 0xff
	}
	d.eraseWear[addr/SectorSize]++
	d.Erases++
	return SectorEraseTime, nil
}

// ProgramPage programs up to PageSize bytes at addr (must not cross a page
// boundary) and returns the program time. Programming a bit from 0 to 1
// fails with ErrNotErased, as on real NOR.
func (d *Device) ProgramPage(addr int, data []byte) (netsim.Duration, error) {
	if addr < 0 || addr+len(data) > SizeBytes {
		return 0, fmt.Errorf("%w: program [%d,%d)", ErrOutOfRange, addr, addr+len(data))
	}
	if len(data) == 0 {
		return 0, nil
	}
	if len(data) > PageSize || addr/PageSize != (addr+len(data)-1)/PageSize {
		return 0, fmt.Errorf("%w: program crosses page boundary at %d (+%d)", ErrBadAlignment, addr, len(data))
	}
	for i, b := range data {
		if d.mem[addr+i]&b != b {
			return 0, fmt.Errorf("%w: at %d", ErrNotErased, addr+i)
		}
	}
	for i, b := range data {
		d.mem[addr+i] &= b
	}
	d.Programs++
	return PageProgramTime, nil
}

// SectorWear returns the erase count of the sector containing addr.
func (d *Device) SectorWear(addr int) uint32 {
	return d.eraseWear[addr/SectorSize]
}

// MaxWear returns the highest per-sector erase count.
func (d *Device) MaxWear() uint32 {
	var m uint32
	for _, w := range d.eraseWear {
		if w > m {
			m = w
		}
	}
	return m
}

// CorruptRange simulates a power cut mid-program: each byte in [addr,
// addr+n) is partially programmed (random bits cleared) using rnd.
func (d *Device) CorruptRange(addr, n int, rnd func() byte) error {
	if addr < 0 || n < 0 || addr+n > SizeBytes {
		return fmt.Errorf("%w: corrupt [%d,%d)", ErrOutOfRange, addr, addr+n)
	}
	for i := addr; i < addr+n; i++ {
		d.mem[i] &= rnd()
	}
	return nil
}

// FlipBits simulates retention bit-rot: flips bits bits chosen by rng
// (uniformly over [addr, addr+n)), regardless of NOR program semantics —
// real charge loss can move cells in either direction.
func (d *Device) FlipBits(addr, n, bits int, rng func(int) int) error {
	if addr < 0 || n < 0 || addr+n > SizeBytes {
		return fmt.Errorf("%w: fliprange [%d,%d)", ErrOutOfRange, addr, addr+n)
	}
	if n == 0 {
		return nil
	}
	for i := 0; i < bits; i++ {
		d.mem[addr+rng(n)] ^= 1 << uint(rng(8))
	}
	return nil
}

// WriteBlob erases the covered sectors and programs data at addr (sector-
// aligned), returning the total operation time. This is the primitive the
// reprogramming FSM uses to store a bitstream.
func (d *Device) WriteBlob(addr int, data []byte) (netsim.Duration, error) {
	if addr%SectorSize != 0 {
		return 0, fmt.Errorf("%w: blob at %d", ErrBadAlignment, addr)
	}
	if addr < 0 || addr+len(data) > SizeBytes {
		return 0, fmt.Errorf("%w: blob [%d,%d)", ErrOutOfRange, addr, addr+len(data))
	}
	var total netsim.Duration
	for s := addr; s < addr+len(data); s += SectorSize {
		dt, err := d.EraseSector(s)
		if err != nil {
			return total, err
		}
		total += dt
	}
	for off := 0; off < len(data); off += PageSize {
		end := off + PageSize
		if end > len(data) {
			end = len(data)
		}
		dt, err := d.ProgramPage(addr+off, data[off:end])
		if err != nil {
			return total, err
		}
		total += dt
	}
	return total, nil
}
