// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON array, one element per benchmark, carrying ns/op and the
// -benchmem allocation columns. It is the emitter behind `make
// bench-json`, whose output is tracked in docs/BENCH_PR*.json so
// hot-path regressions show up in review diffs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=1 ./... | go run ./tools/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
	MBPerSec   float64 `json:"mb_per_s,omitempty"`
}

func main() {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Pkg: pkg, Name: trimCPUSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsOp = int64(v)
			case "MB/s":
				r.MBPerSec = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// trimCPUSuffix drops the -<GOMAXPROCS> tail go test appends to
// benchmark names (BenchmarkFoo-8 → BenchmarkFoo).
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
