package telemetry

// Hierarchical snapshot aggregation for fleet-scale telemetry (the
// management plane of ROADMAP item 1). A Fold accumulates many Snapshots
// — or other Folds — into one, which is what lets a sharded fleet
// controller aggregate 100k+ modules in two layers: each worker shard
// folds its own members' snapshots (Add, touches per-module state), and
// the global merge combines only the W per-shard folds (Merge, never
// sees a module). The global layer's cost is therefore a function of
// shard count and metric-name cardinality, not of fleet size.
//
// Fold semantics per metric kind:
//   - counters: summed by name.
//   - gauges: summed by name (fleet totals of occupancy-style gauges;
//     callers wanting means can divide by the member count).
//   - histograms: bucket counts are summed positionally when the bucket
//     bounds agree; when two histograms of the same name disagree on
//     bounds, the buckets are dropped and only count/sum/min/max merge.
//   - trace seen/sampled totals: summed.
//
// A Fold is not safe for concurrent use; give each shard its own and
// Merge them from a single goroutine.
type Fold struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*histFold
	seen     uint64
	sampled  uint64

	snaps  int // member snapshots folded in (transitively, through Merge)
	merges int // direct Merge calls on this fold
}

type histFold struct {
	count    uint64
	sum      uint64
	min      uint64
	max      uint64
	any      bool // at least one sample seen (min/max valid)
	bounds   []uint64
	counts   []uint64
	boundsOK bool
}

// NewFold returns an empty fold.
func NewFold() *Fold {
	return &Fold{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histFold),
	}
}

// Add folds one member snapshot in (the shard layer).
func (f *Fold) Add(s Snapshot) {
	f.snaps++
	for _, c := range s.Counters {
		f.counters[c.Name] += c.Value
	}
	for _, g := range s.Gauges {
		f.gauges[g.Name] += g.Value
	}
	for _, h := range s.Histograms {
		f.addHist(h)
	}
	f.seen += s.TraceSeen
	f.sampled += s.TraceSampled
}

func (f *Fold) addHist(h HistogramSnap) {
	hf, ok := f.hists[h.Name]
	if !ok {
		hf = &histFold{boundsOK: true}
		for _, b := range h.Buckets {
			if b.Overflow {
				hf.bounds = append(hf.bounds, 0)
			} else {
				hf.bounds = append(hf.bounds, b.UpperBound)
			}
			hf.counts = append(hf.counts, b.Count)
		}
		f.hists[h.Name] = hf
	} else if hf.boundsOK {
		if len(h.Buckets) != len(hf.bounds) {
			hf.dropBuckets()
		} else {
			for i, b := range h.Buckets {
				ub := b.UpperBound
				if b.Overflow {
					ub = 0
				}
				if ub != hf.bounds[i] {
					hf.dropBuckets()
					break
				}
			}
			if hf.boundsOK {
				for i, b := range h.Buckets {
					hf.counts[i] += b.Count
				}
			}
		}
	}
	hf.count += h.Count
	hf.sum += h.Sum
	if h.Count > 0 {
		hf.observeRange(h.Min, h.Max)
	}
}

func (hf *histFold) dropBuckets() {
	hf.boundsOK = false
	hf.bounds, hf.counts = nil, nil
}

func (hf *histFold) observeRange(min, max uint64) {
	if !hf.any || min < hf.min {
		hf.min = min
	}
	if !hf.any || max > hf.max {
		hf.max = max
	}
	hf.any = true
}

// Merge folds another fold in (the global layer). It reads only o's
// aggregated state — by construction it cannot touch any per-module
// snapshot that fed o.
func (f *Fold) Merge(o *Fold) {
	f.merges++
	f.snaps += o.snaps
	for n, v := range o.counters {
		f.counters[n] += v
	}
	for n, v := range o.gauges {
		f.gauges[n] += v
	}
	for n, oh := range o.hists {
		hf, ok := f.hists[n]
		if !ok {
			hf = &histFold{boundsOK: true}
			if oh.boundsOK {
				hf.bounds = append([]uint64(nil), oh.bounds...)
				hf.counts = append([]uint64(nil), oh.counts...)
			} else {
				hf.boundsOK = false
			}
			hf.count, hf.sum = oh.count, oh.sum
			hf.min, hf.max, hf.any = oh.min, oh.max, oh.any
			f.hists[n] = hf
			continue
		}
		sameBounds := hf.boundsOK && oh.boundsOK && len(hf.bounds) == len(oh.bounds)
		if sameBounds {
			for i, b := range oh.bounds {
				if b != hf.bounds[i] {
					sameBounds = false
					break
				}
			}
		}
		if sameBounds {
			for i := range oh.counts {
				hf.counts[i] += oh.counts[i]
			}
		} else {
			hf.dropBuckets()
		}
		hf.count += oh.count
		hf.sum += oh.sum
		if oh.any {
			hf.observeRange(oh.min, oh.max)
		}
	}
	f.seen += o.seen
	f.sampled += o.sampled
}

// Folded reports how many member snapshots fed this fold (transitively)
// and how many direct Merge calls it absorbed — the instrumentation the
// fleet experiment uses to show the global merge touched W folds, not N
// modules.
func (f *Fold) Folded() (snaps, merges int) { return f.snaps, f.merges }

// Snapshot renders the fold as a deterministic Snapshot (sorted by
// metric name, like Registry.Snapshot), so folded fleet telemetry
// serializes identically for identical inputs regardless of fold order.
func (f *Fold) Snapshot() Snapshot {
	var s Snapshot
	for n, v := range f.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: v})
	}
	for n, v := range f.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: n, Value: v})
	}
	for n, hf := range f.hists {
		hs := HistogramSnap{Name: n, Count: hf.count, Sum: hf.sum}
		if hf.any {
			hs.Min, hs.Max = hf.min, hf.max
		}
		if hf.count > 0 {
			hs.Mean = float64(hf.sum) / float64(hf.count)
		}
		for i, b := range hf.bounds {
			if i == len(hf.bounds)-1 && b == 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Overflow: true, Count: hf.counts[i]})
			} else {
				hs.Buckets = append(hs.Buckets, BucketSnap{UpperBound: b, Count: hf.counts[i]})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sortSnapshot(&s)
	s.TraceSeen = f.seen
	s.TraceSampled = f.sampled
	return s
}
