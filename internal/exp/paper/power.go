package paper

import (
	"fmt"

	"flexsfp/internal/build"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/power"
	"flexsfp/internal/runner"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// §5 power measurement.

// PowerResult reproduces the Thunderbolt-NIC testbed numbers.
type PowerResult struct {
	Report power.Report
	// FlexUtilization is the PPE utilization reached under the stress
	// test (drives dynamic power).
	FlexUtilization float64
	// Paper values.
	PaperNICOnly, PaperWithSFP, PaperWithFlex float64
}

// PowerExperiment runs the three-step §5 procedure: baseline, standard
// SFP under line-rate stress, FlexSFP (NAT, Two-Way-Core) under
// bidirectional line-rate stress.
func PowerExperiment(seed int64) (PowerResult, error) {
	return powerSingle(exp.RunContext{Seed: seed})
}

func powerSingle(ctx exp.RunContext) (PowerResult, error) {
	sim := build.NewSim(ctx.Seed)

	mod, _, err := build.Module(sim, build.ModuleSpec{
		Name: "power-dut", DeviceID: 1, Shell: hls.TwoWayCore, App: "nat",
		ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
	})
	if err != nil {
		return PowerResult{}, err
	}
	// Recycle frames at the Tx sinks: the generator draws its buffers
	// from the pool, so the steady state allocates nothing per frame.
	mod.SetTx(0, trafficgen.PutBuffer)
	mod.SetTx(1, trafficgen.PutBuffer)

	// Bidirectional line-rate minimum-size stress for 1 ms of sim time.
	pps := 14_880_952.0
	gen1 := trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
		mod.RxEdge(b)
		return true
	})
	gen2 := trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
		mod.RxOptical(b)
		return true
	})
	gen1.Run(0)
	gen2.Run(0)
	sim.RunFor(netsim.Millisecond)
	gen1.Stop()
	gen2.Stop()
	sim.RunFor(10 * netsim.Microsecond)

	flexW := mod.PowerW()
	util := mod.Engine().Utilization()

	tb := power.NewTestbed(sim)
	// A standard SFP draws its constant figure under the same stress.
	rep := tb.Run(0.893, flexW, 500)
	return PowerResult{
		Report:          rep,
		FlexUtilization: util,
		PaperNICOnly:    3.800, PaperWithSFP: 4.693, PaperWithFlex: 5.320,
	}, nil
}

// Render formats the measurement report.
func (r PowerResult) Render() string {
	t := exp.NewTable("Step", "Model (W)", "Paper (W)")
	t.Add("NIC only", fmt.Sprintf("%.3f", r.Report.NICOnly.MeanW), fmt.Sprintf("%.3f", r.PaperNICOnly))
	t.Add("NIC + SFP (stress)", fmt.Sprintf("%.3f", r.Report.WithSFP.MeanW), fmt.Sprintf("%.3f", r.PaperWithSFP))
	t.Add("NIC + FlexSFP (stress)", fmt.Sprintf("%.3f", r.Report.WithFlex.MeanW), fmt.Sprintf("%.3f", r.PaperWithFlex))
	out := "Power measurement (§5): Thunderbolt NIC testbed\n" + t.String()
	out += fmt.Sprintf("Deltas: SFP %.3f W (~.9), FlexSFP %.3f W (~1.5), increase over SFP %.3f W (~.7); PPE utilization %.2f\n",
		r.Report.DeltaSFP, r.Report.DeltaFlex, r.Report.FlexOverSFP, r.FlexUtilization)
	return out
}

// PowerTrialsResult is the §5 power experiment over many seeds.
type PowerTrialsResult struct {
	Trials int

	NICOnlyW    runner.Summary
	WithSFPW    runner.Summary
	WithFlexW   runner.Summary
	DeltaFlexW  runner.Summary
	Utilization runner.Summary

	// Paper values for comparison.
	PaperNICOnly, PaperWithSFP, PaperWithFlex float64
}

// PowerExperimentTrials runs the §5 power procedure for trials seeds in
// parallel (workers bounded by parallelism; 0 = GOMAXPROCS).
func PowerExperimentTrials(rootSeed int64, trials, parallelism int) (PowerTrialsResult, error) {
	return powerTrials(exp.RunContext{Seed: rootSeed, Trials: trials, Parallelism: parallelism})
}

func powerTrials(ctx exp.RunContext) (PowerTrialsResult, error) {
	tr, err := exp.RunTrials(ctx, func(_ int, seed int64) (PowerResult, error) {
		return powerSingle(exp.RunContext{
			Seed: seed, ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
		})
	})
	if err != nil {
		return PowerTrialsResult{}, err
	}
	first := tr.First()
	return PowerTrialsResult{
		Trials:       tr.N(),
		NICOnlyW:     tr.Metric(func(r PowerResult) float64 { return r.Report.NICOnly.MeanW }),
		WithSFPW:     tr.Metric(func(r PowerResult) float64 { return r.Report.WithSFP.MeanW }),
		WithFlexW:    tr.Metric(func(r PowerResult) float64 { return r.Report.WithFlex.MeanW }),
		DeltaFlexW:   tr.Metric(func(r PowerResult) float64 { return r.Report.DeltaFlex }),
		Utilization:  tr.Metric(func(r PowerResult) float64 { return r.FlexUtilization }),
		PaperNICOnly: first.PaperNICOnly, PaperWithSFP: first.PaperWithSFP,
		PaperWithFlex: first.PaperWithFlex,
	}, nil
}

// Render formats the multi-seed power report.
func (r PowerTrialsResult) Render() string {
	t := exp.NewTable("Step", "Model (W, mean ± 95% CI)", "Paper (W)")
	t.Add("NIC only", fmtCI(r.NICOnlyW, 3), fmt.Sprintf("%.3f", r.PaperNICOnly))
	t.Add("NIC + SFP (stress)", fmtCI(r.WithSFPW, 3), fmt.Sprintf("%.3f", r.PaperWithSFP))
	t.Add("NIC + FlexSFP (stress)", fmtCI(r.WithFlexW, 3), fmt.Sprintf("%.3f", r.PaperWithFlex))
	out := fmt.Sprintf("Power measurement (§5): %d trials\n", r.Trials) + t.String()
	out += fmt.Sprintf("FlexSFP delta %s W; PPE utilization %s\n",
		fmtCI(r.DeltaFlexW, 3), fmtCI(r.Utilization, 2))
	return out
}

// runPower is the registered entry point: single-seed below two trials,
// multi-seed with CIs otherwise — uniform knobs either way.
func runPower(ctx exp.RunContext) (exp.Result, error) {
	env := exp.Envelope{Name: "power", Params: ctx.Params()}
	if ctx.EffectiveTrials() > 1 {
		r, err := powerTrials(ctx)
		if err != nil {
			return nil, err
		}
		env.Detail = r
		env.Metrics = []exp.Metric{
			exp.FromSummary("nic_only_w", "W", r.NICOnlyW).VsPaper(r.PaperNICOnly),
			exp.FromSummary("with_sfp_w", "W", r.WithSFPW).VsPaper(r.PaperWithSFP),
			exp.FromSummary("with_flex_w", "W", r.WithFlexW).VsPaper(r.PaperWithFlex),
			exp.FromSummary("ppe_utilization", "frac", r.Utilization),
		}
		return exp.NewResult(env, r.Render), nil
	}
	r, err := powerSingle(ctx)
	if err != nil {
		return nil, err
	}
	env.Detail = r
	env.Metrics = []exp.Metric{
		exp.Scalar("nic_only_w", "W", r.Report.NICOnly.MeanW).VsPaper(r.PaperNICOnly),
		exp.Scalar("with_sfp_w", "W", r.Report.WithSFP.MeanW).VsPaper(r.PaperWithSFP),
		exp.Scalar("with_flex_w", "W", r.Report.WithFlex.MeanW).VsPaper(r.PaperWithFlex),
		exp.Scalar("ppe_utilization", "frac", r.FlexUtilization),
	}
	return exp.NewResult(env, r.Render), nil
}
