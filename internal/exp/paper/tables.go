package paper

import (
	"fmt"
	"math/rand"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/cost"
	"flexsfp/internal/exp"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/runner"
)

// ---------------------------------------------------------------------------
// Table 1: resource usage for the NAT case study (§5.1).

// Table1Row is one component row.
type Table1Row struct {
	Component string
	Res       fpga.Resources
}

// Table1Result reproduces the paper's Table 1.
type Table1Result struct {
	Rows  []Table1Row
	Used  fpga.Resources
	Avail fpga.Resources
	Util  fpga.Utilization
	// Paper values for comparison.
	PaperUsed fpga.Resources
}

// Table1 synthesizes the NAT design and reports the per-component
// breakdown against the MPF200T.
func Table1() Table1Result {
	var res Table1Result
	for _, row := range hls.ShellBreakdown(hls.OneWayFilter) {
		res.Rows = append(res.Rows, Table1Row{row.Name, row.Resources})
	}
	natRes := hls.EstimateProgram(apps.NewNAT().Program(), build.BaseDatapathBits)
	res.Rows = append(res.Rows, Table1Row{"NAT app", natRes})
	for _, r := range res.Rows {
		res.Used = res.Used.Add(r.Res)
	}
	res.Avail = fpga.MPF200T.Capacity
	res.Util = fpga.MPF200T.Utilization(res.Used)
	res.PaperUsed = fpga.Resources{LUT4: 31455, FF: 25518, USRAM: 278, LSRAM: 164}
	return res
}

// Render formats the result like the paper's table.
func (r Table1Result) Render() string {
	t := exp.NewTable("", "4LUT", "FF", "uSRAM", "LSRAM")
	for _, row := range r.Rows {
		t.Add(row.Component, row.Res.LUT4, row.Res.FF, row.Res.USRAM, row.Res.LSRAM)
	}
	t.Add("Used", r.Used.LUT4, r.Used.FF, r.Used.USRAM, r.Used.LSRAM)
	t.Add("Avail.", r.Avail.LUT4, r.Avail.FF, r.Avail.USRAM, r.Avail.LSRAM)
	// Truncate percentages the way the paper prints them (15%, 26%).
	t.Add("Perc.",
		fmt.Sprintf("%d%%", int(r.Util.LUT4)), fmt.Sprintf("%d%%", int(r.Util.FF)),
		fmt.Sprintf("%d%%", int(r.Util.USRAM)), fmt.Sprintf("%d%%", int(r.Util.LSRAM)))
	t.Add("Paper Used", r.PaperUsed.LUT4, r.PaperUsed.FF, r.PaperUsed.USRAM, r.PaperUsed.LSRAM)
	return "Table 1: NAT case study resource usage (MPF200T)\n" + t.String()
}

func runTable1(ctx exp.RunContext) (exp.Result, error) {
	r := Table1()
	env := exp.Envelope{
		Name: "table1", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("lut4_used", "", float64(r.Used.LUT4)).VsPaper(float64(r.PaperUsed.LUT4)),
			exp.Scalar("ff_used", "", float64(r.Used.FF)).VsPaper(float64(r.PaperUsed.FF)),
			exp.Scalar("usram_used", "", float64(r.Used.USRAM)).VsPaper(float64(r.PaperUsed.USRAM)),
			exp.Scalar("lsram_used", "", float64(r.Used.LSRAM)).VsPaper(float64(r.PaperUsed.LSRAM)),
		},
	}
	return exp.NewResult(env, r.Render), nil
}

// ---------------------------------------------------------------------------
// Table 2: literature designs normalized to LE vs the MPF200T (§5.1).

// Table2Row is one design's normalized footprint and fit verdict.
type Table2Row struct {
	Name      string
	LogicLE   int
	BRAMKbits int
	Fits      bool
	Limiting  string
}

// Table2Result reproduces the paper's Table 2.
type Table2Result struct {
	Rows   []Table2Row
	Device fpga.Device
}

// Table2 normalizes the cited designs and checks them against the
// FlexSFP's device. Rows are independent, so they are evaluated across
// workers; the merge is by design index, so the table order never
// depends on scheduling.
func Table2() Table2Result {
	designs := fpga.LiteratureDesigns()
	rows, _ := runner.Map(len(designs), runner.Options{},
		func(i int, _ *rand.Rand) (Table2Row, error) {
			d := designs[i]
			fits, limiting := d.FitsDevice(fpga.MPF200T)
			return Table2Row{
				Name:      d.Name,
				LogicLE:   d.NormalizedLE(),
				BRAMKbits: d.BRAMKbits,
				Fits:      fits,
				Limiting:  limiting,
			}, nil
		})
	return Table2Result{Rows: rows, Device: fpga.MPF200T}
}

// Render formats the result like the paper's table plus fit verdicts.
func (r Table2Result) Render() string {
	t := exp.NewTable("Use case", "Logic (LE)", "BRAM (kbit)", "Fits MPF200T?")
	for _, row := range r.Rows {
		verdict := "yes"
		if !row.Fits {
			verdict = "no (" + row.Limiting + ")"
		}
		t.Add(row.Name, fmt.Sprintf("%dk", (row.LogicLE+500)/1000), row.BRAMKbits, verdict)
	}
	t.Add("FlexSFP (MPF200T)", fmt.Sprintf("%dk", r.Device.LogicElements/1000), r.Device.BRAMKbits, "-")
	return "Table 2: FPGA resource usage of key designs, normalized to 4-input LE\n" + t.String()
}

func runTable2(ctx exp.RunContext) (exp.Result, error) {
	r := Table2()
	fits := 0
	for _, row := range r.Rows {
		if row.Fits {
			fits++
		}
	}
	env := exp.Envelope{
		Name: "table2", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("designs", "", float64(len(r.Rows))),
			exp.Scalar("fit_mpf200t", "", float64(fits)),
		},
	}
	return exp.NewResult(env, r.Render), nil
}

// ---------------------------------------------------------------------------
// Table 3: cost/power per 10 Gb/s slice (§5.2).

// Table3Result reproduces the paper's Table 3.
type Table3Result struct {
	Rows   []cost.Solution
	Claims cost.Claims
	// BOM breakdown behind the FlexSFP row.
	BOM             []cost.BOMItem
	BOMLow, BOMHigh float64
}

// Table3 evaluates the ideal-scaling comparison.
func Table3() Table3Result {
	rows := cost.Table3()
	low, high := cost.BOMTotal(cost.FlexSFPBOM())
	return Table3Result{
		Rows:   rows,
		Claims: cost.EvaluateClaims(rows),
		BOM:    cost.FlexSFPBOM(),
		BOMLow: low, BOMHigh: high,
	}
}

// Render formats raw and scaled columns with paper values alongside.
func (r Table3Result) Render() string {
	t := exp.NewTable("Solution", "Raw $", "Raw W", "$/10G (model)", "W/10G (model)", "$/10G (paper)", "W/10G (paper)")
	for _, s := range r.Rows {
		cl, ch := s.Per10GCost()
		t.Add(s.Name,
			fmt.Sprintf("%.0f-%.0f", s.RawCostLowUSD, s.RawCostHighUSD),
			fmt.Sprintf("%.1f", s.RawPowerW),
			fmt.Sprintf("%.0f-%.0f", cl, ch),
			fmt.Sprintf("%.1f", s.Per10GPower()),
			fmt.Sprintf("%.0f-%.0f", s.PubPer10GCostLow, s.PubPer10GCostHigh),
			fmt.Sprintf("%.1f", s.PubPer10GPowerW))
	}
	out := "Table 3: raw and ideal-scaled cost/power per 10 Gb/s\n" + t.String()
	out += fmt.Sprintf("FlexSFP BOM: $%.0f-%.0f prototype; CAPEX saving vs DPU %.0f%%; power ratio vs best SmartNIC %.1fx\n",
		r.BOMLow, r.BOMHigh, r.Claims.CAPEXSavingVsDPU*100, r.Claims.PowerRatioVsBest)
	return out
}

func runTable3(ctx exp.RunContext) (exp.Result, error) {
	r := Table3()
	env := exp.Envelope{
		Name: "table3", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("bom_low_usd", "$", r.BOMLow),
			exp.Scalar("bom_high_usd", "$", r.BOMHigh),
			exp.Scalar("capex_saving_vs_dpu", "frac", r.Claims.CAPEXSavingVsDPU),
			exp.Scalar("power_ratio_vs_best", "x", r.Claims.PowerRatioVsBest),
		},
	}
	return exp.NewResult(env, r.Render), nil
}
