package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("frames")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after reset = %d", got)
	}
}

func TestCounterConcurrentSum(t *testing.T) {
	r := New()
	c := r.Counter("c")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("concurrent sum = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.SetInt(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{1, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1+10+11+100+500+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 5000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	snap, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// <=10: {1,10}; <=100: {11,100}; <=1000: {500}; overflow: {5000}.
	want := []uint64{2, 2, 1, 1}
	var got []uint64
	for _, b := range snap.Buckets {
		got = append(got, b.Count)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	if !snap.Buckets[3].Overflow {
		t.Fatal("last bucket should be the overflow bin")
	}
	if snap.Mean != float64(h.Sum())/6 {
		t.Fatalf("mean = %v", snap.Mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := New()
	h := r.Histogram("empty", []uint64{1})
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram min/max/mean = %d/%d/%v", h.Min(), h.Max(), h.Mean())
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(100, 2, 4)
	if !reflect.DeepEqual(exp, []uint64{100, 200, 400, 800}) {
		t.Fatalf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(0, 8, 3)
	if !reflect.DeepEqual(lin, []uint64{0, 8, 16}) {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	// Slow-growing exponential layouts must stay strictly increasing.
	slow := ExpBuckets(1, 1.1, 10)
	for i := 1; i < len(slow); i++ {
		if slow[i] <= slow[i-1] {
			t.Fatalf("ExpBuckets not strictly increasing: %v", slow)
		}
	}
}

func TestGaugeFuncAndSnapshotOrdering(t *testing.T) {
	r := New()
	r.Counter("zz")
	r.Counter("aa").Add(5)
	r.Gauge("g2").Set(2)
	r.GaugeFunc("g1", func() float64 { return 1 })
	snap := r.Snapshot()
	if snap.Counters[0].Name != "aa" || snap.Counters[1].Name != "zz" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if snap.Gauges[0].Name != "g1" || snap.Gauges[1].Name != "g2" {
		t.Fatalf("gauges not sorted: %+v", snap.Gauges)
	}
	if v, ok := snap.Counter("aa"); !ok || v != 5 {
		t.Fatalf("Counter(aa) = %d,%v", v, ok)
	}
	if v, ok := snap.Gauge("g1"); !ok || v != 1 {
		t.Fatalf("Gauge(g1) = %v,%v", v, ok)
	}
	if _, ok := snap.Counter("missing"); ok {
		t.Fatal("missing counter found")
	}
	// Two snapshots of the same state serialize identically.
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(r.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := New()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r.Gauge("dup")
}

// TestConcurrentRecordAndSnapshot is the race-detector regression for the
// whole record path: counters, gauges, histograms and snapshots from
// many goroutines at once.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(10, 4, 8))
	r.GaugeFunc("f", func() float64 { return math.Pi })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Add(1)
				g.SetInt(int64(i))
				h.Observe(uint64(i * w))
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := r.Snapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 20000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != 20000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
