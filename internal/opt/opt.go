// Package opt is the FlexSFP pipeline optimizer: the pass pipeline that
// sits between application compilation and HLS estimation in the §4.2
// program→bitstream flow. The seed flow reproduced the paper's Table 1/2
// accounting but performed zero optimization, so every compiled pipeline
// paid for dead stages, unfused passes, and unpacked soft-core programs.
// Per hXDP (instruction-level compaction and parallelization is where
// FPGA packet-program performance comes from) and Kugelblitz (executable
// cost-aware design-space exploration picks the operating point), this
// package provides:
//
//   - structural passes over ppe.Program (Optimize): exact-table merging
//     and stage fusion (which subsumes dead-stage elimination), cutting
//     PipelineDepth — and therefore latency — without touching the
//     behavioral Handler;
//   - instruction passes over xdp.Program (OptimizeXDP): unreachable-code
//     elimination, redundant load folding, dead register-write
//     elimination, and jump threading, plus hXDP-style VLIW packing
//     (ScheduleCycles) that fills each stage's issue slots and shrinks
//     the soft core's per-packet occupancy (ppe.Program.ProgCycles),
//     raising CapacityPPS for instruction-bound programs.
//
// Every pass preserves observable behavior exactly: optimized and
// unoptimized programs produce identical verdicts and identical packet
// bytes on any input (including out-of-bounds aborts). The equivalence
// property is enforced by randomized property tests over every catalog
// app and by a native fuzz target over arbitrary programs.
//
// The companion subpackage opt/dse drives the cost-aware design-space
// exploration on top of these passes.
package opt

import (
	"flexsfp/internal/ppe"
	"flexsfp/internal/xdp"
)

// Defaults for the optimizer cost model.
const (
	// DefaultIssueWidth is the VLIW lane count of the soft core the
	// packing pass schedules for (hXDP uses a 4-lane datapath).
	DefaultIssueWidth = 4
	// DefaultStageActionBudget is how many action primitives one fused
	// match-action stage can host next to its table match: the action
	// crossbar of a stage has a bounded number of result buses.
	DefaultStageActionBudget = 6
)

// Options tune the optimizer cost model. The zero value selects the
// calibrated defaults.
type Options struct {
	// IssueWidth is the soft core's parallel issue width (VLIW lanes)
	// used by the packing pass. 0 means DefaultIssueWidth.
	IssueWidth int
	// StageActionBudget is the number of action primitives a single
	// fused stage can host. 0 means DefaultStageActionBudget.
	StageActionBudget int
}

func (o Options) withDefaults() Options {
	if o.IssueWidth <= 0 {
		o.IssueWidth = DefaultIssueWidth
	}
	if o.StageActionBudget <= 0 {
		o.StageActionBudget = DefaultStageActionBudget
	}
	return o
}

// Report summarizes what the structural pass pipeline did to a program.
type Report struct {
	Name         string `json:"name"`
	StagesBefore int    `json:"stages_before"`
	StagesAfter  int    `json:"stages_after"`
	TablesBefore int    `json:"tables_before"`
	TablesAfter  int    `json:"tables_after"`
	// DepthBefore/DepthAfter are PipelineDepth at the 64-bit baseline
	// width, the headline latency effect of fusion.
	DepthBefore int `json:"depth_before"`
	DepthAfter  int `json:"depth_after"`
}

// Optimize runs the structural pass pipeline over a compiled program and
// returns the optimized copy plus a report. The input program is not
// modified; the returned program shares the input's Handler, so verdicts
// are unchanged by construction — the passes only reshape the
// declarative structure the HLS estimator and the pipeline-depth
// accounting consume.
//
// Pass order matters and is fixed: table merging runs first (fewer
// physical tables means fewer match stages for fusion to respect), then
// stage fusion. Fusion subsumes dead-stage elimination: a declared stage
// with no work to host is a zero-cost merge into its neighbor.
//
// Optimize is idempotent: running it on its own output is a no-op.
func Optimize(p *ppe.Program, o Options) (*ppe.Program, Report) {
	o = o.withDefaults()
	q := *p
	q.Tables = append([]ppe.TableSpec(nil), p.Tables...)
	q.Actions = append([]ppe.ActionSpec(nil), p.Actions...)
	q.Registers = append([]ppe.RegisterSpec(nil), p.Registers...)
	rep := Report{
		Name:         p.Name,
		StagesBefore: p.Stages,
		TablesBefore: len(p.Tables),
	}
	q.Tables = mergeTables(q.Tables)
	q.Stages = fuseStages(&q, o)
	rep.StagesAfter = q.Stages
	rep.TablesAfter = len(q.Tables)
	rep.DepthBefore = p.PipelineDepth(64)
	rep.DepthAfter = q.PipelineDepth(64)
	return &q, rep
}

// mergeTables coalesces exact-match tables with identical key/value
// geometry into one physical bank holding the union of their entries.
// Legality: same-key-shape exact tables can share one hash lattice and
// one LSRAM plan; the merged bank disambiguates members with
// ceil(log2(n)) tag bits prefixed to the key, which the pass adds to
// KeyBits so the estimator prices the wider match honestly. Runtime
// behavior is untouched — ppe.State banks are per-app behavioral models,
// only the synthesized memory plan merges. Ternary tables are never
// merged: their cross-table priority semantics do not compose.
//
// The merged table takes the position and name prefix of its group's
// first member, so the output order is deterministic.
func mergeTables(tables []ppe.TableSpec) []ppe.TableSpec {
	if len(tables) < 2 {
		return tables
	}
	type shape struct {
		keyBits, valueBits int
	}
	groups := make(map[shape][]int)
	for i, t := range tables {
		if t.Kind != ppe.TableExact {
			continue
		}
		k := shape{t.KeyBits, t.ValueBits}
		groups[k] = append(groups[k], i)
	}
	drop := make([]bool, len(tables))
	out := make([]ppe.TableSpec, 0, len(tables))
	merged := make(map[int]ppe.TableSpec)
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		m := tables[members[0]]
		name := m.Name
		for _, i := range members[1:] {
			m.Size += tables[i].Size
			name += "+" + tables[i].Name
			drop[i] = true
		}
		m.Name = name
		m.KeyBits += tagBits(len(members))
		merged[members[0]] = m
	}
	for i, t := range tables {
		if drop[i] {
			continue
		}
		if m, ok := merged[i]; ok {
			t = m
		}
		out = append(out, t)
	}
	return out
}

// tagBits returns the key-tag width needed to disambiguate n merged
// tables sharing one bank.
func tagBits(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// fuseStages computes the minimal match-action chain the program's
// structure needs and returns min(declared, needed): fusion only ever
// shortens the pipeline, because a declared stage count may encode
// behavioral pipelining the structure cannot express. The budget math:
//
//   - one stage hosts at most one table match (exact or ternary);
//   - one stage's action crossbar hosts at most StageActionBudget
//     primitives;
//   - a soft-core program (ProgCycles > 0) additionally needs
//     ceil(ProgCycles / xdp.InsnsPerStage) stages of instruction store —
//     this is where packing pays: a packed program's issue schedule fits
//     fewer stage-equivalents of fabric.
//
// Two adjacent stages merge exactly when their combined cost fits one
// stage's budget, so needed = max over the three per-resource ceilings.
func fuseStages(p *ppe.Program, o Options) int {
	needed := 1
	if t := len(p.Tables); t > needed {
		needed = t
	}
	if a := (len(p.Actions) + o.StageActionBudget - 1) / o.StageActionBudget; a > needed {
		needed = a
	}
	if p.ProgCycles > 0 {
		if s := (p.ProgCycles + xdp.InsnsPerStage - 1) / xdp.InsnsPerStage; s > needed {
			needed = s
		}
	}
	if needed >= p.Stages {
		return p.Stages
	}
	return needed
}
