package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// DoH-block table capacities.
const (
	DoHBlockedNames = 8192
	DoHResolverIPs  = 1024
)

// DoHBlockConfig configures P4DDPI-style DNS filtering plus DoH-resolver
// blocking (the per-subscriber "DoH blocking" policy of §2.1).
type DoHBlockConfig struct {
	// BlockedDomains are matched against DNS QNAMEs, including all
	// subdomains ("ads.example" blocks "x.ads.example").
	BlockedDomains []string `json:"blocked_domains,omitempty"`
	// ResolverIPs are known DoH endpoints: TCP/UDP 443 to these is cut.
	ResolverIPs []string `json:"resolver_ips,omitempty"`
}

// DoH counter indexes (bank "doh").
const (
	DoHDNSBlocked = iota
	DoHHTTPSBlocked
	DoHPassed
	dohCounters
)

type dohApp struct {
	prog      *ppe.Program
	state     *ppe.State
	names     *ppe.Table // packet.FNV64(qname suffix)(64b) → action(8b)
	resolvers *ppe.Table // IPv4(32b) → action(8b)
	ctr       *ppe.CounterBank
	v         packet.View
}

// NewDoHBlock builds a DNS/DoH filtering instance.
func NewDoHBlock() *dohApp {
	a := &dohApp{state: ppe.NewState()}
	nameSpec := ppe.TableSpec{Name: "blocked_names", Kind: ppe.TableExact, KeyBits: 64, ValueBits: 8, Size: DoHBlockedNames}
	resSpec := ppe.TableSpec{Name: "resolvers", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 8, Size: DoHResolverIPs}
	a.names = a.state.AddTable(nameSpec)
	a.resolvers = a.state.AddTable(resSpec)
	a.ctr = a.state.AddCounters("doh", dohCounters)
	a.prog = &ppe.Program{
		Name:        "dohblock",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeUDP, packet.LayerTypeDNS},
		Tables:      []ppe.TableSpec{nameSpec, resSpec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 64},
			{Kind: ppe.ActionCounterBank, Count: dohCounters},
		},
		Stages:  3,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *dohApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *dohApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *dohApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg DoHBlockConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("dohblock: %w", err)
	}
	for _, d := range cfg.BlockedDomains {
		if err := a.BlockDomain(d); err != nil {
			return err
		}
	}
	for _, ip := range cfg.ResolverIPs {
		if err := a.BlockResolver(ip); err != nil {
			return err
		}
	}
	return nil
}

// BlockDomain adds a domain (and implicitly its subdomains) to the list.
func (a *dohApp) BlockDomain(domain string) error {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	if domain == "" {
		return fmt.Errorf("dohblock: empty domain")
	}
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], packet.FNV64([]byte(domain)))
	return a.names.Add(key[:], []byte{1})
}

// BlockResolver adds a DoH endpoint IP.
func (a *dohApp) BlockResolver(ip string) error {
	addr, err := netip.ParseAddr(ip)
	if err != nil || !addr.Is4() {
		return fmt.Errorf("dohblock: bad resolver IP %q", ip)
	}
	a4 := addr.As4()
	return a.resolvers.Add(a4[:], []byte{1})
}

func (a *dohApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !a.v.Parse(ctx.Data) || !a.v.IsIPv4 {
		return ppe.VerdictPass
	}
	v := &a.v

	// DoH path: HTTPS to a known resolver.
	if v.DstPort == packet.PortHTTPS &&
		(v.Proto == packet.IPProtocolTCP || v.Proto == packet.IPProtocolUDP) {
		if _, blocked := a.resolvers.Lookup(v.DstIPv4()); blocked {
			a.ctr.Inc(DoHHTTPSBlocked, len(ctx.Data))
			return ppe.VerdictDrop
		}
	}

	// Plain-DNS path: inspect queries on UDP 53 (only when the full UDP
	// header is present).
	if v.Proto == packet.IPProtocolUDP && v.DstPort == packet.PortDNS &&
		v.L4Off != 0 && len(ctx.Data) >= v.L4Off+8 {
		if a.dnsBlocked(ctx.Data[v.L4Off+8:]) {
			a.ctr.Inc(DoHDNSBlocked, len(ctx.Data))
			return ppe.VerdictDrop
		}
	}

	a.ctr.Inc(DoHPassed, len(ctx.Data))
	return ppe.VerdictPass
}

// dnsBlocked decodes the query and checks the QNAME and every parent
// suffix against the blocked-name table.
func (a *dohApp) dnsBlocked(payload []byte) bool {
	var d packet.DNS
	if d.DecodeFromBytes(payload) != nil || d.QR {
		return false
	}
	for _, q := range d.Questions {
		name := strings.ToLower(q.Name)
		for {
			var key [8]byte
			binary.BigEndian.PutUint64(key[:], packet.FNV64([]byte(name)))
			if _, blocked := a.names.Lookup(key[:]); blocked {
				return true
			}
			dot := strings.IndexByte(name, '.')
			if dot < 0 {
				break
			}
			name = name[dot+1:]
		}
	}
	return false
}
