package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS record types and classes the model uses.
const (
	DNSTypeA     uint16 = 1
	DNSTypeNS    uint16 = 2
	DNSTypeCNAME uint16 = 5
	DNSTypeAAAA  uint16 = 28
	DNSTypeHTTPS uint16 = 65
	DNSClassIN   uint16 = 1
)

// DNSQuestion is one entry of the question section.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSAnswer is one resource record with opaque RDATA.
type DNSAnswer struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// DNS is a compact DNS message view: full header, parsed questions and
// answers with opaque RDATA — enough for the paper's DNS/DoH filtering use
// case (P4DDPI-style) and for telemetry tests.
type DNS struct {
	ID        uint16
	QR        bool // response
	Opcode    uint8
	AA, TC    bool
	RD, RA    bool
	RCode     uint8
	Questions []DNSQuestion
	Answers   []DNSAnswer
	// NSCount/ARCount records are counted but not parsed.
	NSCount, ARCount uint16
	payload          []byte
}

// LayerType implements Layer.
func (d *DNS) LayerType() LayerType { return LayerTypeDNS }

// DecodeFromBytes implements Layer.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < 12 {
		return ErrTooShort
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	d.QR = flags&0x8000 != 0
	d.Opcode = uint8(flags>>11) & 0xf
	d.AA = flags&0x0400 != 0
	d.TC = flags&0x0200 != 0
	d.RD = flags&0x0100 != 0
	d.RA = flags&0x0080 != 0
	d.RCode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	d.NSCount = binary.BigEndian.Uint16(data[8:10])
	d.ARCount = binary.BigEndian.Uint16(data[10:12])
	off := 12
	d.Questions = d.Questions[:0]
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return err
		}
		off += n
		if len(data) < off+4 {
			return ErrTooShort
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off:]),
			Class: binary.BigEndian.Uint16(data[off+2:]),
		})
		off += 4
	}
	d.Answers = d.Answers[:0]
	for i := 0; i < an; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return err
		}
		off += n
		if len(data) < off+10 {
			return ErrTooShort
		}
		rdlen := int(binary.BigEndian.Uint16(data[off+8:]))
		if len(data) < off+10+rdlen {
			return ErrTruncated
		}
		d.Answers = append(d.Answers, DNSAnswer{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off:]),
			Class: binary.BigEndian.Uint16(data[off+2:]),
			TTL:   binary.BigEndian.Uint32(data[off+4:]),
			Data:  data[off+10 : off+10+rdlen],
		})
		off += 10 + rdlen
	}
	d.payload = data[off:]
	return nil
}

// decodeName decodes a possibly-compressed DNS name starting at off,
// returning the dotted name and the number of bytes consumed at off.
func decodeName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	consumed := 0
	jumped := false
	hops := 0
	pos := off
	for {
		if pos >= len(data) {
			return "", 0, ErrTooShort
		}
		b := data[pos]
		switch {
		case b == 0:
			if !jumped {
				consumed = pos - off + 1
			}
			return sb.String(), consumed, nil
		case b&0xc0 == 0xc0:
			if pos+1 >= len(data) {
				return "", 0, ErrTooShort
			}
			if !jumped {
				consumed = pos - off + 2
			}
			ptr := int(binary.BigEndian.Uint16(data[pos:]) & 0x3fff)
			if ptr >= pos {
				return "", 0, fmt.Errorf("%w: forward DNS compression pointer", ErrBadHeader)
			}
			pos = ptr
			jumped = true
			hops++
			if hops > 16 {
				return "", 0, fmt.Errorf("%w: DNS compression loop", ErrBadHeader)
			}
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: reserved DNS label flag", ErrBadHeader)
		default:
			l := int(b)
			if pos+1+l > len(data) {
				return "", 0, ErrTooShort
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[pos+1 : pos+1+l])
			pos += 1 + l
		}
	}
}

func encodeName(b *SerializeBuffer, name string) error {
	if name == "" {
		copy(b.AppendBytes(1), []byte{0})
		return nil
	}
	labels := strings.Split(name, ".")
	total := 1
	for _, l := range labels {
		if len(l) == 0 || len(l) > 63 {
			return fmt.Errorf("%w: DNS label %q", ErrBadHeader, l)
		}
		total += 1 + len(l)
	}
	out := b.AppendBytes(total)
	i := 0
	for _, l := range labels {
		out[i] = byte(len(l))
		copy(out[i+1:], l)
		i += 1 + len(l)
	}
	out[i] = 0
	return nil
}

// NextLayerType implements Layer.
func (d *DNS) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (d *DNS) LayerPayload() []byte { return d.payload }

// SerializeTo implements SerializableLayer. Names are written uncompressed.
func (d *DNS) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	// DNS builds front to back into a scratch buffer, then prepends.
	scratch := NewSerializeBufferExpectedSize(0, 512)
	hdr := scratch.AppendBytes(12)
	binary.BigEndian.PutUint16(hdr[0:2], d.ID)
	var flags uint16
	if d.QR {
		flags |= 0x8000
	}
	flags |= uint16(d.Opcode&0xf) << 11
	if d.AA {
		flags |= 0x0400
	}
	if d.TC {
		flags |= 0x0200
	}
	if d.RD {
		flags |= 0x0100
	}
	if d.RA {
		flags |= 0x0080
	}
	flags |= uint16(d.RCode & 0xf)
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(d.Questions)))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(d.Answers)))
	binary.BigEndian.PutUint16(hdr[8:10], d.NSCount)
	binary.BigEndian.PutUint16(hdr[10:12], d.ARCount)
	for _, q := range d.Questions {
		if err := encodeName(scratch, q.Name); err != nil {
			return err
		}
		qb := scratch.AppendBytes(4)
		binary.BigEndian.PutUint16(qb[0:2], q.Type)
		binary.BigEndian.PutUint16(qb[2:4], q.Class)
	}
	for _, a := range d.Answers {
		if err := encodeName(scratch, a.Name); err != nil {
			return err
		}
		ab := scratch.AppendBytes(10 + len(a.Data))
		binary.BigEndian.PutUint16(ab[0:2], a.Type)
		binary.BigEndian.PutUint16(ab[2:4], a.Class)
		binary.BigEndian.PutUint32(ab[4:8], a.TTL)
		binary.BigEndian.PutUint16(ab[8:10], uint16(len(a.Data)))
		copy(ab[10:], a.Data)
	}
	copy(b.PrependBytes(scratch.Len()), scratch.Bytes())
	return nil
}
