package apps

import (
	"testing"

	"flexsfp/internal/ppe"
)

func monitorAt(t *testing.T, cfg MonitorConfig) *monitorApp {
	t.Helper()
	a := NewMonitor()
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	return a
}

func feed(a *monitorApp, tsNs uint64, dir ppe.Direction) {
	ctx := &ppe.Ctx{Data: make([]byte, 64), Dir: dir, TimestampNs: tsNs}
	a.prog.Handler.HandlePacket(ctx)
}

func TestMonitorMicroburstDetection(t *testing.T) {
	a := monitorAt(t, MonitorConfig{BurstFrames: 10, BurstWindowNs: 1000, GapNs: 1e9})
	// Steady traffic at 5 µs spacing: no bursts.
	for i := uint64(0); i < 20; i++ {
		feed(a, i*5000, ppe.DirEdgeToOptical)
	}
	if n, _ := a.ctr.Read(MonMicrobursts); n != 0 {
		t.Fatalf("steady traffic flagged %d bursts", n)
	}
	// A spike: 15 frames within 500 ns.
	base := uint64(200_000)
	for i := uint64(0); i < 15; i++ {
		feed(a, base+i*30, ppe.DirEdgeToOptical)
	}
	if n, _ := a.ctr.Read(MonMicrobursts); n != 1 {
		t.Errorf("microbursts = %d, want 1 (fired once per window)", n)
	}
	ev := a.Events()
	if len(ev) != 1 || ev[0].Kind != "microburst" || ev[0].Detail < 10 {
		t.Errorf("events = %+v", ev)
	}
}

func TestMonitorBurstFiresOncePerWindow(t *testing.T) {
	a := monitorAt(t, MonitorConfig{BurstFrames: 5, BurstWindowNs: 1000, GapNs: 1e9})
	// 50 frames inside one window: still a single event.
	for i := uint64(0); i < 50; i++ {
		feed(a, 1000+i*10, ppe.DirEdgeToOptical)
	}
	if n, _ := a.ctr.Read(MonMicrobursts); n != 1 {
		t.Errorf("microbursts = %d, want 1", n)
	}
}

func TestMonitorFlapDetection(t *testing.T) {
	a := monitorAt(t, MonitorConfig{GapNs: 1_000_000, BurstFrames: 1000, BurstWindowNs: 1})
	feed(a, 0, ppe.DirOpticalToEdge)
	feed(a, 500_000, ppe.DirOpticalToEdge) // 0.5 ms gap: fine
	if n, _ := a.ctr.Read(MonFlaps); n != 0 {
		t.Fatal("normal gap flagged as flap")
	}
	feed(a, 3_000_000, ppe.DirOpticalToEdge) // 2.5 ms of silence: flap
	if n, _ := a.ctr.Read(MonFlaps); n != 1 {
		t.Errorf("flaps = %d, want 1", n)
	}
	ev := a.Events()
	if len(ev) != 1 || ev[0].Kind != "flap" || ev[0].Detail != 2_500_000 {
		t.Errorf("events = %+v", ev)
	}
}

func TestMonitorDirectionsIndependent(t *testing.T) {
	a := monitorAt(t, MonitorConfig{GapNs: 1_000_000, BurstFrames: 1000, BurstWindowNs: 1})
	feed(a, 0, ppe.DirEdgeToOptical)
	// Long silence on edge→optical only; optical→edge stays quiet
	// throughout (its first frame ever does not count as a flap).
	feed(a, 5_000_000, ppe.DirOpticalToEdge)
	if n, _ := a.ctr.Read(MonFlaps); n != 0 {
		t.Error("first frame on a direction counted as flap")
	}
	feed(a, 6_000_000, ppe.DirEdgeToOptical) // 6 ms gap on its own direction
	if n, _ := a.ctr.Read(MonFlaps); n != 1 {
		t.Errorf("flaps = %d, want 1", n)
	}
}

func TestMonitorDefaults(t *testing.T) {
	a := NewMonitor()
	if err := a.Configure(nil); err != nil {
		t.Fatal(err)
	}
	if a.cfg.BurstFrames != 32 || a.cfg.GapNs != 1_000_000_000 {
		t.Errorf("defaults = %+v", a.cfg)
	}
	if err := a.Configure([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestMonitorEventsDrain(t *testing.T) {
	a := monitorAt(t, MonitorConfig{BurstFrames: 2, BurstWindowNs: 1000, GapNs: 1e9})
	feed(a, 0, ppe.DirEdgeToOptical)
	feed(a, 10, ppe.DirEdgeToOptical)
	if len(a.Events()) != 1 {
		t.Fatal("expected one event")
	}
	if len(a.Events()) != 0 {
		t.Error("events not drained")
	}
}

func TestMonitorInRegistry(t *testing.T) {
	r := NewRegistry()
	app, err := r.New("monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Program().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := app.Configure(nil); err != nil {
		t.Fatal(err)
	}
}
