package mgmt

import (
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func TestCanaryRolloutAllHealthy(t *testing.T) {
	fleet, mods, _, mu := buildFleet(t, 5)
	signed := signedStatefulImage(t, 9)

	rep := fleet.PushCanary(signed, CanaryConfig{TargetSlot: 2, Canaries: 2, WaveSize: 2})
	if rep.RolledBack {
		t.Fatalf("healthy rollout rolled back: %+v", rep.Failed)
	}
	if len(rep.Canaries) != 2 || rep.Canaries[0] != "a-port" || rep.Canaries[1] != "b-port" {
		t.Errorf("canaries = %v", rep.Canaries)
	}
	if len(rep.Updated) != 5 || len(rep.Failed) != 0 {
		t.Errorf("updated=%d failed=%d", len(rep.Updated), len(rep.Failed))
	}
	for name, slot := range rep.PrevSlots {
		if slot != 1 {
			t.Errorf("%s: prev slot = %d, want 1", name, slot)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, m := range mods {
		if !m.Running() || m.ActiveSlot() != 2 {
			t.Errorf("%s: running=%v slot=%d", m.Name(), m.Running(), m.ActiveSlot())
		}
	}
}

func TestCanaryRollbackOnUnhealthyCanary(t *testing.T) {
	fleet, mods, _, mu := buildFleet(t, 4)
	signed := signedStatefulImage(t, 9)

	// The canary pushes and reboots fine but reports unhealthy: the
	// rollout must stop at the first member and restore it, leaving the
	// other three untouched.
	rep := fleet.PushCanary(signed, CanaryConfig{
		TargetSlot:  2,
		Canaries:    1,
		HealthCheck: func(string, *Client) error { return errors.New("loss spike") },
	})
	if !rep.RolledBack {
		t.Fatal("unhealthy canary did not trigger rollback")
	}
	if len(rep.Failed) != 1 || rep.Failed[0].Name != "a-port" {
		t.Errorf("failed = %+v", rep.Failed)
	}
	if len(rep.Updated) != 0 {
		t.Errorf("updated = %v, want none past the canary", rep.Updated)
	}
	if len(rep.RollbackErrs) != 0 {
		t.Errorf("rollback errors: %+v", rep.RollbackErrs)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, m := range mods {
		if !m.Running() || m.ActiveSlot() != 1 {
			t.Errorf("%s: running=%v slot=%d, want restored slot 1", m.Name(), m.Running(), m.ActiveSlot())
		}
	}
}

func TestCanaryToleratedFailureContinues(t *testing.T) {
	fleet, mods, _, mu := buildFleet(t, 5)
	signed := signedStatefulImage(t, 9)

	// One member past the canary reports unhealthy; with a lenient
	// threshold the rollout completes and only that member is reverted
	// later by the operator (it stays in Failed).
	rep := fleet.PushCanary(signed, CanaryConfig{
		TargetSlot:     2,
		Canaries:       1,
		WaveSize:       2,
		MaxFailureFrac: 0.5,
		HealthCheck: func(name string, c *Client) error {
			if name == "c-port" {
				return errors.New("loss spike")
			}
			s, err := c.ReadStats()
			if err != nil {
				return err
			}
			if !s.Running || s.ActiveSlot != 2 {
				return errors.New("not on target slot")
			}
			return nil
		},
	})
	if rep.RolledBack {
		t.Fatalf("rollout rolled back under lenient threshold: %+v", rep.Failed)
	}
	if len(rep.Updated) != 4 || len(rep.Failed) != 1 {
		t.Errorf("updated=%d failed=%d", len(rep.Updated), len(rep.Failed))
	}
	mu.Lock()
	defer mu.Unlock()
	for _, m := range mods {
		if !m.Running() || m.ActiveSlot() != 2 {
			t.Errorf("%s: running=%v slot=%d", m.Name(), m.Running(), m.ActiveSlot())
		}
	}
}

func TestCanaryEmptyFleet(t *testing.T) {
	fleet := NewFleet()
	rep := fleet.PushCanary([]byte{1}, CanaryConfig{TargetSlot: 2})
	if rep.RolledBack || len(rep.Updated) != 0 || len(rep.Failed) != 0 {
		t.Errorf("empty fleet report = %+v", rep)
	}
}

// TestPushCanarySnapshotsMembership pins the wave accounting to the
// member set captured at rollout start: a Remove mid-rollout must not
// drop a member from later waves (or from rollback), and an Add must not
// enlarge the rollout in flight.
func TestPushCanarySnapshotsMembership(t *testing.T) {
	fleet, mods, _, mu := buildFleet(t, 4)
	signed := signedStatefulImage(t, 9)

	var once sync.Once
	rep := fleet.PushCanary(signed, CanaryConfig{
		TargetSlot: 2,
		Canaries:   1,
		WaveSize:   1,
		HealthCheck: func(name string, c *Client) error {
			once.Do(func() {
				// While the canary bakes: drop a not-yet-attempted member
				// and add a brand-new one.
				fleet.Remove(nameFor(3))
				fleet.Add("z-late", TransportFunc(func([]byte) ([]byte, error) {
					t.Error("member added mid-rollout was pushed")
					return nil, errors.New("z-late is not part of this rollout")
				}))
			})
			s, err := c.ReadStats()
			if err != nil {
				return err
			}
			if !s.Running || s.ActiveSlot != 2 {
				return errors.New("unhealthy")
			}
			return nil
		},
	})

	attempted := append([]string(nil), rep.Updated...)
	for _, o := range rep.Failed {
		attempted = append(attempted, o.Name)
	}
	sort.Strings(attempted)
	want := []string{nameFor(0), nameFor(1), nameFor(2), nameFor(3)}
	if !reflect.DeepEqual(attempted, want) {
		t.Fatalf("attempted members = %v, want the start-of-rollout set %v", attempted, want)
	}
	if rep.RolledBack {
		t.Fatalf("healthy rollout rolled back: %+v", rep.Failed)
	}
	mu.Lock()
	defer mu.Unlock()
	// The removed member was still updated — it was in the snapshot.
	if mods[3].ActiveSlot() != 2 {
		t.Errorf("removed member active slot = %d, want 2", mods[3].ActiveSlot())
	}
}

// TestPushCanaryRollbackCoversRemovedMember forces a breach after a
// member was removed from the fleet: the snapshot's client refs must
// still reach it to restore its previous slot.
func TestPushCanaryRollbackCoversRemovedMember(t *testing.T) {
	fleet, mods, _, mu := buildFleet(t, 3)
	signed := signedStatefulImage(t, 9)

	calls := 0
	rep := fleet.PushCanary(signed, CanaryConfig{
		TargetSlot:     2,
		Canaries:       1,
		WaveSize:       1,
		MaxFailureFrac: 0.4,
		HealthCheck: func(name string, c *Client) error {
			calls++
			if calls == 1 {
				// Canary is healthy, but the operator removes it while the
				// next wave runs.
				fleet.Remove(nameFor(0))
				return nil
			}
			return errors.New("wedged") // every later member flunks -> breach
		},
	})
	if !rep.RolledBack {
		t.Fatalf("expected rollback, got %+v", rep)
	}
	if len(rep.RollbackErrs) != 0 {
		t.Fatalf("rollback errors: %+v", rep.RollbackErrs)
	}
	mu.Lock()
	defer mu.Unlock()
	if mods[0].ActiveSlot() != 1 {
		t.Errorf("removed canary not rolled back: slot = %d, want 1", mods[0].ActiveSlot())
	}
}
