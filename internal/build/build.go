// Package build compiles a catalog application into a signed bitstream
// and boots it on a freshly provisioned module — the one-call
// provisioning path shared by the public facade (package flexsfp), the
// experiment harness (internal/exp), and the daemons. It lives under
// internal/ so the experiment framework can use it without importing
// the facade (which re-exports everything here for external callers).
package build

import (
	"encoding/json"
	"fmt"

	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/opt"
)

// Baseline operating point of the prototype (§5.1).
const (
	BaseClockHz      = 156_250_000
	BaseDatapathBits = 64
)

// DefaultAuthKey is the development fleet key used when none is given.
var DefaultAuthKey = []byte("flexsfp-dev-fleet-key")

// NewSim creates a deterministic simulation world.
func NewSim(seed int64) *netsim.Simulator { return netsim.New(seed) }

// ModuleSpec describes a module to build and boot in one call.
type ModuleSpec struct {
	Name     string
	DeviceID uint32
	Shell    hls.Shell
	// App is a catalog application name ("nat", "acl", "vlan", "tunnel",
	// "lb", "telemetry", "netflow", "ratelimit", "dohblock", "sanitize").
	App string
	// Config is the app's config struct (JSON-marshaled into the
	// bitstream manifest) or nil.
	Config any
	// AuthKey authenticates OTA reprogramming; defaults to a fixed dev
	// key.
	AuthKey []byte
	// ClockHz / DatapathBits default to the §5.1 operating point.
	ClockHz      int64
	DatapathBits int
	// Device defaults to the MPF200T prototype part.
	Device fpga.Device
	// Optimize runs the opt pass pipeline over the compiled program
	// (table merging + stage fusion) before HLS, and records the fact in
	// the manifest so boot re-applies the same passes. Off by default:
	// the baseline experiments measure the unoptimized flow.
	Optimize bool
}

// Module compiles the app, provisions a module with the bitstream in
// flash slot 1, and boots it. It returns the running module and the
// implementation report.
func Module(sim *netsim.Simulator, spec ModuleSpec) (*core.Module, *hls.Design, error) {
	if spec.App == "" {
		return nil, nil, fmt.Errorf("flexsfp: ModuleSpec.App is required")
	}
	if spec.ClockHz == 0 {
		spec.ClockHz = BaseClockHz
	}
	if spec.DatapathBits == 0 {
		spec.DatapathBits = BaseDatapathBits
	}
	if spec.Device.Name == "" {
		spec.Device = fpga.MPF200T
	}
	if spec.AuthKey == nil {
		spec.AuthKey = DefaultAuthKey
	}
	var cfg []byte
	if spec.Config != nil {
		b, err := json.Marshal(spec.Config)
		if err != nil {
			return nil, nil, fmt.Errorf("flexsfp: encoding config: %w", err)
		}
		cfg = b
	}
	registry := apps.NewRegistry()
	app, err := registry.New(spec.App)
	if err != nil {
		return nil, nil, err
	}
	// Configure before compiling: apps whose declarative structure
	// depends on their config (e.g. the XDP host app, whose stage count
	// follows the embedded program) must be synthesized post-config.
	// Booting instantiates a fresh instance and configures it again.
	if err := app.Configure(cfg); err != nil {
		return nil, nil, err
	}
	prog := app.Program()
	if spec.Optimize {
		prog, _ = opt.Optimize(prog, opt.Options{})
	}
	design, err := hls.Compile(prog, hls.Options{
		Device: spec.Device, Shell: spec.Shell,
		ClockHz: spec.ClockHz, DatapathBits: spec.DatapathBits,
		Config: cfg, Optimized: spec.Optimize,
	})
	if err != nil {
		return nil, nil, err
	}
	encoded, err := design.Bitstream.Encode()
	if err != nil {
		return nil, nil, err
	}
	mod := core.NewModule(core.Config{
		Sim: sim, Name: spec.Name, DeviceID: spec.DeviceID,
		Shell: spec.Shell, Registry: registry, AuthKey: spec.AuthKey,
		DeviceName: spec.Device.Name,
	})
	if _, err := mod.Install(1, encoded); err != nil {
		return nil, nil, err
	}
	if err := mod.BootSync(1); err != nil {
		return nil, nil, err
	}
	return mod, design, nil
}
