// Over-the-network reprogramming (§4.2): "the control plane
// authenticates reconfiguration packets whose payload carries a new
// bitstream; a small FSM writes it to SPI flash and then triggers a
// reboot so the SFP boots the new application."
//
// This example runs the full flow against a live module using only
// in-band Ethernet control frames: a management station compiles and
// signs a new ACL bitstream, streams it in chunks through the module's
// control EtherType, commits, and watches the module reboot from NAT
// into the firewall — while an unauthenticated push is rejected.
//
//	go run ./examples/ota-update
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/netip"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/bitstream"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

var (
	stationMAC = packet.MustMAC("02:0c:00:00:00:01")
	fleetKey   = []byte("metro-fleet-key-2026")
)

func main() {
	sim := flexsfp.NewSim(1)

	// A module in the field, currently running NAT.
	mod, _, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
		Name: "field-sfp-204", DeviceID: 204,
		Shell: flexsfp.TwoWayCore, App: "nat", AuthKey: fleetKey,
	})
	if err != nil {
		log.Fatal(err)
	}
	mod.SetTx(core.PortOptical, func([]byte) {})
	agent := mgmt.NewAgent(mod)
	_ = agent // installed as the module's in-band control handler

	// The management station reaches the module in-band: control frames
	// ride the same wire as data (demuxed by the arbiter ahead of the
	// PPE). Responses come back out the module's edge port.
	inband := mgmt.NewInBandTransport(mod, core.PortEdge, stationMAC, nil)
	client := mgmt.NewClient(inband)

	info, err := client.Ping()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: module %q running %q (slot %d)\n", info.Name, info.AppName, 1)

	// Compile + sign the new application at the station.
	acl, err := hls.Compile(apps.NewACL().Program(), hls.Options{
		ClockHz: flexsfp.BaseClockHz, DatapathBits: flexsfp.BaseDatapathBits,
		Config: mustJSON(apps.ACLConfig{
			DefaultDeny: true,
			Rules: []apps.ACLRule{
				{DstPort: 443, Proto: 6, Priority: 10},
				{DstPort: 53, Proto: 17, Priority: 10},
			},
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	encoded, err := acl.Bitstream.Encode()
	if err != nil {
		log.Fatal(err)
	}

	// 1. An attacker without the fleet key is rejected.
	badSigned := bitstream.Sign(encoded, []byte("wrong-key"))
	if err := client.PushBitstream(badSigned, 2, true); err != nil {
		fmt.Printf("unauthenticated push rejected: %v\n", err)
	} else {
		log.Fatal("unauthenticated push was accepted!")
	}

	// 2. The real station signs with the fleet key and pushes.
	signed := bitstream.Sign(encoded, fleetKey)
	fmt.Printf("pushing %d signed bytes in %d-byte chunks over in-band control frames...\n",
		len(signed), mgmt.XferChunkSize)
	if err := client.PushBitstream(signed, 2, true); err != nil {
		log.Fatal(err)
	}

	// The reboot FSM runs in simulated time: flash write + FPGA config.
	fmt.Printf("module rebooting (flash + FPGA configuration ≈%v)...\n",
		netsim.Duration(core.FPGAConfigTime))
	sim.Run()

	info, err = client.Ping()
	if err != nil {
		log.Fatal(err)
	}
	st, _ := client.ReadStats()
	fmt.Printf("after: module %q running %q (slot %d, boots %d)\n",
		info.Name, info.AppName, st.ActiveSlot, st.Boots)

	// Prove the new firewall is live: HTTPS passes, SSH is denied.
	var egress int
	mod.SetTx(core.PortOptical, func([]byte) { egress++ })
	send := func(dport uint16) {
		mod.RxEdge(packet.MustBuild(packet.Spec{
			SrcMAC: stationMAC, DstMAC: packet.MustMAC("02:0c:00:00:00:99"),
			SrcIP: netip.MustParseAddr("10.0.0.5"), DstIP: netip.MustParseAddr("198.51.100.1"),
			Proto: packet.IPProtocolTCP, SrcPort: 40000, DstPort: dport, PadTo: 64,
		}))
		sim.Run()
	}
	send(443)
	httpsPassed := egress == 1
	send(22)
	sshBlocked := egress == 1
	fmt.Printf("new policy live: HTTPS passes=%v, SSH blocked=%v (default deny)\n",
		httpsPassed, sshBlocked)

	slots, _ := client.Slots()
	fmt.Printf("flash slots: %v (old image retained for rollback)\n", slots)
}

func mustJSON(v apps.ACLConfig) []byte {
	b, err := jsonMarshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }
