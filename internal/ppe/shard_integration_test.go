package ppe

// Cross-shard integration of the engine's pooled completion fast path
// with the parallel simulation core: engines live on different shards,
// frames cross between them through portals, and the verdict streams must
// be identical at every shard count (the engine schedules all completions
// on its own shard, so the PDES windows never see a cross-shard pooled
// object).

import (
	"fmt"
	"net/netip"
	"testing"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// shardedPipelineTraces builds a two-stage PPE pipeline across shards:
// frames enter engine A (shard 0), every pass verdict forwards the frame
// over a portal to engine B (shard 1), whose verdicts are logged. Each
// engine logs on its own shard (shard-local state only — the model's
// concurrency rule); the two streams pin verdict order, timing, and
// counters.
func shardedPipelineTraces(t *testing.T, shards int) (traceA, traceB []string) {
	t.Helper()
	sh := netsim.NewSharded(5, shards)
	simA := sh.Shard(sh.ShardFor(0))
	simB := sh.Shard(sh.ShardFor(1))

	var toB *netsim.Portal

	engB := NewEngine(simB, clock156, 64, func(v Verdict, ctx *Ctx) {
		traceB = append(traceB, fmt.Sprintf("B t=%v v=%v len=%d", simB.Now(), v, len(ctx.Data)))
	})
	if err := engB.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	engA := NewEngine(simA, clock156, 64, func(v Verdict, ctx *Ctx) {
		traceA = append(traceA, fmt.Sprintf("A t=%v v=%v len=%d", simA.Now(), v, len(ctx.Data)))
		if v == VerdictPass {
			toB.Send(ctx.Data)
		}
	})
	if err := engA.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	toB = sh.Connect(sh.ShardFor(0), sh.ShardFor(1), 100*netsim.Nanosecond, func(data []byte) {
		if !engB.Submit(data, DirEdgeToOptical) {
			t.Error("engine B refused a frame")
		}
	})

	frames := make([][]byte, 16)
	for i := range frames {
		frames[i] = packet.MustBuild(packet.Spec{
			SrcIP:   netip.MustParseAddr("10.0.0.1"),
			DstIP:   netip.MustParseAddr("10.0.0.2"),
			SrcPort: 4000,
			DstPort: uint16(5000 + i),
			PadTo:   64 + 32*i,
		})
	}
	for i := range frames {
		i := i
		simA.ScheduleAtDetached(netsim.Time(1+100*i), func() {
			if !engA.Submit(frames[i], DirEdgeToOptical) {
				t.Error("engine A refused a frame")
			}
		})
	}
	sh.Run()

	if engA.Stats().In != 16 || engB.Stats().In != 16 {
		t.Fatalf("frames in A=%d B=%d, want 16/16", engA.Stats().In, engB.Stats().In)
	}
	if engA.Stats().Pass != 16 || engB.Stats().Pass != 16 {
		t.Fatalf("pass verdicts A=%d B=%d, want 16/16", engA.Stats().Pass, engB.Stats().Pass)
	}
	return traceA, traceB
}

func TestEngineCrossShardPipelineDeterministic(t *testing.T) {
	wantA, wantB := shardedPipelineTraces(t, 1)
	if len(wantA) != 16 || len(wantB) != 16 {
		t.Fatalf("reference traces have %d/%d verdicts, want 16/16", len(wantA), len(wantB))
	}
	for _, shards := range []int{2, 4} {
		gotA, gotB := shardedPipelineTraces(t, shards)
		for i := range wantA {
			if gotA[i] != wantA[i] {
				t.Fatalf("shards=%d: A verdict %d = %q, want %q", shards, i, gotA[i], wantA[i])
			}
		}
		for i := range wantB {
			if gotB[i] != wantB[i] {
				t.Fatalf("shards=%d: B verdict %d = %q, want %q", shards, i, gotB[i], wantB[i])
			}
		}
	}
}
