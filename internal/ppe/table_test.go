package ppe

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func natSpec() TableSpec {
	return TableSpec{Name: "nat", Kind: TableExact, KeyBits: 32, ValueBits: 32, Size: 32768}
}

func TestTableAddLookup(t *testing.T) {
	tab := NewTable(natSpec())
	key := []byte{10, 0, 0, 1}
	val := []byte{192, 0, 2, 1}
	if err := tab.Add(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := tab.Lookup(key)
	if !ok || !bytes.Equal(got, val) {
		t.Errorf("Lookup = %x, %v", got, ok)
	}
	if _, ok := tab.Lookup([]byte{10, 0, 0, 2}); ok {
		t.Error("phantom entry")
	}
	lk, ms := tab.Stats()
	if lk != 2 || ms != 1 {
		t.Errorf("stats = %d/%d, want 2/1", lk, ms)
	}
}

func TestTableKeySizeEnforced(t *testing.T) {
	tab := NewTable(natSpec())
	if err := tab.Add([]byte{1, 2, 3}, []byte{1, 2, 3, 4}); !errors.Is(err, ErrKeySize) {
		t.Errorf("err = %v, want ErrKeySize", err)
	}
	if err := tab.Add([]byte{1, 2, 3, 4}, []byte{1}); !errors.Is(err, ErrValueSize) {
		t.Errorf("err = %v, want ErrValueSize", err)
	}
}

func TestTableCapacity(t *testing.T) {
	spec := natSpec()
	spec.Size = 2
	tab := NewTable(spec)
	if err := tab.Add([]byte{0, 0, 0, 1}, []byte{0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]byte{0, 0, 0, 2}, []byte{0, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]byte{0, 0, 0, 3}, []byte{0, 0, 0, 3}); !errors.Is(err, ErrTableFull) {
		t.Errorf("err = %v, want ErrTableFull", err)
	}
	// Replacing an existing key is allowed at capacity.
	if err := tab.Add([]byte{0, 0, 0, 1}, []byte{9, 9, 9, 9}); err != nil {
		t.Errorf("replace at capacity: %v", err)
	}
}

func TestTableDeleteAndGeneration(t *testing.T) {
	tab := NewTable(natSpec())
	key := []byte{1, 1, 1, 1}
	if err := tab.Add(key, []byte{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	g1 := tab.Generation()
	if err := tab.Delete(key); err != nil {
		t.Fatal(err)
	}
	if tab.Generation() <= g1 {
		t.Error("generation not bumped by Delete")
	}
	if err := tab.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableSnapshotSortedWithHits(t *testing.T) {
	tab := NewTable(natSpec())
	for _, b := range []byte{3, 1, 2} {
		if err := tab.Add([]byte{0, 0, 0, b}, []byte{b, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	tab.Lookup([]byte{0, 0, 0, 2})
	tab.Lookup([]byte{0, 0, 0, 2})
	snap := tab.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d rows", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if bytes.Compare(snap[i-1].Key, snap[i].Key) >= 0 {
			t.Error("snapshot not sorted")
		}
	}
	if snap[1].Hits != 2 {
		t.Errorf("hits = %d, want 2", snap[1].Hits)
	}
}

func TestTablePeekDoesNotCount(t *testing.T) {
	tab := NewTable(natSpec())
	key := []byte{1, 2, 3, 4}
	if err := tab.Add(key, []byte{4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	tab.Peek(key)
	lk, _ := tab.Stats()
	if lk != 0 {
		t.Error("Peek counted as lookup")
	}
}

func TestTernaryPriorityOrder(t *testing.T) {
	spec := TableSpec{Name: "acl", Kind: TableTernary, KeyBits: 32, ValueBits: 8, Size: 16}
	tab := NewTernaryTable(spec)
	// Low-priority default: match everything → action 0 (permit).
	if err := tab.Add(TernaryEntry{
		Value: []byte{0, 0, 0, 0}, Mask: []byte{0, 0, 0, 0}, Priority: 0, Data: []byte{0},
	}); err != nil {
		t.Fatal(err)
	}
	// High-priority: 10.0.0.0/8 → action 1 (deny).
	if err := tab.Add(TernaryEntry{
		Value: []byte{10, 0, 0, 0}, Mask: []byte{255, 0, 0, 0}, Priority: 100, Data: []byte{1},
	}); err != nil {
		t.Fatal(err)
	}
	if d, ok := tab.Lookup([]byte{10, 9, 8, 7}); !ok || d[0] != 1 {
		t.Errorf("10/8 lookup = %v, %v", d, ok)
	}
	if d, ok := tab.Lookup([]byte{11, 9, 8, 7}); !ok || d[0] != 0 {
		t.Errorf("default lookup = %v, %v", d, ok)
	}
}

func TestTernaryInsertionOrderAmongEqualPriorities(t *testing.T) {
	spec := TableSpec{Name: "t", Kind: TableTernary, KeyBits: 8, ValueBits: 8, Size: 4}
	tab := NewTernaryTable(spec)
	_ = tab.Add(TernaryEntry{Value: []byte{0}, Mask: []byte{0}, Priority: 5, Data: []byte{1}})
	_ = tab.Add(TernaryEntry{Value: []byte{0}, Mask: []byte{0}, Priority: 5, Data: []byte{2}})
	if d, _ := tab.Lookup([]byte{7}); d[0] != 1 {
		t.Errorf("first-inserted should win ties, got %d", d[0])
	}
}

func TestTernaryCapacityAndClear(t *testing.T) {
	spec := TableSpec{Name: "t", Kind: TableTernary, KeyBits: 8, ValueBits: 8, Size: 1}
	tab := NewTernaryTable(spec)
	_ = tab.Add(TernaryEntry{Value: []byte{1}, Mask: []byte{255}, Priority: 1, Data: []byte{1}})
	if err := tab.Add(TernaryEntry{Value: []byte{2}, Mask: []byte{255}, Priority: 1, Data: []byte{2}}); !errors.Is(err, ErrTableFull) {
		t.Errorf("err = %v, want ErrTableFull", err)
	}
	tab.Clear()
	if tab.Len() != 0 {
		t.Error("Clear left entries")
	}
}

func TestTernaryMaskSizeEnforced(t *testing.T) {
	spec := TableSpec{Name: "t", Kind: TableTernary, KeyBits: 32, ValueBits: 8, Size: 4}
	tab := NewTernaryTable(spec)
	err := tab.Add(TernaryEntry{Value: []byte{1, 2, 3, 4}, Mask: []byte{255}, Priority: 1})
	if !errors.Is(err, ErrKeySize) {
		t.Errorf("err = %v, want ErrKeySize", err)
	}
}

func TestCounterBank(t *testing.T) {
	c := NewCounterBank("ports", 4)
	c.Inc(1, 100)
	c.Inc(1, 200)
	c.Inc(3, 64)
	p, b := c.Read(1)
	if p != 2 || b != 300 {
		t.Errorf("counter 1 = %d/%d", p, b)
	}
	c.Inc(99, 1) // out of range: ignored
	if p, _ := c.Read(99); p != 0 {
		t.Error("out-of-range read nonzero")
	}
	c.Reset(1)
	if p, b := c.Read(1); p != 0 || b != 0 {
		t.Error("Reset failed")
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestRegister(t *testing.T) {
	r := NewRegister("seq")
	r.Store(41)
	if r.Add(1) != 42 {
		t.Error("Add")
	}
	if r.Load() != 42 {
		t.Error("Load")
	}
}

func TestMeterConformance(t *testing.T) {
	b := NewMeterBank("police", 2)
	// 8 kbit/s with 1 kbit burst: one 125-byte frame per second steady
	// state, bucket holds one frame.
	if err := b.Configure(0, 8000, 1000); err != nil {
		t.Fatal(err)
	}
	if !b.Conform(0, 0, 125) {
		t.Error("first frame within burst should conform")
	}
	if b.Conform(0, 1000, 125) { // 1 µs later: no refill to speak of
		t.Error("back-to-back frame should exceed")
	}
	if !b.Conform(0, 1_000_000_000, 125) { // 1 s later: bucket refilled
		t.Error("frame after refill should conform")
	}
	// Unconfigured meter passes everything.
	if !b.Conform(1, 0, 100000) {
		t.Error("unconfigured meter rejected traffic")
	}
	if err := b.Configure(5, 1, 1); err == nil {
		t.Error("out-of-range Configure accepted")
	}
}

func TestMeterLongRunRate(t *testing.T) {
	b := NewMeterBank("police", 1)
	const rate = 1_000_000 // 1 Mb/s
	if err := b.Configure(0, rate, 10_000); err != nil {
		t.Fatal(err)
	}
	// Offer 10 Mb/s for one simulated second; ~10% should conform.
	frame := 1250 // 10 kbit
	conformed := 0
	for i := 0; i < 1000; i++ {
		if b.Conform(0, uint64(i)*1_000_000, frame) {
			conformed++
		}
	}
	if conformed < 80 || conformed > 120 {
		t.Errorf("conformed %d of 1000 frames, want ≈100", conformed)
	}
}

func TestStateRegistry(t *testing.T) {
	s := NewState()
	s.AddTable(natSpec())
	s.AddTernary(TableSpec{Name: "acl", Kind: TableTernary, KeyBits: 8, ValueBits: 8, Size: 4})
	s.AddCounters("stats", 8)
	s.AddMeters("police", 2)
	s.AddRegister("seq")
	if _, ok := s.Table("nat"); !ok {
		t.Error("table lost")
	}
	if _, ok := s.Ternary("acl"); !ok {
		t.Error("ternary lost")
	}
	if _, ok := s.Counters("stats"); !ok {
		t.Error("counters lost")
	}
	if _, ok := s.Meters("police"); !ok {
		t.Error("meters lost")
	}
	if _, ok := s.Register("seq"); !ok {
		t.Error("register lost")
	}
	if _, ok := s.Table("missing"); ok {
		t.Error("phantom table")
	}
	if got := s.TableNames(); len(got) != 1 || got[0] != "nat" {
		t.Errorf("TableNames = %v", got)
	}
}

// Property: a table never returns a value it was not given, and always
// returns the last value written for a key.
func TestTableLastWriteWinsProperty(t *testing.T) {
	f := func(keys [][4]byte, vals [][4]byte) bool {
		if len(vals) == 0 {
			return true
		}
		tab := NewTable(natSpec())
		want := map[[4]byte][4]byte{}
		for i, k := range keys {
			v := vals[i%len(vals)]
			if err := tab.Add(k[:], v[:]); err != nil {
				return false
			}
			want[k] = v
		}
		for k, v := range want {
			got, ok := tab.Lookup(k[:])
			if !ok || !bytes.Equal(got, v[:]) {
				return false
			}
		}
		return tab.Len() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
