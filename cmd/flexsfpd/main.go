// Command flexsfpd runs a simulated FlexSFP module with its management
// core exposed on a real TCP port — the out-of-band control interface of
// §4.1. Pair it with flexsfp-ctl to read tables, counters, and live
// telemetry, push signed bitstreams, and reboot the module, exactly the
// workflow a fleet orchestrator would drive.
//
// Usage:
//
//	flexsfpd -listen 127.0.0.1:9461 -app nat -shell two-way-core \
//	         -config '{"mappings":[{"internal":"10.1.0.1","external":"203.0.113.1"}]}' \
//	         -metrics-addr 127.0.0.1:9462
//
// The daemon optionally self-generates traffic (-traffic-pps) so that
// counters, traces, and DDM readings move. With -metrics-addr set it also
// serves the telemetry snapshot as JSON over HTTP (GET /metrics) and the
// packet-trace ring (GET /traces).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexsfp"
	"flexsfp/internal/daemon"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9461", "management TCP listen address")
		name        = flag.String("name", "flexsfp-0", "module name")
		deviceID    = flag.Uint("device-id", 1, "fleet device ID")
		appName     = flag.String("app", "nat", "application to boot")
		shellName   = flag.String("shell", "two-way-core", "architecture shell (one-way-filter, two-way-core, active-core)")
		configJSON  = flag.String("config", "", "application config JSON (inline)")
		authKey     = flag.String("key", string(flexsfp.DefaultAuthKey), "fleet HMAC key for OTA pushes")
		trafficPPS  = flag.Float64("traffic-pps", 0, "self-generated traffic rate (0 = none)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		tel         = flag.Bool("telemetry", true, "enable metric registry and packet tracing")
		traceEvery  = flag.Int("trace-every", 64, "sample 1-in-N frames for tracing")
		metricsAddr = flag.String("metrics-addr", "", "HTTP address for the JSON metrics endpoint (empty = off)")
		simShards   = flag.Int("sim-shards", 0, "run the world on N parallel simulation shards (module + traffic source; 0/1 = single heap)")

		ovlListen = flag.String("overlay-listen", "", "host an overlay rendezvous on this TCP address (empty = off)")
		ovlJoin   = flag.String("overlay-join", "", "overlay rendezvous address to register with (empty with -overlay-listen = join in-process)")
		ovlIP     = flag.String("overlay-ip", "", "underlay tunnel IPv4 announced to the mesh (empty = not an endpoint; requires -app mesh)")
		ovlMAC    = flag.String("overlay-mac", "", "underlay MAC (empty = derived from -device-id)")
		ovlMode   = flag.String("overlay-mode", "gre", "mesh encapsulation peers use toward this cable (gre, vxlan)")
		ovlVNI    = flag.Uint("overlay-vni", 0, "VXLAN network identifier for this endpoint")
		ovlGREKey = flag.Uint("overlay-gre-key", 0, "GRE key for this endpoint")
		ovlPfx    = flag.String("overlay-prefixes", "", "comma-separated announced IPv4 prefixes; \"@N\" suffix sets backup priority (e.g. 10.200.1.0/24,10.200.3.0/24@1)")
		ovlSync   = flag.Duration("overlay-sync", time.Second, "re-reconcile against the rendezvous this often (0 = only at startup)")
	)
	flag.Parse()

	var ovl *daemon.OverlayConfig
	if *ovlListen != "" || *ovlJoin != "" || *ovlIP != "" {
		ovl = &daemon.OverlayConfig{
			Listen: *ovlListen, Join: *ovlJoin, IP: *ovlIP, MAC: *ovlMAC,
			Mode: *ovlMode, VNI: uint32(*ovlVNI), GREKey: uint32(*ovlGREKey),
			SyncEvery: *ovlSync,
		}
		if *ovlPfx != "" {
			ovl.Prefixes = strings.Split(*ovlPfx, ",")
		}
	}

	d, err := daemon.Start(daemon.Config{
		Listen: *listen, Name: *name, DeviceID: uint32(*deviceID),
		App: *appName, Shell: *shellName, ConfigJSON: *configJSON,
		AuthKey: []byte(*authKey), TrafficPPS: *trafficPPS, Seed: *seed,
		Telemetry: *tel, TraceEvery: *traceEvery, MetricsAddr: *metricsAddr,
		SimShards: *simShards, Overlay: ovl,
		Logf: func(format string, args ...any) { log.Printf("flexsfpd: "+format, args...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	fmt.Printf("flexsfpd: module %q (device %d) app=%s shell=%s device=%s\n",
		*name, *deviceID, *appName, *shellName, d.Design.Target.Name)
	fmt.Printf("flexsfpd: design %d LUT4 / %d FF / %d uSRAM / %d LSRAM (%s-limited, %.1f%% peak)\n",
		d.Design.Total.LUT4, d.Design.Total.FF, d.Design.Total.USRAM, d.Design.Total.LSRAM,
		d.Design.Fit.Limiting, d.Design.Fit.Utilization.Max())
	fmt.Printf("flexsfpd: management listening on %s\n", d.Addr())
	if a := d.MetricsAddr(); a != "" {
		fmt.Printf("flexsfpd: metrics on http://%s/metrics\n", a)
	}
	if a := d.RendezvousAddr(); a != "" {
		fmt.Printf("flexsfpd: overlay rendezvous on %s\n", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("flexsfpd: shutting down")
}
