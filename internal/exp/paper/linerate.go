package paper

import (
	"fmt"
	"math/rand"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/runner"
	"flexsfp/internal/telemetry"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// §5.1 line-rate verification.

// LineRatePoint is one frame-size measurement.
type LineRatePoint struct {
	Label        string
	FrameSize    int // 0 for IMIX
	OfferedPPS   float64
	DeliveredPPS float64
	GoodputGbps  float64
	Drops        uint64
	LineRate     bool // delivered ≥ 99.5% of offered
	// Telemetry carries the headline in-cable counters when the run was
	// instrumented (RunContext.Telemetry); nil — and omitted from JSON —
	// otherwise, so canonical envelopes are unchanged by default.
	Telemetry *CaseTelemetry `json:",omitempty"`
}

// CaseTelemetry is the headline counter set folded out of an instrumented
// case's metric registry.
type CaseTelemetry struct {
	FramesIn      uint64  `json:"frames_in"`
	BytesIn       uint64  `json:"bytes_in"`
	QueueDrops    uint64  `json:"queue_drops"`
	MeanLatencyNs float64 `json:"mean_latency_ns"`
	MaxLatencyNs  uint64  `json:"max_latency_ns"`
	MaxQueueDepth uint64  `json:"max_queue_depth"`
}

// LineRateResult is the full sweep.
type LineRateResult struct {
	Points []LineRatePoint
}

// lineRateCase is one frame-size configuration of the sweep.
type lineRateCase struct {
	label string
	sizes []trafficgen.IMIXEntry
	size  int
}

func lineRateCases() []lineRateCase {
	return []lineRateCase{
		{"64B", []trafficgen.IMIXEntry{{Size: 64, Weight: 1}}, 64},
		{"128B", []trafficgen.IMIXEntry{{Size: 128, Weight: 1}}, 128},
		{"256B", []trafficgen.IMIXEntry{{Size: 256, Weight: 1}}, 256},
		{"512B", []trafficgen.IMIXEntry{{Size: 512, Weight: 1}}, 512},
		{"1024B", []trafficgen.IMIXEntry{{Size: 1024, Weight: 1}}, 1024},
		{"1518B", []trafficgen.IMIXEntry{{Size: 1518, Weight: 1}}, 1518},
		{"IMIX", trafficgen.SimpleIMIX(), 0},
	}
}

// runLineRateCase measures one frame-size point on its own simulator.
func runLineRateCase(ctx exp.RunContext, tc lineRateCase) (LineRatePoint, error) {
	sim := build.NewSim(ctx.Seed)
	mod, _, err := build.Module(sim, build.ModuleSpec{
		Name: "lr-dut", DeviceID: 1, Shell: hls.TwoWayCore, App: "nat",
		ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
		Optimize: ctx.Optimize,
		Config: apps.NATConfig{Mappings: []apps.NATMapping{
			{Internal: "10.1.0.1", External: "203.0.113.1"},
		}},
	})
	if err != nil {
		return LineRatePoint{}, err
	}
	// Instrumentation covers the module/PPE counters only: the per-event
	// simulator histogram (Simulator.AttachTelemetry) costs ~30ns on every
	// scheduled event, which is ~8% of this sweep's wall time — too hot
	// for a performance measurement. It stays a daemon-side facility.
	var reg *telemetry.Registry
	if ctx.Telemetry {
		reg = telemetry.New()
		mod.AttachTelemetry(reg)
	}
	meter := netsim.NewRateMeter(sim)
	mod.SetTx(1, func(b []byte) {
		meter.Observe(len(b))
		trafficgen.PutBuffer(b)
	})
	mod.SetTx(0, trafficgen.PutBuffer)

	// Offered rate: line rate for the mean frame size of the mix.
	mean := 64.0
	if tc.size > 0 {
		mean = float64(tc.size)
	} else {
		total, weight := 0, 0
		for _, e := range tc.sizes {
			total += e.Size * e.Weight
			weight += e.Weight
		}
		mean = float64(total) / float64(weight)
	}
	pps := 10e9 / ((mean + 20) * 8)
	// Traffic reaches the module through an actual 10G wire: the
	// link's serialization enforces the physical per-frame spacing a
	// real tester is bound by (a mean-paced generator would otherwise
	// burst mixed-size traffic above wire rate).
	wire := netsim.NewLink(sim, 10_000_000_000, 0, mod.RxEdge)
	gen := trafficgen.New(sim, trafficgen.Config{
		PPS: pps, Sizes: tc.sizes, Flows: 32,
	}, func(b []byte) bool {
		return wire.Send(b)
	})
	gen.Run(0)
	sim.RunFor(netsim.Millisecond)
	gen.Stop()
	sim.RunFor(100 * netsim.Microsecond)

	deliveredPPS := float64(meter.Frames) / netsim.Duration(netsim.Millisecond).Seconds()
	p := LineRatePoint{
		Label:        tc.label,
		FrameSize:    tc.size,
		OfferedPPS:   float64(gen.Sent) / netsim.Duration(netsim.Millisecond).Seconds(),
		DeliveredPPS: deliveredPPS,
		GoodputGbps:  float64(meter.Bytes) * 8 / netsim.Duration(netsim.Millisecond).Seconds() / 1e9,
		Drops:        mod.Engine().Stats().QueueDrop,
		LineRate:     mod.Engine().Stats().QueueDrop == 0,
	}
	if reg != nil {
		snap := reg.Snapshot()
		ct := &CaseTelemetry{}
		ct.FramesIn, _ = snap.Counter("ppe.frames_in")
		ct.BytesIn, _ = snap.Counter("ppe.bytes_in")
		ct.QueueDrops, _ = snap.Counter("ppe.queue_drops")
		if lat, ok := snap.Histogram("ppe.latency_ns"); ok && lat.Count > 0 {
			ct.MeanLatencyNs = float64(lat.Sum) / float64(lat.Count)
			ct.MaxLatencyNs = lat.Max
		}
		if qd, ok := snap.Histogram("ppe.queue_depth"); ok {
			ct.MaxQueueDepth = qd.Max
		}
		p.Telemetry = ct
	}
	return p, nil
}

// LineRateExperiment drives the NAT module at 10G line rate across frame
// sizes (the §5.1 "simple end-to-end test, which confirmed line-rate
// performance"). Each case runs on its own simulator with the same seed,
// so the cases fan out across workers and the sweep matches the old
// sequential loop exactly.
func LineRateExperiment(seed int64) (LineRateResult, error) {
	return lineRateSingle(exp.RunContext{Seed: seed})
}

func lineRateSingle(ctx exp.RunContext) (LineRateResult, error) {
	if ctx.Shards > 0 {
		return lineRateSharded(ctx)
	}
	cases := lineRateCases()
	points, err := runner.Map(len(cases), runner.Options{Seed: ctx.Seed, Parallelism: ctx.Parallelism},
		func(i int, _ *rand.Rand) (LineRatePoint, error) {
			return runLineRateCase(ctx, cases[i])
		})
	if err != nil {
		return LineRateResult{}, err
	}
	return LineRateResult{Points: points}, nil
}

// lineRateSharded runs the sweep on the parallel simulation core: the
// cases are logical partitions placed round-robin over ctx.Shards event
// heaps and advanced together. The cases never interact, so one
// conservative window covers the whole run and the shards execute wall-
// clock-parallel with no barrier traffic.
//
// Determinism follows the Sharded placement-invariance rules: each case's
// generator draws from its partition stream (never the shard's ambient
// RNG), and every absolute timestamp in a case's world is the common
// post-boot epoch plus a shift-invariant offset — link and engine
// picosecond arithmetic is linear in whole-nanosecond shifts — so the
// sweep's JSON is byte-identical at any shard count. (It intentionally
// does not match the legacy Shards=0 path, which seeds each case's
// private simulator differently; the goldens pin the legacy path.)
func lineRateSharded(ctx exp.RunContext) (LineRateResult, error) {
	cases := lineRateCases()
	sh := netsim.NewSharded(ctx.Seed, ctx.Shards)

	type caseWorld struct {
		sim   *netsim.Simulator
		mod   *core.Module
		meter *netsim.RateMeter
		gen   *trafficgen.Generator
		reg   *telemetry.Registry
	}
	worlds := make([]caseWorld, len(cases))

	// Wiring pass: build every case's module on its home shard. Boots
	// advance shard clocks unevenly (co-located cases boot back to back),
	// so the measurement epoch is aligned afterwards.
	for i, tc := range cases {
		sim := sh.Shard(sh.ShardFor(i))
		mod, _, err := build.Module(sim, build.ModuleSpec{
			Name: "lr-dut-" + tc.label, DeviceID: uint32(i + 1),
			Shell: hls.TwoWayCore, App: "nat",
			ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
			Optimize: ctx.Optimize,
			Config: apps.NATConfig{Mappings: []apps.NATMapping{
				{Internal: "10.1.0.1", External: "203.0.113.1"},
			}},
		})
		if err != nil {
			return LineRateResult{}, err
		}
		w := &worlds[i]
		w.sim, w.mod = sim, mod
		if ctx.Telemetry {
			w.reg = telemetry.New()
			mod.AttachTelemetry(w.reg)
		}
		w.meter = netsim.NewRateMeter(sim)
		meter := w.meter
		mod.SetTx(1, func(b []byte) {
			meter.Observe(len(b))
			trafficgen.PutBuffer(b)
		})
		mod.SetTx(0, trafficgen.PutBuffer)
	}
	epoch := sh.AlignClocks()

	// Measurement pass: identical shape and arithmetic to runLineRateCase,
	// with all cases sharing the 1 ms window that starts at the epoch.
	for i, tc := range cases {
		mean := 64.0
		if tc.size > 0 {
			mean = float64(tc.size)
		} else {
			total, weight := 0, 0
			for _, e := range tc.sizes {
				total += e.Size * e.Weight
				weight += e.Weight
			}
			mean = float64(total) / float64(weight)
		}
		pps := 10e9 / ((mean + 20) * 8)
		w := &worlds[i]
		wire := netsim.NewLink(w.sim, 10_000_000_000, 0, w.mod.RxEdge)
		w.gen = trafficgen.New(w.sim, trafficgen.Config{
			PPS: pps, Sizes: tc.sizes, Flows: 32,
			Rand: sh.Stream(i),
		}, func(b []byte) bool {
			return wire.Send(b)
		})
		w.gen.Run(0)
	}
	sh.RunUntil(epoch.Add(netsim.Millisecond))
	for i := range worlds {
		worlds[i].gen.Stop()
	}
	sh.RunUntil(epoch.Add(netsim.Millisecond + 100*netsim.Microsecond))

	res := LineRateResult{Points: make([]LineRatePoint, len(cases))}
	for i, tc := range cases {
		w := &worlds[i]
		p := LineRatePoint{
			Label:        tc.label,
			FrameSize:    tc.size,
			OfferedPPS:   float64(w.gen.Sent) / netsim.Duration(netsim.Millisecond).Seconds(),
			DeliveredPPS: float64(w.meter.Frames) / netsim.Duration(netsim.Millisecond).Seconds(),
			GoodputGbps:  float64(w.meter.Bytes) * 8 / netsim.Duration(netsim.Millisecond).Seconds() / 1e9,
			Drops:        w.mod.Engine().Stats().QueueDrop,
			LineRate:     w.mod.Engine().Stats().QueueDrop == 0,
		}
		if w.reg != nil {
			snap := w.reg.Snapshot()
			ct := &CaseTelemetry{}
			ct.FramesIn, _ = snap.Counter("ppe.frames_in")
			ct.BytesIn, _ = snap.Counter("ppe.bytes_in")
			ct.QueueDrops, _ = snap.Counter("ppe.queue_drops")
			if lat, ok := snap.Histogram("ppe.latency_ns"); ok && lat.Count > 0 {
				ct.MeanLatencyNs = float64(lat.Sum) / float64(lat.Count)
				ct.MaxLatencyNs = lat.Max
			}
			if qd, ok := snap.Histogram("ppe.queue_depth"); ok {
				ct.MaxQueueDepth = qd.Max
			}
			p.Telemetry = ct
		}
		res.Points[i] = p
	}
	return res, nil
}

// Render formats the sweep.
func (r LineRateResult) Render() string {
	t := exp.NewTable("Frames", "Offered (Mpps)", "Delivered (Mpps)", "Goodput (Gb/s)", "Drops", "Line rate?")
	for _, p := range r.Points {
		ok := "yes"
		if !p.LineRate {
			ok = "NO"
		}
		t.Add(p.Label,
			fmt.Sprintf("%.3f", p.OfferedPPS/1e6),
			fmt.Sprintf("%.3f", p.DeliveredPPS/1e6),
			fmt.Sprintf("%.3f", p.GoodputGbps),
			p.Drops, ok)
	}
	return "Line-rate verification (§5.1): NAT at 10 Gb/s\n" + t.String()
}

// LineRatePointTrials is one frame-size point across seeds.
type LineRatePointTrials struct {
	Label        string
	FrameSize    int // 0 for IMIX
	OfferedPPS   runner.Summary
	DeliveredPPS runner.Summary
	GoodputGbps  runner.Summary
	Drops        runner.Summary
	// LineRateAll is true when every trial sustained line rate.
	LineRateAll bool
}

// LineRateTrialsResult is the §5.1 sweep over many seeds.
type LineRateTrialsResult struct {
	Trials int
	Points []LineRatePointTrials
}

// LineRateExperimentTrials runs the line-rate sweep for trials seeds in
// parallel and reduces per frame-size point.
func LineRateExperimentTrials(rootSeed int64, trials, parallelism int) (LineRateTrialsResult, error) {
	return lineRateTrials(exp.RunContext{Seed: rootSeed, Trials: trials, Parallelism: parallelism})
}

func lineRateTrials(ctx exp.RunContext) (LineRateTrialsResult, error) {
	tr, err := exp.RunTrials(ctx, func(_ int, seed int64) (LineRateResult, error) {
		return lineRateSingle(exp.RunContext{
			Seed: seed, ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
			Telemetry: ctx.Telemetry, Shards: ctx.Shards, Optimize: ctx.Optimize,
		})
	})
	if err != nil {
		return LineRateTrialsResult{}, err
	}
	res := LineRateTrialsResult{Trials: tr.N()}
	for p := range tr.First().Points {
		res.Points = append(res.Points, LineRatePointTrials{
			Label:        tr.First().Points[p].Label,
			FrameSize:    tr.First().Points[p].FrameSize,
			OfferedPPS:   tr.Metric(func(r LineRateResult) float64 { return r.Points[p].OfferedPPS }),
			DeliveredPPS: tr.Metric(func(r LineRateResult) float64 { return r.Points[p].DeliveredPPS }),
			GoodputGbps:  tr.Metric(func(r LineRateResult) float64 { return r.Points[p].GoodputGbps }),
			Drops:        tr.Metric(func(r LineRateResult) float64 { return float64(r.Points[p].Drops) }),
			LineRateAll:  tr.All(func(r LineRateResult) bool { return r.Points[p].LineRate }),
		})
	}
	return res, nil
}

// Render formats the multi-seed sweep.
func (r LineRateTrialsResult) Render() string {
	t := exp.NewTable("Frames", "Offered (Mpps)", "Delivered (Mpps)", "Goodput (Gb/s)", "Line rate?")
	for _, p := range r.Points {
		ok := "yes"
		if !p.LineRateAll {
			ok = "NO"
		}
		t.Add(p.Label,
			fmt.Sprintf("%.3f ± %.3f", p.OfferedPPS.Mean/1e6, p.OfferedPPS.CI95()/1e6),
			fmt.Sprintf("%.3f ± %.3f", p.DeliveredPPS.Mean/1e6, p.DeliveredPPS.CI95()/1e6),
			fmt.Sprintf("%.3f ± %.3f", p.GoodputGbps.Mean, p.GoodputGbps.CI95()),
			ok)
	}
	return fmt.Sprintf("Line-rate verification (§5.1): NAT at 10 Gb/s, %d trials\n", r.Trials) + t.String()
}

// runLineRate is the registered entry point.
func runLineRate(ctx exp.RunContext) (exp.Result, error) {
	env := exp.Envelope{Name: "linerate", Params: ctx.Params()}
	if ctx.EffectiveTrials() > 1 {
		r, err := lineRateTrials(ctx)
		if err != nil {
			return nil, err
		}
		lineRateAll := 1.0
		for _, p := range r.Points {
			if !p.LineRateAll {
				lineRateAll = 0
			}
		}
		env.Detail = r
		env.Metrics = []exp.Metric{
			exp.Scalar("points", "", float64(len(r.Points))),
			exp.Scalar("line_rate_all", "bool", lineRateAll),
		}
		return exp.NewResult(env, r.Render), nil
	}
	r, err := lineRateSingle(ctx)
	if err != nil {
		return nil, err
	}
	lineRateAll, drops := 1.0, 0.0
	for _, p := range r.Points {
		if !p.LineRate {
			lineRateAll = 0
		}
		drops += float64(p.Drops)
	}
	env.Detail = r
	env.Metrics = []exp.Metric{
		exp.Scalar("points", "", float64(len(r.Points))),
		exp.Scalar("line_rate_all", "bool", lineRateAll),
		exp.Scalar("queue_drops", "", drops),
	}
	if ctx.Telemetry {
		// Fold the headline in-cable counters across the sweep into the
		// envelope: total frames and a frame-weighted mean latency.
		var frames, bytes uint64
		var latSum float64
		for _, p := range r.Points {
			if p.Telemetry == nil {
				continue
			}
			frames += p.Telemetry.FramesIn
			bytes += p.Telemetry.BytesIn
			latSum += p.Telemetry.MeanLatencyNs * float64(p.Telemetry.FramesIn)
		}
		env.Metrics = append(env.Metrics,
			exp.Scalar("telemetry_frames_in", "", float64(frames)),
			exp.Scalar("telemetry_bytes_in", "", float64(bytes)))
		if frames > 0 {
			env.Metrics = append(env.Metrics,
				exp.Scalar("telemetry_mean_latency", "ns", latSum/float64(frames)))
		}
	}
	return exp.NewResult(env, r.Render), nil
}
