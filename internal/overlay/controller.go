package overlay

import (
	"bytes"
	"fmt"
	"sort"

	"flexsfp/internal/apps"
	"flexsfp/internal/mgmt"
)

// Controller drives one cable's membership in the mesh: it registers the
// cable's endpoint at the rendezvous and reconciles the cable's
// mesh_routes / mesh_peers PPE tables against the fabric table. Both
// sides are reached through mgmt.Client, so retries, deadlines, and
// backoff come from the standard control-plane plumbing whether the
// transport is in-process, in-band, or TCP.
type Controller struct {
	self  mgmt.OverlayEndpoint
	rdv   *mgmt.Client
	cable *mgmt.Client
	gen   uint64
}

// NewController binds an endpoint description to its rendezvous and
// cable clients. self.ID is ignored; the rendezvous assigns it.
func NewController(self mgmt.OverlayEndpoint, rdv, cable *mgmt.Client) *Controller {
	return &Controller{self: self, rdv: rdv, cable: cable}
}

// Endpoint returns the endpoint this controller registers.
func (c *Controller) Endpoint() mgmt.OverlayEndpoint { return c.self }

// Generation returns the table generation of the last successful Sync.
func (c *Controller) Generation() uint64 { return c.gen }

// Register announces the endpoint at the rendezvous.
func (c *Controller) Register() (uint64, error) {
	return c.rdv.OverlayRegister(c.self)
}

// Withdraw removes an endpoint (usually another cable's, on behalf of a
// health monitor that saw its DDM trend collapse) from the rendezvous.
func (c *Controller) Withdraw(name string) (uint64, error) {
	return c.rdv.OverlayWithdraw(name)
}

// Sync fetches the fabric table and reconciles the cable's datapath
// tables to it. Operations are ordered so every intermediate state fails
// safe: stale routes are removed before the peers they point at, and
// peers are installed before the routes that need them. A frame arriving
// mid-sync is either passed untouched (no route yet) or dropped and
// counted MeshNoPeer — never delivered to a withdrawn peer.
func (c *Controller) Sync() (mgmt.OverlayTable, error) {
	t, err := c.rdv.OverlayPeers()
	if err != nil {
		return mgmt.OverlayTable{}, err
	}
	selfID, selfLive := uint16(0), false
	for _, p := range t.Peers {
		if p.Name == c.self.Name {
			selfID, selfLive = p.ID, true
			break
		}
	}

	wantPeers := map[string][]byte{}
	for _, p := range t.Peers {
		if p.Name == c.self.Name {
			continue
		}
		key := apps.MeshPeerKey(p.ID)
		val := apps.MeshPeer{Mode: p.Mode, IP: p.IP, MAC: p.MAC, VNI: p.VNI, GREKey: p.GREKey}.Encode()
		wantPeers[string(key[:])] = val[:]
	}
	wantRoutes := map[string][]byte{}
	for _, rt := range t.Routes {
		if selfLive && rt.Peer == selfID {
			continue // locally-owned prefix: deliver on our own edge
		}
		if rt.Prefix.Len != 24 {
			continue // the datapath routes at /24 granularity (MeshRouteKey)
		}
		key := apps.MeshRouteKey(rt.Prefix.IP)
		val := apps.MeshRouteValue(rt.Peer)
		wantRoutes[string(key[:])] = val[:]
	}

	curRoutes, err := c.dump(apps.MeshRouteTable)
	if err != nil {
		return mgmt.OverlayTable{}, err
	}
	curPeers, err := c.dump(apps.MeshPeerTable)
	if err != nil {
		return mgmt.OverlayTable{}, err
	}

	// 1. Remove routes that no longer exist (withdrawn prefixes).
	for _, key := range staleKeys(curRoutes, wantRoutes) {
		if err := c.cable.TableDel(apps.MeshRouteTable, []byte(key)); err != nil {
			return mgmt.OverlayTable{}, fmt.Errorf("overlay: del route: %w", err)
		}
	}
	// 2. Remove peers that left the fabric.
	for _, key := range staleKeys(curPeers, wantPeers) {
		if err := c.cable.TableDel(apps.MeshPeerTable, []byte(key)); err != nil {
			return mgmt.OverlayTable{}, fmt.Errorf("overlay: del peer: %w", err)
		}
	}
	// 3. Install or update peers (TableAdd replaces in place).
	for _, key := range changedKeys(curPeers, wantPeers) {
		if err := c.cable.TableAdd(apps.MeshPeerTable, []byte(key), wantPeers[key]); err != nil {
			return mgmt.OverlayTable{}, fmt.Errorf("overlay: add peer: %w", err)
		}
	}
	// 4. Install or repoint routes — their peers are present by now.
	for _, key := range changedKeys(curRoutes, wantRoutes) {
		if err := c.cable.TableAdd(apps.MeshRouteTable, []byte(key), wantRoutes[key]); err != nil {
			return mgmt.OverlayTable{}, fmt.Errorf("overlay: add route: %w", err)
		}
	}

	c.gen = t.Generation
	return t, nil
}

// dump reads one cable table into a key → value map.
func (c *Controller) dump(table string) (map[string][]byte, error) {
	entries, err := c.cable.TableDump(table)
	if err != nil {
		return nil, fmt.Errorf("overlay: dump %s: %w", table, err)
	}
	cur := make(map[string][]byte, len(entries))
	for _, e := range entries {
		cur[string(e.Key)] = e.Value
	}
	return cur, nil
}

// staleKeys lists keys present in cur but absent from want, sorted so
// the op sequence is deterministic.
func staleKeys(cur, want map[string][]byte) []string {
	var keys []string
	for k := range cur {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// changedKeys lists keys whose want value is absent from or different in
// cur, sorted. Unchanged entries are skipped entirely so a no-op sync
// leaves the table generation — and the datapath's cached encap state —
// untouched.
func changedKeys(cur, want map[string][]byte) []string {
	var keys []string
	for k, v := range want {
		if old, ok := cur[k]; !ok || !bytes.Equal(old, v) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
