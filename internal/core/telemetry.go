package core

import (
	"flexsfp/internal/ppe"
	"flexsfp/internal/telemetry"
)

// AttachTelemetry wires the module into a telemetry registry and returns
// the engine instrument set. It registers:
//
//   - the PPE hot-path instruments (ppe.* counters/histograms), attached
//     to the running engine and re-attached automatically across reboots;
//   - snapshot-time gauges for the module port counters, control-plane
//     activity, engine utilization, and — for the currently running
//     application — per-table occupancy, lookups and misses;
//   - packet-trace hops at module ingress (StageRx) and egress (StageTx)
//     when the registry carries a tracer.
//
// Call it once per module after the first boot (table names come from the
// running app); the gauges read live state at snapshot time, so they stay
// correct as the module runs. The datapath cost when attached is the
// zero-alloc record path only; an unattached module is unchanged.
func (m *Module) AttachTelemetry(reg *telemetry.Registry) *ppe.Telemetry {
	m.tracer = reg.Tracer()
	m.tel = ppe.NewTelemetry(reg)
	if m.engine != nil {
		m.engine.SetTelemetry(m.tel)
	}
	for p := PortEdge; p < numPorts; p++ {
		p := p
		reg.GaugeFunc("module.rx."+p.String(), func() float64 { return float64(m.stats.Rx[p]) })
		reg.GaugeFunc("module.tx."+p.String(), func() float64 { return float64(m.stats.Tx[p]) })
	}
	reg.GaugeFunc("module.control_frames", func() float64 { return float64(m.stats.ControlFrames) })
	reg.GaugeFunc("module.punt_to_cpu", func() float64 { return float64(m.stats.PuntToCPU) })
	reg.GaugeFunc("module.reboot_drops", func() float64 { return float64(m.stats.RebootDrops) })
	reg.GaugeFunc("module.boots", func() float64 { return float64(m.stats.Boots) })
	reg.GaugeFunc("ppe.utilization", func() float64 {
		if e := m.engine; e != nil {
			return e.Utilization()
		}
		return 0
	})
	if m.app != nil {
		for _, name := range m.app.State().TableNames() {
			name := name
			reg.GaugeFunc("table."+name+".entries", func() float64 {
				return m.tableStat(name, func(t *ppe.Table) float64 { return float64(t.Len()) })
			})
			reg.GaugeFunc("table."+name+".lookups", func() float64 {
				return m.tableStat(name, func(t *ppe.Table) float64 {
					lookups, _ := t.Stats()
					return float64(lookups)
				})
			})
			reg.GaugeFunc("table."+name+".misses", func() float64 {
				return m.tableStat(name, func(t *ppe.Table) float64 {
					_, misses := t.Stats()
					return float64(misses)
				})
			})
		}
	}
	return m.tel
}

// tableStat evaluates f against the named exact-match table of whatever
// app is currently running (0 if the module is empty or the table is gone
// after a reboot into a different design).
func (m *Module) tableStat(name string, f func(*ppe.Table) float64) float64 {
	app := m.app
	if app == nil {
		return 0
	}
	t, ok := app.State().Table(name)
	if !ok {
		return 0
	}
	return f(t)
}
