package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

const tenGig = 10_000_000_000

func TestSerializationTime64B(t *testing.T) {
	s := New(1)
	l := NewLink(s, tenGig, 0, nil)
	// 64B frame + 20B preamble/IFG = 672 bits @ 10 Gb/s = 67.2 ns → 68 ns (ceil).
	got := l.SerializationTime(64)
	if got != 68 {
		t.Errorf("SerializationTime(64) = %d ns, want 68", got)
	}
	// 1518B + 20B = 12304 bits = 1230.4 ns → 1231.
	if got := l.SerializationTime(1518); got != 1231 {
		t.Errorf("SerializationTime(1518) = %d ns, want 1231", got)
	}
}

func TestLinkDelivery(t *testing.T) {
	s := New(1)
	var gotAt Time
	var gotLen int
	l := NewLink(s, tenGig, 100, func(data []byte) {
		gotAt = s.Now()
		gotLen = len(data)
	})
	l.Send(make([]byte, 64))
	s.Run()
	// serialization 68 ns + prop 100 ns.
	if gotAt != 168 {
		t.Errorf("delivered at %v, want 168", gotAt)
	}
	if gotLen != 64 {
		t.Errorf("delivered %d bytes, want 64", gotLen)
	}
	st := l.Stats()
	if st.TxFrames != 1 || st.TxBytes != 64 {
		t.Errorf("stats = %+v, want 1 frame / 64 bytes", st)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	s := New(1)
	var times []Time
	l := NewLink(s, tenGig, 0, func(data []byte) { times = append(times, s.Now()) })
	for i := 0; i < 3; i++ {
		l.Send(make([]byte, 64))
	}
	s.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(times))
	}
	// Frames serialize back to back at exactly 67.2 ns spacing;
	// delivery events round up to whole ns: 68, 135, 202.
	want := []Time{68, 135, 202}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("frame %d delivered at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestLinkQueueLimitDrops(t *testing.T) {
	s := New(1)
	delivered := 0
	l := NewLink(s, tenGig, 0, func(data []byte) { delivered++ })
	l.QueueLimit = 2
	sent := 0
	for i := 0; i < 10; i++ {
		if l.Send(make([]byte, 1500)) {
			sent++
		}
	}
	s.Run()
	// One in flight + two queued = 3 accepted.
	if sent != 3 {
		t.Errorf("accepted %d frames, want 3", sent)
	}
	if delivered != 3 {
		t.Errorf("delivered %d frames, want 3", delivered)
	}
	if l.Stats().Drops != 7 {
		t.Errorf("drops = %d, want 7", l.Stats().Drops)
	}
}

func TestLinkLineRate(t *testing.T) {
	// Offer exactly line rate of minimum-size frames for 1 ms and verify
	// throughput ≈ 14.88 Mpps, the 10GbE worst case.
	s := New(1)
	meter := NewRateMeter(s)
	l := NewLink(s, tenGig, 0, func(data []byte) { meter.Observe(len(data)) })
	interval := Duration(6720) // 100 frames × 67.2 ns wire time per burst
	frames := 0
	s.Every(interval, func() bool {
		for i := 0; i < 100; i++ {
			l.Send(make([]byte, 64))
		}
		frames += 100
		return frames < 14880
	})
	s.Run()
	pps := meter.PPS()
	if math.Abs(pps-14.88e6)/14.88e6 > 0.01 {
		t.Errorf("line-rate pps = %.0f, want ≈14.88e6", pps)
	}
}

func TestLinkUtilization(t *testing.T) {
	s := New(1)
	l := NewLink(s, tenGig, 0, func(data []byte) {})
	start := s.Now()
	base := l.Stats()
	// Send frames covering exactly half the window.
	l.Send(make([]byte, 1230)) // 1250B incl. overhead = 1 µs on the wire
	s.RunUntil(Time(2 * Microsecond))
	u := l.Utilization(start, base)
	if math.Abs(u-0.5) > 0.01 {
		t.Errorf("utilization = %.3f, want 0.5", u)
	}
}

// TestLinkUtilizationWindow is the regression test for the satellite fix:
// a measurement window opened after traffic has already been carried must
// only count bytes transmitted inside the window. The old implementation
// divided cumulative TxBytes by the window length, so a late window
// reported wildly inflated (even >1) utilization.
func TestLinkUtilizationWindow(t *testing.T) {
	s := New(1)
	l := NewLink(s, tenGig, 0, func(data []byte) {})
	// Phase 1: 4 µs of solid traffic before the window opens.
	for i := 0; i < 4; i++ {
		l.Send(make([]byte, 1230)) // 1 µs each on the wire
	}
	s.RunUntil(Time(4 * Microsecond))
	// Phase 2: open a 2 µs window carrying 1 µs of traffic → 50%.
	since := s.Now()
	base := l.Stats()
	l.Send(make([]byte, 1230))
	s.RunUntil(Time(6 * Microsecond))
	u := l.Utilization(since, base)
	if math.Abs(u-0.5) > 0.01 {
		t.Errorf("windowed utilization = %.3f, want 0.5", u)
	}
	// A zero-value baseline reproduces the old cumulative behavior on a
	// window from time zero.
	if full := l.Utilization(0, LinkStats{}); math.Abs(full-5.0/6.0) > 0.01 {
		t.Errorf("full-run utilization = %.3f, want %.3f", full, 5.0/6.0)
	}
}

// TestLinkZeroPropTxBeforeRx pins the ordering contract the parallel
// scheduler must preserve: Send schedules the same linkFrame twice (tx-done
// then delivery), and when Prop == 0 both land at the same timestamp, so
// the delivery order rests entirely on FIFO sequence numbers. Tx-done must
// fire first — the frame's txeod flag, the stats counters, and any tracer
// hop all depend on it.
func TestLinkZeroPropTxBeforeRx(t *testing.T) {
	s := New(1)
	var l *Link
	delivered := 0
	l = NewLink(s, tenGig, 0, func(data []byte) {
		delivered++
		// Tx-done fired in the same instant but strictly before delivery.
		if got := l.Stats().TxFrames; got != uint64(delivered) {
			t.Fatalf("delivery %d saw TxFrames=%d; tx-done must precede rx", delivered, got)
		}
	})
	for i := 0; i < 3; i++ {
		l.Send(make([]byte, 64))
	}
	s.Run()
	if delivered != 3 {
		t.Fatalf("delivered %d frames, want 3", delivered)
	}
}

// TestLinkZeroPropPoolReuse exercises frame-pool recycling at Prop == 0:
// delivery recycles the linkFrame, and a Send issued from inside the
// deliver callback must get a cleanly reset record (txeod false, no stale
// data) even though the recycle happened in the same simulated instant.
func TestLinkZeroPropPoolReuse(t *testing.T) {
	s := New(1)
	var l *Link
	var got [][]byte
	l = NewLink(s, tenGig, 0, func(data []byte) {
		got = append(got, append([]byte(nil), data...))
		if len(got) < 4 {
			next := make([]byte, 64)
			next[0] = byte(len(got))
			l.Send(next)
		}
	})
	first := make([]byte, 64)
	l.Send(first)
	s.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d frames, want 4", len(got))
	}
	for i, b := range got {
		if want := byte(i); b[0] != want || len(b) != 64 {
			t.Errorf("frame %d: first byte %d len %d, want %d/64", i, b[0], len(b), want)
		}
	}
	if l.Stats().TxFrames != 4 {
		t.Errorf("TxFrames = %d, want 4", l.Stats().TxFrames)
	}
}

func TestRateMeter(t *testing.T) {
	s := New(1)
	m := NewRateMeter(s)
	s.Schedule(Duration(Second), func() {
		m.Observe(500)
		m.Observe(1500)
	})
	s.Run()
	if m.Frames != 2 || m.Bytes != 2000 {
		t.Errorf("meter frames=%d bytes=%d, want 2/2000", m.Frames, m.Bytes)
	}
	if m.MinSize != 500 || m.MaxSize != 1500 {
		t.Errorf("min/max = %d/%d, want 500/1500", m.MinSize, m.MaxSize)
	}
	if pps := m.PPS(); math.Abs(pps-2) > 1e-9 {
		t.Errorf("PPS = %v, want 2", pps)
	}
	if bps := m.BitsPerSec(); math.Abs(bps-16000) > 1e-6 {
		t.Errorf("BitsPerSec = %v, want 16000", bps)
	}
	m.Reset()
	if m.Frames != 0 || m.Elapsed() != 0 {
		t.Error("Reset did not clear the meter")
	}
}

func TestPipeIndependentDirections(t *testing.T) {
	s := New(1)
	p := NewPipe(s, tenGig, 10)
	var ab, ba int
	p.AtoB.SetDeliver(func(data []byte) { ab++ })
	p.BtoA.SetDeliver(func(data []byte) { ba++ })
	p.AtoB.Send(make([]byte, 64))
	p.AtoB.Send(make([]byte, 64))
	p.BtoA.Send(make([]byte, 64))
	s.Run()
	if ab != 2 || ba != 1 {
		t.Errorf("ab=%d ba=%d, want 2/1", ab, ba)
	}
}

// Property: delivery time is monotone in frame size and never before
// serialization+propagation of a minimum frame.
func TestDeliveryTimeProperty(t *testing.T) {
	f := func(size uint16, prop uint16) bool {
		n := int(size)%9000 + 1
		s := New(3)
		var at Time
		l := NewLink(s, tenGig, Duration(prop), func(data []byte) { at = s.Now() })
		l.Send(make([]byte, n))
		s.Run()
		want := l.SerializationTime(n) + Duration(prop)
		return at == Time(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkDownDropsAndFlaps(t *testing.T) {
	s := New(1)
	delivered := 0
	l := NewLink(s, tenGig, 0, func(data []byte) { delivered++ })
	if !l.Up() {
		t.Fatal("new link not up")
	}
	if !l.Send(make([]byte, 64)) {
		t.Fatal("send on an up link refused")
	}
	l.SetUp(false)
	l.SetUp(false) // redundant down: no extra flap
	if l.Up() {
		t.Error("link up after SetUp(false)")
	}
	if l.Send(make([]byte, 64)) {
		t.Error("send on a down link accepted")
	}
	l.SetUp(true)
	if !l.Send(make([]byte, 64)) {
		t.Error("send refused after link recovery")
	}
	s.Run()
	st := l.Stats()
	if delivered != 2 || st.TxFrames != 2 || st.DownDrops != 1 || st.Flaps != 1 {
		t.Errorf("delivered=%d stats=%+v", delivered, st)
	}
}
