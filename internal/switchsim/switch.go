// Package switchsim models the §2.1 legacy aggregation switch: a
// fixed-function L2 device (MAC learning, flooding, store-and-forward
// fabric) whose ports are SFP cages. It has no programmability, no
// telemetry, and no inline enforcement — exactly the gap the FlexSFP
// retrofit fills by swapping the transceiver in a cage, "without any
// modification to the chassis or switch OS".
package switchsim

import (
	"fmt"

	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// Transceiver is what a cage holds: both core.StandardSFP and the
// programmable core.Module satisfy it.
type Transceiver interface {
	RxEdge(data []byte)
	RxOptical(data []byte)
	SetTx(p core.PortID, tx func([]byte))
	PowerW() float64
}

// FabricDelay is the fixed store-and-forward latency of the switching
// fabric.
const FabricDelay = 800 * netsim.Nanosecond

// Switch is the legacy L2 aggregation switch.
type Switch struct {
	sim   *netsim.Simulator
	name  string
	cages []*Cage

	macTable map[packet.MAC]int

	stats SwitchStats
}

// SwitchStats counts fabric activity.
type SwitchStats struct {
	Forwarded uint64
	Flooded   uint64
	Dropped   uint64 // no ports / filtered
}

// Cage is one switch port's SFP slot.
type Cage struct {
	sw    *Switch
	index int
	xcvr  Transceiver
	// fiberTx transmits toward the far end of the fiber.
	fiberTx func([]byte)
}

// New builds a switch with n empty cages.
func New(sim *netsim.Simulator, name string, n int) *Switch {
	sw := &Switch{
		sim:      sim,
		name:     name,
		macTable: make(map[packet.MAC]int),
	}
	for i := 0; i < n; i++ {
		sw.cages = append(sw.cages, &Cage{sw: sw, index: i})
	}
	return sw
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// Ports returns the cage count.
func (sw *Switch) Ports() int { return len(sw.cages) }

// Cage returns port i's cage.
func (sw *Switch) Cage(i int) *Cage { return sw.cages[i] }

// Stats returns fabric counters.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// Insert seats a transceiver in cage i — the drop-in upgrade path. The
// edge (electrical) side faces the switch fabric; the optical side faces
// the fiber.
func (c *Cage) Insert(x Transceiver) {
	c.xcvr = x
	// Transceiver edge-side TX feeds the switch fabric (ingress).
	x.SetTx(core.PortEdge, func(data []byte) { c.sw.ingress(c.index, data) })
	// Transceiver optical-side TX goes down the fiber.
	x.SetTx(core.PortOptical, func(data []byte) {
		if c.fiberTx != nil {
			c.fiberTx(data)
		}
	})
}

// Transceiver returns the seated module (nil if empty).
func (c *Cage) Transceiver() Transceiver { return c.xcvr }

// SetFiberTx wires the cage's optical transmit toward the remote end.
func (c *Cage) SetFiberTx(tx func([]byte)) { c.fiberTx = tx }

// DeliverFromFiber is the fiber's receive entry: frames arriving on the
// port's optics.
func (c *Cage) DeliverFromFiber(data []byte) {
	if c.xcvr != nil {
		c.xcvr.RxOptical(data)
	}
}

// ingress runs the fixed-function pipeline for a frame that entered the
// fabric from port p.
func (sw *Switch) ingress(p int, data []byte) {
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(data); err != nil {
		sw.stats.Dropped++
		return
	}
	// Learn.
	if !eth.SrcMAC.IsMulticast() {
		sw.macTable[eth.SrcMAC] = p
	}
	sw.sim.Schedule(FabricDelay, func() {
		if out, ok := sw.macTable[eth.DstMAC]; ok && !eth.DstMAC.IsBroadcast() {
			if out == p {
				sw.stats.Dropped++ // hairpin: filtered
				return
			}
			sw.stats.Forwarded++
			sw.egress(out, data)
			return
		}
		// Flood.
		sw.stats.Flooded++
		for i := range sw.cages {
			if i != p {
				sw.egress(i, data)
			}
		}
	})
}

// egress hands a frame to port i's transceiver (edge side).
func (sw *Switch) egress(i int, data []byte) {
	c := sw.cages[i]
	if c.xcvr == nil {
		sw.stats.Dropped++
		return
	}
	c.xcvr.RxEdge(data)
}

// TotalTransceiverPowerW sums the power of all seated modules.
func (sw *Switch) TotalTransceiverPowerW() float64 {
	var p float64
	for _, c := range sw.cages {
		if c.xcvr != nil {
			p += c.xcvr.PowerW()
		}
	}
	return p
}

// MACTableSize returns the number of learned addresses.
func (sw *Switch) MACTableSize() int { return len(sw.macTable) }

// Fiber connects a cage's optics to a Host NIC over a duplex fiber of the
// given rate and propagation delay.
func Fiber(sim *netsim.Simulator, c *Cage, h *Host, bitsPerSec int64, prop netsim.Duration) {
	down := netsim.NewLink(sim, bitsPerSec, prop, h.Deliver)
	up := netsim.NewLink(sim, bitsPerSec, prop, c.DeliverFromFiber)
	c.SetFiberTx(func(data []byte) { down.Send(data) })
	h.SetTx(func(data []byte) bool { return up.Send(data) })
}

// CrossConnect joins two cages (e.g. an uplink between two switches)
// over a duplex fiber.
func CrossConnect(sim *netsim.Simulator, a, b *Cage, bitsPerSec int64, prop netsim.Duration) {
	ab := netsim.NewLink(sim, bitsPerSec, prop, b.DeliverFromFiber)
	ba := netsim.NewLink(sim, bitsPerSec, prop, a.DeliverFromFiber)
	a.SetFiberTx(func(data []byte) { ab.Send(data) })
	b.SetFiberTx(func(data []byte) { ba.Send(data) })
}

// Host is a simple attached endpoint (subscriber CPE or an upstream
// router) with a receive hook.
type Host struct {
	Name string
	MAC  packet.MAC

	tx      func([]byte) bool
	OnFrame func(data []byte)

	RxFrames uint64
	RxBytes  uint64
	TxFrames uint64
}

// NewHost builds a host endpoint.
func NewHost(name string, mac packet.MAC) *Host {
	return &Host{Name: name, MAC: mac}
}

// SetTx wires the host's transmit path.
func (h *Host) SetTx(tx func([]byte) bool) { h.tx = tx }

// Send transmits a frame; false means it was dropped at the link queue.
func (h *Host) Send(data []byte) bool {
	if h.tx == nil {
		return false
	}
	h.TxFrames++
	return h.tx(data)
}

// Deliver is the host's receive entry.
func (h *Host) Deliver(data []byte) {
	h.RxFrames++
	h.RxBytes += uint64(len(data))
	if h.OnFrame != nil {
		h.OnFrame(data)
	}
}

// String implements fmt.Stringer.
func (h *Host) String() string {
	return fmt.Sprintf("host %s (%s)", h.Name, h.MAC)
}
