package mgmt

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Fleet is the orchestrator-side view of many modules (§4.1: "This is
// essential for centralized orchestration across a fleet of FlexSFPs,
// while preserving the independence of per-port behavior"). Operations
// fan out concurrently over each member's transport and collect
// per-module outcomes.
type Fleet struct {
	mu      sync.Mutex
	members map[string]*Client
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{members: make(map[string]*Client)}
}

// Add registers a module under a fleet-unique name.
func (f *Fleet) Add(name string, t Transport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.members[name] = NewClient(t)
}

// Remove drops a member.
func (f *Fleet) Remove(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.members, name)
}

// Names returns the member names, sorted.
func (f *Fleet) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.members))
	for n := range f.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Client returns a member's client.
func (f *Fleet) Client(name string) (*Client, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.members[name]
	return c, ok
}

// SetRetryPolicy installs the same retry/deadline policy on every current
// member's client.
func (f *Fleet) SetRetryPolicy(p RetryPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.members {
		c.SetRetryPolicy(p)
	}
}

// Outcome is one member's result from a fleet operation.
type Outcome struct {
	Name string
	Err  error
}

// memberRef is a (name, client) pair captured by snapshot.
type memberRef struct {
	name string
	c    *Client
}

// snapshot captures the member set once, sorted by name. Multi-wave
// operations (PushCanary, PushAll) run entirely against one snapshot, so
// a concurrent Add can't enlarge a rollout mid-flight and a concurrent
// Remove can't silently drop a member from its outcome accounting — or
// from the rollback set.
func (f *Fleet) snapshot() []memberRef {
	f.mu.Lock()
	ms := make([]memberRef, 0, len(f.members))
	for n, c := range f.members {
		ms = append(ms, memberRef{n, c})
	}
	f.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

// fanOut snapshots the current members and runs op against each
// concurrently.
func (f *Fleet) fanOut(op func(name string, c *Client) error) []Outcome {
	return fanOutRefs(f.snapshot(), op)
}

// fanOutRefs runs op concurrently against the captured members; outcomes
// come back in the given order.
func fanOutRefs(ms []memberRef, op func(name string, c *Client) error) []Outcome {
	out := make([]Outcome, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = Outcome{Name: m.name, Err: op(m.name, m.c)}
		}()
	}
	wg.Wait()
	return out
}

// PingAll checks liveness across the fleet, returning per-member info.
func (f *Fleet) PingAll() (map[string]Info, []Outcome) {
	infos := make(map[string]Info)
	var mu sync.Mutex
	outcomes := f.fanOut(func(name string, c *Client) error {
		info, err := c.Ping()
		if err != nil {
			return err
		}
		mu.Lock()
		infos[name] = info
		mu.Unlock()
		return nil
	})
	return infos, outcomes
}

// StatsAll gathers counters across the fleet.
func (f *Fleet) StatsAll() (map[string]Stats, []Outcome) {
	stats := make(map[string]Stats)
	var mu sync.Mutex
	outcomes := f.fanOut(func(name string, c *Client) error {
		s, err := c.ReadStats()
		if err != nil {
			return err
		}
		mu.Lock()
		stats[name] = s
		mu.Unlock()
		return nil
	})
	return stats, outcomes
}

// PushAll streams a signed bitstream to every member (the fleet-wide
// feature rollout of §2.1), optionally rebooting into it.
func (f *Fleet) PushAll(signed []byte, slot int, rebootAfter bool) []Outcome {
	return f.fanOut(func(name string, c *Client) error {
		return c.PushBitstream(signed, slot, rebootAfter)
	})
}

// CanaryConfig tunes a staged fleet rollout.
type CanaryConfig struct {
	// TargetSlot is the flash slot the new image is pushed to; every
	// updated module reboots into it.
	TargetSlot int
	// Canaries is how many members (in sorted-name order) are updated
	// and health-checked before the fleet-wide fan-out; default 1.
	Canaries int
	// WaveSize bounds each post-canary batch; 0 = all remaining at once.
	WaveSize int
	// MaxFailureFrac is the cumulative failed/attempted fraction above
	// which the rollout aborts and rolls back; default 0.25.
	MaxFailureFrac float64
	// HealthCheck validates a member after its push+reboot. nil uses the
	// default: the module must report Running with TargetSlot active —
	// which catches both a dead module and one the watchdog already fell
	// back to golden.
	HealthCheck func(name string, c *Client) error
}

// CanaryReport is the outcome of a staged rollout.
type CanaryReport struct {
	Canaries []string // members used as canaries
	Updated  []string // members pushed and healthy (includes canaries)
	Failed   []Outcome
	// RolledBack is set when the failure fraction breached the threshold
	// and every attempted member — updated or failed — was rebooted back
	// into its previous slot (best-effort; see RollbackErrs).
	RolledBack   bool
	RollbackErrs []Outcome
	// PrevSlots records each member's active slot before the rollout
	// (members whose pre-flight stats read failed are absent).
	PrevSlots map[string]int
}

// PushCanary performs a canary rollout (§2.1's fleet-wide feature rollout
// made safe): push the signed image to a few canaries first, verify their
// health, then fan out in waves — aborting and rebooting every updated
// member back into its previous slot if the cumulative failure fraction
// breaches the threshold.
func (f *Fleet) PushCanary(signed []byte, cfg CanaryConfig) CanaryReport {
	// One membership snapshot drives the whole rollout: waves, health
	// checks, and rollback all address these clients, so concurrent
	// Add/Remove cannot skew which members count toward the failure
	// fraction or escape the rollback set.
	ms := f.snapshot()
	rep := CanaryReport{PrevSlots: make(map[string]int)}
	if len(ms) == 0 {
		return rep
	}
	k := cfg.Canaries
	if k <= 0 {
		k = 1
	}
	if k > len(ms) {
		k = len(ms)
	}
	maxFrac := cfg.MaxFailureFrac
	if maxFrac <= 0 {
		maxFrac = 0.25
	}
	health := cfg.HealthCheck
	if health == nil {
		health = func(_ string, c *Client) error {
			s, err := c.ReadStats()
			if err != nil {
				return err
			}
			if !s.Running {
				return errors.New("mgmt: module not running after update")
			}
			if s.ActiveSlot != cfg.TargetSlot {
				return fmt.Errorf("mgmt: module recovered on slot %d, not target %d",
					s.ActiveSlot, cfg.TargetSlot)
			}
			return nil
		}
	}

	// Pre-flight: remember where everyone is running so we can roll back.
	var statsMu sync.Mutex
	fanOutRefs(ms, func(name string, c *Client) error {
		s, err := c.ReadStats()
		if err != nil {
			return err
		}
		statsMu.Lock()
		rep.PrevSlots[name] = s.ActiveSlot
		statsMu.Unlock()
		return nil
	})

	attempted, failed := 0, 0
	wave := func(group []memberRef) {
		out := fanOutRefs(group, func(name string, c *Client) error {
			if err := c.PushBitstream(signed, cfg.TargetSlot, true); err != nil {
				return err
			}
			return health(name, c)
		})
		for _, o := range out {
			attempted++
			if o.Err != nil {
				failed++
				rep.Failed = append(rep.Failed, o)
			} else {
				rep.Updated = append(rep.Updated, o.Name)
			}
		}
	}
	breached := func() bool {
		return attempted > 0 && float64(failed)/float64(attempted) > maxFrac
	}

	// rollbackAll reverts every attempted member. Failed members are
	// included: a member that rebooted into the target slot and flunked
	// its health check (or recovered onto golden) is exactly the one that
	// needs restoring; members that never left their previous slot absorb
	// a harmless reboot into it.
	rollbackAll := func() {
		attemptedSet := make(map[string]bool, len(rep.Updated)+len(rep.Failed))
		for _, n := range rep.Updated {
			attemptedSet[n] = true
		}
		for _, o := range rep.Failed {
			attemptedSet[o.Name] = true
		}
		var targets []memberRef
		for _, m := range ms {
			if attemptedSet[m.name] {
				targets = append(targets, m)
			}
		}
		rep.RolledBack = true
		rep.RollbackErrs = rollback(targets, rep.PrevSlots)
	}

	for _, m := range ms[:k] {
		rep.Canaries = append(rep.Canaries, m.name)
	}
	wave(ms[:k])
	if breached() {
		rollbackAll()
		return rep
	}
	rest := ms[k:]
	step := cfg.WaveSize
	if step <= 0 {
		step = len(rest)
	}
	for start := 0; start < len(rest); start += step {
		end := min(start+step, len(rest))
		wave(rest[start:end])
		if breached() {
			rollbackAll()
			return rep
		}
	}
	return rep
}

// rollback reboots the captured members into their pre-rollout slots
// (snapshot refs, so a member removed from the fleet mid-rollout is
// still restored).
func rollback(targets []memberRef, prevSlots map[string]int) []Outcome {
	var errs []Outcome
	out := fanOutRefs(targets, func(name string, c *Client) error {
		prev, ok := prevSlots[name]
		if !ok {
			return errors.New("mgmt: previous slot unknown; not rolled back")
		}
		return c.Reboot(prev)
	})
	for _, o := range out {
		if o.Err != nil {
			errs = append(errs, o)
		}
	}
	return errs
}

// Failures filters outcomes to the failed ones.
func Failures(outcomes []Outcome) []Outcome {
	var out []Outcome
	for _, o := range outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

// Summary renders a one-line rollout summary.
func Summary(outcomes []Outcome) string {
	fails := Failures(outcomes)
	return fmt.Sprintf("%d ok, %d failed of %d modules",
		len(outcomes)-len(fails), len(fails), len(outcomes))
}
