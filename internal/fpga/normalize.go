package fpga

// Cross-vendor logic normalization factors cited by the paper:
// 1 Xilinx LUT6 ≈ 1.6 four-input logic elements [AMD UG474],
// 1 Intel ALM ≈ 2 four-input logic elements [Intel ALM note].
const (
	LEPerLUT6 = 1.6
	LEPerALM  = 2.0
)

// LUT6ToLE converts a Xilinx 6-input LUT count to 4-input LE equivalents.
func LUT6ToLE(lut6 int) int { return int(float64(lut6) * LEPerLUT6) }

// ALMToLE converts an Intel ALM count to 4-input LE equivalents.
func ALMToLE(alm int) int { return int(float64(alm) * LEPerALM) }

// LogicUnit identifies how a literature design reports its logic usage.
type LogicUnit int

// Logic accounting units.
const (
	UnitLE LogicUnit = iota // already 4-input LEs
	UnitLUT6
	UnitALM
)

// LiteratureDesign is an FPGA network function from prior work, as
// reported in the paper's Table 2.
type LiteratureDesign struct {
	Name      string
	Logic     int       // in Unit units
	Unit      LogicUnit // how Logic is counted
	BRAMKbits int
	Source    string
}

// NormalizedLE returns the design's logic in 4-input LE equivalents.
func (ld LiteratureDesign) NormalizedLE() int {
	switch ld.Unit {
	case UnitLUT6:
		return LUT6ToLE(ld.Logic)
	case UnitALM:
		return ALMToLE(ld.Logic)
	default:
		return ld.Logic
	}
}

// FitsDevice reports whether the design fits the device's logic and BRAM
// budgets after normalization, and which budget fails first.
func (ld LiteratureDesign) FitsDevice(d Device) (fits bool, limiting string) {
	le := ld.NormalizedLE()
	switch {
	case le > d.LogicElements && ld.BRAMKbits > d.BRAMKbits:
		return false, "logic+BRAM"
	case le > d.LogicElements:
		return false, "logic"
	case ld.BRAMKbits > d.BRAMKbits:
		return false, "BRAM"
	default:
		return true, ""
	}
}

// LiteratureDesigns returns the four designs of Table 2 with the paper's
// reported raw numbers.
func LiteratureDesigns() []LiteratureDesign {
	return []LiteratureDesign{
		{Name: "FlowBlaze (1 stage)", Logic: 71712, Unit: UnitLUT6, BRAMKbits: 14148, Source: "NSDI'19"},
		{Name: "Pigasus", Logic: 207960, Unit: UnitALM, BRAMKbits: 64400, Source: "OSDI'20"},
		{Name: "hXDP (1 core)", Logic: 68689, Unit: UnitLUT6, BRAMKbits: 1799, Source: "CACM'22"},
		{Name: "ClickNP IPSec GW", Logic: 242592, Unit: UnitLUT6, BRAMKbits: 39161, Source: "SIGCOMM'16"},
	}
}
