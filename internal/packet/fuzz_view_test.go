package packet

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
)

// FuzzViewVsDecode is the differential target pinning the shared parser
// to the full layered decoder: wherever Decode accepts a layer, the
// single-pass View must agree on offsets, protocol, addresses and ports.
// The View is deliberately laxer (it ignores IP total-length fields), so
// the comparison is one-directional — decoder success implies View
// agreement — with the exact ARP equivalence checked both ways.
func FuzzViewVsDecode(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
	}
	f.Add(MustBuildARP(ARPSpec{SrcMAC: macA, SenderIP: ip1, TargetIP: ip2, PadTo: 64}))
	f.Add(MustBuildARP(ARPSpec{
		SrcMAC: macA, DstMAC: macB, Operation: ARPReply,
		SenderIP: ip2, TargetMAC: macB, TargetIP: ip1,
	}))
	f.Add(buildIPv6Ext([]IPProtocol{IPProtocolIPv6HopByHop, IPProtocolIPv6DestOpts},
		IPProtocolTCP, MustBuild(Spec{SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
			Proto: IPProtocolTCP, SrcPort: 1, DstPort: 2})[34:]))
	if dhcp, err := (&DHCPv4{Op: DHCPOpRequest, XID: 7, ClientMAC: macA,
		Options: []DHCPOption{{Code: DHCPOptMsgType, Data: []byte{byte(DHCPRequest)}}}}).Marshal(); err == nil {
		f.Add(MustBuild(Spec{SrcMAC: macA, DstMAC: macB,
			SrcIP: netip.MustParseAddr("0.0.0.0"), DstIP: netip.MustParseAddr("255.255.255.255"),
			Proto: IPProtocolUDP, SrcPort: PortDHCPClient, DstPort: PortDHCPServer, Payload: dhcp}))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var v View
		parsed := v.Parse(data)

		pkt := NewPacket(data, LayerTypeEthernet)
		layers := pkt.Layers()
		if len(layers) == 0 {
			return // decoder rejected the Ethernet header outright
		}
		if !parsed {
			// The View rejects a frame only for malformed/truncated L2/L3;
			// when it does, the decoder must not have reached a valid L3
			// either (it may still hold Ethernet/VLANs).
			for _, l := range layers {
				switch l.LayerType() {
				case LayerTypeIPv4, LayerTypeIPv6:
					t.Fatalf("View rejected a frame the decoder gave %v", l.LayerType())
				}
			}
			return
		}

		// Walk the L2 prefix the way the View does. The View caps VLAN
		// extraction at 4 tags (hardware parser window); deeper stacks are
		// out of its contract.
		i := 1 // layers[0] is Ethernet
		vlans := 0
		for i < len(layers) && layers[i].LayerType() == LayerTypeDot1Q {
			vlans++
			i++
		}
		if vlans > maxViewVLANs {
			return
		}
		if vlans != v.NVLAN {
			t.Fatalf("VLAN count: view %d, decoder %d", v.NVLAN, vlans)
		}
		if i >= len(layers) {
			return
		}

		switch l3 := layers[i].(type) {
		case *ARP:
			if !v.IsARP {
				t.Fatal("decoder decoded ARP, view did not")
			}
			if v.ARPOperation() != l3.Operation {
				t.Fatalf("ARP operation: view %d, decoder %d", v.ARPOperation(), l3.Operation)
			}
			sd, td := l3.SenderIP.As4(), l3.TargetIP.As4()
			if !bytes.Equal(v.ARPSenderIP(), sd[:]) || !bytes.Equal(v.ARPTargetIP(), td[:]) {
				t.Fatal("ARP addresses disagree")
			}
			if !bytes.Equal(v.ARPSenderMAC(), l3.SenderMAC[:]) || !bytes.Equal(v.ARPTargetMAC(), l3.TargetMAC[:]) {
				t.Fatal("ARP MACs disagree")
			}
		case *IPv4:
			if !v.IsIPv4 {
				t.Fatal("decoder decoded IPv4, view did not")
			}
			if v.Proto != l3.Protocol {
				t.Fatalf("IPv4 protocol: view %v, decoder %v", v.Proto, l3.Protocol)
			}
			if v.IPv4HeaderLen() != l3.HeaderLength() {
				t.Fatalf("IPv4 header length: view %d, decoder %d", v.IPv4HeaderLen(), l3.HeaderLength())
			}
			s4, d4 := l3.SrcIP.As4(), l3.DstIP.As4()
			if !bytes.Equal(v.SrcIPv4(), s4[:]) || !bytes.Equal(v.DstIPv4(), d4[:]) {
				t.Fatal("IPv4 addresses disagree (offset bug)")
			}
			if l3.FragOffset != 0 && v.L4Off != 0 {
				t.Fatal("view parsed L4 inside a non-first fragment")
			}
			compareL4(t, &v, layers, i+1)
		case *IPv6:
			if !v.IsIPv6 {
				t.Fatal("decoder decoded IPv6, view did not")
			}
			// The full decoder does not walk extension headers; only when
			// the next header is a directly-decodable transport do the two
			// parsers share a contract.
			switch l3.NextHeader {
			case IPProtocolTCP, IPProtocolUDP, IPProtocolICMPv4, IPProtocolGRE:
				if v.Proto != l3.NextHeader {
					t.Fatalf("IPv6 protocol: view %v, decoder %v", v.Proto, l3.NextHeader)
				}
				compareL4(t, &v, layers, i+1)
			}
		}
	})
}

// compareL4 checks the transport view against a decoded TCP/UDP layer, if
// one directly follows the network layer.
func compareL4(t *testing.T, v *View, layers []Layer, i int) {
	t.Helper()
	if i >= len(layers) {
		return
	}
	switch l4 := layers[i].(type) {
	case *TCP:
		if v.L4Off == 0 {
			t.Fatal("decoder decoded TCP, view has no L4 offset")
		}
		if v.SrcPort != l4.SrcPort || v.DstPort != l4.DstPort {
			t.Fatalf("TCP ports: view %d/%d, decoder %d/%d", v.SrcPort, v.DstPort, l4.SrcPort, l4.DstPort)
		}
		// The decoded header starts where the view says it does.
		if got := binary.BigEndian.Uint16(v.Data[v.L4Off:]); got != l4.SrcPort {
			t.Fatalf("L4 offset mismatch: byte at L4Off gives port %d", got)
		}
	case *UDP:
		if v.L4Off == 0 {
			t.Fatal("decoder decoded UDP, view has no L4 offset")
		}
		if v.SrcPort != l4.SrcPort || v.DstPort != l4.DstPort {
			t.Fatalf("UDP ports: view %d/%d, decoder %d/%d", v.SrcPort, v.DstPort, l4.SrcPort, l4.DstPort)
		}
	}
}
