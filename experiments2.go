package flexsfp

import (
	"fmt"
	"math/rand"
	"sort"

	"flexsfp/internal/apps"
	"flexsfp/internal/baseline"
	"flexsfp/internal/core"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/phy"
	"flexsfp/internal/reliability"
	"flexsfp/internal/runner"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// Figure 1 / §4.1: architecture comparison under bidirectional load.

// ArchPoint is one architecture × clock configuration.
type ArchPoint struct {
	Shell         hls.Shell
	ClockMHz      float64
	Bidirectional bool
	// DeliveredFrac is delivered/offered across both directions.
	DeliveredFrac float64
	// PPEFrac is the fraction of traffic that traversed the PPE (the
	// One-Way-Filter only processes one direction).
	PPEFrac float64
	PeakW   float64
}

// ArchitectureResult compares the Figure-1 shells.
type ArchitectureResult struct {
	Points []ArchPoint
}

// ArchitectureExperiment loads each shell with minimum-size line-rate
// traffic and measures what survives: One-Way-Filter carries both
// directions at 156.25 MHz (only one through the PPE); Two-Way-Core at
// the same clock saturates ("aggregating traffic from both interfaces
// effectively doubles the packet rate", §4.1); doubling the clock
// restores line rate.
func ArchitectureExperiment(seed int64) (ArchitectureResult, error) {
	var res ArchitectureResult
	type cfg struct {
		shell hls.Shell
		clock int64
		bidir bool
	}
	cases := []cfg{
		{hls.OneWayFilter, BaseClockHz, false},
		{hls.OneWayFilter, BaseClockHz, true},
		{hls.TwoWayCore, BaseClockHz, false},
		{hls.TwoWayCore, BaseClockHz, true},
		{hls.TwoWayCore, 2 * BaseClockHz, true},
	}
	for _, tc := range cases {
		sim := NewSim(seed)
		mod, _, err := BuildModule(sim, ModuleSpec{
			Name: "arch-dut", DeviceID: 1, Shell: tc.shell, App: "nat",
			ClockHz: tc.clock,
		})
		if err != nil {
			return res, err
		}
		var delivered uint64
		mod.SetTx(0, func(b []byte) { delivered++; trafficgen.PutBuffer(b) })
		mod.SetTx(1, func(b []byte) { delivered++; trafficgen.PutBuffer(b) })

		pps := phy.LineRatePPS(phy.DataRateBps, 64)
		var offered uint64
		genE := trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
			offered++
			mod.RxEdge(b)
			return true
		})
		genE.Run(0)
		var genO *trafficgen.Generator
		if tc.bidir {
			genO = trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
				offered++
				mod.RxOptical(b)
				return true
			})
			genO.Run(0)
		}
		sim.RunFor(netsim.Millisecond)
		genE.Stop()
		if genO != nil {
			genO.Stop()
		}
		sim.RunFor(50 * netsim.Microsecond)

		ppeFrac := 0.0
		if offered > 0 {
			ppeFrac = float64(mod.Engine().Stats().In+mod.Engine().Stats().QueueDrop) / float64(offered)
		}
		res.Points = append(res.Points, ArchPoint{
			Shell:         tc.shell,
			ClockMHz:      float64(tc.clock) / 1e6,
			Bidirectional: tc.bidir,
			DeliveredFrac: float64(delivered) / float64(offered),
			PPEFrac:       ppeFrac,
			PeakW:         core.PeakPowerW(tc.clock, BaseDatapathBits, tc.shell),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r ArchitectureResult) Render() string {
	t := newTable("Shell", "Clock (MHz)", "Load", "Delivered", "Via PPE", "Peak W")
	for _, p := range r.Points {
		load := "one-way"
		if p.Bidirectional {
			load = "two-way"
		}
		t.add(p.Shell.String(), fmt.Sprintf("%.2f", p.ClockMHz), load,
			fmt.Sprintf("%.1f%%", p.DeliveredFrac*100),
			fmt.Sprintf("%.1f%%", p.PPEFrac*100),
			fmt.Sprintf("%.2f", p.PeakW))
	}
	return "Architecture comparison (Figure 1, §4.1): 64B line-rate load\n" + t.String()
}

// ---------------------------------------------------------------------------
// §5.3 scalability: datapath width × clock → achievable line rate.

// ScalePoint is one (width, clock) design point.
type ScalePoint struct {
	DatapathBits int
	ClockMHz     float64
	// CapacityGbps is the min-frame-limited sustained rate.
	CapacityGbps float64
	// Supports is the highest standard rate sustained (10/25/40/100G).
	Supports int
	// NAT design resources at this width, and whether it fits/clocks on
	// the smallest viable PolarFire part.
	Device   string
	Fits     bool
	TimingOK bool
	PeakW    float64
	Thermal  bool // inside the SFP+ 3 W envelope
}

// ScalabilityResult is the §5.3 sweep.
type ScalabilityResult struct {
	Points []ScalePoint
}

// ScalabilityExperiment sweeps the PPE design space: scaling by widening
// the datapath and/or raising the clock, with the resource, timing, and
// thermal consequences §5.3 describes. The grid points are independent
// design evaluations, so they fan out across workers and merge back in
// grid order.
func ScalabilityExperiment() ScalabilityResult {
	prog := apps.NewNAT().Program()
	widths := []int{64, 128, 256, 512}
	clocks := []int64{BaseClockHz, 2 * BaseClockHz, 400_000_000}
	rates := []int{10, 25, 40, 50, 100}
	type gridCell struct {
		w int
		c int64
	}
	var grid []gridCell
	for _, w := range widths {
		for _, c := range clocks {
			grid = append(grid, gridCell{w, c})
		}
	}
	points, _ := runner.Map(len(grid), runner.Options{},
		func(i int, _ *rand.Rand) (ScalePoint, error) {
			w, c := grid[i].w, grid[i].c
			// Min-frame capacity: ceil(64/wordBytes)+1 cycles per frame.
			wordBytes := w / 8
			cycles := float64((64+wordBytes-1)/wordBytes + 1)
			pps := float64(c) / cycles
			// Convert to the line rate this sustains (wire = frame+20B).
			capGbps := pps * (64 + 20) * 8 / 1e9
			supports := 0
			for _, rGbps := range rates {
				if capGbps >= float64(rGbps)*0.999 {
					supports = rGbps
				}
			}
			est := hls.EstimateProgram(prog, w).Add(hls.ShellResources(hls.TwoWayCore))
			dev, err := fpga.SmallestFitting(est)
			fits := err == nil
			timingOK := false
			devName := "-"
			if fits {
				devName = dev.Name
				util := dev.Fit(est).Utilization.Max() / 100
				timingOK = dev.ClockFeasible(float64(c)/1e6, util, w)
			}
			peak := core.PeakPowerW(c, w, hls.TwoWayCore)
			return ScalePoint{
				DatapathBits: w,
				ClockMHz:     float64(c) / 1e6,
				CapacityGbps: capGbps,
				Supports:     supports,
				Device:       devName,
				Fits:         fits,
				TimingOK:     timingOK,
				PeakW:        peak,
				Thermal:      peak <= core.ThermalEnvelopeW,
			}, nil
		})
	return ScalabilityResult{Points: points}
}

// Render formats the sweep.
func (r ScalabilityResult) Render() string {
	t := newTable("Width", "Clock (MHz)", "Capacity (Gb/s)", "Sustains", "Device", "Timing", "Peak W", "SFP+ envelope")
	for _, p := range r.Points {
		sus := "-"
		if p.Supports > 0 {
			sus = fmt.Sprintf("%dG", p.Supports)
		}
		timing := "ok"
		if !p.TimingOK {
			timing = "FAIL"
		}
		th := "yes"
		if !p.Thermal {
			th = "NO"
		}
		t.add(fmt.Sprintf("%db", p.DatapathBits), fmt.Sprintf("%.2f", p.ClockMHz),
			fmt.Sprintf("%.1f", p.CapacityGbps), sus, p.Device, timing,
			fmt.Sprintf("%.2f", p.PeakW), th)
	}
	return "Scalability sweep (§5.3): datapath width × clock\n" + t.String()
}

// ---------------------------------------------------------------------------
// §2 acceleration gap: the same micro-task on host CPU / SmartNIC / FlexSFP.

// GapPoint is one path's measured profile.
type GapPoint struct {
	Path       string
	P50, P99   netsim.Duration
	Throughput float64 // delivered pps
	PowerW     float64
	CostUSD    float64
}

// GapResult quantifies the acceleration gap.
type GapResult struct {
	OfferedPPS float64
	Points     []GapPoint
}

// AccelerationGapExperiment runs an ACL micro-task at 1 Mpps over the
// three paths of §2: host CPU (latency/jitter/contention), SmartNIC
// (cost/power overkill), and the FlexSFP cheap path.
func AccelerationGapExperiment(seed int64) (GapResult, error) {
	const offeredPPS = 1_000_000
	const frames = 20000
	res := GapResult{OfferedPPS: offeredPPS}

	percentiles := func(lat []netsim.Duration) (p50, p99 netsim.Duration) {
		if len(lat) == 0 {
			return 0, 0
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100]
	}

	// Host CPU path, with 30% background contention.
	{
		sim := NewSim(seed)
		var lat []netsim.Duration
		h := baseline.NewHostCPU(sim, func(d []byte, l netsim.Duration) { lat = append(lat, l) })
		h.Contention = 0.3
		gen := trafficgen.New(sim, trafficgen.Config{PPS: offeredPPS}, func(b []byte) bool {
			return h.Submit(b)
		})
		gen.Run(frames)
		sim.Run()
		p50, p99 := percentiles(lat)
		res.Points = append(res.Points, GapPoint{
			Path: h.Name(), P50: p50, P99: p99,
			Throughput: float64(len(lat)) / sim.Now().Seconds(),
			PowerW:     h.PowerW(), CostUSD: h.CostUSD(),
		})
	}

	// SmartNIC path.
	{
		sim := NewSim(seed)
		var lat []netsim.Duration
		s := baseline.NewSmartNIC(sim, func(d []byte, l netsim.Duration) { lat = append(lat, l) })
		gen := trafficgen.New(sim, trafficgen.Config{PPS: offeredPPS}, func(b []byte) bool {
			return s.Submit(b)
		})
		gen.Run(frames)
		sim.Run()
		p50, p99 := percentiles(lat)
		res.Points = append(res.Points, GapPoint{
			Path: s.Name(), P50: p50, P99: p99,
			Throughput: float64(len(lat)) / sim.Now().Seconds(),
			PowerW:     s.PowerW(), CostUSD: s.CostUSD(),
		})
	}

	// FlexSFP path: the real module running the ACL app.
	{
		sim := NewSim(seed)
		mod, _, err := BuildModule(sim, ModuleSpec{
			Name: "gap-dut", DeviceID: 1, Shell: TwoWayCore, App: "acl",
			Config: apps.ACLConfig{Rules: []apps.ACLRule{
				{DstPort: 22, Proto: 6, Deny: true, Priority: 10},
			}},
		})
		if err != nil {
			return res, err
		}
		var lat []netsim.Duration
		sent := map[int]netsim.Time{}
		n := 0
		mod.SetTx(1, func(b []byte) {
			lat = append(lat, sim.Now().Sub(sent[len(lat)]))
		})
		gen := trafficgen.New(sim, trafficgen.Config{PPS: offeredPPS}, func(b []byte) bool {
			sent[n] = sim.Now()
			n++
			mod.RxEdge(b)
			return true
		})
		gen.Run(frames)
		sim.Run()
		p50, p99 := percentiles(lat)
		res.Points = append(res.Points, GapPoint{
			Path: "flexsfp", P50: p50, P99: p99,
			Throughput: float64(len(lat)) / sim.Now().Seconds(),
			PowerW:     core.PeakPowerW(BaseClockHz, BaseDatapathBits, hls.TwoWayCore),
			CostUSD:    275,
		})
	}
	return res, nil
}

// Render formats the gap table.
func (r GapResult) Render() string {
	t := newTable("Path", "p50 latency", "p99 latency", "Power (W)", "Cost ($/port)")
	for _, p := range r.Points {
		t.add(p.Path,
			fmt.Sprintf("%.2f µs", float64(p.P50)/1000),
			fmt.Sprintf("%.2f µs", float64(p.P99)/1000),
			fmt.Sprintf("%.1f", p.PowerW),
			fmt.Sprintf("%.0f", p.CostUSD))
	}
	return fmt.Sprintf("Acceleration gap (§2): ACL micro-task at %.0f pps\n", r.OfferedPPS) + t.String()
}

// ---------------------------------------------------------------------------
// §5.3 reliability: VCSEL wear-out fleet simulation.

// ReliabilityResult wraps the fleet report.
type ReliabilityResult struct {
	Report reliability.FleetReport
	Config reliability.FleetConfig
}

// ReliabilityExperiment runs the default 10k-module, 10-year fleet.
func ReliabilityExperiment(seed int64) ReliabilityResult {
	cfg := reliability.DefaultFleet()
	return ReliabilityResult{
		Report: reliability.RunFleet(seed, reliability.DefaultVCSEL(), cfg),
		Config: cfg,
	}
}

// Render formats the fleet report.
func (r ReliabilityResult) Render() string {
	rep := r.Report
	t := newTable("Metric", "Value")
	t.add("Fleet size", rep.Modules)
	t.add("Horizon (years)", r.Config.Years)
	t.add("Laser failures in horizon", rep.Failures)
	t.add("Detected early via DDM", fmt.Sprintf("%d (%.1f%%)", rep.DetectedEarly,
		100*float64(rep.DetectedEarly)/float64(max(rep.Failures, 1))))
	t.add("Sampled MTTF (years)", fmt.Sprintf("%.1f", rep.MTTFYears))
	t.add("TTF p10/p90 (years)", fmt.Sprintf("%.1f / %.1f", rep.P10Years, rep.P90Years))
	t.add("Std SFP module swaps ($)", fmt.Sprintf("%.0f", rep.StandardSwapCostUSD))
	t.add("FlexSFP module swaps ($)", fmt.Sprintf("%.0f", rep.FlexModuleSwapCostUSD))
	t.add("FlexSFP laser repairs ($)", fmt.Sprintf("%.0f", rep.FlexLaserRepairUSD))
	t.add("Laser-repair saving", fmt.Sprintf("%.0f%%", rep.LaserRepairSavingFrac*100))
	return "Reliability (§5.3): VCSEL lognormal wear-out fleet simulation\n" + t.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
