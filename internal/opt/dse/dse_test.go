package dse

import (
	"bytes"
	"encoding/json"
	"testing"

	"flexsfp/internal/fpga"
	"flexsfp/internal/ppe"
)

// TestExploreDeterministicAcrossParallelism is the determinism wall the
// experiment golden relies on: the same seed must produce byte-identical
// JSON no matter how many workers score the grid.
func TestExploreDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []byte {
		cfg := DefaultConfig(7)
		cfg.Parallelism = par
		res, err := Explore(cfg)
		if err != nil {
			t.Fatalf("explore parallelism=%d: %v", par, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("sweep result depends on parallelism:\n%d bytes vs %d bytes",
			len(serial), len(parallel))
	}
}

// TestExploreCoversAppsAndFindsFronts checks the sweep's structural
// promises: every registry app appears (sorted), every app gets a
// feasible operating point on the catalog, and the Pareto flags are
// consistent (feasible, non-dominated, counted).
func TestExploreCoversAppsAndFindsFronts(t *testing.T) {
	res, err := Explore(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) < 10 {
		t.Fatalf("sweep covered %d apps, want the full registry", len(res.Apps))
	}
	for i := 1; i < len(res.Apps); i++ {
		if res.Apps[i-1].App >= res.Apps[i].App {
			t.Fatalf("apps not sorted: %q before %q", res.Apps[i-1].App, res.Apps[i].App)
		}
	}
	for _, front := range res.Apps {
		if len(front.Points) != res.GridPoints {
			t.Fatalf("%s: %d points, want %d", front.App, len(front.Points), res.GridPoints)
		}
		if front.FeasibleCount == 0 {
			t.Errorf("%s: no feasible operating point on the catalog", front.App)
		}
		if front.ParetoCount == 0 {
			t.Errorf("%s: empty Pareto front", front.App)
		}
		for i, p := range front.Points {
			if !p.Pareto {
				continue
			}
			if !p.feasible() {
				t.Fatalf("%s: infeasible point %d marked Pareto", front.App, i)
			}
			for j, q := range front.Points {
				if j != i && q.feasible() && q.dominates(p) {
					t.Fatalf("%s: Pareto point %d dominated by %d", front.App, i, j)
				}
			}
		}
		if front.Opt.DepthAfter > front.Opt.DepthBefore {
			t.Errorf("%s: optimizer increased depth %d -> %d",
				front.App, front.Opt.DepthBefore, front.Opt.DepthAfter)
		}
	}
}

// TestExploreBaselinePointFeasible pins the paper's §5.1 operating point:
// 156.25 MHz × 64-bit on the MPF200T must be feasible for the catalog
// apps (that is the deployed design).
func TestExploreBaselinePointFeasible(t *testing.T) {
	res, err := Explore(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, front := range res.Apps {
		found := false
		for _, p := range front.Points {
			if p.Device == "MPF200T" && p.ClockMHz == 156.25 &&
				p.DatapathBits == 64 && p.TableScale == 1 && p.feasible() {
				found = true
				// 10GbE line rate at 64B is 14.88 Mpps (20B
				// preamble+IFG per frame), i.e. 7.62 Gbps of frame
				// bytes. The xdp app is program-bound at the baseline
				// point — that gap is what the optimizer experiments
				// measure — so it is exempt here.
				if pps := p.CapacityGbps * 1e9 / (64 * 8); front.App != "xdp" && pps < 10e9/((64+20)*8) {
					t.Errorf("%s: baseline point below line rate: %.3f Gbps (%.2f Mpps)",
						front.App, p.CapacityGbps, pps/1e6)
				}
				break
			}
		}
		if !found {
			t.Errorf("%s: baseline MPF200T/156.25MHz/64b point not feasible", front.App)
		}
	}
}

// TestLiteraturePlacement checks the Table 2 designs are all evaluated
// and that any design reported as fitting names a device and a price.
func TestLiteraturePlacement(t *testing.T) {
	res, err := Explore(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Literature) != len(fpga.LiteratureDesigns()) {
		t.Fatalf("literature table has %d rows, want %d",
			len(res.Literature), len(fpga.LiteratureDesigns()))
	}
	fits := 0
	for _, lf := range res.Literature {
		if lf.Fits {
			fits++
			if lf.Device == "" || lf.CostUSD <= 0 {
				t.Errorf("%s: fits but no device/cost", lf.Design)
			}
		} else if lf.Limiting == "" {
			t.Errorf("%s: does not fit but no limiting resource", lf.Design)
		}
	}
	if fits == 0 {
		t.Error("no literature design fits any catalog device")
	}
}

// TestScaleTablesRespectsCaps: the table-sizing axis must keep scaled
// programs valid — in particular the ternary register-TCAM cap.
func TestScaleTablesRespectsCaps(t *testing.T) {
	p := &ppe.Program{
		Name:   "t",
		Stages: 1,
		Tables: []ppe.TableSpec{
			{Name: "exact", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 32, Size: 1024},
			{Name: "tern", Kind: ppe.TableTernary, KeyBits: 32, ValueBits: 16, Size: 4096},
		},
		Actions: []ppe.ActionSpec{{Kind: ppe.ActionRewrite, Bits: 32}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	q := scaleTables(p, 2)
	if err := q.Validate(); err != nil {
		t.Fatalf("scaled program invalid: %v", err)
	}
	if q.Tables[0].Size != 2048 {
		t.Errorf("exact table scaled to %d, want 2048", q.Tables[0].Size)
	}
	if q.Tables[1].Size != 4096 {
		t.Errorf("ternary table scaled to %d, want the 4096 cap", q.Tables[1].Size)
	}
	if p.Tables[0].Size != 1024 {
		t.Error("scaleTables mutated its input")
	}
	if same := scaleTables(p, 1); same != p {
		t.Error("scale 1 should share the input")
	}
}
