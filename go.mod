module flexsfp

go 1.24
