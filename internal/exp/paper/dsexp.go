package paper

import (
	"fmt"

	"flexsfp/internal/exp"
	"flexsfp/internal/opt/dse"
)

// ---------------------------------------------------------------------------
// Cost-aware design-space exploration (dse).

// DSEResult wraps the sweep so the envelope detail is the full per-app
// Pareto front (dse.Result marshals deterministically: apps sorted,
// points in grid order, per-point seeds independent of scheduling).
type DSEResult struct {
	dse.Result
}

// Render formats the sweep: one row per app with its front summarized by
// the cheapest Pareto point, then the Table 2 literature placements.
func (r DSEResult) Render() string {
	t := exp.NewTable("App", "Feasible", "Pareto", "Cheapest front point", "Latency (ns)", "Power (W)")
	for _, front := range r.Apps {
		best := -1
		for i, p := range front.Points {
			if p.Pareto && (best < 0 || p.CostUSD < front.Points[best].CostUSD) {
				best = i
			}
		}
		cell, lat, pw := "-", "-", "-"
		if best >= 0 {
			p := front.Points[best]
			cell = fmt.Sprintf("%s %gMHz/%db ($%.0f)", p.Device, p.ClockMHz, p.DatapathBits, p.CostUSD)
			lat = fmt.Sprintf("%.1f", p.LatencyNs)
			pw = fmt.Sprintf("%.3f", p.PeakPowerW)
		}
		t.Add(front.App,
			fmt.Sprintf("%d/%d", front.FeasibleCount, len(front.Points)),
			front.ParetoCount, cell, lat, pw)
	}
	out := fmt.Sprintf("Design-space exploration: %d points/app on the %s shell\n",
		r.GridPoints, r.Shell) + t.String()

	lt := exp.NewTable("Design", "Fits?", "Device", "Cost (USD)", "Typ power (W)")
	for _, lf := range r.Literature {
		if lf.Fits {
			lt.Add(lf.Design, "yes", lf.Device, fmt.Sprintf("%.0f", lf.CostUSD), fmt.Sprintf("%.1f", lf.TypPowerW))
		} else {
			lt.Add(lf.Design, "no ("+lf.Limiting+")", "-", "-", "-")
		}
	}
	out += "Literature designs (Table 2) on the PolarFire catalog:\n" + lt.String()
	return out
}

// runDSE is the registered entry point.
func runDSE(ctx exp.RunContext) (exp.Result, error) {
	cfg := dse.DefaultConfig(ctx.Seed)
	cfg.Parallelism = ctx.Parallelism
	res, err := dse.Explore(cfg)
	if err != nil {
		return nil, err
	}
	r := DSEResult{Result: *res}
	feasible, pareto := 0, 0
	for _, front := range r.Apps {
		feasible += front.FeasibleCount
		pareto += front.ParetoCount
	}
	litFits := 0
	for _, lf := range r.Literature {
		if lf.Fits {
			litFits++
		}
	}
	env := exp.Envelope{Name: "dse", Params: ctx.Params(), Detail: r.Result}
	env.Metrics = []exp.Metric{
		exp.Scalar("apps", "", float64(len(r.Apps))),
		exp.Scalar("grid_points", "", float64(r.GridPoints)),
		exp.Scalar("feasible_points", "", float64(feasible)),
		exp.Scalar("pareto_points", "", float64(pareto)),
		exp.Scalar("literature_fits", "", float64(litFits)),
	}
	return exp.NewResult(env, r.Render), nil
}
