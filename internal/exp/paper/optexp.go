package paper

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/opt"
	"flexsfp/internal/ppe"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// Pipeline optimizer evaluation (pipeline_opt).

// optEquivFrames is the per-app verdict-equivalence corpus the experiment
// replays. The heavyweight 10k-frame property lives in internal/opt's
// tests; the experiment repeats a smaller deterministic corpus so the
// "verdict_mismatches" metric is measured on every run, not assumed.
const optEquivFrames = 512

// AppOptResult is the optimizer's effect on one catalog app.
type AppOptResult struct {
	App string     `json:"app"`
	Opt opt.Report `json:"opt"`
	// ServiceCycles before/after at 64B on the §5.1 operating point
	// (streaming words or the soft core's schedule, whichever dominates).
	ServiceCyclesBefore int64 `json:"service_cycles_before"`
	ServiceCyclesAfter  int64 `json:"service_cycles_after"`
	// LatencyNs before/after: pipeline depth + service at 156.25 MHz.
	LatencyNsBefore float64 `json:"latency_ns_before"`
	LatencyNsAfter  float64 `json:"latency_ns_after"`
	// LUT4/USRAM deltas from the hls estimator at 64-bit.
	LUT4Saved  int `json:"lut4_saved"`
	USRAMSaved int `json:"usram_saved"`
	// VerdictMismatches over the replayed equivalence corpus (must be 0).
	VerdictMismatches int `json:"verdict_mismatches"`
}

// XDPOptSummary is the instruction-pass report for the reference codelet.
type XDPOptSummary struct {
	Program string        `json:"program"`
	Report  opt.XDPReport `json:"report"`
}

// LineRateDelta is the measured end-to-end effect of the optimizer on
// the program-bound XDP module at 64B line rate.
type LineRateDelta struct {
	App              string  `json:"app"`
	OfferedMpps      float64 `json:"offered_mpps"`
	DeliveredOffMpps float64 `json:"delivered_off_mpps"`
	DeliveredOnMpps  float64 `json:"delivered_on_mpps"`
	DropsOff         uint64  `json:"drops_off"`
	DropsOn          uint64  `json:"drops_on"`
	GainPct          float64 `json:"gain_pct"`
	ServiceCyclesOff int64   `json:"service_cycles_off"`
	ServiceCyclesOn  int64   `json:"service_cycles_on"`
}

// PipelineOptResult is the full optimizer evaluation.
type PipelineOptResult struct {
	Apps     []AppOptResult `json:"apps"`
	XDP      XDPOptSummary  `json:"xdp"`
	LineRate LineRateDelta  `json:"line_rate"`

	// Headline rollups (the opt-smoke gate greps these via the metrics).
	AppsDepthReduced int `json:"apps_depth_reduced"`
	DepthRegressions int `json:"depth_regressions"`
}

// pipelineOptSingle evaluates the optimizer over every catalog app.
func pipelineOptSingle(ctx exp.RunContext) (PipelineOptResult, error) {
	reg := apps.NewRegistry()
	names := reg.Names()
	sort.Strings(names)

	var res PipelineOptResult
	for i, name := range names {
		r, err := evalAppOpt(name, int64(i)+ctx.Seed)
		if err != nil {
			return PipelineOptResult{}, fmt.Errorf("pipeline_opt: %s: %w", name, err)
		}
		res.Apps = append(res.Apps, r)
		if r.Opt.DepthAfter < r.Opt.DepthBefore {
			res.AppsDepthReduced++
		}
		if r.Opt.DepthAfter > r.Opt.DepthBefore {
			res.DepthRegressions++
		}
	}

	vm := apps.CanonicalXDPProgram()
	_, xrep, err := opt.OptimizeXDP(vm, opt.Options{})
	if err != nil {
		return PipelineOptResult{}, err
	}
	res.XDP = XDPOptSummary{Program: vm.Name, Report: xrep}

	lr, err := xdpLineRateDelta(ctx)
	if err != nil {
		return PipelineOptResult{}, err
	}
	res.LineRate = lr
	return res, nil
}

// evalAppOpt compiles one app plain and optimized, compares structure,
// resources, and verdict behavior over a deterministic corpus.
func evalAppOpt(name string, seed int64) (AppOptResult, error) {
	mk := func(optimize bool) (*ppe.Program, error) {
		reg := apps.NewRegistry()
		app, err := reg.New(name)
		if err != nil {
			return nil, err
		}
		cfg, err := apps.CanonicalConfig(name)
		if err != nil {
			return nil, err
		}
		if xc, ok := cfg.(apps.XDPConfig); ok && optimize {
			xc.Optimize = true
			cfg = xc
		}
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, err
		}
		if err := app.Configure(raw); err != nil {
			return nil, err
		}
		return app.Program(), nil
	}

	before, err := mk(false)
	if err != nil {
		return AppOptResult{}, err
	}
	tuned, err := mk(true)
	if err != nil {
		return AppOptResult{}, err
	}
	after, rep := opt.Optimize(tuned, opt.Options{})

	r := AppOptResult{App: name, Opt: rep}
	r.ServiceCyclesBefore = serviceCycles64(before)
	r.ServiceCyclesAfter = serviceCycles64(after)
	const clockHz = 156_250_000
	r.LatencyNsBefore = float64(r.ServiceCyclesBefore+int64(before.PipelineDepth(64))) * 1e9 / clockHz
	r.LatencyNsAfter = float64(r.ServiceCyclesAfter+int64(after.PipelineDepth(64))) * 1e9 / clockHz
	eb := hls.EstimateProgram(before, 64)
	ea := hls.EstimateProgram(after, 64)
	r.LUT4Saved = eb.LUT4 - ea.LUT4
	r.USRAMSaved = eb.USRAM - ea.USRAM

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < optEquivFrames; i++ {
		n := rng.Intn(220)
		frame := make([]byte, n)
		rng.Read(frame)
		a := append([]byte(nil), frame...)
		b := append([]byte(nil), frame...)
		dir := ppe.Direction(i % 2)
		ts := uint64(i) * 100
		ctxA := &ppe.Ctx{Data: a, Dir: dir, TimestampNs: ts}
		ctxB := &ppe.Ctx{Data: b, Dir: dir, TimestampNs: ts}
		if before.Handler.HandlePacket(ctxA) != after.Handler.HandlePacket(ctxB) {
			r.VerdictMismatches++
		}
	}
	return r, nil
}

// serviceCycles64 mirrors ppe.Engine.ServiceCycles for a 64B frame on
// the 64-bit baseline datapath.
func serviceCycles64(p *ppe.Program) int64 {
	svc := int64(64/8) + 1
	if pc := int64(p.ProgCycles); svc < pc {
		svc = pc
	}
	return svc
}

// xdpLineRateDelta drives the XDP module at 64B line rate twice — the
// soft core scalar (optimizer off) vs the packed VLIW schedule
// (optimizer on) — on identically seeded simulators. The reference
// codelet retires 17 scalar cycles against 9 streaming words, so the
// unoptimized module is program-bound below line rate; the measured
// delivered-rate gap is the optimizer's end-to-end win.
func xdpLineRateDelta(ctx exp.RunContext) (LineRateDelta, error) {
	run := func(optimize bool) (float64, float64, uint64, int64, error) {
		sim := build.NewSim(ctx.Seed)
		mod, _, err := build.Module(sim, build.ModuleSpec{
			Name: "opt-dut", DeviceID: 1, Shell: hls.TwoWayCore, App: "xdp",
			ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
			Optimize: optimize,
			Config: apps.XDPConfig{
				Program:  *apps.CanonicalXDPProgram(),
				Optimize: optimize,
			},
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		meter := netsim.NewRateMeter(sim)
		mod.SetTx(1, func(b []byte) {
			meter.Observe(len(b))
			trafficgen.PutBuffer(b)
		})
		mod.SetTx(0, trafficgen.PutBuffer)

		pps := 10e9 / ((64 + 20) * 8)
		wire := netsim.NewLink(sim, 10_000_000_000, 0, mod.RxEdge)
		gen := trafficgen.New(sim, trafficgen.Config{
			PPS: pps, Sizes: []trafficgen.IMIXEntry{{Size: 64, Weight: 1}}, Flows: 32,
		}, func(b []byte) bool {
			return wire.Send(b)
		})
		gen.Run(0)
		sim.RunFor(netsim.Millisecond)
		gen.Stop()
		sim.RunFor(100 * netsim.Microsecond)

		offered := float64(gen.Sent) / netsim.Duration(netsim.Millisecond).Seconds()
		delivered := float64(meter.Frames) / netsim.Duration(netsim.Millisecond).Seconds()
		return offered, delivered, mod.Engine().Stats().QueueDrop, mod.Engine().ServiceCycles(64), nil
	}

	offered, offD, offDrops, offSvc, err := run(false)
	if err != nil {
		return LineRateDelta{}, err
	}
	_, onD, onDrops, onSvc, err := run(true)
	if err != nil {
		return LineRateDelta{}, err
	}
	d := LineRateDelta{
		App:              "xdp",
		OfferedMpps:      offered / 1e6,
		DeliveredOffMpps: offD / 1e6,
		DeliveredOnMpps:  onD / 1e6,
		DropsOff:         offDrops,
		DropsOn:          onDrops,
		ServiceCyclesOff: offSvc,
		ServiceCyclesOn:  onSvc,
	}
	if offD > 0 {
		d.GainPct = (onD/offD - 1) * 100
	}
	return d, nil
}

// Render formats the optimizer evaluation.
func (r PipelineOptResult) Render() string {
	t := exp.NewTable("App", "Stages", "Tables", "Depth (cyc)", "Svc (cyc)", "Latency (ns)", "LUT4 saved", "Mismatches")
	for _, a := range r.Apps {
		t.Add(a.App,
			fmt.Sprintf("%d→%d", a.Opt.StagesBefore, a.Opt.StagesAfter),
			fmt.Sprintf("%d→%d", a.Opt.TablesBefore, a.Opt.TablesAfter),
			fmt.Sprintf("%d→%d", a.Opt.DepthBefore, a.Opt.DepthAfter),
			fmt.Sprintf("%d→%d", a.ServiceCyclesBefore, a.ServiceCyclesAfter),
			fmt.Sprintf("%.1f→%.1f", a.LatencyNsBefore, a.LatencyNsAfter),
			a.LUT4Saved, a.VerdictMismatches)
	}
	out := "Pipeline optimizer: structural passes over the app catalog\n" + t.String()
	x := r.XDP.Report
	out += fmt.Sprintf("XDP %q: %d→%d insns (%d unreachable, %d dead writes, %d folded loads, %d threaded jumps); schedule %d→%d cycles at width 4\n",
		r.XDP.Program, x.InsnsBefore, x.InsnsAfter,
		x.Unreachable, x.DeadWrites, x.FoldedLoads, x.ThreadedJumps,
		x.ScalarCycles, x.PackedCycles)
	lr := r.LineRate
	out += fmt.Sprintf("Measured 64B line rate (xdp): offered %.3f Mpps, delivered %.3f → %.3f Mpps (+%.1f%%), service %d → %d cycles\n",
		lr.OfferedMpps, lr.DeliveredOffMpps, lr.DeliveredOnMpps, lr.GainPct,
		lr.ServiceCyclesOff, lr.ServiceCyclesOn)
	out += fmt.Sprintf("Depth reduced for %d/%d apps; regressions %d\n",
		r.AppsDepthReduced, len(r.Apps), r.DepthRegressions)
	return out
}

// runPipelineOpt is the registered entry point.
func runPipelineOpt(ctx exp.RunContext) (exp.Result, error) {
	env := exp.Envelope{Name: "pipeline_opt", Params: ctx.Params()}
	r, err := pipelineOptSingle(ctx)
	if err != nil {
		return nil, err
	}
	mismatches := 0
	for _, a := range r.Apps {
		mismatches += a.VerdictMismatches
	}
	env.Detail = r
	env.Metrics = []exp.Metric{
		exp.Scalar("apps_total", "", float64(len(r.Apps))),
		exp.Scalar("apps_depth_reduced", "", float64(r.AppsDepthReduced)),
		exp.Scalar("depth_regressions", "", float64(r.DepthRegressions)),
		exp.Scalar("verdict_mismatches", "", float64(mismatches)),
		exp.Scalar("xdp_delivered_off", "Mpps", r.LineRate.DeliveredOffMpps),
		exp.Scalar("xdp_delivered_on", "Mpps", r.LineRate.DeliveredOnMpps),
		exp.Scalar("xdp_linerate_gain", "%", r.LineRate.GainPct),
	}
	return exp.NewResult(env, r.Render), nil
}
