package opt

import (
	"testing"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

func structProg(stages int, tables []ppe.TableSpec, actions []ppe.ActionSpec) *ppe.Program {
	return &ppe.Program{
		Name:        "t",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4},
		Tables:      tables,
		Actions:     actions,
		Stages:      stages,
	}
}

func TestMergeTablesSameShape(t *testing.T) {
	p := structProg(3, []ppe.TableSpec{
		{Name: "a", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: 1024},
		{Name: "b", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: 512},
		{Name: "c", Kind: ppe.TableExact, KeyBits: 64, ValueBits: 16, Size: 256},
	}, nil)
	q, rep := Optimize(p, Options{})
	if rep.TablesBefore != 3 || rep.TablesAfter != 2 {
		t.Fatalf("tables %d -> %d, want 3 -> 2", rep.TablesBefore, rep.TablesAfter)
	}
	m := q.Tables[0]
	if m.Name != "a+b" || m.Size != 1536 {
		t.Fatalf("merged table %q size %d, want a+b/1536", m.Name, m.Size)
	}
	if m.KeyBits != 33 { // 32 + 1 tag bit for 2 members
		t.Fatalf("merged KeyBits = %d, want 33", m.KeyBits)
	}
	if q.Tables[1].Name != "c" || q.Tables[1].KeyBits != 64 {
		t.Fatalf("unmergeable table disturbed: %+v", q.Tables[1])
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("merged program fails validation: %v", err)
	}
}

func TestMergeTablesLeavesTernaryAlone(t *testing.T) {
	p := structProg(2, []ppe.TableSpec{
		{Name: "acl1", Kind: ppe.TableTernary, KeyBits: 104, ValueBits: 8, Size: 64},
		{Name: "acl2", Kind: ppe.TableTernary, KeyBits: 104, ValueBits: 8, Size: 64},
	}, nil)
	_, rep := Optimize(p, Options{})
	if rep.TablesAfter != 2 {
		t.Fatalf("ternary tables merged: %d tables after", rep.TablesAfter)
	}
}

func TestFuseStagesReducesDepth(t *testing.T) {
	p := structProg(3,
		[]ppe.TableSpec{{Name: "flows", Kind: ppe.TableExact, KeyBits: 96, ValueBits: 32, Size: 4096}},
		[]ppe.ActionSpec{
			{Kind: ppe.ActionRewrite, Bits: 32},
			{Kind: ppe.ActionChecksum},
			{Kind: ppe.ActionHash, Bits: 32},
		})
	q, rep := Optimize(p, Options{})
	if rep.StagesAfter != 1 {
		t.Fatalf("stages %d -> %d, want 1 after (1 table, 3 actions)", rep.StagesBefore, rep.StagesAfter)
	}
	if rep.DepthAfter >= rep.DepthBefore {
		t.Fatalf("depth %d -> %d, want reduction", rep.DepthBefore, rep.DepthAfter)
	}
	if got, want := q.PipelineDepth(64), rep.DepthAfter; got != want {
		t.Fatalf("PipelineDepth(64) = %d, report says %d", got, want)
	}
}

func TestFuseStagesRespectsBudgets(t *testing.T) {
	actions := make([]ppe.ActionSpec, 13) // ceil(13/6) = 3 stages of crossbar
	for i := range actions {
		actions[i] = ppe.ActionSpec{Kind: ppe.ActionRewrite, Bits: 16}
	}
	p := structProg(4, nil, actions)
	_, rep := Optimize(p, Options{})
	if rep.StagesAfter != 3 {
		t.Fatalf("stages after = %d, want 3 (action budget)", rep.StagesAfter)
	}
}

func TestFuseStagesNeverIncreases(t *testing.T) {
	// Declared stage count below the structural need: fusion must not
	// "fix it up" — the declaration wins when it is already smaller.
	p := structProg(1, []ppe.TableSpec{
		{Name: "a", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 8, Size: 16},
		{Name: "b", Kind: ppe.TableExact, KeyBits: 48, ValueBits: 8, Size: 16},
		{Name: "c", Kind: ppe.TableExact, KeyBits: 64, ValueBits: 8, Size: 16},
	}, nil)
	_, rep := Optimize(p, Options{})
	if rep.StagesAfter > rep.StagesBefore {
		t.Fatalf("stages increased %d -> %d", rep.StagesBefore, rep.StagesAfter)
	}
}

func TestOptimizeSoftCoreStageNeed(t *testing.T) {
	p := structProg(4, nil, nil)
	p.ProgCycles = 2500 // needs ceil(2500/1024) = 3 stages of instruction store
	_, rep := Optimize(p, Options{})
	if rep.StagesAfter != 3 {
		t.Fatalf("stages after = %d, want 3 (ProgCycles store)", rep.StagesAfter)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	p := structProg(4, []ppe.TableSpec{
		{Name: "a", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: 128},
		{Name: "b", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: 128},
	}, []ppe.ActionSpec{{Kind: ppe.ActionChecksum}})
	q1, rep1 := Optimize(p, Options{})
	q2, rep2 := Optimize(q1, Options{})
	if rep2.StagesBefore != rep2.StagesAfter || rep2.TablesBefore != rep2.TablesAfter {
		t.Fatalf("second Optimize still changed structure: %+v", rep2)
	}
	if q2.Stages != q1.Stages || len(q2.Tables) != len(q1.Tables) {
		t.Fatalf("not idempotent: %d/%d stages, %d/%d tables",
			q1.Stages, q2.Stages, len(q1.Tables), len(q2.Tables))
	}
	if rep1.StagesAfter != 1 { // 1 merged table + 1 action → single stage
		t.Fatalf("stages after first pass = %d, want 1", rep1.StagesAfter)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	p := structProg(3, []ppe.TableSpec{
		{Name: "a", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: 128},
		{Name: "b", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: 128},
	}, nil)
	_, _ = Optimize(p, Options{})
	if p.Stages != 3 || len(p.Tables) != 2 || p.Tables[0].Size != 128 {
		t.Fatalf("input program mutated: %+v", p)
	}
}
