// Command flexsfp-ctl is the fleet-side management client: it speaks the
// mgmt protocol to a module's TCP management port (flexsfpd) to inspect
// state, program tables, and push signed bitstreams over the network —
// the §4.2 reprogramming workflow.
//
// Usage:
//
//	flexsfp-ctl -addr 127.0.0.1:9461 ping
//	flexsfp-ctl stats
//	flexsfp-ctl ddm
//	flexsfp-ctl slots
//	flexsfp-ctl table-add -table nat -key 0a010001 -value cb007101
//	flexsfp-ctl table-dump -table nat
//	flexsfp-ctl counter -bank stats -index 0
//	flexsfp-ctl compile -app acl -config '{"default_deny":true}' -out acl.fsfp -key <fleet-key>
//	flexsfp-ctl push -file acl.fsfp -slot 2 -reboot
//	flexsfp-ctl reboot -slot 1
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/bitstream"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flexsfp-ctl: ")

	addr := flag.String("addr", "127.0.0.1:9461", "module management address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing subcommand (ping, stats, ddm, eeprom, slots, table-add, table-del, table-get, table-dump, counter, meter-set, reg-read, reg-write, compile, push, reboot)")
	}
	cmd, rest := args[0], args[1:]

	// compile is purely local.
	if cmd == "compile" {
		compileCmd(rest)
		return
	}
	// fleet-* commands fan out over many modules.
	if strings.HasPrefix(cmd, "fleet-") {
		fleetCmd(cmd, rest)
		return
	}

	tr, err := mgmt.Dial(*addr)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *addr, err)
	}
	defer tr.Close()
	c := mgmt.NewClient(tr)

	switch cmd {
	case "ping":
		info, err := c.Ping()
		check(err)
		fmt.Printf("module %q device=%d app=%s running=%v\n",
			info.Name, info.DeviceID, info.AppName, info.Running)
	case "stats":
		st, err := c.ReadStats()
		check(err)
		fmt.Printf("app=%s slot=%d running=%v\n", st.AppName, st.ActiveSlot, st.Running)
		fmt.Printf("rx edge/optical/ctrl: %d/%d/%d  tx: %d/%d/%d\n",
			st.Rx[0], st.Rx[1], st.Rx[2], st.Tx[0], st.Tx[1], st.Tx[2])
		fmt.Printf("engine: in=%d pass=%d drop=%d tx=%d redirect=%d tocpu=%d qdrop=%d\n",
			st.Engine.In, st.Engine.Pass, st.Engine.Drop, st.Engine.Tx,
			st.Engine.Redirect, st.Engine.ToCPU, st.Engine.QueueDrop)
		fmt.Printf("control frames=%d reboot drops=%d boots=%d auth failures=%d\n",
			st.ControlFrames, st.RebootDrops, st.Boots, st.AuthFailures)
	case "ddm":
		d, err := c.ReadDDM()
		check(err)
		fmt.Printf("temp=%.1fC vcc=%.2fV txbias=%.1fmA txpower=%.1fdBm rxpower=%.1fdBm\n",
			d.TemperatureC, d.VccVolts, d.TxBiasMA, d.TxPowerDBm, d.RxPowerDBm)
	case "eeprom":
		id, _, err := c.ReadEEPROM()
		check(err)
		fmt.Printf("vendor=%q pn=%q rev=%q sn=%q date=%s 10GBASE-SR=%v ddm=%v\n",
			id.VendorName, id.VendorPN, id.VendorRev, id.VendorSN,
			id.DateCode, id.Is10GBaseSR, id.DDMSupported)
	case "slots":
		slots, err := c.Slots()
		check(err)
		for i, s := range slots {
			if s == "" {
				s = "(empty)"
			}
			fmt.Printf("slot %d: %s\n", i, s)
		}
	case "table-add":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		key := fs.String("key", "", "hex key")
		value := fs.String("value", "", "hex value")
		parse(fs, rest)
		check(c.TableAdd(*table, mustHex(*key), mustHex(*value)))
		fmt.Println("ok")
	case "table-del":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		key := fs.String("key", "", "hex key")
		parse(fs, rest)
		check(c.TableDel(*table, mustHex(*key)))
		fmt.Println("ok")
	case "table-get":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		key := fs.String("key", "", "hex key")
		parse(fs, rest)
		v, err := c.TableGet(*table, mustHex(*key))
		check(err)
		fmt.Printf("%x\n", v)
	case "table-dump":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "", "table name")
		parse(fs, rest)
		entries, err := c.TableDump(*table)
		check(err)
		for _, e := range entries {
			fmt.Printf("%x -> %x (hits %d)\n", e.Key, e.Value, e.Hits)
		}
		fmt.Printf("%d entries\n", len(entries))
	case "counter":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		bank := fs.String("bank", "", "counter bank")
		index := fs.Int("index", 0, "counter index")
		parse(fs, rest)
		pkts, bytes, err := c.CounterRead(*bank, *index)
		check(err)
		fmt.Printf("packets=%d bytes=%d\n", pkts, bytes)
	case "meter-set":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		bank := fs.String("bank", "", "meter bank")
		index := fs.Int("index", 0, "meter index")
		rate := fs.Float64("rate", 0, "rate (bits/sec)")
		burst := fs.Float64("burst", 0, "burst (bits)")
		parse(fs, rest)
		check(c.MeterSet(*bank, *index, *rate, *burst))
		fmt.Println("ok")
	case "reg-read":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "", "register name")
		parse(fs, rest)
		v, err := c.RegRead(*name)
		check(err)
		fmt.Println(v)
	case "reg-write":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "", "register name")
		value := fs.Uint64("value", 0, "value")
		parse(fs, rest)
		check(c.RegWrite(*name, *value))
		fmt.Println("ok")
	case "push":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		file := fs.String("file", "", "signed bitstream file")
		slot := fs.Int("slot", 2, "flash slot")
		reboot := fs.Bool("reboot", false, "reboot into the new image")
		parse(fs, rest)
		blob, err := os.ReadFile(*file)
		check(err)
		check(c.PushBitstream(blob, *slot, *reboot))
		fmt.Printf("pushed %d bytes to slot %d (reboot=%v)\n", len(blob), *slot, *reboot)
	case "reboot":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		slot := fs.Int("slot", 0, "flash slot")
		parse(fs, rest)
		check(c.Reboot(*slot))
		fmt.Println("reboot requested")
	default:
		log.Fatalf("unknown subcommand %q", cmd)
	}
}

// compileCmd builds and signs a bitstream locally.
func compileCmd(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	app := fs.String("app", "", "application name")
	config := fs.String("config", "", "application config JSON")
	out := fs.String("out", "app.fsfp", "output file")
	key := fs.String("key", string(flexsfp.DefaultAuthKey), "fleet HMAC key")
	clock := fs.Int64("clock-hz", flexsfp.BaseClockHz, "PPE clock")
	width := fs.Int("width", flexsfp.BaseDatapathBits, "datapath bits")
	golden := fs.Bool("golden", false, "mark as golden image")
	parse(fs, args)

	registry := apps.NewRegistry()
	instance, err := registry.New(*app)
	check(err)
	design, err := hls.Compile(instance.Program(), hls.Options{
		ClockHz: *clock, DatapathBits: *width,
		Config: []byte(*config), Golden: *golden,
	})
	check(err)
	encoded, err := design.Bitstream.Encode()
	check(err)
	signed := bitstream.Sign(encoded, []byte(*key))
	check(os.WriteFile(*out, signed, 0o644))
	fmt.Printf("compiled %s: %d LUT4 / %d FF / %d uSRAM / %d LSRAM; wrote %d signed bytes to %s\n",
		*app, design.Total.LUT4, design.Total.FF, design.Total.USRAM, design.Total.LSRAM,
		len(signed), *out)
}

// fleetCmd fans an operation out over a comma-separated address list
// (§4.1 fleet orchestration).
func fleetCmd(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated module management addresses")
	file := fs.String("file", "", "signed bitstream file (fleet-push)")
	slot := fs.Int("slot", 2, "flash slot (fleet-push)")
	reboot := fs.Bool("reboot", false, "reboot after push (fleet-push)")
	parse(fs, args)
	if *addrs == "" {
		log.Fatal("fleet commands need -addrs host:port,host:port,...")
	}
	fleet := mgmt.NewFleet()
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		tr, err := mgmt.Dial(addr)
		check(err)
		defer tr.Close()
		fleet.Add(addr, tr)
	}
	switch cmd {
	case "fleet-ping":
		infos, outcomes := fleet.PingAll()
		for _, name := range fleet.Names() {
			if info, ok := infos[name]; ok {
				fmt.Printf("%s: module %q device=%d app=%s running=%v\n",
					name, info.Name, info.DeviceID, info.AppName, info.Running)
			}
		}
		fmt.Println(mgmt.Summary(outcomes))
	case "fleet-stats":
		stats, outcomes := fleet.StatsAll()
		for _, name := range fleet.Names() {
			if s, ok := stats[name]; ok {
				fmt.Printf("%s: app=%s in=%d pass=%d drop=%d qdrop=%d\n",
					name, s.AppName, s.Engine.In, s.Engine.Pass, s.Engine.Drop, s.Engine.QueueDrop)
			}
		}
		fmt.Println(mgmt.Summary(outcomes))
	case "fleet-push":
		blob, err := os.ReadFile(*file)
		check(err)
		outcomes := fleet.PushAll(blob, *slot, *reboot)
		for _, o := range mgmt.Failures(outcomes) {
			fmt.Printf("%s: FAILED: %v\n", o.Name, o.Err)
		}
		fmt.Println(mgmt.Summary(outcomes))
	default:
		log.Fatalf("unknown fleet subcommand %q (fleet-ping, fleet-stats, fleet-push)", cmd)
	}
}

func parse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		log.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
